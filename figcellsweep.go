package sourcesync

import (
	"math"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/engine"
	"repro/internal/lasthop"
	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/netsim"
	"repro/internal/testbed"
)

// ------------------------------------------------------------- cellsweep

// CellSweepOptions configures the multi-cell saturation sweep: C spatially
// separated WLAN cells — adjacent cells sit beyond carrier-sense range, so
// their downlinks reuse the medium concurrently — each holding M APs and N
// backlogged clients, with N swept to trace saturation throughput versus
// offered population for joint (SourceSync) and best-single-AP service.
type CellSweepOptions struct {
	Seed       int64
	Placements int   // random AP/client placements per sweep point
	Cells      int   // spatially separated cells (>= 1)
	APsPerCell int   // M APs serving each cell
	ClientsPer []int // sweep: clients per cell, one curve point each
	Packets    int   // downlink packets per client
	Payload    int
	CSRangeM   float64 // carrier-sense range between transmitters (meters)
	// CaptureDB is the SINR threshold of the legacy binary interference
	// model: it gates physical-layer capture within collisions and decode
	// against hidden-terminal interference from out-of-range cells. 0
	// disables both. Used only under Legacy.
	CaptureDB float64
	// Legacy runs the sweep on the historical binary CaptureDB gate
	// instead of the rate-aware effective-SNR model (the default): under
	// rate-aware, every interfered downlink is corrupted or degraded at
	// its own rate's decode threshold.
	Legacy bool
	// WindowSec switches every run to fixed-time-window saturation mode:
	// unbounded backlogs drained for this many virtual seconds (Packets
	// ignored), so one starved boundary client no longer gates a run's
	// elapsed time. 0 keeps the drain-the-backlog mode.
	WindowSec float64
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
	// Monitor optionally observes the run (trial progress) and lets the
	// caller cancel it cooperatively; a canceled run's output must be
	// discarded. Nil is free. See engine.Monitor.
	Monitor *engine.Monitor
}

// model returns the interference model the sweep runs: nil (the binary
// CaptureDB gate) under Legacy, otherwise rate-aware decode thresholds
// over the SampleRate rate table. Models are read-only after construction,
// so one instance is shared across all worker goroutines.
func (o CellSweepOptions) model(cfg *modem.Config) netsim.InterferenceModel {
	if o.Legacy {
		return nil
	}
	return netsim.NewRateAware(cfg, modem.StandardRates(), o.Payload)
}

// DefaultCellSweepOptions returns the parameters used by ssbench: two
// cells, two APs each, clients swept 1..8 per cell, 30 m carrier sense.
// The default sweep runs the rate-aware interference model (each downlink
// gated at its own rate's decode threshold); the 6 dB CaptureDB only
// applies under Legacy, where it approximates the robust rates' decode
// margin so hidden-terminal corruption bites at cell boundaries without
// drowning the reuse the sweep exists to measure.
func DefaultCellSweepOptions() CellSweepOptions {
	return CellSweepOptions{
		Seed: 11, Placements: 10, Cells: 2, APsPerCell: 2,
		ClientsPer: []int{1, 2, 4, 6, 8}, Packets: 60, Payload: 1460,
		CSRangeM: 30, CaptureDB: 6,
	}
}

// SweepStats are the per-point statistics shared by every cellsweep table
// (clients-per-cell, cell-count, carrier-sense range): medians and means
// across the placements at one swept value.
type SweepStats struct {
	SingleAggMbps float64 // median aggregate, best single AP per client
	JointAggMbps  float64 // median aggregate, SourceSync joint service
	MedianGain    float64 // per-placement joint/single, median
	// CollisionRate is the fraction of medium acquisitions whose transmit
	// groups collided, averaged over the joint runs.
	CollisionRate float64
	// HiddenRate is hidden-terminal corruptions per medium acquisition,
	// averaged over the joint runs: concurrent out-of-range downlinks
	// corrupting each other at the receivers.
	HiddenRate float64
	// CaptureRate is captures per acquisition averaged over the joint
	// runs: colliding downlinks the interference model let survive.
	CaptureRate float64
	// RateCorruption aggregates the interference model's per-rate outcomes
	// over every joint run at this sweep point (index = SampleRate rate
	// index): interfered / corrupted / degraded counts and summed decode
	// margins.
	RateCorruption []netsim.RateCorruption
	// MeanUtilization is busy time over elapsed time in the joint runs;
	// values above 1 mean several cells carried frames concurrently
	// (spatial reuse at work). With the event-driven per-neighborhood
	// clock it approaches the cell count under saturation, minus what
	// hidden terminals and DCF overhead take.
	MeanUtilization float64
}

// newSweepStats folds one swept value's placement reductions into the
// shared table row.
func newSweepStats(mp meanPlacement, agg aggMedians) SweepStats {
	return SweepStats{
		SingleAggMbps:   agg.single,
		JointAggMbps:    agg.joint,
		MedianGain:      agg.gain,
		CollisionRate:   mp.collisionRate,
		HiddenRate:      mp.hiddenRate,
		CaptureRate:     mp.captureRate,
		MeanUtilization: mp.utiliz,
		RateCorruption:  mp.corruption,
	}
}

// CellSweepPoint is one point of the saturation curve: the shared sweep
// statistics at a fixed client count per cell.
type CellSweepPoint struct {
	ClientsPerCell int
	SweepStats
}

// CellSweepResult is the full saturation-throughput-vs-clients sweep.
type CellSweepResult struct {
	Points []CellSweepPoint
}

// cellSpacing returns the distance between adjacent cell centers. Two
// constraints set the floor: APs sit up to 10 m from their center, so
// cross-cell AP pairs are spacing-20 apart and must clear carrier sense
// (the 2x term); and clients roam up to 35 m from their center (25 m from
// an AP that is itself 10 m out), so a client's distance to a foreign
// cell's AP bottoms out at spacing-45 — the CSRangeM+45 term keeps even
// that worst-case receiver a full carrier-sense range from the hidden
// transmitters next door, bounding (not eliminating) hidden-terminal
// corruption at cell boundaries.
func (o CellSweepOptions) cellSpacing() float64 {
	if o.CSRangeM <= 0 {
		return 60
	}
	return math.Max(2*o.CSRangeM, o.CSRangeM+45)
}

// buildMultiCell lays one placement out on a floor wide enough for every
// cell: APs within 10 m of their cell center (and spread at least 4 m
// apart), clients 8-25 m from the nearest AP of their own cell, exactly as
// RunCell places a single cell. Client flows are ordered cell-major so runs
// reduce deterministically.
func buildMultiCell(rng *rand.Rand, env *testbed.Testbed, m mac.Params, o CellSweepOptions, model netsim.InterferenceModel, clientsPer int) lasthop.Cell {
	spacing := o.cellSpacing()
	nClients := o.Cells * clientsPer
	cell := lasthop.Cell{
		Mac:              m,
		PayloadBytes:     o.Payload,
		Links:            make([][]testbed.Link, 0, nClients),
		APPos:            make([][]testbed.Point, 0, nClients),
		ClientPos:        make([]testbed.Point, 0, nClients),
		PacketsPerClient: o.Packets,
		CSRangeM:         o.CSRangeM,
		CaptureDB:        o.CaptureDB,
		Model:            model,
		Env:              env,
		WindowSec:        o.WindowSec,
	}
	for c := 0; c < o.Cells; c++ {
		center := testbed.Point{X: spacing/2 + float64(c)*spacing, Y: env.Height / 2}
		aps := make([]testbed.Point, o.APsPerCell)
		for a := range aps {
			aps[a] = env.RandomPointWhere(rng, 100000, func(p testbed.Point) bool {
				if testbed.Dist(p, center) > 10 {
					return false
				}
				for _, q := range aps[:a] {
					if testbed.Dist(p, q) < 4 {
						return false
					}
				}
				return true
			})
		}
		for k := 0; k < clientsPer; k++ {
			pos := env.RandomPointWhere(rng, 100000, func(p testbed.Point) bool {
				nearest := testbed.Dist(p, aps[0])
				for _, q := range aps[1:] {
					if d := testbed.Dist(p, q); d < nearest {
						nearest = d
					}
				}
				return nearest >= 8 && nearest <= 25
			})
			links := make([]testbed.Link, o.APsPerCell)
			for a := range aps {
				links[a] = env.NewLink(rng, aps[a], pos)
			}
			cell.Links = append(cell.Links, links)
			cell.APPos = append(cell.APPos, aps)
			cell.ClientPos = append(cell.ClientPos, pos)
		}
	}
	return cell
}

// sweepPlacement is one placement's joint-vs-single comparison, shared by
// the clients-per-cell, cell-count, and carrier-sense sweeps.
type sweepPlacement struct {
	singleBps, jointBps       float64
	collisionRate, hiddenRate float64
	captureRate               float64
	utiliz                    float64
	corruption                []netsim.RateCorruption
}

// runPlacement lays out one multi-cell placement and drains it under both
// serving modes on the shared spatial-reuse simulator.
func runPlacement(rng *rand.Rand, env *testbed.Testbed, m mac.Params, o CellSweepOptions, model netsim.InterferenceModel, clientsPer int) sweepPlacement {
	cell := buildMultiCell(rng, env, m, o, model, clientsPer)
	single := cell.RunBestSingleAP(rand.New(rand.NewSource(rng.Int63()))) //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
	joint := cell.RunJoint(rand.New(rand.NewSource(rng.Int63())))         //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
	r := sweepPlacement{
		singleBps:  single.AggregateBps,
		jointBps:   joint.AggregateBps,
		utiliz:     joint.Utilization,
		corruption: joint.RateCorruption,
	}
	if joint.Acquisitions > 0 {
		r.collisionRate = float64(joint.Collisions) / float64(joint.Acquisitions)
		r.hiddenRate = float64(joint.HiddenLosses) / float64(joint.Acquisitions)
		r.captureRate = float64(joint.Captures) / float64(joint.Acquisitions)
	}
	return r
}

// meanPlacement and aggMedians are reducePlacements' two views of a sweep
// point: rate/utilization means, and Mbps/gain medians.
type meanPlacement struct {
	collisionRate, hiddenRate, captureRate, utiliz float64
	corruption                                     []netsim.RateCorruption
}
type aggMedians struct {
	single, joint, gain float64
}

// reducePlacements folds one sweep point's placements (in placement order,
// so float accumulation is deterministic) into means and medians.
func reducePlacements(rows []sweepPlacement) (meanPlacement, aggMedians) {
	var singles, joints, gains []float64
	var mp meanPlacement
	for _, r := range rows {
		singles = append(singles, r.singleBps/1e6)
		joints = append(joints, r.jointBps/1e6)
		if r.singleBps > 0 {
			gains = append(gains, r.jointBps/r.singleBps)
		}
		mp.collisionRate += r.collisionRate
		mp.hiddenRate += r.hiddenRate
		mp.captureRate += r.captureRate
		mp.utiliz += r.utiliz
		mp.corruption = netsim.MergeRateCorruption(mp.corruption, r.corruption)
	}
	if n := len(rows); n > 0 {
		mp.collisionRate /= float64(n)
		mp.hiddenRate /= float64(n)
		mp.captureRate /= float64(n)
		mp.utiliz /= float64(n)
	}
	return mp, aggMedians{
		single: dsp.Median(singles),
		joint:  dsp.Median(joints),
		gain:   dsp.Median(gains),
	}
}

// RunCellSweep traces saturation throughput versus clients per cell across
// spatially separated cells: every sweep point re-places APs and clients
// Placements times, drains each client's backlog once with best-single-AP
// service and once with SourceSync joint transmissions on one shared
// spatial-reuse simulator, and reduces medians in placement order.
func RunCellSweep(o CellSweepOptions) CellSweepResult {
	cfg := Profile80211()
	env := testbed.Mesh(cfg)
	// Widen the floor to hold every cell; height (and the 8-25 m client
	// annulus) stay as in the single-cell experiment.
	env.Width = float64(o.Cells) * o.cellSpacing()
	m := mac.Default(cfg)
	model := o.model(cfg)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers, Monitor: o.Monitor}

	rows := engine.Grid(ec, len(o.ClientsPer), o.Placements, func(pt, pl int, rng *rand.Rand) sweepPlacement {
		return runPlacement(rng, env, m, o, model, o.ClientsPer[pt])
	})

	res := CellSweepResult{Points: make([]CellSweepPoint, len(o.ClientsPer))}
	for pt := range o.ClientsPer {
		mp, agg := reducePlacements(rows[pt])
		res.Points[pt] = CellSweepPoint{ClientsPerCell: o.ClientsPer[pt], SweepStats: newSweepStats(mp, agg)}
	}
	return res
}

// CellCountPoint is one point of the capacity-vs-area curve: the shared
// sweep statistics at a fixed cell count (MeanUtilization approaches
// Cells under saturation).
type CellCountPoint struct {
	Cells int
	SweepStats
}

// RunCellCountSweep traces aggregate capacity versus the number of
// spatially separated cells at a fixed client density — the AirSync-style
// capacity-vs-area curve the event-driven per-neighborhood clock makes
// honest (a global round clock would idle short cells against long ones).
// Each point widens the floor to hold `cells` cells and re-places APs and
// clients Placements times.
func RunCellCountSweep(o CellSweepOptions, cellCounts []int, clientsPer int) []CellCountPoint {
	cfg := Profile80211()
	m := mac.Default(cfg)
	model := o.model(cfg)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers, Monitor: o.Monitor}

	rows := engine.Grid(ec, len(cellCounts), o.Placements, func(pt, pl int, rng *rand.Rand) sweepPlacement {
		oc := o
		oc.Cells = cellCounts[pt]
		env := testbed.Mesh(cfg)
		env.Width = float64(oc.Cells) * oc.cellSpacing()
		return runPlacement(rng, env, m, oc, model, clientsPer)
	})

	out := make([]CellCountPoint, len(cellCounts))
	for pt := range cellCounts {
		mp, agg := reducePlacements(rows[pt])
		out[pt] = CellCountPoint{Cells: cellCounts[pt], SweepStats: newSweepStats(mp, agg)}
	}
	return out
}

// CSRangePoint is one point of the capacity-vs-carrier-sense curve: the
// shared sweep statistics at a fixed carrier-sense range.
type CSRangePoint struct {
	CSRangeM float64
	SweepStats
}

// RunCSRangeSweep traces aggregate capacity versus carrier-sense range at
// a fixed cell count and client density — the other axis of the
// capacity-vs-area picture. A shorter range packs the cells tighter
// (cellSpacing scales with CSRangeM), so more neighborhoods reuse the
// medium concurrently but more of their frames collide at shared
// receivers as hidden terminals; a longer range spaces the cells out and
// serializes them. The interference model prices that tradeoff: the
// HiddenRate and per-rate corruption columns quantify what denser reuse
// costs.
func RunCSRangeSweep(o CellSweepOptions, csRanges []float64, clientsPer int) []CSRangePoint {
	cfg := Profile80211()
	m := mac.Default(cfg)
	model := o.model(cfg)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers, Monitor: o.Monitor}

	rows := engine.Grid(ec, len(csRanges), o.Placements, func(pt, pl int, rng *rand.Rand) sweepPlacement {
		oc := o
		oc.CSRangeM = csRanges[pt]
		env := testbed.Mesh(cfg)
		env.Width = float64(oc.Cells) * oc.cellSpacing()
		return runPlacement(rng, env, m, oc, model, clientsPer)
	})

	out := make([]CSRangePoint, len(csRanges))
	for pt := range csRanges {
		mp, agg := reducePlacements(rows[pt])
		out[pt] = CSRangePoint{CSRangeM: csRanges[pt], SweepStats: newSweepStats(mp, agg)}
	}
	return out
}
