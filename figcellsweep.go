package sourcesync

import (
	"math"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/engine"
	"repro/internal/lasthop"
	"repro/internal/mac"
	"repro/internal/testbed"
)

// ------------------------------------------------------------- cellsweep

// CellSweepOptions configures the multi-cell saturation sweep: C spatially
// separated WLAN cells — adjacent cells sit beyond carrier-sense range, so
// their downlinks reuse the medium concurrently — each holding M APs and N
// backlogged clients, with N swept to trace saturation throughput versus
// offered population for joint (SourceSync) and best-single-AP service.
type CellSweepOptions struct {
	Seed       int64
	Placements int   // random AP/client placements per sweep point
	Cells      int   // spatially separated cells (>= 1)
	APsPerCell int   // M APs serving each cell
	ClientsPer []int // sweep: clients per cell, one curve point each
	Packets    int   // downlink packets per client
	Payload    int
	CSRangeM   float64 // carrier-sense range between transmitters (meters)
	// CaptureDB is the SINR threshold of netsim's interference model: it
	// gates physical-layer capture within collisions and decode against
	// hidden-terminal interference from out-of-range cells. 0 disables
	// both.
	CaptureDB float64
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
}

// DefaultCellSweepOptions returns the parameters used by ssbench: two
// cells, two APs each, clients swept 1..8 per cell, 30 m carrier sense
// with a 6 dB SINR threshold — roughly the decode margin of the robust
// rates, so hidden-terminal corruption bites at cell boundaries without
// drowning the reuse the sweep exists to measure.
func DefaultCellSweepOptions() CellSweepOptions {
	return CellSweepOptions{
		Seed: 11, Placements: 10, Cells: 2, APsPerCell: 2,
		ClientsPer: []int{1, 2, 4, 6, 8}, Packets: 60, Payload: 1460,
		CSRangeM: 30, CaptureDB: 6,
	}
}

// CellSweepPoint is one point of the saturation curve: medians across
// placements at a fixed client count per cell.
type CellSweepPoint struct {
	ClientsPerCell int
	SingleAggMbps  float64 // median aggregate, best single AP per client
	JointAggMbps   float64 // median aggregate, SourceSync joint service
	MedianGain     float64 // per-placement joint/single, median
	// CollisionRate is the fraction of medium acquisitions whose transmit
	// groups collided, averaged over the joint runs.
	CollisionRate float64
	// HiddenRate is hidden-terminal corruptions per medium acquisition,
	// averaged over the joint runs: concurrent out-of-range downlinks
	// corrupting each other at the receivers.
	HiddenRate float64
	// MeanUtilization is busy time over elapsed time in the joint runs;
	// values above 1 mean several cells carried frames concurrently
	// (spatial reuse at work). With the event-driven per-neighborhood
	// clock it approaches the cell count under saturation, minus what
	// hidden terminals and DCF overhead take.
	MeanUtilization float64
}

// CellSweepResult is the full saturation-throughput-vs-clients sweep.
type CellSweepResult struct {
	Points []CellSweepPoint
}

// cellSpacing returns the distance between adjacent cell centers. Two
// constraints set the floor: APs sit up to 10 m from their center, so
// cross-cell AP pairs are spacing-20 apart and must clear carrier sense
// (the 2x term); and clients roam up to 35 m from their center (25 m from
// an AP that is itself 10 m out), so a client's distance to a foreign
// cell's AP bottoms out at spacing-45 — the CSRangeM+45 term keeps even
// that worst-case receiver a full carrier-sense range from the hidden
// transmitters next door, bounding (not eliminating) hidden-terminal
// corruption at cell boundaries.
func (o CellSweepOptions) cellSpacing() float64 {
	if o.CSRangeM <= 0 {
		return 60
	}
	return math.Max(2*o.CSRangeM, o.CSRangeM+45)
}

// buildMultiCell lays one placement out on a floor wide enough for every
// cell: APs within 10 m of their cell center (and spread at least 4 m
// apart), clients 8-25 m from the nearest AP of their own cell, exactly as
// RunCell places a single cell. Client flows are ordered cell-major so runs
// reduce deterministically.
func buildMultiCell(rng *rand.Rand, env *testbed.Testbed, m mac.Params, o CellSweepOptions, clientsPer int) lasthop.Cell {
	spacing := o.cellSpacing()
	nClients := o.Cells * clientsPer
	cell := lasthop.Cell{
		Mac:              m,
		PayloadBytes:     o.Payload,
		Links:            make([][]testbed.Link, 0, nClients),
		APPos:            make([][]testbed.Point, 0, nClients),
		ClientPos:        make([]testbed.Point, 0, nClients),
		PacketsPerClient: o.Packets,
		CSRangeM:         o.CSRangeM,
		CaptureDB:        o.CaptureDB,
		Env:              env,
	}
	for c := 0; c < o.Cells; c++ {
		center := testbed.Point{X: spacing/2 + float64(c)*spacing, Y: env.Height / 2}
		aps := make([]testbed.Point, o.APsPerCell)
		for a := range aps {
			aps[a] = env.RandomPointWhere(rng, 100000, func(p testbed.Point) bool {
				if testbed.Dist(p, center) > 10 {
					return false
				}
				for _, q := range aps[:a] {
					if testbed.Dist(p, q) < 4 {
						return false
					}
				}
				return true
			})
		}
		for k := 0; k < clientsPer; k++ {
			pos := env.RandomPointWhere(rng, 100000, func(p testbed.Point) bool {
				nearest := testbed.Dist(p, aps[0])
				for _, q := range aps[1:] {
					if d := testbed.Dist(p, q); d < nearest {
						nearest = d
					}
				}
				return nearest >= 8 && nearest <= 25
			})
			links := make([]testbed.Link, o.APsPerCell)
			for a := range aps {
				links[a] = env.NewLink(rng, aps[a], pos)
			}
			cell.Links = append(cell.Links, links)
			cell.APPos = append(cell.APPos, aps)
			cell.ClientPos = append(cell.ClientPos, pos)
		}
	}
	return cell
}

// sweepPlacement is one placement's joint-vs-single comparison, shared by
// the clients-per-cell and cell-count sweeps.
type sweepPlacement struct {
	singleBps, jointBps       float64
	collisionRate, hiddenRate float64
	utiliz                    float64
}

// runPlacement lays out one multi-cell placement and drains it under both
// serving modes on the shared spatial-reuse simulator.
func runPlacement(rng *rand.Rand, env *testbed.Testbed, m mac.Params, o CellSweepOptions, clientsPer int) sweepPlacement {
	cell := buildMultiCell(rng, env, m, o, clientsPer)
	single := cell.RunBestSingleAP(rand.New(rand.NewSource(rng.Int63())))
	joint := cell.RunJoint(rand.New(rand.NewSource(rng.Int63())))
	r := sweepPlacement{
		singleBps: single.AggregateBps,
		jointBps:  joint.AggregateBps,
		utiliz:    joint.Utilization,
	}
	if joint.Acquisitions > 0 {
		r.collisionRate = float64(joint.Collisions) / float64(joint.Acquisitions)
		r.hiddenRate = float64(joint.HiddenLosses) / float64(joint.Acquisitions)
	}
	return r
}

// meanPlacement and aggMedians are reducePlacements' two views of a sweep
// point: rate/utilization means, and Mbps/gain medians.
type meanPlacement struct {
	collisionRate, hiddenRate, utiliz float64
}
type aggMedians struct {
	single, joint, gain float64
}

// reducePlacements folds one sweep point's placements (in placement order,
// so float accumulation is deterministic) into means and medians.
func reducePlacements(rows []sweepPlacement) (meanPlacement, aggMedians) {
	var singles, joints, gains []float64
	var mp meanPlacement
	for _, r := range rows {
		singles = append(singles, r.singleBps/1e6)
		joints = append(joints, r.jointBps/1e6)
		if r.singleBps > 0 {
			gains = append(gains, r.jointBps/r.singleBps)
		}
		mp.collisionRate += r.collisionRate
		mp.hiddenRate += r.hiddenRate
		mp.utiliz += r.utiliz
	}
	if n := len(rows); n > 0 {
		mp.collisionRate /= float64(n)
		mp.hiddenRate /= float64(n)
		mp.utiliz /= float64(n)
	}
	return mp, aggMedians{
		single: dsp.Median(singles),
		joint:  dsp.Median(joints),
		gain:   dsp.Median(gains),
	}
}

// RunCellSweep traces saturation throughput versus clients per cell across
// spatially separated cells: every sweep point re-places APs and clients
// Placements times, drains each client's backlog once with best-single-AP
// service and once with SourceSync joint transmissions on one shared
// spatial-reuse simulator, and reduces medians in placement order.
func RunCellSweep(o CellSweepOptions) CellSweepResult {
	cfg := Profile80211()
	env := testbed.Mesh(cfg)
	// Widen the floor to hold every cell; height (and the 8-25 m client
	// annulus) stay as in the single-cell experiment.
	env.Width = float64(o.Cells) * o.cellSpacing()
	m := mac.Default(cfg)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers}

	rows := engine.Grid(ec, len(o.ClientsPer), o.Placements, func(pt, pl int, rng *rand.Rand) sweepPlacement {
		return runPlacement(rng, env, m, o, o.ClientsPer[pt])
	})

	res := CellSweepResult{Points: make([]CellSweepPoint, len(o.ClientsPer))}
	for pt := range o.ClientsPer {
		mp, agg := reducePlacements(rows[pt])
		res.Points[pt] = CellSweepPoint{
			ClientsPerCell:  o.ClientsPer[pt],
			SingleAggMbps:   agg.single,
			JointAggMbps:    agg.joint,
			MedianGain:      agg.gain,
			CollisionRate:   mp.collisionRate,
			HiddenRate:      mp.hiddenRate,
			MeanUtilization: mp.utiliz,
		}
	}
	return res
}

// CellCountPoint is one point of the capacity-vs-area curve: medians and
// means across placements at a fixed cell count.
type CellCountPoint struct {
	Cells           int
	SingleAggMbps   float64 // median aggregate, best single AP per client
	JointAggMbps    float64 // median aggregate, SourceSync joint service
	MedianGain      float64 // per-placement joint/single, median
	CollisionRate   float64 // collided transmit groups per acquisition
	HiddenRate      float64 // hidden-terminal corruptions per acquisition
	MeanUtilization float64 // approaches Cells under saturation
}

// RunCellCountSweep traces aggregate capacity versus the number of
// spatially separated cells at a fixed client density — the AirSync-style
// capacity-vs-area curve the event-driven per-neighborhood clock makes
// honest (a global round clock would idle short cells against long ones).
// Each point widens the floor to hold `cells` cells and re-places APs and
// clients Placements times.
func RunCellCountSweep(o CellSweepOptions, cellCounts []int, clientsPer int) []CellCountPoint {
	cfg := Profile80211()
	m := mac.Default(cfg)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers}

	rows := engine.Grid(ec, len(cellCounts), o.Placements, func(pt, pl int, rng *rand.Rand) sweepPlacement {
		oc := o
		oc.Cells = cellCounts[pt]
		env := testbed.Mesh(cfg)
		env.Width = float64(oc.Cells) * oc.cellSpacing()
		return runPlacement(rng, env, m, oc, clientsPer)
	})

	out := make([]CellCountPoint, len(cellCounts))
	for pt := range cellCounts {
		mp, agg := reducePlacements(rows[pt])
		out[pt] = CellCountPoint{
			Cells:           cellCounts[pt],
			SingleAggMbps:   agg.single,
			JointAggMbps:    agg.joint,
			MedianGain:      agg.gain,
			CollisionRate:   mp.collisionRate,
			HiddenRate:      mp.hiddenRate,
			MeanUtilization: mp.utiliz,
		}
	}
	return out
}
