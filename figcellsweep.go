package sourcesync

import (
	"math"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/engine"
	"repro/internal/lasthop"
	"repro/internal/mac"
	"repro/internal/testbed"
)

// ------------------------------------------------------------- cellsweep

// CellSweepOptions configures the multi-cell saturation sweep: C spatially
// separated WLAN cells — adjacent cells sit beyond carrier-sense range, so
// their downlinks reuse the medium concurrently — each holding M APs and N
// backlogged clients, with N swept to trace saturation throughput versus
// offered population for joint (SourceSync) and best-single-AP service.
type CellSweepOptions struct {
	Seed       int64
	Placements int   // random AP/client placements per sweep point
	Cells      int   // spatially separated cells (>= 1)
	APsPerCell int   // M APs serving each cell
	ClientsPer []int // sweep: clients per cell, one curve point each
	Packets    int   // downlink packets per client
	Payload    int
	CSRangeM   float64 // carrier-sense range between transmitters (meters)
	CaptureDB  float64 // SINR capture threshold (dB); 0 disables capture
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
}

// DefaultCellSweepOptions returns the parameters used by ssbench: two
// cells, two APs each, clients swept 1..8 per cell, 30 m carrier sense with
// a 10 dB capture threshold.
func DefaultCellSweepOptions() CellSweepOptions {
	return CellSweepOptions{
		Seed: 11, Placements: 10, Cells: 2, APsPerCell: 2,
		ClientsPer: []int{1, 2, 4, 6, 8}, Packets: 60, Payload: 1460,
		CSRangeM: 30, CaptureDB: 10,
	}
}

// CellSweepPoint is one point of the saturation curve: medians across
// placements at a fixed client count per cell.
type CellSweepPoint struct {
	ClientsPerCell int
	SingleAggMbps  float64 // median aggregate, best single AP per client
	JointAggMbps   float64 // median aggregate, SourceSync joint service
	MedianGain     float64 // per-placement joint/single, median
	// CollisionRate is the fraction of contention rounds whose transmit
	// groups collided, averaged over the joint runs.
	CollisionRate float64
	// MeanUtilization is busy time over elapsed time in the joint runs;
	// values above 1 mean several cells carried frames concurrently
	// (spatial reuse at work).
	MeanUtilization float64
}

// CellSweepResult is the full saturation-throughput-vs-clients sweep.
type CellSweepResult struct {
	Points []CellSweepPoint
}

// cellSpacing returns the distance between adjacent cell centers. APs sit
// up to 10 m from their center, so the floor is spacing-20 between
// worst-case cross-cell AP pairs; the CSRangeM+25 term keeps that floor at
// least 5 m beyond carrier sense even when the range is small (below 20 m,
// where 2x the range alone would let neighboring cells hear each other).
func (o CellSweepOptions) cellSpacing() float64 {
	if o.CSRangeM <= 0 {
		return 60
	}
	return math.Max(2*o.CSRangeM, o.CSRangeM+25)
}

// buildMultiCell lays one placement out on a floor wide enough for every
// cell: APs within 10 m of their cell center (and spread at least 4 m
// apart), clients 8-25 m from the nearest AP of their own cell, exactly as
// RunCell places a single cell. Client flows are ordered cell-major so runs
// reduce deterministically.
func buildMultiCell(rng *rand.Rand, env *testbed.Testbed, m mac.Params, o CellSweepOptions, clientsPer int) lasthop.Cell {
	spacing := o.cellSpacing()
	nClients := o.Cells * clientsPer
	cell := lasthop.Cell{
		Mac:              m,
		PayloadBytes:     o.Payload,
		Links:            make([][]testbed.Link, 0, nClients),
		APPos:            make([][]testbed.Point, 0, nClients),
		ClientPos:        make([]testbed.Point, 0, nClients),
		PacketsPerClient: o.Packets,
		CSRangeM:         o.CSRangeM,
		CaptureDB:        o.CaptureDB,
		Env:              env,
	}
	for c := 0; c < o.Cells; c++ {
		center := testbed.Point{X: spacing/2 + float64(c)*spacing, Y: env.Height / 2}
		aps := make([]testbed.Point, o.APsPerCell)
		for a := range aps {
			aps[a] = env.RandomPointWhere(rng, 100000, func(p testbed.Point) bool {
				if testbed.Dist(p, center) > 10 {
					return false
				}
				for _, q := range aps[:a] {
					if testbed.Dist(p, q) < 4 {
						return false
					}
				}
				return true
			})
		}
		for k := 0; k < clientsPer; k++ {
			pos := env.RandomPointWhere(rng, 100000, func(p testbed.Point) bool {
				nearest := testbed.Dist(p, aps[0])
				for _, q := range aps[1:] {
					if d := testbed.Dist(p, q); d < nearest {
						nearest = d
					}
				}
				return nearest >= 8 && nearest <= 25
			})
			links := make([]testbed.Link, o.APsPerCell)
			for a := range aps {
				links[a] = env.NewLink(rng, aps[a], pos)
			}
			cell.Links = append(cell.Links, links)
			cell.APPos = append(cell.APPos, aps)
			cell.ClientPos = append(cell.ClientPos, pos)
		}
	}
	return cell
}

// RunCellSweep traces saturation throughput versus clients per cell across
// spatially separated cells: every sweep point re-places APs and clients
// Placements times, drains each client's backlog once with best-single-AP
// service and once with SourceSync joint transmissions on one shared
// spatial-reuse simulator, and reduces medians in placement order.
func RunCellSweep(o CellSweepOptions) CellSweepResult {
	cfg := Profile80211()
	env := testbed.Mesh(cfg)
	// Widen the floor to hold every cell; height (and the 8-25 m client
	// annulus) stay as in the single-cell experiment.
	env.Width = float64(o.Cells) * o.cellSpacing()
	m := mac.Default(cfg)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers}

	type plRes struct {
		singleBps, jointBps   float64
		collisionRate, utiliz float64
	}
	rows := engine.Grid(ec, len(o.ClientsPer), o.Placements, func(pt, pl int, rng *rand.Rand) plRes {
		cell := buildMultiCell(rng, env, m, o, o.ClientsPer[pt])
		single := cell.RunBestSingleAP(rand.New(rand.NewSource(rng.Int63())))
		joint := cell.RunJoint(rand.New(rand.NewSource(rng.Int63())))
		var cr float64
		if joint.Acquisitions > 0 {
			cr = float64(joint.Collisions) / float64(joint.Acquisitions)
		}
		return plRes{single.AggregateBps, joint.AggregateBps, cr, joint.Utilization}
	})

	res := CellSweepResult{Points: make([]CellSweepPoint, len(o.ClientsPer))}
	for pt := range o.ClientsPer {
		var singles, joints, gains []float64
		var crSum, utSum float64
		for _, r := range rows[pt] {
			singles = append(singles, r.singleBps/1e6)
			joints = append(joints, r.jointBps/1e6)
			if r.singleBps > 0 {
				gains = append(gains, r.jointBps/r.singleBps)
			}
			crSum += r.collisionRate
			utSum += r.utiliz
		}
		p := CellSweepPoint{
			ClientsPerCell: o.ClientsPer[pt],
			SingleAggMbps:  dsp.Median(singles),
			JointAggMbps:   dsp.Median(joints),
			MedianGain:     dsp.Median(gains),
		}
		if n := len(rows[pt]); n > 0 {
			p.CollisionRate = crSum / float64(n)
			p.MeanUtilization = utSum / float64(n)
		}
		res.Points[pt] = p
	}
	return res
}
