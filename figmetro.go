package sourcesync

import (
	"math/rand"

	"repro/internal/engine"
	"repro/internal/lasthop"
	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/netsim"
	"repro/internal/testbed"
)

// ----------------------------------------------------------------- metro

// MetroOptions configures the city-scale deployment experiment: a
// CellsX x CellsY grid of WLAN cells — a metro neighborhood rather than
// one office floor — with the per-cell client density swept, every
// downlink priced by the rate-aware interference model, and the
// interference scan bounded by InterferenceRangeM so the spatially indexed
// scheduler settles each frame against nearby transmitters only. The
// experiment asks SourceSync's density question at the scale the paper
// gestures at: does joint service keep its edge when hundreds of cells and
// thousands of clients share the air?
type MetroOptions struct {
	Seed       int64
	Placements int // random city layouts per density point
	CellsX     int // cells per city row
	CellsY     int // cells per city column (CellsX*CellsY cells total)
	APsPerCell int
	ClientsPer []int // density sweep: clients per cell, one map point each
	Packets    int   // downlink packets per client
	Payload    int
	CSRangeM   float64 // carrier-sense range between transmitters (meters)
	// InterferenceRangeM bounds each settled frame's interference scan to
	// transmitters within this radius of the receiver; it should
	// comfortably exceed CSRangeM plus the longest serving link so nothing
	// above the noise floor is missed.
	InterferenceRangeM float64
	// WindowSec switches every run to fixed-time-window saturation mode
	// (unbounded backlogs drained for this many virtual seconds). 0 drains
	// the fixed per-client backlogs.
	WindowSec float64
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
	// Monitor optionally observes the run (trial progress) and lets the
	// caller cancel it cooperatively; a canceled run's output must be
	// discarded. Nil is free. See engine.Monitor.
	Monitor *engine.Monitor
}

// DefaultMetroOptions returns the parameters used by ssbench: a 10x10-cell
// city (100 cells, two APs each) with per-cell density swept 4..12 clients
// — 400 to 1200 concurrent downlink flows — on a 60 m cell pitch with
// 45 m carrier sense and a 150 m interference horizon.
func DefaultMetroOptions() MetroOptions {
	return MetroOptions{
		Seed: 17, Placements: 3, CellsX: 10, CellsY: 10, APsPerCell: 2,
		ClientsPer: []int{4, 8, 12}, Packets: 20, Payload: 1460,
		CSRangeM: 45, InterferenceRangeM: 150,
	}
}

// Cells returns the total cell count of the city grid.
func (o MetroOptions) Cells() int { return o.CellsX * o.CellsY }

// MetroPoint is one density point of the capacity map: the shared sweep
// statistics at a fixed per-cell client count.
type MetroPoint struct {
	ClientsPerCell int
	Clients        int // total concurrent downlink flows (Cells * ClientsPerCell)
	SweepStats
}

// MetroResult is the capacity-by-density map.
type MetroResult struct {
	Points []MetroPoint
}

// metroSpacing is the cell pitch of the city grid, sized like cellsweep's
// single-row spacing: adjacent-cell APs clear carrier sense and worst-case
// clients sit a full carrier-sense range from next-door transmitters.
func (o MetroOptions) metroSpacing() float64 {
	if o.CSRangeM <= 0 {
		return 60
	}
	if 2*o.CSRangeM > o.CSRangeM+45 {
		return 2 * o.CSRangeM
	}
	return o.CSRangeM + 45
}

// metroPoint draws a point uniformly in the square of half-width h around
// center, rejected until accept holds. Sampling is local to the cell —
// rejection over the whole city floor would burn thousands of draws per
// client — so layout cost stays O(clients), not O(clients * floor area).
func metroPoint(rng *rand.Rand, center testbed.Point, h float64, attempts int, accept func(testbed.Point) bool) testbed.Point {
	var p testbed.Point
	for i := 0; i < attempts; i++ {
		p = testbed.Point{
			X: center.X + (rng.Float64()*2-1)*h,
			Y: center.Y + (rng.Float64()*2-1)*h,
		}
		if accept(p) {
			return p
		}
	}
	return p
}

// buildMetro lays one city out: cell centers on a CellsX x CellsY grid,
// APs within 10 m of their center (spread at least 4 m apart), clients
// 8-25 m from the nearest AP of their own cell — the same per-cell
// geometry as cellsweep, tiled in two dimensions. Client flows are ordered
// cell-major (row-major over the grid), so runs reduce deterministically.
func buildMetro(rng *rand.Rand, env *testbed.Testbed, m mac.Params, o MetroOptions, model netsim.InterferenceModel, clientsPer int) lasthop.Cell {
	spacing := o.metroSpacing()
	nClients := o.Cells() * clientsPer
	cell := lasthop.Cell{
		Mac:                m,
		PayloadBytes:       o.Payload,
		Links:              make([][]testbed.Link, 0, nClients),
		APPos:              make([][]testbed.Point, 0, nClients),
		ClientPos:          make([]testbed.Point, 0, nClients),
		PacketsPerClient:   o.Packets,
		CSRangeM:           o.CSRangeM,
		Model:              model,
		Env:                env,
		InterferenceRangeM: o.InterferenceRangeM,
		WindowSec:          o.WindowSec,
	}
	for cy := 0; cy < o.CellsY; cy++ {
		for cx := 0; cx < o.CellsX; cx++ {
			center := testbed.Point{
				X: spacing/2 + float64(cx)*spacing,
				Y: spacing/2 + float64(cy)*spacing,
			}
			aps := make([]testbed.Point, o.APsPerCell)
			for a := range aps {
				aps[a] = metroPoint(rng, center, 10, 100000, func(p testbed.Point) bool {
					if testbed.Dist(p, center) > 10 {
						return false
					}
					for _, q := range aps[:a] {
						if testbed.Dist(p, q) < 4 {
							return false
						}
					}
					return true
				})
			}
			for k := 0; k < clientsPer; k++ {
				pos := metroPoint(rng, center, 35, 100000, func(p testbed.Point) bool {
					nearest := testbed.Dist(p, aps[0])
					for _, q := range aps[1:] {
						if d := testbed.Dist(p, q); d < nearest {
							nearest = d
						}
					}
					return nearest >= 8 && nearest <= 25
				})
				links := make([]testbed.Link, o.APsPerCell)
				for a := range aps {
					links[a] = env.NewLink(rng, aps[a], pos)
				}
				cell.Links = append(cell.Links, links)
				cell.APPos = append(cell.APPos, aps)
				cell.ClientPos = append(cell.ClientPos, pos)
			}
		}
	}
	return cell
}

// RunMetro traces the joint-vs-best-single-AP capacity map against per-cell
// client density across the city grid: every density point re-places the
// whole city Placements times, drains each layout once under each serving
// mode, and reduces medians in placement order. The interference model is
// rate-aware throughout — the metro question is precisely how interference
// scales with density, so there is no legacy mode.
func RunMetro(o MetroOptions) MetroResult {
	cfg := Profile80211()
	env := testbed.Mesh(cfg)
	spacing := o.metroSpacing()
	env.Width = float64(o.CellsX) * spacing
	env.Height = float64(o.CellsY) * spacing
	m := mac.Default(cfg)
	model := netsim.NewRateAware(cfg, modem.StandardRates(), o.Payload)
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers, Monitor: o.Monitor}

	rows := engine.Grid(ec, len(o.ClientsPer), o.Placements, func(pt, pl int, rng *rand.Rand) sweepPlacement {
		cell := buildMetro(rng, env, m, o, model, o.ClientsPer[pt])
		single := cell.RunBestSingleAP(rand.New(rand.NewSource(rng.Int63()))) //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		joint := cell.RunJoint(rand.New(rand.NewSource(rng.Int63())))         //sslint:allow detrand child RNG bridged from the per-trial stream; the parent draw is part of the contracted draw order
		r := sweepPlacement{
			singleBps:  single.AggregateBps,
			jointBps:   joint.AggregateBps,
			utiliz:     joint.Utilization,
			corruption: joint.RateCorruption,
		}
		if joint.Acquisitions > 0 {
			r.collisionRate = float64(joint.Collisions) / float64(joint.Acquisitions)
			r.hiddenRate = float64(joint.HiddenLosses) / float64(joint.Acquisitions)
			r.captureRate = float64(joint.Captures) / float64(joint.Acquisitions)
		}
		return r
	})

	res := MetroResult{Points: make([]MetroPoint, len(o.ClientsPer))}
	for pt := range o.ClientsPer {
		mp, agg := reducePlacements(rows[pt])
		res.Points[pt] = MetroPoint{
			ClientsPerCell: o.ClientsPer[pt],
			Clients:        o.Cells() * o.ClientsPer[pt],
			SweepStats:     newSweepStats(mp, agg),
		}
	}
	return res
}
