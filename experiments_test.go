package sourcesync

import (
	"math"
	"testing"
)

// The experiment smoke tests run shrunken versions of every figure's
// workload and assert the paper's qualitative shape: who wins, roughly by
// how much, and where knees fall. Full-size runs live in bench_test.go and
// cmd/ssbench.

func TestFig12ShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform experiment")
	}
	o := Fig12Options{Seed: 1, SNRsdB: []float64{6, 25}, Trials: 8, Reps: 30}
	pts := RunFig12(o)
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Usable < 5 {
			t.Fatalf("SNR %.0f: only %d usable frames", p.SNRdB, p.Usable)
		}
		// Paper: <= 20 ns across the operational range. Allow slack for the
		// small sample count but the order of magnitude must hold.
		if p.P95Ns > 40 {
			t.Fatalf("SNR %.0f: p95 sync error %.1f ns", p.SNRdB, p.P95Ns)
		}
	}
	// Error should not improve when SNR degrades.
	if pts[0].P95Ns < pts[1].P95Ns*0.2 {
		t.Fatalf("low-SNR error %.1f unexpectedly far below high-SNR %.1f", pts[0].P95Ns, pts[1].P95Ns)
	}
}

func TestFig13ShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform experiment")
	}
	o := Fig13Options{Seed: 2, CPsNs: []float64{39, 234, 625}, FramesPerCP: 3, SNRdB: 25}
	pts := RunFig13(o)
	// SourceSync at a moderate CP (234 ns = 30 samples, just past the
	// channel's delay spread) should already be near its plateau; the
	// baseline needs far more. At the largest CP both should be close.
	ssMid, blMid := pts[1].SourceSyncSNR, pts[1].BaselineSNR
	ssBig, blBig := pts[2].SourceSyncSNR, pts[2].BaselineSNR
	if ssMid < ssBig-3 {
		t.Fatalf("SourceSync mid-CP %.1f dB far below plateau %.1f dB", ssMid, ssBig)
	}
	if blMid > ssMid-3 {
		t.Fatalf("baseline mid-CP %.1f dB should trail SourceSync %.1f dB", blMid, ssMid)
	}
	if math.Abs(blBig-ssBig) > 6 {
		t.Fatalf("at large CP both should converge: ss %.1f bl %.1f", ssBig, blBig)
	}
	// Tiny CP hurts SourceSync too (multipath ISI).
	if pts[0].SourceSyncSNR > pts[2].SourceSyncSNR-1 {
		t.Fatalf("CP=39ns (%.1f dB) should lose to CP=625ns (%.1f dB)", pts[0].SourceSyncSNR, pts[2].SourceSyncSNR)
	}
}

func TestFig14Shape(t *testing.T) {
	pts := RunFig14(Fig14Options{Seed: 3, Draws: 120, Taps: 70})
	if len(pts) != 70 {
		t.Fatalf("%d taps", len(pts))
	}
	n := SignificantTaps(pts, 0.01)
	// Paper: ~15 significant taps at 128 MHz.
	if n < 8 || n > 30 {
		t.Fatalf("%d significant taps, want ~15", n)
	}
	// Power must decay overall.
	if pts[40].Power > pts[2].Power {
		t.Fatalf("tap 40 (%.3g) above tap 2 (%.3g)", pts[40].Power, pts[2].Power)
	}
}

func TestFig15Fig16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform experiment")
	}
	o := Fig15Options{Seed: 4, Placements: 12, Frames: 1}
	rows := RunFig15(o)
	if len(rows) == 0 {
		t.Fatal("no regimes measured")
	}
	for _, r := range rows {
		if r.GainDB < 1.0 || r.GainDB > 5.5 {
			t.Fatalf("%s regime gain %.2f dB, want ~2-3", r.Regime, r.GainDB)
		}
	}
	series := RunFig16(o)
	if len(series) == 0 {
		t.Fatal("no Fig16 series")
	}
	for _, s := range series {
		// The joint profile should be at least as flat as the flattest
		// individual sender (usually much flatter).
		best := math.Min(s.Flatness.Sender1, s.Flatness.Sender2)
		if s.Flatness.Joint > best*1.1 {
			t.Fatalf("%s: joint flatness %.2f vs best single %.2f", s.Regime, s.Flatness.Joint, best)
		}
	}
}

func TestFig17Shape(t *testing.T) {
	o := Fig17Options{Seed: 5, Placements: 14, Packets: 200, Payload: 1460}
	res := RunFig17(o)
	if len(res.SingleMbps) != 14 || len(res.JointMbps) != 14 {
		t.Fatalf("CDF lengths %d %d", len(res.SingleMbps), len(res.JointMbps))
	}
	// Paper: median gain 1.57x. Accept a generous band for the small run.
	if res.MedianGain < 1.1 || res.MedianGain > 2.6 {
		t.Fatalf("median last-hop gain %.2f, want ~1.5", res.MedianGain)
	}
}

func TestFig18Shape(t *testing.T) {
	o := Fig18Options{Seed: 6, Topologies: 8, Packets: 80, Payload: 1000, RateMbps: 6, Probes: 40}
	res := RunFig18(o)
	// Paper at 6 Mbps: ExOR 1.26-1.4x over single path; SourceSync
	// 1.35-1.45x over ExOR. Accept generous bands.
	if res.GainExOROverSP < 1.0 {
		t.Fatalf("ExOR/SP gain %.2f", res.GainExOROverSP)
	}
	if res.GainSSOverExOR < 1.05 {
		t.Fatalf("SS/ExOR gain %.2f", res.GainSSOverExOR)
	}
	if res.GainSSOverSP < res.GainExOROverSP {
		t.Fatalf("SS/SP %.2f below ExOR/SP %.2f", res.GainSSOverSP, res.GainExOROverSP)
	}
}

func TestOverheadTable(t *testing.T) {
	rows := RunOverheadTable()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper: ~1.7% for 2 senders; increases with sender count.
	if rows[0].OverheadFraction < 0.012 || rows[0].OverheadFraction > 0.022 {
		t.Fatalf("2-sender overhead %.4f", rows[0].OverheadFraction)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].OverheadFraction <= rows[i-1].OverheadFraction {
			t.Fatal("overhead must grow with sender count")
		}
	}
}

func TestDetDelayPremise(t *testing.T) {
	pts := RunDetDelay(1, []float64{4, 25}, 25, 0)
	low, high := pts[0], pts[1]
	if low.Detected < 15 || high.Detected < 23 {
		t.Fatalf("detections: low %d high %d", low.Detected, high.Detected)
	}
	// Detection delay variability should be on the order of hundreds of ns
	// at low SNR (the paper's premise) and smaller at high SNR.
	if low.StdNs < high.StdNs {
		t.Fatalf("low-SNR std %.0f ns below high-SNR %.0f ns", low.StdNs, high.StdNs)
	}
	if high.MeanNs < 0 {
		t.Fatalf("high-SNR mean detection delay %.0f ns negative", high.MeanNs)
	}
}

func TestAblationSlopeWindow(t *testing.T) {
	res := RunAblationSlopeWindow(1, 150, 0)
	// The whole-band fit's unwrap errors are rare events; a run where no
	// draw hits one leaves both RMS values at machine epsilon and the
	// comparison below would be noise. Require a real signal.
	if res.WindowedRMS <= 0 || res.WholeBandRMS <= 1e-6 {
		t.Fatalf("degenerate ablation: windowed %.3g whole-band %.3g", res.WindowedRMS, res.WholeBandRMS)
	}
	// The windowed fit must not be worse than the whole-band fit.
	if res.WindowedRMS > res.WholeBandRMS*1.05 {
		t.Fatalf("windowed RMS %.3f worse than whole band %.3f", res.WindowedRMS, res.WholeBandRMS)
	}
}

func TestAblationNaiveCombining(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform experiment")
	}
	res := RunAblationNaiveCombining(9, 8, 0)
	if math.IsInf(res.STBCWorstSNRdB, 1) {
		t.Fatal("no STBC frames measured")
	}
	worstNaive := res.NaiveWorstSNRdB
	if res.NaiveFailures > 0 {
		worstNaive = -10 // total failures are worse than any SNR
	}
	if res.STBCWorstSNRdB < worstNaive+3 {
		t.Fatalf("STBC worst %.1f dB not clearly above naive worst %.1f dB (failures %d)",
			res.STBCWorstSNRdB, res.NaiveWorstSNRdB, res.NaiveFailures)
	}
}

func TestAblationPilotSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform experiment")
	}
	res := RunAblationPilotSharing(10, 4, 0)
	if res.SharedPilotsEVM <= 0 || res.NaiveTrackEVM <= 0 {
		t.Fatalf("EVMs %.4f %.4f", res.SharedPilotsEVM, res.NaiveTrackEVM)
	}
	if res.NaiveTrackEVM < 2*res.SharedPilotsEVM {
		t.Fatalf("naive tracking EVM %.4f not clearly worse than shared %.4f",
			res.NaiveTrackEVM, res.SharedPilotsEVM)
	}
}

func TestAblationMultiRxLP(t *testing.T) {
	res := RunAblationMultiRxLP(11, 60, 3, 0)
	if res.LPMaxMisalign <= 0 {
		t.Fatal("LP produced zero misalignment on random configs")
	}
	if res.LPMaxMisalign > res.FirstRxMisalign {
		t.Fatalf("LP worst-case %.2f above first-rx alignment %.2f", res.LPMaxMisalign, res.FirstRxMisalign)
	}
}
