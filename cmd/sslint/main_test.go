package main_test

import (
	"bytes"
	"maps"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"testing"
)

// binary is the sslint executable built once in TestMain and shared by
// every test (each `go test` run is a fresh process, so a package-level
// variable needs no synchronization).
var binary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "sslint-e2e-*")
	if err != nil {
		panic(err)
	}
	binary = filepath.Join(dir, "sslint")
	build := exec.Command("go", "build", "-o", binary, ".")
	if out, err := build.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		panic("build sslint: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// writeModule materializes a throwaway module so the injected violation
// cannot touch (or depend on) the real tree.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module sslintfixture\n\ngo 1.24\n"
	for _, name := range slices.Sorted(maps.Keys(files)) {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(files[name]), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runIn executes cmd with args in dir, returning combined stdout+stderr
// and the exit code.
func runIn(t *testing.T, dir, cmd string, args ...string) (string, int) {
	t.Helper()
	c := exec.Command(cmd, args...)
	c.Dir = dir
	var buf bytes.Buffer
	c.Stdout = &buf
	c.Stderr = &buf
	err := c.Run()
	if err == nil {
		return buf.String(), 0
	}
	exit, isExit := err.(*exec.ExitError)
	if !isExit {
		t.Fatalf("%s %v: %v\n%s", cmd, args, err, buf.String())
	}
	return buf.String(), exit.ExitCode()
}

// The injected-violation source mirrors the bug class the contract exists
// for: a simulation package reading the wall clock.
const violatingSim = `package netsim

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}
`

const cleanSim = `package netsim

import "math/rand"

func Draw(rng *rand.Rand) float64 {
	return rng.Float64()
}

func Child(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
`

func TestStandaloneReportsInjectedViolation(t *testing.T) {
	dir := writeModule(t, map[string]string{"netsim/netsim.go": violatingSim})
	out, code := runIn(t, dir, binary, "./...")
	if code == 0 {
		t.Fatalf("sslint exited 0 on a module with a time.Now call:\n%s", out)
	}
	if !bytes.Contains([]byte(out), []byte("time.Now reads the wall clock")) ||
		!bytes.Contains([]byte(out), []byte("[detwallclock]")) {
		t.Errorf("output does not report the injected violation:\n%s", out)
	}
}

func TestStandaloneCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{"netsim/netsim.go": cleanSim})
	out, code := runIn(t, dir, binary, "./...")
	if code != 0 {
		t.Fatalf("sslint exited %d on a clean module:\n%s", code, out)
	}
}

func TestStandaloneHonorsSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{"netsim/netsim.go": `package netsim

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //sslint:allow detwallclock e2e-sanctioned timing site
}
`})
	out, code := runIn(t, dir, binary, "./...")
	if code != 0 {
		t.Fatalf("sslint exited %d despite the suppression:\n%s", code, out)
	}
}

func TestStandaloneReportsStaleSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{"netsim/netsim.go": `package netsim

func Stamp() int64 {
	return 0 //sslint:allow detwallclock nothing here reads the clock
}
`})
	out, code := runIn(t, dir, binary, "./...")
	if code == 0 {
		t.Fatalf("sslint exited 0 with a stale suppression in place:\n%s", out)
	}
	if !bytes.Contains([]byte(out), []byte("unused suppression")) {
		t.Errorf("output does not report the stale suppression:\n%s", out)
	}
}

// TestVetToolProtocol drives the binary the way CI does: through cmd/go's
// -vettool handshake (-V=full, -flags, then one .cfg per package).
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns several go builds")
	}
	dir := writeModule(t, map[string]string{"netsim/netsim.go": violatingSim})
	out, code := runIn(t, dir, "go", "vet", "-vettool="+binary, "./...")
	if code == 0 {
		t.Fatalf("go vet -vettool exited 0 on a module with a time.Now call:\n%s", out)
	}
	if !bytes.Contains([]byte(out), []byte("time.Now reads the wall clock")) {
		t.Errorf("vet output does not report the injected violation:\n%s", out)
	}

	clean := writeModule(t, map[string]string{"netsim/netsim.go": cleanSim})
	out, code = runIn(t, clean, "go", "vet", "-vettool="+binary, "./...")
	if code != 0 {
		t.Fatalf("go vet -vettool exited %d on a clean module:\n%s", code, out)
	}
}
