// Command sslint machine-checks the simulator's determinism contract
// (docs/ARCHITECTURE.md): byte-identical experiment output at any -workers
// count. It runs four analyzers — detwallclock, detrand, detmaprange,
// detgoroutine — with shared //sslint:allow suppression machinery.
//
// Two modes:
//
//	sslint [packages]                              # standalone, defaults to ./...
//	go vet -vettool=$(go env GOPATH)/bin/sslint ./...   # vet tool protocol
//
// Standalone mode prints findings to stdout and exits 1 when any survive.
// As a vet tool it speaks cmd/go's unitchecker protocol: invoked once per
// package with a *.cfg JSON file, printing findings to stderr and exiting
// 2 when any survive, so `go vet` aggregates and fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis/load"
	"repro/internal/analysis/sslint"
)

// version is reported to cmd/go's -V=full handshake and keys the vet
// result cache: bump it when analyzer behavior changes so stale cached
// diagnostics are not replayed.
const version = "0.1.0"

func main() {
	progname := filepath.Base(os.Args[0])
	vFlag := flag.String("V", "", "if 'full', print tool version and exit (cmd/go tool-ID protocol)")
	flagsFlag := flag.Bool("flags", false, "print a JSON description of supported flags and exit (cmd/go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [packages]   (or via go vet -vettool)\n", progname)
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case strings.HasPrefix(*vFlag, "full"):
		// cmd/go hashes this line into the build-cache action ID. The parser
		// in cmd/go/internal/work.(*Builder).toolID demands "name version X"
		// where X != "devel", or a trailing buildID= field; use a fixed
		// version string so vet results are cached per tool release.
		fmt.Printf("%s version %s\n", progname, version)
		return
	case *vFlag != "":
		fmt.Printf("%s version %s\n", progname, version)
		return
	case *flagsFlag:
		// No analyzer-specific flags beyond the protocol ones.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		vetUnit(args[0])
		return
	}
	standalone(args)
}

// standalone loads the pattern-matched packages (and their test variants)
// itself and prints every finding.
func standalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := load.Packages(cwd, patterns)
	if err != nil {
		fatalf("%v", err)
	}
	found := 0
	for _, p := range pkgs {
		findings, err := sslint.Run(p.Fset, p.Files, p.Types, p.Info, sslint.Analyzers())
		if err != nil {
			fatalf("%s: %v", p.ID, err)
		}
		for _, f := range findings {
			found++
			fmt.Println(relativize(cwd, f.String()))
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "sslint: %d determinism-contract finding(s)\n", found)
		os.Exit(1)
	}
}

// vetConfig mirrors the JSON configuration cmd/go hands a unitchecker-
// style vet tool for each package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package under the go vet protocol.
func vetUnit(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := &vetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		fatalf("parse %s: %v", cfgFile, err)
	}
	// The suite exports no analysis facts, but cmd/go requires the facts
	// file to exist before it will cache the vet result.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fatalf("%v", err)
			}
		}
	}
	if cfg.VetxOnly {
		// Facts-only pass over a dependency: nothing to analyze.
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}
	info := load.NewInfo()
	tconf := typesConfig(fset, cfg)
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}

	findings, err := sslint.Run(fset, files, tpkg, info, sslint.Analyzers())
	if err != nil {
		fatalf("%s: %v", cfg.ImportPath, err)
	}
	writeVetx()
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, relativize(cfg.Dir, f.String()))
		}
		os.Exit(2)
	}
}

// typesConfig builds the type-checker configuration for a vet unit: the
// gc export-data importer over cfg.PackageFile with cfg.ImportMap's
// test-variant rewrites applied.
func typesConfig(fset *token.FileSet, cfg *vetConfig) *types.Config {
	return &types.Config{
		Importer:  load.ExportImporter(fset, cfg.ImportMap, cfg.PackageFile),
		GoVersion: cfg.GoVersion,
	}
}

// relativize trims dir from a finding line so vet output stays readable.
func relativize(dir, line string) string {
	return strings.ReplaceAll(line, dir+string(filepath.Separator), "")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sslint: "+format+"\n", args...)
	os.Exit(1)
}
