package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkSaturatedDomain    \t       1\t    321815 ns/op\t   1245489 frames/s", "repro/internal/netsim")
	if !ok {
		t.Fatal("line not recognized")
	}
	if b.Name != "BenchmarkSaturatedDomain" || b.Package != "repro/internal/netsim" {
		t.Fatalf("identity: %+v", b)
	}
	if b.Iterations != 1 || b.NsPerOp != 321815 {
		t.Fatalf("timing: %+v", b)
	}
	if b.Metrics["frames/s"] != 1245489 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \trepro/internal/netsim\t0.004s",
		"pkg: repro/internal/netsim",
		"goos: linux",
		"--- BENCH: BenchmarkFoo",
		"BenchmarkBroken notanumber 12 ns/op",
		"BenchmarkNoNsPerOp 1 42 frames/s", // ns/op is mandatory
	} {
		if _, ok := parseBenchLine(line, ""); ok {
			t.Fatalf("accepted noise line %q", line)
		}
	}
}
