package main

import (
	"regexp"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkSaturatedDomain    \t       1\t    321815 ns/op\t   1245489 frames/s", "repro/internal/netsim")
	if !ok {
		t.Fatal("line not recognized")
	}
	if b.Name != "BenchmarkSaturatedDomain" || b.Package != "repro/internal/netsim" {
		t.Fatalf("identity: %+v", b)
	}
	if b.Iterations != 1 || b.NsPerOp != 321815 {
		t.Fatalf("timing: %+v", b)
	}
	if b.Metrics["frames/s"] != 1245489 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
}

func TestAnyMatchesGatesOnPackageAndName(t *testing.T) {
	// The CI contract: -require 'netsim.*Interference' must accept an
	// artifact carrying the interference benchmarks and reject one where
	// the suite vanished (or only other packages survived).
	re := regexp.MustCompile(`netsim.*Interference`)
	with := []Benchmark{
		{Name: "BenchmarkFig12SyncError", Package: "repro"},
		{Name: "BenchmarkInterferenceRateAware", Package: "repro/internal/netsim"},
	}
	if !anyMatches(with, re) {
		t.Fatal("interference benchmark present but not matched")
	}
	without := []Benchmark{
		{Name: "BenchmarkFig12SyncError", Package: "repro"},
		{Name: "BenchmarkSaturatedDomain", Package: "repro/internal/netsim"},
		{Name: "BenchmarkInterferenceRateAware", Package: "repro/internal/other"},
	}
	if anyMatches(without, re) {
		t.Fatal("matched an artifact with no netsim interference benchmark")
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \trepro/internal/netsim\t0.004s",
		"pkg: repro/internal/netsim",
		"goos: linux",
		"--- BENCH: BenchmarkFoo",
		"BenchmarkBroken notanumber 12 ns/op",
		"BenchmarkNoNsPerOp 1 42 frames/s", // ns/op is mandatory
	} {
		if _, ok := parseBenchLine(line, ""); ok {
			t.Fatalf("accepted noise line %q", line)
		}
	}
}
