package main

import (
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkSaturatedDomain    \t       1\t    321815 ns/op\t   1245489 frames/s", "repro/internal/netsim")
	if !ok {
		t.Fatal("line not recognized")
	}
	if b.Name != "BenchmarkSaturatedDomain" || b.Package != "repro/internal/netsim" {
		t.Fatalf("identity: %+v", b)
	}
	if b.Iterations != 1 || b.NsPerOp != 321815 {
		t.Fatalf("timing: %+v", b)
	}
	if b.Metrics["frames/s"] != 1245489 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
}

func TestAnyMatchesGatesOnPackageAndName(t *testing.T) {
	// The CI contract: -require 'netsim.*Interference' must accept an
	// artifact carrying the interference benchmarks and reject one where
	// the suite vanished (or only other packages survived).
	re := regexp.MustCompile(`netsim.*Interference`)
	with := []Benchmark{
		{Name: "BenchmarkFig12SyncError", Package: "repro"},
		{Name: "BenchmarkInterferenceRateAware", Package: "repro/internal/netsim"},
	}
	if !anyMatches(with, re) {
		t.Fatal("interference benchmark present but not matched")
	}
	without := []Benchmark{
		{Name: "BenchmarkFig12SyncError", Package: "repro"},
		{Name: "BenchmarkSaturatedDomain", Package: "repro/internal/netsim"},
		{Name: "BenchmarkInterferenceRateAware", Package: "repro/internal/other"},
	}
	if anyMatches(without, re) {
		t.Fatal("matched an artifact with no netsim interference benchmark")
	}
}

func TestCompareBaseline(t *testing.T) {
	base := []Benchmark{
		{Name: "BenchmarkStepScaling/flows=10000", Package: "repro/internal/netsim",
			NsPerOp: 4e9, Metrics: map[string]float64{"ns/event": 11000, "events/s": 90000}},
		{Name: "BenchmarkSaturatedDomain", Package: "repro/internal/netsim",
			NsPerOp: 3e5, Metrics: map[string]float64{"frames/s": 1e6}},
	}

	t.Run("within budget passes, new benchmarks ignored", func(t *testing.T) {
		cur := []Benchmark{
			{Name: "BenchmarkStepScaling/flows=10000", Package: "repro/internal/netsim",
				NsPerOp: 8e9, Metrics: map[string]float64{"ns/event": 20000, "events/s": 50000}},
			{Name: "BenchmarkSaturatedDomain", Package: "repro/internal/netsim",
				NsPerOp: 2e5, Metrics: map[string]float64{"frames/s": 2e6}},
			{Name: "BenchmarkBrandNew", Package: "repro", NsPerOp: 1e12},
		}
		if bad := compareBaseline(base, cur, 5); len(bad) != 0 {
			t.Fatalf("within-budget run flagged: %v", bad)
		}
	})

	t.Run("latency regression fails", func(t *testing.T) {
		cur := []Benchmark{
			{Name: "BenchmarkStepScaling/flows=10000", Package: "repro/internal/netsim",
				NsPerOp: 4e9, Metrics: map[string]float64{"ns/event": 66000, "events/s": 90000}},
			base[1],
		}
		bad := compareBaseline(base, cur, 5)
		if len(bad) != 1 || !strings.Contains(bad[0], "ns/event") {
			t.Fatalf("6x ns/event regression not flagged: %v", bad)
		}
	})

	t.Run("rate regression fails downward", func(t *testing.T) {
		cur := []Benchmark{
			base[0],
			{Name: "BenchmarkSaturatedDomain", Package: "repro/internal/netsim",
				NsPerOp: 3e5, Metrics: map[string]float64{"frames/s": 1e5}},
		}
		bad := compareBaseline(base, cur, 5)
		if len(bad) != 1 || !strings.Contains(bad[0], "frames/s") {
			t.Fatalf("10x frames/s drop not flagged: %v", bad)
		}
	})

	t.Run("missing baseline benchmark fails", func(t *testing.T) {
		bad := compareBaseline(base, base[:1], 5)
		if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
			t.Fatalf("vanished benchmark not flagged: %v", bad)
		}
	})
}

func TestLowerIsBetter(t *testing.T) {
	for _, c := range []struct {
		unit string
		want bool
	}{
		{"ns/op", true}, {"ns/event", true}, {"frames/s", false}, {"events/s", false},
	} {
		if lowerIsBetter(c.unit) != c.want {
			t.Fatalf("lowerIsBetter(%q) != %v", c.unit, c.want)
		}
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \trepro/internal/netsim\t0.004s",
		"pkg: repro/internal/netsim",
		"goos: linux",
		"--- BENCH: BenchmarkFoo",
		"BenchmarkBroken notanumber 12 ns/op",
		"BenchmarkNoNsPerOp 1 42 frames/s", // ns/op is mandatory
	} {
		if _, ok := parseBenchLine(line, ""); ok {
			t.Fatalf("accepted noise line %q", line)
		}
	}
}
