package main

import (
	"math"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkSaturatedDomain    \t       1\t    321815 ns/op\t   1245489 frames/s", "repro/internal/netsim")
	if !ok {
		t.Fatal("line not recognized")
	}
	if b.Name != "BenchmarkSaturatedDomain" || b.Package != "repro/internal/netsim" {
		t.Fatalf("identity: %+v", b)
	}
	if b.Iterations != 1 || b.NsPerOp != 321815 {
		t.Fatalf("timing: %+v", b)
	}
	if b.Metrics["frames/s"] != 1245489 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
}

func TestRequirementsGateOnPackageAndName(t *testing.T) {
	// The CI contract: -require 'netsim.*Interference' must accept an
	// artifact carrying the interference benchmarks and reject one where
	// the suite vanished (or only other packages survived).
	reqs, err := parseRequirements([]string{`netsim.*Interference`})
	if err != nil {
		t.Fatal(err)
	}
	with := []Benchmark{
		{Name: "BenchmarkFig12SyncError", Package: "repro"},
		{Name: "BenchmarkInterferenceRateAware", Package: "repro/internal/netsim"},
	}
	if unmet := unmetRequirements(with, reqs); len(unmet) != 0 {
		t.Fatalf("interference benchmark present but not matched: %v", unmet)
	}
	without := []Benchmark{
		{Name: "BenchmarkFig12SyncError", Package: "repro"},
		{Name: "BenchmarkSaturatedDomain", Package: "repro/internal/netsim"},
		{Name: "BenchmarkInterferenceRateAware", Package: "repro/internal/other"},
	}
	if unmet := unmetRequirements(without, reqs); len(unmet) != 1 {
		t.Fatalf("artifact with no netsim interference benchmark passed: %v", unmet)
	}
}

func TestRequirementsGateOnMetricUnit(t *testing.T) {
	// The StepScaling guard: the benchmark being present is not enough —
	// its ReportMetric lines must have survived into the artifact, or the
	// baseline gate downstream would silently compare nothing.
	benchmarks := []Benchmark{
		{Name: "BenchmarkStepScaling/flows=10000", Package: "repro/internal/netsim",
			Metrics: map[string]float64{"ns/event": 7500, "events/s": 133000}},
		{Name: "BenchmarkStepScaling/flows=100000", Package: "repro/internal/netsim"},
	}
	reqs, err := parseRequirements([]string{
		`StepScaling/flows=10000$@ns/event`, // present with the metric
		`StepScaling/flows=10000$@ns/op`,    // ns/op is implicit on every benchmark
		`StepScaling/flows=100000@ns/event`, // benchmark there, metric dropped
		`StepScaling/flows=1000$@ns/event`,  // benchmark missing entirely
	})
	if err != nil {
		t.Fatal(err)
	}
	unmet := unmetRequirements(benchmarks, reqs)
	if len(unmet) != 2 {
		t.Fatalf("want 2 unmet requirements, got %d: %v", len(unmet), unmet)
	}
	if !strings.Contains(unmet[0], "ns/event") || !strings.Contains(unmet[0], "flows=100000") {
		t.Errorf("first violation should name the dropped metric: %q", unmet[0])
	}
	if !strings.Contains(unmet[1], "flows=1000$") {
		t.Errorf("second violation should name the missing benchmark: %q", unmet[1])
	}
}

func TestParseRequirementsRejectsBadValues(t *testing.T) {
	if _, err := parseRequirements([]string{`StepScaling@`}); err == nil {
		t.Error("empty unit after @ accepted")
	}
	if _, err := parseRequirements([]string{`[unclosed`}); err == nil {
		t.Error("bad regexp accepted")
	}
}

func TestCompareBaseline(t *testing.T) {
	base := []Benchmark{
		{Name: "BenchmarkStepScaling/flows=10000", Package: "repro/internal/netsim",
			NsPerOp: 4e9, Metrics: map[string]float64{"ns/event": 11000, "events/s": 90000}},
		{Name: "BenchmarkSaturatedDomain", Package: "repro/internal/netsim",
			NsPerOp: 3e5, Metrics: map[string]float64{"frames/s": 1e6}},
	}

	t.Run("within budget passes, new benchmarks ignored", func(t *testing.T) {
		cur := []Benchmark{
			{Name: "BenchmarkStepScaling/flows=10000", Package: "repro/internal/netsim",
				NsPerOp: 8e9, Metrics: map[string]float64{"ns/event": 20000, "events/s": 50000}},
			{Name: "BenchmarkSaturatedDomain", Package: "repro/internal/netsim",
				NsPerOp: 2e5, Metrics: map[string]float64{"frames/s": 2e6}},
			{Name: "BenchmarkBrandNew", Package: "repro", NsPerOp: 1e12},
		}
		if bad := compareBaseline(base, cur, 5); len(bad) != 0 {
			t.Fatalf("within-budget run flagged: %v", bad)
		}
	})

	t.Run("latency regression fails", func(t *testing.T) {
		cur := []Benchmark{
			{Name: "BenchmarkStepScaling/flows=10000", Package: "repro/internal/netsim",
				NsPerOp: 4e9, Metrics: map[string]float64{"ns/event": 66000, "events/s": 90000}},
			base[1],
		}
		bad := compareBaseline(base, cur, 5)
		if len(bad) != 1 || !strings.Contains(bad[0], "ns/event") {
			t.Fatalf("6x ns/event regression not flagged: %v", bad)
		}
	})

	t.Run("rate regression fails downward", func(t *testing.T) {
		cur := []Benchmark{
			base[0],
			{Name: "BenchmarkSaturatedDomain", Package: "repro/internal/netsim",
				NsPerOp: 3e5, Metrics: map[string]float64{"frames/s": 1e5}},
		}
		bad := compareBaseline(base, cur, 5)
		if len(bad) != 1 || !strings.Contains(bad[0], "frames/s") {
			t.Fatalf("10x frames/s drop not flagged: %v", bad)
		}
	})

	t.Run("missing baseline benchmark fails", func(t *testing.T) {
		bad := compareBaseline(base, base[:1], 5)
		if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
			t.Fatalf("vanished benchmark not flagged: %v", bad)
		}
	})
}

func TestLowerIsBetter(t *testing.T) {
	for _, c := range []struct {
		unit string
		want bool
	}{
		{"ns/op", true}, {"ns/event", true}, {"frames/s", false}, {"events/s", false},
		{"speedup-x", false}, // a ratio: the parallel path getting faster is not a regression
		{"B/op", true}, {"allocs/op", true},
	} {
		if lowerIsBetter(c.unit) != c.want {
			t.Fatalf("lowerIsBetter(%q) != %v", c.unit, c.want)
		}
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \trepro/internal/netsim\t0.004s",
		"pkg: repro/internal/netsim",
		"goos: linux",
		"--- BENCH: BenchmarkFoo",
		"BenchmarkBroken notanumber 12 ns/op",
		"BenchmarkNoNsPerOp 1 42 frames/s", // ns/op is mandatory
		// Non-finite measurements: strconv.ParseFloat accepts all of these
		// spellings, but a NaN would later sink the whole JSON record
		// (json.Encoder rejects it), so the parser must drop the line.
		"BenchmarkNaN 1 NaN ns/op",
		"BenchmarkNaNMetric 1 100 ns/op NaN frames/s",
		"BenchmarkInf 1 +Inf ns/op",
		"BenchmarkNegInf 1 100 ns/op -Inf frames/s",
		"BenchmarkNegIters -1 100 ns/op",
	} {
		if _, ok := parseBenchLine(line, ""); ok {
			t.Fatalf("accepted noise line %q", line)
		}
	}
}

func TestCompareBaselineDegenerateValues(t *testing.T) {
	// A zero-iteration baseline entry (e.g. a hand-edited or truncated
	// record) carries zero ns/op and zero rates; none of it is ratioable,
	// so a normal current run must pass without a manufactured regression.
	t.Run("zero-iteration baseline benchmark passes", func(t *testing.T) {
		base := []Benchmark{
			{Name: "BenchmarkStub", Package: "repro/internal/netsim", Iterations: 0,
				NsPerOp: 0, Metrics: map[string]float64{"frames/s": 0}},
		}
		cur := []Benchmark{
			{Name: "BenchmarkStub", Package: "repro/internal/netsim", Iterations: 1,
				NsPerOp: 5e9, Metrics: map[string]float64{"frames/s": 1}},
		}
		if bad := compareBaseline(base, cur, 5); len(bad) != 0 {
			t.Fatalf("zero baseline values manufactured a regression: %v", bad)
		}
	})

	// NaN on either side of a ratio makes every comparison vacuously
	// false; the guard must skip it explicitly rather than let NaN decide.
	t.Run("NaN values are skipped, finite metrics still checked", func(t *testing.T) {
		nan := math.NaN()
		base := []Benchmark{
			{Name: "BenchmarkMixed", Package: "repro", NsPerOp: nan,
				Metrics: map[string]float64{"ns/event": 1000, "events/s": nan}},
		}
		cur := []Benchmark{
			{Name: "BenchmarkMixed", Package: "repro", NsPerOp: 100,
				Metrics: map[string]float64{"ns/event": 60000, "events/s": 1}},
		}
		bad := compareBaseline(base, cur, 5)
		if len(bad) != 1 || !strings.Contains(bad[0], "ns/event") {
			t.Fatalf("want exactly the finite ns/event regression flagged, got %v", bad)
		}
	})

	t.Run("zero current value does not divide by zero", func(t *testing.T) {
		base := []Benchmark{{Name: "B", Package: "p", NsPerOp: 100,
			Metrics: map[string]float64{"events/s": 1000}}}
		cur := []Benchmark{{Name: "B", Package: "p", NsPerOp: 100,
			Metrics: map[string]float64{"events/s": 0}}}
		if bad := compareBaseline(base, cur, 5); len(bad) != 0 {
			t.Fatalf("zero current rate should be skipped, not flagged: %v", bad)
		}
	})
}

func TestCompareBaselineMixedUnitsOneBenchmark(t *testing.T) {
	// One benchmark carrying both a latency metric and a rate metric:
	// the two regress in opposite directions, and both must be caught in
	// the same pass (latency up 10x, rate down 10x).
	base := []Benchmark{
		{Name: "BenchmarkStep", Package: "repro/internal/netsim", NsPerOp: 1e6,
			Metrics: map[string]float64{"ns/event": 1000, "events/s": 1e6}},
	}
	cur := []Benchmark{
		{Name: "BenchmarkStep", Package: "repro/internal/netsim", NsPerOp: 1e6,
			Metrics: map[string]float64{"ns/event": 1e4, "events/s": 1e5}},
	}
	bad := compareBaseline(base, cur, 5)
	if len(bad) != 2 {
		t.Fatalf("want both the latency and the rate regression, got %v", bad)
	}
	joined := strings.Join(bad, "\n")
	for _, unit := range []string{"ns/event", "events/s"} {
		if !strings.Contains(joined, unit) {
			t.Errorf("missing %s regression in %v", unit, bad)
		}
	}

	// Improvements in both directions pass: latency down, rate up.
	better := []Benchmark{
		{Name: "BenchmarkStep", Package: "repro/internal/netsim", NsPerOp: 1e5,
			Metrics: map[string]float64{"ns/event": 100, "events/s": 1e7}},
	}
	if bad := compareBaseline(base, better, 5); len(bad) != 0 {
		t.Fatalf("improvement flagged as regression: %v", bad)
	}
}

func TestParseBenchStreamMixedUnits(t *testing.T) {
	// A realistic mixed stream: latency-only benchmarks and rate-carrying
	// benchmarks from different packages in one `go test -bench` output.
	lines := []string{
		"BenchmarkFig12SyncError-8 10 123456 ns/op",
		"BenchmarkSaturatedDomain-8 1 321815 ns/op 1245489 frames/s",
		"BenchmarkStepScaling/flows=10000-8 1 4e+09 ns/op 11000 ns/event 90000 events/s",
	}
	var got []Benchmark
	for _, line := range lines {
		b, ok := parseBenchLine(line, "repro/internal/netsim")
		if !ok {
			t.Fatalf("rejected valid line %q", line)
		}
		got = append(got, b)
	}
	if got[0].Metrics != nil {
		t.Errorf("latency-only benchmark grew metrics: %v", got[0].Metrics)
	}
	if got[1].Metrics["frames/s"] != 1245489 {
		t.Errorf("frames/s lost: %v", got[1].Metrics)
	}
	if got[2].NsPerOp != 4e9 || got[2].Metrics["ns/event"] != 11000 || got[2].Metrics["events/s"] != 90000 {
		t.Errorf("mixed-unit benchmark misparsed: %+v", got[2])
	}
}
