// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON perf record (stdout), so CI can archive simulator speed as an
// artifact and the perf trajectory of the hot paths stays machine-readable.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | go run ./cmd/benchjson > BENCH_netsim.json
//
// Each benchmark line ("BenchmarkName-8  10  123456 ns/op  42 frames/s")
// becomes one record with its package (from the preceding "pkg:" line),
// iterations, ns/op, and any extra b.ReportMetric pairs.
//
// -require REGEXP[@UNIT] exits nonzero unless at least one parsed
// benchmark's "package.Name" matches — and, with the @UNIT suffix, that a
// matching benchmark actually reports the named metric (e.g.
// -require 'StepScaling/flows=10000$@ns/event'). The flag is repeatable;
// every requirement must be met. This is CI's guard against a
// perf-critical benchmark — or just its ReportMetric line — silently
// dropping out of the artifact (e.g. the netsim interference hot path or
// the StepScaling per-event metrics the baseline gate watches).
//
// -baseline FILE compares this run against a committed record (the repo's
// BENCH_netsim.json): every baseline benchmark must appear in the current
// run, and no shared metric may be worse than -max-regress times its
// baseline value. Latency-like units (ns/op, ns/event) regress upward,
// rate-like units (anything per second) regress downward. The JSON record
// is emitted either way so the artifact survives a failing gate; the
// default factor is deliberately generous because CI runs benchmarks at
// -benchtime 1x on shared runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's parsed result.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Record is the artifact schema: enough context to compare runs over time.
type Record struct {
	Schema     string      `json:"schema"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var requires requireFlags
	flag.Var(&requires, "require", "fail unless a parsed benchmark's package.Name matches this REGEXP[@UNIT]; repeatable, all must be met")
	baseline := flag.String("baseline", "", "fail if any benchmark in this record regressed past -max-regress")
	maxRegress := flag.Float64("max-regress", 5, "tolerated slowdown factor for -baseline (single-shot CI timings are noisy)")
	flag.Parse()
	reqs, err := parseRequirements(requires)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	// The baseline is read before any output so a bad path fails fast —
	// and so a caller redirecting stdout over the baseline file cannot
	// accidentally compare the run against itself.
	var base *Record
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: reading -baseline: %v\n", err)
			os.Exit(2)
		}
		base = &Record{}
		if err := json.Unmarshal(data, base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing -baseline %s: %v\n", *baseline, err)
			os.Exit(2)
		}
	}

	rec := Record{Schema: "repro-bench/v1"}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rec.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		}
		b, ok := parseBenchLine(line, pkg)
		if !ok {
			continue
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	if unmet := unmetRequirements(rec.Benchmarks, reqs); len(unmet) > 0 {
		for _, msg := range unmet {
			fmt.Fprintf(os.Stderr, "benchjson: %s — the perf artifact would silently drop it\n", msg)
		}
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if base != nil {
		if bad := compareBaseline(base.Benchmarks, rec.Benchmarks, *maxRegress); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintf(os.Stderr, "benchjson: regression vs %s: %s\n", *baseline, msg)
			}
			os.Exit(1)
		}
	}
}

// compareBaseline checks the current benchmarks against a committed
// baseline and returns one message per violation: a baseline benchmark
// missing from this run, or a shared metric worse than factor times its
// baseline value. Benchmarks new in this run pass freely — they have no
// baseline yet.
func compareBaseline(base, cur []Benchmark, factor float64) []string {
	curBy := make(map[string]Benchmark, len(cur))
	for _, b := range cur {
		curBy[b.Package+"."+b.Name] = b
	}
	var bad []string
	for _, want := range base {
		key := want.Package + "." + want.Name
		got, ok := curBy[key]
		if !ok {
			bad = append(bad, key+": in baseline but missing from this run")
			continue
		}
		check := func(unit string, wantV, gotV float64) {
			// A zero, negative, or non-finite value on either side means
			// there is nothing meaningful to ratio: a zero-iteration or
			// hand-edited baseline must not manufacture a regression (or
			// silently mask one by making every comparison NaN).
			if !isFiniteRatioable(wantV) || !isFiniteRatioable(gotV) {
				return
			}
			ratio := gotV / wantV
			if !lowerIsBetter(unit) {
				ratio = wantV / gotV
			}
			if ratio > factor {
				bad = append(bad, fmt.Sprintf("%s %s: %.4g -> %.4g (%.2fx worse, limit %.2fx)",
					key, unit, wantV, gotV, ratio, factor))
			}
		}
		check("ns/op", want.NsPerOp, got.NsPerOp)
		units := make([]string, 0, len(want.Metrics))
		for u := range want.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			if gotV, ok := got.Metrics[u]; ok {
				check(u, want.Metrics[u], gotV)
			}
		}
	}
	return bad
}

// lowerIsBetter reports whether a metric unit improves downward (latencies
// like ns/op or ns/event) rather than upward (rates like frames/s, ratios
// like speedup-x).
func lowerIsBetter(unit string) bool {
	return !strings.Contains(unit, "/s") && !strings.Contains(unit, "speedup")
}

// isFiniteRatioable reports whether v can sit on either side of a
// regression ratio: strictly positive and finite.
func isFiniteRatioable(v float64) bool {
	return v > 0 && !math.IsInf(v, 1)
}

// requireFlags collects repeated -require values.
type requireFlags []string

func (r *requireFlags) String() string { return strings.Join(*r, ",") }
func (r *requireFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

// requirement is one parsed -require value: a pattern over "package.Name",
// plus an optional metric unit the matching benchmark must report.
type requirement struct {
	raw  string
	re   *regexp.Regexp
	unit string // "" = presence of the benchmark alone suffices
}

// parseRequirements compiles -require values of the form REGEXP[@UNIT].
// The unit is split on the last "@" so regexp syntax containing "@" stays
// expressible (units themselves never contain one).
func parseRequirements(raw []string) ([]requirement, error) {
	reqs := make([]requirement, 0, len(raw))
	for _, v := range raw {
		pat, unit := v, ""
		if i := strings.LastIndex(v, "@"); i >= 0 {
			pat, unit = v[:i], v[i+1:]
			if unit == "" {
				return nil, fmt.Errorf("bad -require %q: empty unit after @", v)
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("bad -require %q: %v", v, err)
		}
		reqs = append(reqs, requirement{raw: v, re: re, unit: unit})
	}
	return reqs, nil
}

// unmetRequirements returns one message per -require value no benchmark
// satisfies: the pattern must match some "package.Name", and when a unit
// is named, a matching benchmark must report that metric ("ns/op" counts —
// every parsed benchmark has it).
func unmetRequirements(benchmarks []Benchmark, reqs []requirement) []string {
	var unmet []string
	for _, req := range reqs {
		matched, withUnit := false, false
		for _, b := range benchmarks {
			if !req.re.MatchString(b.Package + "." + b.Name) {
				continue
			}
			matched = true
			if req.unit == "" || req.unit == "ns/op" {
				withUnit = true
				break
			}
			if _, ok := b.Metrics[req.unit]; ok {
				withUnit = true
				break
			}
		}
		switch {
		case !matched:
			unmet = append(unmet, fmt.Sprintf("no benchmark matches -require %q", req.raw))
		case !withUnit:
			unmet = append(unmet, fmt.Sprintf("benchmarks match -require %q but none reports metric %q", req.raw, req.unit))
		}
	}
	return unmet
}

// parseBenchLine parses one "BenchmarkFoo-8 N value unit [value unit]..."
// line; ok is false for anything else.
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters < 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Package: pkg, Iterations: iters, NsPerOp: -1}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		// ParseFloat happily accepts "NaN" and "Inf", but a non-finite
		// value is never a real benchmark measurement — and NaN would later
		// make json.Encoder fail on the whole record. Treat the line as
		// noise instead.
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	if b.NsPerOp < 0 {
		return Benchmark{}, false
	}
	return b, true
}
