// Command ssserve is the long-running simulation job service: it accepts
// experiment jobs over an HTTP/JSON API and runs them on the deterministic
// engine worker pool, producing output byte-identical to a batch `ssbench`
// run of the same spec. See docs/ARCHITECTURE.md ("The job service") for
// the API and the determinism argument.
//
// Usage:
//
//	ssserve [-addr :8080] [-max-running N] [-queue N] [-timeout 15m] [-cache N] [-max-jobs N]
//
// Submit a job and fetch its output:
//
//	curl -s -X POST localhost:8080/jobs -d '{"experiment":"fig12","quick":true}'
//	curl -s localhost:8080/jobs/j1/output
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxRunning := flag.Int("max-running", 0, "jobs executing concurrently (0 = one per CPU)")
	queue := flag.Int("queue", 0, "max jobs queued before submits get 503 (0 = 64)")
	timeout := flag.Duration("timeout", 0, "default per-job timeout (0 = 15m, -1ns = none)")
	cache := flag.Int("cache", 0, "completed-output cache entries (0 = 256, negative disables)")
	maxJobs := flag.Int("max-jobs", 0, "finished jobs retained in the job table (0 = 4096, negative retains all)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	s := serve.New(serve.Config{
		MaxRunning:   *maxRunning,
		MaxQueue:     *queue,
		JobTimeout:   *timeout,
		CacheEntries: *cache,
		MaxJobs:      *maxJobs,
	})
	defer s.Close()

	fmt.Fprintf(os.Stderr, "ssserve listening on %s\n", *addr)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := hs.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "ssserve: %v\n", err)
		os.Exit(1)
	}
}
