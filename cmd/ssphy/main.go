// Command ssphy runs a single SourceSync joint transmission through the
// waveform-level simulator and prints everything the receiver measured:
// detection, per-sender channels, misalignment estimate versus ground
// truth, per-subcarrier SNRs and decode status. A debugging lens into the
// PHY.
//
// Usage:
//
//	ssphy [-seed N] [-snr dB] [-co N] [-profile 80211|wiglan] [-baseline]
package main

import (
	"flag"
	"fmt"
	"maps"
	"math"
	"math/rand"
	"os"
	"slices"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/phy"
)

var (
	seed     = flag.Int64("seed", 1, "random seed")
	snr      = flag.Float64("snr", 20, "per-sender SNR at the receiver, dB")
	numCo    = flag.Int("co", 1, "number of co-senders (1-3)")
	profile  = flag.String("profile", "wiglan", "PHY profile: 80211 or wiglan")
	baseline = flag.Bool("baseline", false, "disable delay compensation (unsynchronized baseline)")
	payload  = flag.Int("bytes", 120, "payload size")
)

func main() {
	flag.Parse()
	var cfg *modem.Config
	switch *profile {
	case "80211":
		cfg = modem.Profile80211()
	case "wiglan":
		cfg = modem.ProfileWiGLAN()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if *numCo < 1 || *numCo > 3 {
		fmt.Fprintln(os.Stderr, "co must be 1-3")
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	p := phy.JointFrameParams{
		Cfg: cfg, Rate: modem.Rate{Mod: modem.QPSK, Code: modem.Rate12},
		DataCP: cfg.CPLen, PayloadLen: *payload, Seed: 0x5d,
		NumCo: *numCo, LeadID: 1, PacketID: phy.HashPacketID(0x0a000001, 0x0a000002, 99),
	}
	lts := cfg.LTSTime()
	noise := channel.NoisePowerForSNR(dsp.MeanPower(lts), *snr)
	mk := func() *channel.Multipath { return channel.NewIndoor(rng, cfg.SampleRateHz, 40, 4) }

	sim := &phy.JointSimConfig{
		P:        p,
		Lead:     phy.LeadSim{ResidCFO: channel.PPMToCFO(0.2, 5.8e9, cfg.SampleRateHz), Phase: rng.Float64() * 2 * math.Pi},
		LeadToRx: phy.Link{Gain: 1, Delay: 2 + rng.Float64()*8, Path: mk()},
		NoiseRx:  noise,
		Rng:      rng,
	}
	for i := 0; i < *numCo; i++ {
		d := 1 + rng.Float64()*8
		tRx := 1 + rng.Float64()*8
		sim.LeadToCo = append(sim.LeadToCo, phy.Link{Gain: 1, Delay: d, Path: mk()})
		sim.CoToRx = append(sim.CoToRx, phy.Link{Gain: 1, Delay: tRx, Path: mk()})
		sim.Co = append(sim.Co, phy.CoSenderSim{
			Turnaround:       500 + rng.Float64()*300,
			OscCFO:           channel.PPMToCFO((rng.Float64()*2-1)*15, 5.8e9, cfg.SampleRateHz),
			ResidCFO:         channel.PPMToCFO((rng.Float64()*2-1)*0.3, 5.8e9, cfg.SampleRateHz),
			Phase:            rng.Float64() * 2 * math.Pi,
			EstDelayFromLead: d,
			TxOffset:         sim.LeadToRx.Delay - tRx,
			NoisePower:       noise,
			FFTBackoff:       3,
			BaselineSync:     *baseline,
			DetectJitter:     38,
		})
	}

	pay := make([]byte, *payload)
	rng.Read(pay)
	run, err := sim.Run(pay)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim:", err)
		os.Exit(1)
	}

	fmt.Printf("profile %s, %d co-sender(s), per-sender SNR %.1f dB, baseline=%v\n",
		cfg.Name, *numCo, *snr, *baseline)
	fmt.Printf("frame: %d samples (%.1f us), overhead %.2f%%\n",
		p.TotalLen(), p.AirtimeSeconds()*1e6, p.OverheadFraction()*100)
	for i := range sim.Co {
		fmt.Printf("co %d: joined=%v arrival-est-err=%+.2f smp true-misalign=%+.3f smp (%.1f ns)\n",
			i, run.CoJoined[i], run.CoArrivalEstErr[i], run.TrueMisalign[i],
			run.TrueMisalign[i]/cfg.SampleRateHz*1e9)
	}

	rx := &phy.JointReceiver{Cfg: cfg, FFTBackoff: 3}
	res, err := rx.Receive(run.RxWave, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "receive:", err)
		os.Exit(1)
	}
	fmt.Printf("\nreceiver:\n")
	fmt.Printf("  detect: coarse=%d fine=%d coarseCFO=%.2e\n",
		res.Detect.CoarseIdx, res.Detect.FineIdx, res.Detect.CoarseCFO)
	fmt.Printf("  header: %+v\n", res.Header)
	for i := range res.ActiveCo {
		fmt.Printf("  co %d: active=%v misalign-est=%+.3f smp (err vs truth %+.3f)\n",
			i, res.ActiveCo[i], res.MisalignEst[i], res.MisalignEst[i]-run.TrueMisalign[i])
	}
	lead := res.SenderSNR(0)
	comp := res.CompositeSNR()
	fmt.Printf("  lead avg SNR     %6.2f dB\n", avgDB(lead))
	for j := 1; j <= *numCo; j++ {
		fmt.Printf("  co %d avg SNR     %6.2f dB\n", j-1, avgDB(res.SenderSNR(j)))
	}
	fmt.Printf("  composite SNR    %6.2f dB\n", avgDB(comp))
	fmt.Printf("  EVM %.4f (effective SNR %.1f dB)\n", res.EVM, dsp.DB(1/res.EVM))
	fmt.Printf("  decode: ok=%v payload-match=%v\n", res.OK, res.OK && string(res.Payload) == string(pay))
}

func avgDB(m map[int]float64) float64 {
	var lin float64
	// Sorted-key sum: float addition in randomized map order would make
	// the printed averages drift run to run at full precision.
	for _, k := range slices.Sorted(maps.Keys(m)) {
		lin += m[k]
	}
	if len(m) == 0 {
		return math.Inf(-1)
	}
	return dsp.DB(lin / float64(len(m)))
}
