package main

import (
	"os"
	"strings"
	"testing"
)

// The docs-freshness contract: docs/EXPERIMENTS.md documents every
// experiment ssbench registers. Registering a new experiment without
// documenting it (or renaming one and leaving the doc stale) fails here —
// and in CI, which runs this test as a dedicated step.
func TestExperimentsDocCoversEveryExperiment(t *testing.T) {
	data, err := os.ReadFile("../../docs/EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("docs/EXPERIMENTS.md must exist: %v", err)
	}
	doc := string(data)
	for _, name := range experimentNames {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("docs/EXPERIMENTS.md does not mention experiment %q (expected a `%s` reference)", name, name)
		}
	}
}

// experimentNames feeds the `all` loop, the usage line, and the docs
// check, so each entry must be well-formed: unique, lower-case (run()
// lower-cases its argument before the switch), and space-free.
func TestExperimentNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range experimentNames {
		if seen[name] {
			t.Errorf("experiment %q registered twice", name)
		}
		seen[name] = true
		if name != strings.ToLower(name) || strings.ContainsAny(name, " \t") {
			t.Errorf("experiment %q must be lower-case with no spaces (run() lower-cases its argument)", name)
		}
	}
}
