// Command ssbench regenerates the tables and figures of the SourceSync
// paper's evaluation (§8) at full size and prints their series as text.
//
// Usage:
//
//	ssbench [flags] <experiment>
//
// Experiments: fig12 fig13 fig14 fig15 fig16 fig17 fig18 cell cellsweep
// metro crosstraffic crosstraffic-spatial overhead detdelay ablations all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	sourcesync "repro"
	"repro/internal/engine"
	"repro/internal/modem"
	"repro/internal/netsim"
)

var (
	seed     = flag.Int64("seed", 1, "base random seed")
	quick    = flag.Bool("quick", false, "run shrunken workloads (~10x faster)")
	parallel = flag.Bool("parallel", true, "fan trials out across all CPUs (results are identical either way)")
	nworkers = flag.Int("workers", 0, "worker count when -parallel (0 = GOMAXPROCS)")
	list     = flag.Bool("list", false, "print the registered experiment names, one per line, and exit (CI loops over this)")
	cells    = flag.String("cells", "1,2,3", "comma-separated cell counts for cellsweep's capacity-vs-cell-count table")
	csRanges = flag.String("cs", "20,30,45", "comma-separated carrier-sense ranges (meters) for cellsweep's capacity-vs-CS-range table")
	window   = flag.Float64("window", 0, "fixed-time-window saturation mode for cell/cellsweep: drain unbounded backlogs for this many virtual seconds (0 = drain fixed per-client backlogs)")
	legacy   = flag.Bool("legacy", false, "run cell/cellsweep/crosstraffic* with their pre-model interference behavior (cellsweep keeps its binary CaptureDB gate; cell and the crosstraffic variants historically modeled no interference at all)")
)

// experimentNames lists every registered experiment in the order `all`
// runs them. docs_test.go checks docs/EXPERIMENTS.md documents each one,
// so the list, the run switch, and the docs cannot drift apart silently.
var experimentNames = []string{
	"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
	"cell", "cellsweep", "metro", "crosstraffic", "crosstraffic-spatial",
	"overhead", "detdelay", "ablations",
}

// workers translates the flags into the engine's convention: 1 worker when
// -parallel=false, otherwise -workers (0 meaning one worker per CPU).
func workers() int {
	if !*parallel {
		return 1
	}
	return *nworkers
}

func main() {
	flag.Parse()
	if *list {
		for _, e := range experimentNames {
			fmt.Println(e)
		}
		return
	}
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	start := time.Now() //sslint:allow detwallclock stderr-only timing report; stdout stays byte-identical
	for _, exp := range flag.Args() {
		run(strings.ToLower(exp))
	}
	// Timing goes to stderr so stdout stays byte-identical across runs
	// (the tables are diffed to check worker-count determinism).
	fmt.Fprintf(os.Stderr, "\ntotal wall clock: %.2fs (%d workers)\n",
		time.Since(start).Seconds(), engine.WorkerCount(workers())) //sslint:allow detwallclock stderr-only timing report; stdout stays byte-identical
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ssbench [-seed N] [-quick] [-parallel=false] [-workers N] [-cells N,N,...] [-cs M,M,...] [-window SEC] [-legacy] <%s|all>\n       ssbench -list\n",
		strings.Join(experimentNames, "|"))
}

func run(exp string) {
	start := time.Now() //sslint:allow detwallclock per-experiment stderr timing; no simulation state involved
	defer func() {
		fmt.Fprintf(os.Stderr, "[%s: %.2fs wall clock]\n", exp, time.Since(start).Seconds()) //sslint:allow detwallclock per-experiment stderr timing; no simulation state involved
	}()
	switch exp {
	case "fig12":
		fig12()
	case "fig13":
		fig13()
	case "fig14":
		fig14()
	case "fig15":
		fig15()
	case "fig16":
		fig16()
	case "fig17":
		fig17()
	case "fig18":
		fig18(6)
		fig18(12)
	case "cell":
		cell()
	case "cellsweep":
		cellsweep()
	case "metro":
		metro()
	case "crosstraffic":
		crosstraffic()
	case "crosstraffic-spatial":
		crosstrafficSpatial()
	case "overhead":
		overhead()
	case "detdelay":
		detdelay()
	case "ablations":
		ablations()
	case "all":
		for _, e := range experimentNames {
			run(e)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
		usage()
		os.Exit(2)
	}
}

func shrink(n int) int {
	if *quick && n > 4 {
		return n / 4
	}
	return n
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func fig12() {
	header("Figure 12 — 95th percentile synchronization error vs SNR (WiGLAN profile)")
	o := sourcesync.DefaultFig12Options()
	o.Seed = *seed
	o.Workers = workers()
	o.Trials = shrink(o.Trials)
	fmt.Printf("%8s %12s %12s %8s %8s\n", "SNR(dB)", "p50(ns)", "p95(ns)", "usable", "dropped")
	for _, p := range sourcesync.RunFig12(o) {
		fmt.Printf("%8.1f %12.2f %12.2f %8d %8d\n", p.SNRdB, p.P50Ns, p.P95Ns, p.Usable, p.Dropped)
	}
	fmt.Println("paper: <= 20 ns across the operational SNR range")
}

func fig13() {
	header("Figure 13 — composite SNR vs cyclic prefix: SourceSync vs unsynchronized baseline")
	o := sourcesync.DefaultFig13Options()
	o.Seed = *seed + 1
	o.Workers = workers()
	o.FramesPerCP = shrink(o.FramesPerCP * 2)
	fmt.Printf("%10s %10s %14s %14s\n", "CP(ns)", "CP(smp)", "SourceSync(dB)", "Baseline(dB)")
	for _, p := range sourcesync.RunFig13(o) {
		fmt.Printf("%10.0f %10d %14.2f %14.2f\n", p.CPNs, p.CPSamples, p.SourceSyncSNR, p.BaselineSNR)
	}
	fmt.Println("paper: SourceSync reaches ~95% of peak SNR at 117 ns; baseline needs ~469 ns")
}

func fig14() {
	header("Figure 14 — delay spread of a single sender (|h|^2 vs tap index)")
	o := sourcesync.DefaultFig14Options()
	o.Seed = *seed + 2
	o.Workers = workers()
	pts := sourcesync.RunFig14(o)
	fmt.Printf("%6s %10s\n", "tap", "|h|^2")
	for _, p := range pts {
		if p.TapIdx%2 == 0 { // thin the printout
			fmt.Printf("%6d %10.4f\n", p.TapIdx, p.Power)
		}
	}
	fmt.Printf("significant taps (>=1%% of peak): %d (paper: ~15)\n", sourcesync.SignificantTaps(pts, 0.01))
}

func fig15() {
	header("Figure 15 — power gains: average SNR, single sender vs SourceSync")
	o := sourcesync.DefaultFig15Options()
	o.Seed = *seed + 3
	o.Workers = workers()
	o.Placements = shrink(o.Placements)
	fmt.Printf("%8s %14s %14s %10s %6s\n", "regime", "single(dB)", "SourceSync(dB)", "gain(dB)", "n")
	for _, r := range sourcesync.RunFig15(o) {
		fmt.Printf("%8s %14.2f %14.2f %10.2f %6d\n", r.Regime, r.SingleSNRdB, r.JointSNRdB, r.GainDB, r.Measurements)
	}
	fmt.Println("paper: 2-3 dB gain in every regime")
}

func fig16() {
	header("Figure 16 — per-subcarrier SNR profiles (frequency diversity)")
	o := sourcesync.DefaultFig15Options()
	o.Seed = *seed + 4
	o.Workers = workers()
	o.Placements = shrink(o.Placements)
	for _, s := range sourcesync.RunFig16(o) {
		fmt.Printf("\n[%s SNR regime]\n%10s %10s %10s %10s\n", s.Regime, "f(MHz)", "snd1(dB)", "snd2(dB)", "joint(dB)")
		for i := range s.FreqMHz {
			fmt.Printf("%10.1f %10.2f %10.2f %10.2f\n", s.FreqMHz[i], s.Sender1[i], s.Sender2[i], s.Joint[i])
		}
		fmt.Printf("flatness (std dev dB): sender1 %.2f, sender2 %.2f, joint %.2f\n",
			s.Flatness.Sender1, s.Flatness.Sender2, s.Flatness.Joint)
	}
	fmt.Println("\npaper: the joint profile is flatter than either sender's")
}

func fig17() {
	header("Figure 17 — last-hop throughput CDF: best single AP vs SourceSync (2 APs)")
	o := sourcesync.DefaultFig17Options()
	o.Seed = *seed + 5
	o.Workers = workers()
	o.Placements = shrink(o.Placements)
	o.Packets = shrink(o.Packets)
	res := sourcesync.RunFig17(o)
	fmt.Printf("%10s %14s %14s\n", "fraction", "single(Mbps)", "joint(Mbps)")
	n := len(res.SingleMbps)
	for i := 0; i < n; i++ {
		fmt.Printf("%10.3f %14.2f %14.2f\n", float64(i+1)/float64(n), res.SingleMbps[i], res.JointMbps[i])
	}
	fmt.Printf("median gain: %.2fx (paper: 1.57x)\n", res.MedianGain)
}

func fig18(mbps int) {
	header(fmt.Sprintf("Figure 18 — opportunistic routing throughput CDF at %d Mbps", mbps))
	o := sourcesync.DefaultFig18Options(mbps)
	o.Seed = *seed + 6
	o.Workers = workers()
	o.Topologies = shrink(o.Topologies)
	o.Packets = shrink(o.Packets)
	res := sourcesync.RunFig18(o)
	fmt.Printf("%10s %14s %12s %18s\n", "fraction", "single(Mbps)", "ExOR(Mbps)", "ExOR+SrcSync(Mbps)")
	n := len(res.SinglePathMbps)
	for i := 0; i < n; i++ {
		fmt.Printf("%10.3f %14.3f %12.3f %18.3f\n", float64(i+1)/float64(n),
			res.SinglePathMbps[i], res.ExORMbps[i], res.SourceSyncMbps[i])
	}
	fmt.Printf("median gains: ExOR/single %.2fx, SrcSync/ExOR %.2fx, SrcSync/single %.2fx\n",
		res.GainExOROverSP, res.GainSSOverExOR, res.GainSSOverSP)
	fmt.Println("paper: ExOR 1.26-1.4x over single path; SourceSync 1.35-1.45x over ExOR; 1.7-2x overall")
}

// modelName labels the interference pricing the -legacy flag selects. The
// legacy behavior differs per experiment — cellsweep keeps its binary
// CaptureDB gate, while cell and the crosstraffic variants historically
// ran with no interference model — so the label stays generic.
func modelName() string {
	if *legacy {
		return "legacy"
	}
	return "rate-aware"
}

// printCorruption renders the interference model's per-rate outcome table:
// one row per SampleRate rate index that saw interference, with the mean
// decode margin of its interfered attempts.
func printCorruption(rc []netsim.RateCorruption) {
	total := 0
	for _, c := range rc {
		total += c.Interfered
	}
	if total == 0 {
		fmt.Println("per-rate interference outcomes: none (no attempt overlapped with a model engaged)")
		return
	}
	cfg := sourcesync.Profile80211()
	rates := modem.StandardRates()
	fmt.Println("per-rate interference outcomes:")
	fmt.Printf("%12s %11s %10s %9s %11s\n", "rate", "interfered", "corrupted", "degraded", "margin(dB)")
	for i, c := range rc {
		if c.Interfered == 0 {
			continue
		}
		label := fmt.Sprintf("idx %d", i)
		if i < len(rates) {
			label = fmt.Sprintf("%.0f Mbps", rates[i].BitRate(cfg)/1e6)
		}
		fmt.Printf("%12s %11d %10d %9d %11.2f\n",
			label, c.Interfered, c.Corrupted, c.Degraded, c.MarginDB/float64(c.Interfered))
	}
}

func cell() {
	header("Cell — multi-client WLAN aggregate throughput: best single AP vs SourceSync")
	o := sourcesync.DefaultCellOptions()
	o.Seed = *seed + 8
	o.Workers = workers()
	o.Placements = shrink(o.Placements)
	o.Packets = shrink(o.Packets)
	o.Legacy = *legacy
	o.WindowSec = *window
	res := sourcesync.RunCell(o)
	fmt.Printf("clients=%d APs=%d packets/client=%d model=%s", o.Clients, o.APs, o.Packets, modelName())
	if o.WindowSec > 0 {
		fmt.Printf(" window=%.2fs", o.WindowSec)
	}
	fmt.Println()
	fmt.Printf("%10s %14s %14s\n", "fraction", "single(Mbps)", "joint(Mbps)")
	n := len(res.SingleAggMbps)
	for i := 0; i < n; i++ {
		fmt.Printf("%10.3f %14.2f %14.2f\n", float64(i+1)/float64(n), res.SingleAggMbps[i], res.JointAggMbps[i])
	}
	fmt.Printf("median aggregate gain: %.2fx; per acquisition: collisions %.3f, captures %.3f\n",
		res.MedianGain, res.MeanCollisionRate, res.MeanCaptureRate)
	printCorruption(res.RateCorruption)
}

func cellsweep() {
	// Validate the flags before the (expensive) clients-per-cell sweep runs.
	counts, err := parseCellCounts(*cells)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -cells %q: %v\n", *cells, err)
		os.Exit(2)
	}
	ranges, err := parseCSRanges(*csRanges)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -cs %q: %v\n", *csRanges, err)
		os.Exit(2)
	}
	header("Cellsweep — saturation throughput vs clients per cell (multi-cell spatial reuse)")
	o := sourcesync.DefaultCellSweepOptions()
	o.Seed = *seed + 10
	o.Workers = workers()
	o.Placements = shrink(o.Placements)
	o.Packets = shrink(o.Packets)
	o.Legacy = *legacy
	o.WindowSec = *window
	res := sourcesync.RunCellSweep(o)
	fmt.Printf("cells=%d aps/cell=%d packets/client=%d cs-range=%.0fm model=%s", o.Cells, o.APsPerCell, o.Packets, o.CSRangeM, modelName())
	if o.WindowSec > 0 {
		fmt.Printf(" window=%.2fs", o.WindowSec)
	}
	fmt.Println()
	rows := make([]sweepRow, len(res.Points))
	for i, p := range res.Points {
		rows[i] = sweepRow{strconv.Itoa(p.ClientsPerCell), p.SweepStats}
	}
	printSweepTable("clients", rows)
	fmt.Println("utilization above 1 = cells beyond carrier-sense range carrying frames concurrently")
	if last := len(res.Points) - 1; last >= 0 {
		printCorruption(res.Points[last].RateCorruption)
	}

	clientsPer := shrink(4)
	pts := sourcesync.RunCellCountSweep(o, counts, clientsPer)
	fmt.Printf("\ncapacity vs cell count (clients/cell=%d):\n", clientsPer)
	rows = make([]sweepRow, len(pts))
	for i, p := range pts {
		rows[i] = sweepRow{strconv.Itoa(p.Cells), p.SweepStats}
	}
	printSweepTable("cells", rows)
	fmt.Println("capacity should scale near-linearly with cell count (AirSync-style spatial reuse)")

	csPts := sourcesync.RunCSRangeSweep(o, ranges, clientsPer)
	fmt.Printf("\ncapacity vs carrier-sense range (cells=%d clients/cell=%d):\n", o.Cells, clientsPer)
	rows = make([]sweepRow, len(csPts))
	for i, p := range csPts {
		rows[i] = sweepRow{fmt.Sprintf("%.0f", p.CSRangeM), p.SweepStats}
	}
	printSweepTable("cs(m)", rows)
	fmt.Println("shorter carrier sense = denser reuse but more hidden terminals; the model prices the tradeoff")
}

// sweepRow is one rendered cellsweep table row: the swept value plus the
// shared statistics.
type sweepRow struct {
	key   string
	stats sourcesync.SweepStats
}

// printSweepTable renders one of cellsweep's three tables: the swept
// column under keyHeader, then the shared statistics columns.
func printSweepTable(keyHeader string, rows []sweepRow) {
	fmt.Printf("%10s %14s %14s %8s %8s %8s %8s %8s\n", keyHeader, "single(Mbps)", "joint(Mbps)", "gain", "collis", "hidden", "capture", "util")
	for _, r := range rows {
		s := r.stats
		fmt.Printf("%10s %14.2f %14.2f %7.2fx %8.3f %8.3f %8.3f %8.2f\n",
			r.key, s.SingleAggMbps, s.JointAggMbps, s.MedianGain, s.CollisionRate, s.HiddenRate, s.CaptureRate, s.MeanUtilization)
	}
}

// parseCellCounts parses the -cells flag: positive integers, comma-separated.
func parseCellCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("cell count %d < 1", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseCSRanges parses the -cs flag: positive carrier-sense ranges in
// meters, comma-separated.
func parseCSRanges(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("carrier-sense range %g <= 0", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func metro() {
	header("Metro — city-scale capacity map by client density: best single AP vs SourceSync")
	o := sourcesync.DefaultMetroOptions()
	o.Seed = *seed + 16
	o.Workers = workers()
	o.WindowSec = *window
	if *quick {
		// A quick city: 16 cells and light density, or the metro grid
		// dwarfs every other quick experiment combined.
		o.CellsX, o.CellsY = 4, 4
		o.ClientsPer = []int{2, 4}
		o.Placements = 2
	}
	o.Packets = shrink(o.Packets)
	res := sourcesync.RunMetro(o)
	fmt.Printf("cells=%dx%d aps/cell=%d packets/client=%d cs-range=%.0fm ix-range=%.0fm model=rate-aware",
		o.CellsX, o.CellsY, o.APsPerCell, o.Packets, o.CSRangeM, o.InterferenceRangeM)
	if o.WindowSec > 0 {
		fmt.Printf(" window=%.2fs", o.WindowSec)
	}
	fmt.Println()
	rows := make([]sweepRow, len(res.Points))
	for i, p := range res.Points {
		rows[i] = sweepRow{fmt.Sprintf("%d (%d)", p.ClientsPerCell, p.Clients), p.SweepStats}
	}
	printSweepTable("cl (flows)", rows)
	fmt.Println("capacity should grow with density until interference bites; joint service holds its gain city-wide")
	if last := len(res.Points) - 1; last >= 0 {
		printCorruption(res.Points[last].RateCorruption)
	}
}

func crosstraffic() {
	header("Cross-traffic — routed mesh flow contending with relay-to-relay flows")
	o := sourcesync.DefaultCrossTrafficOptions()
	o.Seed = *seed + 9
	runCrossTraffic(o)
}

func crosstrafficSpatial() {
	header("Cross-traffic (spatial mesh) — cross flows in separate cells: reuse + hidden terminals on the routing side")
	o := sourcesync.SpatialCrossTrafficOptions()
	o.Seed = *seed + 11
	runCrossTraffic(o)
}

// runCrossTraffic shrinks, runs, and prints one cross-traffic variant.
func runCrossTraffic(o sourcesync.CrossTrafficOptions) {
	o.Workers = workers()
	o.Topologies = shrink(o.Topologies)
	o.Packets = shrink(o.Packets)
	o.CrossPackets = shrink(o.CrossPackets)
	o.Legacy = *legacy
	res := sourcesync.RunCrossTraffic(o)
	rateLabel := fmt.Sprintf("%d Mbps", o.RateMbps)
	if o.AdaptCross {
		rateLabel = "SampleRate-adapted"
	}
	fmt.Printf("%d cross flows x %d packets, %s, model=%s", o.CrossFlows, o.CrossPackets, rateLabel, modelName())
	if o.CSRangeM > 0 {
		fmt.Printf(", cs-range=%.0fm width-x%.1f", o.CSRangeM, o.WidthScale)
	}
	fmt.Println()
	fmt.Printf("%10s %12s %12s %12s %12s\n", "fraction", "sp(Mbps)", "sp+load", "ss(Mbps)", "ss+load")
	n := len(res.SinglePathAloneMbps)
	for i := 0; i < n; i++ {
		fmt.Printf("%10.3f %12.3f %12.3f %12.3f %12.3f\n", float64(i+1)/float64(n),
			res.SinglePathAloneMbps[i], res.SinglePathLoadedMbps[i],
			res.SourceSyncAloneMbps[i], res.SourceSyncLoadedMbps[i])
	}
	fmt.Printf("median retention under load: single-path %.2f, SourceSync %.2f; SrcSync/single under load %.2fx\n",
		res.SinglePathRetention, res.SourceSyncRetention, res.GainUnderLoad)
	fmt.Printf("cross-flow hidden-terminal losses: %d\n", res.CrossHiddenLosses)
	printCorruption(res.CrossRateCorruption)
}

func overhead() {
	header("Table (§4.4) — synchronization overhead, 1460 B at 12 Mbps")
	fmt.Printf("%10s %12s %14s\n", "senders", "overhead(%)", "airtime(us)")
	for _, r := range sourcesync.RunOverheadTable() {
		fmt.Printf("%10d %12.2f %14.1f\n", r.Senders, r.OverheadFraction*100, r.FrameAirtimeUs)
	}
	fmt.Println("paper: 1.7% for two senders, 2.8% for five")
}

func detdelay() {
	header("Premise (§4.2a) — packet detection delay vs SNR")
	pts := sourcesync.RunDetDelay(*seed+7, []float64{2, 4, 6, 9, 12, 18, 25}, shrink(60), workers())
	fmt.Printf("%8s %10s %10s %10s %6s %6s\n", "SNR(dB)", "mean(ns)", "std(ns)", "p95(ns)", "det", "miss")
	for _, p := range pts {
		fmt.Printf("%8.1f %10.1f %10.1f %10.1f %6d %6d\n", p.SNRdB, p.MeanNs, p.StdNs, p.P95Ns, p.Detected, p.Missed)
	}
	fmt.Println("paper (citing Williams et al.): variability on the order of hundreds of ns")
}

func ablations() {
	header("Ablation — phase-slope window (3 MHz vs whole band)")
	sw := sourcesync.RunAblationSlopeWindow(*seed+8, shrink(200), workers())
	fmt.Printf("windowed RMS %.3f samples, whole-band RMS %.3f samples over %d draws\n",
		sw.WindowedRMS, sw.WholeBandRMS, sw.Draws)

	header("Ablation — Smart Combiner (STBC) vs naive identical transmission")
	nc := sourcesync.RunAblationNaiveCombining(*seed+9, shrink(12), workers())
	fmt.Printf("worst-case effective SNR: STBC %.1f dB, naive %.1f dB (naive total failures: %d)\n",
		nc.STBCWorstSNRdB, nc.NaiveWorstSNRdB, nc.NaiveFailures)

	header("Ablation — shared pilots vs single phase track")
	ps := sourcesync.RunAblationPilotSharing(*seed+10, shrink(6), workers())
	fmt.Printf("EVM with shared pilots %.4f, with naive tracking %.4f\n",
		ps.SharedPilotsEVM, ps.NaiveTrackEVM)

	header("Ablation — multi-receiver LP vs aligning at one receiver")
	lp := sourcesync.RunAblationMultiRxLP(*seed+11, shrink(100), 3, workers())
	fmt.Printf("mean worst-case misalignment: LP %.2f samples, first-rx alignment %.2f samples\n",
		lp.LPMaxMisalign, lp.FirstRxMisalign)
}
