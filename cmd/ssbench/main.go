// Command ssbench regenerates the tables and figures of the SourceSync
// paper's evaluation (§8) at full size and prints their series as text.
//
// Usage:
//
//	ssbench [flags] <experiment>
//
// Experiments: fig12 fig13 fig14 fig15 fig16 fig17 fig18 cell cellsweep
// metro crosstraffic crosstraffic-spatial overhead detdelay ablations all
//
// The rendering itself lives in internal/experiments, shared with the
// ssserve daemon — this command only translates flags into
// experiments.Params and reports wall-clock timings on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

var (
	seed     = flag.Int64("seed", 1, "base random seed")
	quick    = flag.Bool("quick", false, "run shrunken workloads (~10x faster)")
	parallel = flag.Bool("parallel", true, "fan trials out across all CPUs (results are identical either way)")
	nworkers = flag.Int("workers", 0, "worker count when -parallel (0 = GOMAXPROCS)")
	list     = flag.Bool("list", false, "print the registered experiment names, one per line, and exit (CI loops over this)")
	cells    = flag.String("cells", "1,2,3", "comma-separated cell counts for cellsweep's capacity-vs-cell-count table")
	csRanges = flag.String("cs", "20,30,45", "comma-separated carrier-sense ranges (meters) for cellsweep's capacity-vs-CS-range table")
	window   = flag.Float64("window", 0, "fixed-time-window saturation mode for cell/cellsweep: drain unbounded backlogs for this many virtual seconds (0 = drain fixed per-client backlogs)")
	legacy   = flag.Bool("legacy", false, "run cell/cellsweep/crosstraffic* with their pre-model interference behavior (cellsweep keeps its binary CaptureDB gate; cell and the crosstraffic variants historically modeled no interference at all)")
	scenFile = flag.String("scenario", "", "path to a declarative scenario spec (JSON); with no experiment argument, runs the generic \"scenario\" experiment over it")
	cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
	memprof  = flag.String("memprofile", "", "write an allocation profile to this file at exit (go tool pprof)")
)

// workers translates the flags into the engine's convention: 1 worker when
// -parallel=false, otherwise -workers (0 meaning one worker per CPU).
func workers() int {
	if !*parallel {
		return 1
	}
	return *nworkers
}

// params assembles the experiments.Params the flags select, validating the
// comma-separated sweep flags up front.
func params() experiments.Params {
	counts, err := parseCellCounts(*cells)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -cells %q: %v\n", *cells, err)
		os.Exit(2)
	}
	ranges, err := parseCSRanges(*csRanges)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -cs %q: %v\n", *csRanges, err)
		os.Exit(2)
	}
	return experiments.Params{
		Seed:    *seed,
		Quick:   *quick,
		Workers: workers(),
		Options: experiments.Options{
			Cells:     counts,
			CSRanges:  ranges,
			WindowSec: *window,
			Legacy:    *legacy,
		},
	}
}

func main() {
	flag.Parse()
	if *list {
		for _, e := range experiments.Names() {
			fmt.Println(e)
		}
		return
	}
	finishProfiles := startProfiles()
	defer finishProfiles()
	p := params()
	if *scenFile != "" {
		data, err := os.ReadFile(*scenFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -scenario: %v\n", err)
			os.Exit(2)
		}
		sp, err := scenario.Parse(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -scenario %s: %v\n", *scenFile, err)
			os.Exit(2)
		}
		p.Scenario = sp
		if flag.NArg() == 0 {
			// A spec alone runs the generic scenario experiment over it.
			start := time.Now() //sslint:allow detwallclock stderr-only timing report; stdout stays byte-identical
			run("scenario", p)
			fmt.Fprintf(os.Stderr, "\ntotal wall clock: %.2fs (%d workers)\n",
				time.Since(start).Seconds(), engine.WorkerCount(workers())) //sslint:allow detwallclock stderr-only timing report; stdout stays byte-identical
			return
		}
	}
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	start := time.Now() //sslint:allow detwallclock stderr-only timing report; stdout stays byte-identical
	for _, exp := range flag.Args() {
		run(strings.ToLower(exp), p)
	}
	// Timing goes to stderr so stdout stays byte-identical across runs
	// (the tables are diffed to check worker-count determinism).
	fmt.Fprintf(os.Stderr, "\ntotal wall clock: %.2fs (%d workers)\n",
		time.Since(start).Seconds(), engine.WorkerCount(workers())) //sslint:allow detwallclock stderr-only timing report; stdout stays byte-identical
}

// startProfiles begins whatever profiling -cpuprofile/-memprofile request
// and returns the finalizer that writes the files out. Profiling observes
// the run without perturbing it — no RNG draw or event ordering depends on
// the profiler's sampling — so a profiled run's stdout stays byte-identical
// to an unprofiled one. This is the offline capture path for the netsim hot
// loop (ssserve exposes the same data live via /debug/pprof/).
func startProfiles() func() {
	var cpu *os.File
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(2)
		}
		cpu = f
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if *memprof != "" {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -memprofile: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			// Settle the heap first so the live-object numbers are not
			// dominated by garbage the next GC would have reclaimed; the
			// allocs profile keeps cumulative allocation sites either way.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				os.Exit(2)
			}
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ssbench [-seed N] [-quick] [-parallel=false] [-workers N] [-cells N,N,...] [-cs M,M,...] [-window SEC] [-legacy] [-cpuprofile FILE] [-memprofile FILE] <%s|all>\n       ssbench -scenario spec.json\n       ssbench -list\n",
		strings.Join(experiments.Names(), "|"))
}

func run(exp string, p experiments.Params) {
	start := time.Now() //sslint:allow detwallclock per-experiment stderr timing; no simulation state involved
	defer func() {
		fmt.Fprintf(os.Stderr, "[%s: %.2fs wall clock]\n", exp, time.Since(start).Seconds()) //sslint:allow detwallclock per-experiment stderr timing; no simulation state involved
	}()
	if exp == "all" {
		// Expand here rather than passing "all" through, so every
		// experiment gets its own stderr timing line as it always has.
		for _, e := range experiments.Names() {
			run(e, p)
		}
		return
	}
	if err := experiments.Run(os.Stdout, exp, p); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		usage()
		os.Exit(2)
	}
}

// parseCellCounts parses the -cells flag: positive integers, comma-separated.
func parseCellCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("cell count %d < 1", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseCSRanges parses the -cs flag: positive carrier-sense ranges in
// meters, comma-separated.
func parseCSRanges(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("carrier-sense range %g <= 0", v)
		}
		out = append(out, v)
	}
	return out, nil
}
