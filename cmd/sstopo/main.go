// Command sstopo generates a random mesh topology in the testbed
// environment and prints its link budget, measured delivery probabilities,
// ETX metrics, the single-path route, and the ExOR forwarder ordering —
// the inputs the opportunistic routing experiments run on.
//
// Usage:
//
//	sstopo [-seed N] [-nodes N] [-rate Mbps]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/exor"
	"repro/internal/modem"
	"repro/internal/testbed"
)

var (
	seed  = flag.Int64("seed", 1, "random seed")
	nodes = flag.Int("nodes", 5, "number of nodes (src + relays + dst)")
	rateM = flag.Int("rate", 6, "bit rate in Mbps for loss measurement")
)

func main() {
	flag.Parse()
	if *nodes < 3 {
		fmt.Fprintln(os.Stderr, "need at least 3 nodes")
		os.Exit(2)
	}
	cfg := modem.Profile80211()
	env := testbed.Mesh(cfg)
	rng := rand.New(rand.NewSource(*seed))
	rate, err := modem.RateByMbps(*rateM)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Source on the left edge, destination on the right, relays between.
	pts := []testbed.Point{{X: 1, Y: env.Height / 2}}
	for i := 0; i < *nodes-2; i++ {
		pts = append(pts, testbed.Point{
			X: (0.25 + rng.Float64()*0.4) * env.Width,
			Y: rng.Float64() * env.Height,
		})
	}
	pts = append(pts, testbed.Point{X: env.Width - 1, Y: env.Height / 2})
	topo := exor.NewTopology(rng, env, pts)

	fmt.Printf("environment: %s, %.0fx%.0f m, tx %0.f dBm, noise floor %.1f dBm\n",
		cfg.Name, env.Width, env.Height, env.TxPowerDBm, env.NoiseFloorDBm())
	fmt.Println("\nnodes:")
	for i, p := range pts {
		role := "relay"
		switch i {
		case 0:
			role = "src"
		case len(pts) - 1:
			role = "dst"
		}
		fmt.Printf("  %2d %-6s (%5.1f, %5.1f)\n", i, role, p.X, p.Y)
	}

	fmt.Printf("\nlink SNR (dB) and delivery probability at %d Mbps:\n", *rateM)
	meas := topo.Measure(rng, rate, 1000, 100, 0.1)
	n := topo.N()
	fmt.Printf("%8s", "")
	for j := 0; j < n; j++ {
		fmt.Printf("%12d", j)
	}
	fmt.Println()
	for i := 0; i < n; i++ {
		fmt.Printf("%8d", i)
		for j := 0; j < n; j++ {
			if i == j {
				fmt.Printf("%12s", "-")
				continue
			}
			fmt.Printf("  %5.1f/%4.2f", topo.Links[i][j].SNRdB, meas.Delivery[i][j])
		}
		fmt.Println()
	}

	fmt.Println("\nETX distance to destination per node:")
	for i, d := range meas.DistTo {
		fmt.Printf("  node %d: %.2f\n", i, d)
	}
	path, metric := meas.Graph.ShortestPath(0, n-1)
	fmt.Printf("\nmin-ETX single path: %v (metric %.2f)\n", path, metric)
	fmt.Printf("ExOR forwarder set from src (priority order): %v\n", meas.Graph.ForwarderSet(0, n-1))
}
