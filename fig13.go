package sourcesync

import (
	"math"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/engine"
	"repro/internal/modem"
	"repro/internal/phy"
)

// Fig13Options configures the CP-sweep experiment (§8.1.2): a LOS
// transmitter pair with identical hardware transmits jointly at each cyclic
// prefix value, once with SourceSync's delay compensation and once with the
// uncompensated baseline; the achieved composite SNR (from data-symbol EVM)
// is reported per CP.
type Fig13Options struct {
	Seed        int64
	CPsNs       []float64
	FramesPerCP int
	SNRdB       float64
	// Workers bounds the engine's parallelism: 0 uses one worker per CPU,
	// 1 runs serially. Results are identical either way.
	Workers int
	// Monitor optionally observes the run (trial progress) and lets the
	// caller cancel it cooperatively; a canceled run's output must be
	// discarded. Nil is free. See engine.Monitor.
	Monitor *engine.Monitor
}

// DefaultFig13Options returns the parameters used by ssbench.
func DefaultFig13Options() Fig13Options {
	cps := []float64{0, 39, 78, 117, 156, 234, 312, 391, 469, 547, 625, 703, 781}
	return Fig13Options{Seed: 2, CPsNs: cps, FramesPerCP: 6, SNRdB: 25}
}

// Fig13Point is the achieved SNR at one CP value.
type Fig13Point struct {
	CPNs           float64
	CPSamples      int
	SourceSyncSNR  float64 // dB, EVM-derived effective SNR
	BaselineSNR    float64 // dB
	SourceSyncFail int     // frames that did not even yield an EVM
	BaselineFail   int
}

// fig13Trial is one joint frame's EVM outcome.
type fig13Trial struct {
	invEVM float64
	ok     bool
}

// RunFig13 regenerates Figure 13: composite SNR versus cyclic prefix for
// SourceSync and the unsynchronized baseline on the WiGLAN-like profile.
// Each CP point runs 2*FramesPerCP trials on the engine — the first
// FramesPerCP with SourceSync's compensation, the rest with the baseline —
// so both arms parallelize together and remain deterministic.
func RunFig13(o Fig13Options) []Fig13Point {
	cfg := ProfileWiGLAN()
	ec := engine.Config{Seed: o.Seed, Workers: o.Workers, Monitor: o.Monitor}
	cpSamples := make([]int, len(o.CPsNs))
	for i, cpNs := range o.CPsNs {
		cpSamples[i] = int(cpNs * 1e-9 * cfg.SampleRateHz)
	}

	grid := engine.Grid(ec, len(o.CPsNs), 2*o.FramesPerCP, func(pt, trial int, rng *rand.Rand) fig13Trial {
		baseline := trial >= o.FramesPerCP
		cp := cpSamples[pt]
		sim := fig13Sim(rng, cfg, cp, o.SNRdB, baseline)
		payload := make([]byte, sim.P.PayloadLen)
		rng.Read(payload)
		run, err := sim.Run(payload)
		if err != nil || !run.CoJoined[0] {
			return fig13Trial{}
		}
		backoff := 3
		if cp < 3 {
			backoff = cp
		}
		rx := &phy.JointReceiver{Cfg: cfg, FFTBackoff: backoff}
		res, err := rx.Receive(run.RxWave, 0)
		if err != nil || res.EVM <= 0 {
			return fig13Trial{}
		}
		return fig13Trial{invEVM: 1 / res.EVM, ok: true}
	})

	var out []Fig13Point
	for i, cpNs := range o.CPsNs {
		pt := Fig13Point{CPNs: cpNs, CPSamples: cpSamples[i]}
		var ssSum, blSum float64
		var ssN, blN int
		for trial, r := range grid[i] {
			baseline := trial >= o.FramesPerCP
			switch {
			case !r.ok && baseline:
				pt.BaselineFail++
			case !r.ok:
				pt.SourceSyncFail++
			case baseline:
				blSum += r.invEVM
				blN++
			default:
				ssSum += r.invEVM
				ssN++
			}
		}
		if ssN > 0 {
			pt.SourceSyncSNR = dsp.DB(ssSum / float64(ssN))
		}
		if blN > 0 {
			pt.BaselineSNR = dsp.DB(blSum / float64(blN))
		}
		out = append(out, pt)
	}
	return out
}

// fig13Sim builds a LOS pair with identical hardware; only propagation and
// detection timing differ between them (§8.1.2's setup).
func fig13Sim(rng *rand.Rand, cfg *Config, cp int, snrDB float64, baseline bool) *phy.JointSimConfig {
	p := phy.JointFrameParams{
		Cfg: cfg, Rate: modem.Rate{Mod: modem.QPSK, Code: modem.Rate12},
		DataCP: cp, PayloadLen: 60, Seed: 0x5d, NumCo: 1,
		LeadID: 1, PacketID: 0x13,
	}
	// A line-of-sight placement whose measured channel still shows ~15
	// significant taps (117 ns) at 128 MHz, matching the paper's Fig. 14.
	mk := func() *channel.Multipath { return channel.NewIndoor(rng, cfg.SampleRateHz, 45, 3) }
	noise := channel.NoisePowerForSNR(cePower(cfg), snrDB)
	dLeadCo := 2 + rng.Float64()*6
	tLeadRx := 2 + rng.Float64()*8
	tCoRx := 2 + rng.Float64()*8
	return &phy.JointSimConfig{
		P:        p,
		Lead:     phy.LeadSim{ResidCFO: smallResid(rng, cfg), Phase: rng.Float64() * 2 * math.Pi},
		LeadToCo: []phy.Link{{Gain: 1, Delay: dLeadCo, Path: mk()}},
		LeadToRx: phy.Link{Gain: 1, Delay: tLeadRx, Path: mk()},
		CoToRx:   []phy.Link{{Gain: 1, Delay: tCoRx, Path: mk()}},
		Co: []phy.CoSenderSim{{
			Turnaround:       700, // identical hardware on both transmitters
			OscCFO:           channel.PPMToCFO((rng.Float64()*2-1)*20, 5.8e9, cfg.SampleRateHz),
			ResidCFO:         smallResid(rng, cfg),
			Phase:            rng.Float64() * 2 * math.Pi,
			EstDelayFromLead: dLeadCo,
			TxOffset:         tLeadRx - tCoRx,
			NoisePower:       noise,
			FFTBackoff:       3,
			BaselineSync:     baseline,
			DetectJitter:     38,
		}},
		NoiseRx: noise,
		Rng:     rng,
	}
}
