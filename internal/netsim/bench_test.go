package netsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/testbed"
)

// The benchmarks below time the event scheduler's hot loop in its three
// regimes — one saturated collision domain, disjoint neighborhoods reusing
// the medium, and hidden-terminal interference — so CI's bench job records
// the simulator's perf trajectory (BENCH_netsim.json) as the contention
// core evolves. Delivery draws are a coin flip: the point is the
// scheduler's cost, not the PHY's.

func benchSim(seed int64) (*Sim, *testbed.Testbed) {
	cfg := modem.Profile80211()
	s := New(mac.Default(cfg), rand.New(rand.NewSource(seed)))
	return s, testbed.Default(cfg)
}

func BenchmarkSaturatedDomain(b *testing.B) {
	// 8 stations, one collision domain, 50 frames each.
	frames := 0
	for i := 0; i < b.N; i++ {
		s, _ := benchSim(int64(1 + i))
		for f := 0; f < 8; f++ {
			s.AddFlow(backloggedFlow("f", 50, 1e-3, 0.9))
		}
		s.Run()
		frames += 8 * 50
	}
	b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkSpatialReuseCells(b *testing.B) {
	// 4 disjoint cells of 2 stations each: the per-neighborhood clock path.
	frames := 0
	for i := 0; i < b.N; i++ {
		s, env := benchSim(int64(2 + i))
		s.CSRangeM = 30
		s.Env = env
		for c := 0; c < 4; c++ {
			base := float64(c) * 200
			for k := 0; k < 2; k++ {
				x := base + float64(k)
				s.AddFlow(placedFlow("f", 50, 1e-3,
					testbed.Point{X: x, Y: 0}, testbed.Point{X: x + 5, Y: 0}, 30))
			}
		}
		s.Run()
		frames += 4 * 2 * 50
	}
	b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkHiddenTerminalPair(b *testing.B) {
	// Two out-of-range senders corrupting each other's receivers: the
	// interference-scan path (overlap bookkeeping, SINR pricing).
	for i := 0; i < b.N; i++ {
		s, env := benchSim(int64(3 + i))
		s.CSRangeM = 50
		s.CaptureDB = 10
		s.Env = env
		s.AddFlow(placedFlow("a", 50, 1e-3, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 58, Y: 0}, 25))
		s.AddFlow(placedFlow("b", 50, 1e-3, testbed.Point{X: 60, Y: 0}, testbed.Point{X: 2, Y: 0}, 25))
		s.Run()
	}
}

// benchInterference drains a saturated hidden-terminal pair under the
// given interference model — the hot path where every settled frame pays
// for effectiveSINRdB (overlap sweep) plus one model Settle call. The
// frames/s metric lands in BENCH_netsim.json so the interference layer's
// cost is tracked per commit; CI's bench job fails if these benchmarks
// vanish from the artifact. The model is constructed by the caller and
// excluded from the timed region: at CI's -benchtime 1x a cold
// RateAware construction (decode-threshold bisection over the PER
// curves) would otherwise dwarf the settle path it exists to measure —
// that one-time cost is visible in the ssserve/ssbench profiles instead.
func benchInterference(b *testing.B, model InterferenceModel) {
	const packets = 50
	frames := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, env := benchSim(int64(4 + i))
		s.CSRangeM = 50
		s.Model = model
		s.Env = env
		s.AddFlow(placedFlow("a", packets, 1e-3, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 58, Y: 0}, 25))
		s.AddFlow(placedFlow("b", packets, 1e-3, testbed.Point{X: 60, Y: 0}, testbed.Point{X: 2, Y: 0}, 25))
		s.Run()
		frames += 2 * packets
	}
	b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkInterferenceLegacyThreshold(b *testing.B) {
	benchInterference(b, LegacyThreshold{CaptureDB: 10})
}

func BenchmarkInterferenceRateAware(b *testing.B) {
	cfg := modem.Profile80211()
	benchInterference(b, NewRateAware(cfg, modem.StandardRates(), 1460))
}

// BenchmarkStepScaling drives the indexed scheduler across city sizes —
// 100 through 100k concurrent placed flows in 4-client cells on a square
// grid — and reports the per-event cost. Under the spatial index and the
// event heap the ns/event metric should stay near-flat as the city grows
// (each event touches only grid-nearby flows); the pairwise scans it
// replaced grew superlinearly. The model=rateaware variant reruns the
// 10k city under the PER-curve interference model, so the settle path's
// cached pricing is measured at scale and not just on the two-flow
// hidden-terminal pair above. CI's bench job archives these numbers in
// BENCH_netsim.json and gates regressions against the committed baseline
// via `benchjson -baseline` (and `-require`s them, so a silently dropped
// tier fails the job rather than vanishing from the artifact).
func BenchmarkStepScaling(b *testing.B) {
	cfg := modem.Profile80211()
	rateAware := NewRateAware(cfg, modem.StandardRates(), 1460)
	cases := []struct {
		name    string
		flows   int
		packets int
		model   InterferenceModel
	}{
		{"flows=100", 100, 4, nil},
		{"flows=1000", 1000, 4, nil},
		{"flows=10000", 10000, 4, nil},
		// Two packets per flow keep the largest city inside CI's time
		// budget while still running ~10x more events than the 10k tier.
		{"flows=100000", 100000, 2, nil},
		{"flows=10000/model=rateaware", 10000, 4, rateAware},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			const clientsPer = 4
			cells := tc.flows / clientsPer
			side := int(math.Ceil(math.Sqrt(float64(cells))))
			events := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, env := benchSim(int64(5 + i))
				s.CSRangeM = 45
				s.InterferenceRangeM = 150
				s.CaptureDB = 10
				s.Model = tc.model
				s.Env = env
				for c := 0; c < cells; c++ {
					cx := float64(c%side)*60 + 30
					cy := float64(c/side)*60 + 30
					for k := 0; k < clientsPer; k++ {
						tx := testbed.Point{X: cx + float64(k), Y: cy}
						rx := testbed.Point{X: cx + float64(k), Y: cy + 10}
						s.AddFlow(placedFlow("f", tc.packets, 1e-3, tx, rx, 25))
					}
				}
				for s.Step() {
					events++
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
