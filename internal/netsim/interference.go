package netsim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/modem"
	"repro/internal/permodel"
)

// This file is the pluggable interference layer: how a frame's decode is
// priced against the simultaneous interference it saw in the air. The
// simulator computes the physics — the effective SNR at the receiver, i.e.
// the serving link's signal over noise plus the worst simultaneous
// interference power — and hands it to an InterferenceModel, which judges
// whether the frame survives to its delivery draw at all and how much that
// draw is degraded. Models are pure functions of the Reception (no RNG, no
// state mutation), so interference decisions never perturb the
// deterministic draw stream.

// Reception describes one interfered frame at settle time, as the
// simulator hands it to the interference model.
type Reception struct {
	// SINRdB is the frame's effective SNR at its receiver: the serving
	// link's signal over noise plus the worst *simultaneous* interference
	// power, in dB.
	SINRdB float64
	// ServingSNRdB is the serving link's interference-free average SNR; the
	// gap to SINRdB is the interference degradation.
	ServingSNRdB float64
	// RateIdx is the rate index the frame was transmitted at (the Flow's
	// Prepare result).
	RateIdx int
	// Collision reports whether the overlap was an in-range collision
	// (simultaneous starts in one neighborhood) rather than out-of-range
	// hidden-terminal interference.
	Collision bool
}

// Verdict is an interference model's pricing of one reception.
type Verdict struct {
	// Survives reports whether the frame reaches its delivery draw at all;
	// a false verdict corrupts the frame outright (a collision loss or a
	// hidden-terminal corruption).
	Survives bool
	// SNRScale is the linear factor (<= 1) the delivery draw must apply to
	// the serving link's per-subcarrier SNRs — the continuous effective-SNR
	// degradation. 1 means the draw runs undegraded.
	SNRScale float64
	// MarginDB is the decode margin the model applied: the effective SINR
	// minus the threshold it was held against. Negative for corrupted
	// frames; the per-rate corruption stats aggregate it.
	MarginDB float64
}

// InterferenceModel decides how simultaneous interference affects a
// frame's decode. Implementations must be deterministic: the same
// Reception always yields the same Verdict, and no randomness is consumed.
type InterferenceModel interface {
	// Name identifies the model in tables and docs.
	Name() string
	// Settle judges one interfered frame. It is called only when the
	// simulator's interference model is engaged (Env and Radio present)
	// and the frame actually overlapped other transmissions in the air.
	Settle(rx Reception) Verdict
}

// LegacyThreshold is the historical binary gate: one SINR threshold, in
// dB, for both capture within collisions and decode against
// hidden-terminal interference, independent of the frame's rate. A frame
// whose SINR clears the threshold decodes with its normal, undegraded
// delivery draw; below it the frame is destroyed. This is the model a Sim
// without an explicit Interference assignment runs (over Sim.CaptureDB),
// preserving the pre-refactor behavior bit for bit.
type LegacyThreshold struct {
	// CaptureDB is the SINR threshold in dB.
	CaptureDB float64
}

// Name implements InterferenceModel.
func (m LegacyThreshold) Name() string { return "legacy-threshold" }

// Settle implements InterferenceModel: survive iff the SINR clears the
// single threshold; never degrade the draw.
func (m LegacyThreshold) Settle(rx Reception) Verdict {
	return Verdict{
		Survives: rx.SINRdB >= m.CaptureDB,
		SNRScale: 1,
		MarginDB: rx.SINRdB - m.CaptureDB,
	}
}

// RateAware prices partial overlap per rate: a frame is corrupted outright
// only when its effective SINR falls below its *own rate's* decode
// threshold (robust rates ride out interference that destroys fast ones),
// and a frame that clears its threshold still pays for the overlap — its
// delivery draw runs at the interference-degraded effective SNR instead of
// the clean serving SNR. The same rule settles capture within collisions:
// a colliding frame survives iff its SINR clears its rate's threshold.
type RateAware struct {
	// ThresholdsDB[r] is rate index r's decode threshold: the flat-channel
	// SNR in dB at which the rate's packet error rate crosses 1/2 (from the
	// permodel curves). Frames at rate indices beyond the table clamp to
	// the last entry.
	ThresholdsDB []float64
}

// NewRateAware derives per-rate decode thresholds from the permodel PER
// curves for the given rate table and payload size — the rate-dependent
// decode margins of the effective-SNR interference model. The table is
// memoized process-wide (see thresholdMemo): a threshold is a pure
// function of (profile, rate, payload), and bisecting the PER curves is
// by far the most expensive cross-job invariant a long-running service
// would otherwise recompute on every job.
func NewRateAware(cfg *modem.Config, rates []modem.Rate, payloadBytes int) *RateAware {
	return &RateAware{ThresholdsDB: cachedThresholds(cfg, rates, payloadBytes)}
}

// thresholdMemo caches decode-threshold tables across NewRateAware calls,
// keyed by a fingerprint of the OFDM profile, the rate table, and the
// payload size. The memo is value-deterministic — every entry is a pure
// function of its key — so cache timing can never reach experiment output
// (same argument as dsp's FFT-plan table and modem's constellation cache).
var thresholdMemo struct {
	mu           sync.Mutex //sslint:allow detgoroutine guards the decode-threshold memo; a table is a pure function of (profile, rates, payload), so lock order cannot reach output
	table        map[string][]float64
	hits, misses uint64
}

// ThresholdCacheStats returns how many NewRateAware calls were served from
// the memo vs computed fresh — surfaced by ssserve's /metrics as a
// cross-job cache-hit-rate signal.
func ThresholdCacheStats() (hits, misses uint64) {
	thresholdMemo.mu.Lock()
	defer thresholdMemo.mu.Unlock()
	return thresholdMemo.hits, thresholdMemo.misses
}

// thresholdKey fingerprints everything DecodeThresholdDB's result depends
// on: the OFDM profile's physical parameters, the rate table, and the
// payload size.
func thresholdKey(cfg *modem.Config, rates []modem.Rate, payloadBytes int) string {
	return fmt.Sprintf("%s|%g|%d|%d|%d|%v|%v|%d",
		cfg.Name, cfg.SampleRateHz, cfg.NFFT, cfg.CPLen, cfg.UsedHalf, cfg.Pilots, rates, payloadBytes)
}

// cachedThresholds returns the memoized threshold table for the key,
// computing and inserting it on a miss. Callers get a private copy, so a
// caller mutating its RateAware.ThresholdsDB cannot poison the cache. Two
// concurrent first calls may both compute; they insert identical values.
func cachedThresholds(cfg *modem.Config, rates []modem.Rate, payloadBytes int) []float64 {
	key := thresholdKey(cfg, rates, payloadBytes)
	thresholdMemo.mu.Lock()
	if cached, ok := thresholdMemo.table[key]; ok {
		thresholdMemo.hits++
		thresholdMemo.mu.Unlock()
		return append([]float64(nil), cached...)
	}
	thresholdMemo.mu.Unlock()

	// Compute outside the lock: the bisection is the expensive part, and
	// holding the memo across it would serialize unrelated first lookups.
	thr := make([]float64, len(rates))
	for i, r := range rates {
		thr[i] = DecodeThresholdDB(cfg, r, payloadBytes)
	}

	thresholdMemo.mu.Lock()
	if thresholdMemo.table == nil {
		thresholdMemo.table = map[string][]float64{}
	}
	thresholdMemo.table[key] = thr
	thresholdMemo.misses++
	thresholdMemo.mu.Unlock()
	return append([]float64(nil), thr...)
}

// Name implements InterferenceModel.
func (m *RateAware) Name() string { return "rate-aware" }

// Settle implements InterferenceModel.
func (m *RateAware) Settle(rx Reception) Verdict {
	thr := m.ThresholdsDB[len(m.ThresholdsDB)-1]
	if rx.RateIdx < len(m.ThresholdsDB) {
		thr = m.ThresholdsDB[rx.RateIdx]
	}
	margin := rx.SINRdB - thr
	if margin < 0 {
		return Verdict{Survives: false, SNRScale: 1, MarginDB: margin}
	}
	// The draw runs at the effective SNR: scale the serving link's
	// subcarrier SNRs by SINR/SNR = 1/(1 + I/N), never above 1.
	scale := math.Pow(10, (rx.SINRdB-rx.ServingSNRdB)/10)
	if scale > 1 {
		scale = 1
	}
	return Verdict{Survives: true, SNRScale: scale, MarginDB: margin}
}

// DecodeThresholdDB returns the flat-channel SNR in dB at which the rate's
// packet error rate crosses 1/2 for the given payload — the decode floor
// the rate-aware model gates on. PER is monotone in SNR, so a bisection
// over the operational range converges.
func DecodeThresholdDB(cfg *modem.Config, rate modem.Rate, payloadBytes int) float64 {
	lo, hi := -10.0, 50.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if permodel.FlatPER(cfg, rate, payloadBytes, mid) > 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// RateCorruption accumulates one rate index's interference outcomes on a
// flow — the per-rate corruption stats the scenario layers surface.
type RateCorruption struct {
	// Interfered counts settled attempts at this rate that saw simultaneous
	// interference (collisions or hidden terminals) with the model engaged.
	Interfered int
	// Corrupted counts interfered attempts the model destroyed outright
	// (below the decode threshold).
	Corrupted int
	// Degraded counts interfered attempts that survived to a delivery draw
	// at interference-degraded effective SNR (SNRScale < 1).
	Degraded int
	// MarginDB sums the decode margins of the interfered attempts (mean =
	// MarginDB / Interfered); negative contributions are corrupted frames.
	MarginDB float64
}

// add folds one verdict into the accumulator.
func (c *RateCorruption) add(v Verdict) {
	c.Interfered++
	c.MarginDB += v.MarginDB
	if !v.Survives {
		c.Corrupted++
	} else if v.SNRScale < 1 {
		c.Degraded++
	}
}

// Merge adds other's counts into c (for aggregating flows into a result).
func (c *RateCorruption) Merge(other RateCorruption) {
	c.Interfered += other.Interfered
	c.Corrupted += other.Corrupted
	c.Degraded += other.Degraded
	c.MarginDB += other.MarginDB
}

// MergeRateCorruption sums per-rate stats slices of possibly different
// lengths, index by index (index = rate index).
func MergeRateCorruption(dst []RateCorruption, src []RateCorruption) []RateCorruption {
	for len(dst) < len(src) {
		dst = append(dst, RateCorruption{})
	}
	for i, s := range src {
		dst[i].Merge(s)
	}
	return dst
}
