package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/testbed"
)

// placedFlow builds a lossless acked flow with `packets` frames of airtime
// ft, whose transmitter and receiver sit at the given positions.
func placedFlow(name string, packets int, ft float64, tx, rx testbed.Point, snrDB float64) *Flow {
	f := backloggedFlow(name, packets, ft, 1)
	f.Name = name
	f.Radio = &Radio{TxPos: tx, RxPos: rx, SNRdB: snrDB}
	return f
}

func TestFrozenBackoffPersistsAcrossLostRounds(t *testing.T) {
	// A losing contender must keep its counter — decremented by the idle
	// slots that elapsed before the winner's transmission — rather than
	// redraw, and must consume no fresh randomness on later rounds until
	// its own attempt completes.
	m := mac.Default(modem.Profile80211())
	const seed = 11
	// Replay the simulator's draw order by hand: counters are drawn in flow
	// order from CW(0)=CWMin.
	ref := rand.New(rand.NewSource(seed))
	ca := ref.Intn(m.CWMin + 1)
	cb := ref.Intn(m.CWMin + 1)
	if ca == cb {
		t.Fatalf("seed %d draws a tie (%d); pick a seed with distinct counters", seed, ca)
	}

	s := New(m, rand.New(rand.NewSource(seed)))
	a := s.AddFlow(backloggedFlow("a", 5, 1e-3, 1))
	b := s.AddFlow(backloggedFlow("b", 5, 1e-3, 1))
	winner, loser := a, b
	cWin, cLose := ca, cb
	if cb < ca {
		winner, loser = b, a
		cWin, cLose = cb, ca
	}
	// One contention round spans several scheduler events (start, frame-air
	// end, occupancy end); step until the first delivery settles.
	for winner.Delivered == 0 && loser.Delivered == 0 {
		if !s.Step() {
			t.Fatal("drained before any delivery")
		}
	}
	if winner.Delivered != 1 || loser.Delivered != 0 {
		t.Fatalf("smaller counter (%d vs %d) must win round 1: winner=%d loser=%d delivered",
			cWin, cLose, winner.Delivered, loser.Delivered)
	}
	if s.flags[loser.idx]&fCounterValid == 0 {
		t.Fatal("loser must keep a live counter")
	}
	if got, want := int(s.counter[loser.idx]), cLose-cWin; got != want {
		t.Fatalf("loser's counter = %d, want %d (original %d minus %d elapsed idle slots)", got, want, cLose, cWin)
	}
	if s.flags[winner.idx]&fCounterValid != 0 {
		t.Fatal("winner must redraw next round")
	}
	// The frozen counter eventually wins: step until the loser delivers,
	// checking the counter never grows while frozen (it only counts down).
	prev := int(s.counter[loser.idx])
	for loser.Delivered == 0 {
		if !s.Step() {
			t.Fatal("drained before the loser delivered")
		}
		if s.flags[loser.idx]&fCounterValid != 0 && loser.Delivered == 0 && int(s.counter[loser.idx]) > prev {
			t.Fatalf("frozen counter grew from %d to %d without an attempt", prev, s.counter[loser.idx])
		}
		if s.flags[loser.idx]&fCounterValid != 0 {
			prev = int(s.counter[loser.idx])
		}
	}
}

func TestFrozenBackoffDeterministicForSeed(t *testing.T) {
	run := func() (float64, int, int, int) {
		m := mac.Default(modem.Profile80211())
		s := New(m, rand.New(rand.NewSource(12)))
		a := s.AddFlow(backloggedFlow("a", 150, 1e-3, 0.8))
		b := s.AddFlow(backloggedFlow("b", 150, 7e-4, 0.6))
		c := s.AddFlow(backloggedFlow("c", 150, 5e-4, 0.9))
		s.Run()
		return s.Now(), a.Delivered, b.Delivered, c.Delivered
	}
	n1, a1, b1, c1 := run()
	n2, a2, b2, c2 := run()
	if n1 != n2 || a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v %d %d %d) vs (%v %d %d %d)", n1, a1, b1, c1, n2, a2, b2, c2)
	}
}

// captureSim builds a two-flow sim with forced collisions (CW pinned to 0,
// so both flows draw counter 0 every round) on the default testbed.
func captureSim(seed int64, a, b *Flow, captureDB float64) *Sim {
	cfg := modem.Profile80211()
	m := mac.Default(cfg)
	m.CWMin, m.CWMax = 0, 0
	s := New(m, rand.New(rand.NewSource(seed)))
	s.CaptureDB = captureDB
	s.Env = testbed.Default(cfg)
	s.AddFlow(a)
	s.AddFlow(b)
	return s
}

func TestCaptureStrongFrameSurvivesCollision(t *testing.T) {
	// Flow a: strong serving link, receiver far from b's transmitter — its
	// SINR clears the threshold, so its frames survive every collision.
	// Flow b: receiver right next to a's transmitter — swamped, always dies.
	a := placedFlow("strong", 20, 1e-3, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 2, Y: 0}, 30)
	b := placedFlow("weak", 20, 1e-3, testbed.Point{X: 300, Y: 0}, testbed.Point{X: 8, Y: 0}, 20)
	s := captureSim(21, a, b, 10)
	// a's interference: b's transmitter is ~298 m away — negligible. b's
	// interference: a's transmitter is 8 m from b's receiver — overwhelming.
	for i := 0; i < 20 && s.Step(); i++ {
	}
	if a.Captures == 0 || a.Delivered == 0 {
		t.Fatalf("strong flow never captured: captures=%d delivered=%d collisions=%d",
			a.Captures, a.Delivered, a.Collisions)
	}
	if a.Collisions != 0 {
		t.Fatalf("strong flow lost %d attempts to collisions despite %d dB SINR headroom", a.Collisions, 30)
	}
	if b.Captures != 0 || b.Delivered != 0 {
		t.Fatalf("swamped flow should never capture: captures=%d delivered=%d", b.Captures, b.Delivered)
	}
	if b.Collisions == 0 {
		t.Fatal("swamped flow must be losing attempts to collisions")
	}
}

func TestCaptureNearEqualFramesBothDie(t *testing.T) {
	// Symmetric mid-SNR flows whose receivers each sit near the other's
	// transmitter: SINR is near 0 dB on both sides, far below threshold, so
	// the collision destroys both frames — classic behavior.
	a := placedFlow("a", 5, 1e-3, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 5, Y: 0}, 20)
	b := placedFlow("b", 5, 1e-3, testbed.Point{X: 10, Y: 0}, testbed.Point{X: 5, Y: 1}, 20)
	s := captureSim(22, a, b, 10)
	for i := 0; i < 5 && s.Step(); i++ {
	}
	if a.Captures != 0 || b.Captures != 0 {
		t.Fatalf("near-equal frames captured: a=%d b=%d", a.Captures, b.Captures)
	}
	if a.Delivered != 0 || b.Delivered != 0 {
		t.Fatalf("near-equal collisions delivered: a=%d b=%d", a.Delivered, b.Delivered)
	}
	if a.Collisions == 0 || b.Collisions == 0 {
		t.Fatalf("both flows must be colliding: a=%d b=%d", a.Collisions, b.Collisions)
	}
}

func TestCaptureDisabledKeepsClassicCollisions(t *testing.T) {
	// Same asymmetric geometry as the survival test, but CaptureDB=0: the
	// strong frame must die with the weak one.
	a := placedFlow("strong", 5, 1e-3, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 2, Y: 0}, 30)
	b := placedFlow("weak", 5, 1e-3, testbed.Point{X: 300, Y: 0}, testbed.Point{X: 8, Y: 0}, 20)
	s := captureSim(23, a, b, 0)
	for i := 0; i < 5 && s.Step(); i++ {
	}
	if a.Captures != 0 || a.Delivered != 0 {
		t.Fatalf("capture disabled but strong flow got through: captures=%d delivered=%d", a.Captures, a.Delivered)
	}
}

// runPairs drains two lossless tx/rx pairs whose transmitters sit `sep`
// meters apart under the given carrier-sense range, returning aggregate
// throughput in frames per virtual second.
func runPairs(seed int64, sep, csRange float64, packets int) (aggFPS float64, collisions int) {
	cfg := modem.Profile80211()
	m := mac.Default(cfg)
	s := New(m, rand.New(rand.NewSource(seed)))
	s.CSRangeM = csRange
	s.Env = testbed.Default(cfg)
	const ft = 1e-3
	a := s.AddFlow(placedFlow("a", packets, ft, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 3, Y: 0}, 30))
	b := s.AddFlow(placedFlow("b", packets, ft, testbed.Point{X: sep, Y: 0}, testbed.Point{X: sep + 3, Y: 0}, 30))
	s.Run()
	return float64(a.Delivered+b.Delivered) / s.Now(), s.CollisionRounds
}

func TestSpatialReuseDoublesAggregateThroughput(t *testing.T) {
	// Two flow pairs beyond carrier-sense range of each other transmit
	// concurrently: aggregate throughput must be ~2x the same pairs forced
	// into one collision domain.
	const packets = 300
	shared, _ := runPairs(31, 10, 30, packets)     // 10 m apart, 30 m CS range: contend
	reused, coll := runPairs(31, 200, 30, packets) // 200 m apart: reuse
	ratio := reused / shared
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("spatial reuse gave %.2fx aggregate (shared %.1f fps, reused %.1f fps), want ~2x",
			ratio, shared, reused)
	}
	if coll != 0 {
		t.Fatalf("out-of-range pairs collided %d times", coll)
	}
}

func TestOutOfRangeFlowsNeverCollide(t *testing.T) {
	// Saturated CW=0 flows collide every round in one domain but never when
	// out of carrier-sense range.
	cfg := modem.Profile80211()
	m := mac.Default(cfg)
	m.CWMin, m.CWMax = 0, 0
	s := New(m, rand.New(rand.NewSource(32)))
	s.CSRangeM = 50
	s.AddFlow(placedFlow("a", 40, 1e-3, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 3, Y: 0}, 30))
	s.AddFlow(placedFlow("b", 40, 1e-3, testbed.Point{X: 500, Y: 0}, testbed.Point{X: 503, Y: 0}, 30))
	s.Run()
	if s.CollisionRounds != 0 {
		t.Fatalf("%d collision rounds between out-of-range transmitters", s.CollisionRounds)
	}
}

func TestFlowsWithoutRadioContendEverywhere(t *testing.T) {
	// A flow without Radio info must contend with every placed flow even
	// under a finite carrier-sense range (the single-domain fallback).
	cfg := modem.Profile80211()
	m := mac.Default(cfg)
	m.CWMin, m.CWMax = 0, 0
	s := New(m, rand.New(rand.NewSource(33)))
	s.CSRangeM = 10
	s.AddFlow(placedFlow("placed", 20, 1e-3, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 3, Y: 0}, 30))
	s.AddFlow(backloggedFlow("unplaced", 20, 1e-3, 1))
	s.Run()
	if s.CollisionRounds == 0 {
		t.Fatal("an unplaced flow must still collide with placed ones")
	}
}
