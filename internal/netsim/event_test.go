package netsim

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/testbed"
)

// The tests in this file pin the event-driven scheduler's semantics: the
// clock advances per neighborhood rather than per global round, and
// concurrent out-of-range transmissions interfere at shared receivers
// (hidden terminals).

func TestHiddenTerminalCorruptsFrames(t *testing.T) {
	// Classic hidden-terminal geometry: two senders out of carrier-sense
	// range of each other, each delivering to a receiver that sits right
	// next to the other sender. Neither defers, their frames overlap, and
	// the interference SINR at both receivers is hopeless — every
	// overlapping frame must be corrupted, with zero collision rounds (no
	// in-range simultaneous starts).
	cfg := modem.Profile80211()
	m := mac.Default(cfg)
	s := New(m, rand.New(rand.NewSource(51)))
	s.CSRangeM = 50
	s.CaptureDB = 10
	s.Env = testbed.Default(cfg)
	a := s.AddFlow(placedFlow("a", 30, 1e-3, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 58, Y: 0}, 25))
	b := s.AddFlow(placedFlow("b", 30, 1e-3, testbed.Point{X: 60, Y: 0}, testbed.Point{X: 2, Y: 0}, 25))
	s.Run()

	if s.CollisionRounds != 0 {
		t.Fatalf("out-of-range senders produced %d collision rounds", s.CollisionRounds)
	}
	if a.HiddenLosses == 0 || b.HiddenLosses == 0 || s.HiddenCorruptions == 0 {
		t.Fatalf("no hidden-terminal corruption: a=%d b=%d sim=%d",
			a.HiddenLosses, b.HiddenLosses, s.HiddenCorruptions)
	}
	// Saturated flows overlap most of the time (growing retry windows open
	// occasional clean gaps): the majority of attempts must die to
	// interference, not succeed.
	if hl := a.HiddenLosses + b.HiddenLosses; hl <= (a.Attempts+b.Attempts)/2 {
		t.Fatalf("only %d of %d+%d attempts corrupted by hidden terminals",
			hl, a.Attempts, b.Attempts)
	}
	if a.Delivered+b.Delivered > (a.Attempts+b.Attempts)/3 {
		t.Fatalf("hidden terminals barely hurt: %d+%d delivered of %d+%d attempts",
			a.Delivered, b.Delivered, a.Attempts, b.Attempts)
	}
}

func TestHiddenTerminalsOffWithoutCaptureModel(t *testing.T) {
	// With CaptureDB unset the interference model is off: the same hidden
	// geometry delivers everything (lossless draws, no in-range collisions).
	cfg := modem.Profile80211()
	m := mac.Default(cfg)
	s := New(m, rand.New(rand.NewSource(52)))
	s.CSRangeM = 50
	s.Env = testbed.Default(cfg)
	a := s.AddFlow(placedFlow("a", 30, 1e-3, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 58, Y: 0}, 25))
	b := s.AddFlow(placedFlow("b", 30, 1e-3, testbed.Point{X: 60, Y: 0}, testbed.Point{X: 2, Y: 0}, 25))
	s.Run()
	if a.HiddenLosses != 0 || b.HiddenLosses != 0 || s.HiddenCorruptions != 0 {
		t.Fatalf("interference modeled with CaptureDB=0: a=%d b=%d", a.HiddenLosses, b.HiddenLosses)
	}
	if a.Delivered != 30 || b.Delivered != 30 {
		t.Fatalf("lossless flows delivered %d/%d of 30/30", a.Delivered, b.Delivered)
	}
}

func TestPerNeighborhoodClockIndependence(t *testing.T) {
	// A cell draining short frames must not be stalled by a far-away cell
	// draining long ones: the short cell's backlog completes in about the
	// time it would take alone, not at the long cell's round pace.
	cfg := modem.Profile80211()
	m := mac.Default(cfg)
	const shortFT, longFT = 1e-4, 2e-3

	alone := New(m, rand.New(rand.NewSource(53)))
	alone.CSRangeM = 30
	alone.AddFlow(placedFlow("short", 100, shortFT, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 3, Y: 0}, 30))
	alone.Run()
	aloneT := alone.Now()

	s := New(m, rand.New(rand.NewSource(53)))
	s.CSRangeM = 30
	var shortDrained float64
	sf := placedFlow("short", 100, shortFT, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 3, Y: 0}, 30)
	done := sf.Done
	sf.Done = func(r int, ok bool, air float64) {
		done(r, ok, air)
		shortDrained = s.Now()
	}
	s.AddFlow(sf)
	lf := s.AddFlow(placedFlow("long", 100, longFT, testbed.Point{X: 500, Y: 0}, testbed.Point{X: 503, Y: 0}, 30))
	s.Run()

	if lf.Delivered != 100 || sf.Delivered != 100 {
		t.Fatalf("deliveries %d/%d", sf.Delivered, lf.Delivered)
	}
	// Backoff draws differ between the runs, so allow slack — but the short
	// cell must finish at its own pace (a round-synchronized clock would
	// hold it to the long cell's ~100x2.1ms schedule, several times slower).
	if shortDrained > 1.5*aloneT {
		t.Fatalf("short cell drained at %.4fs with a long cell elsewhere vs %.4fs alone — stalled by a foreign neighborhood",
			shortDrained, aloneT)
	}
	if shortDrained > s.Now()/2 {
		t.Fatalf("short cell (%.4fs) should finish well before the whole run (%.4fs)", shortDrained, s.Now())
	}
}

func TestDisjointCellsUtilizationExceedsOneAndAHalf(t *testing.T) {
	// Two saturated out-of-range cells with different frame lengths: each
	// neighborhood stays busy at its own pace, so utilization approaches 2.
	// (The old round-synchronized clock idled the short cell out against
	// the long cell's rounds and capped this scenario below ~1.5.)
	cfg := modem.Profile80211()
	m := mac.Default(cfg)
	s := New(m, rand.New(rand.NewSource(54)))
	s.CSRangeM = 30
	a := s.AddFlow(placedFlow("a", 200, 1e-3, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 3, Y: 0}, 30))
	b := s.AddFlow(placedFlow("b", 100, 2e-3, testbed.Point{X: 500, Y: 0}, testbed.Point{X: 503, Y: 0}, 30))
	s.Run()
	if a.Delivered != 200 || b.Delivered != 100 {
		t.Fatalf("deliveries %d/%d", a.Delivered, b.Delivered)
	}
	util := s.BusyTime() / s.Now()
	if util <= 1.5 {
		t.Fatalf("utilization %.2f over two disjoint cells, want > 1.5", util)
	}
	if util >= 2 {
		t.Fatalf("utilization %.2f cannot reach the neighborhood count (DIFS+backoff overhead)", util)
	}
}

func TestEventClockNeverRunsBackward(t *testing.T) {
	// Mixed acked/unacked spatial flows: the event clock must be
	// non-decreasing across every scheduler event.
	cfg := modem.Profile80211()
	m := mac.Default(cfg)
	s := New(m, rand.New(rand.NewSource(55)))
	s.CSRangeM = 40
	s.AddFlow(placedFlow("a", 60, 1e-3, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 3, Y: 0}, 30))
	s.AddFlow(placedFlow("b", 60, 7e-4, testbed.Point{X: 10, Y: 0}, testbed.Point{X: 13, Y: 0}, 30))
	s.AddFlow(placedFlow("c", 60, 5e-4, testbed.Point{X: 200, Y: 0}, testbed.Point{X: 203, Y: 0}, 30))
	un := backloggedFlow("bcast", 40, 1e-3, 1)
	un.Acked = false
	s.AddFlow(un)
	prev := s.Now()
	for s.Step() {
		if s.Now() < prev {
			t.Fatalf("clock ran backward: %.9f -> %.9f", prev, s.Now())
		}
		prev = s.Now()
	}
}

func TestSortEdgesMatchesReferenceSort(t *testing.T) {
	// sortEdges is a hand-rolled quicksort with an inlined comparator; its
	// output feeds an order-sensitive float accumulation, so it must agree
	// exactly with the library sort on every input — including the heavy
	// duplicate-key distributions the sweep produces (many intervals share
	// endpoints and powers). Because (t, dp) is total over distinct
	// elements, agreement is plain slice equality.
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		got := make([]edge, n)
		for i := range got {
			// Coarse value grids force long runs of equal keys.
			got[i] = edge{
				t:  float64(rng.Intn(8)) * 1e-3,
				dp: float64(rng.Intn(5)-2) * 0.5,
			}
		}
		want := append([]edge(nil), got...)
		slices.SortFunc(want, func(a, b edge) int {
			if edgeLess(a, b) {
				return -1
			}
			if edgeLess(b, a) {
				return 1
			}
			return 0
		})
		sortEdges(got)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d (n=%d): sortEdges diverged from reference sort", trial, n)
		}
	}
}
