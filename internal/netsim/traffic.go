package netsim

import "math/rand"

// This file is netsim's traffic layer: arrival processes that feed a
// flow's packet queue over virtual time, instead of the infinite backlog
// the classic saturation experiments assume. Backlogged saturation stays
// the degenerate case — a flow with no Traffic attached and a plain
// HasTraffic predicate behaves exactly as before, draw for draw.
//
// The layer is built entirely on ScheduleAt timer events: each attached
// Traffic keeps at most one pending arrival timer, whose callback
// enqueues the packet, wakes the flow, draws the next interarrival gap
// from the simulator's RNG, and schedules the next timer. Because timer
// callbacks fire in deterministic (time, schedule-order) heap order and
// draw from Sim.Rng single-threaded, the whole arrival history is a pure
// function of the seed. A flow whose process never offers a packet is
// never woken, never draws a backoff or rate sample, and consumes zero
// airtime and zero RNG draws — idle flows are free.

// ArrivalProcess generates one flow's packet arrivals as successive
// interarrival gaps. Implementations draw any randomness they need from
// the rng they are handed (the simulator's own, so draws interleave
// deterministically with contention draws) and must not consult any other
// source.
type ArrivalProcess interface {
	// NextGap returns the time in seconds until the next packet arrival.
	// A negative gap ends the process: no further packets arrive and no
	// further randomness is consumed.
	NextGap(rng *rand.Rand) float64
}

// Poisson is a memoryless arrival process: exponential interarrival gaps
// at RatePps packets per second. A non-positive rate offers no packets at
// all (and draws nothing — the idle flow).
type Poisson struct {
	RatePps float64
}

// NextGap draws one exponential interarrival gap.
func (p Poisson) NextGap(rng *rand.Rand) float64 {
	if p.RatePps <= 0 {
		return -1
	}
	return rng.ExpFloat64() / p.RatePps
}

// OnOff is a bursty arrival process: exponentially distributed ON periods
// (mean MeanOnSec) during which packets arrive as a Poisson stream at
// RatePps, separated by exponentially distributed silent OFF periods
// (mean MeanOffSec). The long-run offered rate is
// RatePps · MeanOnSec / (MeanOnSec + MeanOffSec).
type OnOff struct {
	RatePps    float64 // arrival rate while a burst is on
	MeanOnSec  float64 // mean burst duration
	MeanOffSec float64 // mean silence between bursts

	onLeft  float64 // time remaining in the current ON period
	started bool
}

// NextGap advances the ON/OFF renewal state until the next arrival lands
// inside an ON period, accumulating skipped silences into the gap.
func (p *OnOff) NextGap(rng *rand.Rand) float64 {
	if p.RatePps <= 0 || p.MeanOnSec <= 0 {
		return -1
	}
	gap := 0.0
	if !p.started {
		p.started = true
		p.onLeft = p.MeanOnSec * rng.ExpFloat64()
	}
	for {
		g := rng.ExpFloat64() / p.RatePps
		if g <= p.onLeft {
			p.onLeft -= g
			return gap + g
		}
		gap += p.onLeft
		if p.MeanOffSec > 0 {
			gap += p.MeanOffSec * rng.ExpFloat64()
		}
		p.onLeft = p.MeanOnSec * rng.ExpFloat64()
	}
}

// TrafficConfig attaches an arrival process to a flow.
type TrafficConfig struct {
	// Process generates the flow's arrivals. Required.
	Process ArrivalProcess
	// DeadlineSec drops a queued packet that has waited longer than this
	// before its service began (counted in Traffic.Expired). 0 means no
	// deadline. The packet currently in service is never expired — the
	// deadline gates service start, not completion.
	DeadlineSec float64
	// StartSec delays the first interarrival draw until this instant: the
	// flow joins the scenario mid-run (churn). 0 joins at the start.
	StartSec float64
	// StopSec makes the flow leave at this instant: arrivals cease, and
	// packets still queued are discarded (counted in Traffic.Abandoned —
	// a departing client takes its queue with it). A frame already on the
	// air completes normally. 0 means the flow never leaves.
	StopSec float64
}

// Traffic is one flow's attached arrival queue: FIFO arrival timestamps,
// deadline expiry, and churn accounting. Created by Sim.AttachTraffic;
// read after the run for offered-load accounting.
type Traffic struct {
	sim  *Sim
	flow *Flow
	cfg  TrafficConfig

	arrivals []float64 // arrival instant per queued packet
	head     int       // first live entry in arrivals (FIFO pop point)
	left     bool      // StopSec passed: no further arrivals or service

	Arrived   int // packets the arrival process offered
	Expired   int // packets dropped because their deadline passed before service began
	Abandoned int // packets still queued when the flow left at StopSec
}

// AttachTraffic drives f's head-of-line queue from an arrival process:
// it installs the HasTraffic predicate and chains the Done hook, so the
// flow contends exactly while packets are queued and idles — consuming no
// airtime and no randomness — while its queue is empty. Call after the
// flow's other hooks are set and before the first Step. The returned
// Traffic carries the offered/expired/abandoned accounting.
func (s *Sim) AttachTraffic(f *Flow, cfg TrafficConfig) *Traffic {
	q := &Traffic{sim: s, flow: f, cfg: cfg}
	f.HasTraffic = q.hasTraffic
	done := f.Done
	f.Done = func(r int, delivered bool, airTime float64) {
		q.pop()
		if done != nil {
			done(r, delivered, airTime)
		}
	}
	// The first interarrival draw happens at StartSec, inside the timer
	// drain — not here — so attach order alone never consumes randomness
	// and a never-starting flow stays draw-free.
	s.ScheduleAt(cfg.StartSec, q.scheduleNext)
	if cfg.StopSec > 0 {
		s.ScheduleAt(cfg.StopSec, q.leave)
	}
	return q
}

// Pending returns the number of packets queued and not yet in service.
func (q *Traffic) Pending() int {
	n := len(q.arrivals) - q.head
	if q.sim.inFlight(q.flow) && n > 0 {
		n--
	}
	return n
}

// scheduleNext draws the next interarrival gap and schedules its arrival.
func (q *Traffic) scheduleNext() {
	if q.left {
		return
	}
	gap := q.cfg.Process.NextGap(q.sim.Rng)
	if gap < 0 {
		return
	}
	q.sim.ScheduleAt(q.sim.Now()+gap, q.arrive)
}

// arrive lands one packet: queue its timestamp, wake the flow, and
// schedule the next arrival.
func (q *Traffic) arrive() {
	if q.left {
		return
	}
	q.Arrived++
	q.arrivals = append(q.arrivals, q.sim.Now())
	q.sim.Wake(q.flow)
	q.scheduleNext()
}

// hasTraffic is the flow's queue predicate: expire overdue heads, then
// report whether a packet is waiting. The scheduler only consults it when
// no frame is in service, so the expiry sweep never touches the packet a
// transmission is already carrying.
func (q *Traffic) hasTraffic() bool {
	if q.cfg.DeadlineSec > 0 {
		now := q.sim.Now()
		for q.head < len(q.arrivals) && now > q.arrivals[q.head]+q.cfg.DeadlineSec {
			q.head++
			q.Expired++
		}
		q.compact()
	}
	return q.head < len(q.arrivals)
}

// pop retires the served head-of-line packet (chained into Flow.Done).
func (q *Traffic) pop() {
	if q.head < len(q.arrivals) {
		q.head++
	}
	q.compact()
}

// compact recycles the queue's backing array once fully drained.
func (q *Traffic) compact() {
	if q.head == len(q.arrivals) {
		q.arrivals = q.arrivals[:0]
		q.head = 0
	}
}

// leave executes the flow's departure at StopSec: pending arrivals cease
// and the queue is abandoned, except for a packet already in service,
// which completes normally.
func (q *Traffic) leave() {
	q.left = true
	keep := q.head
	if q.sim.inFlight(q.flow) && q.head < len(q.arrivals) {
		keep++ // the in-service packet rides out its transmission
	}
	q.Abandoned += len(q.arrivals) - keep
	q.arrivals = q.arrivals[:keep]
	q.compact()
}
