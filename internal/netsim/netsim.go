// Package netsim is a packet-level, virtual-time network simulator for the
// throughput experiments: one 802.11 collision domain in which any number of
// traffic flows contend for the medium under DCF, with per-flow ARQ, rate
// control hooks, and joint-transmission sender groups.
//
// The medium model is deliberately packet-level, not sample-level: the PHY
// packages settle what a frame costs (airtimes from the modem's symbol
// accounting via internal/mac) and how likely it is to be received
// (per-subcarrier SNR draws through internal/permodel); netsim owns the
// clock and the contention between transmissions. One Step is one medium
// acquisition:
//
//  1. Every backlogged flow draws a DCF backoff from its retry-dependent
//     contention window (in flow order, so RNG consumption — and therefore
//     the whole run — is deterministic for a given seed).
//  2. The minimum draw wins the medium. A tie is a collision: all tied
//     flows transmit and none deliver; acked flows retry with a doubled
//     window, unacked flows lose the frame outright.
//  3. The virtual clock advances by DIFS + backoff + frame airtime, plus
//     the ACK exchange on success or the ACK timeout on failure.
//
// Retries re-enter contention (as in real DCF) rather than holding the
// medium. Losing flows redraw their backoff next round — a memoryless
// simplification of DCF's frozen counters that keeps draws independent of
// scheduling history.
//
// Scenario packages (internal/lasthop, internal/exor) define flows over
// this core instead of hand-rolling DIFS/backoff/ACK arithmetic.
package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/mac"
)

// Flow is one contending traffic stream. The simulator drives it frame by
// frame through the hooks; all hooks see the simulator's RNG so runs stay
// deterministic for a given seed.
type Flow struct {
	Name string
	// Acked selects unicast semantics: successful frames pay SIFS + ACK,
	// failures pay the ACK timeout and retry up to the MAC retry limit.
	// Unacknowledged flows (broadcast-style, e.g. ExOR forwarding) get
	// exactly one attempt per frame.
	Acked bool

	// HasTraffic reports whether the flow wants the medium. Nil means the
	// flow never contends.
	HasTraffic func() bool
	// Prepare is called once per head-of-line frame (not per attempt) and
	// returns the rate index to transmit at — from SampleRate, a fixed
	// rate, or whatever the scenario chooses. Nil means rate index 0.
	Prepare func(rng *rand.Rand) int
	// FrameTime returns the frame airtime in seconds at rate index r.
	FrameTime func(r int) float64
	// Deliver draws one reception attempt at rate index r.
	Deliver func(rng *rand.Rand, r int) bool
	// Done is called when the head-of-line frame completes — delivered, or
	// dropped after the retry limit (acked flows) or its single attempt
	// (unacked flows) — with the medium time the flow's own attempts
	// consumed.
	Done func(r int, delivered bool, airTime float64)

	// Accounting, maintained by the simulator.
	Delivered  int     // frames delivered
	Dropped    int     // frames dropped (retry limit, or unacked failure)
	Attempts   int     // transmission attempts, including collisions
	Collisions int     // attempts lost to collisions
	AirTime    float64 // medium time consumed by this flow's own attempts

	// Head-of-line frame state.
	inFlight bool
	rateIdx  int
	attempt  int
	frameAir float64
}

// Sim is one collision domain with a virtual clock.
type Sim struct {
	Mac   mac.Params
	Rng   *rand.Rand
	Flows []*Flow

	// MaxSteps bounds Run as a safety net against scenarios whose flows
	// never drain; 0 means a generous default.
	MaxSteps int

	now  float64 // virtual time, seconds
	busy float64 // time the medium carried frames (airtime, ACKs)

	Acquisitions    int // medium acquisitions (Steps that found traffic)
	CollisionRounds int // acquisitions that ended in a collision

	// Scratch buffers reused across Steps (the hot loop).
	contenders []*Flow
	winners    []*Flow
	slots      []int
}

// New returns a simulator over the given MAC timing, drawing all randomness
// from rng.
func New(m mac.Params, rng *rand.Rand) *Sim {
	return &Sim{Mac: m, Rng: rng}
}

// AddFlow registers a flow and returns it (for accounting reads after Run).
func (s *Sim) AddFlow(f *Flow) *Flow {
	s.Flows = append(s.Flows, f)
	return f
}

// Now returns the virtual time elapsed so far, in seconds.
func (s *Sim) Now() float64 { return s.now }

// BusyTime returns the virtual time the medium spent carrying frames and
// acknowledgments (the rest is DIFS, backoff, and ACK timeouts).
func (s *Sim) BusyTime() float64 { return s.busy }

// backoffSlots draws a backoff in whole slots for the given retry attempt.
func (s *Sim) backoffSlots(attempt int) int {
	return s.Rng.Intn(s.Mac.CW(attempt) + 1)
}

// Step performs one medium acquisition. It returns false — without
// consuming randomness or advancing the clock — once no flow has traffic.
func (s *Sim) Step() bool {
	// Contenders, in flow order: deterministic RNG consumption.
	contenders := s.contenders[:0]
	for _, f := range s.Flows {
		if f.inFlight || (f.HasTraffic != nil && f.HasTraffic()) {
			contenders = append(contenders, f)
		}
	}
	s.contenders = contenders
	if len(contenders) == 0 {
		return false
	}

	minSlots := -1
	slots := s.slots[:0]
	for _, f := range contenders {
		if !f.inFlight {
			f.inFlight = true
			f.attempt = 0
			f.frameAir = 0
			f.rateIdx = 0
			if f.Prepare != nil {
				f.rateIdx = f.Prepare(s.Rng)
			}
		}
		b := s.backoffSlots(f.attempt)
		slots = append(slots, b)
		if minSlots < 0 || b < minSlots {
			minSlots = b
		}
	}
	s.slots = slots
	winners := s.winners[:0]
	for i, f := range contenders {
		if slots[i] == minSlots {
			winners = append(winners, f)
		}
	}
	s.winners = winners
	s.Acquisitions++
	wait := s.Mac.DIFS() + float64(minSlots)*s.Mac.SlotTime

	if len(winners) > 1 {
		s.collide(winners, wait)
		return true
	}

	f := winners[0]
	ft := f.FrameTime(f.rateIdx)
	ok := f.Deliver(s.Rng, f.rateIdx)
	f.Attempts++
	cost := wait + ft
	busy := ft
	if f.Acked {
		if ok {
			ack := s.Mac.SIFS + s.Mac.AckDuration()
			cost += ack
			busy += ack
		} else {
			cost += s.Mac.AckTimeout()
		}
	}
	f.frameAir += cost
	f.AirTime += cost
	s.now += cost
	s.busy += busy
	if ok {
		s.finishFrame(f, true)
	} else {
		s.failAttempt(f)
	}
	return true
}

// collide settles an acquisition in which several flows drew the same slot:
// all transmit simultaneously, none deliver. The medium is occupied for the
// longest colliding frame; each collider is billed its own frame (they
// overlap in real time, but per-flow attribution is what rate control sees).
func (s *Sim) collide(winners []*Flow, wait float64) {
	s.CollisionRounds++
	var maxFT float64
	anyAcked := false
	for _, f := range winners {
		ft := f.FrameTime(f.rateIdx)
		if ft > maxFT {
			maxFT = ft
		}
		if f.Acked {
			anyAcked = true
		}
		f.Attempts++
		f.Collisions++
		cost := wait + ft
		if f.Acked {
			cost += s.Mac.AckTimeout()
		}
		f.frameAir += cost
		f.AirTime += cost
	}
	elapsed := wait + maxFT
	if anyAcked {
		elapsed += s.Mac.AckTimeout()
	}
	s.now += elapsed
	s.busy += maxFT
	for _, f := range winners {
		s.failAttempt(f)
	}
}

// failAttempt advances a flow past a failed attempt: unacked flows complete
// their single attempt; acked flows retry until the MAC retry limit.
func (s *Sim) failAttempt(f *Flow) {
	if !f.Acked {
		s.finishFrame(f, false)
		return
	}
	f.attempt++
	if f.attempt >= s.Mac.RetryLimit {
		s.finishFrame(f, false)
	}
}

// finishFrame retires the head-of-line frame and notifies the flow.
func (s *Sim) finishFrame(f *Flow, delivered bool) {
	if delivered {
		f.Delivered++
	} else {
		f.Dropped++
	}
	f.inFlight = false
	if f.Done != nil {
		f.Done(f.rateIdx, delivered, f.frameAir)
	}
}

// Run steps the simulator until every flow is drained. The MaxSteps guard
// exists to catch scenario bugs (a flow whose backlog never drains); when
// it trips, Run panics rather than let an experiment publish tables from a
// silently truncated run.
func (s *Sim) Run() {
	max := s.MaxSteps
	if max == 0 {
		max = 1 << 24
	}
	for i := 0; i < max; i++ {
		if !s.Step() {
			return
		}
	}
	panic(fmt.Sprintf("netsim: %d flows still backlogged after %d medium acquisitions — a flow's backlog never drains",
		len(s.Flows), max))
}
