// Package netsim is a packet-level, virtual-time network simulator for the
// throughput experiments: traffic flows contend for the wireless medium
// under DCF, with per-flow ARQ, rate control hooks, joint-transmission
// sender groups, and — when flows carry positions — spatial reuse across
// several carrier-sense neighborhoods.
//
// The medium model is deliberately packet-level, not sample-level: the PHY
// packages settle what a frame costs (airtimes from the modem's symbol
// accounting via internal/mac) and how likely it is to be received
// (per-subcarrier SNR draws through internal/permodel); netsim owns the
// clock and the contention between transmissions.
//
// The scheduler is event-driven: every pending transmission is an event on
// one shared virtual clock, and each Step advances the clock to the
// earliest pending event — a frame hitting the air, a frame's airtime
// ending, a transmission's occupancy (ACK exchange or ACK timeout)
// ending, or a scheduled timer callback firing (ScheduleAt — the hook the
// traffic layer in traffic.go uses for packet arrivals, and scenario code
// uses for mobility epochs and churn). A transmission occupies the medium
// only within its carrier-sense
// neighborhood, so neighborhoods advance at their own pace: a short frame
// in one cell completes and the next contention there begins while a long
// frame still hangs in the air elsewhere. Under spatial reuse, utilization
// (BusyTime over Now) approaches the number of disjoint neighborhoods.
//
// Internally the scheduler is indexed so city-scale floors stay cheap:
// pending events live in a min-heap keyed by (time, phase, sequence)
// rather than being rediscovered by per-Step scans over every flow, and
// carrier-sense lookups (who does this transmission freeze, who may resume
// when it retires, who collided with whom) go through a spatial hash over
// transmitter positions (testbed.Grid, cell size CSRangeM), so the
// per-event cost is O(nearby flows), not O(all flows). The index changes
// only the access path: which flows are examined, never the order in which
// randomness is consumed — neighbor iteration is in sorted id order, and
// heap ties break exactly in the order the historical scans visited
// (air-ends before occupancy-ends before starts; transmissions in creation
// order; flows in registration order).
//
// Contention follows DCF with frozen counters:
//
//  1. Every backlogged flow holds a backoff counter in whole slots, drawn
//     from its retry-dependent contention window when it enters contention
//     or after its own transmission attempt (in flow-registration order, so
//     RNG consumption — and therefore the whole run — is deterministic for
//     a given seed). While its neighborhood is idle the flow counts the
//     counter down from DIFS onward; when an in-range transmission starts
//     first, the flow banks the idle slots that elapsed and freezes, as in
//     real DCF, resuming — not redrawing — when the neighborhood frees up.
//  2. A flow transmits when its countdown expires with the neighborhood
//     still idle. In-range flows whose countdowns expire at the same
//     instant collide; flows out of carrier-sense range of every active
//     transmitter proceed concurrently — spatial reuse.
//  3. A frame is settled when its airtime ends, against every transmission
//     that overlapped it in the air. The simulator computes the frame's
//     effective SNR — serving-link SNR over the worst simultaneous median
//     interference the frame saw at its receiver, from transmitters in
//     range or not (interference power comes from the testbed's median
//     path loss, so no randomness is consumed) — and hands it to the
//     pluggable InterferenceModel (Sim.Model; nil means LegacyThreshold
//     over Sim.CaptureDB). In-range overlaps are colliders: a collision
//     destroys every frame in the group unless the model rules the frame
//     captured (its effective SINR clears the model's decode threshold —
//     one fixed threshold for LegacyThreshold, the frame's own rate's
//     decode floor for RateAware). Out-of-range overlaps are hidden
//     terminals: a frame the model corrupts is lost even though its own
//     neighborhood was clean, and a frame that survives carries the
//     model's delivery-draw degradation (RateAware scales the draw's
//     subcarrier SNRs down to the effective SNR; LegacyThreshold never
//     degrades). Interference is additive only while air intervals
//     actually coincide — successive far-cell frames are not a doubled
//     interferer. With no model configured (Model nil, CaptureDB 0),
//     hidden terminals are not modeled and frames fail only by collision
//     or by their own delivery draw.
//  4. A transmission occupies its neighborhood for DIFS + backoff + frame
//     airtime, plus the ACK exchange on success or the ACK timeout on
//     failure; in-range flows resume their countdowns when that occupancy
//     ends.
//
// Carrier sense is pairwise between transmitter positions (Sim.CSRangeM);
// with the zero configuration — no range, or flows without Radio info —
// every flow contends with every other and the simulator degenerates to
// one collision domain, where the event scheduler reproduces the classic
// single-medium DCF round structure exactly (a single flow's run is
// draw-for-draw and bit-for-bit identical to the historical round-based
// scheduler — the determinism contract the fig17/fig18 experiments pin).
//
// Interference pricing scans every transmission on the air regardless of
// distance by default; Sim.InterferenceRangeM bounds that scan through the
// spatial index for city-scale floors where far interferers are noise.
//
// Retries re-enter contention (as in real DCF) rather than holding the
// medium. Scenario packages (internal/lasthop, internal/exor) define flows
// over this core instead of hand-rolling DIFS/backoff/ACK arithmetic.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"repro/internal/mac"
	"repro/internal/testbed"
)

// Radio is a flow's geometry, used for spatial reuse, capture, and
// hidden-terminal interference: where its transmitter and its receiver sit
// on the floor, and the mean SNR of the serving link at that receiver.
// Flows without Radio info contend with every other flow, never capture,
// and never suffer hidden terminals (everyone defers to them).
type Radio struct {
	TxPos testbed.Point
	RxPos testbed.Point
	// SNRdB is the serving link's average SNR at RxPos (shadowing included,
	// fading excluded) — the signal term of the capture/interference SINR.
	SNRdB float64
}

// Flow is one contending traffic stream. The simulator drives it frame by
// frame through the hooks; all hooks see the simulator's RNG so runs stay
// deterministic for a given seed.
type Flow struct {
	Name string
	// Acked selects unicast semantics: successful frames pay SIFS + ACK,
	// failures pay the ACK timeout and retry up to the MAC retry limit.
	// Unacknowledged flows (broadcast-style, e.g. ExOR forwarding) get
	// exactly one attempt per frame.
	Acked bool
	// Radio places the flow for spatial reuse; nil means the flow is heard
	// everywhere (single-collision-domain behavior).
	Radio *Radio

	// HasTraffic reports whether the flow wants the medium. Nil means the
	// flow never contends. The scheduler re-examines a drained flow when
	// its own Done retires a frame and whenever the whole simulator goes
	// quiescent; a predicate that turns true from some *other* flow's hook
	// (or from outside the simulator) must be announced with Sim.Wake.
	HasTraffic func() bool
	// Prepare is called once per head-of-line frame (not per attempt) and
	// returns the rate index to transmit at — from SampleRate, a fixed
	// rate, or whatever the scenario chooses. Nil means rate index 0.
	Prepare func(rng *rand.Rand) int
	// FrameTime returns the frame airtime in seconds at rate index r.
	FrameTime func(r int) float64
	// Deliver draws one reception attempt at rate index r. ix carries the
	// interference context of the attempt: a scenario prices partial
	// overlap by scaling its per-subcarrier SNR draws by ix.SNRScale
	// (LinkDeliverScaled / JointLinkDeliverScaled); ignoring ix reproduces
	// the historical threshold-only behavior.
	Deliver func(rng *rand.Rand, r int, ix Interference) bool
	// Done is called when the head-of-line frame completes — delivered, or
	// dropped after the retry limit (acked flows) or its single attempt
	// (unacked flows) — with the medium time the flow's own attempts
	// consumed.
	Done func(r int, delivered bool, airTime float64)

	// Accounting, maintained by the simulator.
	Delivered    int     // frames delivered
	Dropped      int     // frames dropped (retry limit, or unacked failure)
	Attempts     int     // transmission attempts, including collisions
	Collisions   int     // attempts lost to collisions
	Captures     int     // colliding attempts that survived by capture
	HiddenLosses int     // attempts corrupted by out-of-range (hidden) interferers
	AirTime      float64 // medium time consumed by this flow's own attempts
	// RateCorruption[r] accumulates the interference model's outcomes for
	// attempts sent at rate index r (grown on demand; nil while no attempt
	// of this flow was interfered with the model engaged).
	RateCorruption []RateCorruption

	// Head-of-line frame state (touched once per frame, not per event).
	rateIdx  int
	attempt  int
	frameAir float64

	// idx is the flow's position in Sim.Flows: its id in the spatial index
	// and its slot in the simulator's per-flow state arrays. The per-event
	// hot state itself (backoff counter, countdown, in-flight bits) lives
	// in dense arrays on Sim, indexed by idx, so the event loop walks flat
	// memory instead of chasing a pointer per neighbor.
	idx int32
}

// Per-flow state bits, kept in Sim.flags (struct-of-arrays): one byte per
// flow instead of four bools scattered across a pointer-sized struct.
const (
	fInFlight     uint8 = 1 << iota // a head-of-line frame is in service
	fCounterValid                   // counter holds a live draw (distinguishes 0 from "needs a draw")
	fWaiting                        // counting down (idleSince is valid)
	fQueued                         // already on the admission queue
)

// tx is one transmission on the air: the unit the event scheduler moves
// the clock between. base/wait/cost mirror the MAC cost arithmetic
// (DIFS + backoff, then airtime, then ACK or timeout) so a lone flow's
// clock is bit-identical to summing its per-attempt costs.
type tx struct {
	f        *Flow
	seq      int64   // creation order: heap tie-break, matching the historical scan order
	base     float64 // clock time the DIFS + countdown began
	wait     float64 // DIFS + counter·slot
	start    float64 // base + wait: the frame hits the air
	ft       float64 // frame airtime
	airEnd   float64 // base + (wait + ft): the frame leaves the air
	cost     float64 // wait + ft, plus ACK / ACK-timeout once resolved
	end      float64 // base + cost: occupancy ends, neighborhood frees up
	resolved bool    // delivery settled (airEnd passed)
}

// pastTx remembers a finished transmission's air interval and geometry so
// still-unresolved frames it overlapped can count it as interference.
type pastTx struct {
	radio         *Radio
	start, airEnd float64
}

// Event phases at one instant, in the order the historical scheduler's
// per-Step phases ran them: deliveries settle, then occupancies retire,
// then new frames hit the air.
const (
	evAirEnd = iota // a frame's airtime ends: resolve the delivery
	evOccEnd        // a transmission's occupancy ends: the neighborhood frees up
	evStart         // a countdown expires: the frame hits the air
	evTimer         // a scheduled callback fires (traffic arrivals, mobility epochs, churn)
)

// event is one entry in the scheduler's min-heap, kept at 32 bytes so
// heap moves stay cheap. Tx events carry their transmission and tie-break
// by creation sequence; start events carry the flow's index and a
// generation stamp — freezing or consuming the countdown bumps the flow's
// generation, so superseded start events are recognized and discarded
// lazily when they surface. Timer events tie-break by schedule order and
// reuse gen as the slot of their callback in Sim.timerFns (the callback
// pointer would push the struct past 32 bytes for every event kind).
type event struct {
	t    float64
	seq  int64
	r    *tx
	kind uint8
	gen  uint32
}

// eventLess orders the heap: time, then phase, then creation/registration
// sequence — exactly the order the historical per-Step scans processed
// simultaneous events.
func eventLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// Sim is a shared medium with a virtual clock. With the zero spatial
// configuration it is one collision domain; with CSRangeM set and flows
// carrying Radio info, it is a floor of overlapping carrier-sense
// neighborhoods that reuse the medium concurrently, each advancing at the
// pace of its own transmissions.
type Sim struct {
	Mac   mac.Params
	Rng   *rand.Rand
	Flows []*Flow

	// CSRangeM is the carrier-sense range in meters: two flows contend only
	// when their transmitters are within it. <= 0 means every flow contends
	// with every other (one collision domain). Flows without Radio info
	// always contend with everyone. Set it before the first Step: it also
	// sizes the spatial index's buckets.
	CSRangeM float64
	// CaptureDB is the SINR threshold of the LegacyThreshold interference
	// model: a colliding frame whose SINR at its own receiver is at least
	// this many dB is received as if it were alone (physical-layer
	// capture), and a frame overlapped by out-of-range transmitters
	// (hidden terminals) is corrupted when its SINR falls below it. With
	// Model unset, 0 disables interference entirely — every collision
	// destroys all frames and hidden terminals never interfere. Requires
	// Env and per-flow Radio info. Ignored when Model is set.
	CaptureDB float64
	// Model selects the pluggable interference model that settles
	// interfered frames (capture within collisions, decode against hidden
	// terminals, delivery-draw degradation). Nil runs LegacyThreshold over
	// CaptureDB — the historical binary gate, bit-for-bit.
	Model InterferenceModel
	// Env supplies the median path loss used to price interference
	// (deterministic — the interference model consumes no randomness).
	Env *testbed.Testbed
	// InterferenceRangeM bounds the interference scan when a frame is
	// settled: only transmitters within this range of the frame's receiver
	// (or within CSRangeM of its transmitter — colliders always count) are
	// priced. <= 0, the default, scans every transmission on the air
	// regardless of distance — the historical behavior, bit-for-bit. City-
	// scale scenarios set it to the radius beyond which interference is
	// below noise, turning each settle into an O(nearby) index query; it
	// should comfortably exceed CSRangeM plus the longest serving link.
	// Set it before the first Step and leave it fixed for the run.
	InterferenceRangeM float64

	// MaxSteps bounds Run as a safety net against scenarios whose flows
	// never drain; 0 means a generous default.
	MaxSteps int

	now  float64 // virtual time, seconds
	busy float64 // time the medium carried frames (airtime, ACKs)

	Acquisitions      int // transmit groups that acquired some neighborhood
	CollisionRounds   int // transmit groups that collided (>1 simultaneous in-range frame)
	HiddenCorruptions int // frames corrupted by hidden-terminal interference

	// Pending events, a 4-ary min-heap ordered by eventLess: shallower
	// than a binary heap, so a pop touches fewer cache lines on the way
	// down. eventLess is total except between a flow's superseded and
	// current start events at one instant, which staleStart filters
	// identically in either pop order — so the heap arity never changes
	// the processed event sequence.
	events   []event
	txSeq    int64
	timerSeq int64 // schedule order of timer events: their heap tie-break
	txFree   []*tx // retired tx structs, recycled to keep the event path allocation-free

	// Timer callbacks parked outside the heap (events stay pointer-light):
	// a timer event's gen field addresses its slot here, recycled on fire.
	timerFns  []func()
	timerFree []uint32

	// Per-flow hot state, struct-of-arrays: parallel to Flows, indexed by
	// Flow.idx, grown in AddFlow. The event loop's inner passes (carrier-
	// sense freeze, resume, blocked checks, stale-event filtering) touch
	// only these dense arrays, so a neighborhood walk reads a few cache
	// lines instead of one Flow struct per neighbor.
	flags      []uint8    // fInFlight | fCounterValid | fWaiting | fQueued
	counter    []int32    // frozen DCF backoff counter, whole slots
	idleSince  []float64  // when the current DIFS + countdown began
	startGen   []uint32   // generation of the pending start event (freeze/resume invalidates)
	mark       []uint32   // last markGen that visited the flow (scratch)
	starterIdx []int32    // the flow's slot in the current starter set (scratch)
	curTx      []*tx      // in-flight transmission; nil while contending or idle
	flowPast   [][]pastTx // finished air intervals, kept while they can still interfere (bounded mode)

	// Spatial index over transmitter positions (nil when CSRangeM <= 0 or
	// nothing is placed); unplaced flows contend with everyone and ride
	// along every neighborhood query.
	grid     *testbed.Grid
	indexed  int // prefix of Flows already in the index
	unplaced []int32
	maxFT    float64 // longest frame airtime seen: prune horizon for per-flow past intervals

	// Memoized geometry, invalidated by generation stamp: topoGen bumps
	// whenever the flow set or the placement changes (ensureIndex indexing
	// new flows, Reindex re-anchoring after mobility), so every cached
	// neighborhood list and interference price below is a pure function of
	// static geometry between those points. The caches consume no
	// randomness and change only the access path, never the visit order,
	// so runs stay byte-identical. Entries also remember the *Radio they
	// were built against: mobility installs fresh Radio values (see
	// Reindex), so a pointer mismatch detects stale geometry exactly.
	topoGen  uint32
	nbGen    []uint32                // generation nbList was built at
	nbRadio  []*Radio                // the flow's Radio when nbList was built
	nbList   [][]int32               // cached carrier-sense neighborhood (grid hits ascending, then unplaced)
	ixGen    []uint32                // generation ixCands was built at
	ixRadio  []*Radio                // the flow's Radio when ixCands was built
	ixCands  [][]ixCand              // cached interferer candidates with per-pair prices
	sigGen   []uint32                // generation sigPow was computed at
	sigRadio []*Radio                // the flow's Radio when sigPow was computed
	sigPow   []float64               // 10^(SNRdB/10) of the serving link
	allFlows []int32                 // shared everyone-contends list for the no-grid path
	pairPow  map[radioPair]pairPrice // per-pair pricing memo for the unbounded scan, cleared on Reindex

	// Admission queue: flows that need a fresh look at the top of the next
	// Step (new frame, retry counter, carrier-sense state), processed in
	// registration order so RNG consumption is deterministic.
	admitQ []int32

	// Live and recently finished transmissions, maintained only in the
	// unbounded-interference mode where settles scan them linearly; the
	// bounded mode keeps past intervals per flow instead.
	active []*tx
	past   []pastTx

	// Scratch buffers reused across Steps (the hot loop). nbufA and nbufB
	// serve the grid queries inside cache rebuilds (a rebuild holds both
	// query results at once to size its list exactly); steady-state
	// neighborhood walks read the cached per-flow lists and allocate
	// nothing.
	startFlows []*Flow
	starters   []*tx
	interf     []interferer
	edges      []edge
	grouped    []bool
	group      []int
	nbufA      []int32
	nbufB      []int32
	markGen    uint32
}

// ixCand is one memoized interferer candidate of a flow: a flow the
// bounded settle scan can reach, priced once per topology generation
// against its current Radio. pow is the candidate transmitter's median
// interference power at the owning flow's receiver (linear; 0 when the
// pair is not priced), inCS its carrier-sense relation to the owning
// flow. The Radio the price was computed against is not stored: within a
// topology generation it is by contract the candidate's current Radio
// (Reindex invalidates every list, and in-place Radio mutation is
// unsupported), so consumers read it off the flow — and intervals sent
// under a *different* radio than the flow's current one (a past
// transmission from before a mobility epoch) fall back to direct
// computation. Keeping the struct pointer-free matters at city scale:
// 100k flows hold ~100 candidates each, and a pointer field would make
// every GC cycle mark the entire cache.
type ixCand struct {
	fi   int32
	inCS bool
	pow  float64
}

// radioPair keys the unbounded-mode pricing memo: interference is a pure
// function of (interferer geometry, receiver geometry) between Reindex
// calls, and mobility installs fresh *Radio values, so pointer identity
// is value identity.
type radioPair struct {
	from, at *Radio
}

// pairPrice is one memoized pair pricing: the interferer's median power
// at the receiver (linear) and the carrier-sense relation.
type pairPrice struct {
	pow  float64
	inCS bool
}

// New returns a simulator over the given MAC timing, drawing all randomness
// from rng.
func New(m mac.Params, rng *rand.Rand) *Sim {
	return &Sim{Mac: m, Rng: rng}
}

// AddFlow registers a flow and returns it (for accounting reads after Run).
func (s *Sim) AddFlow(f *Flow) *Flow {
	f.idx = int32(len(s.Flows))
	s.Flows = append(s.Flows, f)
	s.growState()
	s.enqueueAdmit(f)
	return f
}

// growState extends the per-flow state arrays to cover every registered
// flow (zero values: idle, no counter, no cached geometry).
func (s *Sim) growState() {
	for len(s.flags) < len(s.Flows) {
		s.flags = append(s.flags, 0)
		s.counter = append(s.counter, 0)
		s.idleSince = append(s.idleSince, 0)
		s.startGen = append(s.startGen, 0)
		s.mark = append(s.mark, 0)
		s.starterIdx = append(s.starterIdx, 0)
		s.curTx = append(s.curTx, nil)
		s.flowPast = append(s.flowPast, nil)
		s.nbGen = append(s.nbGen, 0)
		s.nbRadio = append(s.nbRadio, nil)
		s.nbList = append(s.nbList, nil)
		s.ixGen = append(s.ixGen, 0)
		s.ixRadio = append(s.ixRadio, nil)
		s.ixCands = append(s.ixCands, nil)
		s.sigGen = append(s.sigGen, 0)
		s.sigRadio = append(s.sigRadio, nil)
		s.sigPow = append(s.sigPow, 0)
	}
}

// Wake tells the scheduler that f may have traffic again. Flows whose
// HasTraffic flips through their own Done hook (every backlogged scenario)
// are rescheduled automatically; a predicate flipped from outside the
// flow's own hooks needs a Wake so the indexed scheduler re-examines it.
func (s *Sim) Wake(f *Flow) { s.enqueueAdmit(f) }

// ScheduleAt registers fn to run when the virtual clock reaches t (in
// seconds; a t already in the past runs at the current instant's drain).
// Timer callbacks are the simulator's hook for traffic arrivals, mobility
// epochs, and churn: they fire within Step's event drain, after the
// deliveries, occupancy retirements, and countdown-expiry collection of
// the same instant, in schedule order — so their RNG consumption (they may
// draw from Sim.Rng) and their side effects (Wake, AddFlow, Reindex,
// further ScheduleAt calls) are deterministic. Frames whose countdowns
// expired at the same instant hit the air after the callbacks run.
func (s *Sim) ScheduleAt(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.timerSeq++
	var slot uint32
	if n := len(s.timerFree); n > 0 {
		slot = s.timerFree[n-1]
		s.timerFree = s.timerFree[:n-1]
		s.timerFns[slot] = fn
	} else {
		slot = uint32(len(s.timerFns))
		s.timerFns = append(s.timerFns, fn)
	}
	s.pushEvent(event{t: t, kind: evTimer, seq: s.timerSeq, gen: slot})
}

// takeTimer claims a fired timer event's callback and recycles its slot.
func (s *Sim) takeTimer(e event) func() {
	fn := s.timerFns[e.gen]
	s.timerFns[e.gen] = nil
	s.timerFree = append(s.timerFree, e.gen)
	return fn
}

// Now returns the virtual time elapsed so far, in seconds.
func (s *Sim) Now() float64 { return s.now }

// BusyTime returns the virtual time the medium spent carrying frames and
// acknowledgments, summed over concurrent neighborhoods — under spatial
// reuse it may exceed Now (utilization above 1 is the reuse win).
func (s *Sim) BusyTime() float64 { return s.busy }

// backoffSlots draws a backoff in whole slots for the given retry attempt.
func (s *Sim) backoffSlots(attempt int) int {
	return s.Rng.Intn(s.Mac.CW(attempt) + 1)
}

// inRange reports whether a transmitter at the given geometry is within
// f's carrier-sense range. The zero spatial configuration — no range, or
// missing geometry on either side — senses everything.
func (s *Sim) inRange(f *Flow, r *Radio) bool {
	if s.CSRangeM <= 0 || f.Radio == nil || r == nil {
		return true
	}
	return testbed.Dist(f.Radio.TxPos, r.TxPos) <= s.CSRangeM
}

// contends reports whether two flows share a carrier-sense neighborhood.
func (s *Sim) contends(f, g *Flow) bool { return s.inRange(f, g.Radio) }

// startTime returns when flow i's countdown expires: the moment its
// neighborhood went idle, plus DIFS, plus its remaining backoff slots. The
// expression is shared by the start-event push and the start processing so
// equal-countdown flows compare exactly equal (that tie is a collision).
func (s *Sim) startTime(i int32) (wait, start float64) {
	wait = s.Mac.DIFS() + float64(s.counter[i])*s.Mac.SlotTime
	return wait, s.idleSince[i] + wait
}

// interferer is one transmission overlapping a frame under resolution:
// its interference power at the frame's receiver (median path loss,
// linear) and the overlap interval, clipped to the frame's airtime.
type interferer struct {
	power    float64
	from, to float64
}

// Interference is the interference context of one delivery draw, passed
// to Flow.Deliver: how much the frame's effective SNR was degraded by the
// simultaneous transmissions its decode nevertheless survived.
type Interference struct {
	// SNRScale is the linear factor (<= 1) to apply to the serving link's
	// per-subcarrier SNRs; 1 for a clean (or legacy-model) reception.
	SNRScale float64
	// SINRdB is the frame's effective SNR in dB; +Inf when nothing
	// overlapped the frame in the air.
	SINRdB float64
}

// NoInterference is the context of a clean reception.
func NoInterference() Interference {
	return Interference{SNRScale: 1, SINRdB: math.Inf(1)}
}

// model returns the interference model in force: the pluggable Model when
// set, otherwise the historical binary gate over CaptureDB.
func (s *Sim) model() InterferenceModel {
	if s.Model != nil {
		return s.Model
	}
	return LegacyThreshold{CaptureDB: s.CaptureDB}
}

// effectiveSINRdB prices f's frame against the given interference history:
// the serving link's SNR over the worst *simultaneous* interference power
// the frame saw at its receiver, plus noise, in dB. Interferers are
// additive only while their air intervals actually coincide — two
// successive far-cell frames are not a doubled interferer. Deterministic:
// no RNG is consumed.
func (s *Sim) effectiveSINRdB(f *Flow, interferers []interferer) float64 {
	sinr := s.servingPow(f) / (1 + s.worstSimultaneous(interferers))
	return 10 * math.Log10(sinr)
}

// servingPow returns the serving link's linear SNR, memoized per flow per
// topology generation (the exponentiation is a pure function of the
// static Radio between Reindex calls).
func (s *Sim) servingPow(f *Flow) float64 {
	i := f.idx
	if s.sigGen[i] == s.topoGen && s.sigRadio[i] == f.Radio {
		return s.sigPow[i]
	}
	p := math.Pow(10, f.Radio.SNRdB/10)
	s.sigPow[i], s.sigRadio[i], s.sigGen[i] = p, f.Radio, s.topoGen
	return p
}

// worstSimultaneous sweeps the interferers' overlap intervals and returns
// the maximum concurrently-active interference power sum. Interval edges
// at equal times retire before they add (intervals are half-open), and
// additions commute, so the maximum is independent of tie order — and of
// the order interferers were accumulated in.
func (s *Sim) worstSimultaneous(interferers []interferer) float64 {
	edges := s.edges[:0]
	for _, g := range interferers {
		edges = append(edges, edge{t: g.from, dp: g.power}, edge{t: g.to, dp: -g.power})
	}
	s.edges = edges
	// The key covers both fields, so elements comparing equal are identical
	// values — any correct sort yields the same array, and the accumulation
	// below therefore visits the exact same float sequence regardless of
	// how the sort got there (float addition is order-sensitive; the sorted
	// array is not).
	sortEdges(edges)
	cur, worst := 0.0, 0.0
	for _, e := range edges {
		cur += e.dp
		if cur > worst {
			worst = cur
		}
	}
	return worst
}

// edge is one end of an interference interval in the sweep.
type edge struct {
	t  float64
	dp float64
}

// edgeLess orders sweep edges by (t, dp) ascending: removals first at
// equal times. Both keys are finite (clock times and positive powers), so
// < is a strict weak order here.
func edgeLess(a, b edge) bool { return a.t < b.t || (a.t == b.t && a.dp < b.dp) }

// sortEdges sorts the sweep edges by (t, dp) ascending with an inlined
// comparator: the sweep runs once per interfered settle, and the closure-
// call machinery of the generic sort dominated the settle profile.
// Insertion sort covers the short common case; wider settles run a
// median-of-three quicksort (recursing into the smaller half) down to the
// insertion threshold. The key is total over distinct elements, so the
// output array is unique — identical to what the generic sort produced —
// no matter which algorithm gets there.
func sortEdges(e []edge) {
	for len(e) > 32 {
		j := partitionEdges(e)
		if j < len(e)-j {
			sortEdges(e[:j])
			e = e[j:]
		} else {
			sortEdges(e[j:])
			e = e[:j]
		}
	}
	for i := 1; i < len(e); i++ {
		x := e[i]
		j := i - 1
		for j >= 0 && edgeLess(x, e[j]) {
			e[j+1] = e[j]
			j--
		}
		e[j+1] = x
	}
}

// partitionEdges Hoare-partitions e around a median-of-three pivot and
// returns the split point: e[:ret] <= pivot <= e[ret:] element-wise, with
// both sides non-empty.
func partitionEdges(e []edge) int {
	m := len(e) / 2
	n := len(e) - 1
	if edgeLess(e[m], e[0]) {
		e[m], e[0] = e[0], e[m]
	}
	if edgeLess(e[n], e[0]) {
		e[n], e[0] = e[0], e[n]
	}
	if edgeLess(e[n], e[m]) {
		e[n], e[m] = e[m], e[n]
	}
	p := e[m]
	i, j := 0, n
	for {
		for edgeLess(e[i], p) {
			i++
		}
		for edgeLess(p, e[j]) {
			j--
		}
		if i >= j {
			return j + 1
		}
		e[i], e[j] = e[j], e[i]
		i++
		j--
	}
}

// interferenceModeled reports whether the interference model applies to
// f's receptions (capture within collisions, corruption by hidden
// terminals, delivery-draw degradation).
func (s *Sim) interferenceModeled(f *Flow) bool {
	return (s.Model != nil || s.CaptureDB > 0) && s.Env != nil && f.Radio != nil
}

// boundedInterference reports whether settles go through the spatial index
// (per-flow past intervals) instead of the historical linear scan over
// every live and recent transmission.
func (s *Sim) boundedInterference() bool { return s.InterferenceRangeM > 0 }

// pushEvent adds one event to the pending min-heap (4-ary).
func (s *Sim) pushEvent(e event) {
	h := append(s.events, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.events = h
}

// popEvent removes and returns the earliest pending event. The moved tail
// element sifts down through the 4-ary levels: pick the least of up to
// four children, swap while it beats the parent.
func (s *Sim) popEvent() event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the tx pointer
	h = h[:n]
	i := 0
	for {
		m := i
		c := 4*i + 1
		last := c + 4
		if last > n {
			last = n
		}
		for ; c < last; c++ {
			if eventLess(h[c], h[m]) {
				m = c
			}
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.events = h
	return top
}

// newTx takes a transmission from the free pool, or allocates one.
func (s *Sim) newTx() *tx {
	if n := len(s.txFree); n > 0 {
		r := s.txFree[n-1]
		s.txFree = s.txFree[:n-1]
		*r = tx{}
		return r
	}
	return &tx{}
}

// Reindex rebuilds the spatial index from the flows' current Radio
// geometry, in registration order. Scenario code that moves flows mid-run
// (mobility epochs) swaps in updated Radio values from a timer callback
// and calls Reindex from that same callback, so every subsequent
// carrier-sense and interference query sees the new positions. The
// rebuild consumes no randomness and visits flows in registration order,
// so it is deterministic at any worker count. Interference pricing of
// frames still in the air reads each flow's Radio pointer at settle time;
// mobility code MUST install a fresh *Radio value rather than mutate the
// old one in place: retired intervals keep the pointer they were sent
// under, and the geometry memos (neighbor lists, per-pair interference
// prices, serving-link powers) are keyed by (generation, *Radio), so a
// fresh pointer plus the Reindex call invalidates them exactly, while an
// in-place mutation would go unseen — by the spatial index and the memos
// alike.
func (s *Sim) Reindex() {
	s.grid = nil
	s.indexed = 0
	s.unplaced = s.unplaced[:0]
	s.topoGen++
	clear(s.pairPow)
	s.ensureIndex()
}

// ensureIndex brings the spatial index up to date with Flows: placed flows
// enter the grid under their registration index, unplaced flows join the
// everyone-contends list. Positions are static between Reindex calls.
// Indexing new flows changes neighborhoods, so it advances the topology
// generation and thereby invalidates every cached neighborhood list.
func (s *Sim) ensureIndex() {
	if s.indexed == len(s.Flows) {
		return
	}
	s.growState()
	s.topoGen++
	for ; s.indexed < len(s.Flows); s.indexed++ {
		f := s.Flows[s.indexed]
		f.idx = int32(s.indexed)
		if f.Radio == nil {
			s.unplaced = append(s.unplaced, f.idx)
			continue
		}
		if s.CSRangeM > 0 {
			if s.grid == nil {
				s.grid = testbed.NewGrid(s.CSRangeM)
			}
			s.grid.Add(s.indexed, f.Radio.TxPos)
		}
	}
}

// nearby returns the indices of every flow that shares a carrier-sense
// neighborhood with f — including f itself. Grid hits come first in
// ascending id order, then the unplaced flows in registration order, so
// iteration is deterministic. The list is memoized per flow per topology
// generation; callers must treat it as read-only and must not hold it
// across a Reindex.
func (s *Sim) nearby(f *Flow) []int32 {
	if s.grid == nil || f.Radio == nil {
		return s.allContenders()
	}
	i := f.idx
	if s.nbGen[i] == s.topoGen && s.nbRadio[i] == f.Radio {
		return s.nbList[i]
	}
	nb := s.grid.Near(f.Radio.TxPos, s.CSRangeM, s.nbList[i][:0])
	nb = append(nb, s.unplaced...)
	s.nbList[i] = nb
	s.nbRadio[i] = f.Radio
	s.nbGen[i] = s.topoGen
	return nb
}

// allContenders returns the shared everyone-contends list (the no-grid
// degenerate neighborhood), rebuilt only when flows were added.
func (s *Sim) allContenders() []int32 {
	if len(s.allFlows) != len(s.Flows) {
		s.allFlows = s.allFlows[:0]
		for i := range s.Flows {
			s.allFlows = append(s.allFlows, int32(i))
		}
	}
	return s.allFlows
}

// blocked reports whether some in-range transmission currently occupies
// f's neighborhood.
func (s *Sim) blocked(f *Flow) bool {
	i := f.idx
	for _, gi := range s.nearby(f) {
		if gi != i && s.curTx[gi] != nil {
			return true
		}
	}
	return false
}

// enqueueAdmit schedules f for the admission pass at the top of the next
// Step.
func (s *Sim) enqueueAdmit(f *Flow) {
	if s.flags[f.idx]&fQueued != 0 {
		return
	}
	s.flags[f.idx] |= fQueued
	s.admitQ = append(s.admitQ, f.idx)
}

// processAdmissions runs the admission pass over the queued flows in
// registration order — the deterministic-RNG contract: new head-of-line
// frames prepare and flows without a live counter draw one, exactly as the
// historical every-flow scan did for the flows it would have touched.
func (s *Sim) processAdmissions() {
	if len(s.admitQ) == 0 {
		return
	}
	slices.Sort(s.admitQ)
	for _, i := range s.admitQ {
		s.flags[i] &^= fQueued
		s.admit(s.Flows[i])
	}
	s.admitQ = s.admitQ[:0]
}

// admit gives one idle flow its fresh look: pull a new head-of-line frame
// (Prepare draw), draw a backoff counter if none is banked, and enter the
// countdown — immediately when the neighborhood is clear, otherwise frozen
// until an in-range occupancy ends.
func (s *Sim) admit(f *Flow) {
	i := f.idx
	if s.curTx[i] != nil {
		return
	}
	fl := s.flags[i]
	if fl&fInFlight == 0 {
		if f.HasTraffic == nil || !f.HasTraffic() {
			s.flags[i] = fl &^ fWaiting
			return
		}
		fl |= fInFlight
		s.flags[i] = fl
		f.attempt = 0
		f.frameAir = 0
		f.rateIdx = 0
		if f.Prepare != nil {
			f.rateIdx = f.Prepare(s.Rng)
		}
	}
	if fl&fCounterValid == 0 {
		s.counter[i] = int32(s.backoffSlots(f.attempt))
		fl |= fCounterValid
		s.flags[i] = fl
	}
	if s.blocked(f) {
		s.flags[i] = fl &^ fWaiting
		return
	}
	if fl&fWaiting == 0 {
		s.flags[i] = fl | fWaiting
		s.idleSince[i] = s.now
		s.pushStart(f)
	}
}

// pushStart schedules f's countdown expiry as a start event under a fresh
// generation (superseding any stale event still in the heap).
func (s *Sim) pushStart(f *Flow) {
	i := f.idx
	s.startGen[i]++
	_, st := s.startTime(i)
	s.pushEvent(event{t: st, kind: evStart, seq: int64(i), gen: s.startGen[i]})
}

// staleStart reports whether a start event no longer speaks for its flow:
// the countdown was frozen, restarted, or consumed since the event was
// pushed.
func (s *Sim) staleStart(e event) bool {
	i := e.seq
	return e.gen != s.startGen[i] || s.flags[i]&(fWaiting|fInFlight) != (fWaiting|fInFlight) || s.curTx[i] != nil
}

// purgeStale discards superseded start events from the top of the heap so
// the earliest remaining event is real — the clock must never advance to a
// time where nothing happens.
func (s *Sim) purgeStale() {
	for len(s.events) > 0 {
		e := s.events[0]
		if e.kind != evStart || !s.staleStart(e) {
			return
		}
		s.popEvent()
	}
}

// Step advances the simulator to its next event — a frame starting,
// a frame's airtime ending (delivery settles), or a transmission's
// occupancy ending (its neighborhood frees up) — and processes every event
// scheduled at that instant. It returns false — without consuming
// randomness or advancing the clock — once no flow has traffic and nothing
// is on the air.
func (s *Sim) Step() bool {
	s.ensureIndex()

	// Admission pass: flows touched by the previous event round (new
	// frames, retry counters) take their RNG draws in registration order
	// while the clock still reads the previous event time.
	s.processAdmissions()
	s.purgeStale()

	if len(s.events) == 0 {
		// Quiescent: nothing on the air, no countdown pending. Re-examine
		// every flow (registration order) so traffic that appeared without
		// a Wake — the historical scheduler rescanned every Step — still
		// gets picked up, then report drained if nothing woke.
		for _, f := range s.Flows {
			if s.curTx[f.idx] == nil && s.flags[f.idx]&fQueued == 0 {
				s.admit(f)
			}
		}
		s.purgeStale()
		if len(s.events) == 0 {
			return false
		}
	}

	// Drain every event scheduled at the earliest pending instant, in
	// phase order: deliveries settle (creation order), occupancies retire
	// (creation order), countdown expiries collect (registration order).
	// An unacked delivery settles into an occupancy end at the same
	// instant; the heap surfaces it within this same drain.
	t := s.events[0].t
	s.now = t
	startFlows := s.startFlows[:0]
	for len(s.events) > 0 && s.events[0].t == t {
		e := s.popEvent()
		switch e.kind {
		case evAirEnd:
			s.resolve(e.r)
		case evOccEnd:
			s.retire(e.r)
		case evStart:
			if !s.staleStart(e) {
				startFlows = append(startFlows, s.Flows[e.seq])
			}
		default: // evTimer
			s.takeTimer(e)()
		}
	}
	s.startFlows = startFlows

	// Starts: every countdown that expired at this instant puts its frame
	// on the air. The flows were collected first so that one starter's
	// carrier-sense freeze cannot knock out another flow starting at the
	// same instant — simultaneous in-range starts are a collision, and
	// they form collision groups below.
	if len(startFlows) > 0 {
		starters := s.starters[:0]
		for _, f := range startFlows {
			i := f.idx
			wait, st := s.startTime(i)
			r := s.newTx()
			r.f, r.seq = f, s.txSeq
			s.txSeq++
			r.base, r.wait, r.start, r.ft = s.idleSince[i], wait, st, f.FrameTime(f.rateIdx)
			r.cost = r.wait + r.ft
			r.airEnd = r.base + r.cost
			r.end = r.airEnd // provisional; finalized when the delivery settles
			s.curTx[i] = r
			s.flags[i] &^= fWaiting | fCounterValid // the counter is consumed by this attempt
			s.startGen[i]++
			if r.ft > s.maxFT {
				s.maxFT = r.ft
			}
			if !s.boundedInterference() {
				s.active = append(s.active, r)
			}
			s.pushEvent(event{t: r.airEnd, kind: evAirEnd, seq: r.seq, r: r})
			starters = append(starters, r)
		}
		s.starters = starters

		// Carrier-sense freeze: every waiting flow in range of a starter
		// banks the idle slots that elapsed before the frame hit the air
		// and freezes (DCF frozen backoff), resuming — not redrawing —
		// when its neighborhood frees up.
		difs := s.Mac.DIFS()
		for _, r := range starters {
			for _, gi := range s.nearby(r.f) {
				fl := s.flags[gi]
				if s.curTx[gi] != nil || fl&(fInFlight|fWaiting) != (fInFlight|fWaiting) {
					continue
				}
				s.counter[gi] -= int32(elapsedSlots(t-s.idleSince[gi]-difs, s.Mac.SlotTime, int(s.counter[gi])))
				s.flags[gi] = fl &^ fWaiting
				s.startGen[gi]++ // supersede the pending start event
			}
		}

		s.countGroups(starters)
	}
	return true
}

// retire ends one transmission's occupancy: the flow leaves the air, the
// finished interval is remembered for interference pricing, the flow is
// queued for re-admission, and frozen in-range neighbors whose
// neighborhoods are now clear resume their countdowns.
func (s *Sim) retire(r *tx) {
	f := r.f
	i := f.idx
	s.curTx[i] = nil
	s.flags[i] &^= fWaiting
	if s.boundedInterference() {
		// Keep the interval on the flow's slot, pruned against the oldest
		// instant a still-unresolved frame could have started (an
		// unresolved frame's airtime ends after now and spans at most the
		// longest frame seen).
		cutoff := s.now - s.maxFT
		kept := s.flowPast[i][:0]
		for _, p := range s.flowPast[i] {
			if p.airEnd > cutoff {
				kept = append(kept, p)
			}
		}
		s.flowPast[i] = append(kept, pastTx{radio: f.Radio, start: r.start, airEnd: r.airEnd})
	} else {
		s.past = append(s.past, pastTx{radio: f.Radio, start: r.start, airEnd: r.airEnd})
		s.removeActive(r)
		s.prunePast()
	}
	s.enqueueAdmit(f)
	s.txFree = append(s.txFree, r)

	// Resume: frozen in-range flows whose neighborhoods are now completely
	// clear restart their countdowns from this instant. Each checks its
	// own neighborhood — it may be in range of another transmission that
	// is still up. Flows queued for re-admission (their own attempt just
	// ended) are skipped: they have no banked counter yet and enter the
	// countdown through admit at the top of the next step, with the clock
	// still reading this instant — exactly like the historical scheduler's
	// admission-then-carrier-sense pass.
	for _, gi := range s.nearby(f) {
		fl := s.flags[gi]
		if gi == i || fl&(fInFlight|fCounterValid) != (fInFlight|fCounterValid) ||
			fl&(fWaiting|fQueued) != 0 || s.curTx[gi] != nil {
			continue
		}
		g := s.Flows[gi]
		if s.blocked(g) {
			continue
		}
		s.flags[gi] = fl | fWaiting
		s.idleSince[gi] = s.now
		s.pushStart(g)
	}
}

// removeActive takes one retired transmission out of the live list,
// preserving creation order (the settle scan's deterministic order).
func (s *Sim) removeActive(r *tx) {
	for i, g := range s.active {
		if g == r {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

// elapsedSlots converts idle time after DIFS into whole backoff slots,
// clamped to [0, counter]. The epsilon absorbs float error from
// reconstructing slot counts out of absolute clock times.
func elapsedSlots(idle, slot float64, counter int) int {
	k := int(idle/slot + 1e-6)
	if k < 0 {
		return 0
	}
	if k > counter {
		return counter
	}
	return k
}

// countGroups tallies medium acquisitions and collisions among the
// transmissions that started simultaneously: connected components of the
// carrier-sense relation. Component counts are independent of walk order,
// so the spatial index only changes which pairs are examined.
func (s *Sim) countGroups(starters []*tx) {
	if len(starters) == 0 {
		return
	}
	if len(starters) == 1 { // the common case: one flow acquired its neighborhood
		s.Acquisitions++
		return
	}
	grouped := s.grouped[:0]
	for range starters {
		grouped = append(grouped, false)
	}
	group := s.group[:0]
	if s.grid != nil {
		// Component walk over grid neighborhoods: each starter's flow is
		// stamped with its slot, and neighbors resolve through the index
		// instead of a pairwise scan over every starter.
		s.markGen++
		for i, r := range starters {
			fi := r.f.idx
			s.mark[fi] = s.markGen
			s.starterIdx[fi] = int32(i)
		}
		for i := range starters {
			if grouped[i] {
				continue
			}
			group = append(group[:0], i)
			grouped[i] = true
			for k := 0; k < len(group); k++ {
				for _, gi := range s.nearby(starters[group[k]].f) {
					if s.mark[gi] != s.markGen || grouped[s.starterIdx[gi]] {
						continue
					}
					grouped[s.starterIdx[gi]] = true
					group = append(group, int(s.starterIdx[gi]))
				}
			}
			s.Acquisitions++
			if len(group) > 1 {
				s.CollisionRounds++
			}
		}
		s.grouped, s.group = grouped, group
		return
	}
	for i := range starters {
		if grouped[i] {
			continue
		}
		group = append(group[:0], i)
		grouped[i] = true
		for k := 0; k < len(group); k++ {
			for j := range starters {
				if !grouped[j] && s.contends(starters[j].f, starters[group[k]].f) {
					grouped[j] = true
					group = append(group, j)
				}
			}
		}
		s.Acquisitions++
		if len(group) > 1 {
			s.CollisionRounds++
		}
	}
	s.grouped, s.group = grouped, group
}

// resolve settles one frame at the end of its airtime against every
// transmission that overlapped it in the air: in-range overlaps are
// colliders (they necessarily started with it), out-of-range overlaps are
// hidden terminals at the receiver. It finalizes the transmission's
// occupancy (ACK exchange or ACK timeout) and bills the flow its attempt
// cost.
func (s *Sim) resolve(r *tx) {
	f := r.f
	f.Attempts++

	// Gather the transmissions whose frames overlapped r's. Each
	// contributes its median interference power over the clipped overlap
	// interval. The decode decision below is invariant to accumulation
	// order (collider counts and interval maxima commute, and the sweep in
	// worstSimultaneous sorts by a total key), so the bounded mode is free
	// to gather through the memoized candidate lists. The per-pair prices
	// themselves are memoized — geometry is static between Reindex calls —
	// so a steady-state settle does no path-loss arithmetic and allocates
	// nothing.
	interf := s.interf[:0]
	nColliders := 0
	geometryKnown := true
	covered := r.start // air interval already billed busy by resolved colliders
	priced := s.interferenceModeled(f)
	scan := func(radio *Radio, start, airEnd float64, resolved bool, pow float64, inCS bool) {
		if airEnd <= r.start || start >= r.airEnd {
			return
		}
		if inCS {
			nColliders++
			if radio == nil {
				geometryKnown = false
			}
			if resolved && airEnd <= r.airEnd && airEnd > covered {
				covered = airEnd
			}
		}
		if radio == nil || !priced {
			return
		}
		g := interferer{power: pow, from: start, to: airEnd}
		if g.from < r.start {
			g.from = r.start
		}
		if g.to > r.airEnd {
			g.to = r.airEnd
		}
		interf = append(interf, g)
	}
	// scanDirect prices one interval from its own radio, bypassing the
	// memos: the fallback for intervals sent under a geometry the caches
	// no longer describe (a past transmission from before a Reindex).
	scanDirect := func(radio *Radio, start, airEnd float64, resolved bool) {
		if airEnd <= r.start || start >= r.airEnd {
			return
		}
		pow := 0.0
		if radio != nil && priced {
			d := testbed.Dist(radio.TxPos, f.Radio.RxPos)
			pow = math.Pow(10, s.Env.MeanSNRdB(d)/10)
		}
		scan(radio, start, airEnd, resolved, pow, s.inRange(f, radio))
	}
	switch {
	case !s.boundedInterference():
		// Unbounded: the historical linear scan over every live and recent
		// transmission, with pair pricing through the per-pair memo.
		for _, g := range s.active {
			if g == r || g.airEnd <= r.start || g.start >= r.airEnd {
				continue
			}
			pow, inCS := s.pricePair(f, g.f.Radio, priced)
			scan(g.f.Radio, g.start, g.airEnd, g.resolved, pow, inCS)
		}
		for _, p := range s.past {
			if p.airEnd <= r.start || p.start >= r.airEnd {
				continue
			}
			pow, inCS := s.pricePair(f, p.radio, priced)
			scan(p.radio, p.start, p.airEnd, true, pow, inCS)
		}
	case s.grid == nil || f.Radio == nil:
		// Bounded mode without an index to query (or an unplaced frame):
		// every flow is a candidate, as the historical visit did.
		for _, g := range s.Flows {
			gi := g.idx
			if a := s.curTx[gi]; a != nil && a != r {
				scanDirect(g.Radio, a.start, a.airEnd, a.resolved)
			}
			for _, p := range s.flowPast[gi] {
				scanDirect(p.radio, p.start, p.airEnd, true)
			}
		}
	default:
		// Bounded: the memoized candidate list — the flows the two
		// neighborhood queries (carrier-sense range around the transmitter,
		// interference range around the receiver) plus the unplaced list
		// can reach, each carrying its pair price. Intervals sent under a
		// different Radio than the cached one fall back to direct pricing.
		cands := s.ixCands[f.idx]
		if s.ixGen[f.idx] != s.topoGen || s.ixRadio[f.idx] != f.Radio {
			cands = s.buildIxCands(f)
		}
		for k := range cands {
			c := &cands[k]
			gi := c.fi
			// The cached price was computed against the candidate's Radio at
			// build time, which within a topology generation is its current
			// Radio (the Reindex contract), so a live transmission always
			// takes the cached price and only past intervals recorded under
			// a superseded radio fall back to direct pricing.
			cr := s.Flows[gi].Radio
			if a := s.curTx[gi]; a != nil && a != r {
				scan(cr, a.start, a.airEnd, a.resolved, c.pow, c.inCS)
			}
			for _, p := range s.flowPast[gi] {
				if p.radio == cr {
					scan(cr, p.start, p.airEnd, true, c.pow, c.inCS)
				} else {
					scanDirect(p.radio, p.start, p.airEnd, true)
				}
			}
		}
	}
	s.interf = interf

	// Decode decision, delegated to the interference model. A collision
	// destroys the frame unless the model rules it captured (its effective
	// SINR clears the model's decode threshold); a clean-neighborhood
	// frame interfered by hidden terminals is corrupted when the model
	// says so, and otherwise carries the model's degradation into its
	// delivery draw.
	survives := true
	ix := NoInterference()
	settle := func(collision bool) bool {
		sinr := s.effectiveSINRdB(f, interf)
		v := s.model().Settle(Reception{
			SINRdB:       sinr,
			ServingSNRdB: f.Radio.SNRdB,
			RateIdx:      f.rateIdx,
			Collision:    collision,
		})
		for len(f.RateCorruption) <= f.rateIdx {
			f.RateCorruption = append(f.RateCorruption, RateCorruption{})
		}
		f.RateCorruption[f.rateIdx].add(v)
		ix = Interference{SNRScale: v.SNRScale, SINRdB: sinr}
		return v.Survives
	}
	switch {
	case nColliders > 0:
		survives = s.interferenceModeled(f) && geometryKnown && settle(true)
		if survives {
			f.Captures++
		} else {
			f.Collisions++
		}
	case len(interf) > 0:
		survives = settle(false)
		if !survives {
			f.HiddenLosses++
			s.HiddenCorruptions++
		}
	}

	ok := false
	if survives {
		ok = f.Deliver(s.Rng, f.rateIdx, ix)
	}

	// Busy accounting: colliding frames overlap in the air, so bill only
	// the slice of this frame not already billed by an earlier-resolved
	// collider; a clean frame bills its full airtime. Hidden overlap is in
	// a different neighborhood and counts separately (BusyTime sums over
	// neighborhoods).
	busy := r.ft
	if nColliders > 0 {
		busy = r.airEnd - covered
		if busy < 0 {
			busy = 0
		}
	}
	if f.Acked {
		if ok {
			ack := s.Mac.SIFS + s.Mac.AckDuration()
			r.cost += ack
			busy += ack
		} else {
			r.cost += s.Mac.AckTimeout()
		}
	}
	r.end = r.base + r.cost
	r.resolved = true
	s.pushEvent(event{t: r.end, kind: evOccEnd, seq: r.seq, r: r})
	f.frameAir += r.cost
	f.AirTime += r.cost
	s.busy += busy
	if ok {
		s.finishFrame(f, true)
	} else {
		s.failAttempt(f)
	}
}

// buildIxCands rebuilds f's memoized interferer-candidate list: the flows
// the bounded settle scan can reach — two neighborhood queries, carrier-
// sense range around f's transmitter (every possible collider) and
// interference range around its receiver (every interferer loud enough to
// price) — plus the unplaced flows, first occurrence kept, exactly the
// set the historical per-settle queries visited. Each candidate is priced
// once against its current Radio; the list is valid until the topology
// generation advances or f's Radio is swapped. Consumes no randomness.
func (s *Sim) buildIxCands(f *Flow) []ixCand {
	i := f.idx
	s.markGen++
	m := s.markGen
	priced := s.interferenceModeled(f)
	// Both queries run before the list is assembled so it can be sized in
	// one exact allocation: at city scale these lists are the largest
	// structure in the sim, and append-doubling 100k of them both churns
	// twice the memory and leaves ~2x capacity stranded.
	csNb := s.grid.Near(f.Radio.TxPos, s.CSRangeM, s.nbufA[:0])
	ixNb := s.grid.Near(f.Radio.RxPos, s.InterferenceRangeM, s.nbufB[:0])
	out := s.ixCands[i][:0]
	if need := len(csNb) + len(ixNb) + len(s.unplaced); cap(out) < need {
		out = make([]ixCand, 0, need)
	}
	add := func(ids []int32) {
		for _, gi := range ids {
			if s.mark[gi] == m {
				continue
			}
			s.mark[gi] = m
			g := s.Flows[gi]
			c := ixCand{fi: gi, inCS: s.inRange(f, g.Radio)}
			if g.Radio != nil && priced {
				d := testbed.Dist(g.Radio.TxPos, f.Radio.RxPos)
				c.pow = math.Pow(10, s.Env.MeanSNRdB(d)/10)
			}
			out = append(out, c)
		}
	}
	add(csNb)
	add(ixNb)
	add(s.unplaced)
	s.nbufA, s.nbufB = csNb[:0], ixNb[:0]
	s.ixCands[i] = out
	s.ixRadio[i] = f.Radio
	s.ixGen[i] = s.topoGen
	return out
}

// pairPrice prices one interferer geometry against f's receiver through
// the per-pair memo (the unbounded scan has no candidate lists to hang
// prices on): the interferer's median power at f's receiver (linear) and
// its carrier-sense relation to f. Pairs involving a nil radio are never
// priced (unplaced flows defer to everyone: inCS true, no interference
// term); unpriced flows only need the carrier-sense bit.
func (s *Sim) pricePair(f *Flow, radio *Radio, priced bool) (pow float64, inCS bool) {
	if radio == nil || f.Radio == nil || !priced {
		return 0, s.inRange(f, radio)
	}
	k := radioPair{from: radio, at: f.Radio}
	if p, ok := s.pairPow[k]; ok {
		return p.pow, p.inCS
	}
	d := testbed.Dist(radio.TxPos, f.Radio.RxPos)
	p := pairPrice{
		pow:  math.Pow(10, s.Env.MeanSNRdB(d)/10),
		inCS: s.inRange(f, radio),
	}
	if s.pairPow == nil {
		s.pairPow = make(map[radioPair]pairPrice, 64)
	}
	s.pairPow[k] = p
	return p.pow, p.inCS
}

// prunePast drops finished transmissions that can no longer overlap any
// unresolved frame (future frames start at or after now, and past air
// intervals end at or before it).
func (s *Sim) prunePast() {
	cutoff := math.Inf(1)
	for _, r := range s.active {
		if !r.resolved && r.start < cutoff {
			cutoff = r.start
		}
	}
	kept := s.past[:0]
	for _, p := range s.past {
		if p.airEnd > cutoff {
			kept = append(kept, p)
		}
	}
	s.past = kept
}

// failAttempt advances a flow past a failed attempt: unacked flows complete
// their single attempt; acked flows retry until the MAC retry limit.
func (s *Sim) failAttempt(f *Flow) {
	if !f.Acked {
		s.finishFrame(f, false)
		return
	}
	f.attempt++
	if f.attempt >= s.Mac.RetryLimit {
		s.finishFrame(f, false)
	}
}

// inFlight reports whether f's head-of-line frame is in service (between
// its admission draw and its Done). f must be registered with AddFlow.
func (s *Sim) inFlight(f *Flow) bool {
	return int(f.idx) < len(s.flags) && s.flags[f.idx]&fInFlight != 0
}

// finishFrame retires the head-of-line frame and notifies the flow.
func (s *Sim) finishFrame(f *Flow, delivered bool) {
	if delivered {
		f.Delivered++
	} else {
		f.Dropped++
	}
	s.flags[f.idx] &^= fInFlight
	if f.Done != nil {
		f.Done(f.rateIdx, delivered, f.frameAir)
	}
}

// Run steps the simulator until every flow is drained. The MaxSteps guard
// exists to catch scenario bugs (a flow whose backlog never drains); when
// it trips, Run panics rather than let an experiment publish tables from a
// silently truncated run. One frame attempt spans up to three events
// (start, frame-air end, occupancy end), so the default is sized well
// above any real workload.
func (s *Sim) Run() {
	max := s.MaxSteps
	if max == 0 {
		max = 1 << 26
	}
	for i := 0; i < max; i++ {
		if !s.Step() {
			return
		}
	}
	panic(fmt.Sprintf("netsim: %d flows still backlogged after %d scheduler events — a flow's backlog never drains",
		len(s.Flows), max))
}

// RunUntil steps the simulator until the virtual clock reaches the
// deadline (in seconds) or every flow drains, whichever comes first — the
// fixed-time-window saturation mode: flows may offer unbounded backlogs
// and the run measures what the medium carried in the window, so no single
// starved flow gates the elapsed time. The clock overshoots the deadline
// by at most the final event's span; callers measure throughput over the
// actual Now().
func (s *Sim) RunUntil(deadline float64) {
	max := s.MaxSteps
	if max == 0 {
		max = 1 << 26
	}
	for i := 0; i < max; i++ {
		if s.now >= deadline || !s.Step() {
			return
		}
	}
	panic(fmt.Sprintf("netsim: clock at %.6fs of %.6fs after %d scheduler events — events are not advancing the clock",
		s.now, deadline, max))
}
