// Package netsim is a packet-level, virtual-time network simulator for the
// throughput experiments: traffic flows contend for the wireless medium
// under DCF, with per-flow ARQ, rate control hooks, joint-transmission
// sender groups, and — when flows carry positions — spatial reuse across
// several carrier-sense neighborhoods.
//
// The medium model is deliberately packet-level, not sample-level: the PHY
// packages settle what a frame costs (airtimes from the modem's symbol
// accounting via internal/mac) and how likely it is to be received
// (per-subcarrier SNR draws through internal/permodel); netsim owns the
// clock and the contention between transmissions.
//
// The scheduler is event-driven: every pending transmission is an event on
// one shared virtual clock, and each Step advances the clock to the
// earliest pending event — a frame hitting the air, a frame's airtime
// ending, or a transmission's occupancy (ACK exchange or ACK timeout)
// ending. A transmission occupies the medium only within its carrier-sense
// neighborhood, so neighborhoods advance at their own pace: a short frame
// in one cell completes and the next contention there begins while a long
// frame still hangs in the air elsewhere. Under spatial reuse, utilization
// (BusyTime over Now) approaches the number of disjoint neighborhoods.
//
// Contention follows DCF with frozen counters:
//
//  1. Every backlogged flow holds a backoff counter in whole slots, drawn
//     from its retry-dependent contention window when it enters contention
//     or after its own transmission attempt (in flow-registration order, so
//     RNG consumption — and therefore the whole run — is deterministic for
//     a given seed). While its neighborhood is idle the flow counts the
//     counter down from DIFS onward; when an in-range transmission starts
//     first, the flow banks the idle slots that elapsed and freezes, as in
//     real DCF, resuming — not redrawing — when the neighborhood frees up.
//  2. A flow transmits when its countdown expires with the neighborhood
//     still idle. In-range flows whose countdowns expire at the same
//     instant collide; flows out of carrier-sense range of every active
//     transmitter proceed concurrently — spatial reuse.
//  3. A frame is settled when its airtime ends, against every transmission
//     that overlapped it in the air. The simulator computes the frame's
//     effective SNR — serving-link SNR over the worst simultaneous median
//     interference the frame saw at its receiver, from transmitters in
//     range or not (interference power comes from the testbed's median
//     path loss, so no randomness is consumed) — and hands it to the
//     pluggable InterferenceModel (Sim.Model; nil means LegacyThreshold
//     over Sim.CaptureDB). In-range overlaps are colliders: a collision
//     destroys every frame in the group unless the model rules the frame
//     captured (its effective SINR clears the model's decode threshold —
//     one fixed threshold for LegacyThreshold, the frame's own rate's
//     decode floor for RateAware). Out-of-range overlaps are hidden
//     terminals: a frame the model corrupts is lost even though its own
//     neighborhood was clean, and a frame that survives carries the
//     model's delivery-draw degradation (RateAware scales the draw's
//     subcarrier SNRs down to the effective SNR; LegacyThreshold never
//     degrades). Interference is additive only while air intervals
//     actually coincide — successive far-cell frames are not a doubled
//     interferer. With no model configured (Model nil, CaptureDB 0),
//     hidden terminals are not modeled and frames fail only by collision
//     or by their own delivery draw.
//  4. A transmission occupies its neighborhood for DIFS + backoff + frame
//     airtime, plus the ACK exchange on success or the ACK timeout on
//     failure; in-range flows resume their countdowns when that occupancy
//     ends.
//
// Carrier sense is pairwise between transmitter positions (Sim.CSRangeM);
// with the zero configuration — no range, or flows without Radio info —
// every flow contends with every other and the simulator degenerates to
// one collision domain, where the event scheduler reproduces the classic
// single-medium DCF round structure exactly (a single flow's run is
// draw-for-draw and bit-for-bit identical to the historical round-based
// scheduler — the determinism contract the fig17/fig18 experiments pin).
//
// Retries re-enter contention (as in real DCF) rather than holding the
// medium. Scenario packages (internal/lasthop, internal/exor) define flows
// over this core instead of hand-rolling DIFS/backoff/ACK arithmetic.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mac"
	"repro/internal/testbed"
)

// Radio is a flow's geometry, used for spatial reuse, capture, and
// hidden-terminal interference: where its transmitter and its receiver sit
// on the floor, and the mean SNR of the serving link at that receiver.
// Flows without Radio info contend with every other flow, never capture,
// and never suffer hidden terminals (everyone defers to them).
type Radio struct {
	TxPos testbed.Point
	RxPos testbed.Point
	// SNRdB is the serving link's average SNR at RxPos (shadowing included,
	// fading excluded) — the signal term of the capture/interference SINR.
	SNRdB float64
}

// Flow is one contending traffic stream. The simulator drives it frame by
// frame through the hooks; all hooks see the simulator's RNG so runs stay
// deterministic for a given seed.
type Flow struct {
	Name string
	// Acked selects unicast semantics: successful frames pay SIFS + ACK,
	// failures pay the ACK timeout and retry up to the MAC retry limit.
	// Unacknowledged flows (broadcast-style, e.g. ExOR forwarding) get
	// exactly one attempt per frame.
	Acked bool
	// Radio places the flow for spatial reuse; nil means the flow is heard
	// everywhere (single-collision-domain behavior).
	Radio *Radio

	// HasTraffic reports whether the flow wants the medium. Nil means the
	// flow never contends.
	HasTraffic func() bool
	// Prepare is called once per head-of-line frame (not per attempt) and
	// returns the rate index to transmit at — from SampleRate, a fixed
	// rate, or whatever the scenario chooses. Nil means rate index 0.
	Prepare func(rng *rand.Rand) int
	// FrameTime returns the frame airtime in seconds at rate index r.
	FrameTime func(r int) float64
	// Deliver draws one reception attempt at rate index r. ix carries the
	// interference context of the attempt: a scenario prices partial
	// overlap by scaling its per-subcarrier SNR draws by ix.SNRScale
	// (LinkDeliverScaled / JointLinkDeliverScaled); ignoring ix reproduces
	// the historical threshold-only behavior.
	Deliver func(rng *rand.Rand, r int, ix Interference) bool
	// Done is called when the head-of-line frame completes — delivered, or
	// dropped after the retry limit (acked flows) or its single attempt
	// (unacked flows) — with the medium time the flow's own attempts
	// consumed.
	Done func(r int, delivered bool, airTime float64)

	// Accounting, maintained by the simulator.
	Delivered    int     // frames delivered
	Dropped      int     // frames dropped (retry limit, or unacked failure)
	Attempts     int     // transmission attempts, including collisions
	Collisions   int     // attempts lost to collisions
	Captures     int     // colliding attempts that survived by capture
	HiddenLosses int     // attempts corrupted by out-of-range (hidden) interferers
	AirTime      float64 // medium time consumed by this flow's own attempts
	// RateCorruption[r] accumulates the interference model's outcomes for
	// attempts sent at rate index r (grown on demand; nil while no attempt
	// of this flow was interfered with the model engaged).
	RateCorruption []RateCorruption

	// Head-of-line frame state.
	inFlight bool
	rateIdx  int
	attempt  int
	frameAir float64

	// Contention state: the frozen DCF backoff counter, in whole slots.
	// counterValid distinguishes a counter of zero from "needs a draw".
	counter      int
	counterValid bool

	// Event-scheduler state.
	active    *tx     // in-flight transmission; nil while contending or idle
	waiting   bool    // counting down (idleSince below is valid)
	idleSince float64 // when the current DIFS + countdown began
}

// tx is one transmission on the air: the unit the event scheduler moves
// the clock between. base/wait/cost mirror the MAC cost arithmetic
// (DIFS + backoff, then airtime, then ACK or timeout) so a lone flow's
// clock is bit-identical to summing its per-attempt costs.
type tx struct {
	f        *Flow
	base     float64 // clock time the DIFS + countdown began
	wait     float64 // DIFS + counter·slot
	start    float64 // base + wait: the frame hits the air
	ft       float64 // frame airtime
	airEnd   float64 // base + (wait + ft): the frame leaves the air
	cost     float64 // wait + ft, plus ACK / ACK-timeout once resolved
	end      float64 // base + cost: occupancy ends, neighborhood frees up
	resolved bool    // delivery settled (airEnd passed)
}

// pastTx remembers a finished transmission's air interval and geometry so
// still-unresolved frames it overlapped can count it as interference.
type pastTx struct {
	radio         *Radio
	start, airEnd float64
}

// Sim is a shared medium with a virtual clock. With the zero spatial
// configuration it is one collision domain; with CSRangeM set and flows
// carrying Radio info, it is a floor of overlapping carrier-sense
// neighborhoods that reuse the medium concurrently, each advancing at the
// pace of its own transmissions.
type Sim struct {
	Mac   mac.Params
	Rng   *rand.Rand
	Flows []*Flow

	// CSRangeM is the carrier-sense range in meters: two flows contend only
	// when their transmitters are within it. <= 0 means every flow contends
	// with every other (one collision domain). Flows without Radio info
	// always contend with everyone.
	CSRangeM float64
	// CaptureDB is the SINR threshold of the LegacyThreshold interference
	// model: a colliding frame whose SINR at its own receiver is at least
	// this many dB is received as if it were alone (physical-layer
	// capture), and a frame overlapped by out-of-range transmitters
	// (hidden terminals) is corrupted when its SINR falls below it. With
	// Model unset, 0 disables interference entirely — every collision
	// destroys all frames and hidden terminals never interfere. Requires
	// Env and per-flow Radio info. Ignored when Model is set.
	CaptureDB float64
	// Model selects the pluggable interference model that settles
	// interfered frames (capture within collisions, decode against hidden
	// terminals, delivery-draw degradation). Nil runs LegacyThreshold over
	// CaptureDB — the historical binary gate, bit-for-bit.
	Model InterferenceModel
	// Env supplies the median path loss used to price interference
	// (deterministic — the interference model consumes no randomness).
	Env *testbed.Testbed

	// MaxSteps bounds Run as a safety net against scenarios whose flows
	// never drain; 0 means a generous default.
	MaxSteps int

	now  float64 // virtual time, seconds
	busy float64 // time the medium carried frames (airtime, ACKs)

	Acquisitions      int // transmit groups that acquired some neighborhood
	CollisionRounds   int // transmit groups that collided (>1 simultaneous in-range frame)
	HiddenCorruptions int // frames corrupted by hidden-terminal interference

	// Live and recently finished transmissions.
	active []*tx
	past   []pastTx

	// Scratch buffers reused across Steps (the hot loop).
	starters []*tx
	interf   []interferer
	edges    []edge
	grouped  []bool
	group    []int
}

// New returns a simulator over the given MAC timing, drawing all randomness
// from rng.
func New(m mac.Params, rng *rand.Rand) *Sim {
	return &Sim{Mac: m, Rng: rng}
}

// AddFlow registers a flow and returns it (for accounting reads after Run).
func (s *Sim) AddFlow(f *Flow) *Flow {
	s.Flows = append(s.Flows, f)
	return f
}

// Now returns the virtual time elapsed so far, in seconds.
func (s *Sim) Now() float64 { return s.now }

// BusyTime returns the virtual time the medium spent carrying frames and
// acknowledgments, summed over concurrent neighborhoods — under spatial
// reuse it may exceed Now (utilization above 1 is the reuse win).
func (s *Sim) BusyTime() float64 { return s.busy }

// backoffSlots draws a backoff in whole slots for the given retry attempt.
func (s *Sim) backoffSlots(attempt int) int {
	return s.Rng.Intn(s.Mac.CW(attempt) + 1)
}

// inRange reports whether a transmitter at the given geometry is within
// f's carrier-sense range. The zero spatial configuration — no range, or
// missing geometry on either side — senses everything.
func (s *Sim) inRange(f *Flow, r *Radio) bool {
	if s.CSRangeM <= 0 || f.Radio == nil || r == nil {
		return true
	}
	return testbed.Dist(f.Radio.TxPos, r.TxPos) <= s.CSRangeM
}

// contends reports whether two flows share a carrier-sense neighborhood.
func (s *Sim) contends(f, g *Flow) bool { return s.inRange(f, g.Radio) }

// startTime returns when f's countdown expires: the moment its
// neighborhood went idle, plus DIFS, plus its remaining backoff slots. The
// expression is shared by the event search and the start processing so
// equal-countdown flows compare exactly equal (that tie is a collision).
func (s *Sim) startTime(f *Flow) (wait, start float64) {
	wait = s.Mac.DIFS() + float64(f.counter)*s.Mac.SlotTime
	return wait, f.idleSince + wait
}

// interferer is one transmission overlapping a frame under resolution:
// its interference power at the frame's receiver (median path loss,
// linear) and the overlap interval, clipped to the frame's airtime.
type interferer struct {
	power    float64
	from, to float64
}

// Interference is the interference context of one delivery draw, passed
// to Flow.Deliver: how much the frame's effective SNR was degraded by the
// simultaneous transmissions its decode nevertheless survived.
type Interference struct {
	// SNRScale is the linear factor (<= 1) to apply to the serving link's
	// per-subcarrier SNRs; 1 for a clean (or legacy-model) reception.
	SNRScale float64
	// SINRdB is the frame's effective SNR in dB; +Inf when nothing
	// overlapped the frame in the air.
	SINRdB float64
}

// NoInterference is the context of a clean reception.
func NoInterference() Interference {
	return Interference{SNRScale: 1, SINRdB: math.Inf(1)}
}

// model returns the interference model in force: the pluggable Model when
// set, otherwise the historical binary gate over CaptureDB.
func (s *Sim) model() InterferenceModel {
	if s.Model != nil {
		return s.Model
	}
	return LegacyThreshold{CaptureDB: s.CaptureDB}
}

// effectiveSINRdB prices f's frame against the given interference history:
// the serving link's SNR over the worst *simultaneous* interference power
// the frame saw at its receiver, plus noise, in dB. Interferers are
// additive only while their air intervals actually coincide — two
// successive far-cell frames are not a doubled interferer. Deterministic:
// no RNG is consumed.
func (s *Sim) effectiveSINRdB(f *Flow, interferers []interferer) float64 {
	sinr := math.Pow(10, f.Radio.SNRdB/10) / (1 + s.worstSimultaneous(interferers))
	return 10 * math.Log10(sinr)
}

// worstSimultaneous sweeps the interferers' overlap intervals and returns
// the maximum concurrently-active interference power sum. Interval edges
// at equal times retire before they add (intervals are half-open), and
// additions commute, so the maximum is independent of tie order.
func (s *Sim) worstSimultaneous(interferers []interferer) float64 {
	edges := s.edges[:0]
	for _, g := range interferers {
		edges = append(edges, edge{t: g.from, dp: g.power}, edge{t: g.to, dp: -g.power})
	}
	s.edges = edges
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].dp < edges[j].dp // removals first at equal times
	})
	cur, worst := 0.0, 0.0
	for _, e := range edges {
		cur += e.dp
		if cur > worst {
			worst = cur
		}
	}
	return worst
}

// edge is one end of an interference interval in the sweep.
type edge struct {
	t  float64
	dp float64
}

// interferenceModeled reports whether the interference model applies to
// f's receptions (capture within collisions, corruption by hidden
// terminals, delivery-draw degradation).
func (s *Sim) interferenceModeled(f *Flow) bool {
	return (s.Model != nil || s.CaptureDB > 0) && s.Env != nil && f.Radio != nil
}

// Step advances the simulator to its next event — a frame starting,
// a frame's airtime ending (delivery settles), or a transmission's
// occupancy ending (its neighborhood frees up) — and processes every event
// scheduled at that instant. It returns false — without consuming
// randomness or advancing the clock — once no flow has traffic and nothing
// is on the air.
func (s *Sim) Step() bool {
	// Admission pass, in flow-registration order (deterministic RNG
	// consumption): new head-of-line frames prepare, and flows without a
	// live counter draw one.
	pending := false
	for _, f := range s.Flows {
		if f.active != nil {
			pending = true
			continue
		}
		if !f.inFlight && (f.HasTraffic == nil || !f.HasTraffic()) {
			f.waiting = false
			continue
		}
		pending = true
		if !f.inFlight {
			f.inFlight = true
			f.attempt = 0
			f.frameAir = 0
			f.rateIdx = 0
			if f.Prepare != nil {
				f.rateIdx = f.Prepare(s.Rng)
			}
		}
		if !f.counterValid {
			f.counter = s.backoffSlots(f.attempt)
			f.counterValid = true
		}
	}
	if !pending {
		return false
	}

	// Carrier-sense pass: a contender whose neighborhood just went busy
	// banks the idle slots that elapsed before the earliest in-range
	// transmission started and freezes (DCF frozen backoff); a contender
	// with a clear neighborhood counts down from idleSince and contributes
	// a pending start event.
	nextStart := math.Inf(1)
	for _, f := range s.Flows {
		if f.active != nil || !f.inFlight {
			continue
		}
		blockerStart, blocked := math.Inf(1), false
		for _, r := range s.active {
			if s.contends(f, r.f) {
				blocked = true
				if r.start < blockerStart {
					blockerStart = r.start
				}
			}
		}
		if blocked {
			if f.waiting {
				f.counter -= elapsedSlots(blockerStart-f.idleSince-s.Mac.DIFS(), s.Mac.SlotTime, f.counter)
				f.waiting = false
			}
			continue
		}
		if !f.waiting {
			f.waiting = true
			f.idleSince = s.now
		}
		if _, st := s.startTime(f); st < nextStart {
			nextStart = st
		}
	}

	// The next event is the earliest pending start, frame-air end, or
	// occupancy end. At least one exists: a backlogged flow is either on
	// the air, blocked by something on the air, or counting down.
	next := nextStart
	for _, r := range s.active {
		t := r.end
		if !r.resolved {
			t = r.airEnd
		}
		if t < next {
			next = t
		}
	}
	s.now = next

	// Frame-air ends: settle deliveries (in registration-then-start order,
	// so delivery draws stay deterministic).
	for _, r := range s.active {
		if !r.resolved && r.airEnd == next {
			s.resolve(r)
		}
	}

	// Occupancy ends: the transmission retires and its flow re-enters
	// contention (a fresh countdown begins at the next carrier-sense pass).
	kept := s.active[:0]
	retired := false
	for _, r := range s.active {
		if r.resolved && r.end == next {
			r.f.active = nil
			r.f.waiting = false
			s.past = append(s.past, pastTx{radio: r.f.Radio, start: r.start, airEnd: r.airEnd})
			retired = true
			continue
		}
		kept = append(kept, r)
	}
	s.active = kept
	if retired {
		s.prunePast()
	}

	// Starts: every countdown that expires at this instant puts its frame
	// on the air. Simultaneous in-range starts form collision groups.
	starters := s.starters[:0]
	for _, f := range s.Flows {
		if f.active != nil || !f.inFlight || !f.waiting {
			continue
		}
		wait, st := s.startTime(f)
		if st != next {
			continue
		}
		r := &tx{f: f, base: f.idleSince, wait: wait, start: st, ft: f.FrameTime(f.rateIdx)}
		r.cost = r.wait + r.ft
		r.airEnd = r.base + r.cost
		r.end = r.airEnd // provisional; finalized when the delivery settles
		f.active = r
		f.waiting = false
		f.counterValid = false // the counter is consumed by this attempt
		s.active = append(s.active, r)
		starters = append(starters, r)
	}
	s.starters = starters
	s.countGroups(starters)
	return true
}

// elapsedSlots converts idle time after DIFS into whole backoff slots,
// clamped to [0, counter]. The epsilon absorbs float error from
// reconstructing slot counts out of absolute clock times.
func elapsedSlots(idle, slot float64, counter int) int {
	k := int(idle/slot + 1e-6)
	if k < 0 {
		return 0
	}
	if k > counter {
		return counter
	}
	return k
}

// countGroups tallies medium acquisitions and collisions among the
// transmissions that started simultaneously: connected components of the
// carrier-sense relation, walked in registration order.
func (s *Sim) countGroups(starters []*tx) {
	if len(starters) == 0 {
		return
	}
	if len(starters) == 1 { // the common case: one flow acquired its neighborhood
		s.Acquisitions++
		return
	}
	grouped := s.grouped[:0]
	for range starters {
		grouped = append(grouped, false)
	}
	group := s.group[:0]
	for i := range starters {
		if grouped[i] {
			continue
		}
		group = append(group[:0], i)
		grouped[i] = true
		for k := 0; k < len(group); k++ {
			for j := range starters {
				if !grouped[j] && s.contends(starters[j].f, starters[group[k]].f) {
					grouped[j] = true
					group = append(group, j)
				}
			}
		}
		s.Acquisitions++
		if len(group) > 1 {
			s.CollisionRounds++
		}
	}
	s.grouped, s.group = grouped, group
}

// resolve settles one frame at the end of its airtime against every
// transmission that overlapped it in the air: in-range overlaps are
// colliders (they necessarily started with it), out-of-range overlaps are
// hidden terminals at the receiver. It finalizes the transmission's
// occupancy (ACK exchange or ACK timeout) and bills the flow its attempt
// cost.
func (s *Sim) resolve(r *tx) {
	f := r.f
	f.Attempts++

	// Gather the transmissions whose frames overlapped r's, in
	// active-then-past scan order (deterministic accumulation). Each
	// contributes its median interference power over the clipped overlap
	// interval.
	interf := s.interf[:0]
	nColliders := 0
	geometryKnown := true
	covered := r.start // air interval already billed busy by resolved colliders
	scan := func(radio *Radio, start, airEnd float64, resolved bool) {
		if airEnd <= r.start || start >= r.airEnd {
			return
		}
		if s.inRange(f, radio) {
			nColliders++
			if radio == nil {
				geometryKnown = false
			}
			if resolved && airEnd <= r.airEnd && airEnd > covered {
				covered = airEnd
			}
		}
		if radio == nil || !s.interferenceModeled(f) {
			return
		}
		g := interferer{from: start, to: airEnd}
		if g.from < r.start {
			g.from = r.start
		}
		if g.to > r.airEnd {
			g.to = r.airEnd
		}
		d := testbed.Dist(radio.TxPos, f.Radio.RxPos)
		g.power = math.Pow(10, s.Env.MeanSNRdB(d)/10)
		interf = append(interf, g)
	}
	for _, g := range s.active {
		if g != r {
			scan(g.f.Radio, g.start, g.airEnd, g.resolved)
		}
	}
	for _, p := range s.past {
		scan(p.radio, p.start, p.airEnd, true)
	}
	s.interf = interf

	// Decode decision, delegated to the interference model. A collision
	// destroys the frame unless the model rules it captured (its effective
	// SINR clears the model's decode threshold); a clean-neighborhood
	// frame interfered by hidden terminals is corrupted when the model
	// says so, and otherwise carries the model's degradation into its
	// delivery draw.
	survives := true
	ix := NoInterference()
	settle := func(collision bool) bool {
		sinr := s.effectiveSINRdB(f, interf)
		v := s.model().Settle(Reception{
			SINRdB:       sinr,
			ServingSNRdB: f.Radio.SNRdB,
			RateIdx:      f.rateIdx,
			Collision:    collision,
		})
		for len(f.RateCorruption) <= f.rateIdx {
			f.RateCorruption = append(f.RateCorruption, RateCorruption{})
		}
		f.RateCorruption[f.rateIdx].add(v)
		ix = Interference{SNRScale: v.SNRScale, SINRdB: sinr}
		return v.Survives
	}
	switch {
	case nColliders > 0:
		survives = s.interferenceModeled(f) && geometryKnown && settle(true)
		if survives {
			f.Captures++
		} else {
			f.Collisions++
		}
	case len(interf) > 0:
		survives = settle(false)
		if !survives {
			f.HiddenLosses++
			s.HiddenCorruptions++
		}
	}

	ok := false
	if survives {
		ok = f.Deliver(s.Rng, f.rateIdx, ix)
	}

	// Busy accounting: colliding frames overlap in the air, so bill only
	// the slice of this frame not already billed by an earlier-resolved
	// collider; a clean frame bills its full airtime. Hidden overlap is in
	// a different neighborhood and counts separately (BusyTime sums over
	// neighborhoods).
	busy := r.ft
	if nColliders > 0 {
		busy = r.airEnd - covered
		if busy < 0 {
			busy = 0
		}
	}
	if f.Acked {
		if ok {
			ack := s.Mac.SIFS + s.Mac.AckDuration()
			r.cost += ack
			busy += ack
		} else {
			r.cost += s.Mac.AckTimeout()
		}
	}
	r.end = r.base + r.cost
	r.resolved = true
	f.frameAir += r.cost
	f.AirTime += r.cost
	s.busy += busy
	if ok {
		s.finishFrame(f, true)
	} else {
		s.failAttempt(f)
	}
}

// prunePast drops finished transmissions that can no longer overlap any
// unresolved frame (future frames start at or after now, and past air
// intervals end at or before it).
func (s *Sim) prunePast() {
	cutoff := math.Inf(1)
	for _, r := range s.active {
		if !r.resolved && r.start < cutoff {
			cutoff = r.start
		}
	}
	kept := s.past[:0]
	for _, p := range s.past {
		if p.airEnd > cutoff {
			kept = append(kept, p)
		}
	}
	s.past = kept
}

// failAttempt advances a flow past a failed attempt: unacked flows complete
// their single attempt; acked flows retry until the MAC retry limit.
func (s *Sim) failAttempt(f *Flow) {
	if !f.Acked {
		s.finishFrame(f, false)
		return
	}
	f.attempt++
	if f.attempt >= s.Mac.RetryLimit {
		s.finishFrame(f, false)
	}
}

// finishFrame retires the head-of-line frame and notifies the flow.
func (s *Sim) finishFrame(f *Flow, delivered bool) {
	if delivered {
		f.Delivered++
	} else {
		f.Dropped++
	}
	f.inFlight = false
	if f.Done != nil {
		f.Done(f.rateIdx, delivered, f.frameAir)
	}
}

// Run steps the simulator until every flow is drained. The MaxSteps guard
// exists to catch scenario bugs (a flow whose backlog never drains); when
// it trips, Run panics rather than let an experiment publish tables from a
// silently truncated run. One frame attempt spans up to three events
// (start, frame-air end, occupancy end), so the default is sized well
// above any real workload.
func (s *Sim) Run() {
	max := s.MaxSteps
	if max == 0 {
		max = 1 << 26
	}
	for i := 0; i < max; i++ {
		if !s.Step() {
			return
		}
	}
	panic(fmt.Sprintf("netsim: %d flows still backlogged after %d scheduler events — a flow's backlog never drains",
		len(s.Flows), max))
}

// RunUntil steps the simulator until the virtual clock reaches the
// deadline (in seconds) or every flow drains, whichever comes first — the
// fixed-time-window saturation mode: flows may offer unbounded backlogs
// and the run measures what the medium carried in the window, so no single
// starved flow gates the elapsed time. The clock overshoots the deadline
// by at most the final event's span; callers measure throughput over the
// actual Now().
func (s *Sim) RunUntil(deadline float64) {
	max := s.MaxSteps
	if max == 0 {
		max = 1 << 26
	}
	for i := 0; i < max; i++ {
		if s.now >= deadline || !s.Step() {
			return
		}
	}
	panic(fmt.Sprintf("netsim: clock at %.6fs of %.6fs after %d scheduler events — events are not advancing the clock",
		s.now, deadline, max))
}
