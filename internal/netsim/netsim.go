// Package netsim is a packet-level, virtual-time network simulator for the
// throughput experiments: traffic flows contend for the wireless medium
// under DCF, with per-flow ARQ, rate control hooks, joint-transmission
// sender groups, and — when flows carry positions — spatial reuse across
// several carrier-sense neighborhoods.
//
// The medium model is deliberately packet-level, not sample-level: the PHY
// packages settle what a frame costs (airtimes from the modem's symbol
// accounting via internal/mac) and how likely it is to be received
// (per-subcarrier SNR draws through internal/permodel); netsim owns the
// clock and the contention between transmissions.
//
// The scheduler is event-driven: every pending transmission is an event on
// one shared virtual clock, and each Step advances the clock to the
// earliest pending event — a frame hitting the air, a frame's airtime
// ending, a transmission's occupancy (ACK exchange or ACK timeout)
// ending, or a scheduled timer callback firing (ScheduleAt — the hook the
// traffic layer in traffic.go uses for packet arrivals, and scenario code
// uses for mobility epochs and churn). A transmission occupies the medium
// only within its carrier-sense
// neighborhood, so neighborhoods advance at their own pace: a short frame
// in one cell completes and the next contention there begins while a long
// frame still hangs in the air elsewhere. Under spatial reuse, utilization
// (BusyTime over Now) approaches the number of disjoint neighborhoods.
//
// Internally the scheduler is indexed so city-scale floors stay cheap:
// pending events live in a min-heap keyed by (time, phase, sequence)
// rather than being rediscovered by per-Step scans over every flow, and
// carrier-sense lookups (who does this transmission freeze, who may resume
// when it retires, who collided with whom) go through a spatial hash over
// transmitter positions (testbed.Grid, cell size CSRangeM), so the
// per-event cost is O(nearby flows), not O(all flows). The index changes
// only the access path: which flows are examined, never the order in which
// randomness is consumed — neighbor iteration is in sorted id order, and
// heap ties break exactly in the order the historical scans visited
// (air-ends before occupancy-ends before starts; transmissions in creation
// order; flows in registration order).
//
// Contention follows DCF with frozen counters:
//
//  1. Every backlogged flow holds a backoff counter in whole slots, drawn
//     from its retry-dependent contention window when it enters contention
//     or after its own transmission attempt (in flow-registration order, so
//     RNG consumption — and therefore the whole run — is deterministic for
//     a given seed). While its neighborhood is idle the flow counts the
//     counter down from DIFS onward; when an in-range transmission starts
//     first, the flow banks the idle slots that elapsed and freezes, as in
//     real DCF, resuming — not redrawing — when the neighborhood frees up.
//  2. A flow transmits when its countdown expires with the neighborhood
//     still idle. In-range flows whose countdowns expire at the same
//     instant collide; flows out of carrier-sense range of every active
//     transmitter proceed concurrently — spatial reuse.
//  3. A frame is settled when its airtime ends, against every transmission
//     that overlapped it in the air. The simulator computes the frame's
//     effective SNR — serving-link SNR over the worst simultaneous median
//     interference the frame saw at its receiver, from transmitters in
//     range or not (interference power comes from the testbed's median
//     path loss, so no randomness is consumed) — and hands it to the
//     pluggable InterferenceModel (Sim.Model; nil means LegacyThreshold
//     over Sim.CaptureDB). In-range overlaps are colliders: a collision
//     destroys every frame in the group unless the model rules the frame
//     captured (its effective SINR clears the model's decode threshold —
//     one fixed threshold for LegacyThreshold, the frame's own rate's
//     decode floor for RateAware). Out-of-range overlaps are hidden
//     terminals: a frame the model corrupts is lost even though its own
//     neighborhood was clean, and a frame that survives carries the
//     model's delivery-draw degradation (RateAware scales the draw's
//     subcarrier SNRs down to the effective SNR; LegacyThreshold never
//     degrades). Interference is additive only while air intervals
//     actually coincide — successive far-cell frames are not a doubled
//     interferer. With no model configured (Model nil, CaptureDB 0),
//     hidden terminals are not modeled and frames fail only by collision
//     or by their own delivery draw.
//  4. A transmission occupies its neighborhood for DIFS + backoff + frame
//     airtime, plus the ACK exchange on success or the ACK timeout on
//     failure; in-range flows resume their countdowns when that occupancy
//     ends.
//
// Carrier sense is pairwise between transmitter positions (Sim.CSRangeM);
// with the zero configuration — no range, or flows without Radio info —
// every flow contends with every other and the simulator degenerates to
// one collision domain, where the event scheduler reproduces the classic
// single-medium DCF round structure exactly (a single flow's run is
// draw-for-draw and bit-for-bit identical to the historical round-based
// scheduler — the determinism contract the fig17/fig18 experiments pin).
//
// Interference pricing scans every transmission on the air regardless of
// distance by default; Sim.InterferenceRangeM bounds that scan through the
// spatial index for city-scale floors where far interferers are noise.
//
// Retries re-enter contention (as in real DCF) rather than holding the
// medium. Scenario packages (internal/lasthop, internal/exor) define flows
// over this core instead of hand-rolling DIFS/backoff/ACK arithmetic.
package netsim

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"repro/internal/mac"
	"repro/internal/testbed"
)

// Radio is a flow's geometry, used for spatial reuse, capture, and
// hidden-terminal interference: where its transmitter and its receiver sit
// on the floor, and the mean SNR of the serving link at that receiver.
// Flows without Radio info contend with every other flow, never capture,
// and never suffer hidden terminals (everyone defers to them).
type Radio struct {
	TxPos testbed.Point
	RxPos testbed.Point
	// SNRdB is the serving link's average SNR at RxPos (shadowing included,
	// fading excluded) — the signal term of the capture/interference SINR.
	SNRdB float64
}

// Flow is one contending traffic stream. The simulator drives it frame by
// frame through the hooks; all hooks see the simulator's RNG so runs stay
// deterministic for a given seed.
type Flow struct {
	Name string
	// Acked selects unicast semantics: successful frames pay SIFS + ACK,
	// failures pay the ACK timeout and retry up to the MAC retry limit.
	// Unacknowledged flows (broadcast-style, e.g. ExOR forwarding) get
	// exactly one attempt per frame.
	Acked bool
	// Radio places the flow for spatial reuse; nil means the flow is heard
	// everywhere (single-collision-domain behavior).
	Radio *Radio

	// HasTraffic reports whether the flow wants the medium. Nil means the
	// flow never contends. The scheduler re-examines a drained flow when
	// its own Done retires a frame and whenever the whole simulator goes
	// quiescent; a predicate that turns true from some *other* flow's hook
	// (or from outside the simulator) must be announced with Sim.Wake.
	HasTraffic func() bool
	// Prepare is called once per head-of-line frame (not per attempt) and
	// returns the rate index to transmit at — from SampleRate, a fixed
	// rate, or whatever the scenario chooses. Nil means rate index 0.
	Prepare func(rng *rand.Rand) int
	// FrameTime returns the frame airtime in seconds at rate index r.
	FrameTime func(r int) float64
	// Deliver draws one reception attempt at rate index r. ix carries the
	// interference context of the attempt: a scenario prices partial
	// overlap by scaling its per-subcarrier SNR draws by ix.SNRScale
	// (LinkDeliverScaled / JointLinkDeliverScaled); ignoring ix reproduces
	// the historical threshold-only behavior.
	Deliver func(rng *rand.Rand, r int, ix Interference) bool
	// Done is called when the head-of-line frame completes — delivered, or
	// dropped after the retry limit (acked flows) or its single attempt
	// (unacked flows) — with the medium time the flow's own attempts
	// consumed.
	Done func(r int, delivered bool, airTime float64)

	// Accounting, maintained by the simulator.
	Delivered    int     // frames delivered
	Dropped      int     // frames dropped (retry limit, or unacked failure)
	Attempts     int     // transmission attempts, including collisions
	Collisions   int     // attempts lost to collisions
	Captures     int     // colliding attempts that survived by capture
	HiddenLosses int     // attempts corrupted by out-of-range (hidden) interferers
	AirTime      float64 // medium time consumed by this flow's own attempts
	// RateCorruption[r] accumulates the interference model's outcomes for
	// attempts sent at rate index r (grown on demand; nil while no attempt
	// of this flow was interfered with the model engaged).
	RateCorruption []RateCorruption

	// Head-of-line frame state.
	inFlight bool
	rateIdx  int
	attempt  int
	frameAir float64

	// Contention state: the frozen DCF backoff counter, in whole slots.
	// counterValid distinguishes a counter of zero from "needs a draw".
	counter      int
	counterValid bool

	// Event-scheduler state.
	active    *tx     // in-flight transmission; nil while contending or idle
	waiting   bool    // counting down (idleSince below is valid)
	idleSince float64 // when the current DIFS + countdown began

	// Index bookkeeping.
	idx        int32    // position in Sim.Flows: the flow's id in the spatial index
	queued     bool     // already on the admission queue
	startGen   uint32   // generation of the pending start event (freeze/resume invalidates)
	mark       uint32   // last Sim.markGen that visited this flow (scratch)
	starterIdx int32    // this flow's slot in the current starter set (scratch)
	past       []pastTx // finished air intervals, kept while they can still interfere (bounded-interference mode)
}

// tx is one transmission on the air: the unit the event scheduler moves
// the clock between. base/wait/cost mirror the MAC cost arithmetic
// (DIFS + backoff, then airtime, then ACK or timeout) so a lone flow's
// clock is bit-identical to summing its per-attempt costs.
type tx struct {
	f        *Flow
	seq      int64   // creation order: heap tie-break, matching the historical scan order
	base     float64 // clock time the DIFS + countdown began
	wait     float64 // DIFS + counter·slot
	start    float64 // base + wait: the frame hits the air
	ft       float64 // frame airtime
	airEnd   float64 // base + (wait + ft): the frame leaves the air
	cost     float64 // wait + ft, plus ACK / ACK-timeout once resolved
	end      float64 // base + cost: occupancy ends, neighborhood frees up
	resolved bool    // delivery settled (airEnd passed)
}

// pastTx remembers a finished transmission's air interval and geometry so
// still-unresolved frames it overlapped can count it as interference.
type pastTx struct {
	radio         *Radio
	start, airEnd float64
}

// Event phases at one instant, in the order the historical scheduler's
// per-Step phases ran them: deliveries settle, then occupancies retire,
// then new frames hit the air.
const (
	evAirEnd = iota // a frame's airtime ends: resolve the delivery
	evOccEnd        // a transmission's occupancy ends: the neighborhood frees up
	evStart         // a countdown expires: the frame hits the air
	evTimer         // a scheduled callback fires (traffic arrivals, mobility epochs, churn)
)

// event is one entry in the scheduler's min-heap. Tx events carry their
// transmission and tie-break by creation sequence; start events carry the
// flow's index and a generation stamp — freezing or consuming the
// countdown bumps the flow's generation, so superseded start events are
// recognized and discarded lazily when they surface. Timer events carry
// their callback and tie-break by schedule order.
type event struct {
	t    float64
	seq  int64
	r    *tx
	fn   func()
	kind uint8
	gen  uint32
}

// eventLess orders the heap: time, then phase, then creation/registration
// sequence — exactly the order the historical per-Step scans processed
// simultaneous events.
func eventLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// Sim is a shared medium with a virtual clock. With the zero spatial
// configuration it is one collision domain; with CSRangeM set and flows
// carrying Radio info, it is a floor of overlapping carrier-sense
// neighborhoods that reuse the medium concurrently, each advancing at the
// pace of its own transmissions.
type Sim struct {
	Mac   mac.Params
	Rng   *rand.Rand
	Flows []*Flow

	// CSRangeM is the carrier-sense range in meters: two flows contend only
	// when their transmitters are within it. <= 0 means every flow contends
	// with every other (one collision domain). Flows without Radio info
	// always contend with everyone. Set it before the first Step: it also
	// sizes the spatial index's buckets.
	CSRangeM float64
	// CaptureDB is the SINR threshold of the LegacyThreshold interference
	// model: a colliding frame whose SINR at its own receiver is at least
	// this many dB is received as if it were alone (physical-layer
	// capture), and a frame overlapped by out-of-range transmitters
	// (hidden terminals) is corrupted when its SINR falls below it. With
	// Model unset, 0 disables interference entirely — every collision
	// destroys all frames and hidden terminals never interfere. Requires
	// Env and per-flow Radio info. Ignored when Model is set.
	CaptureDB float64
	// Model selects the pluggable interference model that settles
	// interfered frames (capture within collisions, decode against hidden
	// terminals, delivery-draw degradation). Nil runs LegacyThreshold over
	// CaptureDB — the historical binary gate, bit-for-bit.
	Model InterferenceModel
	// Env supplies the median path loss used to price interference
	// (deterministic — the interference model consumes no randomness).
	Env *testbed.Testbed
	// InterferenceRangeM bounds the interference scan when a frame is
	// settled: only transmitters within this range of the frame's receiver
	// (or within CSRangeM of its transmitter — colliders always count) are
	// priced. <= 0, the default, scans every transmission on the air
	// regardless of distance — the historical behavior, bit-for-bit. City-
	// scale scenarios set it to the radius beyond which interference is
	// below noise, turning each settle into an O(nearby) index query; it
	// should comfortably exceed CSRangeM plus the longest serving link.
	// Set it before the first Step and leave it fixed for the run.
	InterferenceRangeM float64

	// MaxSteps bounds Run as a safety net against scenarios whose flows
	// never drain; 0 means a generous default.
	MaxSteps int

	now  float64 // virtual time, seconds
	busy float64 // time the medium carried frames (airtime, ACKs)

	Acquisitions      int // transmit groups that acquired some neighborhood
	CollisionRounds   int // transmit groups that collided (>1 simultaneous in-range frame)
	HiddenCorruptions int // frames corrupted by hidden-terminal interference

	// Pending events, a binary min-heap ordered by eventLess.
	events   []event
	txSeq    int64
	timerSeq int64 // schedule order of timer events: their heap tie-break
	txFree   []*tx // retired tx structs, recycled to keep the event path allocation-free

	// Spatial index over transmitter positions (nil when CSRangeM <= 0 or
	// nothing is placed); unplaced flows contend with everyone and ride
	// along every neighborhood query.
	grid     *testbed.Grid
	indexed  int // prefix of Flows already in the index
	unplaced []int32
	maxFT    float64 // longest frame airtime seen: prune horizon for per-flow past intervals

	// Admission queue: flows that need a fresh look at the top of the next
	// Step (new frame, retry counter, carrier-sense state), processed in
	// registration order so RNG consumption is deterministic.
	admitQ []int32

	// Live and recently finished transmissions, maintained only in the
	// unbounded-interference mode where settles scan them linearly; the
	// bounded mode keeps past intervals per flow instead.
	active []*tx
	past   []pastTx

	// Scratch buffers reused across Steps (the hot loop). nbufA serves the
	// outer neighborhood query of each handler, nbufB the nested blocked
	// checks inside resume/admission.
	startFlows []*Flow
	starters   []*tx
	interf     []interferer
	edges      []edge
	grouped    []bool
	group      []int
	nbufA      []int32
	nbufB      []int32
	markGen    uint32
}

// New returns a simulator over the given MAC timing, drawing all randomness
// from rng.
func New(m mac.Params, rng *rand.Rand) *Sim {
	return &Sim{Mac: m, Rng: rng}
}

// AddFlow registers a flow and returns it (for accounting reads after Run).
func (s *Sim) AddFlow(f *Flow) *Flow {
	f.idx = int32(len(s.Flows))
	s.Flows = append(s.Flows, f)
	s.enqueueAdmit(f)
	return f
}

// Wake tells the scheduler that f may have traffic again. Flows whose
// HasTraffic flips through their own Done hook (every backlogged scenario)
// are rescheduled automatically; a predicate flipped from outside the
// flow's own hooks needs a Wake so the indexed scheduler re-examines it.
func (s *Sim) Wake(f *Flow) { s.enqueueAdmit(f) }

// ScheduleAt registers fn to run when the virtual clock reaches t (in
// seconds; a t already in the past runs at the current instant's drain).
// Timer callbacks are the simulator's hook for traffic arrivals, mobility
// epochs, and churn: they fire within Step's event drain, after the
// deliveries, occupancy retirements, and countdown-expiry collection of
// the same instant, in schedule order — so their RNG consumption (they may
// draw from Sim.Rng) and their side effects (Wake, AddFlow, Reindex,
// further ScheduleAt calls) are deterministic. Frames whose countdowns
// expired at the same instant hit the air after the callbacks run.
func (s *Sim) ScheduleAt(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.timerSeq++
	s.pushEvent(event{t: t, kind: evTimer, seq: s.timerSeq, fn: fn})
}

// Now returns the virtual time elapsed so far, in seconds.
func (s *Sim) Now() float64 { return s.now }

// BusyTime returns the virtual time the medium spent carrying frames and
// acknowledgments, summed over concurrent neighborhoods — under spatial
// reuse it may exceed Now (utilization above 1 is the reuse win).
func (s *Sim) BusyTime() float64 { return s.busy }

// backoffSlots draws a backoff in whole slots for the given retry attempt.
func (s *Sim) backoffSlots(attempt int) int {
	return s.Rng.Intn(s.Mac.CW(attempt) + 1)
}

// inRange reports whether a transmitter at the given geometry is within
// f's carrier-sense range. The zero spatial configuration — no range, or
// missing geometry on either side — senses everything.
func (s *Sim) inRange(f *Flow, r *Radio) bool {
	if s.CSRangeM <= 0 || f.Radio == nil || r == nil {
		return true
	}
	return testbed.Dist(f.Radio.TxPos, r.TxPos) <= s.CSRangeM
}

// contends reports whether two flows share a carrier-sense neighborhood.
func (s *Sim) contends(f, g *Flow) bool { return s.inRange(f, g.Radio) }

// startTime returns when f's countdown expires: the moment its
// neighborhood went idle, plus DIFS, plus its remaining backoff slots. The
// expression is shared by the start-event push and the start processing so
// equal-countdown flows compare exactly equal (that tie is a collision).
func (s *Sim) startTime(f *Flow) (wait, start float64) {
	wait = s.Mac.DIFS() + float64(f.counter)*s.Mac.SlotTime
	return wait, f.idleSince + wait
}

// interferer is one transmission overlapping a frame under resolution:
// its interference power at the frame's receiver (median path loss,
// linear) and the overlap interval, clipped to the frame's airtime.
type interferer struct {
	power    float64
	from, to float64
}

// Interference is the interference context of one delivery draw, passed
// to Flow.Deliver: how much the frame's effective SNR was degraded by the
// simultaneous transmissions its decode nevertheless survived.
type Interference struct {
	// SNRScale is the linear factor (<= 1) to apply to the serving link's
	// per-subcarrier SNRs; 1 for a clean (or legacy-model) reception.
	SNRScale float64
	// SINRdB is the frame's effective SNR in dB; +Inf when nothing
	// overlapped the frame in the air.
	SINRdB float64
}

// NoInterference is the context of a clean reception.
func NoInterference() Interference {
	return Interference{SNRScale: 1, SINRdB: math.Inf(1)}
}

// model returns the interference model in force: the pluggable Model when
// set, otherwise the historical binary gate over CaptureDB.
func (s *Sim) model() InterferenceModel {
	if s.Model != nil {
		return s.Model
	}
	return LegacyThreshold{CaptureDB: s.CaptureDB}
}

// effectiveSINRdB prices f's frame against the given interference history:
// the serving link's SNR over the worst *simultaneous* interference power
// the frame saw at its receiver, plus noise, in dB. Interferers are
// additive only while their air intervals actually coincide — two
// successive far-cell frames are not a doubled interferer. Deterministic:
// no RNG is consumed.
func (s *Sim) effectiveSINRdB(f *Flow, interferers []interferer) float64 {
	sinr := math.Pow(10, f.Radio.SNRdB/10) / (1 + s.worstSimultaneous(interferers))
	return 10 * math.Log10(sinr)
}

// worstSimultaneous sweeps the interferers' overlap intervals and returns
// the maximum concurrently-active interference power sum. Interval edges
// at equal times retire before they add (intervals are half-open), and
// additions commute, so the maximum is independent of tie order — and of
// the order interferers were accumulated in.
func (s *Sim) worstSimultaneous(interferers []interferer) float64 {
	edges := s.edges[:0]
	for _, g := range interferers {
		edges = append(edges, edge{t: g.from, dp: g.power}, edge{t: g.to, dp: -g.power})
	}
	s.edges = edges
	// The key covers both fields, so elements comparing equal are identical
	// values — any sort yields the same array, and the generic sort skips
	// the reflection cost of sort.Slice in this hot path.
	slices.SortFunc(edges, func(a, b edge) int {
		if a.t != b.t {
			return cmp.Compare(a.t, b.t)
		}
		return cmp.Compare(a.dp, b.dp) // removals first at equal times
	})
	cur, worst := 0.0, 0.0
	for _, e := range edges {
		cur += e.dp
		if cur > worst {
			worst = cur
		}
	}
	return worst
}

// edge is one end of an interference interval in the sweep.
type edge struct {
	t  float64
	dp float64
}

// interferenceModeled reports whether the interference model applies to
// f's receptions (capture within collisions, corruption by hidden
// terminals, delivery-draw degradation).
func (s *Sim) interferenceModeled(f *Flow) bool {
	return (s.Model != nil || s.CaptureDB > 0) && s.Env != nil && f.Radio != nil
}

// boundedInterference reports whether settles go through the spatial index
// (per-flow past intervals) instead of the historical linear scan over
// every live and recent transmission.
func (s *Sim) boundedInterference() bool { return s.InterferenceRangeM > 0 }

// pushEvent adds one event to the pending min-heap.
func (s *Sim) pushEvent(e event) {
	h := append(s.events, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.events = h
}

// popEvent removes and returns the earliest pending event.
func (s *Sim) popEvent() event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the tx pointer
	h = h[:n]
	i := 0
	for {
		m, l, r := i, 2*i+1, 2*i+2
		if l < n && eventLess(h[l], h[m]) {
			m = l
		}
		if r < n && eventLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	s.events = h
	return top
}

// newTx takes a transmission from the free pool, or allocates one.
func (s *Sim) newTx() *tx {
	if n := len(s.txFree); n > 0 {
		r := s.txFree[n-1]
		s.txFree = s.txFree[:n-1]
		*r = tx{}
		return r
	}
	return &tx{}
}

// Reindex rebuilds the spatial index from the flows' current Radio
// geometry, in registration order. Scenario code that moves flows mid-run
// (mobility epochs) swaps in updated Radio values from a timer callback
// and calls Reindex from that same callback, so every subsequent
// carrier-sense and interference query sees the new positions. The
// rebuild consumes no randomness and visits flows in registration order,
// so it is deterministic at any worker count. Interference pricing of
// frames still in the air reads each flow's Radio pointer at settle time;
// mobility code that wants already-airborne frames priced at their launch
// geometry should install a fresh *Radio value rather than mutate the old
// one in place (retired intervals keep the pointer they were sent under).
func (s *Sim) Reindex() {
	s.grid = nil
	s.indexed = 0
	s.unplaced = s.unplaced[:0]
	s.ensureIndex()
}

// ensureIndex brings the spatial index up to date with Flows: placed flows
// enter the grid under their registration index, unplaced flows join the
// everyone-contends list. Positions are static between Reindex calls.
func (s *Sim) ensureIndex() {
	for ; s.indexed < len(s.Flows); s.indexed++ {
		f := s.Flows[s.indexed]
		f.idx = int32(s.indexed)
		if f.Radio == nil {
			s.unplaced = append(s.unplaced, f.idx)
			continue
		}
		if s.CSRangeM > 0 {
			if s.grid == nil {
				s.grid = testbed.NewGrid(s.CSRangeM)
			}
			s.grid.Add(s.indexed, f.Radio.TxPos)
		}
	}
}

// nearbyContenders appends to out the indices of every flow that shares a
// carrier-sense neighborhood with f — including f itself — and returns the
// extended slice. Grid hits come first in ascending id order, then the
// unplaced flows in registration order, so iteration is deterministic.
func (s *Sim) nearbyContenders(f *Flow, out []int32) []int32 {
	if s.grid == nil || f.Radio == nil {
		for i := range s.Flows {
			out = append(out, int32(i))
		}
		return out
	}
	out = s.grid.Near(f.Radio.TxPos, s.CSRangeM, out)
	return append(out, s.unplaced...)
}

// blocked reports whether some in-range transmission currently occupies
// f's neighborhood. Uses the nested scratch buffer (nbufB) so callers may
// hold nbufA across the check.
func (s *Sim) blocked(f *Flow) bool {
	nb := s.nearbyContenders(f, s.nbufB[:0])
	hit := false
	for _, gi := range nb {
		g := s.Flows[gi]
		if g != f && g.active != nil {
			hit = true
			break
		}
	}
	s.nbufB = nb[:0]
	return hit
}

// enqueueAdmit schedules f for the admission pass at the top of the next
// Step.
func (s *Sim) enqueueAdmit(f *Flow) {
	if f.queued {
		return
	}
	f.queued = true
	s.admitQ = append(s.admitQ, f.idx)
}

// processAdmissions runs the admission pass over the queued flows in
// registration order — the deterministic-RNG contract: new head-of-line
// frames prepare and flows without a live counter draw one, exactly as the
// historical every-flow scan did for the flows it would have touched.
func (s *Sim) processAdmissions() {
	if len(s.admitQ) == 0 {
		return
	}
	slices.Sort(s.admitQ)
	for _, i := range s.admitQ {
		f := s.Flows[i]
		f.queued = false
		s.admit(f)
	}
	s.admitQ = s.admitQ[:0]
}

// admit gives one idle flow its fresh look: pull a new head-of-line frame
// (Prepare draw), draw a backoff counter if none is banked, and enter the
// countdown — immediately when the neighborhood is clear, otherwise frozen
// until an in-range occupancy ends.
func (s *Sim) admit(f *Flow) {
	if f.active != nil {
		return
	}
	if !f.inFlight {
		if f.HasTraffic == nil || !f.HasTraffic() {
			f.waiting = false
			return
		}
		f.inFlight = true
		f.attempt = 0
		f.frameAir = 0
		f.rateIdx = 0
		if f.Prepare != nil {
			f.rateIdx = f.Prepare(s.Rng)
		}
	}
	if !f.counterValid {
		f.counter = s.backoffSlots(f.attempt)
		f.counterValid = true
	}
	if s.blocked(f) {
		f.waiting = false
		return
	}
	if !f.waiting {
		f.waiting = true
		f.idleSince = s.now
		s.pushStart(f)
	}
}

// pushStart schedules f's countdown expiry as a start event under a fresh
// generation (superseding any stale event still in the heap).
func (s *Sim) pushStart(f *Flow) {
	f.startGen++
	_, st := s.startTime(f)
	s.pushEvent(event{t: st, kind: evStart, seq: int64(f.idx), gen: f.startGen})
}

// staleStart reports whether a start event no longer speaks for its flow:
// the countdown was frozen, restarted, or consumed since the event was
// pushed.
func (s *Sim) staleStart(e event) bool {
	f := s.Flows[e.seq]
	return e.gen != f.startGen || !f.waiting || f.active != nil || !f.inFlight
}

// purgeStale discards superseded start events from the top of the heap so
// the earliest remaining event is real — the clock must never advance to a
// time where nothing happens.
func (s *Sim) purgeStale() {
	for len(s.events) > 0 {
		e := s.events[0]
		if e.kind != evStart || !s.staleStart(e) {
			return
		}
		s.popEvent()
	}
}

// Step advances the simulator to its next event — a frame starting,
// a frame's airtime ending (delivery settles), or a transmission's
// occupancy ending (its neighborhood frees up) — and processes every event
// scheduled at that instant. It returns false — without consuming
// randomness or advancing the clock — once no flow has traffic and nothing
// is on the air.
func (s *Sim) Step() bool {
	s.ensureIndex()

	// Admission pass: flows touched by the previous event round (new
	// frames, retry counters) take their RNG draws in registration order
	// while the clock still reads the previous event time.
	s.processAdmissions()
	s.purgeStale()

	if len(s.events) == 0 {
		// Quiescent: nothing on the air, no countdown pending. Re-examine
		// every flow (registration order) so traffic that appeared without
		// a Wake — the historical scheduler rescanned every Step — still
		// gets picked up, then report drained if nothing woke.
		for _, f := range s.Flows {
			if f.active == nil && !f.queued {
				s.admit(f)
			}
		}
		s.purgeStale()
		if len(s.events) == 0 {
			return false
		}
	}

	// Drain every event scheduled at the earliest pending instant, in
	// phase order: deliveries settle (creation order), occupancies retire
	// (creation order), countdown expiries collect (registration order).
	// An unacked delivery settles into an occupancy end at the same
	// instant; the heap surfaces it within this same drain.
	t := s.events[0].t
	s.now = t
	startFlows := s.startFlows[:0]
	for len(s.events) > 0 && s.events[0].t == t {
		e := s.popEvent()
		switch e.kind {
		case evAirEnd:
			s.resolve(e.r)
		case evOccEnd:
			s.retire(e.r)
		case evStart:
			if !s.staleStart(e) {
				startFlows = append(startFlows, s.Flows[e.seq])
			}
		default: // evTimer
			e.fn()
		}
	}
	s.startFlows = startFlows

	// Starts: every countdown that expired at this instant puts its frame
	// on the air. The flows were collected first so that one starter's
	// carrier-sense freeze cannot knock out another flow starting at the
	// same instant — simultaneous in-range starts are a collision, and
	// they form collision groups below.
	if len(startFlows) > 0 {
		starters := s.starters[:0]
		for _, f := range startFlows {
			wait, st := s.startTime(f)
			r := s.newTx()
			r.f, r.seq = f, s.txSeq
			s.txSeq++
			r.base, r.wait, r.start, r.ft = f.idleSince, wait, st, f.FrameTime(f.rateIdx)
			r.cost = r.wait + r.ft
			r.airEnd = r.base + r.cost
			r.end = r.airEnd // provisional; finalized when the delivery settles
			f.active = r
			f.waiting = false
			f.counterValid = false // the counter is consumed by this attempt
			f.startGen++
			if r.ft > s.maxFT {
				s.maxFT = r.ft
			}
			if !s.boundedInterference() {
				s.active = append(s.active, r)
			}
			s.pushEvent(event{t: r.airEnd, kind: evAirEnd, seq: r.seq, r: r})
			starters = append(starters, r)
		}
		s.starters = starters

		// Carrier-sense freeze: every waiting flow in range of a starter
		// banks the idle slots that elapsed before the frame hit the air
		// and freezes (DCF frozen backoff), resuming — not redrawing —
		// when its neighborhood frees up.
		for _, r := range starters {
			nb := s.nearbyContenders(r.f, s.nbufA[:0])
			for _, gi := range nb {
				g := s.Flows[gi]
				if g.active != nil || !g.inFlight || !g.waiting {
					continue
				}
				g.counter -= elapsedSlots(t-g.idleSince-s.Mac.DIFS(), s.Mac.SlotTime, g.counter)
				g.waiting = false
				g.startGen++ // supersede the pending start event
			}
			s.nbufA = nb[:0]
		}

		s.countGroups(starters)
	}
	return true
}

// retire ends one transmission's occupancy: the flow leaves the air, the
// finished interval is remembered for interference pricing, the flow is
// queued for re-admission, and frozen in-range neighbors whose
// neighborhoods are now clear resume their countdowns.
func (s *Sim) retire(r *tx) {
	f := r.f
	f.active = nil
	f.waiting = false
	if s.boundedInterference() {
		// Keep the interval on the flow itself, pruned against the oldest
		// instant a still-unresolved frame could have started (an
		// unresolved frame's airtime ends after now and spans at most the
		// longest frame seen).
		cutoff := s.now - s.maxFT
		kept := f.past[:0]
		for _, p := range f.past {
			if p.airEnd > cutoff {
				kept = append(kept, p)
			}
		}
		f.past = append(kept, pastTx{radio: f.Radio, start: r.start, airEnd: r.airEnd})
	} else {
		s.past = append(s.past, pastTx{radio: f.Radio, start: r.start, airEnd: r.airEnd})
		s.removeActive(r)
		s.prunePast()
	}
	s.enqueueAdmit(f)
	s.txFree = append(s.txFree, r)

	// Resume: frozen in-range flows whose neighborhoods are now completely
	// clear restart their countdowns from this instant. Each checks its
	// own neighborhood — it may be in range of another transmission that
	// is still up. Flows queued for re-admission (their own attempt just
	// ended) are skipped: they have no banked counter yet and enter the
	// countdown through admit at the top of the next step, with the clock
	// still reading this instant — exactly like the historical scheduler's
	// admission-then-carrier-sense pass.
	nb := s.nearbyContenders(f, s.nbufA[:0])
	for _, gi := range nb {
		g := s.Flows[gi]
		if g == f || !g.inFlight || g.active != nil || g.waiting || g.queued || !g.counterValid {
			continue
		}
		if s.blocked(g) {
			continue
		}
		g.waiting = true
		g.idleSince = s.now
		s.pushStart(g)
	}
	s.nbufA = nb[:0]
}

// removeActive takes one retired transmission out of the live list,
// preserving creation order (the settle scan's deterministic order).
func (s *Sim) removeActive(r *tx) {
	for i, g := range s.active {
		if g == r {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

// elapsedSlots converts idle time after DIFS into whole backoff slots,
// clamped to [0, counter]. The epsilon absorbs float error from
// reconstructing slot counts out of absolute clock times.
func elapsedSlots(idle, slot float64, counter int) int {
	k := int(idle/slot + 1e-6)
	if k < 0 {
		return 0
	}
	if k > counter {
		return counter
	}
	return k
}

// countGroups tallies medium acquisitions and collisions among the
// transmissions that started simultaneously: connected components of the
// carrier-sense relation. Component counts are independent of walk order,
// so the spatial index only changes which pairs are examined.
func (s *Sim) countGroups(starters []*tx) {
	if len(starters) == 0 {
		return
	}
	if len(starters) == 1 { // the common case: one flow acquired its neighborhood
		s.Acquisitions++
		return
	}
	grouped := s.grouped[:0]
	for range starters {
		grouped = append(grouped, false)
	}
	group := s.group[:0]
	if s.grid != nil {
		// Component walk over grid neighborhoods: each starter's flow is
		// stamped with its slot, and neighbors resolve through the index
		// instead of a pairwise scan over every starter.
		s.markGen++
		for i, r := range starters {
			r.f.mark = s.markGen
			r.f.starterIdx = int32(i)
		}
		for i := range starters {
			if grouped[i] {
				continue
			}
			group = append(group[:0], i)
			grouped[i] = true
			for k := 0; k < len(group); k++ {
				nb := s.nearbyContenders(starters[group[k]].f, s.nbufA[:0])
				for _, gi := range nb {
					g := s.Flows[gi]
					if g.mark != s.markGen || grouped[g.starterIdx] {
						continue
					}
					grouped[g.starterIdx] = true
					group = append(group, int(g.starterIdx))
				}
				s.nbufA = nb[:0]
			}
			s.Acquisitions++
			if len(group) > 1 {
				s.CollisionRounds++
			}
		}
		s.grouped, s.group = grouped, group
		return
	}
	for i := range starters {
		if grouped[i] {
			continue
		}
		group = append(group[:0], i)
		grouped[i] = true
		for k := 0; k < len(group); k++ {
			for j := range starters {
				if !grouped[j] && s.contends(starters[j].f, starters[group[k]].f) {
					grouped[j] = true
					group = append(group, j)
				}
			}
		}
		s.Acquisitions++
		if len(group) > 1 {
			s.CollisionRounds++
		}
	}
	s.grouped, s.group = grouped, group
}

// resolve settles one frame at the end of its airtime against every
// transmission that overlapped it in the air: in-range overlaps are
// colliders (they necessarily started with it), out-of-range overlaps are
// hidden terminals at the receiver. It finalizes the transmission's
// occupancy (ACK exchange or ACK timeout) and bills the flow its attempt
// cost.
func (s *Sim) resolve(r *tx) {
	f := r.f
	f.Attempts++

	// Gather the transmissions whose frames overlapped r's. Each
	// contributes its median interference power over the clipped overlap
	// interval. The decode decision below is invariant to accumulation
	// order (collider counts and interval maxima commute), so the bounded
	// mode is free to gather through the index.
	interf := s.interf[:0]
	nColliders := 0
	geometryKnown := true
	covered := r.start // air interval already billed busy by resolved colliders
	scan := func(radio *Radio, start, airEnd float64, resolved bool) {
		if airEnd <= r.start || start >= r.airEnd {
			return
		}
		if s.inRange(f, radio) {
			nColliders++
			if radio == nil {
				geometryKnown = false
			}
			if resolved && airEnd <= r.airEnd && airEnd > covered {
				covered = airEnd
			}
		}
		if radio == nil || !s.interferenceModeled(f) {
			return
		}
		g := interferer{from: start, to: airEnd}
		if g.from < r.start {
			g.from = r.start
		}
		if g.to > r.airEnd {
			g.to = r.airEnd
		}
		d := testbed.Dist(radio.TxPos, f.Radio.RxPos)
		g.power = math.Pow(10, s.Env.MeanSNRdB(d)/10)
		interf = append(interf, g)
	}
	if s.boundedInterference() {
		s.scanBounded(r, scan)
	} else {
		for _, g := range s.active {
			if g != r {
				scan(g.f.Radio, g.start, g.airEnd, g.resolved)
			}
		}
		for _, p := range s.past {
			scan(p.radio, p.start, p.airEnd, true)
		}
	}
	s.interf = interf

	// Decode decision, delegated to the interference model. A collision
	// destroys the frame unless the model rules it captured (its effective
	// SINR clears the model's decode threshold); a clean-neighborhood
	// frame interfered by hidden terminals is corrupted when the model
	// says so, and otherwise carries the model's degradation into its
	// delivery draw.
	survives := true
	ix := NoInterference()
	settle := func(collision bool) bool {
		sinr := s.effectiveSINRdB(f, interf)
		v := s.model().Settle(Reception{
			SINRdB:       sinr,
			ServingSNRdB: f.Radio.SNRdB,
			RateIdx:      f.rateIdx,
			Collision:    collision,
		})
		for len(f.RateCorruption) <= f.rateIdx {
			f.RateCorruption = append(f.RateCorruption, RateCorruption{})
		}
		f.RateCorruption[f.rateIdx].add(v)
		ix = Interference{SNRScale: v.SNRScale, SINRdB: sinr}
		return v.Survives
	}
	switch {
	case nColliders > 0:
		survives = s.interferenceModeled(f) && geometryKnown && settle(true)
		if survives {
			f.Captures++
		} else {
			f.Collisions++
		}
	case len(interf) > 0:
		survives = settle(false)
		if !survives {
			f.HiddenLosses++
			s.HiddenCorruptions++
		}
	}

	ok := false
	if survives {
		ok = f.Deliver(s.Rng, f.rateIdx, ix)
	}

	// Busy accounting: colliding frames overlap in the air, so bill only
	// the slice of this frame not already billed by an earlier-resolved
	// collider; a clean frame bills its full airtime. Hidden overlap is in
	// a different neighborhood and counts separately (BusyTime sums over
	// neighborhoods).
	busy := r.ft
	if nColliders > 0 {
		busy = r.airEnd - covered
		if busy < 0 {
			busy = 0
		}
	}
	if f.Acked {
		if ok {
			ack := s.Mac.SIFS + s.Mac.AckDuration()
			r.cost += ack
			busy += ack
		} else {
			r.cost += s.Mac.AckTimeout()
		}
	}
	r.end = r.base + r.cost
	r.resolved = true
	s.pushEvent(event{t: r.end, kind: evOccEnd, seq: r.seq, r: r})
	f.frameAir += r.cost
	f.AirTime += r.cost
	s.busy += busy
	if ok {
		s.finishFrame(f, true)
	} else {
		s.failAttempt(f)
	}
}

// scanBounded feeds the settle scan from the spatial index: candidate
// flows come from two neighborhood queries — carrier-sense range around
// the transmitter (every possible collider) and interference range around
// the receiver (every interferer loud enough to price) — plus the
// unplaced flows, each contributing its live transmission and its
// remembered past intervals.
func (s *Sim) scanBounded(r *tx, scan func(radio *Radio, start, airEnd float64, resolved bool)) {
	f := r.f
	visit := func(g *Flow) {
		if g.mark == s.markGen {
			return
		}
		g.mark = s.markGen
		if a := g.active; a != nil && a != r {
			scan(g.Radio, a.start, a.airEnd, a.resolved)
		}
		for _, p := range g.past {
			scan(p.radio, p.start, p.airEnd, true)
		}
	}
	s.markGen++
	if s.grid == nil || f.Radio == nil {
		for _, g := range s.Flows {
			visit(g)
		}
		return
	}
	cand := s.nbufA[:0]
	cand = s.grid.Near(f.Radio.TxPos, s.CSRangeM, cand)
	cand = s.grid.Near(f.Radio.RxPos, s.InterferenceRangeM, cand)
	cand = append(cand, s.unplaced...)
	for _, gi := range cand {
		visit(s.Flows[gi])
	}
	s.nbufA = cand[:0]
}

// prunePast drops finished transmissions that can no longer overlap any
// unresolved frame (future frames start at or after now, and past air
// intervals end at or before it).
func (s *Sim) prunePast() {
	cutoff := math.Inf(1)
	for _, r := range s.active {
		if !r.resolved && r.start < cutoff {
			cutoff = r.start
		}
	}
	kept := s.past[:0]
	for _, p := range s.past {
		if p.airEnd > cutoff {
			kept = append(kept, p)
		}
	}
	s.past = kept
}

// failAttempt advances a flow past a failed attempt: unacked flows complete
// their single attempt; acked flows retry until the MAC retry limit.
func (s *Sim) failAttempt(f *Flow) {
	if !f.Acked {
		s.finishFrame(f, false)
		return
	}
	f.attempt++
	if f.attempt >= s.Mac.RetryLimit {
		s.finishFrame(f, false)
	}
}

// finishFrame retires the head-of-line frame and notifies the flow.
func (s *Sim) finishFrame(f *Flow, delivered bool) {
	if delivered {
		f.Delivered++
	} else {
		f.Dropped++
	}
	f.inFlight = false
	if f.Done != nil {
		f.Done(f.rateIdx, delivered, f.frameAir)
	}
}

// Run steps the simulator until every flow is drained. The MaxSteps guard
// exists to catch scenario bugs (a flow whose backlog never drains); when
// it trips, Run panics rather than let an experiment publish tables from a
// silently truncated run. One frame attempt spans up to three events
// (start, frame-air end, occupancy end), so the default is sized well
// above any real workload.
func (s *Sim) Run() {
	max := s.MaxSteps
	if max == 0 {
		max = 1 << 26
	}
	for i := 0; i < max; i++ {
		if !s.Step() {
			return
		}
	}
	panic(fmt.Sprintf("netsim: %d flows still backlogged after %d scheduler events — a flow's backlog never drains",
		len(s.Flows), max))
}

// RunUntil steps the simulator until the virtual clock reaches the
// deadline (in seconds) or every flow drains, whichever comes first — the
// fixed-time-window saturation mode: flows may offer unbounded backlogs
// and the run measures what the medium carried in the window, so no single
// starved flow gates the elapsed time. The clock overshoots the deadline
// by at most the final event's span; callers measure throughput over the
// actual Now().
func (s *Sim) RunUntil(deadline float64) {
	max := s.MaxSteps
	if max == 0 {
		max = 1 << 26
	}
	for i := 0; i < max; i++ {
		if s.now >= deadline || !s.Step() {
			return
		}
	}
	panic(fmt.Sprintf("netsim: clock at %.6fs of %.6fs after %d scheduler events — events are not advancing the clock",
		s.now, deadline, max))
}
