// Package netsim is a packet-level, virtual-time network simulator for the
// throughput experiments: traffic flows contend for the wireless medium
// under DCF, with per-flow ARQ, rate control hooks, joint-transmission
// sender groups, and — when flows carry positions — spatial reuse across
// several carrier-sense neighborhoods.
//
// The medium model is deliberately packet-level, not sample-level: the PHY
// packages settle what a frame costs (airtimes from the modem's symbol
// accounting via internal/mac) and how likely it is to be received
// (per-subcarrier SNR draws through internal/permodel); netsim owns the
// clock and the contention between transmissions. One Step is one
// contention round:
//
//  1. Every backlogged flow holds a DCF backoff counter in whole slots,
//     drawn from its retry-dependent contention window when it enters
//     contention or after its own transmission attempt (in flow order, so
//     RNG consumption — and therefore the whole run — is deterministic for
//     a given seed). Counters are frozen, as in real DCF: a flow that loses
//     a round keeps its counter, minus the idle slots that elapsed before
//     its neighborhood went busy, instead of redrawing.
//  2. Flows transmit or defer in (counter, registration) order: a flow
//     defers iff a flow already transmitting within its carrier-sense range
//     holds a strictly smaller counter. Flows out of range of every
//     transmitter proceed concurrently — spatial reuse. In-range flows with
//     equal counters collide.
//  3. A collision normally destroys every frame in the group, but when a
//     capture threshold is configured a colliding frame whose SINR at its
//     own receiver clears the threshold is received as if it were alone
//     (physical-layer capture; interference power comes from the testbed's
//     median path loss, so no randomness is consumed).
//  4. The virtual clock advances by the longest concurrent transmission:
//     DIFS + backoff + frame airtime, plus the ACK exchange on success or
//     the ACK timeout on failure.
//
// Carrier sense is pairwise between transmitter positions (Sim.CSRangeM);
// with the zero configuration — no range, or flows without Radio info —
// every flow contends with every other and the simulator degenerates to the
// single collision domain of the original model. Interference between
// concurrent out-of-range transmissions (hidden terminals) is not modeled:
// frames fail only by collision within a neighborhood or by their own
// delivery draw.
//
// Retries re-enter contention (as in real DCF) rather than holding the
// medium. Scenario packages (internal/lasthop, internal/exor) define flows
// over this core instead of hand-rolling DIFS/backoff/ACK arithmetic.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mac"
	"repro/internal/testbed"
)

// Radio is a flow's geometry, used for spatial reuse and capture: where its
// transmitter and its receiver sit on the floor, and the mean SNR of the
// serving link at that receiver. Flows without Radio info contend with
// every other flow and never capture.
type Radio struct {
	TxPos testbed.Point
	RxPos testbed.Point
	// SNRdB is the serving link's average SNR at RxPos (shadowing included,
	// fading excluded) — the signal term of the capture SINR.
	SNRdB float64
}

// Flow is one contending traffic stream. The simulator drives it frame by
// frame through the hooks; all hooks see the simulator's RNG so runs stay
// deterministic for a given seed.
type Flow struct {
	Name string
	// Acked selects unicast semantics: successful frames pay SIFS + ACK,
	// failures pay the ACK timeout and retry up to the MAC retry limit.
	// Unacknowledged flows (broadcast-style, e.g. ExOR forwarding) get
	// exactly one attempt per frame.
	Acked bool
	// Radio places the flow for spatial reuse; nil means the flow is heard
	// everywhere (single-collision-domain behavior).
	Radio *Radio

	// HasTraffic reports whether the flow wants the medium. Nil means the
	// flow never contends.
	HasTraffic func() bool
	// Prepare is called once per head-of-line frame (not per attempt) and
	// returns the rate index to transmit at — from SampleRate, a fixed
	// rate, or whatever the scenario chooses. Nil means rate index 0.
	Prepare func(rng *rand.Rand) int
	// FrameTime returns the frame airtime in seconds at rate index r.
	FrameTime func(r int) float64
	// Deliver draws one reception attempt at rate index r.
	Deliver func(rng *rand.Rand, r int) bool
	// Done is called when the head-of-line frame completes — delivered, or
	// dropped after the retry limit (acked flows) or its single attempt
	// (unacked flows) — with the medium time the flow's own attempts
	// consumed.
	Done func(r int, delivered bool, airTime float64)

	// Accounting, maintained by the simulator.
	Delivered  int     // frames delivered
	Dropped    int     // frames dropped (retry limit, or unacked failure)
	Attempts   int     // transmission attempts, including collisions
	Collisions int     // attempts lost to collisions
	Captures   int     // colliding attempts that survived by capture
	AirTime    float64 // medium time consumed by this flow's own attempts

	// Head-of-line frame state.
	inFlight bool
	rateIdx  int
	attempt  int
	frameAir float64

	// Contention state: the frozen DCF backoff counter, in whole slots.
	// counterValid distinguishes a counter of zero from "needs a draw".
	counter      int
	counterValid bool
	txRound      bool // transmitting in the current round (scratch)
	grouped      bool // already assigned to a transmit group (scratch)
}

// Sim is a shared medium with a virtual clock. With the zero spatial
// configuration it is one collision domain; with CSRangeM set and flows
// carrying Radio info, it is a floor of overlapping carrier-sense
// neighborhoods that reuse the medium concurrently.
type Sim struct {
	Mac   mac.Params
	Rng   *rand.Rand
	Flows []*Flow

	// CSRangeM is the carrier-sense range in meters: two flows contend only
	// when their transmitters are within it. <= 0 means every flow contends
	// with every other (one collision domain). Flows without Radio info
	// always contend with everyone.
	CSRangeM float64
	// CaptureDB enables physical-layer capture: a colliding frame whose
	// SINR at its own receiver is at least this many dB is received as if
	// it were alone. 0 disables capture (every collision destroys all
	// frames). Requires Env and per-flow Radio info.
	CaptureDB float64
	// Env supplies the median path loss used to price interference for the
	// capture model (deterministic — capture consumes no randomness).
	Env *testbed.Testbed

	// MaxSteps bounds Run as a safety net against scenarios whose flows
	// never drain; 0 means a generous default.
	MaxSteps int

	now  float64 // virtual time, seconds
	busy float64 // time the medium carried frames (airtime, ACKs)

	Acquisitions    int // contention rounds that found traffic
	CollisionRounds int // transmit groups that collided (>1 simultaneous frame)

	// Scratch buffers reused across Steps (the hot loop).
	contenders []*Flow
	order      []*Flow
	txs        []*Flow
	group      []*Flow
}

// New returns a simulator over the given MAC timing, drawing all randomness
// from rng.
func New(m mac.Params, rng *rand.Rand) *Sim {
	return &Sim{Mac: m, Rng: rng}
}

// AddFlow registers a flow and returns it (for accounting reads after Run).
func (s *Sim) AddFlow(f *Flow) *Flow {
	s.Flows = append(s.Flows, f)
	return f
}

// Now returns the virtual time elapsed so far, in seconds.
func (s *Sim) Now() float64 { return s.now }

// BusyTime returns the virtual time the medium spent carrying frames and
// acknowledgments, summed over concurrent neighborhoods — under spatial
// reuse it may exceed Now (utilization above 1 is the reuse win).
func (s *Sim) BusyTime() float64 { return s.busy }

// backoffSlots draws a backoff in whole slots for the given retry attempt.
func (s *Sim) backoffSlots(attempt int) int {
	return s.Rng.Intn(s.Mac.CW(attempt) + 1)
}

// contends reports whether two flows share a carrier-sense neighborhood.
func (s *Sim) contends(f, g *Flow) bool {
	if s.CSRangeM <= 0 || f.Radio == nil || g.Radio == nil {
		return true
	}
	return testbed.Dist(f.Radio.TxPos, g.Radio.TxPos) <= s.CSRangeM
}

// captures reports whether f's frame survives a collision with the rest of
// its transmit group: its SINR — serving-link SNR over the summed median
// interference of the other colliders at f's receiver, plus noise — clears
// the capture threshold. Deterministic: no RNG is consumed.
func (s *Sim) captures(f *Flow, group []*Flow) bool {
	if s.CaptureDB <= 0 || s.Env == nil || f.Radio == nil {
		return false
	}
	interf := 0.0
	for _, g := range group {
		if g == f {
			continue
		}
		if g.Radio == nil {
			return false // unknown interferer geometry: no capture
		}
		d := testbed.Dist(g.Radio.TxPos, f.Radio.RxPos)
		interf += math.Pow(10, s.Env.MeanSNRdB(d)/10)
	}
	sinr := math.Pow(10, f.Radio.SNRdB/10) / (1 + interf)
	return 10*math.Log10(sinr) >= s.CaptureDB
}

// Step performs one contention round. It returns false — without consuming
// randomness or advancing the clock — once no flow has traffic.
func (s *Sim) Step() bool {
	// Contenders, in flow order: deterministic RNG consumption.
	contenders := s.contenders[:0]
	for _, f := range s.Flows {
		if f.inFlight || (f.HasTraffic != nil && f.HasTraffic()) {
			contenders = append(contenders, f)
		}
	}
	s.contenders = contenders
	if len(contenders) == 0 {
		return false
	}

	// New head-of-line frames prepare, and flows without a live counter
	// draw one — both in flow order.
	for _, f := range contenders {
		if !f.inFlight {
			f.inFlight = true
			f.attempt = 0
			f.frameAir = 0
			f.rateIdx = 0
			if f.Prepare != nil {
				f.rateIdx = f.Prepare(s.Rng)
			}
		}
		if !f.counterValid {
			f.counter = s.backoffSlots(f.attempt)
			f.counterValid = true
		}
	}
	s.Acquisitions++

	// Transmit/defer decision in (counter, registration) order: a flow
	// defers iff some already-transmitting flow within carrier-sense range
	// holds a strictly smaller counter; in-range equal counters collide;
	// out-of-range flows proceed concurrently.
	order := append(s.order[:0], contenders...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].counter < order[j].counter })
	s.order = order
	txs := s.txs[:0]
	for _, f := range order {
		blocked := false
		for _, g := range txs {
			if g.counter < f.counter && s.contends(f, g) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		f.txRound = true
		txs = append(txs, f)
	}
	s.txs = txs

	// Settle each transmit group — the connected components of the
	// "contends and equal counter" relation over the transmitters, walked
	// in registration order so delivery draws stay deterministic. The round
	// lasts as long as its longest group.
	var elapsed float64
	for _, f := range contenders { // registration order
		if !f.txRound || f.grouped {
			continue
		}
		group := append(s.group[:0], f)
		f.grouped = true
		for i := 0; i < len(group); i++ {
			for _, g := range contenders {
				if g.txRound && !g.grouped && g.counter == group[i].counter && s.contends(g, group[i]) {
					g.grouped = true
					group = append(group, g)
				}
			}
		}
		s.group = group
		if t := s.transmitGroup(group); t > elapsed {
			elapsed = t
		}
	}

	// Losing contenders count down the idle slots their neighborhood saw
	// before going busy, then freeze (DCF frozen backoff). Transmitters
	// redraw next round with their updated retry window.
	for _, f := range contenders {
		if f.txRound {
			continue
		}
		min := -1
		for _, g := range txs {
			if s.contends(f, g) && (min < 0 || g.counter < min) {
				min = g.counter
			}
		}
		if min > 0 {
			f.counter -= min
		}
	}
	for _, f := range txs {
		f.txRound = false
		f.grouped = false
		f.counterValid = false
	}
	s.now += elapsed
	return true
}

// transmitGroup settles one simultaneous transmission: a lone winner
// delivers normally; a collision destroys every frame except those that
// capture. It returns the group's elapsed time (its neighborhood's share of
// the round) and charges each member its own attempt cost.
func (s *Sim) transmitGroup(group []*Flow) float64 {
	wait := s.Mac.DIFS() + float64(group[0].counter)*s.Mac.SlotTime

	if len(group) == 1 {
		f := group[0]
		ft := f.FrameTime(f.rateIdx)
		ok := f.Deliver(s.Rng, f.rateIdx)
		f.Attempts++
		cost := wait + ft
		busy := ft
		if f.Acked {
			if ok {
				ack := s.Mac.SIFS + s.Mac.AckDuration()
				cost += ack
				busy += ack
			} else {
				cost += s.Mac.AckTimeout()
			}
		}
		f.frameAir += cost
		f.AirTime += cost
		s.busy += busy
		if ok {
			s.finishFrame(f, true)
		} else {
			s.failAttempt(f)
		}
		return cost
	}

	// Collision. The medium is occupied for the longest colliding frame;
	// each collider is billed its own frame (they overlap in real time, but
	// per-flow attribution is what rate control sees).
	s.CollisionRounds++
	var maxFT float64
	for _, f := range group {
		if ft := f.FrameTime(f.rateIdx); ft > maxFT {
			maxFT = ft
		}
	}
	anyAcked, ackedDelivery := false, false
	for _, f := range group {
		ft := f.FrameTime(f.rateIdx)
		f.Attempts++
		cost := wait + ft
		if s.captures(f, group) {
			// Physical-layer capture: the frame is decoded against its own
			// fading draw as if it were alone.
			f.Captures++
			ok := f.Deliver(s.Rng, f.rateIdx)
			if f.Acked {
				anyAcked = true
				if ok {
					cost += s.Mac.SIFS + s.Mac.AckDuration()
					ackedDelivery = true
				} else {
					cost += s.Mac.AckTimeout()
				}
			}
			f.frameAir += cost
			f.AirTime += cost
			if ok {
				s.finishFrame(f, true)
			} else {
				s.failAttempt(f)
			}
			continue
		}
		f.Collisions++
		if f.Acked {
			anyAcked = true
			cost += s.Mac.AckTimeout()
		}
		f.frameAir += cost
		f.AirTime += cost
		s.failAttempt(f)
	}
	elapsed := wait + maxFT
	busy := maxFT
	switch {
	case ackedDelivery:
		ack := s.Mac.SIFS + s.Mac.AckDuration()
		elapsed += ack
		busy += ack
	case anyAcked:
		elapsed += s.Mac.AckTimeout()
	}
	s.busy += busy
	return elapsed
}

// failAttempt advances a flow past a failed attempt: unacked flows complete
// their single attempt; acked flows retry until the MAC retry limit.
func (s *Sim) failAttempt(f *Flow) {
	if !f.Acked {
		s.finishFrame(f, false)
		return
	}
	f.attempt++
	if f.attempt >= s.Mac.RetryLimit {
		s.finishFrame(f, false)
	}
}

// finishFrame retires the head-of-line frame and notifies the flow.
func (s *Sim) finishFrame(f *Flow, delivered bool) {
	if delivered {
		f.Delivered++
	} else {
		f.Dropped++
	}
	f.inFlight = false
	if f.Done != nil {
		f.Done(f.rateIdx, delivered, f.frameAir)
	}
}

// Run steps the simulator until every flow is drained. The MaxSteps guard
// exists to catch scenario bugs (a flow whose backlog never drains); when
// it trips, Run panics rather than let an experiment publish tables from a
// silently truncated run.
func (s *Sim) Run() {
	max := s.MaxSteps
	if max == 0 {
		max = 1 << 24
	}
	for i := 0; i < max; i++ {
		if !s.Step() {
			return
		}
	}
	panic(fmt.Sprintf("netsim: %d flows still backlogged after %d contention rounds — a flow's backlog never drains",
		len(s.Flows), max))
}
