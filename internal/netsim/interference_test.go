package netsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/testbed"
)

// The tests in this file pin the pluggable interference layer's contract:
// per-rate decode thresholds rise monotonically with rate, the rate-aware
// model degrades surviving draws where the legacy gate never does, and a
// Sim without an explicit Model reproduces the binary CaptureDB gate
// exactly.

func TestDecodeThresholdMonotoneAcrossRates(t *testing.T) {
	// StandardRates is ordered slowest to fastest; a faster rate needs at
	// least as much SNR to decode, so the derived thresholds must be
	// non-decreasing — and the spread must be substantial (BPSK 1/2 to
	// 64-QAM 3/4 spans well over 10 dB on any reasonable PER curve).
	cfg := modem.Profile80211()
	rates := modem.StandardRates()
	m := NewRateAware(cfg, rates, 1460)
	if len(m.ThresholdsDB) != len(rates) {
		t.Fatalf("%d thresholds for %d rates", len(m.ThresholdsDB), len(rates))
	}
	for i := 1; i < len(m.ThresholdsDB); i++ {
		if m.ThresholdsDB[i] < m.ThresholdsDB[i-1] {
			t.Fatalf("threshold[%d]=%.2f dB below threshold[%d]=%.2f dB — faster rate decoding at less SNR",
				i, m.ThresholdsDB[i], i-1, m.ThresholdsDB[i-1])
		}
	}
	if spread := m.ThresholdsDB[len(rates)-1] - m.ThresholdsDB[0]; spread < 10 {
		t.Fatalf("threshold spread %.2f dB between slowest and fastest rate, want > 10", spread)
	}
}

func TestLegacyThresholdNeverDegrades(t *testing.T) {
	// The legacy gate is binary in the SINR and blind to the rate: above
	// the threshold the draw runs clean (scale 1), below it the frame dies
	// — at every rate index.
	m := LegacyThreshold{CaptureDB: 10}
	for _, rate := range []int{0, 3, 7} {
		up := m.Settle(Reception{SINRdB: 10.5, ServingSNRdB: 25, RateIdx: rate})
		if !up.Survives || up.SNRScale != 1 {
			t.Fatalf("rate %d at 10.5 dB: %+v, want clean survival", rate, up)
		}
		down := m.Settle(Reception{SINRdB: 9.5, ServingSNRdB: 25, RateIdx: rate})
		if down.Survives {
			t.Fatalf("rate %d at 9.5 dB survived a 10 dB gate", rate)
		}
		if down.MarginDB >= 0 || up.MarginDB <= 0 {
			t.Fatalf("margins must bracket the gate: up %.2f, down %.2f", up.MarginDB, down.MarginDB)
		}
	}
}

func TestRateAwareRobustSurvivesWhereFastDies(t *testing.T) {
	// One overlap, two rates: an effective SINR between the robust rate's
	// threshold and the fast rate's threshold keeps the robust frame alive
	// (degraded) and corrupts the fast one — the rate dependence the
	// binary gate cannot express.
	m := &RateAware{ThresholdsDB: []float64{4, 18}}
	rx := Reception{SINRdB: 11, ServingSNRdB: 25}

	rx.RateIdx = 0
	robust := m.Settle(rx)
	if !robust.Survives {
		t.Fatalf("robust rate corrupted at 11 dB over a 4 dB threshold: %+v", robust)
	}
	if robust.MarginDB != 7 {
		t.Fatalf("robust margin %.2f dB, want 7", robust.MarginDB)
	}

	rx.RateIdx = 1
	fast := m.Settle(rx)
	if fast.Survives {
		t.Fatalf("fast rate survived at 11 dB under an 18 dB threshold: %+v", fast)
	}
	if fast.MarginDB != -7 {
		t.Fatalf("fast margin %.2f dB, want -7", fast.MarginDB)
	}

	// Rate indices beyond the table clamp to the last (fastest) entry.
	rx.RateIdx = 9
	if clamped := m.Settle(rx); clamped.Survives {
		t.Fatalf("out-of-table rate must clamp to the fastest threshold: %+v", clamped)
	}
}

func TestRateAwareScalesDrawToEffectiveSNR(t *testing.T) {
	// A surviving frame's draw runs at the effective SNR: the scale is
	// exactly SINR/SNR in linear terms, and clamps at 1 when nothing
	// degraded the frame.
	m := &RateAware{ThresholdsDB: []float64{0}}
	v := m.Settle(Reception{SINRdB: 19, ServingSNRdB: 25, RateIdx: 0})
	if !v.Survives {
		t.Fatalf("19 dB frame died over a 0 dB threshold")
	}
	want := math.Pow(10, (19.0-25.0)/10)
	if math.Abs(v.SNRScale-want) > 1e-12 {
		t.Fatalf("SNRScale %.6f, want %.6f (6 dB degradation)", v.SNRScale, want)
	}
	clean := m.Settle(Reception{SINRdB: 25, ServingSNRdB: 25, RateIdx: 0})
	if clean.SNRScale != 1 {
		t.Fatalf("undegraded frame scaled by %.6f, want exactly 1", clean.SNRScale)
	}
}

// hiddenPair builds the classic hidden-terminal geometry on a fresh sim:
// two out-of-range senders, each delivering to a receiver next to the
// other sender, with lossless draws and `packets` frames per flow.
func hiddenPair(seed int64, packets int) (*Sim, *Flow, *Flow) {
	cfg := modem.Profile80211()
	s := New(mac.Default(cfg), rand.New(rand.NewSource(seed)))
	s.CSRangeM = 50
	s.Env = testbed.Default(cfg)
	a := s.AddFlow(placedFlow("a", packets, 1e-3, testbed.Point{X: 0, Y: 0}, testbed.Point{X: 58, Y: 0}, 25))
	b := s.AddFlow(placedFlow("b", packets, 1e-3, testbed.Point{X: 60, Y: 0}, testbed.Point{X: 2, Y: 0}, 25))
	return s, a, b
}

func TestNilModelMatchesExplicitLegacyThreshold(t *testing.T) {
	// The compatibility contract: a Sim with Model nil runs LegacyThreshold
	// over CaptureDB, so selecting the model explicitly must reproduce the
	// implicit run draw for draw.
	run := func(explicit bool) (float64, int, int, int, int) {
		s, a, b := hiddenPair(61, 30)
		if explicit {
			s.Model = LegacyThreshold{CaptureDB: 10}
		} else {
			s.CaptureDB = 10
		}
		s.Run()
		return s.Now(), a.Delivered, b.Delivered, a.HiddenLosses, b.HiddenLosses
	}
	in, ia, ib, iha, ihb := run(false)
	en, ea, eb, eha, ehb := run(true)
	if in != en || ia != ea || ib != eb || iha != eha || ihb != ehb {
		t.Fatalf("explicit LegacyThreshold diverged from implicit CaptureDB gate:\nimplicit now=%v a=%d b=%d hidden=%d/%d\nexplicit now=%v a=%d b=%d hidden=%d/%d",
			in, ia, ib, iha, ihb, en, ea, eb, eha, ehb)
	}
}

func TestRateAwareDegradationVersusLegacyGate(t *testing.T) {
	// Same hidden-terminal overlap, three prices. A legacy gate the SINR
	// clears: everything survives, nothing degraded. A rate-aware model
	// whose threshold the SINR clears: everything survives but every
	// overlapped draw is degraded (scale < 1) — the continuous pricing the
	// binary gate cannot express. A rate-aware threshold above the SINR:
	// every overlapped frame corrupts.
	run := func(model InterferenceModel) (*Sim, *Flow, *Flow) {
		s, a, b := hiddenPair(62, 30)
		s.Model = model
		s.Run()
		return s, a, b
	}

	_, la, lb := run(LegacyThreshold{CaptureDB: -100})
	for _, f := range []*Flow{la, lb} {
		for r, rc := range f.RateCorruption {
			if rc.Corrupted != 0 || rc.Degraded != 0 {
				t.Fatalf("legacy gate corrupted/degraded at rate %d: %+v", r, rc)
			}
		}
		if f.HiddenLosses != 0 {
			t.Fatalf("legacy -100 dB gate lost %d frames", f.HiddenLosses)
		}
	}

	_, sa, sb := run(&RateAware{ThresholdsDB: []float64{-100}})
	interfered := 0
	for _, f := range []*Flow{sa, sb} {
		if f.HiddenLosses != 0 {
			t.Fatalf("rate-aware below-SINR threshold still lost %d frames", f.HiddenLosses)
		}
		for _, rc := range f.RateCorruption {
			interfered += rc.Interfered
			if rc.Degraded != rc.Interfered {
				t.Fatalf("every overlapped survivor must be degraded: %+v", rc)
			}
			if rc.MarginDB <= 0 {
				t.Fatalf("surviving frames must carry positive summed margin: %+v", rc)
			}
		}
	}
	if interfered == 0 {
		t.Fatal("saturated hidden pair never overlapped — geometry broken")
	}

	_, ca, cb := run(&RateAware{ThresholdsDB: []float64{100}})
	if ca.HiddenLosses == 0 || cb.HiddenLosses == 0 {
		t.Fatalf("above-SINR threshold corrupted nothing: a=%d b=%d", ca.HiddenLosses, cb.HiddenLosses)
	}
	for _, f := range []*Flow{ca, cb} {
		for _, rc := range f.RateCorruption {
			if rc.Degraded != 0 {
				t.Fatalf("corrupted frames cannot also be degraded: %+v", rc)
			}
			if rc.Corrupted != rc.Interfered {
				t.Fatalf("every overlap must corrupt under a 100 dB threshold: %+v", rc)
			}
		}
	}
}

func TestRateCorruptionMergeRaggedSlices(t *testing.T) {
	dst := MergeRateCorruption(nil, []RateCorruption{{Interfered: 2, Corrupted: 1, MarginDB: -3}})
	dst = MergeRateCorruption(dst, []RateCorruption{{}, {Interfered: 4, Degraded: 4, MarginDB: 8}})
	if len(dst) != 2 {
		t.Fatalf("merged length %d, want 2", len(dst))
	}
	if dst[0].Interfered != 2 || dst[0].Corrupted != 1 || dst[0].MarginDB != -3 {
		t.Fatalf("rate 0 merged wrong: %+v", dst[0])
	}
	if dst[1].Interfered != 4 || dst[1].Degraded != 4 || dst[1].MarginDB != 8 {
		t.Fatalf("rate 1 merged wrong: %+v", dst[1])
	}
}

// The decode-threshold memo must be invisible except in speed: memoized
// tables equal a direct bisection, repeat lookups hit the cache, and the
// returned slice is a private copy a caller cannot poison the memo through.
func TestThresholdMemoMatchesDirectComputation(t *testing.T) {
	cfg := modem.Profile80211()
	rates := modem.StandardRates()
	h0, m0 := ThresholdCacheStats()

	a := NewRateAware(cfg, rates, 1459) // payload unlikely to be cached by earlier tests
	for i, r := range rates {
		if want := DecodeThresholdDB(cfg, r, 1459); a.ThresholdsDB[i] != want {
			t.Fatalf("rate %v: memoized threshold %.4f, direct %.4f", r, a.ThresholdsDB[i], want)
		}
	}

	b := NewRateAware(cfg, rates, 1459)
	h1, m1 := ThresholdCacheStats()
	if m1 <= m0 {
		t.Fatalf("first lookup should have been a miss (misses %d -> %d)", m0, m1)
	}
	if h1 <= h0 {
		t.Fatalf("second lookup should have been a hit (hits %d -> %d)", h0, h1)
	}

	// Mutating one table must not leak into the other (or the memo).
	b.ThresholdsDB[0] = -999
	c := NewRateAware(cfg, rates, 1459)
	if c.ThresholdsDB[0] == -999 || a.ThresholdsDB[0] == -999 {
		t.Fatal("memo handed out a shared slice; mutation poisoned the cache")
	}

	// A different payload is a different key, not a stale hit.
	d := NewRateAware(cfg, rates, 40)
	if d.ThresholdsDB[len(rates)-1] == a.ThresholdsDB[len(rates)-1] {
		t.Fatal("payload 40 and 1459 produced identical top-rate thresholds; key ignores payload?")
	}
}
