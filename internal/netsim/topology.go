package netsim

import (
	"math/rand"

	"repro/internal/modem"
	"repro/internal/permodel"
	"repro/internal/testbed"
)

// Topology is a set of placed nodes with static pairwise links, the shared
// substrate of every packet-level scenario. Reception draws flow through
// the empirical PER model, so scenario packages never touch permodel
// directly.
type Topology struct {
	Positions []testbed.Point
	Links     [][]testbed.Link // directed: Links[i][j] is i -> j
	Env       *testbed.Testbed
}

// NewTopology places the given points in an environment and draws every
// directed link once (static shadowing).
func NewTopology(rng *rand.Rand, env *testbed.Testbed, pts []testbed.Point) *Topology {
	n := len(pts)
	links := make([][]testbed.Link, n)
	for i := 0; i < n; i++ {
		links[i] = make([]testbed.Link, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			links[i][j] = env.NewLink(rng, pts[i], pts[j])
		}
	}
	// Make links reciprocal in average SNR (same shadowing both ways), as
	// physical channels are.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			links[j][i] = links[i][j]
		}
	}
	return &Topology{Positions: pts, Links: links, Env: env}
}

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.Positions) }

// Deliver draws one reception of a single-sender transmission i -> j.
func (t *Topology) Deliver(rng *rand.Rand, i, j int, rate modem.Rate, payload int) bool {
	return LinkDeliver(rng, t.Links[i][j], rate, payload)
}

// DeliverJoint draws one reception at node `to` of a joint transmission by
// the sender group: the receiver sees the summed per-subcarrier SNR of all
// senders (power + frequency diversity, §5).
func (t *Topology) DeliverJoint(rng *rand.Rand, senders []int, to int, rate modem.Rate, payload int) bool {
	if len(senders) == 1 {
		return t.Deliver(rng, senders[0], to, rate, payload)
	}
	links := make([]testbed.Link, len(senders))
	for i, u := range senders {
		links[i] = t.Links[u][to]
	}
	return JointLinkDeliver(rng, links, rate, payload)
}

// DeliveryProb estimates the delivery probability of link i->j at the given
// rate and payload by Monte-Carlo over fading draws — the "measurement
// phase" every scheme runs before routing.
func (t *Topology) DeliveryProb(rng *rand.Rand, i, j int, rate modem.Rate, payload, probes int) float64 {
	if i == j {
		return 1
	}
	ok := 0
	for p := 0; p < probes; p++ {
		if t.Deliver(rng, i, j, rate, payload) {
			ok++
		}
	}
	return float64(ok) / float64(probes)
}

// LinkDeliver draws one reception over a single link at the given rate.
func LinkDeliver(rng *rand.Rand, link testbed.Link, rate modem.Rate, payload int) bool {
	return LinkDeliverScaled(rng, link, rate, payload, 1)
}

// LinkDeliverScaled draws one reception over a single link with the
// per-subcarrier SNRs scaled by snrScale — the effective-SNR degradation
// an interference model charges a partially overlapped frame
// (Interference.SNRScale). A scale of 1 is exactly LinkDeliver: the same
// randomness is consumed either way, so degrading a draw never perturbs
// the deterministic stream.
func LinkDeliverScaled(rng *rand.Rand, link testbed.Link, rate modem.Rate, payload int, snrScale float64) bool {
	bins := link.DrawSubcarrierSNRs(rng)
	scaleBins(bins, snrScale)
	per := permodel.PER(rate, payload, bins)
	return rng.Float64() >= per
}

// JointLinkDeliver draws one reception of a joint transmission arriving
// over several links at once (one per sender in the group).
func JointLinkDeliver(rng *rand.Rand, links []testbed.Link, rate modem.Rate, payload int) bool {
	return JointLinkDeliverScaled(rng, links, rate, payload, 1)
}

// JointLinkDeliverScaled is JointLinkDeliver with the post-combiner
// per-subcarrier SNRs scaled by snrScale (interference degrades the summed
// signal and the individual ones identically — the interferer is additive
// noise at the one receiver).
func JointLinkDeliverScaled(rng *rand.Rand, links []testbed.Link, rate modem.Rate, payload int, snrScale float64) bool {
	per := make([][]float64, len(links))
	for i, l := range links {
		per[i] = l.DrawSubcarrierSNRs(rng)
	}
	bins := permodel.JointSNR(per)
	scaleBins(bins, snrScale)
	return rng.Float64() >= permodel.PER(rate, payload, bins)
}

// scaleBins multiplies every bin by scale, skipping the multiply at the
// identity so an undegraded draw is bit-identical to the historical path.
func scaleBins(bins []float64, scale float64) {
	if scale == 1 {
		return
	}
	for i := range bins {
		bins[i] *= scale
	}
}
