package netsim_test

// The bounded interference scan must be an access-path change only: with
// InterferenceRangeM covering the whole floor, the spatial-index query
// (per-flow past lists, grid candidate gathering) must reproduce the
// unbounded active+past scan draw-for-draw on randomized topologies.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/netsim"
	"repro/internal/testbed"
)

// boundedSpec is one randomized flow of the equivalence harness.
type boundedSpec struct {
	tx, rx  testbed.Point
	snr     float64
	packets int
	ft      float64
	placed  bool
	acked   bool
}

// runBounded drains one randomized topology with the given interference
// range and fingerprints everything the run produced.
func runBounded(seed int64, specs []boundedSpec, cs, capture, ixRange float64) string {
	cfg := modem.Profile80211()
	s := netsim.New(mac.Default(cfg), rand.New(rand.NewSource(seed)))
	s.CSRangeM = cs
	s.CaptureDB = capture
	s.InterferenceRangeM = ixRange
	s.Env = testbed.Default(cfg)
	for i, sp := range specs {
		sp := sp
		remaining := sp.packets
		f := &netsim.Flow{
			Name:       fmt.Sprint(i),
			Acked:      sp.acked,
			HasTraffic: func() bool { return remaining > 0 },
			Prepare:    func(rng *rand.Rand) int { return rng.Intn(3) },
			FrameTime:  func(r int) float64 { return sp.ft * float64(r+1) },
			Deliver: func(rng *rand.Rand, r int, ix netsim.Interference) bool {
				return rng.Float64() < 0.9*ix.SNRScale && ix.SINRdB > -10
			},
			Done: func(r int, ok bool, air float64) { remaining-- },
		}
		if sp.placed {
			f.Radio = &netsim.Radio{TxPos: sp.tx, RxPos: sp.rx, SNRdB: sp.snr}
		}
		s.AddFlow(f)
	}
	s.Run()
	out := fmt.Sprintf("now=%.9f busy=%.9f acq=%d coll=%d hid=%d\n", s.Now(), s.BusyTime(), s.Acquisitions, s.CollisionRounds, s.HiddenCorruptions)
	for _, f := range s.Flows {
		out += fmt.Sprintf("%s d=%d dr=%d at=%d co=%d ca=%d hl=%d air=%.9f\n", f.Name, f.Delivered, f.Dropped, f.Attempts, f.Collisions, f.Captures, f.HiddenLosses, f.AirTime)
	}
	return out
}

func TestBoundedInterferenceMatchesUnbounded(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		var specs []boundedSpec
		nCells := 1 + rng.Intn(5)
		clients := 1 + rng.Intn(4)
		for c := 0; c < nCells; c++ {
			cx, cy := rng.Float64()*300, rng.Float64()*300
			ap := testbed.Point{X: cx, Y: cy}
			for k := 0; k < clients; k++ {
				cl := testbed.Point{X: cx + rng.Float64()*40 - 20, Y: cy + rng.Float64()*40 - 20}
				specs = append(specs, boundedSpec{
					tx: ap, rx: cl, snr: 10 + rng.Float64()*20,
					packets: 5 + rng.Intn(10), ft: 5e-4 + rng.Float64()*1e-3,
					placed: true, acked: rng.Intn(4) > 0,
				})
			}
		}
		// A couple of unplaced flows (heard everywhere), like routed flows.
		for k := 0; k < rng.Intn(3); k++ {
			specs = append(specs, boundedSpec{packets: 3 + rng.Intn(6), ft: 5e-4 + rng.Float64()*1e-3, acked: rng.Intn(2) == 0})
		}
		cs := 30 + rng.Float64()*60
		// The floor spans at most ~340 m diagonally plus the 20 m client
		// offset; 1000 m bounds nothing, so the indexed scan must visit
		// exactly the transmissions the unbounded scan visits.
		got := runBounded(int64(trial), specs, cs, 10, 1000)
		want := runBounded(int64(trial), specs, cs, 10, 0)
		if got != want {
			t.Fatalf("trial %d (cells=%d clients=%d cs=%.1f): bounded scan diverged:\nbounded:\n%s\nunbounded:\n%s",
				trial, nCells, clients, cs, got, want)
		}
	}
}
