package netsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/testbed"
)

// countingSource wraps a rand.Source and counts every draw, so tests can
// assert a scenario consumed exactly zero randomness.
type countingSource struct {
	src   rand.Source
	draws int
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed) }

// inService reports the packet a run left mid-transmission when its
// window closed: neither pending nor settled, so accounting checks add it.
func inService(s *Sim, f *Flow) int {
	if s.inFlight(f) {
		return 1
	}
	return 0
}

// arrivalFlow builds an acked flow ready for AttachTraffic: fixed airtime,
// fixed delivery probability, no backlog of its own.
func arrivalFlow(name string, ft, pDeliver float64) *Flow {
	return &Flow{
		Name:      name,
		Acked:     true,
		FrameTime: func(int) float64 { return ft },
		Deliver: func(rng *rand.Rand, _ int, _ Interference) bool {
			return rng.Float64() < pDeliver
		},
	}
}

func TestTimersFireInScheduleOrder(t *testing.T) {
	m := mac.Default(modem.Profile80211())
	s := New(m, rand.New(rand.NewSource(1)))
	var got []int
	s.ScheduleAt(2e-3, func() { got = append(got, 2) })
	s.ScheduleAt(1e-3, func() { got = append(got, 1) })
	s.ScheduleAt(1e-3, func() { got = append(got, 10) }) // same instant: schedule order
	s.ScheduleAt(1e-3, func() {
		// Same-instant reschedule fires within the same drain.
		s.ScheduleAt(1e-3, func() { got = append(got, 11) })
	})
	for s.Step() {
	}
	want := []int{1, 10, 11, 2}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if s.Now() != 2e-3 {
		t.Fatalf("clock %.6f, want 0.002", s.Now())
	}
}

func TestTimerInThePastRunsAtCurrentInstant(t *testing.T) {
	m := mac.Default(modem.Profile80211())
	s := New(m, rand.New(rand.NewSource(1)))
	fired := -1.0
	s.ScheduleAt(1e-3, func() {
		s.ScheduleAt(0, func() { fired = s.Now() }) // in the past: clamped to now
	})
	for s.Step() {
	}
	if fired != 1e-3 {
		t.Fatalf("past-dated timer fired at %.6f, want clamped to 0.001", fired)
	}
}

func TestIdleFlowZeroAirtimeZeroRNG(t *testing.T) {
	// A flow whose arrival process never offers a packet must consume zero
	// airtime and zero RNG draws: idle flows are free under the traffic
	// layer. The counting source observes every Int63 the simulator pulls.
	m := mac.Default(modem.Profile80211())
	cs := &countingSource{src: rand.NewSource(7)}
	s := New(m, rand.New(cs))
	f := s.AddFlow(arrivalFlow("idle", 1e-3, 1))
	s.AttachTraffic(f, TrafficConfig{Process: Poisson{RatePps: 0}})
	s.Run()
	if f.AirTime != 0 || f.Attempts != 0 || f.Delivered != 0 {
		t.Fatalf("idle flow transmitted: attempts=%d delivered=%d airtime=%.9f",
			f.Attempts, f.Delivered, f.AirTime)
	}
	if cs.draws != 0 {
		t.Fatalf("idle flow consumed %d RNG draws, want 0", cs.draws)
	}
	if s.Now() != 0 || s.BusyTime() != 0 {
		t.Fatalf("idle run advanced the medium: now=%.9f busy=%.9f", s.Now(), s.BusyTime())
	}
}

func TestPoissonArrivalsDrainAndAccount(t *testing.T) {
	// A lossless flow fed by a finite window of Poisson arrivals delivers
	// every packet that arrived, and the medium is idle between arrivals
	// (airtime well under the window at low load).
	m := mac.Default(modem.Profile80211())
	s := New(m, rand.New(rand.NewSource(11)))
	f := s.AddFlow(arrivalFlow("poisson", 1e-3, 1))
	q := s.AttachTraffic(f, TrafficConfig{Process: Poisson{RatePps: 200}})
	const window = 0.5
	s.RunUntil(window)
	if q.Arrived < 50 || q.Arrived > 150 {
		t.Fatalf("arrived %d packets in %.1fs at 200pps — process is off", q.Arrived, window)
	}
	if got := f.Delivered + f.Dropped + q.Pending() + inService(s, f); got != q.Arrived {
		t.Fatalf("accounting leak: delivered %d + dropped %d + pending %d != arrived %d",
			f.Delivered, f.Dropped, q.Pending(), q.Arrived)
	}
	// At 200 pps of 1 ms frames the flow is far from saturation: its own
	// airtime must be a small fraction of the window.
	if f.AirTime > 0.6*window {
		t.Fatalf("non-saturated flow burned %.3fs of a %.3fs window", f.AirTime, window)
	}
}

func TestOnOffArrivalsAreBursty(t *testing.T) {
	// The on/off process must offer roughly MeanOn/(MeanOn+MeanOff) of the
	// peak rate, and gaps must cluster: some interarrivals far exceed the
	// on-period spacing (the silences).
	rng := rand.New(rand.NewSource(5))
	p := &OnOff{RatePps: 1000, MeanOnSec: 0.02, MeanOffSec: 0.08}
	var total float64
	long := 0
	const n = 2000
	for i := 0; i < n; i++ {
		g := p.NextGap(rng)
		if g < 0 {
			t.Fatal("on/off process ended early")
		}
		total += g
		if g > 0.02 {
			long++
		}
	}
	rate := float64(n) / total
	if rate < 100 || rate > 350 {
		t.Fatalf("long-run rate %.0f pps, want near 200 (duty-cycled 1000)", rate)
	}
	if long == 0 {
		t.Fatal("no silence-spanning gaps — process is not bursty")
	}
}

func TestDeadlineExpiresStaleQueue(t *testing.T) {
	// Two flows share one medium; flow a is saturated enough that flow b's
	// tight-deadline packets often expire before service. Expired packets
	// must be counted and never delivered.
	m := mac.Default(modem.Profile80211())
	s := New(m, rand.New(rand.NewSource(13)))
	hog := s.AddFlow(backloggedFlow("hog", 4000, 2e-3, 1))
	f := s.AddFlow(arrivalFlow("deadline", 1e-3, 1))
	q := s.AttachTraffic(f, TrafficConfig{
		Process:     Poisson{RatePps: 400},
		DeadlineSec: 1e-3,
	})
	s.RunUntil(1.0)
	if hog.Delivered == 0 || q.Arrived == 0 {
		t.Fatalf("degenerate run: hog=%d arrived=%d", hog.Delivered, q.Arrived)
	}
	if q.Expired == 0 {
		t.Fatal("tight deadline under contention expired nothing")
	}
	if got := f.Delivered + f.Dropped + q.Expired + q.Pending() + inService(s, f); got != q.Arrived {
		t.Fatalf("accounting leak: %d delivered + %d dropped + %d expired + %d pending != %d arrived",
			f.Delivered, f.Dropped, q.Expired, q.Pending(), q.Arrived)
	}
}

func TestChurnStartStopWindow(t *testing.T) {
	// A flow that joins at 0.2s and leaves at 0.4s must transmit only
	// within that window, and abandon whatever was still queued when it
	// left.
	m := mac.Default(modem.Profile80211())
	s := New(m, rand.New(rand.NewSource(17)))
	f := s.AddFlow(arrivalFlow("churn", 1e-3, 1))
	q := s.AttachTraffic(f, TrafficConfig{
		Process:  Poisson{RatePps: 5000}, // saturating: a queue builds up
		StartSec: 0.2,
		StopSec:  0.4,
	})
	s.RunUntil(1.0)
	if q.Arrived == 0 || f.Delivered == 0 {
		t.Fatalf("flow never ran: arrived=%d delivered=%d", q.Arrived, f.Delivered)
	}
	if q.Abandoned == 0 {
		t.Fatal("saturating flow left nothing behind at StopSec")
	}
	if got := f.Delivered + f.Dropped + q.Abandoned + q.Pending() + inService(s, f); got != q.Arrived {
		t.Fatalf("accounting leak: %d delivered + %d dropped + %d abandoned + %d pending != %d arrived",
			f.Delivered, f.Dropped, q.Abandoned, q.Pending(), q.Arrived)
	}
	// All airtime fits inside [start, stop] plus at most one trailing frame.
	if s.Now() > 0.4+0.1 {
		t.Fatalf("medium active until %.3fs — flow did not leave at 0.4s", s.Now())
	}
}

func TestMidRunJoinViaTimer(t *testing.T) {
	// Churn joins: a timer adds a brand-new flow mid-run; the scheduler
	// indexes and serves it, and the result is identical to a second run
	// with the same seed.
	run := func() (int, float64) {
		m := mac.Default(modem.Profile80211())
		s := New(m, rand.New(rand.NewSource(23)))
		s.AddFlow(backloggedFlow("base", 500, 1e-3, 1))
		var late *Flow
		s.ScheduleAt(0.05, func() {
			late = s.AddFlow(backloggedFlow("late", 100, 1e-3, 1))
		})
		s.Run()
		return late.Delivered, s.Now()
	}
	d1, t1 := run()
	d2, t2 := run()
	if d1 != 100 {
		t.Fatalf("late joiner delivered %d of 100", d1)
	}
	if d1 != d2 || t1 != t2 {
		t.Fatalf("mid-run join not deterministic: (%d, %.9f) vs (%d, %.9f)", d1, t1, d2, t2)
	}
}

func TestReindexMovesCarrierSenseNeighborhoods(t *testing.T) {
	// Two transmitter pairs start out-of-range (spatial reuse: both cells
	// drain concurrently). A mobility timer moves one transmitter next to
	// the other and calls Reindex; afterwards the flows contend, so total
	// elapsed time must exceed a run where they stay apart.
	elapsed := func(move bool) float64 {
		m := mac.Default(modem.Profile80211())
		s := New(m, rand.New(rand.NewSource(29)))
		s.CSRangeM = 30
		mk := func(x float64) *Flow {
			f := backloggedFlow("f", 1500, 1e-3, 1)
			f.Radio = &Radio{
				TxPos: testbed.Point{X: x, Y: 0},
				RxPos: testbed.Point{X: x, Y: 5},
				SNRdB: 30,
			}
			return f
		}
		a := mk(0)
		s.AddFlow(a)
		s.AddFlow(mk(200))
		if move {
			s.ScheduleAt(0.05, func() {
				a.Radio = &Radio{TxPos: testbed.Point{X: 199, Y: 0}, RxPos: testbed.Point{X: 199, Y: 5}, SNRdB: 30}
				s.Reindex()
				s.Wake(a)
			})
		}
		s.Run()
		return s.Now()
	}
	apart := elapsed(false)
	merged := elapsed(true)
	if merged <= apart*1.2 {
		t.Fatalf("merging neighborhoods did not slow the floor: apart %.4fs, merged %.4fs", apart, merged)
	}
	// And the merged run is reproducible.
	if m2 := elapsed(true); math.Abs(m2-merged) != 0 {
		t.Fatalf("mobility run not deterministic: %.9f vs %.9f", merged, m2)
	}
}
