package netsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/testbed"
)

// backloggedFlow builds an acked flow with `packets` frames of the given
// airtime and per-attempt delivery probability.
func backloggedFlow(name string, packets int, ft, pDeliver float64) *Flow {
	remaining := packets
	f := &Flow{
		Name:       name,
		Acked:      true,
		HasTraffic: func() bool { return remaining > 0 },
		FrameTime:  func(int) float64 { return ft },
	}
	f.Deliver = func(rng *rand.Rand, _ int, _ Interference) bool { return rng.Float64() < pDeliver }
	f.Done = func(_ int, _ bool, _ float64) { remaining-- }
	return f
}

func TestVirtualClockMatchesSingleFlowAccounting(t *testing.T) {
	// With a single flow there is no contention: the clock must advance by
	// exactly the flow's own medium time, and the busy time by exactly the
	// frames + ACKs it carried.
	m := mac.Default(modem.Profile80211())
	s := New(m, rand.New(rand.NewSource(1)))
	const ft = 1e-3
	f := s.AddFlow(backloggedFlow("dl", 200, ft, 1)) // lossless
	s.Run()

	if f.Delivered != 200 || f.Dropped != 0 {
		t.Fatalf("delivered %d dropped %d", f.Delivered, f.Dropped)
	}
	if math.Abs(s.Now()-f.AirTime) > 1e-12 {
		t.Fatalf("clock %.9f != flow airtime %.9f", s.Now(), f.AirTime)
	}
	wantBusy := 200 * (ft + m.SIFS + m.AckDuration())
	if math.Abs(s.BusyTime()-wantBusy) > 1e-9 {
		t.Fatalf("busy %.9f, want %.9f", s.BusyTime(), wantBusy)
	}
	// DIFS + backoff make Now strictly larger than busy.
	if s.Now() <= s.BusyTime() {
		t.Fatal("virtual time must include idle overhead")
	}
}

func TestClockMonotonicPerStep(t *testing.T) {
	m := mac.Default(modem.Profile80211())
	s := New(m, rand.New(rand.NewSource(2)))
	s.AddFlow(backloggedFlow("a", 50, 1e-3, 0.7))
	s.AddFlow(backloggedFlow("b", 50, 5e-4, 0.7))
	prev := s.Now()
	for s.Step() {
		if s.Now() <= prev {
			t.Fatalf("clock did not advance: %.9f -> %.9f", prev, s.Now())
		}
		prev = s.Now()
	}
	// Draining is idempotent: further steps neither run nor advance time.
	if s.Step() || s.Now() != prev {
		t.Fatal("drained sim must stay put")
	}
}

func TestContentionSharesMediumFairly(t *testing.T) {
	// Two statistically identical flows must split deliveries roughly
	// evenly, and the shared run must take less virtual time than the two
	// flows back to back (they interleave on one medium; per-flow waits
	// overlap with the other's transmissions).
	m := mac.Default(modem.Profile80211())
	const pkts, ft = 400, 1e-3
	s := New(m, rand.New(rand.NewSource(3)))
	a := s.AddFlow(backloggedFlow("a", pkts, ft, 1))
	b := s.AddFlow(backloggedFlow("b", pkts, ft, 1))
	s.Run()

	if a.Delivered+b.Delivered != 2*pkts {
		t.Fatalf("delivered %d+%d", a.Delivered, b.Delivered)
	}
	if d := a.Delivered - b.Delivered; d > pkts/4 || d < -pkts/4 {
		t.Fatalf("unfair split: %d vs %d", a.Delivered, b.Delivered)
	}
	if s.Now() >= a.AirTime+b.AirTime {
		t.Fatalf("shared medium (%.4fs) should beat serial (%.4fs)", s.Now(), a.AirTime+b.AirTime)
	}
}

func TestCollisionsOccurAndAreAccounted(t *testing.T) {
	// Many contenders on CWMin=15 collide often. Colliding attempts must
	// fail, double the window, and show up in both per-flow and simulator
	// counters.
	m := mac.Default(modem.Profile80211())
	s := New(m, rand.New(rand.NewSource(4)))
	var flows []*Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, s.AddFlow(backloggedFlow("f", 100, 1e-3, 1)))
	}
	s.Run()
	if s.CollisionRounds == 0 {
		t.Fatal("8 contenders on CW 15 must collide at least once")
	}
	var collisions, attempts, delivered int
	for _, f := range flows {
		collisions += f.Collisions
		attempts += f.Attempts
		delivered += f.Delivered
	}
	if collisions < 2*s.CollisionRounds {
		t.Fatalf("%d collision rounds but only %d colliding attempts", s.CollisionRounds, collisions)
	}
	if attempts <= delivered {
		t.Fatal("collisions must cost extra attempts")
	}
	if delivered != 800 {
		t.Fatalf("lossless flows delivered %d/800", delivered)
	}
}

func TestUnackedFlowSingleAttempt(t *testing.T) {
	// Broadcast-style flows get exactly one attempt per frame and pay no
	// ACK time.
	m := mac.Default(modem.Profile80211())
	m.CWMin, m.CWMax = 0, 0 // deterministic: no backoff
	s := New(m, rand.New(rand.NewSource(5)))
	remaining := 10
	f := s.AddFlow(&Flow{
		Name:       "bcast",
		HasTraffic: func() bool { return remaining > 0 },
		FrameTime:  func(int) float64 { return 1e-3 },
		Deliver:    func(*rand.Rand, int, Interference) bool { return false }, // never received
		Done:       func(int, bool, float64) { remaining-- },
	})
	s.Run()
	if f.Attempts != 10 || f.Dropped != 10 || f.Delivered != 0 {
		t.Fatalf("attempts %d dropped %d delivered %d", f.Attempts, f.Dropped, f.Delivered)
	}
	want := 10 * (m.DIFS() + 1e-3)
	if math.Abs(s.Now()-want) > 1e-12 {
		t.Fatalf("clock %.9f, want %.9f (no ACK cost for unacked flows)", s.Now(), want)
	}
}

func TestAckedRetryLimitDropsFrame(t *testing.T) {
	m := mac.Default(modem.Profile80211())
	s := New(m, rand.New(rand.NewSource(6)))
	remaining := 1
	f := s.AddFlow(&Flow{
		Name:       "dead",
		Acked:      true,
		HasTraffic: func() bool { return remaining > 0 },
		FrameTime:  func(int) float64 { return 1e-3 },
		Deliver:    func(*rand.Rand, int, Interference) bool { return false },
		Done:       func(int, bool, float64) { remaining-- },
	})
	s.Run()
	if f.Attempts != m.RetryLimit || f.Dropped != 1 {
		t.Fatalf("attempts %d dropped %d, want %d/1", f.Attempts, f.Dropped, m.RetryLimit)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() (float64, int, int) {
		m := mac.Default(modem.Profile80211())
		s := New(m, rand.New(rand.NewSource(7)))
		a := s.AddFlow(backloggedFlow("a", 120, 1e-3, 0.8))
		b := s.AddFlow(backloggedFlow("b", 120, 7e-4, 0.6))
		s.Run()
		return s.Now(), a.Delivered, b.Delivered
	}
	n1, a1, b1 := run()
	n2, a2, b2 := run()
	if n1 != n2 || a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%v %d %d) vs (%v %d %d)", n1, a1, b1, n2, a2, b2)
	}
}

func TestTopologyDeliveryModel(t *testing.T) {
	cfg := modem.Profile80211()
	env := testbed.Default(cfg)
	rng := rand.New(rand.NewSource(8))
	pts := []testbed.Point{{X: 0, Y: 0}, {X: 5, Y: 2}, {X: 28, Y: 14}}
	topo := NewTopology(rng, env, pts)
	rate, _ := modem.RateByMbps(6)

	near := topo.DeliveryProb(rng, 0, 1, rate, 500, 60)
	if near < 0.9 {
		t.Fatalf("5 m link delivery %.2f, want near 1", near)
	}
	// Reciprocal average SNR.
	if topo.Links[0][1].SNRdB != topo.Links[1][0].SNRdB {
		t.Fatal("links must be reciprocal in average SNR")
	}
	// Joint delivery from two senders must not be worse than the weaker
	// sender alone (summed subcarrier SNR).
	far := 2
	nSingle, nJoint := 0, 0
	for i := 0; i < 200; i++ {
		if topo.Deliver(rng, 0, far, rate, 500) {
			nSingle++
		}
		if topo.DeliverJoint(rng, []int{0, 1}, far, rate, 500) {
			nJoint++
		}
	}
	if nJoint < nSingle {
		t.Fatalf("joint delivery %d worse than single %d", nJoint, nSingle)
	}
}
