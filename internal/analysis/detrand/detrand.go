// Package detrand enforces the repo's RNG discipline: randomness flows
// only through parameter-passed *rand.Rand values seeded from plumbed
// configuration (engine.Config.Seed and its splitmix64-derived per-trial
// streams).
//
// Three patterns break reproducibility and are flagged:
//
//  1. Top-level math/rand functions (rand.Intn, rand.Float64, ...): they
//     draw from the shared process-wide source, so draw order depends on
//     goroutine interleaving.
//  2. rand.Seed: reseeding the global source is both racy and a hidden
//     input to every later global draw.
//  3. rand.NewSource(expr) where expr contains a function call: the
//     canonical offender is time.Now().UnixNano(), but any call-derived
//     seed hides an extra input to the draw stream. Deriving a child
//     source from a parent stream (rand.NewSource(rng.Int63())) is the
//     sanctioned bridge idiom; those sites carry //sslint:allow detrand
//     directives stating that the parent draw is part of the contract.
package detrand

import (
	"go/ast"

	"repro/internal/analysis/framework"
)

// globalDraws are the math/rand (and math/rand/v2) top-level functions
// that consume the shared source. Constructors (New, NewSource, NewZipf,
// NewPCG, NewChaCha8) are excluded: they only build generators.
var globalDraws = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
	// math/rand/v2 spellings
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "UintN": true,
	"Uint": true, "N": true,
}

// randPkgs are the package paths the analyzer polices.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc: "flag global math/rand draws, rand.Seed, and rand.NewSource seeds derived " +
		"from calls: RNGs must be parameter-passed *rand.Rand seeded from plumbed " +
		"configuration, so the draw stream is a pure function of engine.Config.Seed",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkg, name, resolved := framework.CalleePkgFunc(pass.TypesInfo, call)
			if !resolved || !randPkgs[pkg] {
				return true
			}
			switch {
			case name == "Seed":
				pass.Reportf(call.Pos(),
					"rand.Seed reseeds the process-wide source; seed a parameter-passed *rand.Rand from plumbed configuration instead")
			case globalDraws[name]:
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-wide source (draw order depends on scheduling); pass a *rand.Rand parameter instead", name)
			case name == "NewSource" || name == "NewPCG" || name == "NewChaCha8":
				checkSeedArgs(pass, call, name)
			}
			return true
		})
	}
	return nil
}

// checkSeedArgs flags seed expressions that contain function calls. A seed
// must be traceable to plumbed configuration — a constant, a parameter, a
// struct field — not manufactured at the call site. Conversions and
// builtins are transparent; any other call is reported, with a sharper
// message when the call reaches into a nondeterministic package.
func checkSeedArgs(pass *framework.Pass, call *ast.CallExpr, ctor string) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, isCall := n.(*ast.CallExpr)
			if !isCall || framework.IsConversionOrBuiltin(pass.TypesInfo, inner) {
				return true
			}
			if pkg, name, found := findNondetCall(pass, inner); found {
				pass.Reportf(call.Pos(),
					"rand.%s seed derives from %s.%s: the draw stream is no longer a function of the configured seed", ctor, pkg, name)
				return false
			}
			pass.Reportf(call.Pos(),
				"rand.%s seed contains a call (%s); seeds must be plumbed constants or parameters — a sanctioned parent-stream bridge needs //sslint:allow detrand", ctor, callLabel(inner))
			return false
		})
	}
}

// findNondetCall looks inside expr (itself a call) for any call into a
// nondeterministic package, so rand.NewSource(time.Now().UnixNano()) is
// pinned on time.Now rather than generically on UnixNano.
func findNondetCall(pass *framework.Pass, expr ast.Expr) (pkg, name string, found bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		inner, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if p, fn, resolved := framework.CalleePkgFunc(pass.TypesInfo, inner); resolved && nondetSeedSource(p) {
			pkg, name, found = p, fn, true
			return false
		}
		return true
	})
	return pkg, name, found
}

// nondetSeedSource reports whether a package read inside a seed expression
// is inherently nondeterministic input.
func nondetSeedSource(pkg string) bool {
	switch pkg {
	case "time", "crypto/rand", "os":
		return true
	}
	return false
}

// callLabel renders a short human label for the offending call.
func callLabel(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, isIdent := fun.X.(*ast.Ident); isIdent {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
