// Fixture for the detrand analyzer: process-global draws, reseeding, and
// nondeterministically seeded sources are flagged; plumbed seeds and
// sanctioned parent-stream bridges are not.
package randsrc

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func globals() {
	rand.Seed(42)                      // want `rand\.Seed reseeds the process-wide source`
	_ = rand.Int()                     // want `rand\.Int draws from the process-wide source`
	_ = rand.Intn(10)                  // want `rand\.Intn draws from the process-wide source`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the process-wide source`
	_ = randv2.IntN(10)                // want `rand\.IntN draws from the process-wide source`
	_ = randv2.Uint64()                // want `rand\.Uint64 draws from the process-wide source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-wide source`
}

func badSeeds(helper func() int64) {
	_ = rand.NewSource(time.Now().UnixNano()) // want `rand\.NewSource seed derives from time\.Now`
	_ = rand.New(rand.NewSource(helper()))    // want `rand\.NewSource seed contains a call \(helper\)`
}

// clean: seeds plumbed as constants, parameters, or pure conversions.
func clean(seed int64, part int) *rand.Rand {
	_ = rand.New(rand.NewSource(7))
	_ = rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	_ = randv2.New(randv2.NewPCG(uint64(seed), uint64(part)))
	return rand.New(rand.NewSource(int64(part)))
}

// sanctioned: a child stream bridged from a parameter-passed parent RNG,
// with the draw accounted for in the experiment's contracted draw order.
func bridge(rng *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(rng.Int63())) //sslint:allow detrand child stream bridged from the parent draw order
}
