// Package analysistest runs determinism-contract analyzers over fixture
// packages and checks their diagnostics against expectations embedded in
// the fixtures, in the style of golang.org/x/tools/go/analysis/analysistest
// (reimplemented on the standard library; the x/tools module is not a
// dependency of this repo).
//
// A fixture is a directory of .go files forming one package. Lines that
// should produce a diagnostic carry a trailing comment of the form
//
//	// want "regexp"
//
// with one quoted regexp per expected diagnostic on that line. Lines with
// no want comment must stay silent. Fixtures are analyzed through
// sslint.Run, so //sslint:allow directives are honored: a suppressed site
// simply carries no want comment, and directive defects (malformed,
// unknown check, unused) can themselves be asserted with want comments.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
	"repro/internal/analysis/sslint"
)

// expectation is one parsed want clause: a diagnostic matching re must be
// reported at file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE matches the quoted regexps of a want comment: double-quoted Go
// string literals or backquoted raw literals (handy when the pattern
// itself contains escapes).
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run analyzes the fixture package in dir with the given analyzers and
// reports any mismatch between produced diagnostics and want comments as
// test errors. The fixture is type-checked against real export data, so
// it may import anything the repository's build graph already exports
// (the standard library in practice).
func Run(t *testing.T, dir string, analyzers ...*framework.Analyzer) {
	t.Helper()

	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}

	pkg, info, err := typecheck(fset, dir, files)
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", dir, err)
	}

	findings, err := sslint.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		t.Fatalf("run analyzers on %s: %v", dir, err)
	}

	expects := collectWants(t, fset, files)
	for _, f := range findings {
		if !claim(expects, f) {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// claim marks the first unmatched expectation at the finding's line whose
// regexp matches the message, returning false if none does.
func claim(expects []*expectation, f sslint.Finding) bool {
	base := filepath.Base(f.Pos.Filename)
	for _, e := range expects {
		if e.matched || e.file != base || e.line != f.Pos.Line {
			continue
		}
		if e.re.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseDir parses every .go file directly inside dir, comments included,
// in sorted filename order so diagnostics come out stable.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typecheck resolves the fixture's imports through `go list -export` and
// type-checks the files as one package named after its package clause.
func typecheck(fset *token.FileSet, dir string, files []*ast.File) (*types.Package, *types.Info, error) {
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, nil, fmt.Errorf("bad import in fixture: %v", err)
			}
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	exports, err := load.DepExports(dir, imports)
	if err != nil {
		return nil, nil, err
	}
	// The import path is the fixture's path under testdata/src, so
	// path-sensitive analyzers (detgoroutine's internal/engine sanction)
	// see the package identity the fixture claims.
	pkgPath := "fixture"
	const marker = "testdata/src/"
	if i := strings.Index(filepath.ToSlash(dir), marker); i >= 0 {
		pkgPath = filepath.ToSlash(dir)[i+len(marker):]
	}
	info := load.NewInfo()
	conf := types.Config{Importer: load.ExportImporter(fset, nil, exports)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// collectWants extracts the want expectations from every comment in the
// fixture files. A want comment asserts diagnostics on its own line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var expects []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantRE.FindAllString(text[len("want "):], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: want comment with no quoted regexp", pos)
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
					}
					expects = append(expects, &expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}
	return expects
}
