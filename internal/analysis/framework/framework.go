// Package framework is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that the sslint suite needs. The
// container this repo builds in has no module proxy access, so the real
// x/tools package cannot be vendored; this package keeps the analyzer code
// shaped exactly like a standard go/analysis pass (Analyzer struct, Pass
// with Fset/Files/Pkg/TypesInfo, Reportf) so a future migration to x/tools
// is a mechanical import swap.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (also the //sslint:allow
// suppression key), a one-paragraph doc string, and a Run function invoked
// once per type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer. Report is
// wired by the driver; analyzers call Reportf.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at one position. Check is filled by the driver
// from the reporting analyzer's name.
type Diagnostic struct {
	Pos     token.Pos
	Check   string
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// CalleePkgFunc resolves a call of the form pkg.Fn(...) where pkg is an
// imported package name, returning the package path and function name.
// Method calls, conversions, builtins, and locally-defined functions
// return ok=false.
func CalleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// IsConversionOrBuiltin reports whether a CallExpr is a type conversion
// (int64(x)) or a builtin call (len(x), min(a, b)) rather than a function
// call — both are pure and order-independent.
func IsConversionOrBuiltin(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, found := info.Types[fun]; found && tv.IsType() {
		return true
	}
	if id, isIdent := fun.(*ast.Ident); isIdent {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	return false
}
