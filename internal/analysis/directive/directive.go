// Package directive parses sslint suppression comments. A directive has
// the form
//
//	//sslint:allow <check> <reason...>
//
// and sanctions exactly one check on exactly one line: the line the
// comment trails, or — when the comment stands on a line of its own — the
// line immediately below it. The reason is mandatory: the allowlist lives
// in the code, next to the sanctioned site, with its justification.
//
// The parser is deliberately strict. Malformed directives (missing check,
// missing reason, unknown verb), unknown check names, and directives that
// never matched a diagnostic ("unused suppressions") are all reported as
// problems, so a stale or typo'd allow can't silently widen the allowlist.
package directive

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Prefix is the comment marker every sslint directive starts with.
const Prefix = "//sslint:"

// Directive is one parsed, well-formed suppression.
type Directive struct {
	Check  string // analyzer name being suppressed
	Reason string // mandatory free-text justification
	Pos    token.Position
	Target int // line whose diagnostics this directive suppresses
	used   bool
}

// Problem is a defect in the directive text itself (malformed, unknown
// check, unused). Problems are reported under the pseudo-check "sslint".
type Problem struct {
	Pos     token.Position
	Message string
}

// Set holds every directive found in a group of files plus the problems
// discovered while parsing them.
type Set struct {
	directives []*Directive
	problems   []Problem
}

// Collect parses all sslint directives in files. known is the set of valid
// check names (the full suite, independent of which analyzers run —
// otherwise a partial run would misreport valid names as unknown).
func Collect(fset *token.FileSet, files []*ast.File, known map[string]bool) *Set {
	s := &Set{}
	for _, f := range files {
		codeLines := codeLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.parse(fset, c, codeLines, known)
			}
		}
	}
	return s
}

// codeLines returns the set of lines in f that contain non-comment code,
// so a directive can tell whether it trails a statement or stands alone.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		if n.Pos().IsValid() {
			lines[fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	return lines
}

func (s *Set) parse(fset *token.FileSet, c *ast.Comment, codeLines map[int]bool, known map[string]bool) {
	if !strings.HasPrefix(c.Text, Prefix) {
		return
	}
	pos := fset.Position(c.Pos())
	rest := strings.TrimPrefix(c.Text, Prefix)
	fields := strings.Fields(rest)
	if len(fields) == 0 || !strings.HasPrefix(rest, "allow") {
		s.problems = append(s.problems, Problem{pos,
			fmt.Sprintf("malformed sslint directive %q: want //sslint:allow <check> <reason>", c.Text)})
		return
	}
	if fields[0] != "allow" {
		s.problems = append(s.problems, Problem{pos,
			fmt.Sprintf("unknown sslint directive verb %q: only \"allow\" is supported", fields[0])})
		return
	}
	if len(fields) < 2 {
		s.problems = append(s.problems, Problem{pos,
			"sslint:allow is missing a check name: want //sslint:allow <check> <reason>"})
		return
	}
	check := fields[1]
	if !known[check] {
		names := make([]string, 0, len(known))
		for n := range known {
			names = append(names, n)
		}
		sort.Strings(names)
		s.problems = append(s.problems, Problem{pos,
			fmt.Sprintf("sslint:allow names unknown check %q (known checks: %s)", check, strings.Join(names, ", "))})
		return
	}
	if len(fields) < 3 {
		s.problems = append(s.problems, Problem{pos,
			fmt.Sprintf("sslint:allow %s has no reason: every suppression must say why the site is sanctioned", check)})
		return
	}
	target := pos.Line
	if !codeLines[pos.Line] {
		// Standalone comment: it sanctions the line below it.
		target = pos.Line + 1
	}
	s.directives = append(s.directives, &Directive{
		Check:  check,
		Reason: strings.Join(fields[2:], " "),
		Pos:    pos,
		Target: target,
	})
}

// Suppresses reports whether a diagnostic of the given check at pos is
// sanctioned, marking any matching directive as used.
func (s *Set) Suppresses(check string, pos token.Position) bool {
	hit := false
	for _, d := range s.directives {
		if d.Check == check && d.Pos.Filename == pos.Filename && d.Target == pos.Line {
			d.used = true
			hit = true
		}
	}
	return hit
}

// Unused returns the directives for checks in ran that never suppressed a
// diagnostic. Restricting to the checks that actually ran keeps a partial
// run (e.g. a single-analyzer test) from misreporting other checks'
// directives as stale.
func (s *Set) Unused(ran map[string]bool) []*Directive {
	var out []*Directive
	for _, d := range s.directives {
		if !d.used && ran[d.Check] {
			out = append(out, d)
		}
	}
	return out
}

// Problems returns the malformed-directive reports collected at parse time.
func (s *Set) Problems() []Problem {
	return s.problems
}

// Directives returns every well-formed directive (used or not), for tests.
func (s *Set) Directives() []*Directive {
	return s.directives
}
