package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis/directive"
)

var known = map[string]bool{"detwallclock": true, "detrand": true}

// collect parses src as a single file and gathers its directives.
func collect(t *testing.T, src string) (*token.FileSet, *directive.Set) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, directive.Collect(fset, []*ast.File{f}, known)
}

func position(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

func TestTrailingDirectiveTargetsOwnLine(t *testing.T) {
	_, set := collect(t, `package p

func f() {
	g() //sslint:allow detwallclock sanctioned timing site
}

func g() {}
`)
	if problems := set.Problems(); len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
	ds := set.Directives()
	if len(ds) != 1 {
		t.Fatalf("got %d directives, want 1", len(ds))
	}
	d := ds[0]
	if d.Check != "detwallclock" || d.Reason != "sanctioned timing site" || d.Target != 4 {
		t.Errorf("parsed directive = %+v; want check detwallclock, reason %q, target line 4",
			d, "sanctioned timing site")
	}
	if !set.Suppresses("detwallclock", position("x.go", 4)) {
		t.Error("directive does not suppress its own line")
	}
	if set.Suppresses("detwallclock", position("x.go", 5)) {
		t.Error("directive leaked onto the next line")
	}
	if set.Suppresses("detrand", position("x.go", 4)) {
		t.Error("directive suppressed a different check")
	}
}

func TestStandaloneDirectiveTargetsNextLine(t *testing.T) {
	_, set := collect(t, `package p

//sslint:allow detrand sanctioned bridge below
var x = seed()

func seed() int64 { return 1 }
`)
	ds := set.Directives()
	if len(ds) != 1 {
		t.Fatalf("got %d directives, want 1", len(ds))
	}
	if ds[0].Target != 4 {
		t.Errorf("standalone directive targets line %d, want 4 (the line below)", ds[0].Target)
	}
	if set.Suppresses("detrand", position("x.go", 3)) {
		t.Error("standalone directive must not suppress its own (code-free) line")
	}
}

func TestMalformedDirectives(t *testing.T) {
	cases := []struct {
		name    string
		comment string
		wantSub string
	}{
		{"empty", "//sslint:", "malformed sslint directive"},
		{"unknown verb", "//sslint:deny detrand reason", "malformed sslint directive"},
		{"verb prefix only", "//sslint:allowing detrand reason", `unknown sslint directive verb "allowing"`},
		{"missing check", "//sslint:allow", "missing a check name"},
		{"unknown check", "//sslint:allow detclock reason", `unknown check "detclock"`},
		{"missing reason", "//sslint:allow detrand", "has no reason"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, set := collect(t, "package p\n\n"+tc.comment+"\nvar x int\n")
			if len(set.Directives()) != 0 {
				t.Fatalf("malformed comment parsed as a directive: %+v", set.Directives()[0])
			}
			problems := set.Problems()
			if len(problems) != 1 {
				t.Fatalf("got %d problems, want 1: %v", len(problems), problems)
			}
			if !strings.Contains(problems[0].Message, tc.wantSub) {
				t.Errorf("problem %q does not mention %q", problems[0].Message, tc.wantSub)
			}
		})
	}
}

func TestUnknownCheckListsKnownNames(t *testing.T) {
	_, set := collect(t, "package p\n\n//sslint:allow nosuch reason\nvar x int\n")
	problems := set.Problems()
	if len(problems) != 1 {
		t.Fatalf("got %d problems, want 1", len(problems))
	}
	// The sorted list of valid names turns a typo report into a fix.
	if !strings.Contains(problems[0].Message, "detrand, detwallclock") {
		t.Errorf("problem %q does not list the known checks in sorted order", problems[0].Message)
	}
}

func TestUnusedDirectivesReported(t *testing.T) {
	_, set := collect(t, `package p

var a = 1 //sslint:allow detwallclock stale: nothing on this line trips the check
var b = 2 //sslint:allow detrand this one will be consumed
`)
	if !set.Suppresses("detrand", position("x.go", 4)) {
		t.Fatal("line-4 directive did not suppress")
	}
	ran := map[string]bool{"detwallclock": true, "detrand": true}
	unused := set.Unused(ran)
	if len(unused) != 1 {
		t.Fatalf("got %d unused directives, want 1: %+v", len(unused), unused)
	}
	if unused[0].Check != "detwallclock" || unused[0].Pos.Line != 3 {
		t.Errorf("unused = %+v; want the detwallclock directive on line 3", unused[0])
	}
}

func TestUnusedRestrictedToRanChecks(t *testing.T) {
	_, set := collect(t, `package p

var a = 1 //sslint:allow detrand sanctioned for an analyzer that did not run
`)
	if unused := set.Unused(map[string]bool{"detwallclock": true}); len(unused) != 0 {
		t.Errorf("partial run misreported another check's directive as unused: %+v", unused)
	}
	if unused := set.Unused(map[string]bool{"detrand": true}); len(unused) != 1 {
		t.Errorf("full run missed the stale directive: %+v", unused)
	}
}

func TestNonDirectiveCommentsIgnored(t *testing.T) {
	_, set := collect(t, `package p

// sslint:allow detrand a space after the slashes is not a directive
var a = 1 // plain trailing comment
`)
	if len(set.Directives()) != 0 || len(set.Problems()) != 0 {
		t.Errorf("near-miss comments should be ignored: directives=%v problems=%v",
			set.Directives(), set.Problems())
	}
}
