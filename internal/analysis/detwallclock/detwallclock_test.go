package detwallclock_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detwallclock"
)

func TestDetwallclock(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "wallclock"), detwallclock.Analyzer)
}
