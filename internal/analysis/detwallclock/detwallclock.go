// Package detwallclock flags wall-clock reads inside simulation code.
//
// The simulator's determinism contract (docs/ARCHITECTURE.md) requires
// every experiment to produce byte-identical output at any -workers count
// and on any machine; time must therefore come from the virtual clock that
// netsim advances event by event, never from the host. The only sanctioned
// wall-clock sites are the stderr timing reports in cmd/ssbench and the
// serial-baseline measurement in bench_test.go, which carry explicit
// //sslint:allow detwallclock directives.
package detwallclock

import (
	"go/ast"

	"repro/internal/analysis/framework"
)

// clockFuncs are the time-package functions that read or depend on the
// host clock. Pure constructors/parsers (time.Duration, time.Unix,
// time.Parse) are fine: they involve no clock read.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

var Analyzer = &framework.Analyzer{
	Name: "detwallclock",
	Doc: "flag wall-clock reads (time.Now, time.Since, time.Sleep, ...): simulation " +
		"code must take time from the engine's virtual clock so output is " +
		"byte-identical at any -workers count",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkg, name, resolved := framework.CalleePkgFunc(pass.TypesInfo, call)
			if resolved && pkg == "time" && clockFuncs[name] {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock; simulation code must use the virtual clock (engine/netsim) so output is reproducible", name)
			}
			return true
		})
	}
	return nil
}
