// Fixture for the detwallclock analyzer: wall-clock reads are flagged,
// pure time.Duration/time.Time arithmetic is not, and an //sslint:allow
// directive silences a sanctioned site.
package wallclock

import "time"

func reads() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	d := time.Since(start)       // want `time\.Since reads the wall clock`
	d += time.Until(start)       // want `time\.Until reads the wall clock`
	t := time.NewTimer(d)        // want `time\.NewTimer reads the wall clock`
	k := time.NewTicker(d)       // want `time\.NewTicker reads the wall clock`
	<-time.After(d)              // want `time\.After reads the wall clock`
	time.AfterFunc(d, func() {}) // want `time\.AfterFunc reads the wall clock`
	t.Stop()
	k.Stop()
	return d
}

// clean: constructing and transforming times without touching the clock.
func clean() time.Time {
	epoch := time.Unix(0, 0)
	later := epoch.Add(3 * time.Second)
	_ = later.Sub(epoch)
	_ = time.Date(2024, time.January, 1, 0, 0, 0, 0, time.UTC)
	return later
}

// sanctioned: an explicitly allowed timing site stays silent.
func sanctioned() time.Time {
	return time.Now() //sslint:allow detwallclock fixture-sanctioned timing site
}
