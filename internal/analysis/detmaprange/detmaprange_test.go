package detmaprange_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detmaprange"
)

func TestDetmaprange(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "maprange"), detmaprange.Analyzer)
}
