// Fixture for the detmaprange analyzer: order-dependent map-range bodies
// (float accumulation, appends, printing) are flagged; the sorted-keys
// idiom, per-key-slot accumulation, and associative integer sums are not.
package maprange

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates a float \(non-associative sum\)`
		sum += v
	}
	for _, v := range m { // want `accumulates a float \(non-associative sum\)`
		sum = sum + v
	}
	return sum
}

func appendsValues(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `appends to a slice that outlives the loop`
		out = append(out, v)
	}
	return out
}

func prints(m map[string]int) {
	for k := range m { // want `prints \(output order leaks map order\)`
		fmt.Println(k)
	}
}

// maps.Keys hands out the same randomized order as a direct range, so the
// iterator form of the bug is the same bug.
func iterForm(m map[string]float64) float64 {
	var sum float64
	for k := range maps.Keys(m) { // want `accumulates a float \(non-associative sum\)`
		sum += m[k]
	}
	return sum
}

// clean: the two-step sorted-keys idiom. The key-collection loop is
// recognized and exempt; the second loop ranges a slice, not a map.
func sortedIdiom(m map[string]float64) float64 {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// clean: the one-step stdlib spelling of the same idiom.
func sortedStdlib(m map[string]float64) float64 {
	var sum float64
	for _, k := range slices.Sorted(maps.Keys(m)) {
		sum += m[k]
	}
	return sum
}

// clean: per-key-slot accumulation touches an independent slot per
// iteration, so visit order cannot change any slot's result.
func perSlot(m map[string]float64, out map[string]float64) {
	for k, v := range m {
		out[k] += v
	}
}

// clean: integer addition is associative, so visit order is invisible.
func intSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// cellKey mirrors the spatial grid's bucket key (testbed.Grid).
type cellKey struct{ x, y int32 }

// clean: the spatial-grid query idiom — buckets are visited by computed
// key in a fixed row-major order over the query box, so there is no map
// range to leak iteration order, even though results are appended.
func gridQuery(buckets map[cellKey][]int32, x0, x1, y0, y1 int32) []int32 {
	var out []int32
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			out = append(out, buckets[cellKey{x, y}]...)
		}
	}
	return out
}

// clean: the grid-compaction idiom — ranging the bucket map is fine when
// each key fills its own computed slot of the dense table, because visit
// order cannot change what any slot ends up holding.
func gridCompact(buckets map[cellKey][]int32, w, h, minX, minY int64) [][]int32 {
	dense := make([][]int32, w*h)
	for k, b := range buckets {
		dense[(int64(k.y)-minY)*w+(int64(k.x)-minX)] = b
	}
	return dense
}

// sanctioned: an explicitly allowed order-dependent loop stays silent.
func sanctioned(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { //sslint:allow detmaprange fixture-sanctioned loop
		sum += v
	}
	return sum
}
