// Package detmaprange flags range-over-map loops whose bodies are
// iteration-order dependent — the exact bug class that broke fig15/16
// full-precision determinism (float bin sums taken in Go's randomized map
// order produce run-to-run ULP drift).
//
// A map-range body is order-dependent when it
//
//   - accumulates into a float variable declared outside the loop
//     (floating-point addition is not associative, so the sum depends on
//     visit order),
//   - appends non-key values to a slice declared outside the loop (the
//     result ordering leaks map order), or
//   - prints or records test output (fmt.Print*/Fprint*, testing.T
//     helpers, println).
//
// The sanctioned fix is the sorted-keys idiom: collect the keys, sort,
// then range over the sorted slice. The key-collection loop itself —
// a body that only appends the key variable — is recognized and exempt.
package detmaprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "detmaprange",
	Doc: "flag range-over-map loops that accumulate floats, append results, or " +
		"print: map iteration order is randomized, so such bodies break " +
		"byte-identical output; iterate sorted keys instead",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, isRange := n.(*ast.RangeStmt)
			if !isRange || !isMapRange(pass.TypesInfo, rs) {
				return true
			}
			if isKeyCollection(pass.TypesInfo, rs) {
				return true
			}
			if kind := orderDependentBody(pass, rs); kind != "" {
				pass.Reportf(rs.Pos(),
					"range over map %s %s: map order is randomized and the body is order-dependent; iterate sorted keys instead (the fig15/16 bug class)",
					exprLabel(rs.X), kind)
			}
			return true
		})
	}
	return nil
}

// isMapRange reports whether rs iterates a map, either directly or via
// the maps.Keys/Values/All iterators (same randomized order, so the same
// bug class — ranging slices.Sorted(maps.Keys(m)) is the sanctioned form).
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	if call, isCall := ast.Unparen(rs.X).(*ast.CallExpr); isCall {
		if pkg, name, resolved := framework.CalleePkgFunc(info, call); resolved && pkg == "maps" {
			switch name {
			case "Keys", "Values", "All":
				return true
			}
		}
	}
	tv, found := info.Types[rs.X]
	if !found || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isKeyCollection recognizes the first half of the sorted-keys idiom: a
// body that is exactly one `keys = append(keys, k)` of the key variable
// (no value variable consumed). That loop is order-insensitive once the
// slice is sorted, which the idiom does immediately after.
func isKeyCollection(info *types.Info, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, isAssign := rs.Body.List[0].(*ast.AssignStmt)
	if !isAssign || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, isCall := asg.Rhs[0].(*ast.CallExpr)
	if !isCall || len(call.Args) != 2 {
		return false
	}
	fn, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent {
		return false
	}
	if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin || fn.Name != "append" {
		return false
	}
	keyIdent, keyIsIdent := rs.Key.(*ast.Ident)
	argIdent, argIsIdent := ast.Unparen(call.Args[1]).(*ast.Ident)
	return keyIsIdent && argIsIdent &&
		info.Defs[keyIdent] != nil && info.Uses[argIdent] == info.Defs[keyIdent]
}

// orderDependentBody scans the loop body (including nested function
// literals, which run per-iteration) for order-dependent effects and
// returns a short description of the first one found, or "".
func orderDependentBody(pass *framework.Pass, rs *ast.RangeStmt) string {
	info := pass.TypesInfo
	kind := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if k := orderDependentAssign(info, rs, n); k != "" {
				kind = k
			}
		case *ast.CallExpr:
			if k := printLikeCall(info, n); k != "" {
				kind = k
			}
		}
		return kind == ""
	})
	return kind
}

// orderDependentAssign classifies float accumulation into, or appends
// onto, variables that outlive the loop body.
func orderDependentAssign(info *types.Info, rs *ast.RangeStmt, asg *ast.AssignStmt) string {
	switch asg.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(asg.Lhs) == 1 && isFloat(info, asg.Lhs[0]) &&
			!declaredWithin(info, asg.Lhs[0], rs.Body) && !perKeySlot(info, rs, asg.Lhs[0]) {
			return "accumulates a float (non-associative sum)"
		}
	case token.ASSIGN:
		for i, lhs := range asg.Lhs {
			if i >= len(asg.Rhs) {
				break
			}
			call, isCall := ast.Unparen(asg.Rhs[i]).(*ast.CallExpr)
			if !isCall {
				// x = x + v float accumulation spelled out longhand.
				if bin, isBin := ast.Unparen(asg.Rhs[i]).(*ast.BinaryExpr); isBin &&
					isFloat(info, lhs) && !declaredWithin(info, lhs, rs.Body) &&
					mentionsSameVar(info, bin, lhs) {
					return "accumulates a float (non-associative sum)"
				}
				continue
			}
			fn, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
			if !isIdent {
				continue
			}
			if _, isBuiltin := info.Uses[fn].(*types.Builtin); isBuiltin && fn.Name == "append" &&
				!declaredWithin(info, lhs, rs.Body) {
				return "appends to a slice that outlives the loop (result order leaks map order)"
			}
		}
	}
	return ""
}

// perKeySlot reports whether lhs is an index expression whose index uses a
// loop variable (out[k] += v): each iteration then touches its own slot,
// so accumulation order per slot is fixed and the loop is deterministic.
func perKeySlot(info *types.Info, rs *ast.RangeStmt, lhs ast.Expr) bool {
	idx, isIndex := ast.Unparen(lhs).(*ast.IndexExpr)
	if !isIndex {
		return false
	}
	loopVars := map[types.Object]bool{}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, isIdent := v.(*ast.Ident); isIdent && info.Defs[id] != nil {
			loopVars[info.Defs[id]] = true
		}
	}
	uses := false
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		if id, isIdent := n.(*ast.Ident); isIdent && loopVars[info.Uses[id]] {
			uses = true
		}
		return !uses
	})
	return uses
}

// printLikeCall reports calls that emit output: fmt printing, the builtin
// print/println pair, and testing.T/B/F log-and-fail helpers.
func printLikeCall(info *types.Info, call *ast.CallExpr) string {
	if pkg, name, resolved := framework.CalleePkgFunc(info, call); resolved && pkg == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "prints (output order leaks map order)"
		}
	}
	if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && (b.Name() == "print" || b.Name() == "println") {
			return "prints (output order leaks map order)"
		}
	}
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if recvIsTesting(info, sel) {
			switch sel.Sel.Name {
			case "Log", "Logf", "Error", "Errorf", "Fatal", "Fatalf", "Skip", "Skipf", "Run":
				return "drives testing output/subtests (ordering leaks map order)"
			}
		}
	}
	return ""
}

// recvIsTesting reports whether sel's receiver is a *testing.T/B/F.
func recvIsTesting(info *types.Info, sel *ast.SelectorExpr) bool {
	tv, found := info.Types[sel.X]
	if !found || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "testing"
}

// isFloat reports whether expr has floating-point (or complex) type.
func isFloat(info *types.Info, expr ast.Expr) bool {
	tv, found := info.Types[expr]
	if !found || tv.Type == nil {
		return false
	}
	basic, isBasic := tv.Type.Underlying().(*types.Basic)
	return isBasic && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

// declaredWithin reports whether expr is an identifier whose declaration
// sits inside node (a body-local variable, whose per-iteration value
// cannot leak iteration order out of the loop).
func declaredWithin(info *types.Info, expr ast.Expr, node ast.Node) bool {
	id, isIdent := ast.Unparen(expr).(*ast.Ident)
	if !isIdent {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// mentionsSameVar reports whether bin references the same object as lhs —
// the x = x + v accumulation shape.
func mentionsSameVar(info *types.Info, bin *ast.BinaryExpr, lhs ast.Expr) bool {
	lhsID, isIdent := ast.Unparen(lhs).(*ast.Ident)
	if !isIdent {
		return false
	}
	target := info.Uses[lhsID]
	if target == nil {
		target = info.Defs[lhsID]
	}
	if target == nil {
		return false
	}
	same := false
	ast.Inspect(bin, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == target {
			same = true
		}
		return !same
	})
	return same
}

// exprLabel renders a short label for the ranged expression.
func exprLabel(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if id, isIdent := e.X.(*ast.Ident); isIdent {
			return id.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	}
	return "expression"
}
