// Package sslint assembles the determinism-contract analyzers into one
// suite: it runs the analyzers over a type-checked package, applies the
// //sslint:allow suppression directives, and folds directive defects
// (malformed, unknown check, unused) into the findings under the
// pseudo-check "sslint". docs/ARCHITECTURE.md maps each analyzer to the
// invariant it guards.
package sslint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/detgoroutine"
	"repro/internal/analysis/detmaprange"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/detwallclock"
	"repro/internal/analysis/directive"
	"repro/internal/analysis/framework"
)

// DirectiveCheck is the pseudo-check name under which defects in the
// suppression directives themselves are reported.
const DirectiveCheck = "sslint"

// Analyzers returns the full suite in reporting order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		detwallclock.Analyzer,
		detrand.Analyzer,
		detmaprange.Analyzer,
		detgoroutine.Analyzer,
	}
}

// KnownChecks is the set of valid //sslint:allow check names — always the
// full suite, so a partial run never misreports a valid name as unknown.
func KnownChecks() map[string]bool {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	return known
}

// Finding is one post-suppression diagnostic, positioned and attributed.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Check)
}

// Run executes the given analyzers over one type-checked package and
// returns the surviving findings: analyzer diagnostics not sanctioned by
// an //sslint:allow directive, plus directive problems and unused
// suppressions. Findings come back sorted by position for deterministic
// output (this suite practices what it preaches).
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*framework.Analyzer) ([]Finding, error) {
	dirs := directive.Collect(fset, files, KnownChecks())
	ran := map[string]bool{}
	var findings []Finding
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d framework.Diagnostic) {
				pos := fset.Position(d.Pos)
				if dirs.Suppresses(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Pos: pos, Check: a.Name, Message: d.Message})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	for _, p := range dirs.Problems() {
		findings = append(findings, Finding{Pos: p.Pos, Check: DirectiveCheck, Message: p.Message})
	}
	for _, d := range dirs.Unused(ran) {
		findings = append(findings, Finding{Pos: d.Pos, Check: DirectiveCheck,
			Message: fmt.Sprintf("unused suppression: no %s diagnostic on the sanctioned line (stale allow widens the allowlist silently — delete it)", d.Check)})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return findings, nil
}
