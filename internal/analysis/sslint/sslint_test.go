package sslint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis/load"
	"repro/internal/analysis/sslint"
)

// check type-checks import-free sources (filename -> src) and runs the
// suite over them. detmaprange needs no imports, which keeps these tests
// free of export-data plumbing.
func check(t *testing.T, sources map[string]string) []sslint.Finding {
	t.Helper()
	fset := token.NewFileSet()
	var names []string
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, sources[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := load.NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, files, info)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := sslint.Run(fset, files, pkg, info, sslint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

const orderDependent = `package p

func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
`

func TestFindingSurvivesWithoutDirective(t *testing.T) {
	findings := check(t, map[string]string{"a.go": orderDependent})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Check != "detmaprange" || f.Pos.Line != 5 {
		t.Errorf("finding = %v; want a detmaprange hit on line 5", f)
	}
	if !strings.Contains(f.String(), "[detmaprange]") {
		t.Errorf("String() = %q; want the check name in brackets", f.String())
	}
}

func TestDirectiveSuppressesFinding(t *testing.T) {
	findings := check(t, map[string]string{"a.go": `package p

func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { //sslint:allow detmaprange sanctioned in this test
		s += v
	}
	return s
}
`})
	if len(findings) != 0 {
		t.Fatalf("suppressed finding leaked: %v", findings)
	}
}

func TestUnusedDirectiveReported(t *testing.T) {
	findings := check(t, map[string]string{"a.go": `package p

var x = 1 //sslint:allow detmaprange nothing here trips the check
`})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Check != sslint.DirectiveCheck || !strings.Contains(f.Message, "unused suppression") {
		t.Errorf("finding = %v; want an unused-suppression report under %q", f, sslint.DirectiveCheck)
	}
}

func TestDirectiveProblemsFoldedIn(t *testing.T) {
	findings := check(t, map[string]string{"a.go": `package p

var x = 1 //sslint:allow detclock not a real check name
`})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Check != sslint.DirectiveCheck || !strings.Contains(f.Message, `unknown check "detclock"`) {
		t.Errorf("finding = %v; want an unknown-check report under %q", f, sslint.DirectiveCheck)
	}
}

func TestFindingsSortedByPosition(t *testing.T) {
	// Two files, hits in reverse lexical order of discovery, plus two hits
	// at different lines in the same file.
	findings := check(t, map[string]string{
		"b.go": orderDependent,
		"a.go": `package p

func sum2(m map[string]float64) (float64, float64) {
	var s, u float64
	for _, v := range m {
		s += v
	}
	for _, v := range m {
		u += v
	}
	return s, u
}
`,
	})
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(findings), findings)
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("findings out of order: %v before %v", a, b)
		}
	}
	if findings[0].Pos.Filename != "a.go" || findings[2].Pos.Filename != "b.go" {
		t.Errorf("file order wrong: %v", findings)
	}
}

func TestKnownChecksCoversSuite(t *testing.T) {
	known := sslint.KnownChecks()
	for _, a := range sslint.Analyzers() {
		if !known[a.Name] {
			t.Errorf("analyzer %q missing from KnownChecks", a.Name)
		}
	}
	if len(known) != len(sslint.Analyzers()) {
		t.Errorf("KnownChecks has %d entries, want %d", len(known), len(sslint.Analyzers()))
	}
}
