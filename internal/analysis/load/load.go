// Package load type-checks Go packages for the sslint suite without
// golang.org/x/tools (unavailable in this repo's offline build image). It
// shells out to `go list -test -deps -export -json`, which compiles export
// data for every dependency into the build cache, then parses each target
// package from source and type-checks it with the standard library's gc
// export-data importer pointed at those files.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed, type-checked target package.
type Package struct {
	ID      string // go list ImportPath, e.g. "repro/internal/phy [repro/internal/phy.test]"
	PkgPath string // compiled import path, e.g. "repro/internal/phy"
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg mirrors the `go list -json` fields the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Packages loads, parses, and type-checks the packages matching patterns
// (run from dir), including their test variants. Dependencies are resolved
// from `go list -export` build-cache export data, so only the analyzed
// packages themselves are parsed from source.
func Packages(dir string, patterns []string) ([]*Package, error) {
	pkgs, err := goList(dir, true, patterns)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	shadowed := map[string]bool{} // base packages superseded by a test variant
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.ForTest != "" && !strings.HasSuffix(p.ImportPath, ".test") {
			shadowed[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var out []*Package
	for _, p := range pkgs {
		if !isTarget(p, shadowed) {
			continue
		}
		tp, err := typecheck(fset, p, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, tp)
	}
	return out, nil
}

// isTarget decides whether a go list entry is analyzed: module packages
// named on the command line, preferring the test variant (whose GoFiles
// are a superset including _test.go files) over the plain build, and
// skipping the synthesized ".test" main packages.
func isTarget(p *listPkg, shadowed map[string]bool) bool {
	if p.Standard || p.DepOnly || len(p.GoFiles) == 0 {
		return false
	}
	if strings.HasSuffix(p.ImportPath, ".test") {
		return false // generated test main, lives in the build cache
	}
	if p.ForTest == "" && shadowed[p.ImportPath] {
		return false // analyzed via its test variant instead
	}
	return true
}

// goList runs `go list -deps -export -json` (plus -test when asked) and
// decodes the JSON stream.
func goList(dir string, includeTests bool, patterns []string) ([]*listPkg, error) {
	args := []string{"list"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, "-deps", "-export", "-json", "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(outPipe)
	for {
		p := &listPkg{}
		if err := dec.Decode(p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("go list -json decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
	}
	return pkgs, nil
}

// typecheck parses one target package's files and type-checks them against
// the export data of its dependencies.
func typecheck(fset *token.FileSet, p *listPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range append(append([]string{}, p.GoFiles...), p.CgoFiles...) {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkgPath := p.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	info := NewInfo()
	conf := types.Config{
		Importer: ExportImporter(fset, p.ImportMap, exports),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
	}
	return &Package{ID: p.ImportPath, PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo allocates the types.Info maps the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// ExportImporter returns a types.Importer that resolves import paths
// (after applying importMap, the per-package test-variant rewrites) to gc
// export-data files. Each call returns a fresh importer so different
// import maps never share a package cache.
func ExportImporter(fset *token.FileSet, importMap map[string]string, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// DepExports runs `go list -deps -export -json` over the given import
// paths (typically standard-library packages a test fixture needs) and
// returns the export-data file map. Used by test harnesses that type-check
// synthetic sources.
func DepExports(dir string, paths []string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	pkgs, err := goList(dir, false, paths)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
