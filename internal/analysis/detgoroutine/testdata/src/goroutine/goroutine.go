// Fixture for the detgoroutine analyzer: go statements, selects, and
// sync/sync.atomic references outside internal/engine are flagged; a
// directive-sanctioned memoization site is not. The companion fixture
// under testdata/src/internal/engine proves the sanctioned package is
// exempt wholesale.
package goroutine

import (
	"sync"
	"sync/atomic"
)

func spawns(work func()) {
	go work() // want `go statement outside internal/engine`
	select {} // want `select statement outside internal/engine`
}

func locks() {
	var mu sync.Mutex // want `sync primitive \(sync\.Mutex\) outside internal/engine`
	mu.Lock()
	defer mu.Unlock()
	var n atomic.Int64 // want `sync primitive \(atomic\.Int64\) outside internal/engine`
	n.Add(1)
}

// sanctioned: a value-deterministic memoization cache, explicitly allowed.
//
//sslint:allow detgoroutine fixture-sanctioned value-deterministic cache
var cache sync.Map

func cached(k string, f func() int) int {
	if v, ok := cache.Load(k); ok {
		return v.(int)
	}
	v := f()
	cache.Store(k, v)
	return v
}
