// Fixture: internal/engine is the sanctioned concurrency site, so the
// detgoroutine analyzer must stay silent here despite goroutines, sync
// primitives, and a select.
package engine

import (
	"sync"
	"sync/atomic"
)

func pool(n int, fn func(i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func first(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
