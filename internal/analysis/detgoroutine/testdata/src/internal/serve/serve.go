// Fixture: internal/serve is the job-service concurrency site, sanctioned
// alongside internal/engine, so the detgoroutine analyzer must stay
// silent here despite goroutines, sync primitives, and a select.
package serve

import (
	"sync"
	"time"
)

func runJob(render func() []byte, timeout time.Duration) ([]byte, bool) {
	var mu sync.Mutex
	var out []byte
	ch := make(chan struct{})
	go func() {
		b := render()
		mu.Lock()
		out = b
		mu.Unlock()
		close(ch)
	}()
	select {
	case <-ch:
		mu.Lock()
		defer mu.Unlock()
		return out, true
	case <-time.After(timeout):
		return nil, false
	}
}
