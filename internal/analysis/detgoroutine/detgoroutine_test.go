package detgoroutine_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detgoroutine"
)

func TestDetgoroutine(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "goroutine"), detgoroutine.Analyzer)
}

func TestEnginePackageIsSanctioned(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "internal", "engine"), detgoroutine.Analyzer)
}

func TestServePackageIsSanctioned(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "internal", "serve"), detgoroutine.Analyzer)
}
