// Package detgoroutine confines concurrency to internal/engine, the one
// package sanctioned to spawn goroutines (its order-preserving worker pool
// is what makes parallel trials reproducible). Everywhere else, a `go`
// statement, a `select`, or a sync/sync.atomic primitive is a latent
// scheduling dependency: even when the code is race-free, completion order
// can leak into float sums, slice ordering, or RNG draw order and break
// the byte-identical-output contract.
//
// The handful of deliberate caches outside engine (dsp's FFT plan table,
// modem's constellation cache) are value-deterministic memoizations and
// carry //sslint:allow detgoroutine directives explaining why.
package detgoroutine

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "detgoroutine",
	Doc: "flag go statements, select statements, and sync/sync.atomic usage outside " +
		"internal/engine, the single sanctioned concurrency site; scheduling order " +
		"anywhere else can leak into experiment output",
	Run: run,
}

// sanctioned reports whether pkgPath is the concurrency-sanctioned engine
// package (module-qualified in the real repo, bare in test fixtures).
func sanctioned(pkgPath string) bool {
	return pkgPath == "internal/engine" || strings.HasSuffix(pkgPath, "/internal/engine")
}

func run(pass *framework.Pass) error {
	if sanctioned(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement outside internal/engine: goroutine scheduling can leak into experiment output; route parallelism through the engine worker pool")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(),
					"select statement outside internal/engine: channel readiness order is scheduler-dependent")
			case *ast.SelectorExpr:
				if id, isIdent := n.X.(*ast.Ident); isIdent {
					if pn, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
						switch pn.Imported().Path() {
						case "sync", "sync/atomic":
							pass.Reportf(n.Pos(),
								"sync primitive (%s.%s) outside internal/engine, the single sanctioned concurrency site", pn.Imported().Name(), n.Sel.Name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
