// Package detgoroutine confines concurrency to the two sanctioned
// packages: internal/engine, whose order-preserving worker pool is what
// makes parallel trials reproducible, and internal/serve, the job-service
// layer whose goroutines carry whole jobs (queue consumers, render
// spawns, timeout selects) and never touch simulation state — a job's
// output bytes come out of the engine byte-identical regardless of how
// the service schedules it. Everywhere else, a `go` statement, a
// `select`, or a sync/sync.atomic primitive is a latent scheduling
// dependency: even when the code is race-free, completion order can leak
// into float sums, slice ordering, or RNG draw order and break the
// byte-identical-output contract.
//
// The handful of deliberate caches outside the sanctioned packages (dsp's
// FFT plan table, modem's constellation cache, netsim's decode-threshold
// memo) are value-deterministic memoizations and carry //sslint:allow
// detgoroutine directives explaining why.
package detgoroutine

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "detgoroutine",
	Doc: "flag go statements, select statements, and sync/sync.atomic usage outside " +
		"internal/engine and internal/serve, the sanctioned concurrency sites; " +
		"scheduling order anywhere else can leak into experiment output",
	Run: run,
}

// sanctioned reports whether pkgPath is one of the concurrency-sanctioned
// packages (module-qualified in the real repo, bare in test fixtures):
// internal/engine (the worker pool) and internal/serve (the job service).
func sanctioned(pkgPath string) bool {
	for _, p := range []string{"internal/engine", "internal/serve"} {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if sanctioned(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement outside internal/engine and internal/serve: goroutine scheduling can leak into experiment output; route parallelism through the engine worker pool")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(),
					"select statement outside internal/engine and internal/serve: channel readiness order is scheduler-dependent")
			case *ast.SelectorExpr:
				if id, isIdent := n.X.(*ast.Ident); isIdent {
					if pn, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
						switch pn.Imported().Path() {
						case "sync", "sync/atomic":
							pass.Reportf(n.Pos(),
								"sync primitive (%s.%s) outside internal/engine and internal/serve, the sanctioned concurrency sites", pn.Imported().Name(), n.Sel.Name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
