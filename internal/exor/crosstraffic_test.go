package exor

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestCrossTrafficDegradesPrimaryThroughput(t *testing.T) {
	// The routed flow shares the medium with cross flows: its throughput
	// must drop versus an uncontended run, and the cross flows must move
	// traffic of their own.
	rng := rand.New(rand.NewSource(21))
	topo := paperTopology(rng, 1)
	sim := newSim(t, rng, topo, 6)
	const pkts = 120

	alone, _ := sim.RunWithCross(rand.New(rand.NewSource(30)), SinglePath, pkts, nil)
	cross := []CrossFlow{{From: 1, To: 2, Packets: 200}, {From: 3, To: 2, Packets: 200}}
	loaded, crossRes := sim.RunWithCross(rand.New(rand.NewSource(30)), SinglePath, pkts, cross)

	if alone.Delivered == 0 || loaded.Delivered == 0 {
		t.Fatalf("deliveries alone=%d loaded=%d", alone.Delivered, loaded.Delivered)
	}
	if loaded.ThroughputBps >= alone.ThroughputBps {
		t.Fatalf("cross traffic did not cost throughput: %.0f vs %.0f bps",
			loaded.ThroughputBps, alone.ThroughputBps)
	}
	if len(crossRes) != 2 {
		t.Fatalf("got %d cross results", len(crossRes))
	}
	for i, cr := range crossRes {
		if cr.Delivered == 0 {
			t.Fatalf("cross flow %d delivered nothing", i)
		}
		if cr.AirTime != loaded.AirTime {
			t.Fatalf("cross flow %d airtime %.4f != shared elapsed %.4f", i, cr.AirTime, loaded.AirTime)
		}
	}
}

func TestCrossTrafficDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	topo := paperTopology(rng, 1)
	sim := newSim(t, rng, topo, 6)
	cross := []CrossFlow{{From: 1, To: 3, Packets: 80}}
	run := func() (Result, []Result) {
		return sim.RunWithCross(rand.New(rand.NewSource(31)), ExORSourceSync, 60, cross)
	}
	a, ca := run()
	b, cb := run()
	// Result holds a slice (RateCorruption), so compare rendered values.
	if fmt.Sprintf("%+v%+v", a, ca[0]) != fmt.Sprintf("%+v%+v", b, cb[0]) {
		t.Fatalf("nondeterministic: %+v/%+v vs %+v/%+v", a, ca[0], b, cb[0])
	}
}
