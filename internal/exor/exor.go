// Package exor implements opportunistic routing in the style of ExOR
// (Biswas & Morris) and its SourceSync extension (paper §7.2): batch-based
// forwarding where any node that overhears a packet may forward it, ordered
// by ETX distance to the destination; with SourceSync, every co-forwarder
// that overheard both the packet and the lead forwarder's sync header joins
// the transmission, adding sender diversity on the hop toward the
// destination. A traditional single-path scheme over the same links serves
// as the baseline.
//
// The package is a thin scenario layer: topology, delivery draws, and all
// medium accounting (DCF timing, ARQ, the virtual clock) live in
// internal/netsim — each routing scheme is expressed as a netsim flow, so
// runs can share the medium with cross-traffic flows (RunWithCross). Cross
// flows carry their endpoints' testbed positions; with Sim.CSRangeM set
// they contend only within carrier-sense range of each other (and, with
// CaptureDB set, can corrupt each other as hidden terminals when their
// concurrent frames overlap at a receiver), while the routed flow — whose
// transmitter moves hop by hop — stays unplaced and contends with
// everyone.
package exor

import (
	"math/rand"

	"repro/internal/etx"
	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/netsim"
	"repro/internal/samplerate"
	"repro/internal/sls"
	"repro/internal/testbed"
)

// Topology is a set of placed nodes with static pairwise links. Node 0 is
// the source; node N-1 the destination. The link and delivery model is
// netsim's; this wrapper adds the routing measurement phase.
type Topology struct {
	netsim.Topology
}

// NewTopology places the given points in an environment and draws every
// directed link once (static shadowing).
func NewTopology(rng *rand.Rand, env *testbed.Testbed, pts []testbed.Point) *Topology {
	return &Topology{Topology: *netsim.NewTopology(rng, env, pts)}
}

// Measured holds the link-measurement products all schemes share.
type Measured struct {
	Delivery [][]float64 // delivery probability per directed link
	Graph    *etx.Graph
	DistTo   []float64 // ETX distance to the destination per node
}

// Measure runs the measurement phase: per-link delivery probabilities, the
// ETX graph (links with delivery < minDelivery pruned), and distances to
// the destination.
func (t *Topology) Measure(rng *rand.Rand, rate modem.Rate, payload, probes int, minDelivery float64) *Measured {
	n := t.N()
	del := make([][]float64, n)
	for i := range del {
		del[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				del[i][j] = t.DeliveryProb(rng, i, j, rate, payload, probes)
			}
		}
	}
	g := etx.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if del[i][j] < minDelivery || del[j][i] < minDelivery {
				continue
			}
			g.AddLink(i, j, etx.LinkETX(del[i][j], del[j][i]))
		}
	}
	return &Measured{Delivery: del, Graph: g, DistTo: g.DistancesTo(n - 1)}
}

// Scheme selects the forwarding protocol to simulate.
type Scheme int

// Supported schemes.
const (
	SinglePath Scheme = iota
	ExOR
	ExORSourceSync
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SinglePath:
		return "single-path"
	case ExOR:
		return "ExOR"
	case ExORSourceSync:
		return "ExOR+SourceSync"
	}
	return "unknown"
}

// Sim runs packets from node 0 to node N-1 and accounts medium time.
type Sim struct {
	Topo    *Topology
	Meas    *Measured
	Mac     mac.Params
	Rate    modem.Rate
	Payload int
	// MaxTxPerPacket bounds the transmissions charged to one packet before
	// it is declared lost (progress safeguard).
	MaxTxPerPacket int
	// CSRangeM is the carrier-sense range between transmitters, in meters;
	// <= 0 (the default) keeps the classic single collision domain. When
	// positive, cross flows carry their endpoints' topology positions and
	// contend only with transmitters in range. The routed flow's
	// transmitter moves hop by hop, so it stays unplaced and contends with
	// everyone.
	CSRangeM float64
	// CaptureDB is the SINR threshold of the legacy binary interference
	// model; 0 disables capture. Ignored when Model is set.
	CaptureDB float64
	// Model selects the netsim interference model settling interfered
	// frames (e.g. netsim.NewRateAware over the cross flows' rate table);
	// nil falls back to the binary CaptureDB gate.
	Model netsim.InterferenceModel
	// AdaptCross gives every cross flow a SampleRate controller over the
	// standard rate table instead of the simulation's fixed Rate, so rate
	// adaptation reacts to contention and interference-degraded loss.
	AdaptCross bool
}

// Result is the outcome of a scheme simulation. AirTime is the virtual
// time the run occupied on the shared medium (with cross traffic, every
// flow shares the same elapsed time).
type Result struct {
	ThroughputBps float64
	Delivered     int
	Transmissions int
	// HiddenLosses counts attempts corrupted by concurrent out-of-range
	// transmitters (hidden terminals); nonzero only for placed cross flows
	// under a finite CSRangeM with an interference model configured.
	HiddenLosses int
	// Degraded counts attempts whose delivery draw ran at an
	// interference-degraded effective SNR (rate-aware model only).
	Degraded int
	// RateCorruption[r] is the interference model's per-rate outcome
	// tally for this flow (rate index r of the flow's own rate table:
	// the standard rates under AdaptCross, index 0 otherwise).
	RateCorruption []netsim.RateCorruption
	AirTime        float64
}

// CrossFlow describes one contending single-hop stream riding on the same
// medium as the routed flow: Packets unicast frames From -> To at the
// simulation's rate, with normal DCF ARQ.
type CrossFlow struct {
	From, To int
	Packets  int
}

// Run simulates nPackets packets under the given scheme.
func (s *Sim) Run(rng *rand.Rand, scheme Scheme, nPackets int) Result {
	res, _ := s.RunWithCross(rng, scheme, nPackets, nil)
	return res
}

// RunWithCross simulates nPackets packets under the given scheme while the
// cross flows contend for the same medium. It returns the routed flow's
// result and one result per cross flow; every throughput is measured over
// the run's shared virtual time.
func (s *Sim) RunWithCross(rng *rand.Rand, scheme Scheme, nPackets int, cross []CrossFlow) (Result, []Result) {
	if s.MaxTxPerPacket == 0 {
		s.MaxTxPerPacket = 40
	}
	sim := netsim.New(s.Mac, rng)
	sim.CSRangeM = s.CSRangeM
	sim.CaptureDB = s.CaptureDB
	sim.Model = s.Model
	sim.Env = s.Topo.Env

	// delivered counts end-to-end packets; a netsim "delivered frame" is
	// one transmission or one hop, not one routed packet.
	var primary *netsim.Flow
	var delivered *int
	switch scheme {
	case SinglePath:
		primary, delivered = s.singlePathFlow(nPackets)
	case ExOR, ExORSourceSync:
		primary, delivered = s.exorFlow(nPackets, scheme == ExORSourceSync)
	default:
		panic("exor: unknown scheme")
	}
	sim.AddFlow(primary)

	crossFlows := make([]*netsim.Flow, len(cross))
	for i, cf := range cross {
		crossFlows[i] = sim.AddFlow(s.crossFlow(cf))
	}

	sim.Run()

	elapsed := sim.Now()
	mk := func(f *netsim.Flow, deliveredPkts int) Result {
		r := Result{
			Delivered:      deliveredPkts,
			Transmissions:  f.Attempts,
			HiddenLosses:   f.HiddenLosses,
			RateCorruption: f.RateCorruption,
			AirTime:        elapsed,
		}
		for _, rc := range f.RateCorruption {
			r.Degraded += rc.Degraded
		}
		if elapsed > 0 {
			r.ThroughputBps = float64(deliveredPkts*s.Payload*8) / elapsed
		}
		return r
	}
	// The primary's delivery count is end-to-end packets, not netsim
	// frames; a cross flow's frames are its packets.
	res := mk(primary, *delivered)
	crossRes := make([]Result, len(crossFlows))
	for i, f := range crossFlows {
		crossRes[i] = mk(f, f.Delivered)
	}
	return res, crossRes
}

// crossFlow builds one contending single-hop stream: Packets unicast
// frames From -> To with normal DCF ARQ, placed at its endpoints'
// positions so spatial reuse and interference apply. With AdaptCross the
// flow runs its own SampleRate controller over the standard rate table —
// rate adaptation reacting to contention and interference-degraded loss —
// otherwise every frame goes at the simulation's fixed Rate.
func (s *Sim) crossFlow(cf CrossFlow) *netsim.Flow {
	link := s.Topo.Links[cf.From][cf.To]
	remaining := cf.Packets
	f := &netsim.Flow{
		Name:  "cross",
		Acked: true,
		Radio: &netsim.Radio{
			TxPos: s.Topo.Positions[cf.From],
			RxPos: s.Topo.Positions[cf.To],
			SNRdB: link.SNRdB,
		},
		HasTraffic: func() bool { return remaining > 0 },
		Done:       func(_ int, _ bool, _ float64) { remaining-- },
	}
	if !s.AdaptCross {
		ft := s.Mac.FrameDuration(s.Rate, s.Payload)
		f.FrameTime = func(int) float64 { return ft }
		f.Deliver = func(rng *rand.Rand, _ int, ix netsim.Interference) bool {
			return netsim.LinkDeliverScaled(rng, link, s.Rate, s.Payload, ix.SNRScale)
		}
		return f
	}
	rates := modem.StandardRates()
	ft := make([]float64, len(rates))
	for i, r := range rates {
		ft[i] = s.Mac.FrameDuration(r, s.Payload)
	}
	sr := samplerate.New(ft)
	f.Prepare = func(rng *rand.Rand) int {
		idx, _ := sr.Pick(rng)
		return idx
	}
	f.FrameTime = func(i int) float64 { return ft[i] }
	f.Deliver = func(rng *rand.Rand, i int, ix netsim.Interference) bool {
		return netsim.LinkDeliverScaled(rng, link, sr.Rate(i), s.Payload, ix.SNRScale)
	}
	f.Done = func(i int, delivered bool, air float64) {
		remaining--
		sr.Update(i, delivered, air)
	}
	return f
}

// singlePathFlow expresses min-ETX routing with per-hop ARQ as one flow:
// each netsim frame is one hop; a hop that exhausts its retries loses the
// packet. The returned counter tracks end-to-end deliveries.
func (s *Sim) singlePathFlow(nPackets int) (*netsim.Flow, *int) {
	n := s.Topo.N()
	path, _ := s.Meas.Graph.ShortestPath(0, n-1)
	remaining := nPackets
	if path == nil {
		remaining = 0
	}
	hop := 0
	e2e := new(int)
	ft := s.Mac.FrameDuration(s.Rate, s.Payload)
	f := &netsim.Flow{
		Name:       "single-path",
		Acked:      true,
		HasTraffic: func() bool { return remaining > 0 },
		FrameTime:  func(int) float64 { return ft },
	}
	// The routed flow is unplaced (its transmitter moves hop by hop), so
	// it is never interfered: the context stays clean and is ignored.
	f.Deliver = func(rng *rand.Rand, _ int, _ netsim.Interference) bool {
		return s.Topo.Deliver(rng, path[hop], path[hop+1], s.Rate, s.Payload)
	}
	f.Done = func(_ int, delivered bool, _ float64) {
		if delivered {
			hop++
			if hop+1 >= len(path) {
				*e2e++
				remaining--
				hop = 0
			}
			return
		}
		// Hop exhausted its retries: the packet is lost.
		remaining--
		hop = 0
	}
	return f, e2e
}

// exorFlow expresses opportunistic forwarding as one unacknowledged flow:
// each netsim frame is one (possibly joint) broadcast by the holder closest
// to the destination; receptions update the holder set, and the packet
// completes when the destination holds it or the transmission cap hits.
func (s *Sim) exorFlow(nPackets int, sourceSync bool) (*netsim.Flow, *int) {
	n := s.Topo.N()
	dst := n - 1
	dist := s.Meas.DistTo
	remaining := nPackets
	if dist[0] == etx.Inf {
		remaining = 0
	}

	// Precompute the joint-frame airtime: co-forwarder count varies per
	// transmission; index by number of co-senders. The CP increase comes
	// from the multi-receiver LP over the topology's propagation delays.
	cpInc := s.cpIncrease()
	jointFT := make([]float64, n)
	jointFT[0] = s.Mac.FrameDuration(s.Rate, s.Payload)
	for k := 1; k < n; k++ {
		jointFT[k] = s.Mac.JointFrameDuration(s.Rate, s.Payload, k, s.Mac.Cfg.CPLen+cpInc)
	}

	var holders map[int]bool
	var senders []int
	tx := 0
	e2e := new(int)
	f := &netsim.Flow{
		Name:       "exor",
		Acked:      false, // broadcasts carry no ACK; progress is overheard
		HasTraffic: func() bool { return remaining > 0 },
	}
	f.Prepare = func(rng *rand.Rand) int {
		if holders == nil {
			holders = map[int]bool{0: true}
			tx = 0
		}
		lead := bestHolder(holders, dist)
		// Assemble the joint sender set. Iterate nodes in index order — map
		// order would randomize RNG consumption and break reproducibility.
		senders = senders[:0]
		senders = append(senders, lead)
		if sourceSync {
			for v := 0; v < n; v++ {
				if !holders[v] || v == lead || dist[v] == etx.Inf {
					continue
				}
				// A co-forwarder joins if it overhears the sync header
				// (short, robust: use the measured delivery probability as
				// its reception likelihood).
				if rng.Float64() < s.Meas.Delivery[lead][v] {
					senders = append(senders, v)
				}
			}
		}
		return 0
	}
	f.FrameTime = func(int) float64 { return jointFT[len(senders)-1] }
	f.Deliver = func(rng *rand.Rand, _ int, _ netsim.Interference) bool {
		lead := senders[0]
		// Receptions at every node closer to the destination than the lead
		// (the forwarder set for this transmission).
		for v := 0; v < n; v++ {
			if holders[v] || dist[v] >= dist[lead] {
				continue
			}
			if s.Topo.DeliverJoint(rng, senders, v, s.Rate, s.Payload) {
				holders[v] = true
			}
		}
		return holders[dst]
	}
	f.Done = func(_ int, delivered bool, _ float64) {
		tx++
		if delivered {
			*e2e++
			remaining--
			holders = nil
			return
		}
		if tx >= s.MaxTxPerPacket {
			remaining--
			holders = nil
		}
	}
	return f, e2e
}

// bestHolder returns the holder with minimum ETX distance to the
// destination (excluding unreachable nodes), or -1. Ties break toward the
// lowest node index so runs are reproducible.
func bestHolder(holders map[int]bool, dist []float64) int {
	best, bestD := -1, etx.Inf
	for v := 0; v < len(dist); v++ {
		if holders[v] && dist[v] < bestD {
			best, bestD = v, dist[v]
		}
	}
	return best
}

// cpIncrease runs the SLS multi-receiver optimization over the topology's
// propagation delays, taking all relays as co-senders and all non-source
// nodes as potential receivers, and returns the worst-case CP increase in
// samples (paper §4.6). Indoors this is small (delays are sub-sample at
// 20 MHz) but it is computed, not assumed.
func (s *Sim) cpIncrease() int {
	n := s.Topo.N()
	if n < 3 {
		return 0
	}
	// Lead: source. Co-senders: all relays. Receivers: relays + dst.
	var rxs []int
	for v := 1; v < n; v++ {
		rxs = append(rxs, v)
	}
	var tLead []float64
	var tCo [][]float64
	for _, rx := range rxs {
		tLead = append(tLead, s.propDelay(0, rx))
	}
	for co := 1; co < n-1; co++ {
		row := make([]float64, len(rxs))
		for k, rx := range rxs {
			row[k] = s.propDelay(co, rx)
		}
		tCo = append(tCo, row)
	}
	_, maxMis, err := sls.MultiReceiverWaits(tLead, tCo)
	if err != nil {
		return 2 // conservative fallback
	}
	return sls.CPIncreaseSamples(maxMis)
}

func (s *Sim) propDelay(i, j int) float64 {
	if i == j {
		return 0
	}
	return s.Topo.Links[i][j].PropDelaySamples()
}
