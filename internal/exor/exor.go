// Package exor implements opportunistic routing in the style of ExOR
// (Biswas & Morris) and its SourceSync extension (paper §7.2): batch-based
// forwarding where any node that overhears a packet may forward it, ordered
// by ETX distance to the destination; with SourceSync, every co-forwarder
// that overheard both the packet and the lead forwarder's sync header joins
// the transmission, adding sender diversity on the hop toward the
// destination. A traditional single-path scheme over the same links serves
// as the baseline.
package exor

import (
	"math/rand"

	"repro/internal/etx"
	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/permodel"
	"repro/internal/sls"
	"repro/internal/testbed"
)

// Topology is a set of placed nodes with static pairwise links. Node 0 is
// the source; node N-1 the destination.
type Topology struct {
	Positions []testbed.Point
	Links     [][]testbed.Link // directed: Links[i][j] is i -> j
	Env       *testbed.Testbed
}

// NewTopology places the given points in an environment and draws every
// directed link once (static shadowing).
func NewTopology(rng *rand.Rand, env *testbed.Testbed, pts []testbed.Point) *Topology {
	n := len(pts)
	links := make([][]testbed.Link, n)
	for i := 0; i < n; i++ {
		links[i] = make([]testbed.Link, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			links[i][j] = env.NewLink(rng, pts[i], pts[j])
		}
	}
	// Make links reciprocal in average SNR (same shadowing both ways), as
	// physical channels are.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			links[j][i] = links[i][j]
		}
	}
	return &Topology{Positions: pts, Links: links, Env: env}
}

// N returns the number of nodes.
func (t *Topology) N() int { return len(t.Positions) }

// DeliveryProb estimates the delivery probability of link i->j at the given
// rate and payload by Monte-Carlo over fading draws — the "measurement
// phase" every scheme runs before routing.
func (t *Topology) DeliveryProb(rng *rand.Rand, i, j int, rate modem.Rate, payload, probes int) float64 {
	if i == j {
		return 1
	}
	ok := 0
	for p := 0; p < probes; p++ {
		per := permodel.PER(rate, payload, t.Links[i][j].DrawSubcarrierSNRs(rng))
		if rng.Float64() >= per {
			ok++
		}
	}
	return float64(ok) / float64(probes)
}

// Measured holds the link-measurement products all schemes share.
type Measured struct {
	Delivery [][]float64 // delivery probability per directed link
	Graph    *etx.Graph
	DistTo   []float64 // ETX distance to the destination per node
}

// Measure runs the measurement phase: per-link delivery probabilities, the
// ETX graph (links with delivery < minDelivery pruned), and distances to
// the destination.
func (t *Topology) Measure(rng *rand.Rand, rate modem.Rate, payload, probes int, minDelivery float64) *Measured {
	n := t.N()
	del := make([][]float64, n)
	for i := range del {
		del[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				del[i][j] = t.DeliveryProb(rng, i, j, rate, payload, probes)
			}
		}
	}
	g := etx.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if del[i][j] < minDelivery || del[j][i] < minDelivery {
				continue
			}
			g.AddLink(i, j, etx.LinkETX(del[i][j], del[j][i]))
		}
	}
	return &Measured{Delivery: del, Graph: g, DistTo: g.DistancesTo(n - 1)}
}

// Scheme selects the forwarding protocol to simulate.
type Scheme int

// Supported schemes.
const (
	SinglePath Scheme = iota
	ExOR
	ExORSourceSync
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SinglePath:
		return "single-path"
	case ExOR:
		return "ExOR"
	case ExORSourceSync:
		return "ExOR+SourceSync"
	}
	return "unknown"
}

// Sim runs packets from node 0 to node N-1 and accounts medium time.
type Sim struct {
	Topo    *Topology
	Meas    *Measured
	Mac     mac.Params
	Rate    modem.Rate
	Payload int
	// MaxTxPerPacket bounds the transmissions charged to one packet before
	// it is declared lost (progress safeguard).
	MaxTxPerPacket int
}

// Result is the outcome of a scheme simulation.
type Result struct {
	ThroughputBps float64
	Delivered     int
	Transmissions int
	AirTime       float64
}

// Run simulates nPackets packets under the given scheme.
func (s *Sim) Run(rng *rand.Rand, scheme Scheme, nPackets int) Result {
	if s.MaxTxPerPacket == 0 {
		s.MaxTxPerPacket = 40
	}
	switch scheme {
	case SinglePath:
		return s.runSinglePath(rng, nPackets)
	case ExOR:
		return s.runExOR(rng, nPackets, false)
	case ExORSourceSync:
		return s.runExOR(rng, nPackets, true)
	}
	panic("exor: unknown scheme")
}

// attemptSuccess draws one reception of a single-sender transmission.
func (s *Sim) attemptSuccess(rng *rand.Rand, from, to int) bool {
	per := permodel.PER(s.Rate, s.Payload, s.Topo.Links[from][to].DrawSubcarrierSNRs(rng))
	return rng.Float64() >= per
}

// runSinglePath sends each packet hop by hop along the min-ETX path with
// per-hop ARQ.
func (s *Sim) runSinglePath(rng *rand.Rand, nPackets int) Result {
	var res Result
	n := s.Topo.N()
	path, _ := s.Meas.Graph.ShortestPath(0, n-1)
	if path == nil {
		return res
	}
	ft := s.Mac.FrameDuration(s.Rate, s.Payload)
	for p := 0; p < nPackets; p++ {
		ok := true
		for h := 0; h+1 < len(path) && ok; h++ {
			from, to := path[h], path[h+1]
			out := s.Mac.RetryLoop(rng, ft, true, func(int) bool {
				return s.attemptSuccess(rng, from, to)
			})
			res.AirTime += out.AirTime
			res.Transmissions += out.Attempts
			ok = out.Success
		}
		if ok {
			res.Delivered++
		}
	}
	if res.AirTime > 0 {
		res.ThroughputBps = float64(res.Delivered*s.Payload*8) / res.AirTime
	}
	return res
}

// runExOR simulates opportunistic forwarding. Each packet starts at the
// source; at every step the holder closest to the destination (by ETX)
// transmits, and every node strictly closer to the destination than the
// transmitter may receive it. With sourceSync enabled, other holders in the
// forwarder set join the transmission if they overhear the lead's sync
// header, and receivers see the summed per-subcarrier SNR.
func (s *Sim) runExOR(rng *rand.Rand, nPackets int, sourceSync bool) Result {
	var res Result
	n := s.Topo.N()
	dst := n - 1
	dist := s.Meas.DistTo
	if dist[0] == etx.Inf {
		return res
	}

	// Precompute the joint-frame airtime: co-forwarder count varies per
	// transmission; index by number of co-senders. The CP increase comes
	// from the multi-receiver LP over the topology's propagation delays.
	cpInc := s.cpIncrease()
	jointFT := make([]float64, n)
	jointFT[0] = s.Mac.FrameDuration(s.Rate, s.Payload)
	for k := 1; k < n; k++ {
		jointFT[k] = s.Mac.JointFrameDuration(s.Rate, s.Payload, k, s.Mac.Cfg.CPLen+cpInc)
	}

	for p := 0; p < nPackets; p++ {
		holders := map[int]bool{0: true}
		tx := 0
		for !holders[dst] && tx < s.MaxTxPerPacket {
			lead := bestHolder(holders, dist)
			if lead == -1 {
				break
			}
			// Assemble the joint sender set. Iterate nodes in index order —
			// map order would randomize RNG consumption and break run
			// reproducibility.
			senders := []int{lead}
			if sourceSync {
				for v := 0; v < n; v++ {
					if !holders[v] || v == lead || dist[v] == etx.Inf {
						continue
					}
					// A co-forwarder joins if it overhears the sync header
					// (short, robust: use the measured delivery probability
					// as its reception likelihood).
					if rng.Float64() < s.Meas.Delivery[lead][v] {
						senders = append(senders, v)
					}
				}
			}
			ft := jointFT[len(senders)-1]
			res.AirTime += s.Mac.DIFS() + s.Mac.Backoff(0, rng) + ft
			res.Transmissions++
			tx++

			// Receptions at every node closer to the destination than the
			// lead (the forwarder set for this transmission).
			for v := 0; v < n; v++ {
				if holders[v] || dist[v] >= dist[lead] {
					continue
				}
				var bins []float64
				if len(senders) == 1 {
					bins = s.Topo.Links[lead][v].DrawSubcarrierSNRs(rng)
				} else {
					per := make([][]float64, len(senders))
					for i, u := range senders {
						per[i] = s.Topo.Links[u][v].DrawSubcarrierSNRs(rng)
					}
					bins = permodel.JointSNR(per)
				}
				if rng.Float64() >= permodel.PER(s.Rate, s.Payload, bins) {
					holders[v] = true
				}
			}
		}
		if holders[dst] {
			res.Delivered++
		}
	}
	if res.AirTime > 0 {
		res.ThroughputBps = float64(res.Delivered*s.Payload*8) / res.AirTime
	}
	return res
}

// bestHolder returns the holder with minimum ETX distance to the
// destination (excluding unreachable nodes), or -1. Ties break toward the
// lowest node index so runs are reproducible.
func bestHolder(holders map[int]bool, dist []float64) int {
	best, bestD := -1, etx.Inf
	for v := 0; v < len(dist); v++ {
		if holders[v] && dist[v] < bestD {
			best, bestD = v, dist[v]
		}
	}
	return best
}

// cpIncrease runs the SLS multi-receiver optimization over the topology's
// propagation delays, taking all relays as co-senders and all non-source
// nodes as potential receivers, and returns the worst-case CP increase in
// samples (paper §4.6). Indoors this is small (delays are sub-sample at
// 20 MHz) but it is computed, not assumed.
func (s *Sim) cpIncrease() int {
	n := s.Topo.N()
	if n < 3 {
		return 0
	}
	// Lead: source. Co-senders: all relays. Receivers: relays + dst.
	var rxs []int
	for v := 1; v < n; v++ {
		rxs = append(rxs, v)
	}
	var tLead []float64
	var tCo [][]float64
	for _, rx := range rxs {
		tLead = append(tLead, s.propDelay(0, rx))
	}
	for co := 1; co < n-1; co++ {
		row := make([]float64, len(rxs))
		for k, rx := range rxs {
			row[k] = s.propDelay(co, rx)
		}
		tCo = append(tCo, row)
	}
	_, maxMis, err := sls.MultiReceiverWaits(tLead, tCo)
	if err != nil {
		return 2 // conservative fallback
	}
	return sls.CPIncreaseSamples(maxMis)
}

func (s *Sim) propDelay(i, j int) float64 {
	if i == j {
		return 0
	}
	return s.Topo.Links[i][j].PropDelaySamples()
}
