package exor

import (
	"math/rand"
	"testing"

	"repro/internal/modem"
)

func TestSimulationDeterministicGivenSeed(t *testing.T) {
	// Identical seeds must reproduce identical topologies, measurements and
	// scheme results — the experiments' reproducibility contract.
	build := func() Result {
		rng := rand.New(rand.NewSource(123))
		topo := paperTopology(rng, 1)
		sim := newSim(t, rng, topo, 6)
		return sim.Run(rand.New(rand.NewSource(9)), ExORSourceSync, 60)
	}
	a := build()
	b := build()
	if a.ThroughputBps != b.ThroughputBps || a.Transmissions != b.Transmissions || a.Delivered != b.Delivered {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMaxTxPerPacketBoundsLoss(t *testing.T) {
	// With a nearly-dead relay->dst hop, the per-packet transmission cap
	// must bound work and count the packet as lost.
	rng := rand.New(rand.NewSource(5))
	topo := paperTopology(rng, 2.0) // extreme stretch: dst far out of reach
	rate, _ := modem.RateByMbps(12)
	meas := topo.Measure(rng, rate, 500, 30, 0.1)
	sim := newSim(t, rng, topo, 12)
	sim.Meas = meas
	sim.MaxTxPerPacket = 5
	const pkts = 30
	res := sim.Run(rng, ExOR, pkts)
	if res.Transmissions > pkts*5 {
		t.Fatalf("cap violated: %d transmissions", res.Transmissions)
	}
}

func TestResultAccountingConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	topo := paperTopology(rng, 1)
	sim := newSim(t, rng, topo, 6)
	res := sim.Run(rand.New(rand.NewSource(7)), SinglePath, 50)
	if res.Delivered > 50 {
		t.Fatalf("delivered %d of 50", res.Delivered)
	}
	if res.AirTime <= 0 || res.Transmissions <= 0 {
		t.Fatalf("accounting: %+v", res)
	}
	// Throughput must equal delivered payload bits over airtime.
	want := float64(res.Delivered*sim.Payload*8) / res.AirTime
	if res.ThroughputBps != want {
		t.Fatalf("throughput %.1f, want %.1f", res.ThroughputBps, want)
	}
}
