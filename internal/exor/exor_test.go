package exor

import (
	"math/rand"
	"testing"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/testbed"
)

// paperTopology builds a source, three relays between, and a destination —
// the §8.4 evaluation shape — in the lossy mesh environment. Stretch scales
// the span: larger means lossier links.
func paperTopology(rng *rand.Rand, stretch float64) *Topology {
	cfg := modem.Profile80211()
	env := testbed.Mesh(cfg)
	env.Width = 50 * stretch
	pts := []testbed.Point{
		{X: 1, Y: 7},              // src
		{X: 22 * stretch, Y: 3},   // relay 1
		{X: 26 * stretch, Y: 8},   // relay 2
		{X: 24 * stretch, Y: 12},  // relay 3
		{X: 47 * stretch, Y: 7.5}, // dst
	}
	return NewTopology(rng, env, pts)
}

func newSim(t *testing.T, rng *rand.Rand, topo *Topology, mbps int) *Sim {
	t.Helper()
	rate, err := modem.RateByMbps(mbps)
	if err != nil {
		t.Fatal(err)
	}
	m := mac.Default(topo.Env.Cfg)
	meas := topo.Measure(rng, rate, 500, 60, 0.1)
	return &Sim{Topo: topo, Meas: meas, Mac: m, Rate: rate, Payload: 500}
}

func TestMeasureDeliveryProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	topo := paperTopology(rng, 1)
	rate, _ := modem.RateByMbps(6)
	meas := topo.Measure(rng, rate, 500, 50, 0.1)
	n := topo.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := meas.Delivery[i][j]
			if p < 0 || p > 1 {
				t.Fatalf("delivery[%d][%d] = %g", i, j, p)
			}
		}
	}
	// Destination must be reachable from the source in ETX terms.
	if meas.DistTo[0] <= 0 || meas.DistTo[topo.N()-1] != 0 {
		t.Fatalf("distances %v", meas.DistTo)
	}
}

func TestSchemesDeliverAndRank(t *testing.T) {
	// On a lossy topology: ExOR >= single path (receiver diversity), and
	// ExOR+SourceSync >= ExOR (sender diversity) — the paper's Fig. 18
	// ordering. Averaged over several topologies to suppress noise.
	var spSum, exSum, ssSum float64
	const topos = 6
	for seed := int64(0); seed < topos; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		topo := paperTopology(rng, 1.25) // stretched: lossy links
		sim := newSim(t, rng, topo, 6)
		const pkts = 120
		sp := sim.Run(rand.New(rand.NewSource(1+seed)), SinglePath, pkts)
		ex := sim.Run(rand.New(rand.NewSource(2+seed)), ExOR, pkts)
		ss := sim.Run(rand.New(rand.NewSource(3+seed)), ExORSourceSync, pkts)
		spSum += sp.ThroughputBps
		exSum += ex.ThroughputBps
		ssSum += ss.ThroughputBps
	}
	if exSum < spSum*0.95 {
		t.Fatalf("ExOR (%.0f) should not trail single path (%.0f)", exSum, spSum)
	}
	if ssSum <= exSum {
		t.Fatalf("SourceSync (%.0f) should beat ExOR (%.0f)", ssSum, exSum)
	}
	if spSum <= 0 {
		t.Fatal("single path delivered nothing")
	}
}

func TestExORUsesFewerTransmissionsThanSinglePathOnLossyLinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	topo := paperTopology(rng, 1)
	sim := newSim(t, rng, topo, 6)
	const pkts = 150
	sp := sim.Run(rand.New(rand.NewSource(11)), SinglePath, pkts)
	ex := sim.Run(rand.New(rand.NewSource(12)), ExOR, pkts)
	if sp.Delivered == 0 || ex.Delivered == 0 {
		t.Fatalf("deliveries sp=%d ex=%d", sp.Delivered, ex.Delivered)
	}
	spPerPkt := float64(sp.Transmissions) / float64(sp.Delivered)
	exPerPkt := float64(ex.Transmissions) / float64(ex.Delivered)
	if exPerPkt > spPerPkt*1.1 {
		t.Fatalf("ExOR %.2f tx/pkt vs single path %.2f", exPerPkt, spPerPkt)
	}
}

func TestUnreachableDestination(t *testing.T) {
	cfg := modem.Profile80211()
	env := testbed.Default(cfg)
	rng := rand.New(rand.NewSource(9))
	// Destination 10 km away: nothing gets through.
	pts := []testbed.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 6, Y: 2}, {X: 4, Y: 3}, {X: 10000, Y: 0}}
	topo := NewTopology(rng, env, pts)
	rate, _ := modem.RateByMbps(6)
	meas := topo.Measure(rng, rate, 500, 30, 0.1)
	sim := &Sim{Topo: topo, Meas: meas, Mac: mac.Default(cfg), Rate: rate, Payload: 500}
	for _, scheme := range []Scheme{SinglePath, ExOR, ExORSourceSync} {
		res := sim.Run(rng, scheme, 20)
		if res.Delivered != 0 {
			t.Fatalf("%v delivered %d to unreachable dst", scheme, res.Delivered)
		}
	}
}

func TestCPIncreaseSmallIndoors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	topo := paperTopology(rng, 1)
	sim := newSim(t, rng, topo, 6)
	inc := sim.cpIncrease()
	// Sub-30m room at 20 Msps: propagation deltas are well under a sample.
	if inc < 0 || inc > 2 {
		t.Fatalf("cp increase %d samples", inc)
	}
}

func TestSchemeString(t *testing.T) {
	if SinglePath.String() != "single-path" || ExOR.String() != "ExOR" || ExORSourceSync.String() != "ExOR+SourceSync" {
		t.Fatal("scheme names")
	}
}
