package jce

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

func TestTrackerExactAtObservationsProperty(t *testing.T) {
	// At() returns exactly the (unwrapped) observed phase at every
	// observation index, for any smooth trajectory.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slope := (r.Float64()*2 - 1) * 0.8
		p := NewPhaseTracker()
		var obsSyms []int
		var obsTrue []float64
		sym := 0
		for i := 0; i < 20; i++ {
			truth := slope * float64(sym)
			p.Update(sym, dsp.WrapPhase(truth))
			obsSyms = append(obsSyms, sym)
			obsTrue = append(obsTrue, truth)
			sym += 1 + r.Intn(3)
		}
		for i, s := range obsSyms {
			if math.Abs(dsp.WrapPhase(p.At(s)-obsTrue[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerInterpolatesBetweenObservations(t *testing.T) {
	p := NewPhaseTracker()
	p.Update(0, 0)
	p.Update(10, 1.0)
	if got := p.At(5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("midpoint %g, want 0.5", got)
	}
	// Backward query before the first observation extrapolates with the
	// smoothed slope, not a constant.
	if got := p.At(-10); math.Abs(got-(-1.0)) > 1e-9 {
		t.Fatalf("backward extrapolation %g, want -1", got)
	}
}

func TestTrackerEmpty(t *testing.T) {
	p := NewPhaseTracker()
	if p.At(5) != 0 || p.Observations() != 0 || p.ResidualCFO() != 0 {
		t.Fatal("empty tracker defaults")
	}
}
