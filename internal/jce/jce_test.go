package jce

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/modem"
)

func TestPhaseTrackerLinearTrajectory(t *testing.T) {
	p := NewPhaseTracker()
	slope := 0.3 // rad/symbol
	for sym := 0; sym < 20; sym += 2 {
		p.Update(sym, dsp.WrapPhase(slope*float64(sym)))
	}
	for sym := 14; sym < 26; sym++ {
		got := p.At(sym)
		want := slope * float64(sym)
		if math.Abs(dsp.WrapPhase(got-want)) > 1e-6 {
			t.Fatalf("sym %d: predicted %.4f want %.4f", sym, got, want)
		}
	}
	if cfo := p.ResidualCFO(); math.Abs(cfo-slope/(2*math.Pi)) > 1e-9 {
		t.Fatalf("residual cfo %g", cfo)
	}
}

func TestPhaseTrackerUnwrapsAcrossPi(t *testing.T) {
	// A fast trajectory that wraps several times must still be tracked, as
	// long as per-observation increments stay below pi.
	p := NewPhaseTracker()
	slope := 1.2
	for sym := 0; sym < 40; sym += 2 {
		p.Update(sym, dsp.WrapPhase(slope*float64(sym)))
	}
	got := p.At(40)
	want := slope * 40
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("unwrapped prediction %.3f want %.3f", got, want)
	}
}

func TestPhaseTrackerNoisyObservations(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := NewPhaseTracker()
	slope := 0.1
	for sym := 0; sym < 60; sym += 3 {
		p.Update(sym, dsp.WrapPhase(slope*float64(sym)+r.NormFloat64()*0.05))
	}
	got := p.At(60)
	if math.Abs(got-slope*60) > 0.3 {
		t.Fatalf("noisy tracking off by %.3f rad", got-slope*60)
	}
}

func TestEstimatorPilotOwnerRoundRobin(t *testing.T) {
	e := NewEstimator(modem.Profile80211(), 3)
	owners := []int{0, 1, 2, 0, 1, 2}
	for sym, want := range owners {
		if got := e.PilotOwner(sym); got != want {
			t.Fatalf("sym %d: owner %d, want %d", sym, got, want)
		}
	}
}

// buildPilotSymbol synthesizes the received pilot bins for one data symbol
// where `owner` transmits pilots through channel h rotated by theta.
func buildPilotSymbol(cfg *modem.Config, h []complex128, symIdx int, theta float64, noise float64, rng *rand.Rand) []complex128 {
	bins := make([]complex128, cfg.NFFT)
	rot := cmplx.Exp(complex(0, theta))
	for p, k := range cfg.PilotBins() {
		b := cfg.Bin(k)
		bins[b] = h[b] * cfg.PilotValue(p, symIdx) * rot
		if noise > 0 {
			bins[b] += complex(rng.NormFloat64()*noise, rng.NormFloat64()*noise)
		}
	}
	return bins
}

func TestEstimatorTracksTwoSenderPhases(t *testing.T) {
	cfg := modem.Profile80211()
	rng := rand.New(rand.NewSource(2))
	e := NewEstimator(cfg, 2)

	h0 := channel.NewIndoor(rng, cfg.SampleRateHz, 50, 3).FreqResponse(cfg.NFFT)
	h1 := channel.NewIndoor(rng, cfg.SampleRateHz, 50, 3).FreqResponse(cfg.NFFT)
	e.SetChannel(0, h0)
	e.SetChannel(1, h1)

	// Distinct residual CFOs: 0.02 and -0.05 rad/symbol.
	s0, s1 := 0.02, -0.05
	for sym := 0; sym < 40; sym++ {
		owner := e.PilotOwner(sym)
		var bins []complex128
		if owner == 0 {
			bins = buildPilotSymbol(cfg, h0, sym, s0*float64(sym), 0.01, rng)
		} else {
			bins = buildPilotSymbol(cfg, h1, sym, s1*float64(sym), 0.01, rng)
		}
		e.UpdatePilots(sym, bins)
	}

	// Predicted channels at symbol 41 must match the true rotations.
	sym := 41
	for _, k := range cfg.DataBins()[:8] {
		b := cfg.Bin(k)
		want0 := h0[b] * cmplx.Exp(complex(0, s0*float64(sym)))
		want1 := h1[b] * cmplx.Exp(complex(0, s1*float64(sym)))
		got0 := e.ChannelAt(0, sym, b)
		got1 := e.ChannelAt(1, sym, b)
		if cmplx.Abs(got0-want0) > 0.15*cmplx.Abs(want0)+0.02 {
			t.Fatalf("sender0 bin %d: got %v want %v", k, got0, want0)
		}
		if cmplx.Abs(got1-want1) > 0.15*cmplx.Abs(want1)+0.02 {
			t.Fatalf("sender1 bin %d: got %v want %v", k, got1, want1)
		}
		comp := e.Composite(sym, b)
		if cmplx.Abs(comp-(want0+want1)) > 0.2*cmplx.Abs(want0+want1)+0.05 {
			t.Fatalf("composite bin %d: got %v want %v", k, comp, want0+want1)
		}
	}
	if math.Abs(e.ResidualCFO(0)-s0/(2*math.Pi)) > 0.002 {
		t.Fatalf("sender0 residual cfo %g", e.ResidualCFO(0))
	}
	if math.Abs(e.ResidualCFO(1)-s1/(2*math.Pi)) > 0.002 {
		t.Fatalf("sender1 residual cfo %g", e.ResidualCFO(1))
	}
}

func TestEstimatorAbsentSender(t *testing.T) {
	cfg := modem.Profile80211()
	e := NewEstimator(cfg, 2)
	h := channel.Flat().FreqResponse(cfg.NFFT)
	e.SetChannel(0, h)
	e.MarkAbsent(1)
	if e.Active(1) {
		t.Fatal("sender 1 should be absent")
	}
	b := cfg.Bin(1)
	if e.ChannelAt(1, 0, b) != 0 {
		t.Fatal("absent sender must have zero channel")
	}
	if e.Composite(0, b) != h[b] {
		t.Fatal("composite should equal lead channel alone")
	}
	// UpdatePilots on the absent sender's symbols is a no-op.
	bins := make([]complex128, cfg.NFFT)
	e.UpdatePilots(1, bins) // owner 1, absent
	dst := e.SenderChannels(nil, 0, b)
	if len(dst) != 2 || dst[1] != 0 {
		t.Fatalf("SenderChannels = %v", dst)
	}
}

func TestEstimateFromCE(t *testing.T) {
	// Generate two clean CE (LTS) symbols through a channel and verify the
	// estimate matches the channel's frequency response on used bins.
	cfg := modem.Profile80211()
	rng := rand.New(rand.NewSource(3))
	m := channel.NewIndoor(rng, cfg.SampleRateHz, 40, 0)
	lts := cfg.LTSTime()
	// Two repetitions with cyclic prefix behavior: prepend the tail of the
	// LTS so the channel's memory sees a cyclic signal, as in a real frame.
	guard := 16
	sig := append([]complex128{}, lts[len(lts)-guard:]...)
	sig = append(sig, lts...)
	sig = append(sig, lts...)
	out := m.Apply(sig)
	rx1 := out[guard : guard+cfg.NFFT]
	rx2 := out[guard+cfg.NFFT : guard+2*cfg.NFFT]

	e := NewEstimator(cfg, 1)
	e.EstimateFromCE(0, rx1, rx2)
	hTrue := m.FreqResponse(cfg.NFFT)
	for _, k := range cfg.UsedBins() {
		b := cfg.Bin(k)
		if cmplx.Abs(e.Channel(0)[b]-hTrue[b]) > 1e-6 {
			t.Fatalf("bin %d: got %v want %v", k, e.Channel(0)[b], hTrue[b])
		}
	}
}
