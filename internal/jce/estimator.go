package jce

import (
	"math/cmplx"

	"repro/internal/modem"
)

// Estimator maintains per-sender channel estimates and phase trajectories
// for one joint frame and synthesizes the rotated per-sender channels the
// space-time decoder consumes.
type Estimator struct {
	Cfg     *modem.Config
	Senders int // total concurrent senders (lead + co-senders)

	h        [][]complex128 // per sender, per FFT bin; nil until estimated
	active   []bool
	trackers []*PhaseTracker
}

// NewEstimator creates an estimator for the given number of senders
// (lead + co-senders).
func NewEstimator(cfg *modem.Config, senders int) *Estimator {
	e := &Estimator{
		Cfg:      cfg,
		Senders:  senders,
		h:        make([][]complex128, senders),
		active:   make([]bool, senders),
		trackers: make([]*PhaseTracker, senders),
	}
	for i := range e.trackers {
		e.trackers[i] = NewPhaseTracker()
	}
	return e
}

// SetChannel installs a per-bin channel estimate for a sender (index 0 is
// the lead) and marks it active.
func (e *Estimator) SetChannel(sender int, h []complex128) {
	e.h[sender] = h
	e.active[sender] = true
}

// EstimateFromCE estimates a sender's channel from its two channel
// estimation symbols (NFFT samples each, CP stripped) and installs it.
func (e *Estimator) EstimateFromCE(sender int, ce1, ce2 []complex128) {
	e.SetChannel(sender, e.Cfg.EstimateChannelLTS(ce1, ce2))
}

// MarkAbsent records that a sender did not join the transmission; its
// channel is treated as zero everywhere.
func (e *Estimator) MarkAbsent(sender int) {
	e.h[sender] = nil
	e.active[sender] = false
}

// Active reports whether a sender joined the transmission.
func (e *Estimator) Active(sender int) bool { return e.active[sender] }

// PilotOwner returns which sender owns the pilot subcarriers during data
// symbol symIdx (paper §5: pilots shared round-robin across symbols).
func (e *Estimator) PilotOwner(symIdx int) int { return symIdx % e.Senders }

// MeasurePilotPhase measures the phase of a received symbol's pilot bins
// relative to a reference channel h (the pilot owner's static estimate).
// ok is false when the reference carries no pilot energy.
func MeasurePilotPhase(cfg *modem.Config, h []complex128, symIdx int, bins []complex128) (phase float64, ok bool) {
	var acc complex128
	for p, k := range cfg.PilotBins() {
		b := cfg.Bin(k)
		ref := h[b] * cfg.PilotValue(p, symIdx)
		acc += bins[b] * cmplx.Conj(ref)
	}
	if acc == 0 {
		return 0, false
	}
	return cmplx.Phase(acc), true
}

// UpdatePilots absorbs the pilot observations of one received data symbol:
// it measures the owner's current phase relative to its static channel
// estimate and updates the owner's tracker. Symbols owned by absent senders
// are skipped.
func (e *Estimator) UpdatePilots(symIdx int, bins []complex128) {
	owner := e.PilotOwner(symIdx)
	if !e.active[owner] || e.h[owner] == nil {
		return
	}
	phase, ok := MeasurePilotPhase(e.Cfg, e.h[owner], symIdx, bins)
	if !ok {
		return
	}
	e.trackers[owner].Update(symIdx, phase)
}

// ChannelAt returns sender's channel on FFT bin b as of data symbol symIdx,
// i.e. the static estimate rotated by the tracked residual phase. Absent
// senders return 0.
func (e *Estimator) ChannelAt(sender, symIdx int, b int) complex128 {
	if !e.active[sender] || e.h[sender] == nil {
		return 0
	}
	theta := e.trackers[sender].At(symIdx)
	return e.h[sender][b] * cmplx.Exp(complex(0, theta))
}

// Composite returns the composite (summed) channel on bin b at symbol
// symIdx — the quantity H_i(t) of paper §5.
func (e *Estimator) Composite(symIdx, b int) complex128 {
	var s complex128
	for j := 0; j < e.Senders; j++ {
		s += e.ChannelAt(j, symIdx, b)
	}
	return s
}

// SenderChannels gathers every sender's rotated channel on bin b at symbol
// symIdx into dst (len Senders), for the STBC decoder.
func (e *Estimator) SenderChannels(dst []complex128, symIdx, b int) []complex128 {
	if cap(dst) < e.Senders {
		dst = make([]complex128, e.Senders)
	}
	dst = dst[:e.Senders]
	for j := range dst {
		dst[j] = e.ChannelAt(j, symIdx, b)
	}
	return dst
}

// Channel returns the raw (unrotated) channel estimate of a sender, or nil.
func (e *Estimator) Channel(sender int) []complex128 { return e.h[sender] }

// ResidualCFO returns the tracked residual frequency of a sender in cycles
// per data symbol.
func (e *Estimator) ResidualCFO(sender int) float64 {
	return e.trackers[sender].ResidualCFO()
}
