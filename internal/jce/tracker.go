// Package jce implements SourceSync's Joint Channel Estimator (paper §5):
// per-sender channel estimates from the joint frame's dedicated channel
// estimation symbols, and per-sender residual-frequency phase tracking via
// pilots shared across symbols (the lead sender owns the pilot subcarriers
// in symbols 0, k, 2k, ...; co-sender i in symbols i, k+i, ...). The
// composite channel used for decoding is the sum of the individual channels,
// each rotated by its sender's tracked phase.
package jce

import (
	"math"
	"sort"

	"repro/internal/dsp"
)

// PhaseTracker tracks one sender's residual phase trajectory theta(t) from
// sparse, noisy observations at the symbols where that sender owns the
// pilots. It stores the full unwrapped trajectory: queries between
// observations interpolate linearly and queries outside the observed span
// extrapolate with the locally fitted slope. Interpolation matters: a
// tracker that only remembers its latest state would have to extrapolate
// backwards across the whole frame when decoding starts, amplifying slope
// noise over hundreds of symbols.
type PhaseTracker struct {
	syms   []float64 // observation symbol indices, ascending
	phases []float64 // unwrapped phases
	slope  float64   // smoothed rad/symbol, for extrapolation
	hasSlp bool
}

// NewPhaseTracker returns an empty tracker.
func NewPhaseTracker() *PhaseTracker { return &PhaseTracker{} }

// Update incorporates a measured phase (radians, wrapped) at symbol index
// sym. Measurements must arrive in increasing symbol order; each is
// unwrapped against the prediction so 2*pi ambiguities resolve in favor of
// trajectory continuity.
func (p *PhaseTracker) Update(sym int, phase float64) {
	s := float64(sym)
	if len(p.syms) == 0 {
		p.syms = append(p.syms, s)
		p.phases = append(p.phases, phase)
		return
	}
	pred := p.At(sym)
	k := math.Round((pred - phase) / (2 * math.Pi))
	unwrapped := phase + 2*math.Pi*k
	last := len(p.syms) - 1
	if ds := s - p.syms[last]; ds > 0 {
		newSlope := (unwrapped - p.phases[last]) / ds
		if p.hasSlp {
			p.slope += 0.5 * (newSlope - p.slope)
		} else {
			p.slope = newSlope
			p.hasSlp = true
		}
	}
	p.syms = append(p.syms, s)
	p.phases = append(p.phases, unwrapped)
}

// At returns the tracked phase at symbol index sym: interpolated inside the
// observed span, extrapolated with the smoothed slope outside it.
func (p *PhaseTracker) At(sym int) float64 {
	n := len(p.syms)
	if n == 0 {
		return 0
	}
	s := float64(sym)
	if s <= p.syms[0] {
		return p.phases[0] + p.slope*(s-p.syms[0])
	}
	last := n - 1
	if s >= p.syms[last] {
		return p.phases[last] + p.slope*(s-p.syms[last])
	}
	// Binary search for the bracketing observations.
	i := sort.SearchFloat64s(p.syms, s)
	lo, hi := i-1, i
	span := p.syms[hi] - p.syms[lo]
	if span == 0 {
		return p.phases[lo]
	}
	f := (s - p.syms[lo]) / span
	return p.phases[lo]*(1-f) + p.phases[hi]*f
}

// Observations returns how many measurements the tracker has absorbed.
func (p *PhaseTracker) Observations() int { return len(p.syms) }

// ResidualCFO returns the tracked residual frequency in cycles per symbol.
func (p *PhaseTracker) ResidualCFO() float64 { return p.slope / (2 * math.Pi) }

// WrapPhase re-exports dsp.WrapPhase for callers of this package.
func WrapPhase(v float64) float64 { return dsp.WrapPhase(v) }
