// Package lp implements a small dense two-phase simplex solver for linear
// programs of the form
//
//	minimize    c.x
//	subject to  A.x <= b,  x >= 0
//
// plus a wrapper for free (sign-unrestricted) variables. SourceSync uses it
// to choose co-sender wait times that minimize the maximum pairwise
// misalignment across multiple receivers (paper §4.6); those programs are
// tiny (a handful of variables), so clarity beats sparsity here.
package lp

import (
	"errors"
	"math"
)

// Solver failure modes.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

const eps = 1e-9

// Solve minimizes c.x subject to A.x <= b and x >= 0. It returns the
// optimal x and objective value.
func Solve(c []float64, a [][]float64, b []float64) (x []float64, obj float64, err error) {
	m := len(a)
	n := len(c)
	for i := range a {
		if len(a[i]) != n {
			return nil, 0, errors.New("lp: ragged constraint matrix")
		}
	}
	if len(b) != m {
		return nil, 0, errors.New("lp: len(b) != rows(A)")
	}

	// Convert to equalities with slack variables, normalizing to b >= 0.
	// Columns: [x (n)] [slack (m)] [artificial (up to m)].
	// Rows with a +1 slack and b>=0 use the slack as the initial basis;
	// flipped rows get an artificial variable.
	total := n + m // before artificials
	rows := make([][]float64, m)
	rhs := make([]float64, m)
	basis := make([]int, m)
	artCols := 0
	for i := 0; i < m; i++ {
		r := make([]float64, total)
		copy(r, a[i])
		sign := 1.0
		bi := b[i]
		if bi < 0 {
			sign = -1
			bi = -bi
			for j := range r {
				r[j] = -r[j]
			}
		}
		r[n+i] = sign // slack coefficient after normalization
		rows[i] = r
		rhs[i] = bi
		if sign > 0 {
			basis[i] = n + i
		} else {
			basis[i] = -1 // needs artificial
			artCols++
		}
	}
	// Append artificial columns.
	art0 := total
	total += artCols
	k := 0
	for i := 0; i < m; i++ {
		rows[i] = append(rows[i], make([]float64, artCols)...)
		if basis[i] == -1 {
			rows[i][art0+k] = 1
			basis[i] = art0 + k
			k++
		}
	}

	// Phase 1: minimize the sum of artificials.
	if artCols > 0 {
		phase1 := make([]float64, total)
		for j := art0; j < total; j++ {
			phase1[j] = 1
		}
		v, err := simplex(rows, rhs, basis, phase1)
		if err != nil {
			return nil, 0, err
		}
		if v > 1e-7 {
			return nil, 0, ErrInfeasible
		}
		// Drive any artificial still in the basis out (degenerate case).
		for i, bv := range basis {
			if bv < art0 {
				continue
			}
			pivoted := false
			for j := 0; j < art0; j++ {
				if math.Abs(rows[i][j]) > eps {
					pivot(rows, rhs, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; zero it so it never constrains.
				for j := range rows[i] {
					rows[i][j] = 0
				}
				rhs[i] = 0
			}
		}
		// Remove artificial columns.
		for i := range rows {
			rows[i] = rows[i][:art0]
		}
		total = art0
	}

	// Phase 2: original objective over structural + slack columns.
	cost := make([]float64, total)
	copy(cost, c)
	if _, err := simplex(rows, rhs, basis, cost); err != nil {
		return nil, 0, err
	}

	x = make([]float64, n)
	for i, bv := range basis {
		if bv >= 0 && bv < n {
			x[bv] = rhs[i]
		}
	}
	obj = 0
	for j := range c {
		obj += c[j] * x[j]
	}
	return x, obj, nil
}

// simplex runs the primal simplex with Bland's rule on the given tableau in
// place; basis identifies the basic column of each row. It returns the
// objective value.
func simplex(rows [][]float64, rhs []float64, basis []int, cost []float64) (float64, error) {
	m := len(rows)
	if m == 0 {
		return 0, nil
	}
	total := len(rows[0])
	// Reduced costs maintained implicitly: z_j - c_j computed on demand
	// from the basis. For the tiny LPs here, recompute per iteration.
	y := make([]float64, m) // multipliers such that reduced = cost - y.A
	for iter := 0; iter < 10000; iter++ {
		// Compute simplex multipliers: for each row, cost of basic var.
		for i := range y {
			y[i] = cost[basis[i]]
		}
		// Find entering column via Bland's rule: smallest index with
		// negative reduced cost.
		enter := -1
		for j := 0; j < total; j++ {
			red := cost[j]
			for i := 0; i < m; i++ {
				red -= y[i] * rows[i][j]
			}
			if red < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			obj := 0.0
			for i := range basis {
				obj += cost[basis[i]] * rhs[i]
			}
			return obj, nil
		}
		// Ratio test (Bland: smallest basis index breaks ties).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if rows[i][enter] > eps {
				ratio := rhs[i] / rows[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return 0, ErrUnbounded
		}
		pivot(rows, rhs, basis, leave, enter)
	}
	return 0, errors.New("lp: iteration limit exceeded")
}

// pivot makes column `col` basic in row `row`.
func pivot(rows [][]float64, rhs []float64, basis []int, row, col int) {
	p := rows[row][col]
	inv := 1 / p
	for j := range rows[row] {
		rows[row][j] *= inv
	}
	rhs[row] *= inv
	for i := range rows {
		if i == row {
			continue
		}
		f := rows[i][col]
		if f == 0 {
			continue
		}
		for j := range rows[i] {
			rows[i][j] -= f * rows[row][j]
		}
		rhs[i] -= f * rhs[row]
	}
	basis[row] = col
}

// SolveFree minimizes c.x subject to A.x <= b with x sign-unrestricted, by
// substituting x = u - v with u, v >= 0.
func SolveFree(c []float64, a [][]float64, b []float64) (x []float64, obj float64, err error) {
	n := len(c)
	c2 := make([]float64, 2*n)
	for j := 0; j < n; j++ {
		c2[j] = c[j]
		c2[n+j] = -c[j]
	}
	a2 := make([][]float64, len(a))
	for i := range a {
		row := make([]float64, 2*n)
		for j := 0; j < n; j++ {
			row[j] = a[i][j]
			row[n+j] = -a[i][j]
		}
		a2[i] = row
	}
	z, obj, err := Solve(c2, a2, b)
	if err != nil {
		return nil, 0, err
	}
	x = make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = z[j] - z[n+j]
	}
	return x, obj, nil
}
