package lp

// MinimizeMaxAbs solves the min-max program
//
//	minimize m  subject to  |e_k + sum_j G[k][j]*w_j| <= m  for all k
//
// over free variables w. Each row k describes one pairwise misalignment that
// is affine in the wait times w (offset e_k plus gains G[k]). It returns the
// optimal w and the achieved maximum |misalignment| m.
//
// This is exactly the linear program SourceSync's lead sender solves to pick
// co-sender wait times for multiple receivers (paper §4.6).
func MinimizeMaxAbs(offsets []float64, gains [][]float64) (w []float64, m float64, err error) {
	k := len(offsets)
	if k == 0 {
		return nil, 0, nil
	}
	n := len(gains[0])
	// Variables: [w (n free), m (free but effectively >= 0)].
	// Constraints per row:  G.w - m <= -e   and  -G.w - m <= e.
	c := make([]float64, n+1)
	c[n] = 1
	a := make([][]float64, 0, 2*k)
	b := make([]float64, 0, 2*k)
	for i := 0; i < k; i++ {
		pos := make([]float64, n+1)
		neg := make([]float64, n+1)
		for j := 0; j < n; j++ {
			pos[j] = gains[i][j]
			neg[j] = -gains[i][j]
		}
		pos[n] = -1
		neg[n] = -1
		a = append(a, pos, neg)
		b = append(b, -offsets[i], offsets[i])
	}
	x, obj, err := SolveFree(c, a, b)
	if err != nil {
		return nil, 0, err
	}
	return x[:n], obj, nil
}
