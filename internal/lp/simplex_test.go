package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveTextbook(t *testing.T) {
	// maximize 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 => min -3x-5y; optimum
	// (2,6) value -36.
	c := []float64{-3, -5}
	a := [][]float64{{1, 0}, {0, 2}, {3, 2}}
	b := []float64{4, 12, 18}
	x, obj, err := Solve(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj+36) > 1e-6 || math.Abs(x[0]-2) > 1e-6 || math.Abs(x[1]-6) > 1e-6 {
		t.Fatalf("x=%v obj=%g", x, obj)
	}
}

func TestSolveNegativeRHSNeedsPhase1(t *testing.T) {
	// min x s.t. -x <= -5 (i.e. x >= 5): optimum x=5.
	x, obj, err := Solve([]float64{1}, [][]float64{{-1}}, []float64{-5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-5) > 1e-6 || math.Abs(obj-5) > 1e-6 {
		t.Fatalf("x=%v obj=%g", x, obj)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x <= 1 and x >= 3.
	_, _, err := Solve([]float64{1}, [][]float64{{1}, {-1}}, []float64{1, -3})
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x s.t. -x <= 0: x can grow without bound.
	_, _, err := Solve([]float64{-1}, [][]float64{{-1}}, []float64{0})
	if err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Redundant constraints sharing a vertex must not cycle (Bland's rule).
	c := []float64{-1, -1}
	a := [][]float64{{1, 0}, {1, 0}, {0, 1}, {1, 1}}
	b := []float64{1, 1, 1, 2}
	x, obj, err := Solve(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj+2) > 1e-6 {
		t.Fatalf("x=%v obj=%g", x, obj)
	}
}

func TestSolveFreeVariables(t *testing.T) {
	// min x s.t. x <= -3 with free x: optimum -inf? No: minimize x means it
	// is unbounded below; instead minimize -x: max x, bounded by -3.
	x, obj, err := SolveFree([]float64{-1}, [][]float64{{1}}, []float64{-3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]+3) > 1e-6 || math.Abs(obj-3) > 1e-6 {
		t.Fatalf("x=%v obj=%g", x, obj)
	}
}

func TestSolutionFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3)
		m := 2 + r.Intn(5)
		c := make([]float64, n)
		for j := range c {
			c[j] = r.Float64() // nonnegative cost + x>=0 => bounded
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.NormFloat64()
			}
			b[i] = r.Float64() * 5 // nonnegative: x=0 feasible
		}
		x, _, err := Solve(c, a, b)
		if err != nil {
			return false
		}
		for j := range x {
			if x[j] < -1e-7 {
				return false
			}
		}
		for i := range a {
			dot := 0.0
			for j := range x {
				dot += a[i][j] * x[j]
			}
			if dot > b[i]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeMaxAbsSingleReceiver(t *testing.T) {
	// One co-sender, one receiver: misalignment e + w; optimal w = -e, m=0.
	w, m, err := MinimizeMaxAbs([]float64{4.2}, [][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]+4.2) > 1e-6 || m > 1e-6 {
		t.Fatalf("w=%v m=%g", w, m)
	}
}

func TestMinimizeMaxAbsTwoReceiversConflict(t *testing.T) {
	// Paper Fig. 8: the same w cannot zero both receivers. Misalignments
	// w+3 (rx1) and w-5 (rx2): optimum w=1, m=4.
	w, m, err := MinimizeMaxAbs([]float64{3, -5}, [][]float64{{1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-1) > 1e-6 || math.Abs(m-4) > 1e-6 {
		t.Fatalf("w=%v m=%g", w, m)
	}
}

func TestMinimizeMaxAbsMatchesGridSearch(t *testing.T) {
	// Two co-senders, several receivers, including pairwise co-sender
	// misalignment rows; compare against brute-force grid search.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		var offsets []float64
		var gains [][]float64
		nrx := 2 + r.Intn(2)
		for k := 0; k < nrx; k++ {
			// co-sender i vs lead at rx k: w_i + e.
			offsets = append(offsets, r.NormFloat64()*5, r.NormFloat64()*5)
			gains = append(gains, []float64{1, 0}, []float64{0, 1})
			// co-sender 1 vs co-sender 2 at rx k: w1 - w2 + e.
			offsets = append(offsets, r.NormFloat64()*5)
			gains = append(gains, []float64{1, -1})
		}
		w, m, err := MinimizeMaxAbs(offsets, gains)
		if err != nil {
			t.Fatal(err)
		}
		// Grid search over [-15,15]^2 at 0.05 resolution.
		best := math.Inf(1)
		for w1 := -15.0; w1 <= 15; w1 += 0.05 {
			for w2 := -15.0; w2 <= 15; w2 += 0.05 {
				worst := 0.0
				for i := range offsets {
					v := math.Abs(offsets[i] + gains[i][0]*w1 + gains[i][1]*w2)
					if v > worst {
						worst = v
					}
				}
				if worst < best {
					best = worst
				}
			}
		}
		if m > best+0.05 {
			t.Fatalf("trial %d: LP m=%.4f worse than grid %.4f (w=%v)", trial, m, best, w)
		}
		// And the returned w must achieve m.
		worst := 0.0
		for i := range offsets {
			v := math.Abs(offsets[i] + gains[i][0]*w[0] + gains[i][1]*w[1])
			if v > worst {
				worst = v
			}
		}
		if worst > m+1e-6 {
			t.Fatalf("trial %d: w does not achieve m: %.4f > %.4f", trial, worst, m)
		}
	}
}
