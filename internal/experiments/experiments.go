// Package experiments renders every registered experiment — the tables
// and figures of the SourceSync paper's evaluation (§8) plus the repo's
// scale extensions — to an io.Writer.
//
// It is the single rendering path shared by the ssbench CLI (stdout) and
// the ssserve daemon (per-job output buffers), which is what makes the
// service's job outputs byte-identical to batch ssbench runs by
// construction: both call Run with the same Params and diff-able bytes
// come out. The golden-output harness (golden_test.go) pins those bytes
// against committed files, and the determinism contract
// (docs/ARCHITECTURE.md) guarantees they are independent of Params.Workers
// and of whatever else the process is doing concurrently.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"strings"

	sourcesync "repro"
	"repro/internal/engine"
	"repro/internal/modem"
	"repro/internal/netsim"
	"repro/internal/scenario"
)

// names lists every registered experiment in the order "all" runs them.
// docs_test.go checks docs/EXPERIMENTS.md documents each one, so the
// list, the run switch, and the docs cannot drift apart silently.
var names = []string{
	"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
	"cell", "cellsweep", "metro", "crosstraffic", "crosstraffic-spatial",
	"overhead", "detdelay", "ablations", "arrivals", "mobility",
}

// Names returns the registered experiment names in "all" order. The
// returned slice is a copy; callers may keep or mutate it.
func Names() []string {
	return append([]string(nil), names...)
}

// IsName reports whether name (already lower-cased or not) is a registered
// experiment or one of the pseudo-experiments "all" and "scenario" (the
// generic spec renderer — it needs Params.Scenario, so "all" skips it).
func IsName(name string) bool {
	name = strings.ToLower(name)
	if name == "all" || name == "scenario" {
		return true
	}
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// ErrCanceled is returned by Run when Params.Monitor was canceled while
// the experiment ran. Whatever was written to the writer before the
// cancellation took effect is partial output and must be discarded — it is
// outside the determinism contract.
var ErrCanceled = errors.New("experiment run canceled")

// Options carries the experiment-specific knobs — the sweep shape and
// interference-model era that only some experiments read — as a typed
// sub-struct, so Params' generic fields (seed, size, parallelism) stay
// separate from per-experiment configuration. The ssbench flags and the
// ssserve wire format both map into it; the zero value means "the
// experiment's defaults".
type Options struct {
	// Cells is cellsweep's capacity-vs-cell-count sweep (ssbench -cells).
	Cells []int
	// CSRanges is cellsweep's carrier-sense sweep in meters (ssbench -cs).
	CSRanges []float64
	// WindowSec switches cell/cellsweep/metro to fixed-time-window
	// saturation mode (ssbench -window); 0 keeps backlog-drain mode.
	WindowSec float64
	// Legacy selects the pre-model interference behavior (ssbench -legacy).
	Legacy bool
}

// Params configures one Run. The zero value is not runnable as-is for
// cellsweep (it needs sweep points); use DefaultParams as the base, which
// mirrors ssbench's flag defaults.
type Params struct {
	// Seed is the base random seed (ssbench -seed). Each experiment
	// derives its own offset from it, exactly as ssbench always has.
	Seed int64
	// Quick shrinks the workloads ~10x (ssbench -quick).
	Quick bool
	// Workers bounds the engine's parallelism: 0 means one worker per
	// CPU, 1 runs serially. Output bytes are identical either way.
	Workers int
	// Options holds the experiment-specific knobs.
	Options Options
	// Scenario is the declarative spec the generic "scenario" experiment
	// renders (ssbench -scenario, ssserve inline specs). Nil for every
	// registered experiment, which carries its own configuration.
	Scenario *scenario.Spec
	// Monitor optionally observes trial progress and cancels the run
	// cooperatively; see engine.Monitor and ErrCanceled.
	Monitor *engine.Monitor
}

// DefaultParams mirrors ssbench's flag defaults: seed 1, full size, one
// worker per CPU, the standard cellsweep sweep points.
func DefaultParams() Params {
	return Params{
		Seed: 1,
		Options: Options{
			Cells:    []int{1, 2, 3},
			CSRanges: []float64{20, 30, 45},
		},
	}
}

// normalized fills zero-value sweep lists with the defaults, so callers
// (e.g. a service job with an empty spec) get ssbench's behavior.
func (p Params) normalized() Params {
	d := DefaultParams()
	if len(p.Options.Cells) == 0 {
		p.Options.Cells = d.Options.Cells
	}
	if len(p.Options.CSRanges) == 0 {
		p.Options.CSRanges = d.Options.CSRanges
	}
	return p
}

// Validate reports whether p can run, after default-filling. Exported for
// callers that want submit-time errors before any output is produced
// (ssserve rejects a bad job spec with 400 instead of failing the job).
func (p Params) Validate() error { return p.normalized().validate() }

// validate rejects parameter values no experiment can run with.
func (p Params) validate() error {
	for _, n := range p.Options.Cells {
		if n < 1 {
			return fmt.Errorf("cell count %d < 1", n)
		}
	}
	for _, v := range p.Options.CSRanges {
		if v <= 0 {
			return fmt.Errorf("carrier-sense range %g <= 0", v)
		}
	}
	if p.Options.WindowSec < 0 {
		return fmt.Errorf("window %g < 0", p.Options.WindowSec)
	}
	if p.Scenario != nil {
		if err := p.Scenario.Validate(); err != nil {
			return fmt.Errorf("scenario spec: %w", err)
		}
	}
	return nil
}

// Run renders one experiment (or "all") to w. The bytes written are
// exactly what `ssbench <name>` prints to stdout for the same Params.
// Unknown names and invalid Params return an error before any output.
// When p.Monitor is canceled mid-run, Run stops at the next check point
// and returns ErrCanceled; the caller must discard w's contents.
func Run(w io.Writer, name string, p Params) error {
	name = strings.ToLower(name)
	p = p.normalized()
	if err := p.validate(); err != nil {
		return err
	}
	if name == "all" {
		for _, e := range names {
			if err := Run(w, e, p); err != nil {
				return err
			}
		}
		return nil
	}
	r := &runner{w: w, p: p}
	switch name {
	case "fig12":
		r.fig12()
	case "fig13":
		r.fig13()
	case "fig14":
		r.fig14()
	case "fig15":
		r.fig15()
	case "fig16":
		r.fig16()
	case "fig17":
		r.fig17()
	case "fig18":
		r.fig18(6)
		r.fig18(12)
	case "cell":
		r.cell()
	case "cellsweep":
		r.cellsweep()
	case "metro":
		r.metro()
	case "crosstraffic":
		r.crosstraffic()
	case "crosstraffic-spatial":
		r.crosstrafficSpatial()
	case "overhead":
		r.overhead()
	case "detdelay":
		r.detdelay()
	case "ablations":
		r.ablations()
	case "arrivals", "mobility":
		sp, _ := scenario.Builtin(name)
		if err := r.scenario(sp); err != nil {
			return err
		}
	case "scenario":
		if p.Scenario == nil {
			return fmt.Errorf(`experiment "scenario" needs a spec (ssbench -scenario file.json, or an inline "scenario" object in a ssserve job)`)
		}
		if err := r.scenario(p.Scenario); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	if r.canceled() {
		return ErrCanceled
	}
	return nil
}

// runner renders experiments with one Params set to one writer.
type runner struct {
	w io.Writer
	p Params
}

func (r *runner) printf(format string, args ...any) {
	fmt.Fprintf(r.w, format, args...)
}

func (r *runner) println(args ...any) {
	fmt.Fprintln(r.w, args...)
}

func (r *runner) canceled() bool {
	return r.p.Monitor != nil && r.p.Monitor.Canceled()
}

func (r *runner) shrink(n int) int {
	if r.p.Quick && n > 4 {
		return n / 4
	}
	return n
}

func (r *runner) header(title string) {
	r.printf("\n=== %s ===\n", title)
}

func (r *runner) fig12() {
	r.header("Figure 12 — 95th percentile synchronization error vs SNR (WiGLAN profile)")
	o := sourcesync.DefaultFig12Options()
	o.Seed = r.p.Seed
	o.Workers = r.p.Workers
	o.Monitor = r.p.Monitor
	o.Trials = r.shrink(o.Trials)
	r.printf("%8s %12s %12s %8s %8s\n", "SNR(dB)", "p50(ns)", "p95(ns)", "usable", "dropped")
	for _, p := range sourcesync.RunFig12(o) {
		r.printf("%8.1f %12.2f %12.2f %8d %8d\n", p.SNRdB, p.P50Ns, p.P95Ns, p.Usable, p.Dropped)
	}
	r.println("paper: <= 20 ns across the operational SNR range")
}

func (r *runner) fig13() {
	r.header("Figure 13 — composite SNR vs cyclic prefix: SourceSync vs unsynchronized baseline")
	o := sourcesync.DefaultFig13Options()
	o.Seed = r.p.Seed + 1
	o.Workers = r.p.Workers
	o.Monitor = r.p.Monitor
	o.FramesPerCP = r.shrink(o.FramesPerCP * 2)
	r.printf("%10s %10s %14s %14s\n", "CP(ns)", "CP(smp)", "SourceSync(dB)", "Baseline(dB)")
	for _, p := range sourcesync.RunFig13(o) {
		r.printf("%10.0f %10d %14.2f %14.2f\n", p.CPNs, p.CPSamples, p.SourceSyncSNR, p.BaselineSNR)
	}
	r.println("paper: SourceSync reaches ~95% of peak SNR at 117 ns; baseline needs ~469 ns")
}

func (r *runner) fig14() {
	r.header("Figure 14 — delay spread of a single sender (|h|^2 vs tap index)")
	o := sourcesync.DefaultFig14Options()
	o.Seed = r.p.Seed + 2
	o.Workers = r.p.Workers
	o.Monitor = r.p.Monitor
	pts := sourcesync.RunFig14(o)
	r.printf("%6s %10s\n", "tap", "|h|^2")
	for _, p := range pts {
		if p.TapIdx%2 == 0 { // thin the printout
			r.printf("%6d %10.4f\n", p.TapIdx, p.Power)
		}
	}
	r.printf("significant taps (>=1%% of peak): %d (paper: ~15)\n", sourcesync.SignificantTaps(pts, 0.01))
}

func (r *runner) fig15() {
	r.header("Figure 15 — power gains: average SNR, single sender vs SourceSync")
	o := sourcesync.DefaultFig15Options()
	o.Seed = r.p.Seed + 3
	o.Workers = r.p.Workers
	o.Monitor = r.p.Monitor
	o.Placements = r.shrink(o.Placements)
	r.printf("%8s %14s %14s %10s %6s\n", "regime", "single(dB)", "SourceSync(dB)", "gain(dB)", "n")
	for _, res := range sourcesync.RunFig15(o) {
		r.printf("%8s %14.2f %14.2f %10.2f %6d\n", res.Regime, res.SingleSNRdB, res.JointSNRdB, res.GainDB, res.Measurements)
	}
	r.println("paper: 2-3 dB gain in every regime")
}

func (r *runner) fig16() {
	r.header("Figure 16 — per-subcarrier SNR profiles (frequency diversity)")
	o := sourcesync.DefaultFig15Options()
	o.Seed = r.p.Seed + 4
	o.Workers = r.p.Workers
	o.Monitor = r.p.Monitor
	o.Placements = r.shrink(o.Placements)
	for _, s := range sourcesync.RunFig16(o) {
		r.printf("\n[%s SNR regime]\n%10s %10s %10s %10s\n", s.Regime, "f(MHz)", "snd1(dB)", "snd2(dB)", "joint(dB)")
		for i := range s.FreqMHz {
			r.printf("%10.1f %10.2f %10.2f %10.2f\n", s.FreqMHz[i], s.Sender1[i], s.Sender2[i], s.Joint[i])
		}
		r.printf("flatness (std dev dB): sender1 %.2f, sender2 %.2f, joint %.2f\n",
			s.Flatness.Sender1, s.Flatness.Sender2, s.Flatness.Joint)
	}
	r.println("\npaper: the joint profile is flatter than either sender's")
}

func (r *runner) fig17() {
	r.header("Figure 17 — last-hop throughput CDF: best single AP vs SourceSync (2 APs)")
	o := sourcesync.DefaultFig17Options()
	o.Seed = r.p.Seed + 5
	o.Workers = r.p.Workers
	o.Monitor = r.p.Monitor
	o.Placements = r.shrink(o.Placements)
	o.Packets = r.shrink(o.Packets)
	res := sourcesync.RunFig17(o)
	r.printf("%10s %14s %14s\n", "fraction", "single(Mbps)", "joint(Mbps)")
	n := len(res.SingleMbps)
	for i := 0; i < n; i++ {
		r.printf("%10.3f %14.2f %14.2f\n", float64(i+1)/float64(n), res.SingleMbps[i], res.JointMbps[i])
	}
	r.printf("median gain: %.2fx (paper: 1.57x)\n", res.MedianGain)
}

func (r *runner) fig18(mbps int) {
	r.header(fmt.Sprintf("Figure 18 — opportunistic routing throughput CDF at %d Mbps", mbps))
	o := sourcesync.DefaultFig18Options(mbps)
	o.Seed = r.p.Seed + 6
	o.Workers = r.p.Workers
	o.Monitor = r.p.Monitor
	o.Topologies = r.shrink(o.Topologies)
	o.Packets = r.shrink(o.Packets)
	res := sourcesync.RunFig18(o)
	r.printf("%10s %14s %12s %18s\n", "fraction", "single(Mbps)", "ExOR(Mbps)", "ExOR+SrcSync(Mbps)")
	n := len(res.SinglePathMbps)
	for i := 0; i < n; i++ {
		r.printf("%10.3f %14.3f %12.3f %18.3f\n", float64(i+1)/float64(n),
			res.SinglePathMbps[i], res.ExORMbps[i], res.SourceSyncMbps[i])
	}
	r.printf("median gains: ExOR/single %.2fx, SrcSync/ExOR %.2fx, SrcSync/single %.2fx\n",
		res.GainExOROverSP, res.GainSSOverExOR, res.GainSSOverSP)
	r.println("paper: ExOR 1.26-1.4x over single path; SourceSync 1.35-1.45x over ExOR; 1.7-2x overall")
}

// modelName labels the interference pricing Params.Legacy selects. The
// legacy behavior differs per experiment — cellsweep keeps its binary
// CaptureDB gate, while cell and the crosstraffic variants historically
// ran with no interference model — so the label stays generic.
func (r *runner) modelName() string {
	if r.p.Options.Legacy {
		return "legacy"
	}
	return "rate-aware"
}

// printCorruption renders the interference model's per-rate outcome table:
// one row per SampleRate rate index that saw interference, with the mean
// decode margin of its interfered attempts.
func (r *runner) printCorruption(rc []netsim.RateCorruption) {
	total := 0
	for _, c := range rc {
		total += c.Interfered
	}
	if total == 0 {
		r.println("per-rate interference outcomes: none (no attempt overlapped with a model engaged)")
		return
	}
	cfg := sourcesync.Profile80211()
	rates := modem.StandardRates()
	r.println("per-rate interference outcomes:")
	r.printf("%12s %11s %10s %9s %11s\n", "rate", "interfered", "corrupted", "degraded", "margin(dB)")
	for i, c := range rc {
		if c.Interfered == 0 {
			continue
		}
		label := fmt.Sprintf("idx %d", i)
		if i < len(rates) {
			label = fmt.Sprintf("%.0f Mbps", rates[i].BitRate(cfg)/1e6)
		}
		r.printf("%12s %11d %10d %9d %11.2f\n",
			label, c.Interfered, c.Corrupted, c.Degraded, c.MarginDB/float64(c.Interfered))
	}
}

func (r *runner) cell() {
	r.header("Cell — multi-client WLAN aggregate throughput: best single AP vs SourceSync")
	o := sourcesync.DefaultCellOptions()
	o.Seed = r.p.Seed + 8
	o.Workers = r.p.Workers
	o.Monitor = r.p.Monitor
	o.Placements = r.shrink(o.Placements)
	o.Packets = r.shrink(o.Packets)
	o.Legacy = r.p.Options.Legacy
	o.WindowSec = r.p.Options.WindowSec
	r.cellBody(o, sourcesync.RunCell(o))
}

// cellBody renders a cell-experiment result table; shared between the
// registered cell experiment and backlogged scenario specs, which is what
// pins a spec mirroring the cell defaults byte-identical to `ssbench cell`
// (examples/cell.json).
func (r *runner) cellBody(o sourcesync.CellOptions, res sourcesync.CellExpResult) {
	model := "rate-aware"
	if o.Legacy {
		model = "legacy"
	}
	r.printf("clients=%d APs=%d packets/client=%d model=%s", o.Clients, o.APs, o.Packets, model)
	if o.WindowSec > 0 {
		r.printf(" window=%.2fs", o.WindowSec)
	}
	r.println()
	r.printf("%10s %14s %14s\n", "fraction", "single(Mbps)", "joint(Mbps)")
	n := len(res.SingleAggMbps)
	for i := 0; i < n; i++ {
		r.printf("%10.3f %14.2f %14.2f\n", float64(i+1)/float64(n), res.SingleAggMbps[i], res.JointAggMbps[i])
	}
	r.printf("median aggregate gain: %.2fx; per acquisition: collisions %.3f, captures %.3f\n",
		res.MedianGain, res.MeanCollisionRate, res.MeanCaptureRate)
	r.printCorruption(res.RateCorruption)
}

func (r *runner) cellsweep() {
	r.header("Cellsweep — saturation throughput vs clients per cell (multi-cell spatial reuse)")
	o := sourcesync.DefaultCellSweepOptions()
	o.Seed = r.p.Seed + 10
	o.Workers = r.p.Workers
	o.Monitor = r.p.Monitor
	o.Placements = r.shrink(o.Placements)
	o.Packets = r.shrink(o.Packets)
	o.Legacy = r.p.Options.Legacy
	o.WindowSec = r.p.Options.WindowSec
	res := sourcesync.RunCellSweep(o)
	r.printf("cells=%d aps/cell=%d packets/client=%d cs-range=%.0fm model=%s", o.Cells, o.APsPerCell, o.Packets, o.CSRangeM, r.modelName())
	if o.WindowSec > 0 {
		r.printf(" window=%.2fs", o.WindowSec)
	}
	r.println()
	rows := make([]sweepRow, len(res.Points))
	for i, p := range res.Points {
		rows[i] = sweepRow{fmt.Sprintf("%d", p.ClientsPerCell), p.SweepStats}
	}
	r.printSweepTable("clients", rows)
	r.println("utilization above 1 = cells beyond carrier-sense range carrying frames concurrently")
	if last := len(res.Points) - 1; last >= 0 {
		r.printCorruption(res.Points[last].RateCorruption)
	}
	if r.canceled() {
		return
	}

	clientsPer := r.shrink(4)
	pts := sourcesync.RunCellCountSweep(o, r.p.Options.Cells, clientsPer)
	r.printf("\ncapacity vs cell count (clients/cell=%d):\n", clientsPer)
	rows = make([]sweepRow, len(pts))
	for i, p := range pts {
		rows[i] = sweepRow{fmt.Sprintf("%d", p.Cells), p.SweepStats}
	}
	r.printSweepTable("cells", rows)
	r.println("capacity should scale near-linearly with cell count (AirSync-style spatial reuse)")
	if r.canceled() {
		return
	}

	csPts := sourcesync.RunCSRangeSweep(o, r.p.Options.CSRanges, clientsPer)
	r.printf("\ncapacity vs carrier-sense range (cells=%d clients/cell=%d):\n", o.Cells, clientsPer)
	rows = make([]sweepRow, len(csPts))
	for i, p := range csPts {
		rows[i] = sweepRow{fmt.Sprintf("%.0f", p.CSRangeM), p.SweepStats}
	}
	r.printSweepTable("cs(m)", rows)
	r.println("shorter carrier sense = denser reuse but more hidden terminals; the model prices the tradeoff")
}

// sweepRow is one rendered cellsweep table row: the swept value plus the
// shared statistics.
type sweepRow struct {
	key   string
	stats sourcesync.SweepStats
}

// printSweepTable renders one of cellsweep's three tables: the swept
// column under keyHeader, then the shared statistics columns.
func (r *runner) printSweepTable(keyHeader string, rows []sweepRow) {
	r.printf("%10s %14s %14s %8s %8s %8s %8s %8s\n", keyHeader, "single(Mbps)", "joint(Mbps)", "gain", "collis", "hidden", "capture", "util")
	for _, row := range rows {
		s := row.stats
		r.printf("%10s %14.2f %14.2f %7.2fx %8.3f %8.3f %8.3f %8.2f\n",
			row.key, s.SingleAggMbps, s.JointAggMbps, s.MedianGain, s.CollisionRate, s.HiddenRate, s.CaptureRate, s.MeanUtilization)
	}
}

func (r *runner) metro() {
	r.header("Metro — city-scale capacity map by client density: best single AP vs SourceSync")
	o := sourcesync.DefaultMetroOptions()
	o.Seed = r.p.Seed + 16
	o.Workers = r.p.Workers
	o.Monitor = r.p.Monitor
	o.WindowSec = r.p.Options.WindowSec
	if r.p.Quick {
		// A quick city: 16 cells and light density, or the metro grid
		// dwarfs every other quick experiment combined.
		o.CellsX, o.CellsY = 4, 4
		o.ClientsPer = []int{2, 4}
		o.Placements = 2
	}
	o.Packets = r.shrink(o.Packets)
	res := sourcesync.RunMetro(o)
	r.printf("cells=%dx%d aps/cell=%d packets/client=%d cs-range=%.0fm ix-range=%.0fm model=rate-aware",
		o.CellsX, o.CellsY, o.APsPerCell, o.Packets, o.CSRangeM, o.InterferenceRangeM)
	if o.WindowSec > 0 {
		r.printf(" window=%.2fs", o.WindowSec)
	}
	r.println()
	rows := make([]sweepRow, len(res.Points))
	for i, p := range res.Points {
		rows[i] = sweepRow{fmt.Sprintf("%d (%d)", p.ClientsPerCell, p.Clients), p.SweepStats}
	}
	r.printSweepTable("cl (flows)", rows)
	r.println("capacity should grow with density until interference bites; joint service holds its gain city-wide")
	if last := len(res.Points) - 1; last >= 0 {
		r.printCorruption(res.Points[last].RateCorruption)
	}
}

func (r *runner) crosstraffic() {
	r.header("Cross-traffic — routed mesh flow contending with relay-to-relay flows")
	o := sourcesync.DefaultCrossTrafficOptions()
	o.Seed = r.p.Seed + 9
	r.runCrossTraffic(o)
}

func (r *runner) crosstrafficSpatial() {
	r.header("Cross-traffic (spatial mesh) — cross flows in separate cells: reuse + hidden terminals on the routing side")
	o := sourcesync.SpatialCrossTrafficOptions()
	o.Seed = r.p.Seed + 11
	r.runCrossTraffic(o)
}

// runCrossTraffic shrinks, runs, and prints one cross-traffic variant.
func (r *runner) runCrossTraffic(o sourcesync.CrossTrafficOptions) {
	o.Workers = r.p.Workers
	o.Monitor = r.p.Monitor
	o.Topologies = r.shrink(o.Topologies)
	o.Packets = r.shrink(o.Packets)
	o.CrossPackets = r.shrink(o.CrossPackets)
	o.Legacy = r.p.Options.Legacy
	res := sourcesync.RunCrossTraffic(o)
	rateLabel := fmt.Sprintf("%d Mbps", o.RateMbps)
	if o.AdaptCross {
		rateLabel = "SampleRate-adapted"
	}
	r.printf("%d cross flows x %d packets, %s, model=%s", o.CrossFlows, o.CrossPackets, rateLabel, r.modelName())
	if o.CSRangeM > 0 {
		r.printf(", cs-range=%.0fm width-x%.1f", o.CSRangeM, o.WidthScale)
	}
	r.println()
	r.printf("%10s %12s %12s %12s %12s\n", "fraction", "sp(Mbps)", "sp+load", "ss(Mbps)", "ss+load")
	n := len(res.SinglePathAloneMbps)
	for i := 0; i < n; i++ {
		r.printf("%10.3f %12.3f %12.3f %12.3f %12.3f\n", float64(i+1)/float64(n),
			res.SinglePathAloneMbps[i], res.SinglePathLoadedMbps[i],
			res.SourceSyncAloneMbps[i], res.SourceSyncLoadedMbps[i])
	}
	r.printf("median retention under load: single-path %.2f, SourceSync %.2f; SrcSync/single under load %.2fx\n",
		res.SinglePathRetention, res.SourceSyncRetention, res.GainUnderLoad)
	r.printf("cross-flow hidden-terminal losses: %d\n", res.CrossHiddenLosses)
	r.printCorruption(res.CrossRateCorruption)
}

func (r *runner) overhead() {
	r.header("Table (§4.4) — synchronization overhead, 1460 B at 12 Mbps")
	r.printf("%10s %12s %14s\n", "senders", "overhead(%)", "airtime(us)")
	for _, row := range sourcesync.RunOverheadTable() {
		r.printf("%10d %12.2f %14.1f\n", row.Senders, row.OverheadFraction*100, row.FrameAirtimeUs)
	}
	r.println("paper: 1.7% for two senders, 2.8% for five")
}

func (r *runner) detdelay() {
	r.header("Premise (§4.2a) — packet detection delay vs SNR")
	pts := sourcesync.RunDetDelay(r.p.Seed+7, []float64{2, 4, 6, 9, 12, 18, 25}, r.shrink(60), r.p.Workers)
	r.printf("%8s %10s %10s %10s %6s %6s\n", "SNR(dB)", "mean(ns)", "std(ns)", "p95(ns)", "det", "miss")
	for _, p := range pts {
		r.printf("%8.1f %10.1f %10.1f %10.1f %6d %6d\n", p.SNRdB, p.MeanNs, p.StdNs, p.P95Ns, p.Detected, p.Missed)
	}
	r.println("paper (citing Williams et al.): variability on the order of hundreds of ns")
}

func (r *runner) ablations() {
	r.header("Ablation — phase-slope window (3 MHz vs whole band)")
	sw := sourcesync.RunAblationSlopeWindow(r.p.Seed+8, r.shrink(200), r.p.Workers)
	r.printf("windowed RMS %.3f samples, whole-band RMS %.3f samples over %d draws\n",
		sw.WindowedRMS, sw.WholeBandRMS, sw.Draws)
	if r.canceled() {
		return
	}

	r.header("Ablation — Smart Combiner (STBC) vs naive identical transmission")
	nc := sourcesync.RunAblationNaiveCombining(r.p.Seed+9, r.shrink(12), r.p.Workers)
	r.printf("worst-case effective SNR: STBC %.1f dB, naive %.1f dB (naive total failures: %d)\n",
		nc.STBCWorstSNRdB, nc.NaiveWorstSNRdB, nc.NaiveFailures)
	if r.canceled() {
		return
	}

	r.header("Ablation — shared pilots vs single phase track")
	ps := sourcesync.RunAblationPilotSharing(r.p.Seed+10, r.shrink(6), r.p.Workers)
	r.printf("EVM with shared pilots %.4f, with naive tracking %.4f\n",
		ps.SharedPilotsEVM, ps.NaiveTrackEVM)
	if r.canceled() {
		return
	}

	r.header("Ablation — multi-receiver LP vs aligning at one receiver")
	lp := sourcesync.RunAblationMultiRxLP(r.p.Seed+11, r.shrink(100), 3, r.p.Workers)
	r.printf("mean worst-case misalignment: LP %.2f samples, first-rx alignment %.2f samples\n",
		lp.LPMaxMisalign, lp.FirstRxMisalign)
}

// scenario runs and renders one declarative scenario spec — the generic
// path behind `ssbench -scenario`, ssserve inline specs, and the
// registered data-driven experiments (arrivals, mobility).
func (r *runner) scenario(sp *scenario.Spec) error {
	out, err := sourcesync.RunScenario(sp, sourcesync.ScenarioRunOptions{
		Seed:    r.p.Seed + sp.SeedOffset,
		Workers: r.p.Workers,
		Quick:   r.p.Quick,
		Monitor: r.p.Monitor,
	})
	if err != nil {
		return err
	}
	r.header(sp.DisplayTitle())
	switch {
	case out.Cell != nil:
		r.cellBody(out.CellOpts, *out.Cell)
	case out.Mobility != nil:
		r.mobilityBody(sp, out.Mobility)
	case out.Arrivals != nil:
		r.arrivalsBody(sp, out.Arrivals)
	}
	return nil
}

// scenarioConfig is the one-line run configuration under a scenario
// header, built from the spec fields that reached the run.
func (r *runner) scenarioConfig(sp *scenario.Spec) string {
	var b strings.Builder
	t := sp.Topology
	if t.Family == scenario.FamilyMulticell {
		fmt.Fprintf(&b, "cells=%d aps/cell=%d clients/cell=%d cs-range=%.0fm", t.Cells, t.APs, t.Clients, t.CSRangeM)
	} else {
		fmt.Fprintf(&b, "clients=%d APs=%d", t.Clients, t.APs)
	}
	fmt.Fprintf(&b, " payload=%dB window=%.2fs", sp.Traffic.PayloadBytes, sp.Traffic.WindowSec)
	if sp.Traffic.Model == scenario.ModelOnOff {
		fmt.Fprintf(&b, " burst=%.2fs on/%.2fs off", sp.Traffic.BurstOnSec, sp.Traffic.BurstOffSec)
	}
	if sp.Traffic.DeadlineSec > 0 {
		fmt.Fprintf(&b, " deadline=%.0fms", sp.Traffic.DeadlineSec*1000)
	}
	if m := sp.Mobility; m != nil {
		fmt.Fprintf(&b, " speed=%.1fm/s epoch=%.2fs", m.SpeedMps, m.EpochSec)
	}
	if c := sp.Churn; c != nil {
		if c.JoinStaggerSec > 0 {
			fmt.Fprintf(&b, " join-stagger=%.2fs", c.JoinStaggerSec)
		}
		if c.LeaveAfterSec > 0 {
			fmt.Fprintf(&b, " leave-after=%.2fs", c.LeaveAfterSec)
		}
	}
	fmt.Fprintf(&b, " placements=%d model=rate-aware", r.shrink(sp.Topology.Placements))
	return b.String()
}

// arrivalsBody renders an offered-load table: one row per swept rate,
// with each scheme's median goodput and delivered fraction.
func (r *runner) arrivalsBody(sp *scenario.Spec, res *sourcesync.ScenarioArrivalsResult) {
	r.println(r.scenarioConfig(sp))
	schemes := sp.SchemeList()
	r.printf("%10s", "load(pps)")
	for _, s := range schemes {
		r.printf(" %13s %7s", s+"(Mbps)", "del(%)")
	}
	if len(schemes) == 2 {
		r.printf(" %7s", "gain")
	}
	r.println()
	for _, pt := range res.Points {
		r.printf("%10.0f", pt.RatePps)
		for _, st := range pt.Stats {
			r.printf(" %13.2f %7.1f", st.MedianGoodputMbps, deliveredPct(st))
		}
		if len(schemes) == 2 {
			r.printf(" %6.2fx", pt.MedianGain)
		}
		r.println()
	}
	if sp.Traffic.DeadlineSec > 0 {
		r.printf("deadline-expired packets:")
		for si, s := range schemes {
			total := 0
			for _, pt := range res.Points {
				total += pt.Stats[si].Expired
			}
			r.printf(" %s %d", s, total)
		}
		r.println()
	}
	r.println("as load grows past the cell's capacity, joint service holds its delivery edge")
}

// mobilityBody renders the drifting-clients comparison: one row per
// scheme plus the handoff rate the shared trajectory produced.
func (r *runner) mobilityBody(sp *scenario.Spec, res *sourcesync.ScenarioMobilityResult) {
	r.println(r.scenarioConfig(sp))
	r.printf("%10s %14s %8s %10s\n", "scheme", "goodput(Mbps)", "del(%)", "abandoned")
	for _, st := range res.Stats {
		r.printf("%10s %14.2f %8.1f %10d\n", st.Scheme, st.MedianGoodputMbps, deliveredPct(st), st.Abandoned)
	}
	if len(res.Stats) == 2 {
		r.printf("median joint/single goodput gain: %.2fx; ", res.MedianGain)
	}
	r.printf("handoffs/client over the window: %.2f\n", res.HandoffsPerClient)
	r.println("drifting clients re-anchor at cell boundaries; joint service rides out the handoff dip")
}

// deliveredPct is the percentage of offered packets a scheme delivered.
func deliveredPct(st sourcesync.ScenarioSchemeStats) float64 {
	if st.Arrived == 0 {
		return 0
	}
	return 100 * float64(st.Delivered) / float64(st.Arrived)
}
