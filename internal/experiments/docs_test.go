package experiments

import (
	"os"
	"strings"
	"testing"
)

// The docs-freshness contract: docs/EXPERIMENTS.md documents every
// experiment this package registers. Registering a new experiment without
// documenting it (or renaming one and leaving the doc stale) fails here —
// and in CI, which runs this test as a dedicated step. internal/serve has
// the analogous gate for the daemon's HTTP endpoints.
func TestExperimentsDocCoversEveryExperiment(t *testing.T) {
	data, err := os.ReadFile("../../docs/EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("docs/EXPERIMENTS.md must exist: %v", err)
	}
	doc := string(data)
	for _, name := range Names() {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("docs/EXPERIMENTS.md does not mention experiment %q (expected a `%s` reference)", name, name)
		}
	}
}

// names feeds the `all` loop, ssbench's usage line, and the docs check, so
// each entry must be well-formed: unique, lower-case (Run lower-cases its
// argument before the switch), and space-free.
func TestExperimentNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range Names() {
		if seen[name] {
			t.Errorf("experiment %q registered twice", name)
		}
		seen[name] = true
		if name != strings.ToLower(name) || strings.ContainsAny(name, " \t") {
			t.Errorf("experiment %q must be lower-case with no spaces (Run lower-cases its argument)", name)
		}
	}
}

// Every registered name must actually dispatch: Run on an unknown name is
// an error, and IsName must agree with the registry.
func TestIsNameMatchesRegistry(t *testing.T) {
	for _, name := range Names() {
		if !IsName(name) {
			t.Errorf("IsName(%q) = false for a registered experiment", name)
		}
	}
	if !IsName("all") || !IsName("ALL") {
		t.Error("IsName must accept the pseudo-experiment \"all\" case-insensitively")
	}
	if IsName("no-such-experiment") {
		t.Error("IsName accepted an unknown name")
	}
}
