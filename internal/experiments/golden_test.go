package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates testdata/golden/*.txt from the current code:
//
//	go test ./internal/experiments -run TestGoldenOutputs -update
//
// Review the diff before committing — the golden files are the repo's
// record of every experiment's exact quick-mode output (seed 1, default
// sweeps), and both this test and the ssserve e2e suite diff against them.
var update = flag.Bool("update", false, "rewrite the golden experiment outputs")

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".txt")
}

// TestGoldenOutputs renders every registered experiment in quick mode at
// seed 1 and diffs the bytes against the committed golden file — at two
// worker counts, so a determinism break that slips past review shows up
// as a golden mismatch, not just an e2e failure.
func TestGoldenOutputs(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p := DefaultParams()
			p.Quick = true
			p.Workers = 4
			var buf bytes.Buffer
			if err := Run(&buf, name, p); err != nil {
				t.Fatalf("Run(%q): %v", name, err)
			}
			got := buf.Bytes()

			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath(name)), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(name), got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}

			want, err := os.ReadFile(goldenPath(name))
			if err != nil {
				t.Fatalf("no golden file for %q (run with -update to create it): %v", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("output of %q (workers=4) differs from %s\n%s", name, goldenPath(name), firstDiff(got, want))
			}

			if testing.Short() {
				return
			}
			// Serial pass: the determinism contract says the worker count is
			// unobservable in the bytes.
			p.Workers = 1
			buf.Reset()
			if err := Run(&buf, name, p); err != nil {
				t.Fatalf("Run(%q) serial: %v", name, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("output of %q at workers=1 differs from golden (determinism break)\n%s",
					name, firstDiff(buf.Bytes(), want))
			}
		})
	}
}

// TestGoldenFilesHaveNoStrays ensures every committed golden file still
// corresponds to a registered experiment.
func TestGoldenFilesHaveNoStrays(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("read testdata/golden: %v", err)
	}
	known := map[string]bool{}
	for _, name := range Names() {
		known[name+".txt"] = true
	}
	for _, e := range entries {
		if !known[e.Name()] {
			t.Errorf("testdata/golden/%s does not match any registered experiment", e.Name())
		}
	}
}

// firstDiff renders the first differing line of two outputs, with a
// little context, for a readable failure message.
func firstDiff(got, want []byte) string {
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("outputs differ in length: got %d lines, want %d", len(gl), len(wl))
}
