package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

// TestScenarioCellMatchesCellExperiment is the faithfulness contract for
// the declarative spec path: examples/cell.json run through the generic
// "scenario" experiment must reproduce the hand-coded "cell" experiment
// byte for byte. Quick mode here; CI also diffs the full-size run.
func TestScenarioCellMatchesCellExperiment(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "cell.json"))
	if err != nil {
		t.Fatal(err)
	}
	sp, err := scenario.Parse(data)
	if err != nil {
		t.Fatalf("examples/cell.json does not parse: %v", err)
	}

	p := Params{Seed: 1, Quick: true, Workers: 2}
	var direct bytes.Buffer
	if err := Run(&direct, "cell", p); err != nil {
		t.Fatal(err)
	}
	p.Scenario = sp
	var viaSpec bytes.Buffer
	if err := Run(&viaSpec, "scenario", p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), viaSpec.Bytes()) {
		t.Fatalf("scenario spec diverged from the cell experiment\n--- cell ---\n%s--- scenario ---\n%s",
			direct.String(), viaSpec.String())
	}
}

// TestScenarioRequiresSpec pins the error for the generic experiment
// invoked without a spec (e.g. ssserve without an inline scenario).
func TestScenarioRequiresSpec(t *testing.T) {
	err := Run(&bytes.Buffer{}, "scenario", Params{Seed: 1, Quick: true})
	if err == nil {
		t.Fatal("scenario experiment ran without a spec")
	}
}
