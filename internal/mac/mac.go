// Package mac models 802.11 DCF medium access at the packet level: frame
// airtimes (from the modem's symbol accounting), SIFS/DIFS/backoff timing,
// acknowledgments and the retransmission loop. The throughput experiments
// charge every scheme (single path, ExOR, SourceSync) through this model so
// comparisons are apples to apples.
package mac

import (
	"math/rand"

	"repro/internal/modem"
	"repro/internal/phy"
)

// Params carries the DCF timing configuration.
type Params struct {
	Cfg        *modem.Config
	SlotTime   float64 // seconds (9 us in 802.11g OFDM)
	SIFS       float64 // seconds (10 us)
	CWMin      int     // minimum contention window (15)
	CWMax      int     // maximum contention window (1023)
	AckBytes   int     // ACK frame body size
	AckRate    modem.Rate
	RetryLimit int // attempts per packet before giving up
}

// Default returns 802.11g-like DCF parameters for the given PHY config.
func Default(cfg *modem.Config) Params {
	return Params{
		Cfg:        cfg,
		SlotTime:   9e-6,
		SIFS:       10e-6,
		CWMin:      15,
		CWMax:      1023,
		AckBytes:   14,
		AckRate:    modem.Rate{Mod: modem.BPSK, Code: modem.Rate12},
		RetryLimit: 7,
	}
}

// DIFS returns the distributed interframe space: SIFS + 2 slots.
func (p Params) DIFS() float64 { return p.SIFS + 2*p.SlotTime }

// FrameDuration returns the airtime of a single-sender data frame.
func (p Params) FrameDuration(rate modem.Rate, payloadBytes int) float64 {
	fp := modem.FrameParams{
		Cfg: p.Cfg, Rate: rate, CP: p.Cfg.CPLen,
		PayloadLen: payloadBytes, ScramblerSeed: 1,
	}
	return float64(fp.AirtimeSamples()) / p.Cfg.SampleRateHz
}

// JointFrameDuration returns the airtime of a SourceSync joint frame,
// including the sync header, SIFS gap, CE slots and any CP increase.
func (p Params) JointFrameDuration(rate modem.Rate, payloadBytes, numCo, dataCP int) float64 {
	jp := phy.JointFrameParams{
		Cfg: p.Cfg, Rate: rate, DataCP: dataCP,
		PayloadLen: payloadBytes, Seed: 1, NumCo: numCo,
	}
	return jp.AirtimeSeconds()
}

// AckDuration returns the airtime of an ACK frame.
func (p Params) AckDuration() float64 {
	return p.FrameDuration(p.AckRate, p.AckBytes)
}

// AckTimeout returns how long a transmitter waits before concluding no ACK
// is coming: SIFS + one slot + the time to detect a preamble (the 802.11
// ACKTimeout). This is shorter than a full ACK exchange — a failed attempt
// must not be billed as if the ACK had arrived.
func (p Params) AckTimeout() float64 {
	return p.SIFS + p.SlotTime + float64(p.Cfg.PreambleLen())/p.Cfg.SampleRateHz
}

// CW returns the contention window for the given retry attempt (0-based):
// CWMin doubled per retry, saturating at CWMax.
func (p Params) CW(attempt int) int {
	cw := p.CWMin
	for i := 0; i < attempt; i++ {
		cw = cw*2 + 1
		if cw > p.CWMax {
			return p.CWMax
		}
	}
	return cw
}

// Backoff draws the random backoff duration for the given retry attempt
// (0-based); the contention window doubles per retry up to CWMax.
func (p Params) Backoff(attempt int, rng *rand.Rand) float64 {
	return float64(rng.Intn(p.CW(attempt)+1)) * p.SlotTime
}

// AttemptOverhead returns the channel-access cost of one transmission
// attempt excluding the data frame itself: DIFS + drawn backoff, plus
// SIFS + ACK when acknowledged.
func (p Params) AttemptOverhead(attempt int, acked bool, rng *rand.Rand) float64 {
	t := p.DIFS() + p.Backoff(attempt, rng)
	if acked {
		t += p.SIFS + p.AckDuration()
	}
	return t
}

// TxOutcome summarizes a retransmission loop.
type TxOutcome struct {
	Success  bool
	Attempts int
	AirTime  float64 // total medium time consumed, seconds
}

// RetryLoop transmits a frame of the given duration until `succeeds`
// returns true or the retry limit is exhausted. succeeds is called once per
// attempt (callers evaluate channel/PER randomness inside it). acked
// controls whether successful attempts are charged for an ACK exchange.
func (p Params) RetryLoop(rng *rand.Rand, frameTime float64, acked bool, succeeds func(attempt int) bool) TxOutcome {
	var out TxOutcome
	for attempt := 0; attempt < p.RetryLimit; attempt++ {
		out.Attempts++
		ok := succeeds(attempt)
		out.AirTime += p.DIFS() + p.Backoff(attempt, rng) + frameTime
		if ok {
			if acked {
				out.AirTime += p.SIFS + p.AckDuration()
			}
			out.Success = true
			return out
		}
		// A failed attempt waits out the ACK timeout — not a full ACK
		// exchange, which would overbill retry-heavy schemes.
		if acked {
			out.AirTime += p.AckTimeout()
		}
	}
	return out
}
