package mac

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/modem"
)

func TestFrameDurationKnownValue(t *testing.T) {
	p := Default(modem.Profile80211())
	r6, _ := modem.RateByMbps(6)
	// 1460+4 bytes + 6 tail bits at 24 data bits/symbol: 489 symbols of
	// 4 us after the 16 us training preamble.
	d := p.FrameDuration(r6, 1460)
	want := float64(p.Cfg.PreambleLen())/p.Cfg.SampleRateHz + math.Ceil((1464*8+6)/24.0)*4e-6
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("duration %g, want %g", d, want)
	}
	// Faster rate, shorter frame.
	r54, _ := modem.RateByMbps(54)
	if p.FrameDuration(r54, 1460) >= d {
		t.Fatal("54 Mbps frame should be shorter than 6 Mbps")
	}
}

func TestJointFrameDurationIncludesOverhead(t *testing.T) {
	p := Default(modem.Profile80211())
	r12, _ := modem.RateByMbps(12)
	single := p.FrameDuration(r12, 1460)
	joint := p.JointFrameDuration(r12, 1460, 1, p.Cfg.CPLen)
	if joint <= single {
		t.Fatal("joint frame must cost more airtime than a bare frame")
	}
	// And the overhead is small (paper: ~1.7% + header).
	if (joint-single)/joint > 0.08 {
		t.Fatalf("joint overhead fraction %.3f too large", (joint-single)/joint)
	}
	// CP increase lengthens the frame.
	longer := p.JointFrameDuration(r12, 1460, 1, p.Cfg.CPLen+4)
	if longer <= joint {
		t.Fatal("CP increase must lengthen the frame")
	}
}

func TestBackoffDoubling(t *testing.T) {
	p := Default(modem.Profile80211())
	rng := rand.New(rand.NewSource(1))
	avg := func(attempt int) float64 {
		var s float64
		for i := 0; i < 4000; i++ {
			s += p.Backoff(attempt, rng)
		}
		return s / 4000
	}
	a0, a2 := avg(0), avg(2)
	// Expected: CW 15 -> mean 7.5 slots; CW 63 -> mean 31.5 slots.
	if math.Abs(a0-7.5*p.SlotTime) > p.SlotTime {
		t.Fatalf("attempt0 mean backoff %g", a0)
	}
	if math.Abs(a2-31.5*p.SlotTime) > 2*p.SlotTime {
		t.Fatalf("attempt2 mean backoff %g", a2)
	}
	// CW saturates at CWMax.
	big := avg(12)
	if big > (float64(p.CWMax)/2+40)*p.SlotTime {
		t.Fatalf("saturated backoff %g too large", big)
	}
}

func TestRetryLoopStatistics(t *testing.T) {
	p := Default(modem.Profile80211())
	rng := rand.New(rand.NewSource(2))
	r6, _ := modem.RateByMbps(6)
	ft := p.FrameDuration(r6, 500)

	// 50% loss: expected ~2 attempts, near-certain eventual success.
	var attempts, successes int
	const n = 2000
	for i := 0; i < n; i++ {
		out := p.RetryLoop(rng, ft, true, func(int) bool { return rng.Float64() < 0.5 })
		attempts += out.Attempts
		if out.Success {
			successes++
		}
	}
	if successes < n*98/100 {
		t.Fatalf("successes %d/%d", successes, n)
	}
	mean := float64(attempts) / float64(successes)
	if mean < 1.8 || mean > 2.2 {
		t.Fatalf("mean attempts %.2f, want ~2", mean)
	}

	// Dead link: retry limit reached, no success.
	out := p.RetryLoop(rng, ft, true, func(int) bool { return false })
	if out.Success || out.Attempts != p.RetryLimit {
		t.Fatalf("dead link outcome %+v", out)
	}
	if out.AirTime < float64(p.RetryLimit)*ft {
		t.Fatal("airtime must include every attempt")
	}
}

func TestAckTimeoutShorterThanAckExchange(t *testing.T) {
	p := Default(modem.Profile80211())
	to := p.AckTimeout()
	if to <= p.SIFS {
		t.Fatalf("AckTimeout %g must exceed SIFS", to)
	}
	if full := p.SIFS + p.AckDuration(); to >= full {
		t.Fatalf("AckTimeout %g must be shorter than a full ACK exchange %g", to, full)
	}
}

func TestFailedAttemptsChargedAckTimeout(t *testing.T) {
	// On a dead link every attempt fails; total airtime must use AckTimeout
	// per attempt, not the full SIFS+ACK exchange.
	p := Default(modem.Profile80211())
	p.CWMin, p.CWMax = 0, 0 // no backoff: airtime is deterministic
	rng := rand.New(rand.NewSource(3))
	r6, _ := modem.RateByMbps(6)
	ft := p.FrameDuration(r6, 500)
	out := p.RetryLoop(rng, ft, true, func(int) bool { return false })
	want := float64(p.RetryLimit) * (p.DIFS() + ft + p.AckTimeout())
	if math.Abs(out.AirTime-want) > 1e-12 {
		t.Fatalf("dead-link airtime %g, want %g", out.AirTime, want)
	}
}

func TestCWDoubling(t *testing.T) {
	p := Default(modem.Profile80211())
	if p.CW(0) != p.CWMin {
		t.Fatalf("CW(0) = %d", p.CW(0))
	}
	if p.CW(1) != 2*p.CWMin+1 {
		t.Fatalf("CW(1) = %d", p.CW(1))
	}
	if p.CW(20) != p.CWMax {
		t.Fatalf("CW must saturate at CWMax, got %d", p.CW(20))
	}
}

func TestDIFS(t *testing.T) {
	p := Default(modem.Profile80211())
	if got := p.DIFS(); math.Abs(got-28e-6) > 1e-12 {
		t.Fatalf("DIFS %g", got)
	}
}
