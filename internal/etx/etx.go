// Package etx implements the ETX (expected transmission count) link metric
// of De Couto et al. and shortest-ETX-path routing, the substrate both
// single-path routing and ExOR forwarder selection build on (paper §7.2).
package etx

import (
	"container/heap"
	"math"
)

// Inf is the metric of an unusable link or unreachable node.
var Inf = math.Inf(1)

// LinkETX returns the ETX of a link whose forward and reverse delivery
// probabilities are df and dr: 1/(df*dr). Links below a minimum delivery
// probability are unusable (routing protocols prune them).
func LinkETX(df, dr float64) float64 {
	p := df * dr
	if p <= 0 {
		return Inf
	}
	return 1 / p
}

// Graph is a directed graph with ETX edge weights, nodes indexed 0..N-1.
type Graph struct {
	n   int
	adj [][]edge
}

type edge struct {
	to int
	w  float64
}

// NewGraph creates a graph with n nodes and no edges.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]edge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddLink adds a directed edge with the given ETX weight; non-finite or
// non-positive weights are ignored.
func (g *Graph) AddLink(from, to int, w float64) {
	if math.IsInf(w, 0) || math.IsNaN(w) || w <= 0 {
		return
	}
	g.adj[from] = append(g.adj[from], edge{to, w})
}

// item is a priority queue entry for Dijkstra.
type item struct {
	node int
	dist float64
}

type pq []item

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(item)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// DistancesTo returns, for every node, the minimum total ETX to reach dst
// (running Dijkstra on the reversed graph). Unreachable nodes get +Inf.
// This is the "ETX distance from the destination" ordering ExOR uses for
// its forwarder priority.
func (g *Graph) DistancesTo(dst int) []float64 {
	// Build reverse adjacency.
	radj := make([][]edge, g.n)
	for u, es := range g.adj {
		for _, e := range es {
			radj[e.to] = append(radj[e.to], edge{u, e.w})
		}
	}
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[dst] = 0
	q := &pq{{dst, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(item)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range radj[it.node] {
			if nd := it.dist + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(q, item{e.to, nd})
			}
		}
	}
	return dist
}

// ShortestPath returns the minimum-ETX path from src to dst (inclusive) and
// its total metric, or nil if unreachable.
func (g *Graph) ShortestPath(src, dst int) ([]int, float64) {
	dist := make([]float64, g.n)
	prev := make([]int, g.n)
	for i := range dist {
		dist[i] = Inf
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(item)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = it.node
				heap.Push(q, item{e.to, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, Inf
	}
	var path []int
	for at := dst; at != -1; at = prev[at] {
		path = append(path, at)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst]
}

// ForwarderSet returns the nodes strictly closer (in ETX) to dst than src,
// ordered by increasing distance to dst — ExOR's prioritized forwarder
// list. src and unreachable nodes are excluded.
func (g *Graph) ForwarderSet(src, dst int) []int {
	dist := g.DistancesTo(dst)
	var out []int
	for v := 0; v < g.n; v++ {
		if v == src {
			continue
		}
		if dist[v] < dist[src] {
			out = append(out, v)
		}
	}
	// Insertion sort by distance (sets are tiny).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && dist[out[j]] < dist[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
