package etx

import (
	"math"
	"testing"
)

func TestLinkETX(t *testing.T) {
	if got := LinkETX(1, 1); got != 1 {
		t.Fatalf("perfect link ETX %g", got)
	}
	if got := LinkETX(0.5, 1); got != 2 {
		t.Fatalf("50%% link ETX %g", got)
	}
	if got := LinkETX(0.5, 0.5); got != 4 {
		t.Fatalf("bidirectional 50%% ETX %g", got)
	}
	if !math.IsInf(LinkETX(0, 1), 1) {
		t.Fatal("dead link must be Inf")
	}
}

func TestShortestPathSimpleChain(t *testing.T) {
	g := NewGraph(3)
	g.AddLink(0, 1, 1.2)
	g.AddLink(1, 2, 1.3)
	g.AddLink(0, 2, 4.0) // direct but worse
	path, d := g.ShortestPath(0, 2)
	if math.Abs(d-2.5) > 1e-12 {
		t.Fatalf("dist %g", d)
	}
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 2 {
		t.Fatalf("path %v", path)
	}
}

func TestShortestPathPrefersDirectWhenBetter(t *testing.T) {
	g := NewGraph(3)
	g.AddLink(0, 1, 2)
	g.AddLink(1, 2, 2)
	g.AddLink(0, 2, 3)
	path, d := g.ShortestPath(0, 2)
	if d != 3 || len(path) != 2 {
		t.Fatalf("path %v dist %g", path, d)
	}
}

func TestUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.AddLink(0, 1, 1)
	path, d := g.ShortestPath(0, 2)
	if path != nil || !math.IsInf(d, 1) {
		t.Fatalf("expected unreachable, got %v %g", path, d)
	}
	dist := g.DistancesTo(2)
	if !math.IsInf(dist[0], 1) || dist[2] != 0 {
		t.Fatalf("distances %v", dist)
	}
}

func TestAddLinkIgnoresBadWeights(t *testing.T) {
	g := NewGraph(2)
	g.AddLink(0, 1, Inf)
	g.AddLink(0, 1, -2)
	g.AddLink(0, 1, 0)
	if _, d := g.ShortestPath(0, 1); !math.IsInf(d, 1) {
		t.Fatal("bad-weight links should not exist")
	}
}

func TestForwarderSetOrdering(t *testing.T) {
	// Paper Fig. 10 topology: src 0, relays 1-3, dst 4. All relays closer
	// to dst than src; ordering by ETX distance to dst.
	g := NewGraph(5)
	// src -> relays (loss 0.5 both ways -> ETX 4).
	for _, r := range []int{1, 2, 3} {
		g.AddLink(0, r, 4)
		g.AddLink(r, 4, 4)
	}
	// Make relay 2 slightly better placed.
	g = NewGraph(5)
	g.AddLink(0, 1, 4)
	g.AddLink(0, 2, 4)
	g.AddLink(0, 3, 4)
	g.AddLink(1, 4, 4)
	g.AddLink(2, 4, 2)
	g.AddLink(3, 4, 5)
	fs := g.ForwarderSet(0, 4)
	if len(fs) != 4 {
		t.Fatalf("forwarder set %v", fs)
	}
	if fs[0] != 4 || fs[1] != 2 || fs[2] != 1 || fs[3] != 3 {
		t.Fatalf("forwarder order %v, want [4 2 1 3]", fs)
	}
}

func TestForwarderSetExcludesFartherNodes(t *testing.T) {
	g := NewGraph(4)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 0, 1)
	g.AddLink(0, 3, 10)
	g.AddLink(1, 3, 1)
	g.AddLink(2, 3, 30) // node 2 exists but is farther than 0
	g.AddLink(0, 2, 1)
	fs := g.ForwarderSet(0, 3)
	for _, v := range fs {
		if v == 2 {
			t.Fatal("node 2 is farther from dst and must be excluded")
		}
		if v == 0 {
			t.Fatal("src must be excluded")
		}
	}
}
