package modem

import (
	"math"
	"sync"
)

// Soft demapping: instead of slicing each equalized constellation point to
// the nearest symbol (hard decision), compute per-bit confidences from the
// max-log LLR — the distance to the nearest constellation point with the
// bit at 0 versus at 1, scaled by the noise variance — and let the Viterbi
// decoder weigh them. Worth ~2 dB of coding gain near the waterfall.

// constPoint pairs a constellation point with its bit pattern.
type constPoint struct {
	pt   complex128
	bits []byte
}

//sslint:allow detgoroutine constellation memo; the table is a pure function of the modulation, so cache timing cannot reach output
var constCache sync.Map // Modulation -> []constPoint

// points enumerates the constellation of m with bit labels.
func (m Modulation) points() []constPoint {
	if v, ok := constCache.Load(m); ok {
		return v.([]constPoint)
	}
	n := m.BitsPerSymbol()
	out := make([]constPoint, 0, 1<<n)
	for code := 0; code < 1<<n; code++ {
		bits := make([]byte, n)
		for b := 0; b < n; b++ {
			bits[b] = byte(code >> (n - 1 - b) & 1)
		}
		out = append(out, constPoint{pt: m.Map(bits), bits: bits})
	}
	constCache.Store(m, out)
	return out
}

// DemapSoft appends BitsPerSymbol confidences in [0,1] (probability that
// the bit is 1) for the received point sym, given the per-point noise
// variance. noiseVar <= 0 degenerates to hard decisions (confidences
// exactly 0 or 1), so one code path serves both.
func (m Modulation) DemapSoft(sym complex128, noiseVar float64, dst []float64) []float64 {
	pts := m.points()
	n := m.BitsPerSymbol()
	for b := 0; b < n; b++ {
		d0 := math.Inf(1)
		d1 := math.Inf(1)
		for i := range pts {
			d := sqDist(sym, pts[i].pt)
			if pts[i].bits[b] == 1 {
				if d < d1 {
					d1 = d
				}
			} else if d < d0 {
				d0 = d
			}
		}
		var conf float64
		if noiseVar <= 0 {
			if d1 < d0 {
				conf = 1
			}
		} else {
			llr := (d0 - d1) / noiseVar
			if llr > 50 {
				llr = 50
			} else if llr < -50 {
				llr = -50
			}
			conf = 1 / (1 + math.Exp(-llr))
		}
		dst = append(dst, conf)
	}
	return dst
}

func sqDist(a, b complex128) float64 {
	dr := real(a) - real(b)
	di := imag(a) - imag(b)
	return dr*dr + di*di
}
