// Package modem implements an 802.11a-style OFDM physical layer on complex
// baseband samples: scrambling, convolutional coding with puncturing and
// Viterbi decoding, interleaving, BPSK/QPSK/16-QAM/64-QAM mapping, pilot
// tracking, training preambles, packet detection and channel estimation.
//
// The modem is parametric over an OFDM configuration so the same code runs
// both a standard 20 MHz / 64-subcarrier 802.11a profile and a WiGLAN-like
// 128 MHz / 128-subcarrier profile (1 us symbols) matching the radio used in
// the SourceSync paper.
package modem

import "fmt"

// Config describes one OFDM PHY profile. All times derive from SampleRateHz.
type Config struct {
	Name         string
	SampleRateHz float64 // complex baseband sample rate
	NFFT         int     // FFT size (power of two)
	CPLen        int     // cyclic prefix length in samples (default; may be raised per frame)
	UsedHalf     int     // subcarriers -UsedHalf..-1 and 1..UsedHalf carry energy
	Pilots       []int   // signed pilot subcarrier indices (subset of used)

	dataBins  []int // signed indices of data subcarriers, ascending
	pilotBins []int // signed indices of pilots, ascending

	// Cached training fields, computed by build.
	stsF, ltsF []complex128 // frequency domain, indexed by FFT bin
	stsT, ltsT []complex128 // time domain, one NFFT period each
}

// Profile80211 returns the standard 802.11a/g 20 MHz profile: 64-point FFT,
// 48 data subcarriers, 4 pilots, 800 ns cyclic prefix, 4 us symbols.
func Profile80211() *Config {
	c := &Config{
		Name:         "802.11a-20MHz",
		SampleRateHz: 20e6,
		NFFT:         64,
		CPLen:        16,
		UsedHalf:     26,
		Pilots:       []int{-21, -7, 7, 21},
	}
	c.build()
	return c
}

// ProfileWiGLAN returns a profile modeled on the WiGLAN radio used by the
// paper: 128 MHz sample clock, 128-point FFT (1 us symbols, 1 MHz subcarrier
// spacing) occupying 20 MHz of bandwidth (subcarriers -10..10).
func ProfileWiGLAN() *Config {
	c := &Config{
		Name:         "WiGLAN-128MHz",
		SampleRateHz: 128e6,
		NFFT:         128,
		CPLen:        16,
		UsedHalf:     10,
		Pilots:       []int{-8, -3, 3, 8},
	}
	c.build()
	return c
}

func (c *Config) build() {
	if c.NFFT <= 0 || c.NFFT&(c.NFFT-1) != 0 {
		panic("modem: NFFT must be a power of two")
	}
	if c.UsedHalf >= c.NFFT/2 {
		panic("modem: UsedHalf must be < NFFT/2")
	}
	pilotSet := map[int]bool{}
	for _, p := range c.Pilots {
		if p == 0 || p < -c.UsedHalf || p > c.UsedHalf {
			panic(fmt.Sprintf("modem: pilot %d outside used band", p))
		}
		pilotSet[p] = true
	}
	c.dataBins = c.dataBins[:0]
	c.pilotBins = c.pilotBins[:0]
	for k := -c.UsedHalf; k <= c.UsedHalf; k++ {
		if k == 0 {
			continue
		}
		if pilotSet[k] {
			c.pilotBins = append(c.pilotBins, k)
		} else {
			c.dataBins = append(c.dataBins, k)
		}
	}
	c.buildTraining()
}

// DataBins returns the signed indices of data subcarriers in ascending order.
func (c *Config) DataBins() []int { return c.dataBins }

// PilotBins returns the signed indices of pilot subcarriers ascending.
func (c *Config) PilotBins() []int { return c.pilotBins }

// UsedBins returns all used signed subcarrier indices (data+pilots),
// ascending.
func (c *Config) UsedBins() []int {
	out := make([]int, 0, len(c.dataBins)+len(c.pilotBins))
	for k := -c.UsedHalf; k <= c.UsedHalf; k++ {
		if k == 0 {
			continue
		}
		out = append(out, k)
	}
	return out
}

// NumData returns the number of data subcarriers per symbol.
func (c *Config) NumData() int { return len(c.dataBins) }

// SymbolLen returns the length of one OFDM symbol in samples, including the
// cyclic prefix cp (pass c.CPLen for the default).
func (c *Config) SymbolLen(cp int) int { return c.NFFT + cp }

// SymbolDuration returns the duration in seconds of a symbol with the given
// cyclic prefix length.
func (c *Config) SymbolDuration(cp int) float64 {
	return float64(c.NFFT+cp) / c.SampleRateHz
}

// SamplePeriod returns the duration of one sample in seconds.
func (c *Config) SamplePeriod() float64 { return 1 / c.SampleRateHz }

// Bin converts a signed subcarrier index to an FFT array index.
func (c *Config) Bin(k int) int {
	if k >= 0 {
		return k
	}
	return c.NFFT + k
}

// SubcarrierSpacingHz returns the subcarrier spacing in Hz.
func (c *Config) SubcarrierSpacingHz() float64 {
	return c.SampleRateHz / float64(c.NFFT)
}
