package modem

// Frame construction: payload bytes -> CRC -> scramble -> convolutional code
// (zero-terminated, punctured) -> per-symbol interleaving -> constellation
// mapping -> OFDM symbols appended to the training preamble.

// FrameParams fixes everything a receiver must know to decode a frame. In a
// real system most of this travels in a SIGNAL/sync header; here the MAC
// layer conveys it out of band (the SourceSync sync header is modeled
// explicitly at the PHY layer above this package).
type FrameParams struct {
	Cfg           *Config
	Rate          Rate
	CP            int  // cyclic prefix for data symbols
	PayloadLen    int  // bytes, before CRC
	ScramblerSeed byte // nonzero 7-bit seed
	// SymbolMultiple, when > 1, pads the frame so the number of data
	// symbols is a multiple of it. Space-time block codes need whole
	// blocks of symbols (2 for Alamouti, 4 for quasi-orthogonal).
	SymbolMultiple int
}

// NumDataSymbols returns the number of OFDM data symbols in the frame.
func (p FrameParams) NumDataSymbols() int {
	nBits := (p.PayloadLen+4)*8 + convK - 1 // payload + CRC32 + tail
	dbps := p.Rate.DataBitsPerSymbol(p.Cfg)
	n := (nBits + dbps - 1) / dbps
	if p.SymbolMultiple > 1 {
		if rem := n % p.SymbolMultiple; rem != 0 {
			n += p.SymbolMultiple - rem
		}
	}
	return n
}

// AirtimeSamples returns the total frame duration in samples, preamble
// included.
func (p FrameParams) AirtimeSamples() int {
	return p.Cfg.PreambleLen() + p.NumDataSymbols()*(p.CP+p.Cfg.NFFT)
}

// EncodePayloadSymbols runs the bit-level TX pipeline and returns the
// sequence of constellation points, grouped per OFDM symbol. This is shared
// between the single-sender path and the SourceSync joint path (which
// space-time codes these points before OFDM assembly).
func (p FrameParams) EncodePayloadSymbols(payload []byte) [][]complex128 {
	if len(payload) != p.PayloadLen {
		panic("modem: payload length does not match FrameParams")
	}
	bits := BytesToBits(AppendCRC32(append([]byte(nil), payload...)))
	NewScrambler(p.ScramblerSeed).XOR(bits)
	bits = AppendTail(bits)
	// Pad to the full symbol count at the data-bit level (this includes any
	// SymbolMultiple padding).
	dbps := p.Rate.DataBitsPerSymbol(p.Cfg)
	want := p.NumDataSymbols() * dbps
	for len(bits) < want {
		bits = append(bits, 0)
	}
	coded := ConvEncode(bits, p.Rate.Code)

	ncbps := p.Rate.CodedBitsPerSymbol(p.Cfg)
	nbpsc := p.Rate.Mod.BitsPerSymbol()
	nsym := len(coded) / ncbps
	out := make([][]complex128, nsym)
	for s := 0; s < nsym; s++ {
		chunk := coded[s*ncbps : (s+1)*ncbps]
		inter := Interleave(chunk, nbpsc)
		out[s] = p.Rate.Mod.MapBits(inter)
	}
	return out
}

// BuildFrame produces the complete baseband waveform for a single-sender
// frame: preamble followed by OFDM data symbols.
func BuildFrame(p FrameParams, payload []byte) []complex128 {
	syms := p.EncodePayloadSymbols(payload)
	wave := p.Cfg.Preamble()
	for i, s := range syms {
		wave = append(wave, p.Cfg.AssembleSymbol(s, i, p.CP)...)
	}
	return wave
}

// DecodeSymbolsToPayload runs the bit-level RX pipeline on equalized
// constellation points (grouped per symbol) with hard decisions and returns
// the payload and CRC status. It is the inverse of EncodePayloadSymbols.
func (p FrameParams) DecodeSymbolsToPayload(syms [][]complex128) (payload []byte, ok bool) {
	return p.DecodeSymbolsToPayloadSoft(syms, 0)
}

// DecodeSymbolsToPayloadSoft is DecodeSymbolsToPayload with soft-decision
// demapping: noiseVar is the per-point error variance (a receiver's EVM
// estimate); zero selects hard decisions.
func (p FrameParams) DecodeSymbolsToPayloadSoft(syms [][]complex128, noiseVar float64) (payload []byte, ok bool) {
	nbpsc := p.Rate.Mod.BitsPerSymbol()
	var soft []float64
	sf := make([]float64, 0, p.Rate.CodedBitsPerSymbol(p.Cfg))
	for _, s := range syms {
		sf = sf[:0]
		for _, pt := range s {
			sf = p.Rate.Mod.DemapSoft(pt, noiseVar, sf)
		}
		soft = append(soft, Deinterleave(sf, nbpsc)...)
	}
	// Number of data bits that were encoded (payload+CRC+tail+pad).
	padded := p.NumDataSymbols() * p.Rate.DataBitsPerSymbol(p.Cfg)
	dec := ViterbiDecode(soft, padded, p.Rate.Code)
	dec = dec[:(p.PayloadLen+4)*8] // strip tail+pad before descrambling
	NewScrambler(p.ScramblerSeed).XOR(dec)
	return CheckCRC32(BitsToBytes(dec))
}
