package modem

import (
	"math/cmplx"

	"repro/internal/dsp"
)

// pilotPolarity is the 127-element pseudorandom pilot polarity sequence
// (+1/-1), generated once from the 802.11 scrambler with the all-ones seed.
var pilotPolarity = buildPilotPolarity()

func buildPilotPolarity() []float64 {
	s := NewScrambler(0x7f)
	out := make([]float64, 127)
	for i := range out {
		if s.Next() == 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// PilotValue returns the reference value of pilot bin index p (position in
// PilotBins()) during data symbol symIdx.
func (c *Config) PilotValue(p, symIdx int) complex128 {
	pol := pilotPolarity[symIdx%len(pilotPolarity)]
	return complex(pol, 0)
}

// AssembleSymbol builds one time-domain OFDM symbol (with cyclic prefix cp)
// from NumData constellation points. symIdx selects the pilot polarity.
func (c *Config) AssembleSymbol(data []complex128, symIdx, cp int) []complex128 {
	return c.AssembleSymbolPilots(data, symIdx, cp, true)
}

// AssembleSymbolPilots is AssembleSymbol with explicit control over pilot
// transmission. SourceSync senders leave the pilot bins silent in symbols
// they do not own (paper §5's shared pilots).
func (c *Config) AssembleSymbolPilots(data []complex128, symIdx, cp int, withPilots bool) []complex128 {
	if len(data) != c.NumData() {
		panic("modem: AssembleSymbol wrong number of data points")
	}
	bins := make([]complex128, c.NFFT)
	for i, k := range c.dataBins {
		bins[c.Bin(k)] = data[i]
	}
	if withPilots {
		for p, k := range c.pilotBins {
			bins[c.Bin(k)] = c.PilotValue(p, symIdx)
		}
	}
	t := dsp.IFFT(bins)
	out := make([]complex128, cp+c.NFFT)
	copy(out, t[c.NFFT-cp:])
	copy(out[cp:], t)
	return out
}

// SymbolBins runs an FFT over the NFFT samples starting at the beginning of
// the useful (post-CP) part of a received symbol.
func (c *Config) SymbolBins(samples []complex128) []complex128 {
	if len(samples) < c.NFFT {
		panic("modem: SymbolBins needs NFFT samples")
	}
	return dsp.FFT(samples[:c.NFFT])
}

// PilotPhase estimates the common phase error of a received symbol's bins
// relative to channel estimate H (indexed by FFT bin), using the pilot bins
// of symbol symIdx. It also returns the mean pilot amplitude ratio, a cheap
// per-symbol gain-tracking aid.
func (c *Config) PilotPhase(bins, h []complex128, symIdx int) (phase float64, gain float64) {
	var acc complex128
	var num, den float64
	for p, k := range c.pilotBins {
		b := c.Bin(k)
		ref := h[b] * c.PilotValue(p, symIdx)
		acc += bins[b] * cmplx.Conj(ref)
		num += cmplx.Abs(bins[b])
		den += cmplx.Abs(ref)
	}
	if den == 0 {
		return 0, 1
	}
	return cmplx.Phase(acc), num / den
}

// EqualizeData corrects a received symbol's bins by the common phase error
// and the channel, returning the NumData equalized constellation points.
func (c *Config) EqualizeData(bins, h []complex128, phase float64) []complex128 {
	rot := cmplx.Exp(complex(0, -phase))
	out := make([]complex128, len(c.dataBins))
	for i, k := range c.dataBins {
		b := c.Bin(k)
		hv := h[b]
		if hv == 0 {
			out[i] = 0
			continue
		}
		out[i] = bins[b] * rot / hv
	}
	return out
}

// EstimateChannelLTS estimates the per-bin channel from two received LTS
// symbols (each NFFT samples, CP already skipped). Averaging the two halves
// suppresses noise by 3 dB.
func (c *Config) EstimateChannelLTS(lts1, lts2 []complex128) []complex128 {
	b1 := c.SymbolBins(lts1)
	b2 := c.SymbolBins(lts2)
	h := make([]complex128, c.NFFT)
	for _, k := range c.UsedBins() {
		b := c.Bin(k)
		ref := c.ltsF[b]
		if ref == 0 {
			continue
		}
		h[b] = (b1[b] + b2[b]) / (2 * ref)
	}
	return h
}
