package modem

import (
	"math"
	"math/rand"

	"repro/internal/dsp"
)

// Training sequences. The short training sequence (STS) occupies every 4th
// used subcarrier, making its time-domain form periodic with period NFFT/4;
// receivers detect packets from this periodicity and from the energy rise.
// The long training sequence (LTS) occupies every used subcarrier with a
// fixed +-1 pattern and is transmitted twice after a half-symbol guard;
// receivers derive channel estimates and fine timing from it.
//
// For the 64-FFT profile these correspond structurally to the 802.11a
// preamble; for other FFT sizes equivalent sequences are generated from a
// fixed pseudorandom pattern so the whole modem stays parametric.

// buildTraining populates the cached frequency- and time-domain training
// fields. Called once from Config.build.
func (c *Config) buildTraining() {
	// STS: every 4th used bin carries a QPSK point.
	rngS := rand.New(rand.NewSource(0x5753)) // fixed: sequences are part of the "standard"
	c.stsF = make([]complex128, c.NFFT)
	scale := 1 / math.Sqrt2
	n := 0
	for _, k := range c.UsedBins() {
		if k%4 != 0 {
			continue
		}
		re := float64(rngS.Intn(2)*2 - 1)
		im := float64(rngS.Intn(2)*2 - 1)
		c.stsF[c.Bin(k)] = complex(re*scale, im*scale)
		n++
	}
	if n > 0 {
		// Boost so the preamble's per-sample power matches a data symbol's.
		boost := math.Sqrt(float64(len(c.UsedBins())) / float64(n))
		for i := range c.stsF {
			c.stsF[i] *= complex(boost, 0)
		}
	}

	// LTS: +-1 on every used bin.
	rngL := rand.New(rand.NewSource(0x4C54))
	c.ltsF = make([]complex128, c.NFFT)
	for _, k := range c.UsedBins() {
		c.ltsF[c.Bin(k)] = complex(float64(rngL.Intn(2)*2-1), 0)
	}
	c.ltsT = dsp.IFFT(c.ltsF)
	c.stsT = dsp.IFFT(c.stsF)
}

// LTSReference returns the frequency-domain LTS values indexed by FFT bin;
// receivers divide received LTS bins by these to estimate the channel. The
// returned slice is shared and must not be modified.
func (c *Config) LTSReference() []complex128 { return c.ltsF }

// LTSTime returns the time-domain LTS symbol (no guard). Shared; read-only.
func (c *Config) LTSTime() []complex128 { return c.ltsT }

// ShortTraining returns the time-domain short training field: 10 repetitions
// of the NFFT/4-sample period.
func (c *Config) ShortTraining() []complex128 {
	period := c.NFFT / 4
	out := make([]complex128, 0, 10*period)
	for i := 0; i < 10; i++ {
		out = append(out, c.stsT[:period]...)
	}
	return out
}

// LongTraining returns the time-domain long training field: a guard interval
// of NFFT/2 samples (cyclic extension) followed by two full LTS symbols.
func (c *Config) LongTraining() []complex128 {
	out := make([]complex128, 0, c.NFFT/2+2*c.NFFT)
	out = append(out, c.ltsT[c.NFFT/2:]...)
	out = append(out, c.ltsT...)
	out = append(out, c.ltsT...)
	return out
}

// Preamble returns the full training preamble (STS then LTS).
func (c *Config) Preamble() []complex128 {
	out := c.ShortTraining()
	return append(out, c.LongTraining()...)
}

// PreambleLen returns len(Preamble()) without building it.
func (c *Config) PreambleLen() int {
	return 10*(c.NFFT/4) + c.NFFT/2 + 2*c.NFFT
}

// LTSOffset returns the offset in samples from the start of the preamble to
// the first sample of the first full LTS symbol.
func (c *Config) LTSOffset() int {
	return 10*(c.NFFT/4) + c.NFFT/2
}

// STSPeriod returns the periodicity of the short training field in samples.
func (c *Config) STSPeriod() int { return c.NFFT / 4 }
