package modem

import (
	"math"
	"math/cmplx"

	"repro/internal/dsp"
)

// Detection models the two-stage packet acquisition of an 802.11 receiver.
//
// Stage 1 (coarse): a double-sliding-window energy detector fires when the
// ratio of incoming to trailing energy crosses a threshold, confirmed by the
// periodicity metric of the short training field. The instant of crossing is
// the "packet detection" event; its offset from the true first sample is the
// packet detection delay that varies with SNR and multipath (paper §4.2a).
//
// Stage 2 (fine): cross-correlation against the known long training field
// locates the preamble start to within a sample or two; the residual is
// measured by the SLS phase-slope estimator built on top of this package.

// DetectResult reports a packet acquisition.
type DetectResult struct {
	Detected  bool
	CoarseIdx int     // sample index at which the energy detector fired
	FineIdx   int     // estimated index of the first preamble sample
	CoarseCFO float64 // CFO estimate from STS periodicity, cycles/sample
}

// DetectorOptions tunes acquisition. Zero values select defaults.
type DetectorOptions struct {
	EnergyRatio float64 // coarse threshold on after/before energy (default 2)
	MinAutoCorr float64 // STS periodicity confirmation (default 0.35)
}

func (o *DetectorOptions) defaults() {
	if o.EnergyRatio == 0 {
		o.EnergyRatio = 2
	}
	if o.MinAutoCorr == 0 {
		o.MinAutoCorr = 0.35
	}
}

// DetectPacket searches x (starting at from) for a preamble. It returns the
// coarse detection instant and the fine preamble-start estimate.
func DetectPacket(cfg *Config, x []complex128, from int, opts DetectorOptions) DetectResult {
	opts.defaults()
	period := cfg.STSPeriod()
	w := 2 * period
	if from < 0 {
		from = 0
	}
	if len(x)-from < cfg.PreambleLen()+2*w {
		return DetectResult{}
	}
	seg := x[from:]
	ratios := dsp.DoubleSlidingWindow(seg, w)
	auto := dsp.AutoCorrRatio(seg, period, w)

	// Find the first energy-ratio crossing whose following samples also show
	// STS periodicity. The crossing at ratio index d means the energy
	// arrived inside window [d+w, d+2w); the detector "fires" at the end of
	// that window, which is what a hardware implementation timestamps.
	coarse := -1
	confirm := -1
	for d := 0; d < len(ratios); d++ {
		if ratios[d] < opts.EnergyRatio {
			continue
		}
		for j := d; j <= d+3*w && j < len(auto); j++ {
			if auto[j] >= opts.MinAutoCorr {
				confirm = j
				break
			}
		}
		if confirm >= 0 {
			coarse = d + 2*w
			break
		}
	}
	if coarse < 0 {
		return DetectResult{}
	}

	// Coarse CFO from the STS periodicity, anchored at the confirmation
	// index (where periodic signal is known to be present — the energy
	// crossing itself may precede the packet on a noise blip). The
	// lag-period correlation phase equals 2*pi*cfo*period; range
	// +-1/(2*period) cycles/sample, ample for crystal offsets.
	cfoLo := confirm
	cfoHi := confirm + 2*w
	if cfoHi+period > len(seg) {
		cfoHi = len(seg) - period
	}
	var acc complex128
	for i := cfoLo; i < cfoHi; i++ {
		acc += seg[i+period] * cmplx.Conj(seg[i])
	}
	coarseCFO := cmplx.Phase(acc) / (2 * math.Pi * float64(period))

	// Fine timing: correlate the long-training reference around the coarse
	// estimate. The LTS field begins 10 STS periods after the preamble
	// start; the coarse instant lies anywhere from just after the preamble
	// start (high SNR) to deep into the STS (low SNR), so search the whole
	// plausible span on both sides. Correlation is done on a CFO-corrected
	// copy, since uncompensated rotation decoheres the 2.5-symbol-long
	// reference.
	// The coarse instant can precede the true packet start by up to ~2w (a
	// noise blip confirmed by the following packet) or trail it by most of
	// the STS at low SNR, so the search is asymmetric.
	ref := cfg.LongTraining()
	searchLo := coarse - 6*period
	if searchLo < 0 {
		searchLo = 0
	}
	searchHi := coarse + 26*period
	if searchHi+len(ref) > len(seg) {
		searchHi = len(seg) - len(ref)
	}
	if searchHi <= searchLo {
		// Not enough samples to fine-time; fall back to the coarse guess.
		return DetectResult{Detected: true, CoarseIdx: from + coarse, FineIdx: from + coarse - w, CoarseCFO: coarseCFO}
	}
	fineSeg := append([]complex128(nil), seg[searchLo:searchHi+len(ref)]...)
	dsp.Rotate(fineSeg, -coarseCFO, searchLo)
	corr := dsp.CrossCorrelate(fineSeg, ref)
	pk, _ := dsp.PeakIndex(corr)
	// The correlation peak marks the start of LongTraining (its guard).
	// LongTraining begins 10 STS periods into the preamble.
	ltsFieldStart := searchLo + pk
	fine := ltsFieldStart - 10*period
	return DetectResult{Detected: true, CoarseIdx: from + coarse, FineIdx: from + fine, CoarseCFO: coarseCFO}
}

// EstimateCFO measures the carrier frequency offset (in cycles per sample)
// from the periodicity of the long training field: two repetitions of the
// same NFFT samples rotate by 2*pi*cfo*NFFT between them.
func EstimateCFO(cfg *Config, x []complex128, preambleStart int) float64 {
	n := cfg.NFFT
	lts1 := preambleStart + cfg.LTSOffset()
	if lts1+2*n > len(x) || lts1 < 0 {
		return 0
	}
	var acc complex128
	for i := 0; i < n; i++ {
		acc += x[lts1+n+i] * cmplx.Conj(x[lts1+i])
	}
	return cmplx.Phase(acc) / (2 * math.Pi * float64(n))
}

// CorrectCFO derotates x in place by the given offset (cycles per sample).
// x[0] is taken to be absolute sample index ref, so the correction phase is
// continuous across buffers.
func CorrectCFO(x []complex128, cfo float64, ref int) {
	dsp.Rotate(x, -cfo, ref)
}
