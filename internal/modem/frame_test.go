package modem

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

func addAWGN(r *rand.Rand, x []complex128, snrDB float64) []complex128 {
	sp := dsp.MeanPower(x)
	sigma := math.Sqrt(sp / dsp.FromDB(snrDB) / 2)
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	return out
}

func padded(r *rand.Rand, wave []complex128, before, after int, noiseDB float64) []complex128 {
	sp := dsp.MeanPower(wave)
	sigma := math.Sqrt(sp * dsp.FromDB(noiseDB) / 2)
	mk := func(n int) []complex128 {
		v := make([]complex128, n)
		for i := range v {
			v[i] = complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
		}
		return v
	}
	out := mk(before)
	out = append(out, wave...)
	return append(out, mk(after)...)
}

func testParams(cfg *Config, mbps int, payloadLen int) FrameParams {
	rate, err := RateByMbps(mbps)
	if err != nil {
		panic(err)
	}
	return FrameParams{Cfg: cfg, Rate: rate, CP: cfg.CPLen, PayloadLen: payloadLen, ScramblerSeed: 0x5d}
}

func TestFrameRoundTripIdeal(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg := Profile80211()
	for _, mbps := range []int{6, 9, 12, 18, 24, 36, 48, 54} {
		p := testParams(cfg, mbps, 100)
		payload := make([]byte, p.PayloadLen)
		r.Read(payload)
		wave := BuildFrame(p, payload)
		x := padded(r, wave, 400, 400, -40)
		rx := &Receiver{Cfg: cfg, FFTBackoff: 3}
		got, ok, _, err := rx.Receive(p, x, 0)
		if err != nil {
			t.Fatalf("%d Mbps: %v", mbps, err)
		}
		if !ok {
			t.Fatalf("%d Mbps: CRC failed on clean channel", mbps)
		}
		if string(got) != string(payload) {
			t.Fatalf("%d Mbps: payload mismatch", mbps)
		}
	}
}

func TestFrameRoundTripAWGN(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cfg := Profile80211()
	// Each rate decodes reliably at a sufficiently high SNR.
	cases := []struct {
		mbps  int
		snrDB float64
	}{
		{6, 10}, {12, 13}, {24, 20}, {54, 30},
	}
	for _, tc := range cases {
		p := testParams(cfg, tc.mbps, 200)
		payload := make([]byte, p.PayloadLen)
		r.Read(payload)
		wave := BuildFrame(p, payload)
		okCount := 0
		const trials = 10
		for trial := 0; trial < trials; trial++ {
			noisy := addAWGN(r, wave, tc.snrDB)
			x := padded(r, noisy, 300, 300, -tc.snrDB)
			rx := &Receiver{Cfg: cfg, FFTBackoff: 3}
			_, ok, _, err := rx.Receive(p, x, 0)
			if err == nil && ok {
				okCount++
			}
		}
		if okCount < trials-1 {
			t.Fatalf("%d Mbps at %.0f dB: only %d/%d frames decoded", tc.mbps, tc.snrDB, okCount, trials)
		}
	}
}

func TestFrameFailsAtVeryLowSNR(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cfg := Profile80211()
	p := testParams(cfg, 54, 200)
	payload := make([]byte, p.PayloadLen)
	r.Read(payload)
	wave := BuildFrame(p, payload)
	fails := 0
	for trial := 0; trial < 5; trial++ {
		noisy := addAWGN(r, wave, 5) // far below 64-QAM threshold
		x := padded(r, noisy, 300, 300, -5)
		rx := &Receiver{Cfg: cfg, FFTBackoff: 3}
		_, ok, _, err := rx.Receive(p, x, 0)
		if err != nil || !ok {
			fails++
		}
	}
	if fails < 4 {
		t.Fatalf("64-QAM at 5 dB should almost always fail; failed %d/5", fails)
	}
}

func TestFrameRoundTripWiGLANProfile(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	cfg := ProfileWiGLAN()
	p := FrameParams{Cfg: cfg, Rate: Rate{QPSK, Rate12}, CP: cfg.CPLen, PayloadLen: 50, ScramblerSeed: 0x11}
	payload := make([]byte, p.PayloadLen)
	r.Read(payload)
	wave := BuildFrame(p, payload)
	x := padded(r, wave, 500, 500, -35)
	rx := &Receiver{Cfg: cfg, FFTBackoff: 3}
	got, ok, _, err := rx.Receive(p, x, 0)
	if err != nil || !ok {
		t.Fatalf("WiGLAN profile decode failed: ok=%v err=%v", ok, err)
	}
	if string(got) != string(payload) {
		t.Fatal("payload mismatch")
	}
}

func TestFrameWithCFO(t *testing.T) {
	// 40 ppm at 5.8 GHz carrier / 20 Msps = 232 kHz -> 0.0116 cycles/sample.
	r := rand.New(rand.NewSource(5))
	cfg := Profile80211()
	p := testParams(cfg, 12, 150)
	payload := make([]byte, p.PayloadLen)
	r.Read(payload)
	wave := BuildFrame(p, payload)
	cfo := 232e3 / cfg.SampleRateHz
	rot := append([]complex128(nil), wave...)
	dsp.Rotate(rot, cfo, 0)
	noisy := addAWGN(r, rot, 25)
	x := padded(r, noisy, 300, 300, -25)
	rx := &Receiver{Cfg: cfg, FFTBackoff: 3}
	_, ok, diag, err := rx.Receive(p, x, 0)
	if err != nil || !ok {
		t.Fatalf("decode with CFO failed: ok=%v err=%v", ok, err)
	}
	if math.Abs(diag.CFO-cfo)/cfo > 0.05 {
		t.Fatalf("CFO estimate %g, want %g", diag.CFO, cfo)
	}
}

func TestDetectorAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	cfg := Profile80211()
	p := testParams(cfg, 6, 50)
	payload := make([]byte, p.PayloadLen)
	r.Read(payload)
	wave := BuildFrame(p, payload)
	for _, snr := range []float64{8, 15, 25} {
		noisy := addAWGN(r, wave, snr)
		before := 321
		x := padded(r, noisy, before, 300, -snr)
		det := DetectPacket(cfg, x, 0, DetectorOptions{})
		if !det.Detected {
			t.Fatalf("snr %.0f: packet not detected", snr)
		}
		if det.FineIdx < before-3 || det.FineIdx > before+3 {
			t.Fatalf("snr %.0f: fine index %d, want ~%d", snr, det.FineIdx, before)
		}
		if det.CoarseIdx < before {
			t.Fatalf("snr %.0f: coarse index %d before true start %d", snr, det.CoarseIdx, before)
		}
	}
}

func TestDetectorNoFalsePositiveOnNoise(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cfg := Profile80211()
	noise := make([]complex128, 4000)
	for i := range noise {
		noise[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	det := DetectPacket(cfg, noise, 0, DetectorOptions{})
	if det.Detected {
		t.Fatalf("false positive at %d", det.FineIdx)
	}
}

func TestDetectionDelayGrowsAtLowSNR(t *testing.T) {
	// The premise of SourceSync §4.2(a): the coarse detection instant varies
	// with SNR. Verify the spread of (coarse - true start) is larger at low
	// SNR than at high SNR.
	r := rand.New(rand.NewSource(8))
	cfg := Profile80211()
	p := testParams(cfg, 6, 40)
	payload := make([]byte, p.PayloadLen)
	r.Read(payload)
	wave := BuildFrame(p, payload)
	spread := func(snr float64) float64 {
		var delays []float64
		for trial := 0; trial < 40; trial++ {
			noisy := addAWGN(r, wave, snr)
			x := padded(r, noisy, 200, 200, -snr)
			det := DetectPacket(cfg, x, 0, DetectorOptions{})
			if det.Detected {
				delays = append(delays, float64(det.CoarseIdx-200))
			}
		}
		if len(delays) < 30 {
			t.Fatalf("snr %.0f: too many missed detections (%d/40)", snr, len(delays))
		}
		return dsp.StdDev(delays)
	}
	low := spread(3)
	high := spread(25)
	if low < high {
		t.Fatalf("detection delay spread low SNR %.2f < high SNR %.2f", low, high)
	}
}

func TestMeasureSubcarrierSNR(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cfg := Profile80211()
	p := testParams(cfg, 6, 40)
	payload := make([]byte, p.PayloadLen)
	r.Read(payload)
	wave := BuildFrame(p, payload)
	want := 15.0
	var est []float64
	for trial := 0; trial < 30; trial++ {
		noisy := addAWGN(r, wave, want)
		x := padded(r, noisy, 100, 100, -want)
		snr := MeasureSubcarrierSNR(cfg, x, 100)
		est = append(est, AverageSNRdB(snr))
	}
	avg := dsp.Mean(est)
	if math.Abs(avg-want) > 1.5 {
		t.Fatalf("estimated SNR %.1f dB, want %.1f", avg, want)
	}
}

func TestFrameParamsAccounting(t *testing.T) {
	cfg := Profile80211()
	p := testParams(cfg, 6, 1460)
	// 1460+4 bytes + 6 tail bits at 24 bits/symbol = (1464*8+6)/24 symbols.
	want := (1464*8 + 6 + 23) / 24
	if got := p.NumDataSymbols(); got != want {
		t.Fatalf("NumDataSymbols = %d, want %d", got, want)
	}
	air := p.AirtimeSamples()
	if air != cfg.PreambleLen()+want*(cfg.CPLen+cfg.NFFT) {
		t.Fatalf("AirtimeSamples = %d", air)
	}
}
