package modem

import "fmt"

// Rate describes one modulation-and-coding scheme (MCS).
type Rate struct {
	Mod  Modulation
	Code CodeRate
}

// String implements fmt.Stringer.
func (r Rate) String() string { return fmt.Sprintf("%v %v", r.Mod, r.Code) }

// StandardRates returns the eight 802.11a MCSes in increasing speed:
// 6, 9, 12, 18, 24, 36, 48, 54 Mbps when used with Profile80211.
func StandardRates() []Rate {
	return []Rate{
		{BPSK, Rate12},
		{BPSK, Rate34},
		{QPSK, Rate12},
		{QPSK, Rate34},
		{QAM16, Rate12},
		{QAM16, Rate34},
		{QAM64, Rate23},
		{QAM64, Rate34},
	}
}

// RateByMbps returns the standard MCS whose bit rate on Profile80211 is the
// given Mbps value (6, 9, 12, 18, 24, 36, 48 or 54), or an error.
func RateByMbps(mbps int) (Rate, error) {
	cfg := Profile80211()
	for _, r := range StandardRates() {
		if int(r.BitRate(cfg)/1e6+0.5) == mbps {
			return r, nil
		}
	}
	return Rate{}, fmt.Errorf("modem: no standard rate of %d Mbps", mbps)
}

// CodedBitsPerSymbol returns N_CBPS for this rate on the given config.
func (r Rate) CodedBitsPerSymbol(c *Config) int {
	return r.Mod.BitsPerSymbol() * c.NumData()
}

// DataBitsPerSymbol returns N_DBPS for this rate on the given config.
func (r Rate) DataBitsPerSymbol(c *Config) int {
	num, den := r.Code.Fraction()
	return r.CodedBitsPerSymbol(c) * num / den
}

// BitRate returns the PHY data rate in bits/second for this MCS on the given
// config with the default cyclic prefix.
func (r Rate) BitRate(c *Config) float64 {
	return float64(r.DataBitsPerSymbol(c)) / c.SymbolDuration(c.CPLen)
}

// NumSymbols returns how many OFDM symbols a payload of n data bits
// occupies at this rate (including the 6 convolutional tail bits and padding
// to a whole symbol).
func (r Rate) NumSymbols(c *Config, nBits int) int {
	dbps := r.DataBitsPerSymbol(c)
	total := nBits + convK - 1
	return (total + dbps - 1) / dbps
}
