package modem

import "fmt"

// The 802.11 convolutional code: constraint length 7, generator polynomials
// g0 = 133 (octal), g1 = 171 (octal), base rate 1/2. Higher rates are
// obtained by puncturing.
const (
	convK      = 7
	convStates = 1 << (convK - 1) // 64
	genA       = 0o133
	genB       = 0o171
)

// CodeRate identifies a convolutional code rate.
type CodeRate int

// Supported code rates.
const (
	Rate12 CodeRate = iota // 1/2
	Rate23                 // 2/3
	Rate34                 // 3/4
)

// String implements fmt.Stringer.
func (r CodeRate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	case Rate34:
		return "3/4"
	}
	return fmt.Sprintf("CodeRate(%d)", int(r))
}

// Fraction returns the code rate as numerator and denominator of
// data-bits/coded-bits.
func (r CodeRate) Fraction() (num, den int) {
	switch r {
	case Rate12:
		return 1, 2
	case Rate23:
		return 2, 3
	case Rate34:
		return 3, 4
	}
	panic("modem: unknown code rate")
}

// puncturePattern returns the keep-mask applied to the rate-1/2 mother code
// output (A0 B0 A1 B1 ...), per 802.11a Figure 116. len is the pattern
// period in mother-code bits.
func (r CodeRate) puncturePattern() []bool {
	switch r {
	case Rate12:
		return []bool{true, true}
	case Rate23:
		// Per 2 input bits -> 4 mother bits A0 B0 A1 B1, drop B1.
		return []bool{true, true, true, false}
	case Rate34:
		// Per 3 input bits -> 6 mother bits, drop B1 and A2.
		return []bool{true, true, true, false, false, true}
	}
	panic("modem: unknown code rate")
}

func parity(x uint32) byte {
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// ConvEncode encodes data bits with the 802.11 rate-1/2 mother code and then
// punctures to the requested rate. The encoder is zero-terminated: callers
// must append 6 tail zero bits to flush the trellis (AppendTail does this).
func ConvEncode(bits []byte, rate CodeRate) []byte {
	mother := make([]byte, 0, len(bits)*2)
	var state uint32
	for _, b := range bits {
		in := state | uint32(b&1)<<(convK-1)
		mother = append(mother, parity(in&genA), parity(in&genB))
		state = in >> 1
	}
	pat := rate.puncturePattern()
	out := make([]byte, 0, len(mother))
	for i, m := range mother {
		if pat[i%len(pat)] {
			out = append(out, m)
		}
	}
	return out
}

// AppendTail returns bits with 6 zero tail bits appended so the Viterbi
// decoder terminates in the all-zero state.
func AppendTail(bits []byte) []byte {
	out := make([]byte, len(bits)+convK-1)
	copy(out, bits)
	return out
}

// CodedLen returns the number of coded bits ConvEncode produces for n input
// bits at the given rate. It accounts for puncturing of a partial final
// pattern period.
func CodedLen(n int, rate CodeRate) int {
	pat := rate.puncturePattern()
	mother := n * 2
	kept := 0
	for i := 0; i < mother; i++ {
		if pat[i%len(pat)] {
			kept++
		}
	}
	return kept
}
