package modem

import "hash/crc32"

// BytesToBits expands bytes into bits, least-significant bit first within
// each byte (the 802.11 transmission order).
func BytesToBits(data []byte) []byte {
	out := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			out = append(out, b>>uint(i)&1)
		}
	}
	return out
}

// BitsToBytes packs bits (LSB first) into bytes; len(bits) must be a
// multiple of 8.
func BitsToBytes(bits []byte) []byte {
	if len(bits)%8 != 0 {
		panic("modem: BitsToBytes needs a multiple of 8 bits")
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b&1 == 1 {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// AppendCRC32 appends the IEEE CRC-32 of data (4 bytes, little endian) and
// returns the extended slice. CheckCRC32 verifies and strips it.
func AppendCRC32(data []byte) []byte {
	c := crc32.ChecksumIEEE(data)
	return append(data, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
}

// CheckCRC32 verifies a trailing CRC-32 and returns the payload without it.
// ok is false if the frame is shorter than 4 bytes or the checksum fails.
func CheckCRC32(frame []byte) (payload []byte, ok bool) {
	if len(frame) < 4 {
		return nil, false
	}
	n := len(frame) - 4
	want := uint32(frame[n]) | uint32(frame[n+1])<<8 | uint32(frame[n+2])<<16 | uint32(frame[n+3])<<24
	if crc32.ChecksumIEEE(frame[:n]) != want {
		return nil, false
	}
	return frame[:n], true
}

// CountBitErrors returns the number of differing bit positions between a and
// b, comparing up to the shorter length, plus the length difference in bits.
func CountBitErrors(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	errs := 0
	for i := 0; i < n; i++ {
		if a[i]&1 != b[i]&1 {
			errs++
		}
	}
	if len(a) > n {
		errs += len(a) - n
	}
	if len(b) > n {
		errs += len(b) - n
	}
	return errs
}
