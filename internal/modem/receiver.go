package modem

import (
	"errors"
	"maps"
	"slices"

	"repro/internal/dsp"
)

// Receiver decodes single-sender frames from a baseband sample stream. The
// SourceSync joint receiver (internal/phy) reuses its building blocks but
// runs its own joint channel estimation.
type Receiver struct {
	Cfg *Config
	Det DetectorOptions
	// FFTBackoff shifts every FFT window this many samples early (into the
	// cyclic prefix) to protect against late timing estimates at the cost
	// of CP budget. Typical: 2-4 samples.
	FFTBackoff int
	// SoftDecision feeds per-bit confidences (max-log LLRs scaled by the
	// measured EVM) to the Viterbi decoder instead of hard decisions.
	SoftDecision bool
}

// RxDiag carries per-frame receiver diagnostics used by experiments.
type RxDiag struct {
	Detect    DetectResult
	CFO       float64      // estimated carrier offset, cycles/sample
	H         []complex128 // channel estimate by FFT bin
	EVM       float64      // rms error vector magnitude over data symbols
	SymPhases []float64    // tracked common phase per data symbol
}

// ErrNoPacket is returned when no preamble is found in the stream.
var ErrNoPacket = errors.New("modem: no packet detected")

// Receive locates, equalizes and decodes one frame with parameters p from
// stream x starting at index from. It returns the recovered payload, whether
// the CRC passed and diagnostics. A detection failure returns ErrNoPacket.
func (r *Receiver) Receive(p FrameParams, x []complex128, from int) (payload []byte, ok bool, diag RxDiag, err error) {
	cfg := r.Cfg
	det := DetectPacket(cfg, x, from, r.Det)
	diag.Detect = det
	if !det.Detected {
		return nil, false, diag, ErrNoPacket
	}
	start := det.FineIdx

	// CFO estimation and correction over a private copy of the frame span.
	span := p.AirtimeSamples() + cfg.NFFT
	if start < 0 || start+span > len(x) {
		if start+span > len(x) {
			span = len(x) - start
		}
		if span <= cfg.PreambleLen() {
			return nil, false, diag, ErrNoPacket
		}
	}
	buf := append([]complex128(nil), x[start:start+span]...)
	// Two-stage CFO correction: the STS-based coarse estimate has wide
	// range but low precision; the LTS-based estimate is precise but
	// aliases beyond +-1/(2*NFFT), so it refines the residual only.
	CorrectCFO(buf, det.CoarseCFO, 0)
	residual := EstimateCFO(cfg, buf, 0)
	CorrectCFO(buf, residual, 0)
	diag.CFO = det.CoarseCFO + residual

	// Channel estimation from the two LTS repetitions, with FFT backoff.
	lts1 := cfg.LTSOffset() - r.FFTBackoff
	if lts1 < 0 || lts1+2*cfg.NFFT > len(buf) {
		return nil, false, diag, ErrNoPacket
	}
	h := cfg.EstimateChannelLTS(buf[lts1:lts1+cfg.NFFT], buf[lts1+cfg.NFFT:lts1+2*cfg.NFFT])
	diag.H = h

	// Data symbols.
	nsym := p.NumDataSymbols()
	symLen := p.CP + cfg.NFFT
	syms := make([][]complex128, 0, nsym)
	var evmAcc float64
	var evmN int
	for s := 0; s < nsym; s++ {
		symStart := cfg.PreambleLen() + s*symLen + p.CP - r.FFTBackoff
		if symStart < 0 || symStart+cfg.NFFT > len(buf) {
			return nil, false, diag, ErrNoPacket
		}
		bins := cfg.SymbolBins(buf[symStart:])
		// The backoff shifts every window equally, including the LTS used
		// for H, so no extra phase ramp correction is needed here.
		phase, _ := cfg.PilotPhase(bins, h, s)
		diag.SymPhases = append(diag.SymPhases, phase)
		eq := cfg.EqualizeData(bins, h, phase)
		syms = append(syms, eq)
		for _, v := range eq {
			// Distance to the nearest constellation point of this rate.
			bits := p.Rate.Mod.Demap(v, nil)
			ideal := p.Rate.Mod.Map(bits)
			d := v - ideal
			evmAcc += real(d)*real(d) + imag(d)*imag(d)
			evmN++
		}
	}
	if evmN > 0 {
		evmAcc /= float64(evmN)
	}
	diag.EVM = evmAcc

	if r.SoftDecision {
		payload, ok = p.DecodeSymbolsToPayloadSoft(syms, diag.EVM)
	} else {
		payload, ok = p.DecodeSymbolsToPayload(syms)
	}
	return payload, ok, diag, nil
}

// MeasureSubcarrierSNR estimates per-used-bin SNR (linear) by comparing
// equalized LTS bins against their known values: signal power over error
// power, computed from the two LTS repetitions' difference (noise) and mean
// (signal+channel). Returns a map from signed subcarrier index to SNR.
func MeasureSubcarrierSNR(cfg *Config, x []complex128, preambleStart int) map[int]float64 {
	lts1 := preambleStart + cfg.LTSOffset()
	if lts1 < 0 || lts1+2*cfg.NFFT > len(x) {
		return nil
	}
	b1 := cfg.SymbolBins(x[lts1 : lts1+cfg.NFFT])
	b2 := cfg.SymbolBins(x[lts1+cfg.NFFT : lts1+2*cfg.NFFT])
	used := cfg.UsedBins()
	// The noise is white, so estimate a single variance across all bins
	// (from the difference of the two LTS repetitions); a per-bin noise
	// estimate would make the SNR ratio heavy-tailed.
	var noise float64
	sig := make(map[int]float64, len(used))
	for _, k := range used {
		b := cfg.Bin(k)
		sum := b1[b] + b2[b]
		diff := b1[b] - b2[b]
		sig[k] = (real(sum)*real(sum) + imag(sum)*imag(sum)) / 4
		noise += (real(diff)*real(diff) + imag(diff)*imag(diff)) / 2
	}
	noise /= float64(len(used))
	if noise <= 0 {
		noise = 1e-12
	}
	out := make(map[int]float64, len(used))
	for _, k := range used {
		s := sig[k] - noise/2 // remove the noise bias from the signal term
		if s < 0 {
			s = 0
		}
		out[k] = s / noise
	}
	return out
}

// AverageSNRdB reduces a per-subcarrier SNR map to its average in dB. Bins
// are summed in sorted key order: float addition is not associative, so
// summing in randomized map order would leak run-to-run ULP noise into
// every SNR average downstream.
func AverageSNRdB(snr map[int]float64) float64 {
	if len(snr) == 0 {
		return dsp.DB(0)
	}
	var lin float64
	for _, k := range slices.Sorted(maps.Keys(snr)) {
		lin += snr[k]
	}
	return dsp.DB(lin / float64(len(snr)))
}
