package modem

import (
	"maps"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func randBits(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(2))
	}
	return b
}

func TestScramblerInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	bits := randBits(r, 500)
	orig := append([]byte(nil), bits...)
	NewScrambler(0x5d).XOR(bits)
	if CountBitErrors(orig, bits) == 0 {
		t.Fatal("scrambler did not change the bits")
	}
	NewScrambler(0x5d).XOR(bits)
	if CountBitErrors(orig, bits) != 0 {
		t.Fatal("descrambling failed")
	}
}

func TestScramblerPeriod127(t *testing.T) {
	s := NewScrambler(0x7f)
	var seq []byte
	for i := 0; i < 254; i++ {
		seq = append(seq, s.Next())
	}
	for i := 0; i < 127; i++ {
		if seq[i] != seq[i+127] {
			t.Fatalf("scrambler sequence not periodic with 127 at %d", i)
		}
	}
	// And it is not periodic with any smaller power-of-interest period.
	same := true
	for i := 0; i < 63; i++ {
		if seq[i] != seq[i+64] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("scrambler period divides 64; LFSR is broken")
	}
}

func TestScramblerZeroSeedNormalized(t *testing.T) {
	s := NewScrambler(0)
	if s.state == 0 {
		t.Fatal("zero seed must be replaced")
	}
}

func TestConvEncodeKnownLength(t *testing.T) {
	bits := make([]byte, 24)
	if got := len(ConvEncode(bits, Rate12)); got != 48 {
		t.Fatalf("rate 1/2 coded len = %d, want 48", got)
	}
	if got := len(ConvEncode(bits, Rate34)); got != 32 {
		t.Fatalf("rate 3/4 coded len = %d, want 32", got)
	}
	if got := len(ConvEncode(bits, Rate23)); got != 36 {
		t.Fatalf("rate 2/3 coded len = %d, want 36", got)
	}
	if CodedLen(24, Rate34) != 32 || CodedLen(24, Rate12) != 48 || CodedLen(24, Rate23) != 36 {
		t.Fatal("CodedLen disagrees with ConvEncode")
	}
}

func TestViterbiRoundTripClean(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, rate := range []CodeRate{Rate12, Rate23, Rate34} {
		data := AppendTail(randBits(r, 120))
		coded := ConvEncode(data, rate)
		dec := ViterbiDecode(HardToSoft(coded), len(data), rate)
		if CountBitErrors(data, dec) != 0 {
			t.Fatalf("rate %v: clean round trip failed", rate)
		}
	}
}

func TestViterbiCorrectsErrors(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := AppendTail(randBits(r, 200))
	coded := ConvEncode(data, Rate12)
	// Flip 4% of coded bits, spread out.
	soft := HardToSoft(coded)
	flips := 0
	for i := 0; i < len(soft); i += 25 {
		soft[i] = 1 - soft[i]
		flips++
	}
	if flips < 10 {
		t.Fatal("test setup: too few flips")
	}
	dec := ViterbiDecode(soft, len(data), Rate12)
	if n := CountBitErrors(data, dec); n != 0 {
		t.Fatalf("viterbi failed to correct spread errors: %d residual", n)
	}
}

func TestViterbiRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(200)
		rate := []CodeRate{Rate12, Rate23, Rate34}[r.Intn(3)]
		data := AppendTail(randBits(r, n))
		coded := ConvEncode(data, rate)
		dec := ViterbiDecode(HardToSoft(coded), len(data), rate)
		return CountBitErrors(data, dec) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDepunctureInverse(t *testing.T) {
	// Depuncturing a punctured stream must place kept bits back at their
	// mother positions with erasures elsewhere.
	r := rand.New(rand.NewSource(4))
	data := randBits(r, 30)
	motherLen := len(data) * 2
	for _, rate := range []CodeRate{Rate23, Rate34} {
		coded := ConvEncode(data, rate)
		soft := HardToSoft(coded)
		mother := Depuncture(soft, len(data), rate)
		if len(mother) != motherLen {
			t.Fatalf("rate %v: mother len %d, want %d", rate, len(mother), motherLen)
		}
		full := ConvEncode(data, Rate12)
		pat := rate.puncturePattern()
		for i := range mother {
			if pat[i%len(pat)] {
				if mother[i] != float64(full[i]) {
					t.Fatalf("rate %v: kept bit %d mismatched", rate, i)
				}
			} else if mother[i] != 0.5 {
				t.Fatalf("rate %v: punctured bit %d not erased", rate, i)
			}
		}
	}
}

func TestInterleaverBijective(t *testing.T) {
	for _, tc := range []struct{ ncbps, nbpsc int }{
		{48, 1}, {96, 2}, {192, 4}, {288, 6}, {16, 1}, {96, 6},
	} {
		seen := make([]bool, tc.ncbps)
		for k := 0; k < tc.ncbps; k++ {
			j := interleaveIndex(k, tc.ncbps, tc.nbpsc)
			if j < 0 || j >= tc.ncbps {
				t.Fatalf("ncbps=%d: index %d out of range", tc.ncbps, j)
			}
			if seen[j] {
				t.Fatalf("ncbps=%d nbpsc=%d: collision at %d", tc.ncbps, tc.nbpsc, j)
			}
			seen[j] = true
		}
	}
}

func TestInterleaveDeinterleaveRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ ncbps, nbpsc int }{{48, 1}, {192, 4}, {288, 6}} {
		bits := randBits(r, tc.ncbps)
		il := Interleave(bits, tc.nbpsc)
		back := DeinterleaveBits(il, tc.nbpsc)
		if CountBitErrors(bits, back) != 0 {
			t.Fatalf("ncbps=%d: bit round trip failed", tc.ncbps)
		}
		soft := HardToSoft(il)
		backSoft := Deinterleave(soft, tc.nbpsc)
		for i := range bits {
			if backSoft[i] != float64(bits[i]) {
				t.Fatalf("ncbps=%d: soft round trip failed at %d", tc.ncbps, i)
			}
		}
	}
}

func TestInterleaverSpreadsAdjacentBits(t *testing.T) {
	// Adjacent coded bits must land on different subcarriers: for NCBPS=48,
	// BPSK, positions k and k+1 must map at least 2 bins apart.
	for k := 0; k < 47; k++ {
		a := interleaveIndex(k, 48, 1)
		b := interleaveIndex(k+1, 48, 1)
		d := a - b
		if d < 0 {
			d = -d
		}
		if d < 2 {
			t.Fatalf("adjacent bits %d,%d map %d apart", k, k+1, d)
		}
	}
}

func TestConstellationRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		n := m.BitsPerSymbol()
		for trial := 0; trial < 200; trial++ {
			bits := randBits(r, n)
			sym := m.Map(bits)
			got := m.Demap(sym, nil)
			if CountBitErrors(bits, got) != 0 {
				t.Fatalf("%v: bits %v -> %v -> %v", m, bits, sym, got)
			}
		}
	}
}

func TestConstellationUnitEnergy(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		n := m.BitsPerSymbol()
		total := 0.0
		count := 1 << n
		for code := 0; code < count; code++ {
			bits := make([]byte, n)
			for b := 0; b < n; b++ {
				bits[b] = byte(code >> uint(n-1-b) & 1)
			}
			s := m.Map(bits)
			total += real(s)*real(s) + imag(s)*imag(s)
		}
		avg := total / float64(count)
		if avg < 0.999 || avg > 1.001 {
			t.Fatalf("%v: average energy %g, want 1", m, avg)
		}
	}
}

func TestConstellationGrayNeighbors(t *testing.T) {
	// On each axis, adjacent amplitude levels must differ in exactly one
	// bit (Gray property) so noise-induced nearest-neighbor errors cost one
	// coded bit.
	for _, width := range []int{2, 3} {
		type lv struct {
			v    float64
			code int
		}
		var lvs []lv
		n := 1 << width
		for code := 0; code < n; code++ {
			bits := make([]byte, width)
			for b := 0; b < width; b++ {
				bits[b] = byte(code >> uint(width-1-b) & 1)
			}
			lvs = append(lvs, lv{grayAxis(bits), code})
		}
		for i := 0; i < len(lvs); i++ {
			for j := 0; j < len(lvs); j++ {
				if lvs[i].v+2 == lvs[j].v { // adjacent levels differ by 2
					diff := lvs[i].code ^ lvs[j].code
					if diff&(diff-1) != 0 {
						t.Fatalf("width %d: levels %g,%g differ in >1 bit", width, lvs[i].v, lvs[j].v)
					}
				}
			}
		}
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := make([]byte, 64)
	r.Read(data)
	bits := BytesToBits(data)
	if len(bits) != 512 {
		t.Fatalf("bit count %d", len(bits))
	}
	back := BitsToBytes(bits)
	for i := range data {
		if data[i] != back[i] {
			t.Fatalf("byte %d mismatched", i)
		}
	}
}

func TestCRC32Detects(t *testing.T) {
	data := []byte("sourcesync")
	framed := AppendCRC32(append([]byte(nil), data...))
	got, ok := CheckCRC32(framed)
	if !ok || string(got) != string(data) {
		t.Fatal("clean CRC failed")
	}
	framed[3] ^= 0x40
	if _, ok := CheckCRC32(framed); ok {
		t.Fatal("corrupted frame passed CRC")
	}
	if _, ok := CheckCRC32([]byte{1, 2}); ok {
		t.Fatal("short frame passed CRC")
	}
}

func TestRateTable(t *testing.T) {
	cfg := Profile80211()
	want := map[int]Rate{
		6:  {BPSK, Rate12},
		9:  {BPSK, Rate34},
		12: {QPSK, Rate12},
		18: {QPSK, Rate34},
		24: {QAM16, Rate12},
		36: {QAM16, Rate34},
		48: {QAM64, Rate23},
		54: {QAM64, Rate34},
	}
	for _, mbps := range slices.Sorted(maps.Keys(want)) {
		wr := want[mbps]
		r, err := RateByMbps(mbps)
		if err != nil {
			t.Fatalf("%d Mbps: %v", mbps, err)
		}
		if r != wr {
			t.Fatalf("%d Mbps: got %v, want %v", mbps, r, wr)
		}
		if got := r.BitRate(cfg) / 1e6; int(got+0.5) != mbps {
			t.Fatalf("%v: bitrate %g, want %d", r, got, mbps)
		}
	}
	if _, err := RateByMbps(11); err == nil {
		t.Fatal("11 Mbps should not exist in OFDM table")
	}
	// N_DBPS sanity: 6 Mbps -> 24 bits/symbol, 54 -> 216.
	r6, _ := RateByMbps(6)
	if r6.DataBitsPerSymbol(cfg) != 24 {
		t.Fatalf("6 Mbps NDBPS = %d", r6.DataBitsPerSymbol(cfg))
	}
	r54, _ := RateByMbps(54)
	if r54.DataBitsPerSymbol(cfg) != 216 {
		t.Fatalf("54 Mbps NDBPS = %d", r54.DataBitsPerSymbol(cfg))
	}
}
