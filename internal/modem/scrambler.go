package modem

// Scrambler implements the 802.11 frame-synchronous scrambler with generator
// polynomial S(x) = x^7 + x^4 + 1. The same object descrambles, since the
// operation is an involution for a given initial state.
type Scrambler struct {
	state byte // 7-bit LFSR state, never zero
}

// NewScrambler returns a scrambler seeded with the given nonzero 7-bit state.
func NewScrambler(seed byte) *Scrambler {
	seed &= 0x7f
	if seed == 0 {
		seed = 0x5d // 802.11 example initial state
	}
	return &Scrambler{state: seed}
}

// Next returns the next scrambler output bit and advances the LFSR.
func (s *Scrambler) Next() byte {
	out := ((s.state >> 6) ^ (s.state >> 3)) & 1
	s.state = ((s.state << 1) | out) & 0x7f
	return out
}

// XOR scrambles (or descrambles) bits in place and returns the same slice.
func (s *Scrambler) XOR(bits []byte) []byte {
	for i := range bits {
		bits[i] ^= s.Next()
	}
	return bits
}

// ScrambleCopy returns a scrambled copy of bits using a fresh scrambler with
// the given seed; the input is not modified.
func ScrambleCopy(bits []byte, seed byte) []byte {
	out := append([]byte(nil), bits...)
	NewScrambler(seed).XOR(out)
	return out
}
