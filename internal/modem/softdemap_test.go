package modem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDemapSoftHardLimitMatchesDemap(t *testing.T) {
	// With noiseVar = 0 the soft demapper must slice exactly like the hard
	// demapper, for random noisy points.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
			sym := complex(r.NormFloat64(), r.NormFloat64())
			hard := m.Demap(sym, nil)
			soft := m.DemapSoft(sym, 0, nil)
			if len(soft) != len(hard) {
				return false
			}
			for i := range hard {
				got := byte(0)
				if soft[i] > 0.5 {
					got = 1
				}
				if got != hard[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDemapSoftConfidenceScalesWithDistance(t *testing.T) {
	// A point exactly on a constellation symbol yields near-certain bits; a
	// point midway between two symbols yields ~0.5 on the bit where they
	// differ.
	m := BPSK
	sure := m.DemapSoft(complex(1, 0), 0.1, nil)
	if sure[0] < 0.99 {
		t.Fatalf("on-symbol confidence %.3f", sure[0])
	}
	mid := m.DemapSoft(complex(0, 0), 0.1, nil)
	if mid[0] < 0.45 || mid[0] > 0.55 {
		t.Fatalf("midpoint confidence %.3f, want ~0.5", mid[0])
	}
	// Higher noise variance softens the same observation.
	lowNoise := m.DemapSoft(complex(0.3, 0), 0.01, nil)
	highNoise := m.DemapSoft(complex(0.3, 0), 1.0, nil)
	if !(lowNoise[0] > highNoise[0] && highNoise[0] > 0.5) {
		t.Fatalf("confidences %.3f (low noise) vs %.3f (high noise)", lowNoise[0], highNoise[0])
	}
}

func TestSoftDecisionRoundTripClean(t *testing.T) {
	// Soft decoding must also pass clean frames, for every rate.
	r := rand.New(rand.NewSource(1))
	cfg := Profile80211()
	for _, mbps := range []int{6, 24, 54} {
		p := testParams(cfg, mbps, 150)
		payload := make([]byte, p.PayloadLen)
		r.Read(payload)
		wave := BuildFrame(p, payload)
		x := padded(r, wave, 300, 300, -40)
		rx := &Receiver{Cfg: cfg, FFTBackoff: 3, SoftDecision: true}
		got, ok, _, err := rx.Receive(p, x, 0)
		if err != nil || !ok || string(got) != string(payload) {
			t.Fatalf("%d Mbps soft decode failed (ok=%v err=%v)", mbps, ok, err)
		}
	}
}

func TestSoftBeatsHardNearWaterfall(t *testing.T) {
	// At an SNR where hard decisions fail a sizeable fraction of frames,
	// soft decisions must succeed strictly more often.
	r := rand.New(rand.NewSource(2))
	cfg := Profile80211()
	p := testParams(cfg, 12, 300)
	payload := make([]byte, p.PayloadLen)
	r.Read(payload)
	wave := BuildFrame(p, payload)

	const snr = 7.0
	const trials = 40
	hardOK, softOK := 0, 0
	for i := 0; i < trials; i++ {
		noisy := addAWGN(r, wave, snr)
		x := padded(r, noisy, 300, 300, -snr)
		hardRx := &Receiver{Cfg: cfg, FFTBackoff: 3}
		if _, ok, _, err := hardRx.Receive(p, x, 0); err == nil && ok {
			hardOK++
		}
		softRx := &Receiver{Cfg: cfg, FFTBackoff: 3, SoftDecision: true}
		if _, ok, _, err := softRx.Receive(p, x, 0); err == nil && ok {
			softOK++
		}
	}
	if softOK <= hardOK {
		t.Fatalf("soft %d/%d not better than hard %d/%d", softOK, trials, hardOK, trials)
	}
	if hardOK == trials {
		t.Fatal("test operating point too easy: hard decisions never failed")
	}
}
