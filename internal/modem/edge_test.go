package modem

import (
	"maps"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestZeroPayloadFrame(t *testing.T) {
	// A frame whose payload is empty still carries the CRC and decodes.
	r := rand.New(rand.NewSource(1))
	cfg := Profile80211()
	p := testParams(cfg, 6, 0)
	wave := BuildFrame(p, nil)
	x := padded(r, wave, 300, 300, -35)
	rx := &Receiver{Cfg: cfg, FFTBackoff: 3}
	got, ok, _, err := rx.Receive(p, x, 0)
	if err != nil || !ok || len(got) != 0 {
		t.Fatalf("zero payload decode: ok=%v err=%v len=%d", ok, err, len(got))
	}
}

func TestSymbolMultiplePadding(t *testing.T) {
	// SymbolMultiple pads the symbol count and the round trip still works.
	r := rand.New(rand.NewSource(2))
	cfg := Profile80211()
	for _, mult := range []int{2, 4} {
		p := testParams(cfg, 12, 97) // odd size to force padding
		p.SymbolMultiple = mult
		if n := p.NumDataSymbols(); n%mult != 0 {
			t.Fatalf("mult %d: %d symbols", mult, n)
		}
		payload := make([]byte, p.PayloadLen)
		r.Read(payload)
		wave := BuildFrame(p, payload)
		x := padded(r, wave, 200, 200, -35)
		rx := &Receiver{Cfg: cfg, FFTBackoff: 3}
		got, ok, _, err := rx.Receive(p, x, 0)
		if err != nil || !ok || string(got) != string(payload) {
			t.Fatalf("mult %d: decode failed", mult)
		}
	}
}

func TestReceiveSecondPacketInStream(t *testing.T) {
	// Detection honors the `from` parameter: with two frames back to back,
	// searching after the first finds the second.
	r := rand.New(rand.NewSource(3))
	cfg := Profile80211()
	p := testParams(cfg, 6, 30)
	pay1 := make([]byte, 30)
	pay2 := make([]byte, 30)
	r.Read(pay1)
	r.Read(pay2)
	w1 := BuildFrame(p, pay1)
	w2 := BuildFrame(p, pay2)
	gap := make([]complex128, 400)
	x := padded(r, append(append(append([]complex128{}, w1...), gap...), w2...), 300, 300, -35)
	rx := &Receiver{Cfg: cfg, FFTBackoff: 3}
	got1, ok1, diag1, err1 := rx.Receive(p, x, 0)
	if err1 != nil || !ok1 || string(got1) != string(pay1) {
		t.Fatal("first packet failed")
	}
	from := diag1.Detect.FineIdx + p.AirtimeSamples()
	got2, ok2, _, err2 := rx.Receive(p, x, from)
	if err2 != nil || !ok2 || string(got2) != string(pay2) {
		t.Fatalf("second packet failed: ok=%v err=%v", ok2, err2)
	}
}

func TestReceiveTruncatedStream(t *testing.T) {
	// A stream that ends mid-frame returns ErrNoPacket rather than panics.
	r := rand.New(rand.NewSource(4))
	cfg := Profile80211()
	p := testParams(cfg, 6, 200)
	payload := make([]byte, 200)
	r.Read(payload)
	wave := BuildFrame(p, payload)
	x := padded(r, wave[:len(wave)/3], 300, 0, -35)
	rx := &Receiver{Cfg: cfg, FFTBackoff: 3}
	if _, ok, _, err := rx.Receive(p, x, 0); err == nil && ok {
		t.Fatal("truncated frame should not decode")
	}
}

func TestConfigPanicsOnBadParameters(t *testing.T) {
	cases := map[string]func(){
		"non-power-of-two NFFT": func() {
			c := &Config{SampleRateHz: 1, NFFT: 48, CPLen: 4, UsedHalf: 10}
			c.build()
		},
		"used exceeds half band": func() {
			c := &Config{SampleRateHz: 1, NFFT: 64, CPLen: 4, UsedHalf: 40}
			c.build()
		},
		"pilot outside band": func() {
			c := &Config{SampleRateHz: 1, NFFT: 64, CPLen: 4, UsedHalf: 10, Pilots: []int{20}}
			c.build()
		},
	}
	// Sorted-key iteration keeps the case order (and any failure output)
	// deterministic; ranging the map directly would run them in randomized
	// order.
	for _, name := range slices.Sorted(maps.Keys(cases)) {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			cases[name]()
		}()
	}
}

func TestEncodeDecodeBitsPropertyAllRates(t *testing.T) {
	// Property: for any payload and standard rate, the symbol-level encode
	// then hard decode round-trips exactly on a perfect channel.
	cfg := Profile80211()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rate := StandardRates()[r.Intn(8)]
		p := FrameParams{
			Cfg: cfg, Rate: rate, CP: cfg.CPLen,
			PayloadLen: 1 + r.Intn(80), ScramblerSeed: byte(1 + r.Intn(127)),
		}
		payload := make([]byte, p.PayloadLen)
		r.Read(payload)
		syms := p.EncodePayloadSymbols(payload)
		got, ok := p.DecodeSymbolsToPayload(syms)
		return ok && string(got) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
