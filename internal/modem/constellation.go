package modem

import (
	"fmt"
	"math"
)

// Modulation identifies a constellation used on data subcarriers.
type Modulation int

// Supported constellations, in increasing spectral efficiency.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

// String implements fmt.Stringer.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Modulation(%d)", int(m))
}

// BitsPerSymbol returns the number of coded bits carried per subcarrier
// (N_BPSC in 802.11 terms).
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	}
	panic("modem: unknown modulation")
}

// normFactor returns the scale that makes average constellation energy 1.
func (m Modulation) normFactor() float64 {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 1 / math.Sqrt(2)
	case QAM16:
		return 1 / math.Sqrt(10)
	case QAM64:
		return 1 / math.Sqrt(42)
	}
	panic("modem: unknown modulation")
}

// grayAxis maps groups of bits to one amplitude axis per 802.11a Table 81-84
// (Gray coding). bits are most-significant first.
func grayAxis(bits []byte) float64 {
	switch len(bits) {
	case 0:
		return 1
	case 1: // BPSK axis / one QPSK axis: 0 -> -1, 1 -> +1
		return float64(bits[0])*2 - 1
	case 2: // 16-QAM axis: 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3
		switch bits[0]<<1 | bits[1] {
		case 0b00:
			return -3
		case 0b01:
			return -1
		case 0b11:
			return 1
		default:
			return 3
		}
	case 3: // 64-QAM axis
		switch bits[0]<<2 | bits[1]<<1 | bits[2] {
		case 0b000:
			return -7
		case 0b001:
			return -5
		case 0b011:
			return -3
		case 0b010:
			return -1
		case 0b110:
			return 1
		case 0b111:
			return 3
		case 0b101:
			return 5
		default: // 0b100
			return 7
		}
	}
	panic("modem: bad axis width")
}

// axisBits inverts grayAxis: it returns the bit group whose axis value is
// nearest to v.
func axisBits(v float64, width int) []byte {
	best := -1
	bestD := math.Inf(1)
	n := 1 << width
	buf := make([]byte, width)
	for code := 0; code < n; code++ {
		for b := 0; b < width; b++ {
			buf[b] = byte(code >> (width - 1 - b) & 1)
		}
		d := math.Abs(grayAxis(buf) - v)
		if d < bestD {
			bestD = d
			best = code
		}
	}
	out := make([]byte, width)
	for b := 0; b < width; b++ {
		out[b] = byte(best >> (width - 1 - b) & 1)
	}
	return out
}

// Map converts a group of m.BitsPerSymbol() bits (values 0/1) into one
// unit-average-energy constellation point. Bits are consumed I-axis first,
// then Q-axis, most significant first, matching 802.11a.
func (m Modulation) Map(bits []byte) complex128 {
	n := m.BitsPerSymbol()
	if len(bits) != n {
		panic(fmt.Sprintf("modem: Map got %d bits, want %d", len(bits), n))
	}
	norm := m.normFactor()
	if m == BPSK {
		return complex(grayAxis(bits[:1])*norm, 0)
	}
	half := n / 2
	i := grayAxis(bits[:half])
	q := grayAxis(bits[half:])
	return complex(i*norm, q*norm)
}

// Demap performs a hard decision on sym, appending the decided bits to dst
// and returning the extended slice.
func (m Modulation) Demap(sym complex128, dst []byte) []byte {
	norm := m.normFactor()
	iv := real(sym) / norm
	qv := imag(sym) / norm
	switch m {
	case BPSK:
		if iv >= 0 {
			return append(dst, 1)
		}
		return append(dst, 0)
	case QPSK:
		dst = append(dst, axisBits(iv, 1)...)
		return append(dst, axisBits(qv, 1)...)
	case QAM16:
		dst = append(dst, axisBits(iv, 2)...)
		return append(dst, axisBits(qv, 2)...)
	case QAM64:
		dst = append(dst, axisBits(iv, 3)...)
		return append(dst, axisBits(qv, 3)...)
	}
	panic("modem: unknown modulation")
}

// MapBits maps a bitstream (len must be a multiple of BitsPerSymbol) to a
// sequence of constellation points.
func (m Modulation) MapBits(bits []byte) []complex128 {
	n := m.BitsPerSymbol()
	if len(bits)%n != 0 {
		panic("modem: MapBits length not a multiple of bits-per-symbol")
	}
	out := make([]complex128, len(bits)/n)
	for i := range out {
		out[i] = m.Map(bits[i*n : (i+1)*n])
	}
	return out
}

// DemapSymbols hard-demaps a sequence of constellation points to bits.
func (m Modulation) DemapSymbols(syms []complex128) []byte {
	out := make([]byte, 0, len(syms)*m.BitsPerSymbol())
	for _, s := range syms {
		out = m.Demap(s, out)
	}
	return out
}
