package modem

// The 802.11a block interleaver operates on one OFDM symbol's worth of coded
// bits (N_CBPS). It is defined by two permutations: the first spreads
// adjacent coded bits across nonadjacent subcarriers (16 columns); the
// second rotates bits within a subcarrier so adjacent bits alternate between
// more and less significant constellation bits.

// interleaveIndex returns the output position of input bit k for an OFDM
// symbol carrying ncbps coded bits with nbpsc bits per subcarrier.
func interleaveIndex(k, ncbps, nbpsc int) int {
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	i := (ncbps/16)*(k%16) + k/16
	j := s*(i/s) + (i+ncbps-16*i/ncbps)%s
	return j
}

// Interleave permutes one symbol's coded bits per the 802.11a interleaver.
// len(bits) must equal ncbps.
func Interleave(bits []byte, nbpsc int) []byte {
	ncbps := len(bits)
	out := make([]byte, ncbps)
	for k, b := range bits {
		out[interleaveIndex(k, ncbps, nbpsc)] = b
	}
	return out
}

// Deinterleave inverts Interleave on one symbol's worth of soft values.
func Deinterleave(soft []float64, nbpsc int) []float64 {
	ncbps := len(soft)
	out := make([]float64, ncbps)
	for k := range soft {
		out[k] = soft[interleaveIndex(k, ncbps, nbpsc)]
	}
	return out
}

// DeinterleaveBits inverts Interleave on hard bits.
func DeinterleaveBits(bits []byte, nbpsc int) []byte {
	ncbps := len(bits)
	out := make([]byte, ncbps)
	for k := range bits {
		out[k] = bits[interleaveIndex(k, ncbps, nbpsc)]
	}
	return out
}
