package modem

import "math"

// viterbiTables holds the precomputed trellis structure for the 802.11
// convolutional code: for each state and input bit, the two mother-code
// output bits and the successor state.
//
// A state is the most recent 6 input bits with the newest bit in position 5:
// from state s with input `in`, the encoder register is full = s | in<<6 and
// the next state is full>>1. Consequently the top bit (bit 5) of any state
// is the input bit that created it, and its two possible predecessors are
// (s&31)<<1 and (s&31)<<1|1.
type viterbiTables struct {
	next [convStates][2]int
	outA [convStates][2]byte
	outB [convStates][2]byte
}

var vt = buildViterbiTables()

func buildViterbiTables() *viterbiTables {
	t := &viterbiTables{}
	for s := 0; s < convStates; s++ {
		for in := 0; in < 2; in++ {
			full := uint32(s) | uint32(in)<<(convK-1)
			t.outA[s][in] = parity(full & genA)
			t.outB[s][in] = parity(full & genB)
			t.next[s][in] = int(full >> 1)
		}
	}
	return t
}

// Depuncture expands punctured coded bits back to the mother-code length for
// n data bits, inserting 0.5 (erasure) at punctured positions. Input values
// should be 0/1 hard decisions or soft confidences in [0,1].
func Depuncture(coded []float64, n int, rate CodeRate) []float64 {
	pat := rate.puncturePattern()
	mother := make([]float64, 2*n)
	ci := 0
	for i := range mother {
		if pat[i%len(pat)] {
			if ci < len(coded) {
				mother[i] = coded[ci]
				ci++
			} else {
				mother[i] = 0.5
			}
		} else {
			mother[i] = 0.5
		}
	}
	return mother
}

// ViterbiDecode performs maximum-likelihood decoding of the zero-terminated
// 802.11 convolutional code. coded contains soft bit confidences in [0,1]
// (0.5 = erasure, i.e. contributes equally to both hypotheses) at the
// punctured rate; n is the number of data bits that were encoded, including
// the 6 tail bits. The returned slice has length n.
func ViterbiDecode(coded []float64, n int, rate CodeRate) []byte {
	mother := Depuncture(coded, n, rate)
	const inf = math.MaxFloat64 / 4
	metric := make([]float64, convStates)
	nextMetric := make([]float64, convStates)
	for i := range metric {
		metric[i] = inf
	}
	metric[0] = 0 // encoder starts in the zero state

	// decisions[t] bit s holds the low bit of the surviving predecessor of
	// state s at step t.
	decisions := make([]uint64, n)

	for t := 0; t < n; t++ {
		va := mother[2*t]
		vb := mother[2*t+1]
		for i := range nextMetric {
			nextMetric[i] = inf
		}
		var dec uint64
		for s := 0; s < convStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				bm := branch(va, vt.outA[s][in]) + branch(vb, vt.outB[s][in])
				ns := vt.next[s][in]
				if nm := m + bm; nm < nextMetric[ns] {
					nextMetric[ns] = nm
					if s&1 == 1 {
						dec |= 1 << uint(ns)
					} else {
						dec &^= 1 << uint(ns)
					}
				}
			}
		}
		decisions[t] = dec
		metric, nextMetric = nextMetric, metric
	}

	// Traceback. The code is zero-terminated, so prefer the zero state;
	// under heavy corruption it may be unreachable, in which case use the
	// best survivor.
	state := 0
	if metric[0] >= inf {
		best := math.MaxFloat64
		for s, m := range metric {
			if m < best {
				best, state = m, s
			}
		}
	}
	out := make([]byte, n)
	for t := n - 1; t >= 0; t-- {
		// The input that created `state` is its top bit.
		out[t] = byte(state >> (convK - 2) & 1)
		low := int(decisions[t] >> uint(state) & 1)
		state = (state&(convStates/2-1))<<1 | low
	}
	return out
}

func branch(soft float64, expected byte) float64 {
	return math.Abs(soft - float64(expected))
}

// HardToSoft converts hard bits (0/1) to the soft representation consumed by
// ViterbiDecode.
func HardToSoft(bits []byte) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		out[i] = float64(b & 1)
	}
	return out
}
