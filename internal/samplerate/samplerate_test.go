package samplerate

import (
	"math/rand"
	"testing"

	"repro/internal/modem"
)

// frameTimes returns lossless frame durations for a 1460-byte packet.
func frameTimes() []float64 {
	cfg := modem.Profile80211()
	out := make([]float64, 0, 8)
	for _, r := range modem.StandardRates() {
		fp := modem.FrameParams{Cfg: cfg, Rate: r, CP: cfg.CPLen, PayloadLen: 1460, ScramblerSeed: 1}
		out = append(out, float64(fp.AirtimeSamples())/cfg.SampleRateHz)
	}
	return out
}

// perByRate simulates a link where rates up to maxGood succeed always and
// faster ones always fail.
func drive(t *testing.T, maxGood int, packets int) *SampleRate {
	t.Helper()
	ft := frameTimes()
	s := New(ft)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < packets; i++ {
		idx, _ := s.Pick(rng)
		ok := idx <= maxGood
		tx := ft[idx]
		if !ok {
			tx *= 7 // full retry cost
		}
		s.Update(idx, ok, tx)
	}
	return s
}

func TestConvergesToFastestWorkingRate(t *testing.T) {
	for _, maxGood := range []int{0, 3, 7} {
		s := drive(t, maxGood, 800)
		if s.Current() != maxGood {
			t.Fatalf("maxGood=%d: converged to %d", maxGood, s.Current())
		}
	}
}

func TestProbesHappen(t *testing.T) {
	// With only rates <= 3 working, SampleRate keeps sampling the faster
	// rates (they would be quicker if they worked). Once it sits at the top
	// rate it correctly stops probing, so count probes on a capped link.
	ft := frameTimes()
	s := New(ft)
	rng := rand.New(rand.NewSource(2))
	probes := 0
	for i := 0; i < 400; i++ {
		idx, probe := s.Pick(rng)
		if probe {
			probes++
		}
		ok := idx <= 3
		tx := ft[idx]
		if !ok {
			tx *= 7
		}
		s.Update(idx, ok, tx)
	}
	if probes < 5 {
		t.Fatalf("only %d probes in 400 packets", probes)
	}
	// At the top rate with a perfect link, probing stops.
	s2 := New(ft)
	for i := 0; i < 100; i++ {
		idx, _ := s2.Pick(rng)
		s2.Update(idx, true, ft[idx])
	}
	if s2.Current() != 7 {
		t.Fatalf("perfect link converged to %d", s2.Current())
	}
	for i := 0; i < 50; i++ {
		if _, probe := s2.Pick(rng); probe {
			t.Fatal("no probes expected at the top rate")
		}
		s2.Update(s2.Current(), true, ft[s2.Current()])
	}
}

func TestLossyRateDisabledAfterConsecutiveFailures(t *testing.T) {
	ft := frameTimes()
	s := New(ft)
	// Fail rate 7 four times in a row.
	for i := 0; i < 4; i++ {
		s.Update(7, false, ft[7]*7)
	}
	if s.stats[7].lossyDisable == 0 {
		t.Fatal("rate 7 should be disabled after 4 consecutive failures")
	}
	for _, c := range s.probeCandidates() {
		if c == 7 {
			t.Fatal("disabled rate must not be probed")
		}
	}
}

func TestLossyLockoutLastsFiftyPackets(t *testing.T) {
	// Regression: the lockout used to decrement only inside probeCandidates
	// (reached every ProbeInterval-th packet), making the documented
	// 50-packet lockout last ~500 packets.
	ft := frameTimes()
	s := New(ft)
	// Give the slow rate traffic so re-election has an anchor, then fail
	// rate 7 four times in a row to trigger its lockout.
	s.Update(0, true, ft[0])
	for i := 0; i < 4; i++ {
		s.Update(7, false, ft[7]*7)
	}
	if s.stats[7].lossyDisable == 0 {
		t.Fatal("rate 7 should be locked out")
	}
	// Each subsequent packet (on any rate) ages the lockout by one.
	packets := 0
	for s.stats[7].lossyDisable > 0 {
		s.Update(0, true, ft[0])
		packets++
		if packets > 60 {
			t.Fatalf("lockout still active after %d packets", packets)
		}
	}
	if packets != 50 {
		t.Fatalf("lockout lasted %d packets, want 50", packets)
	}
}

func TestProbeCandidatesIsPure(t *testing.T) {
	ft := frameTimes()
	s := New(ft)
	s.Update(0, true, ft[0])
	for i := 0; i < 4; i++ {
		s.Update(7, false, ft[7]*7)
	}
	before := s.stats[7].lossyDisable
	// A read path must not mutate lockout state, however often it runs.
	for i := 0; i < 100; i++ {
		s.probeCandidates()
	}
	if got := s.stats[7].lossyDisable; got != before {
		t.Fatalf("probeCandidates mutated lossyDisable: %d -> %d", before, got)
	}
}

func TestLossyCurrentRateDemoted(t *testing.T) {
	ft := frameTimes()
	s := New(ft)
	// Establish rate 3 as a sampled alternative, then move current to 7.
	for i := 0; i < 10; i++ {
		s.Update(3, true, ft[3])
	}
	for i := 0; i < 10; i++ {
		s.Update(7, true, ft[7])
	}
	if s.Current() != 7 {
		t.Fatalf("setup: current %d, want 7", s.Current())
	}
	// Four consecutive failures lock rate 7 out; it must not stay current.
	for i := 0; i < 4; i++ {
		s.Update(7, false, ft[7]*7)
	}
	if s.stats[7].lossyDisable == 0 {
		t.Fatal("rate 7 should be locked out")
	}
	if s.Current() == 7 {
		t.Fatal("lossy-disabled rate must be demoted from current")
	}
}

func TestAdaptsDownWhenChannelDegrades(t *testing.T) {
	ft := frameTimes()
	s := New(ft)
	rng := rand.New(rand.NewSource(3))
	// Phase 1: everything works; should reach the top rate.
	for i := 0; i < 500; i++ {
		idx, _ := s.Pick(rng)
		s.Update(idx, true, ft[idx])
	}
	if s.Current() != 7 {
		t.Fatalf("phase 1 converged to %d", s.Current())
	}
	// Phase 2: only rates <= 2 work.
	for i := 0; i < 500; i++ {
		idx, _ := s.Pick(rng)
		ok := idx <= 2
		tx := ft[idx]
		if !ok {
			tx *= 7
		}
		s.Update(idx, ok, tx)
	}
	if s.Current() > 2 {
		t.Fatalf("phase 2 stuck at rate %d", s.Current())
	}
}
