// Package samplerate implements Bicket's SampleRate bit-rate adaptation
// algorithm, the rate controller the paper runs at the lead AP (§7.1,
// §8.3): pick the rate with the lowest average per-packet transmission time
// (including retries), and periodically sample other rates that could
// plausibly do better.
package samplerate

import (
	"math/rand"

	"repro/internal/modem"
)

// rateStats tracks the running estimate for one rate.
type rateStats struct {
	avgTxTime    float64 // EWMA of per-packet medium time, seconds
	samples      int
	consecFails  int
	lossyDisable int // packets remaining before the rate may be probed again
}

// SampleRate adapts the transmission rate per destination.
type SampleRate struct {
	rates   []modem.Rate
	stats   []rateStats
	current int
	counter int
	// ProbeInterval is how often (in packets) a non-current rate is
	// sampled; Bicket uses every 10th packet.
	ProbeInterval int
	// EWMA smoothing for tx time updates.
	Alpha float64
	// baseline per-rate lossless frame time, used to bound which rates
	// could possibly beat the current one.
	frameTime []float64
}

// New creates a SampleRate controller over the standard rate set. frameTime
// must give the lossless single-attempt airtime of the workload's packets
// at each rate (same indexing as modem.StandardRates).
func New(frameTime []float64) *SampleRate {
	rates := modem.StandardRates()
	if len(frameTime) != len(rates) {
		panic("samplerate: need one frame time per standard rate")
	}
	s := &SampleRate{
		rates:         rates,
		stats:         make([]rateStats, len(rates)),
		current:       0, // start at the most robust rate
		ProbeInterval: 10,
		Alpha:         0.25,
		frameTime:     frameTime,
	}
	for i := range s.stats {
		s.stats[i].avgTxTime = frameTime[i] // optimistic prior
	}
	return s
}

// Current returns the index of the current best rate.
func (s *SampleRate) Current() int { return s.current }

// Pick returns the rate index to use for the next packet and whether this
// is a probe of a non-current rate.
func (s *SampleRate) Pick(rng *rand.Rand) (idx int, probe bool) {
	s.counter++
	if s.counter%s.ProbeInterval == 0 {
		if c := s.probeCandidates(); len(c) > 0 {
			return c[rng.Intn(len(c))], true
		}
	}
	return s.current, false
}

// probeCandidates lists rates other than the current one whose lossless
// frame time beats the current rate's average tx time (i.e. rates that
// could plausibly be faster), excluding recently-failed ones. It is a pure
// read: lockout bookkeeping happens in Update, once per packet.
func (s *SampleRate) probeCandidates() []int {
	cur := s.stats[s.current].avgTxTime
	var out []int
	for i := range s.rates {
		if i == s.current || s.stats[i].lossyDisable > 0 {
			continue
		}
		if s.frameTime[i] < cur {
			out = append(out, i)
		}
	}
	return out
}

// Update records the outcome of one packet at rate idx: the total medium
// time it consumed (including retries) and whether it was delivered.
func (s *SampleRate) Update(idx int, success bool, txTime float64) {
	// Every packet ages the lossy lockouts, so a disabled rate really comes
	// back after ~50 packets (Bicket's 10 s at typical packet rates).
	for i := range s.stats {
		if s.stats[i].lossyDisable > 0 {
			s.stats[i].lossyDisable--
		}
	}
	st := &s.stats[idx]
	st.samples++
	if success {
		st.consecFails = 0
		st.avgTxTime += s.Alpha * (txTime - st.avgTxTime)
	} else {
		st.consecFails++
		// Charge a failed packet its full (retry-limit) cost.
		st.avgTxTime += s.Alpha * (txTime*2 - st.avgTxTime)
		if st.consecFails >= 4 {
			// Bicket: stop sampling a rate after four successive failures.
			st.lossyDisable = 50
		}
	}
	// Re-elect the best rate among those with data, skipping lossy-disabled
	// rates — including the current one, which is demoted to the best
	// still-eligible rate when its own lockout triggers.
	best := -1
	for i := range s.stats {
		if s.stats[i].lossyDisable > 0 {
			continue
		}
		if s.stats[i].samples == 0 && i != s.current {
			continue
		}
		if best < 0 || s.stats[i].avgTxTime < s.stats[best].avgTxTime {
			best = i
		}
	}
	if best < 0 {
		// The current rate is locked out and no other rate has data yet:
		// fall back to the most robust rate that is still eligible.
		for i := range s.stats {
			if s.stats[i].lossyDisable == 0 {
				best = i
				break
			}
		}
	}
	if best >= 0 {
		s.current = best
	}
}

// Rate returns the modem rate at index idx.
func (s *SampleRate) Rate(idx int) modem.Rate { return s.rates[idx] }
