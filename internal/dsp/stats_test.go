package dsp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %g", got)
	}
	if got := Median(xs); got != 3 {
		t.Fatalf("median = %g", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %g", got)
	}
	// Interpolated value.
	if got := Percentile([]float64{0, 10}, 75); math.Abs(got-7.5) > 1e-12 {
		t.Fatalf("p75 = %g, want 7.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFIsSortedAndEndsAtOne(t *testing.T) {
	xs := []float64{4, 2, 9, 1}
	pts := CDF(xs)
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value }) {
		t.Fatal("CDF not sorted")
	}
	if pts[len(pts)-1].Fraction != 1 {
		t.Fatalf("last fraction = %g", pts[len(pts)-1].Fraction)
	}
	if pts[0].Fraction != 0.25 {
		t.Fatalf("first fraction = %g", pts[0].Fraction)
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-20, -3, 0, 3, 10, 30} {
		if got := DB(FromDB(db)); math.Abs(got-db) > 1e-9 {
			t.Fatalf("dB round trip %g -> %g", db, got)
		}
	}
	if DB(0) > -299 {
		t.Fatal("DB(0) should be very negative")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %g", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("stddev = %g", s)
	}
}

func TestUnwrap(t *testing.T) {
	// A steadily increasing phase wrapped into (-pi, pi] must unwrap to a
	// straight line.
	n := 50
	slope := 0.9
	wrapped := make([]float64, n)
	for i := range wrapped {
		wrapped[i] = WrapPhase(slope * float64(i))
	}
	un := Unwrap(wrapped)
	for i := range un {
		if math.Abs(un[i]-slope*float64(i)) > 1e-9 {
			t.Fatalf("unwrap[%d] = %g, want %g", i, un[i], slope*float64(i))
		}
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 1.25
	}
	s, b := LinearFit(xs, ys)
	if math.Abs(s-2.5) > 1e-12 || math.Abs(b+1.25) > 1e-12 {
		t.Fatalf("fit = (%g, %g)", s, b)
	}
}

func TestRotateUndo(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	x := randVec(r, 300)
	y := append([]complex128(nil), x...)
	Rotate(y, 0.01, 5)
	Rotate(y, -0.01, 5)
	if d := maxDiff(x, y); d > 1e-9 {
		t.Fatalf("rotate undo mismatch %g", d)
	}
}

func TestDotAndEnergy(t *testing.T) {
	x := []complex128{complex(1, 1), complex(0, 2)}
	if e := Energy(x); math.Abs(e-6) > 1e-12 {
		t.Fatalf("energy = %g", e)
	}
	d := Dot(x, x)
	if math.Abs(real(d)-6) > 1e-12 || math.Abs(imag(d)) > 1e-12 {
		t.Fatalf("dot = %v", d)
	}
}
