package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(r *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return v
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTKnownValues(t *testing.T) {
	// DFT of an impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	got := FFT(x)
	for i, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}

	// DFT of a constant is an impulse of height N at bin 0.
	for i := range x {
		x[i] = 1
	}
	got = FFT(x)
	if cmplx.Abs(got[0]-8) > 1e-12 {
		t.Fatalf("DC bin = %v, want 8", got[0])
	}
	for i := 1; i < len(got); i++ {
		if cmplx.Abs(got[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, got[i])
		}
	}

	// A pure tone at bin k concentrates in bin k.
	n := 64
	k := 5
	tone := make([]complex128, n)
	for i := range tone {
		ang := 2 * math.Pi * float64(k) * float64(i) / float64(n)
		tone[i] = cmplx.Exp(complex(0, ang))
	}
	got = FFT(tone)
	if cmplx.Abs(got[k]-complex(float64(n), 0)) > 1e-9 {
		t.Fatalf("tone bin %d = %v, want %d", k, got[k], n)
	}
}

func TestFFTRoundTripSizes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 64, 128, 256, 1024} {
		x := randVec(r, n)
		y := IFFT(FFT(x))
		if d := maxDiff(x, y); d > 1e-9 {
			t.Fatalf("n=%d: round trip error %g", n, d)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := randVec(r, 128)
	X := FFT(x)
	et := Energy(x)
	ef := Energy(X) / 128
	if math.Abs(et-ef)/et > 1e-10 {
		t.Fatalf("Parseval violated: time %g freq %g", et, ef)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randVec(rr, 64)
		b := randVec(rr, 64)
		alpha := complex(rr.NormFloat64(), rr.NormFloat64())
		// FFT(alpha*a + b) == alpha*FFT(a) + FFT(b)
		sum := make([]complex128, 64)
		for i := range sum {
			sum[i] = alpha*a[i] + b[i]
		}
		lhs := FFT(sum)
		fa, fb := FFT(a), FFT(b)
		for i := range lhs {
			want := alpha*fa[i] + fb[i]
			if cmplx.Abs(lhs[i]-want) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTIntoAliasing(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x := randVec(r, 64)
	want := FFT(x)
	FFTInto(x, x) // in place
	if d := maxDiff(x, want); d > 1e-10 {
		t.Fatalf("in-place FFT differs by %g", d)
	}
	IFFTInto(x, x)
	// x should now be back to the original (round trip).
	y := IFFT(want)
	if d := maxDiff(x, y); d > 1e-10 {
		t.Fatalf("in-place IFFT differs by %g", d)
	}
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	got := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FFTShift = %v, want %v", got, want)
		}
	}
}

func TestFFTPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non power-of-two size")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestTimeShiftIsPhaseRamp(t *testing.T) {
	// Circularly shifting a signal by d samples multiplies bin k by
	// e^{-j 2 pi k d / N}; PhaseRampDelay must implement exactly this.
	r := rand.New(rand.NewSource(5))
	n := 64
	x := randVec(r, n)
	d := 3
	shifted := make([]complex128, n)
	for i := range shifted {
		shifted[i] = x[(i-d+n)%n]
	}
	want := FFT(shifted)
	got := FFT(x)
	PhaseRampDelay(got, float64(d))
	if diff := maxDiff(got, want); diff > 1e-8 {
		t.Fatalf("phase ramp mismatch %g", diff)
	}
}
