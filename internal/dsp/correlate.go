package dsp

import "math/cmplx"

// CrossCorrelate computes the normalized cross-correlation magnitude of x
// against the reference sequence ref at every lag in [0, len(x)-len(ref)].
// The result at lag k is |sum(x[k+i]*conj(ref[i]))| / sqrt(E_ref * E_window),
// which is 1.0 for a perfect scaled match and near 0 for noise.
func CrossCorrelate(x, ref []complex128) []float64 {
	n := len(x) - len(ref) + 1
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	eRef := Energy(ref)
	if eRef == 0 {
		return out
	}
	for k := 0; k < n; k++ {
		var acc complex128
		var eWin float64
		for i, r := range ref {
			v := x[k+i]
			acc += v * cmplx.Conj(r)
			eWin += real(v)*real(v) + imag(v)*imag(v)
		}
		if eWin == 0 {
			continue
		}
		den := eRef * eWin
		out[k] = cmplx.Abs(acc) / sqrt(den)
	}
	return out
}

// PeakIndex returns the index of the maximum value of x and that value. It
// returns (-1, 0) for an empty slice.
func PeakIndex(x []float64) (int, float64) {
	if len(x) == 0 {
		return -1, 0
	}
	best, bestV := 0, x[0]
	for i, v := range x {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// AutoCorrRatio computes, for each sample offset, the Schmidl–Cox style
// metric |sum(x[d+i]*conj(x[d+i+lag]))|^2 / (sum |x[d+i+lag]|^2)^2 over a
// window of win samples. Values near 1 indicate a periodic training sequence
// with period lag starting near d. Used for coarse packet detection.
func AutoCorrRatio(x []complex128, lag, win int) []float64 {
	n := len(x) - lag - win
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	var p complex128
	var r float64
	// Initialize window at d = 0.
	for i := 0; i < win; i++ {
		p += x[i] * cmplx.Conj(x[i+lag])
		r += sqmag(x[i+lag])
	}
	for d := 0; d < n; d++ {
		if r > 1e-30 {
			m := cmplx.Abs(p)
			out[d] = m * m / (r * r)
		}
		// Slide the window by one sample.
		if d+1 < n {
			p -= x[d] * cmplx.Conj(x[d+lag])
			p += x[d+win] * cmplx.Conj(x[d+win+lag])
			r -= sqmag(x[d+lag])
			r += sqmag(x[d+win+lag])
			if r < 0 {
				r = 0
			}
		}
	}
	return out
}

// DoubleSlidingWindow computes the ratio of energy in the window of w samples
// after each index to the energy in the w samples before it. A sharp rise in
// the ratio marks the arrival of packet energy over the noise floor.
func DoubleSlidingWindow(x []complex128, w int) []float64 {
	n := len(x) - 2*w
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	var before, after float64
	for i := 0; i < w; i++ {
		before += sqmag(x[i])
		after += sqmag(x[i+w])
	}
	for d := 0; d < n; d++ {
		if before > 1e-30 {
			out[d] = after / before
		} else {
			out[d] = 0
		}
		if d+1 < n {
			before += sqmag(x[d+w]) - sqmag(x[d])
			after += sqmag(x[d+2*w]) - sqmag(x[d+w])
			if before < 0 {
				before = 0
			}
			if after < 0 {
				after = 0
			}
		}
	}
	return out
}

func sqmag(v complex128) float64 {
	return real(v)*real(v) + imag(v)*imag(v)
}
