package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies and sorts internally.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDFPoint is one point of an empirical cumulative distribution.
type CDFPoint struct {
	Value    float64 // sample value
	Fraction float64 // fraction of samples <= Value
}

// CDF returns the empirical CDF of xs as a sorted sequence of points.
func CDF(xs []float64) []CDFPoint {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	out := make([]CDFPoint, len(c))
	for i, v := range c {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(c))}
	}
	return out
}

// DB converts a linear power ratio to decibels. Non-positive inputs map to
// -inf dB, clamped to a large negative value to keep downstream math finite.
func DB(lin float64) float64 {
	if lin <= 0 {
		return -300
	}
	return 10 * math.Log10(lin)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}
