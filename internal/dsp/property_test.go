package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDelayAdditivityProperty(t *testing.T) {
	// Delaying by a then b lands the signal where a single delay of a+b
	// would, verified via the analytic phase of a band-limited tone.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := r.Float64() * 2
		b := r.Float64() * 2
		n := 256
		bin := 3.0
		x := make([]complex128, n)
		for i := range x {
			x[i] = cmplx.Exp(complex(0, 2*math.Pi*bin*float64(i)/float64(n)))
		}
		two := DelaySamples(DelaySamples(x, a, 16), b, 16)
		one := DelaySamples(x, a+b, 16)
		// Compare steady-state phases.
		var diff float64
		cnt := 0
		for i := 100; i < 180; i++ {
			diff += WrapPhase(cmplx.Phase(two[i] * cmplx.Conj(one[i])))
			cnt++
		}
		return math.Abs(diff/float64(cnt)) < 5e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUnwrapInvariantProperty(t *testing.T) {
	// Unwrap preserves each phase modulo 2*pi and bounds successive
	// differences by pi.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		ph := make([]float64, n)
		for i := range ph {
			ph[i] = (r.Float64()*2 - 1) * math.Pi
		}
		un := Unwrap(ph)
		for i := range un {
			if math.Abs(WrapPhase(un[i]-ph[i])) > 1e-9 {
				return false
			}
			if i > 0 && math.Abs(un[i]-un[i-1]) > math.Pi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbs(t *testing.T) {
	if MaxAbs(nil) != 0 {
		t.Fatal("empty MaxAbs")
	}
	x := []complex128{complex(1, 0), complex(0, -3), complex(2, 2)}
	if got := MaxAbs(x); math.Abs(got-3) > 1e-12 {
		t.Fatalf("MaxAbs %g", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestAddIntoAndScale(t *testing.T) {
	a := []complex128{1, 2}
	b := []complex128{complex(0, 1), 3}
	AddInto(a, b)
	if a[0] != complex(1, 1) || a[1] != 5 {
		t.Fatalf("AddInto %v", a)
	}
	Scale(a, 2)
	if a[1] != 10 {
		t.Fatalf("Scale %v", a)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddInto length mismatch must panic")
		}
	}()
	AddInto(a, []complex128{1})
}
