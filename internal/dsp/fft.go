// Package dsp provides the digital signal processing primitives used by the
// SourceSync PHY: FFT/IFFT, correlation, fractional delay, phase arithmetic
// and elementary statistics over complex baseband samples.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// plan holds the precomputed bit-reversal permutation and twiddle factors for
// a single FFT size. Plans are cached globally because the PHY uses a small
// set of sizes (64, 128, ...) millions of times.
type plan struct {
	n       int
	rev     []int
	twiddle []complex128 // e^{-j*2*pi*k/n} for k in [0, n/2)
}

var (
	planMu    sync.Mutex //sslint:allow detgoroutine guards the FFT plan memo; a plan is a pure function of n, so lock order cannot reach output
	planCache = map[int]*plan{}
)

func getPlan(n int) *plan {
	planMu.Lock()
	defer planMu.Unlock()
	if p, ok := planCache[n]; ok {
		return p
	}
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT size %d is not a power of two", n))
	}
	p := &plan{n: n, rev: make([]int, n), twiddle: make([]complex128, n/2)}
	shift := 1
	for 1<<shift < n {
		shift++
	}
	for i := 0; i < n; i++ {
		p.rev[i] = reverseBits(i, shift)
	}
	for k := 0; k < n/2; k++ {
		angle := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = cmplx.Exp(complex(0, angle))
	}
	planCache[n] = p
	return p
}

func reverseBits(x, bits int) int {
	r := 0
	for i := 0; i < bits; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// FFT computes the forward discrete Fourier transform of src and returns a
// newly allocated result. len(src) must be a power of two.
func FFT(src []complex128) []complex128 {
	dst := make([]complex128, len(src))
	FFTInto(dst, src)
	return dst
}

// IFFT computes the inverse DFT (with 1/N normalization) of src into a newly
// allocated slice.
func IFFT(src []complex128) []complex128 {
	dst := make([]complex128, len(src))
	IFFTInto(dst, src)
	return dst
}

// FFTInto computes the forward DFT of src into dst. dst and src must have the
// same power-of-two length; they may alias.
func FFTInto(dst, src []complex128) {
	p := getPlan(len(src))
	if len(dst) != len(src) {
		panic("dsp: FFTInto length mismatch")
	}
	if &dst[0] == &src[0] {
		permuteInPlace(dst, p)
	} else {
		for i, r := range p.rev {
			dst[i] = src[r]
		}
	}
	butterflies(dst, p)
}

// IFFTInto computes the inverse DFT of src into dst with 1/N scaling.
func IFFTInto(dst, src []complex128) {
	n := len(src)
	p := getPlan(n)
	if len(dst) != n {
		panic("dsp: IFFTInto length mismatch")
	}
	// IFFT(x) = conj(FFT(conj(x)))/N.
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	for i := range dst {
		dst[i] = cmplx.Conj(dst[i])
	}
	permuteInPlace(dst, p)
	butterflies(dst, p)
	scale := 1 / float64(n)
	for i := range dst {
		dst[i] = complex(real(dst[i])*scale, -imag(dst[i])*scale)
	}
}

func permuteInPlace(x []complex128, p *plan) {
	for i, r := range p.rev {
		if i < r {
			x[i], x[r] = x[r], x[i]
		}
	}
}

func butterflies(x []complex128, p *plan) {
	n := p.n
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				tw += step
				odd := x[k+half] * w
				even := x[k]
				x[k] = even + odd
				x[k+half] = even - odd
			}
		}
	}
}

// FFTShift reorders FFT output so that the zero-frequency bin is centered.
// It returns a new slice; useful when plotting per-subcarrier quantities.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}
