package dsp

import "math"

// sqrt is a local alias so hot paths avoid repeated package qualification.
func sqrt(x float64) float64 { return math.Sqrt(x) }

// DelaySamples delays waveform x by a (possibly fractional) number of
// samples. The integer part is realized by prepending zeros; the fractional
// part by a windowed-sinc interpolation filter with the given number of taps
// per side (total 2*side+1 taps). The returned slice is longer than x by the
// integer delay plus the filter's tail.
//
// Fractional delay is what makes sub-sample misalignment between SourceSync
// senders representable at the waveform level.
func DelaySamples(x []complex128, delay float64, side int) []complex128 {
	if delay < 0 {
		panic("dsp: negative delay")
	}
	ip := int(math.Floor(delay))
	frac := delay - float64(ip)
	var filtered []complex128
	if frac < 1e-9 {
		filtered = x
	} else {
		filtered = fracDelayFilter(x, frac, side)
	}
	out := make([]complex128, ip+len(filtered))
	copy(out[ip:], filtered)
	return out
}

// fracDelayFilter applies a Hann-windowed sinc filter implementing a delay of
// frac (0 < frac < 1) samples. The output has len(x)+2*side samples: `side`
// samples of filter delay are kept at the head so the group delay of the
// filter itself (side samples) plus frac equals the shift of the signal
// within the returned slice minus side. Callers that care about absolute
// timing should use DelaySamples, which accounts for this.
func fracDelayFilter(x []complex128, frac float64, side int) []complex128 {
	if side < 1 {
		side = 8
	}
	taps := make([]float64, 2*side+1)
	var sum float64
	for i := range taps {
		// Tap i corresponds to n = i - side; the ideal filter for delay
		// d = side + frac (integer group delay + fractional part) is
		// sinc(i - d) windowed.
		t := float64(i) - (float64(side) + frac)
		s := sinc(t)
		w := 0.5 * (1 + math.Cos(math.Pi*(float64(i)-float64(side))/float64(side+1)))
		taps[i] = s * w
		sum += taps[i]
	}
	// Normalize DC gain to 1 so the delay does not change signal power.
	if sum != 0 {
		for i := range taps {
			taps[i] /= sum
		}
	}
	out := make([]complex128, len(x)+2*side)
	for i, v := range x {
		if v == 0 {
			continue
		}
		for j, t := range taps {
			out[i+j] += v * complex(t, 0)
		}
	}
	// The filter imposes `side` samples of group delay; the caller asked for
	// frac only, so drop `side` leading samples to leave just the fractional
	// shift (content then starts at 0 shifted by frac).
	return out[side:]
}

func sinc(x float64) float64 {
	if math.Abs(x) < 1e-12 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// PhaseRampDelay applies a delay of d samples to a frequency-domain symbol by
// multiplying subcarrier k (in FFT bin order, with negative frequencies in
// the upper half) by e^{-j*2*pi*k*d/N}. This is the FFT shift property the
// SLS detection-delay estimator inverts (paper Eq. 1).
func PhaseRampDelay(bins []complex128, d float64) {
	n := len(bins)
	for k := range bins {
		// Signed subcarrier index for bins in standard FFT order.
		sk := k
		if k > n/2 {
			sk = k - n
		}
		angle := -2 * math.Pi * float64(sk) * d / float64(n)
		bins[k] *= complex(math.Cos(angle), math.Sin(angle))
	}
}
