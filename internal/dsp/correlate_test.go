package dsp

import (
	"math/rand"
	"testing"
)

func TestCrossCorrelateFindsEmbeddedReference(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	ref := randVec(r, 32)
	x := make([]complex128, 200)
	for i := range x {
		x[i] = complex(r.NormFloat64()*0.1, r.NormFloat64()*0.1)
	}
	at := 77
	for i, v := range ref {
		x[at+i] += v
	}
	corr := CrossCorrelate(x, ref)
	idx, peak := PeakIndex(corr)
	if idx != at {
		t.Fatalf("peak at %d, want %d", idx, at)
	}
	if peak < 0.9 {
		t.Fatalf("peak %g too weak", peak)
	}
}

func TestCrossCorrelatePerfectMatchIsOne(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ref := randVec(r, 16)
	corr := CrossCorrelate(ref, ref)
	if len(corr) != 1 {
		t.Fatalf("len = %d", len(corr))
	}
	if corr[0] < 0.999999 || corr[0] > 1.000001 {
		t.Fatalf("self correlation = %g, want 1", corr[0])
	}
}

func TestAutoCorrRatioDetectsPeriodicity(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	period := 16
	// Build noise, then a periodic section of 5 periods.
	x := randVec(r, 64)
	Scale(x, 0.05)
	rep := randVec(r, period)
	for k := 0; k < 5; k++ {
		x = append(x, rep...)
	}
	x = append(x, randVecScaled(r, 64, 0.05)...)
	m := AutoCorrRatio(x, period, 2*period)
	// The metric should approach 1 inside the periodic run (starting near
	// sample 64) and stay small in the leading noise.
	inside := m[70]
	outside := m[5]
	if inside < 0.8 {
		t.Fatalf("metric inside periodic region = %g, want > 0.8", inside)
	}
	if outside > 0.5 {
		t.Fatalf("metric in noise = %g, want < 0.5", outside)
	}
}

func TestDoubleSlidingWindowRisesAtPacketStart(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	noise := randVecScaled(r, 128, 0.05)
	signal := randVec(r, 128)
	x := append(noise, signal...)
	ratio := DoubleSlidingWindow(x, 16)
	// Just before the boundary the after-window holds signal, before-window
	// noise, so the ratio must spike far above 1.
	peakIdx, peak := PeakIndex(ratio)
	if peak < 10 {
		t.Fatalf("peak ratio %g too small", peak)
	}
	if peakIdx < 128-20 || peakIdx > 128 {
		t.Fatalf("peak at %d, want near 112..128", peakIdx)
	}
}

func randVecScaled(r *rand.Rand, n int, s float64) []complex128 {
	v := randVec(r, n)
	Scale(v, s)
	return v
}
