package dsp

import "math"

// Unwrap removes 2*pi discontinuities from a sequence of phases (radians),
// returning a new slice where successive differences are within (-pi, pi].
func Unwrap(phases []float64) []float64 {
	out := make([]float64, len(phases))
	if len(phases) == 0 {
		return out
	}
	out[0] = phases[0]
	offset := 0.0
	for i := 1; i < len(phases); i++ {
		d := phases[i] - phases[i-1]
		for d > math.Pi {
			d -= 2 * math.Pi
			offset -= 2 * math.Pi
		}
		for d <= -math.Pi {
			d += 2 * math.Pi
			offset += 2 * math.Pi
		}
		out[i] = phases[i] + offset
	}
	return out
}

// LinearFit performs ordinary least squares on the points (xs[i], ys[i]) and
// returns the slope and intercept. It panics if fewer than two points are
// given or the xs are all identical.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("dsp: LinearFit needs >= 2 points with matching lengths")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("dsp: LinearFit degenerate x values")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// WrapPhase reduces an angle to (-pi, pi].
func WrapPhase(p float64) float64 {
	for p > math.Pi {
		p -= 2 * math.Pi
	}
	for p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}
