package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestDelaySamplesInteger(t *testing.T) {
	x := []complex128{1, 2, 3}
	got := DelaySamples(x, 2, 8)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	if got[0] != 0 || got[1] != 0 || got[2] != 1 || got[4] != 3 {
		t.Fatalf("integer delay wrong: %v", got)
	}
}

func TestDelaySamplesFractionalPhaseSlope(t *testing.T) {
	// Delay a band-limited tone by 0.5 samples and verify via the analytic
	// phase of the tone that the effective delay is close to 0.5.
	n := 256
	binIdx := 4.0 // low-frequency tone, well within filter passband
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * binIdx * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, ang))
	}
	d := 0.5
	y := DelaySamples(x, d, 16)
	// Compare phase of y against x in the steady-state middle region.
	var phaseDiff float64
	count := 0
	for i := 64; i < 192; i++ {
		ph := cmplx.Phase(y[i] * cmplx.Conj(x[i]))
		phaseDiff += ph
		count++
	}
	phaseDiff /= float64(count)
	// Expected phase shift: -2*pi*f*d where f = binIdx/n cycles/sample.
	want := -2 * math.Pi * (binIdx / float64(n)) * d
	if math.Abs(phaseDiff-want) > 1e-3 {
		t.Fatalf("fractional delay phase = %g, want %g", phaseDiff, want)
	}
}

func TestDelaySamplesPreservesEnergy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// Use a smooth (oversampled) random signal: white noise is at the edge
	// of the interpolation filter's band where ripple is expected.
	n := 512
	x := make([]complex128, n)
	for i := range x {
		ang := 2*math.Pi*0.05*float64(i) + r.NormFloat64()*0.01
		x[i] = cmplx.Exp(complex(0, ang))
	}
	y := DelaySamples(x, 3.37, 16)
	ex, ey := Energy(x), Energy(y)
	if math.Abs(ex-ey)/ex > 0.02 {
		t.Fatalf("energy changed: %g -> %g", ex, ey)
	}
}

func TestDelaySamplesNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	DelaySamples([]complex128{1}, -1, 8)
}

func TestPhaseRampDelayFractional(t *testing.T) {
	// A fractional phase-ramp delay then its inverse is the identity.
	r := rand.New(rand.NewSource(8))
	x := randVec(r, 64)
	y := append([]complex128(nil), x...)
	PhaseRampDelay(y, 0.37)
	PhaseRampDelay(y, -0.37)
	if d := maxDiff(x, y); d > 1e-10 {
		t.Fatalf("ramp inverse mismatch %g", d)
	}
}
