package dsp

import (
	"math"
	"math/cmplx"
)

// Energy returns the total energy sum(|x[i]|^2) of a complex vector.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// MeanPower returns the average per-sample power of x, or 0 for an empty
// slice.
func MeanPower(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// Scale multiplies every element of x by the real factor g in place.
func Scale(x []complex128, g float64) {
	c := complex(g, 0)
	for i := range x {
		x[i] *= c
	}
}

// AddInto accumulates src into dst element-wise: dst[i] += src[i]. The slices
// must have equal length.
func AddInto(dst, src []complex128) {
	if len(dst) != len(src) {
		panic("dsp: AddInto length mismatch")
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// Dot returns the inner product sum(x[i] * conj(y[i])).
func Dot(x, y []complex128) complex128 {
	if len(x) != len(y) {
		panic("dsp: Dot length mismatch")
	}
	var s complex128
	for i := range x {
		s += x[i] * cmplx.Conj(y[i])
	}
	return s
}

// Rotate applies a continuous phase rotation of freq cycles-per-sample to x
// starting at sample offset start: x[i] *= e^{j*2*pi*freq*(start+i)}.
// It is used to impose or undo carrier frequency offsets.
func Rotate(x []complex128, freq float64, start int) {
	if freq == 0 {
		return
	}
	step := cmplx.Exp(complex(0, 2*math.Pi*freq))
	cur := cmplx.Exp(complex(0, 2*math.Pi*freq*float64(start)))
	for i := range x {
		x[i] *= cur
		cur *= step
		// Renormalize periodically to stop |cur| drifting from 1.
		if i&1023 == 1023 {
			cur /= complex(cmplx.Abs(cur), 0)
		}
	}
}

// MaxAbs returns the maximum magnitude over x, or 0 for an empty slice.
func MaxAbs(x []complex128) float64 {
	var m float64
	for _, v := range x {
		if a := cmplx.Abs(v); a > m {
			m = a
		}
	}
	return m
}
