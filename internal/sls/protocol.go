package sls

import (
	"fmt"

	"repro/internal/lp"
)

// ProbeExchange carries the measurements from one probe/response round trip
// used to estimate the one-way propagation delay between two nodes (paper
// §4.2c, Eq. 2). All quantities are in samples of the prober's clock.
type ProbeExchange struct {
	RoundTrip   float64 // probe TX start to response detection instant
	DetectRx    float64 // responder's detection-delay estimate for the probe
	TurnRx      float64 // responder's hardware turnaround time
	DetectTx    float64 // prober's detection-delay estimate for the response
	ExtraWaitRx float64 // any deliberate constant wait added at the responder
}

// OneWayDelay solves Eq. 2 for the one-way propagation delay: half of the
// round trip after removing both detection delays, the responder turnaround
// and any deliberate wait.
func (p ProbeExchange) OneWayDelay() float64 {
	return (p.RoundTrip - p.DetectRx - p.TurnRx - p.DetectTx - p.ExtraWaitRx) / 2
}

// CoSenderSchedule is the per-co-sender timing computed before a joint
// transmission (paper §4.3). All values in samples.
type CoSenderSchedule struct {
	// WaitAfterReady is how long the co-sender idles after it has finished
	// switching to transmit, to land on the global time reference:
	// SIFS - (d_i + Delta_i + h_i).
	WaitAfterReady float64
	// TxOffset shifts the transmission relative to the global time
	// reference to equalize propagation to the receiver: w_i = T0 - t_i.
	TxOffset float64
}

// ComputeSchedule derives a co-sender's timing. sifs is the SIFS duration in
// samples; dLead the propagation delay from the lead sender; detect the
// detection-delay estimate for the sync header; turn the hardware
// turnaround; tLeadRx and tCoRx the one-way delays from the lead sender and
// this co-sender to the receiver.
func ComputeSchedule(sifs, dLead, detect, turn, tLeadRx, tCoRx float64) (CoSenderSchedule, error) {
	ready := dLead + detect + turn
	if ready > sifs {
		return CoSenderSchedule{}, fmt.Errorf("sls: co-sender not ready within SIFS (%.1f > %.1f samples)", ready, sifs)
	}
	return CoSenderSchedule{
		WaitAfterReady: sifs - ready,
		TxOffset:       tLeadRx - tCoRx,
	}, nil
}

// MultiReceiverWaits chooses co-sender wait times minimizing the maximum
// pairwise misalignment across a set of receivers (paper §4.6).
//
// tLead[k] is the one-way delay from the lead sender to receiver k;
// tCo[i][k] from co-sender i to receiver k. It returns the optimal TxOffset
// per co-sender and the residual worst-case misalignment, which the lead
// sender converts into a CP increase.
func MultiReceiverWaits(tLead []float64, tCo [][]float64) (w []float64, maxMis float64, err error) {
	nrx := len(tLead)
	nco := len(tCo)
	if nco == 0 || nrx == 0 {
		return nil, 0, nil
	}
	var offsets []float64
	var gains [][]float64
	for k := 0; k < nrx; k++ {
		// Co-sender i vs lead at receiver k: (w_i + t_ik) - T_k.
		for i := 0; i < nco; i++ {
			g := make([]float64, nco)
			g[i] = 1
			offsets = append(offsets, tCo[i][k]-tLead[k])
			gains = append(gains, g)
		}
		// Co-sender i vs co-sender j at receiver k.
		for i := 0; i < nco; i++ {
			for j := i + 1; j < nco; j++ {
				g := make([]float64, nco)
				g[i] = 1
				g[j] = -1
				offsets = append(offsets, tCo[i][k]-tCo[j][k])
				gains = append(gains, g)
			}
		}
	}
	return lp.MinimizeMaxAbs(offsets, gains)
}

// CPIncreaseSamples converts a worst-case misalignment (samples) into the
// integer number of extra cyclic-prefix samples the lead sender advertises
// in its synchronization header.
func CPIncreaseSamples(maxMis float64) int {
	if maxMis <= 0 {
		return 0
	}
	return int(maxMis + 0.999999)
}

// TrackWait updates a co-sender's TxOffset from the misalignment the
// receiver measured and fed back in its ACK (paper §4.5). Positive
// misalignment means the co-sender arrived late, so the offset decreases.
// gain in (0,1] damps the correction against measurement noise.
func TrackWait(current, measuredMisalignment, gain float64) float64 {
	return current - gain*measuredMisalignment
}
