// Package sls implements SourceSync's Symbol Level Synchronizer (paper §4):
// packet-detection-delay estimation from the phase slope of OFDM channel
// estimates, propagation-delay measurement from probe/response exchanges,
// wait-time computation for co-senders, ACK-driven misalignment tracking,
// and the multi-receiver min-max wait-time optimization.
package sls

import (
	"math"
	"math/cmplx"

	"repro/internal/dsp"
	"repro/internal/modem"
)

// SIFS is the 802.11 short interframe space: the guaranteed bound on a
// node's receive-to-transmit turnaround (10 us in 802.11 a/g/n), which
// SourceSync uses as the global time reference offset after the
// synchronization header (paper §4.3).
const SIFS = 10e-6

// SIFSSamples returns SIFS in units of samples for the given config.
func SIFSSamples(cfg *modem.Config) float64 { return SIFS * cfg.SampleRateHz }

// SlopeWindowHz is the width of the subcarrier windows over which channel
// phase slopes are fitted: 3 MHz, below the coherence bandwidth of indoor
// channels, so the channel is approximately flat within a window (paper
// §4.2a).
const SlopeWindowHz = 3e6

// EstimateDelay measures the timing offset (in samples, fractional) of the
// FFT window used to compute channel estimate h, via the FFT shift theorem:
// a delay of d samples contributes phase -2*pi*k*d/N on subcarrier k. Slopes
// are fitted over windows of consecutive used subcarriers spanning at most
// SlopeWindowHz, weighted by window channel power, and averaged (paper Eq 1).
//
// A positive return value means the window was placed d samples after the
// channel's energy centroid (the packet was "detected late").
func EstimateDelay(cfg *modem.Config, h []complex128) float64 {
	return EstimateDelayWindowed(cfg, h, SlopeWindowHz)
}

// EstimateDelayWindowed is EstimateDelay with an explicit window width; the
// whole-band fit used by the ablation experiments passes a huge width.
func EstimateDelayWindowed(cfg *modem.Config, h []complex128, windowHz float64) float64 {
	used := cfg.UsedBins()
	if len(used) < 2 {
		return 0
	}
	winBins := int(windowHz / cfg.SubcarrierSpacingHz())
	if winBins < 2 {
		winBins = 2
	}

	var slopeAcc, weightAcc float64
	for start := 0; start < len(used); start += winBins {
		end := start + winBins
		if end > len(used) {
			end = len(used)
		}
		if end-start < 2 {
			break
		}
		ks := make([]float64, 0, end-start)
		phases := make([]float64, 0, end-start)
		var weight float64
		for _, k := range used[start:end] {
			v := h[cfg.Bin(k)]
			if v == 0 {
				continue
			}
			ks = append(ks, float64(k))
			phases = append(phases, cmplx.Phase(v))
			weight += real(v)*real(v) + imag(v)*imag(v)
		}
		if len(ks) < 2 || weight == 0 {
			continue
		}
		slope, _ := dsp.LinearFit(ks, dsp.Unwrap(phases))
		slopeAcc += slope * weight
		weightAcc += weight
	}
	if weightAcc == 0 {
		return 0
	}
	slope := slopeAcc / weightAcc
	// slope = -2*pi*d/N  =>  d = -slope*N/(2*pi).
	return -slope * float64(cfg.NFFT) / (2 * math.Pi)
}

// Misalignment returns the symbol misalignment between two senders, in
// samples, from their individual channel estimates within the same joint
// frame: the difference of their timing offsets (paper §4.5). Positive
// means the co-sender (hCo) arrived later than the lead (hLead).
func Misalignment(cfg *modem.Config, hLead, hCo []complex128) float64 {
	return EstimateDelay(cfg, hCo) - EstimateDelay(cfg, hLead)
}
