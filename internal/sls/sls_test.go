package sls

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/modem"
)

// hWithDelay builds a channel estimate that includes a timing offset of d
// samples over the given multipath channel.
func hWithDelay(cfg *modem.Config, m *channel.Multipath, d float64) []complex128 {
	h := m.FreqResponse(cfg.NFFT)
	dsp.PhaseRampDelay(h, d)
	// Zero the unused bins like a real channel estimator would.
	used := map[int]bool{}
	for _, k := range cfg.UsedBins() {
		used[cfg.Bin(k)] = true
	}
	for b := range h {
		if !used[b] {
			h[b] = 0
		}
	}
	return h
}

func TestEstimateDelayFlatChannel(t *testing.T) {
	cfg := modem.ProfileWiGLAN()
	for _, d := range []float64{0, 0.25, 1, 2.5, -1.5, 5} {
		h := hWithDelay(cfg, channel.Flat(), d)
		got := EstimateDelay(cfg, h)
		if math.Abs(got-d) > 0.01 {
			t.Fatalf("d=%g: estimated %g", d, got)
		}
	}
}

func TestEstimateDelayFlatChannel80211(t *testing.T) {
	cfg := modem.Profile80211()
	for _, d := range []float64{0, 0.5, 3, -2} {
		h := hWithDelay(cfg, channel.Flat(), d)
		got := EstimateDelay(cfg, h)
		if math.Abs(got-d) > 0.01 {
			t.Fatalf("d=%g: estimated %g", d, got)
		}
	}
}

func TestEstimateDelayMultipathUnbiased(t *testing.T) {
	// Over an ensemble of multipath channels the estimator should track the
	// induced delay plus the (positive) channel group-delay centroid; the
	// *difference* between two induced delays must be unbiased, since that
	// difference is what the misalignment feedback uses.
	cfg := modem.ProfileWiGLAN()
	rng := rand.New(rand.NewSource(1))
	const trials = 200
	var diffs []float64
	for i := 0; i < trials; i++ {
		m := channel.NewIndoor(rng, cfg.SampleRateHz, 30, 0)
		d1, d2 := 2.0, 5.5
		e1 := EstimateDelay(cfg, hWithDelay(cfg, m, d1))
		e2 := EstimateDelay(cfg, hWithDelay(cfg, m, d2))
		diffs = append(diffs, (e2-e1)-(d2-d1))
	}
	if bias := dsp.Mean(diffs); math.Abs(bias) > 0.05 {
		t.Fatalf("delay-difference bias %.3f samples", bias)
	}
	// Unwrap decisions near +-pi differ slightly between the two ramps,
	// adding ~0.1-sample noise; that is ~1 ns at 128 MHz, well inside the
	// paper's reported accuracy.
	if spread := dsp.StdDev(diffs); spread > 0.3 {
		t.Fatalf("same-channel delay-difference spread %.3f samples", spread)
	}
}

func TestMisalignmentTwoSenders(t *testing.T) {
	cfg := modem.ProfileWiGLAN()
	rng := rand.New(rand.NewSource(2))
	mLead := channel.NewIndoor(rng, cfg.SampleRateHz, 20, 6)
	mCo := channel.NewIndoor(rng, cfg.SampleRateHz, 20, 6)
	// Co-sender 3.25 samples later than lead; channel centroids differ so
	// allow a tolerance of a sample or so (that is the physical error floor
	// the paper's Fig. 12 reports as ~2.5 samples at 128 MHz).
	hL := hWithDelay(cfg, mLead, 1.0)
	hC := hWithDelay(cfg, mCo, 4.25)
	got := Misalignment(cfg, hL, hC)
	if math.Abs(got-3.25) > 1.5 {
		t.Fatalf("misalignment %.2f, want ~3.25", got)
	}
}

func TestOneWayDelayAlgebra(t *testing.T) {
	// Construct a synthetic round trip: propagation 7.3 samples each way.
	prop := 7.3
	p := ProbeExchange{
		DetectRx:    4.2,
		TurnRx:      100,
		DetectTx:    3.1,
		ExtraWaitRx: 50,
	}
	p.RoundTrip = prop + p.DetectRx + p.TurnRx + p.ExtraWaitRx + prop + p.DetectTx
	if got := p.OneWayDelay(); math.Abs(got-prop) > 1e-9 {
		t.Fatalf("one-way %.3f, want %.3f", got, prop)
	}
}

func TestComputeSchedule(t *testing.T) {
	sifs := 1280.0 // 10 us at 128 MHz
	s, err := ComputeSchedule(sifs, 10, 5, 300, 20, 12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.WaitAfterReady-(sifs-315)) > 1e-9 {
		t.Fatalf("wait %.1f", s.WaitAfterReady)
	}
	if math.Abs(s.TxOffset-8) > 1e-9 {
		t.Fatalf("offset %.1f", s.TxOffset)
	}
	// Turnaround beyond SIFS must be rejected.
	if _, err := ComputeSchedule(sifs, 10, 5, 1400, 20, 12); err == nil {
		t.Fatal("expected error for slow turnaround")
	}
}

func TestScheduleAlignsAtReceiver(t *testing.T) {
	// End-to-end algebra check of §4.3: with exact measurements, the
	// co-sender's data and the lead's data arrive at the same instant.
	sifs := 1280.0
	dLead := 17.0   // lead -> co-sender propagation
	detect := 6.4   // co-sender detection delay
	turn := 400.0   // co-sender turnaround
	tLeadRx := 25.0 // lead -> receiver
	tCoRx := 9.0    // co-sender -> receiver
	s, err := ComputeSchedule(sifs, dLead, detect, turn, tLeadRx, tCoRx)
	if err != nil {
		t.Fatal(err)
	}
	// Timeline in absolute samples. Lead ends its sync header at 0 and
	// starts data at SIFS (plus co-sender training, ignored here on both
	// sides). Lead's data reaches the receiver at SIFS + tLeadRx.
	leadArrival := sifs + tLeadRx
	// Co-sender: hears header end at dLead, detects it detect later, is
	// ready to transmit turn after that, waits WaitAfterReady + TxOffset,
	// transmits; arrives tCoRx later.
	coTx := dLead + detect + turn + s.WaitAfterReady + s.TxOffset
	coArrival := coTx + tCoRx
	if math.Abs(coArrival-leadArrival) > 1e-9 {
		t.Fatalf("arrivals differ: lead %.3f co %.3f", leadArrival, coArrival)
	}
}

func TestMultiReceiverWaitsSingleReceiver(t *testing.T) {
	// One receiver: perfect alignment achievable; w = T0 - t_i.
	w, m, err := MultiReceiverWaits([]float64{25}, [][]float64{{9}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-16) > 1e-6 || m > 1e-6 {
		t.Fatalf("w=%v m=%g", w, m)
	}
}

func TestMultiReceiverWaitsFig8(t *testing.T) {
	// Paper Fig. 8: to sync at Rx1 the co-sender must send early; at Rx2
	// late; no wait aligns both. Lead delays T = [5, 1]; co delays
	// t = [1, 5]. Misalignment rows: w + 1 - 5 = w - 4 (rx1), w + 5 - 1 =
	// w + 4 (rx2). Optimal w = 0, residual 4.
	w, m, err := MultiReceiverWaits([]float64{5, 1}, [][]float64{{1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]) > 1e-6 {
		t.Fatalf("w = %v, want 0", w)
	}
	if math.Abs(m-4) > 1e-6 {
		t.Fatalf("m = %g, want 4", m)
	}
	if CPIncreaseSamples(m) != 4 {
		t.Fatalf("cp increase %d", CPIncreaseSamples(m))
	}
}

func TestMultiReceiverWaitsPairwiseCoSenders(t *testing.T) {
	// Two co-senders, one receiver: both can align exactly with the lead
	// and with each other.
	w, m, err := MultiReceiverWaits([]float64{10}, [][]float64{{4}, {13}})
	if err != nil {
		t.Fatal(err)
	}
	if m > 1e-6 {
		t.Fatalf("misalignment %g", m)
	}
	if math.Abs(w[0]-6) > 1e-6 || math.Abs(w[1]+3) > 1e-6 {
		t.Fatalf("w = %v", w)
	}
}

func TestCPIncreaseSamples(t *testing.T) {
	if CPIncreaseSamples(0) != 0 || CPIncreaseSamples(-1) != 0 {
		t.Fatal("nonpositive misalignment needs no CP")
	}
	if CPIncreaseSamples(0.2) != 1 {
		t.Fatal("fractional misalignment rounds up")
	}
	if CPIncreaseSamples(3.0) != 3 {
		t.Fatalf("got %d", CPIncreaseSamples(3.0))
	}
}

func TestTrackWaitConverges(t *testing.T) {
	// Iterating the feedback loop with a noisy misalignment measurement
	// must converge to zero misalignment.
	rng := rand.New(rand.NewSource(3))
	trueOffset := 5.0 // co-sender currently 5 samples late
	w := 0.0
	for i := 0; i < 60; i++ {
		measured := trueOffset + w + rng.NormFloat64()*0.3
		w = TrackWait(w, measured, 0.5)
	}
	if math.Abs(trueOffset+w) > 0.5 {
		t.Fatalf("residual misalignment %.2f", trueOffset+w)
	}
}

func TestSIFSSamples(t *testing.T) {
	if got := SIFSSamples(modem.ProfileWiGLAN()); math.Abs(got-1280) > 1e-9 {
		t.Fatalf("SIFS = %g samples", got)
	}
	if got := SIFSSamples(modem.Profile80211()); math.Abs(got-200) > 1e-9 {
		t.Fatalf("SIFS = %g samples", got)
	}
}

func TestEstimateDelayWholeBandAblation(t *testing.T) {
	// On a flat channel the whole-band fit and the windowed fit agree.
	cfg := modem.ProfileWiGLAN()
	h := hWithDelay(cfg, channel.Flat(), 2.0)
	win := EstimateDelay(cfg, h)
	whole := EstimateDelayWindowed(cfg, h, 1e12)
	if math.Abs(win-whole) > 0.05 {
		t.Fatalf("windowed %.3f vs whole-band %.3f", win, whole)
	}
}
