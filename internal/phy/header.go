// Package phy assembles SourceSync joint frames (paper Figs. 6-7) and
// decodes them: a lead sender's synchronization header, a SIFS turnaround
// gap, per-co-sender channel estimation slots, and space-time-coded data
// symbols; plus the distributed waveform-level simulation used to evaluate
// synchronization accuracy end to end.
package phy

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/modem"
)

// SyncHeader is the content of the lead sender's synchronization header
// (paper §4.4): identification of the joint transmission plus everything a
// co-sender or receiver needs to process the rest of the frame.
type SyncHeader struct {
	LeadID     uint16 // lead sender identifier
	Joint      bool   // joint-frame flag
	PacketID   uint16 // 16-bit hash of src/dst/IP-id identifying the packet
	RateIdx    uint8  // index into modem.StandardRates for the data symbols
	DataCP     uint8  // cyclic prefix of data symbols (includes any increase)
	NumCo      uint8  // number of co-sender channel-estimation slots
	PayloadLen uint16 // payload bytes (pre-CRC)
	Seed       uint8  // scrambler seed for the data portion
}

// syncHeaderLen is the serialized size in bytes.
const syncHeaderLen = 11

// Bytes serializes the header.
func (h SyncHeader) Bytes() []byte {
	b := make([]byte, syncHeaderLen)
	binary.LittleEndian.PutUint16(b[0:], h.LeadID)
	if h.Joint {
		b[2] = 1
	}
	binary.LittleEndian.PutUint16(b[3:], h.PacketID)
	b[5] = h.RateIdx
	b[6] = h.DataCP
	b[7] = h.NumCo
	binary.LittleEndian.PutUint16(b[8:], h.PayloadLen)
	b[10] = h.Seed
	return b
}

// ParseSyncHeader deserializes a header.
func ParseSyncHeader(b []byte) (SyncHeader, error) {
	if len(b) != syncHeaderLen {
		return SyncHeader{}, fmt.Errorf("phy: sync header is %d bytes, want %d", len(b), syncHeaderLen)
	}
	h := SyncHeader{
		LeadID:     binary.LittleEndian.Uint16(b[0:]),
		Joint:      b[2] == 1,
		PacketID:   binary.LittleEndian.Uint16(b[3:]),
		RateIdx:    b[5],
		DataCP:     b[6],
		NumCo:      b[7],
		PayloadLen: binary.LittleEndian.Uint16(b[8:]),
		Seed:       b[10],
	}
	if int(h.RateIdx) >= len(modem.StandardRates()) {
		return SyncHeader{}, errors.New("phy: sync header rate index out of range")
	}
	return h, nil
}

// HashPacketID computes the 16-bit packet identifier from flow fields, per
// the paper: a hash of IP source, destination and IP identifier.
func HashPacketID(src, dst uint32, ipID uint16) uint16 {
	x := src*2654435761 ^ dst*40503 ^ uint32(ipID)*9176
	x ^= x >> 16
	return uint16(x)
}

// headerFrameParams returns the modem parameters used for the sync header
// symbols: the most robust rate, default CP.
func headerFrameParams(cfg *modem.Config) modem.FrameParams {
	return modem.FrameParams{
		Cfg:           cfg,
		Rate:          modem.Rate{Mod: modem.BPSK, Code: modem.Rate12},
		CP:            cfg.CPLen,
		PayloadLen:    syncHeaderLen,
		ScramblerSeed: 0x5d,
	}
}
