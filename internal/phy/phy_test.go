package phy

import (
	"maps"
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/channel"
	"repro/internal/modem"
)

func TestSyncHeaderRoundTrip(t *testing.T) {
	h := SyncHeader{
		LeadID: 7, Joint: true, PacketID: 0xBEEF, RateIdx: 3,
		DataCP: 20, NumCo: 2, PayloadLen: 1460, Seed: 0x5d,
	}
	got, err := ParseSyncHeader(h.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
	if _, err := ParseSyncHeader([]byte{1, 2}); err == nil {
		t.Fatal("short header must fail")
	}
	bad := h
	bad.RateIdx = 99
	if _, err := ParseSyncHeader(bad.Bytes()); err == nil {
		t.Fatal("bad rate index must fail")
	}
}

func TestHashPacketIDSpreads(t *testing.T) {
	seen := map[uint16]bool{}
	for i := uint32(0); i < 200; i++ {
		seen[HashPacketID(0x0a000001+i, 0x0a000002, uint16(i))] = true
	}
	if len(seen) < 190 {
		t.Fatalf("only %d distinct ids out of 200", len(seen))
	}
}

func TestJointFrameLayout(t *testing.T) {
	cfg := modem.Profile80211()
	rate, _ := modem.RateByMbps(12)
	p := JointFrameParams{
		Cfg: cfg, Rate: rate, DataCP: cfg.CPLen,
		PayloadLen: 100, Seed: 0x5d, NumCo: 2,
	}
	if p.GlobalRef() != p.HeaderEnd()+200 {
		t.Fatalf("global ref %d, header end %d", p.GlobalRef(), p.HeaderEnd())
	}
	if p.CESlot(0) != p.GlobalRef() || p.CESlot(1) != p.GlobalRef()+160 {
		t.Fatalf("CE slots %d %d", p.CESlot(0), p.CESlot(1))
	}
	if p.DataStart() != p.GlobalRef()+320 {
		t.Fatalf("data start %d", p.DataStart())
	}
	lead := p.BuildLeadWaveform(make([]byte, 100))
	if len(lead) != p.TotalLen() {
		t.Fatalf("lead waveform %d samples, want %d", len(lead), p.TotalLen())
	}
	co := p.BuildCoWaveform(1, make([]byte, 100))
	if len(co) != p.TotalLen()-p.GlobalRef() {
		t.Fatalf("co waveform %d samples", len(co))
	}
	// The lead must be silent through the SIFS gap and CE slots.
	for i := p.HeaderEnd(); i < p.DataStart(); i++ {
		if lead[i] != 0 {
			t.Fatalf("lead not silent at %d", i)
		}
	}
	// Co-sender 1 must be silent during co-sender 0's CE slot.
	for i := 0; i < 160; i++ {
		if co[i] != 0 {
			t.Fatalf("co 1 not silent during slot 0 at %d", i)
		}
	}
}

func TestOverheadFractionMatchesPaper(t *testing.T) {
	// Paper §4.4: 1460-byte packets at 12 Mbps: ~1.7% for two concurrent
	// senders (SIFS + 2 CE symbols over a ~1 ms frame).
	cfg := modem.Profile80211()
	rate, _ := modem.RateByMbps(12)
	two := JointFrameParams{Cfg: cfg, Rate: rate, DataCP: cfg.CPLen, PayloadLen: 1460, Seed: 1, NumCo: 1}
	if f := two.OverheadFraction(); f < 0.012 || f > 0.022 {
		t.Fatalf("2-sender overhead %.4f, want ~0.017", f)
	}
	five := JointFrameParams{Cfg: cfg, Rate: rate, DataCP: cfg.CPLen, PayloadLen: 1460, Seed: 1, NumCo: 4}
	f2, f5 := two.OverheadFraction(), five.OverheadFraction()
	if f5 <= f2 || f5 > 0.06 {
		t.Fatalf("5-sender overhead %.4f (2-sender %.4f)", f5, f2)
	}
}

// idealSim builds a 2-sender simulation with flat channels, no CFO, perfect
// measurements and the given noise at the receiver.
func idealSim(t *testing.T, rng *rand.Rand, noiseRx float64) *JointSimConfig {
	t.Helper()
	cfg := modem.Profile80211()
	rate, _ := modem.RateByMbps(12)
	p := JointFrameParams{
		Cfg: cfg, Rate: rate, DataCP: cfg.CPLen,
		PayloadLen: 120, Seed: 0x5d, NumCo: 1,
		LeadID: 1, PacketID: 42,
	}
	dLeadCo := 3.0
	tLeadRx := 5.0
	tCoRx := 2.0
	return &JointSimConfig{
		P:        p,
		LeadToCo: []Link{{Gain: 1, Delay: dLeadCo}},
		LeadToRx: Link{Gain: 1, Delay: tLeadRx},
		CoToRx:   []Link{{Gain: 1, Delay: tCoRx}},
		Co: []CoSenderSim{{
			Turnaround:       120,
			EstDelayFromLead: dLeadCo,
			TxOffset:         tLeadRx - tCoRx,
			NoisePower:       1e-6,
			FFTBackoff:       3,
		}},
		NoiseRx: noiseRx,
		Rng:     rng,
	}
}

func TestJointTransmissionIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sim := idealSim(t, rng, 1e-6)
	payload := make([]byte, 120)
	rng.Read(payload)
	run, err := sim.Run(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !run.CoJoined[0] {
		t.Fatal("co-sender failed to join")
	}
	if math.Abs(run.TrueMisalign[0]) > 0.35 {
		t.Fatalf("true misalignment %.3f samples, want ~0", run.TrueMisalign[0])
	}

	rx := &JointReceiver{Cfg: sim.P.Cfg, FFTBackoff: 3}
	res, err := rx.Receive(run.RxWave, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("CRC failed")
	}
	if string(res.Payload) != string(payload) {
		t.Fatal("payload mismatch")
	}
	if !res.ActiveCo[0] {
		t.Fatal("receiver did not see the co-sender")
	}
	if res.Header.PacketID != 42 || !res.Header.Joint {
		t.Fatalf("header %+v", res.Header)
	}
	// The misalignment estimate should agree with the (near-zero) truth.
	if math.Abs(res.MisalignEst[0]-run.TrueMisalign[0]) > 0.5 {
		t.Fatalf("misalign est %.3f vs truth %.3f", res.MisalignEst[0], run.TrueMisalign[0])
	}
}

func TestJointCompensatesAsymmetricDelays(t *testing.T) {
	// Co-sender much farther from the receiver than the lead: without the
	// w_i compensation its symbols would arrive late; with it, aligned.
	rng := rand.New(rand.NewSource(2))
	sim := idealSim(t, rng, 1e-6)
	sim.CoToRx[0].Delay = 14
	sim.Co[0].TxOffset = sim.LeadToRx.Delay - sim.CoToRx[0].Delay // -9: transmit early
	payload := make([]byte, 120)
	rng.Read(payload)
	run, err := sim.Run(payload)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(run.TrueMisalign[0]) > 0.35 {
		t.Fatalf("true misalignment %.3f samples", run.TrueMisalign[0])
	}
	// And with compensation disabled the misalignment equals the delay
	// asymmetry.
	sim2 := idealSim(t, rand.New(rand.NewSource(3)), 1e-6)
	sim2.CoToRx[0].Delay = 14
	sim2.Co[0].TxOffset = 0
	run2, err := sim2.Run(payload)
	if err != nil {
		t.Fatal(err)
	}
	want := 14.0 - sim2.LeadToRx.Delay
	if math.Abs(run2.TrueMisalign[0]-want) > 0.35 {
		t.Fatalf("uncompensated misalignment %.3f, want %.1f", run2.TrueMisalign[0], want)
	}
}

func TestJointDecodesWithRealisticImpairments(t *testing.T) {
	// Multipath on every link, oscillator offsets with residual error,
	// moderate noise: the joint frame must still decode and the
	// misalignment estimate must be close to the truth.
	rng := rand.New(rand.NewSource(4))
	cfg := modem.Profile80211()
	rate, _ := modem.RateByMbps(12)
	p := JointFrameParams{
		Cfg: cfg, Rate: rate, DataCP: cfg.CPLen,
		PayloadLen: 120, Seed: 0x5d, NumCo: 1, LeadID: 3, PacketID: 9,
	}
	mk := func() *channel.Multipath { return channel.NewIndoor(rng, cfg.SampleRateHz, 40, 6) }
	sim := &JointSimConfig{
		P:        p,
		Lead:     LeadSim{ResidCFO: 10e-9 * 5.8e9 / 20e6 * 0.02, Phase: 1.1},
		LeadToCo: []Link{{Gain: 1, Delay: 2.4, Path: mk()}},
		LeadToRx: Link{Gain: 1, Delay: 4.7, Path: mk()},
		CoToRx:   []Link{{Gain: 1, Delay: 1.9, Path: mk()}},
		Co: []CoSenderSim{{
			Turnaround:       120,
			OscCFO:           channel.PPMToCFO(12, 5.8e9, cfg.SampleRateHz),
			ResidCFO:         channel.PPMToCFO(0.3, 5.8e9, cfg.SampleRateHz),
			Phase:            2.2,
			EstDelayFromLead: 2.4,
			TxOffset:         4.7 - 1.9,
			NoisePower:       3e-4,
			FFTBackoff:       3,
		}},
		NoiseRx: 3e-4, // ~both senders at ~35 dB individually
		Rng:     rng,
	}
	payload := make([]byte, 120)
	rng.Read(payload)

	okCount, joinCount := 0, 0
	var estErr []float64
	for trial := 0; trial < 8; trial++ {
		run, err := sim.Run(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !run.CoJoined[0] {
			continue
		}
		joinCount++
		rx := &JointReceiver{Cfg: cfg, FFTBackoff: 3}
		res, err := rx.Receive(run.RxWave, 0)
		if err != nil {
			continue
		}
		if res.OK && string(res.Payload) == string(payload) {
			okCount++
		}
		if res.ActiveCo[0] {
			estErr = append(estErr, math.Abs(res.MisalignEst[0]-run.TrueMisalign[0]))
		}
	}
	if joinCount < 7 {
		t.Fatalf("co-sender joined only %d/8", joinCount)
	}
	if okCount < 7 {
		t.Fatalf("decoded only %d/%d joint frames", okCount, joinCount)
	}
	for _, e := range estErr {
		if e > 2.0 {
			t.Fatalf("misalignment estimate error %.2f samples", e)
		}
	}
}

func TestJointReceiverSurvivesMissingCoSender(t *testing.T) {
	// The lead->co link is dead, so the co-sender never joins; the receiver
	// must notice the empty CE slot and decode lead-only.
	rng := rand.New(rand.NewSource(5))
	sim := idealSim(t, rng, 1e-5)
	sim.LeadToCo[0].Gain = 1e-6 // header unreceivable
	payload := make([]byte, 120)
	rng.Read(payload)
	run, err := sim.Run(payload)
	if err != nil {
		t.Fatal(err)
	}
	if run.CoJoined[0] {
		t.Fatal("co-sender should not have joined")
	}
	rx := &JointReceiver{Cfg: sim.P.Cfg, FFTBackoff: 3}
	res, err := rx.Receive(run.RxWave, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveCo[0] {
		t.Fatal("receiver hallucinated an active co-sender")
	}
	if !res.OK || string(res.Payload) != string(payload) {
		t.Fatal("lead-only decode failed")
	}
}

func TestJointThreeSendersQuasiOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := modem.Profile80211()
	rate, _ := modem.RateByMbps(6)
	p := JointFrameParams{
		Cfg: cfg, Rate: rate, DataCP: cfg.CPLen,
		PayloadLen: 60, Seed: 0x31, NumCo: 2, LeadID: 1, PacketID: 5,
	}
	sim := &JointSimConfig{
		P:        p,
		LeadToCo: []Link{{Gain: 1, Delay: 2}, {Gain: 1, Delay: 3}},
		LeadToRx: Link{Gain: 1, Delay: 4},
		CoToRx:   []Link{{Gain: 1, Delay: 2}, {Gain: 1, Delay: 6}},
		Co: []CoSenderSim{
			{Turnaround: 120, EstDelayFromLead: 2, TxOffset: 4 - 2, NoisePower: 1e-6, FFTBackoff: 3},
			{Turnaround: 120, EstDelayFromLead: 3, TxOffset: 4 - 6, NoisePower: 1e-6, FFTBackoff: 3},
		},
		NoiseRx: 1e-5,
		Rng:     rng,
	}
	payload := make([]byte, 60)
	rng.Read(payload)
	run, err := sim.Run(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !run.CoJoined[0] || !run.CoJoined[1] {
		t.Fatal("not all co-senders joined")
	}
	rx := &JointReceiver{Cfg: cfg, FFTBackoff: 3}
	res, err := rx.Receive(run.RxWave, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || string(res.Payload) != string(payload) {
		t.Fatal("3-sender decode failed")
	}
	if !res.ActiveCo[0] || !res.ActiveCo[1] {
		t.Fatalf("active flags %v", res.ActiveCo)
	}
}

func TestCompositeSNRShowsPowerGain(t *testing.T) {
	// With two equal-power senders the composite SNR should be ~3 dB above
	// a single sender's (paper Fig. 15).
	rng := rand.New(rand.NewSource(7))
	sim := idealSim(t, rng, 1e-3)
	payload := make([]byte, 120)
	rng.Read(payload)
	run, err := sim.Run(payload)
	if err != nil {
		t.Fatal(err)
	}
	rx := &JointReceiver{Cfg: sim.P.Cfg, FFTBackoff: 3}
	res, err := rx.Receive(run.RxWave, 0)
	if err != nil {
		t.Fatal(err)
	}
	lead := res.SenderSNR(0)
	comp := res.CompositeSNR()
	var leadAvg, compAvg float64
	for _, k := range slices.Sorted(maps.Keys(lead)) {
		leadAvg += lead[k]
		compAvg += comp[k]
	}
	gainDB := 10 * math.Log10(compAvg/leadAvg)
	if gainDB < 2 || gainDB > 4 {
		t.Fatalf("composite power gain %.2f dB, want ~3", gainDB)
	}
}

func TestNaiveCombiningWorseThanSTBC(t *testing.T) {
	// With slowly rotating relative phases, naive identical transmission
	// hits destructive combining on some frames; STBC never does. Compare
	// worst-case EVM across random relative phases.
	rng := rand.New(rand.NewSource(8))
	payload := make([]byte, 120)
	rng.Read(payload)
	worst := func(mode Combining) float64 {
		worstEVM := 0.0
		for trial := 0; trial < 10; trial++ {
			sim := idealSim(t, rand.New(rand.NewSource(int64(100+trial))), 1e-5)
			sim.P.Combining = mode
			sim.Co[0].Phase = float64(trial) * 2 * math.Pi / 10
			run, err := sim.Run(payload)
			if err != nil {
				t.Fatal(err)
			}
			rx := &JointReceiver{Cfg: sim.P.Cfg, FFTBackoff: 3}
			res, err := rx.Receive(run.RxWave, 0)
			if err != nil {
				// Destructive combining can kill even detection/header.
				return math.Inf(1)
			}
			if res.EVM > worstEVM {
				worstEVM = res.EVM
			}
		}
		return worstEVM
	}
	stbcWorst := worst(CombineSTBC)
	naiveWorst := worst(CombineNaive)
	if !(naiveWorst > 4*stbcWorst) {
		t.Fatalf("naive worst EVM %.4f not clearly worse than STBC %.4f", naiveWorst, stbcWorst)
	}
}
