package phy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/modem"
)

// calibSim builds a WiGLAN-profile calibration scenario at the given SNR.
func calibSim(rng *rand.Rand, snrDB float64, baseline bool) *JointSimConfig {
	cfg := modem.ProfileWiGLAN()
	p := JointFrameParams{
		Cfg: cfg, Rate: modem.Rate{Mod: modem.QPSK, Code: modem.Rate12},
		DataCP: cfg.CPLen, PayloadLen: 40, Seed: 0x5d, NumCo: 1,
		LeadID: 1, PacketID: 7,
	}
	mk := func() *channel.Multipath { return channel.NewIndoor(rng, cfg.SampleRateHz, 30, 6) }
	// Per-sample signal power of an OFDM symbol in this profile.
	sigPower := dsp.MeanPower(ceSymbolWave(cfg, cfg.CPLen))
	noise := channel.NoisePowerForSNR(sigPower, snrDB)
	return &JointSimConfig{
		P:        p,
		LeadToCo: []Link{{Gain: 1, Delay: 4.2, Path: mk()}},
		LeadToRx: Link{Gain: 1, Delay: 8.5, Path: mk()},
		CoToRx:   []Link{{Gain: 1, Delay: 3.1, Path: mk()}},
		Co: []CoSenderSim{{
			Turnaround:       800,
			EstDelayFromLead: 4.2,
			TxOffset:         8.5 - 3.1,
			NoisePower:       noise,
			FFTBackoff:       3,
			BaselineSync:     baseline,
			DetectJitter:     38, // ~300 ns at 128 MHz, per Williams et al.
		}},
		NoiseRx: noise,
		Rng:     rng,
	}
}

func TestCalibrationFrameGroundTruth(t *testing.T) {
	// The calibration series' mean must agree with the single-shot estimate
	// to within the single-shot noise, and the series must have low spread
	// at high SNR.
	rng := rand.New(rand.NewSource(1))
	sim := calibSim(rng, 25, false)
	run, err := sim.RunCalibration(60)
	if err != nil {
		t.Fatal(err)
	}
	if !run.CoJoined[0] {
		t.Fatal("co-sender did not join")
	}
	rx := &JointReceiver{Cfg: sim.P.Cfg, FFTBackoff: 3}
	res, err := rx.ReceiveCalibration(sim.P, run.RxWave, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 60 {
		t.Fatalf("series length %d", len(res.Series))
	}
	if spread := dsp.StdDev(res.Series); spread > 1.0 {
		t.Fatalf("series spread %.3f samples at 25 dB", spread)
	}
	if math.Abs(res.SingleShot-res.GroundTruth) > 1.0 {
		t.Fatalf("single shot %.3f vs truth %.3f", res.SingleShot, res.GroundTruth)
	}
	// The ground truth should itself be close to the simulator's exact
	// misalignment (within the multipath-centroid ambiguity).
	if math.Abs(res.GroundTruth-run.TrueMisalign[0]) > 2.0 {
		t.Fatalf("truth %.3f vs sim %.3f", res.GroundTruth, run.TrueMisalign[0])
	}
	if res.MeasuredSNRdB < 15 || res.MeasuredSNRdB > 35 {
		t.Fatalf("measured SNR %.1f dB, expected ~25", res.MeasuredSNRdB)
	}
}

func TestSyncErrorSmallWithSourceSync(t *testing.T) {
	// SourceSync's single-shot estimation error (vs the repetition ground
	// truth) should be within a few samples at moderate SNR — the paper's
	// Fig. 12 claim (20 ns = 2.6 samples at 128 MHz).
	var errs []float64
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(10 + trial)))
		sim := calibSim(rng, 18, false)
		run, err := sim.RunCalibration(40)
		if err != nil {
			t.Fatal(err)
		}
		if !run.CoJoined[0] {
			continue
		}
		rx := &JointReceiver{Cfg: sim.P.Cfg, FFTBackoff: 3}
		res, err := rx.ReceiveCalibration(sim.P, run.RxWave, 0, 40)
		if err != nil {
			continue
		}
		errs = append(errs, math.Abs(res.SingleShot-res.GroundTruth))
	}
	if len(errs) < 4 {
		t.Fatalf("only %d usable trials", len(errs))
	}
	for _, e := range errs {
		if e > 3 {
			t.Fatalf("sync estimation error %.2f samples (%.0f ns)", e, e/128e6*1e9)
		}
	}
}

func TestBaselineMisalignmentLargerThanSourceSync(t *testing.T) {
	// The Fig. 13 premise: without compensation, the co-sender's arrival
	// misalignment is dominated by detection jitter + uncompensated delays,
	// far larger than SourceSync's.
	absMis := func(baseline bool, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		sim := calibSim(rng, 22, baseline)
		run, err := sim.RunCalibration(10)
		if err != nil || !run.CoJoined[0] {
			t.Fatalf("run failed: %v", err)
		}
		return math.Abs(run.TrueMisalign[0])
	}
	var ssMax, blMax, blSum float64
	const n = 6
	for s := int64(0); s < n; s++ {
		if v := absMis(false, 100+s); v > ssMax {
			ssMax = v
		}
		v := absMis(true, 200+s)
		blSum += v
		if v > blMax {
			blMax = v
		}
	}
	if ssMax > 3 {
		t.Fatalf("SourceSync worst misalignment %.2f samples", ssMax)
	}
	// The baseline's jitter is uniform, so individual frames can be lucky;
	// its worst case (which dictates the CP budget) must be far larger.
	if blMax < 10 {
		t.Fatalf("baseline worst misalignment %.2f samples — should be large", blMax)
	}
	if blSum/n < 2*ssMax {
		t.Fatalf("baseline mean %.2f not clearly above SourceSync worst %.2f", blSum/n, ssMax)
	}
}
