package phy

import (
	"errors"
	"math"

	"repro/internal/dsp"
	"repro/internal/jce"
	"repro/internal/modem"
	"repro/internal/sls"
	"repro/internal/stbc"
)

// JointRxResult reports everything a SourceSync receiver learns from one
// joint frame.
type JointRxResult struct {
	Payload []byte
	OK      bool // CRC passed
	Header  SyncHeader

	Detect   modem.DetectResult
	ActiveCo []bool // which co-sender slots carried energy

	// MisalignEst[i] is the measured symbol misalignment of co-sender i
	// relative to the lead, in samples (the quantity fed back in ACKs,
	// paper §4.5).
	MisalignEst []float64

	// NoiseBinPower is the per-FFT-bin noise power estimated from the SIFS
	// silence gap.
	NoiseBinPower float64
	// SenderBinPower[j][k] is |H_j|^2 on signed subcarrier k for sender j
	// (0 = lead).
	SenderBinPower []map[int]float64
	// EVM is the mean squared error vector magnitude over equalized data
	// constellation points; 1/EVM is an effective post-combining SNR.
	EVM float64
}

// CompositeSNR returns the per-subcarrier SNR (linear) the joint
// transmission delivers: sum of sender channel powers over noise.
func (r *JointRxResult) CompositeSNR() map[int]float64 {
	out := map[int]float64{}
	for _, sp := range r.SenderBinPower {
		for k, v := range sp {
			out[k] += v
		}
	}
	for k := range out {
		out[k] /= r.NoiseBinPower
	}
	return out
}

// SenderSNR returns sender j's per-subcarrier SNR (linear).
func (r *JointRxResult) SenderSNR(j int) map[int]float64 {
	out := map[int]float64{}
	for k, v := range r.SenderBinPower[j] {
		out[k] = v / r.NoiseBinPower
	}
	return out
}

// JointReceiver decodes SourceSync joint frames.
type JointReceiver struct {
	Cfg        *modem.Config
	Det        modem.DetectorOptions
	FFTBackoff int // samples of deliberate early FFT-window placement
	// CEActivityFactor is the energy ratio over the noise floor above which
	// a CE slot counts as an active co-sender (default 3).
	CEActivityFactor float64
	// NaivePhaseTracking disables per-sender pilot sharing (ablation of
	// paper §5): a single common phase trajectory, fed by every symbol's
	// pilots regardless of owner, is applied to all senders' channels.
	// With distinct residual CFOs this mixes the senders' rotations and
	// degrades decoding — the failure the shared-pilot design prevents.
	NaivePhaseTracking bool
}

// ErrHeaderFailed is returned when the sync header cannot be decoded.
var ErrHeaderFailed = errors.New("phy: sync header decode failed")

// Receive decodes one joint frame from stream x starting the search at
// index from. The receiver learns everything (rate, CP, payload length,
// number of co-senders) from the sync header; params are not needed.
func (r *JointReceiver) Receive(x []complex128, from int) (*JointRxResult, error) {
	cfg := r.Cfg
	if r.CEActivityFactor == 0 {
		r.CEActivityFactor = 3
	}
	det := modem.DetectPacket(cfg, x, from, r.Det)
	if !det.Detected {
		return nil, modem.ErrNoPacket
	}
	res := &JointRxResult{Detect: det}
	start := det.FineIdx
	if start < 0 {
		return nil, modem.ErrNoPacket
	}

	// Decode the sync header with the plain single-sender pipeline.
	hp := headerFrameParams(cfg)
	hdrSpan := hp.AirtimeSamples() + cfg.NFFT
	if start+hdrSpan > len(x) {
		return nil, modem.ErrNoPacket
	}
	buf := append([]complex128(nil), x[start:]...)
	// Correct the lead's residual CFO globally; co-sender residuals are
	// handled by per-sender pilot tracking.
	modem.CorrectCFO(buf, det.CoarseCFO, 0)
	residual := modem.EstimateCFO(cfg, buf, 0)
	modem.CorrectCFO(buf, residual, 0)

	hdrBytes, hdrOK := r.decodeHeaderSymbols(hp, buf)
	if !hdrOK {
		return res, ErrHeaderFailed
	}
	hdr, err := ParseSyncHeader(hdrBytes)
	if err != nil {
		return res, ErrHeaderFailed
	}
	res.Header = hdr

	p := JointFrameParams{
		Cfg:        cfg,
		Rate:       modem.StandardRates()[hdr.RateIdx],
		DataCP:     int(hdr.DataCP),
		PayloadLen: int(hdr.PayloadLen),
		Seed:       hdr.Seed,
		NumCo:      int(hdr.NumCo),
	}
	if p.TotalLen()+cfg.NFFT > len(buf) {
		return res, errors.New("phy: stream truncated mid frame")
	}

	// Noise floor from the SIFS silence gap (leave guard samples on both
	// sides for channel tails and early co-senders).
	res.NoiseBinPower = r.noiseFromGap(p, buf)

	// Lead channel from the header preamble's LTS.
	lts1 := cfg.LTSOffset() - r.FFTBackoff
	hLead := cfg.EstimateChannelLTS(buf[lts1:lts1+cfg.NFFT], buf[lts1+cfg.NFFT:lts1+2*cfg.NFFT])

	est := jce.NewEstimator(cfg, p.Senders())
	est.SetChannel(0, hLead)

	// Co-sender channels from their CE slots, with activity detection.
	res.ActiveCo = make([]bool, p.NumCo)
	res.MisalignEst = make([]float64, p.NumCo)
	ceLen := p.ceSymbolLen()
	for i := 0; i < p.NumCo; i++ {
		slot := p.CESlot(i)
		slotPower := dsp.MeanPower(buf[slot : slot+2*ceLen])
		// Convert the per-bin noise estimate back to per-sample power.
		noiseSample := res.NoiseBinPower / float64(cfg.NFFT)
		if slotPower < r.CEActivityFactor*noiseSample {
			est.MarkAbsent(i + 1)
			continue
		}
		res.ActiveCo[i] = true
		w1 := slot + p.DataCP - r.FFTBackoff
		w2 := slot + ceLen + p.DataCP - r.FFTBackoff
		est.EstimateFromCE(i+1, buf[w1:w1+cfg.NFFT], buf[w2:w2+cfg.NFFT])
		res.MisalignEst[i] = sls.Misalignment(cfg, hLead, est.Channel(i+1))
	}

	// Collect per-sender channel powers for the SNR diagnostics.
	res.SenderBinPower = make([]map[int]float64, p.Senders())
	for j := 0; j < p.Senders(); j++ {
		m := map[int]float64{}
		if h := est.Channel(j); h != nil {
			for _, k := range cfg.UsedBins() {
				v := h[cfg.Bin(k)]
				m[k] = real(v)*real(v) + imag(v)*imag(v)
			}
		}
		res.SenderBinPower[j] = m
	}

	// Data symbols: FFT, pilot tracking, space-time decoding.
	payload, ok, evm := r.decodeData(p, buf, est)
	res.Payload = payload
	res.OK = ok
	res.EVM = evm
	return res, nil
}

// decodeHeaderSymbols runs the single-sender pipeline over the header's data
// symbols of an already CFO-corrected, preamble-aligned buffer.
func (r *JointReceiver) decodeHeaderSymbols(hp modem.FrameParams, buf []complex128) ([]byte, bool) {
	cfg := r.Cfg
	lts1 := cfg.LTSOffset() - r.FFTBackoff
	if lts1 < 0 {
		return nil, false
	}
	h := cfg.EstimateChannelLTS(buf[lts1:lts1+cfg.NFFT], buf[lts1+cfg.NFFT:lts1+2*cfg.NFFT])
	nsym := hp.NumDataSymbols()
	symLen := hp.CP + cfg.NFFT
	syms := make([][]complex128, 0, nsym)
	for s := 0; s < nsym; s++ {
		w := cfg.PreambleLen() + s*symLen + hp.CP - r.FFTBackoff
		bins := cfg.SymbolBins(buf[w:])
		phase, _ := cfg.PilotPhase(bins, h, s)
		syms = append(syms, cfg.EqualizeData(bins, h, phase))
	}
	return hp.DecodeSymbolsToPayload(syms)
}

// noiseFromGap estimates per-FFT-bin noise power from the SIFS silence.
func (r *JointReceiver) noiseFromGap(p JointFrameParams, buf []complex128) float64 {
	cfg := p.Cfg
	gapStart := p.HeaderEnd() + cfg.CPLen // skip channel tail
	gapEnd := p.GlobalRef() - 8           // guard against early co-senders
	if gapEnd-gapStart < cfg.NFFT {
		gapStart = p.HeaderEnd()
		gapEnd = p.GlobalRef()
	}
	win := buf[gapStart : gapStart+cfg.NFFT]
	bins := dsp.FFT(win)
	var acc float64
	used := cfg.UsedBins()
	for _, k := range used {
		v := bins[cfg.Bin(k)]
		acc += real(v)*real(v) + imag(v)*imag(v)
	}
	_ = gapEnd
	return acc / float64(len(used))
}

// decodeData demodulates the space-time-coded data symbols.
func (r *JointReceiver) decodeData(p JointFrameParams, buf []complex128, est *jce.Estimator) (payload []byte, ok bool, evm float64) {
	cfg := p.Cfg
	nsym := p.NumDataSymbols()
	symLen := p.DataCP + cfg.NFFT
	nd := cfg.NumData()

	// First pass: FFT all data symbols and feed the pilot trackers.
	allBins := make([][]complex128, nsym)
	var naive *jce.PhaseTracker
	if r.NaivePhaseTracking {
		naive = jce.NewPhaseTracker()
	}
	for s := 0; s < nsym; s++ {
		w := p.DataStart() + s*symLen + p.DataCP - r.FFTBackoff
		allBins[s] = cfg.SymbolBins(buf[w:])
		if naive != nil {
			owner := est.PilotOwner(s)
			if h := est.Channel(owner); h != nil {
				if ph, ok := jce.MeasurePilotPhase(cfg, h, s, allBins[s]); ok {
					naive.Update(s, ph)
				}
			}
			continue
		}
		est.UpdatePilots(s, allBins[s])
	}

	var code stbc.Code
	if p.Combining == CombineSTBC {
		code, _ = stbc.ForSenders(p.Senders())
	}

	// rotAt returns the common rotation the naive (ablation) tracker would
	// apply at a symbol; 1 when per-sender tracking is active.
	rotAt := func(sym int) complex128 {
		if naive == nil {
			return 1
		}
		theta := naive.At(sym)
		return complex(cosSin(theta))
	}

	eq := make([][]complex128, nsym)
	for s := range eq {
		eq[s] = make([]complex128, nd)
	}
	if code == nil {
		// Naive combining: equalize against the composite channel.
		for s := 0; s < nsym; s++ {
			rot := rotAt(s)
			for j, k := range cfg.DataBins() {
				b := cfg.Bin(k)
				h := est.Composite(s, b) * rot
				if h == 0 {
					continue
				}
				eq[s][j] = allBins[s][b] / h
			}
		}
	} else {
		bl := code.BlockLen()
		y := make([]complex128, bl)
		var hbuf []complex128
		for b0 := 0; b0+bl <= nsym; b0 += bl {
			mid := b0 + bl/2
			rot := rotAt(mid)
			for j, k := range cfg.DataBins() {
				b := cfg.Bin(k)
				for t := 0; t < bl; t++ {
					y[t] = allBins[b0+t][b]
				}
				hbuf = est.SenderChannels(hbuf, mid, b)
				if rot != 1 {
					for i := range hbuf {
						hbuf[i] *= rot
					}
				}
				dec := code.Decode(y, hbuf)
				for t := 0; t < bl; t++ {
					eq[b0+t][j] = dec[t]
				}
			}
		}
	}

	// EVM against nearest constellation points.
	var evmAcc float64
	var evmN int
	for s := range eq {
		for _, v := range eq[s] {
			bits := p.Rate.Mod.Demap(v, nil)
			ideal := p.Rate.Mod.Map(bits)
			d := v - ideal
			evmAcc += real(d)*real(d) + imag(d)*imag(d)
			evmN++
		}
	}
	if evmN > 0 {
		evmAcc /= float64(evmN)
	}

	payload, ok = p.dataParams().DecodeSymbolsToPayload(eq)
	return payload, ok, evmAcc
}

// cosSin returns (cos t, sin t) for building a unit rotation.
func cosSin(t float64) (float64, float64) {
	return math.Cos(t), math.Sin(t)
}
