package phy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/modem"
	"repro/internal/sls"
)

// TestDelayTrackingUnderMobility exercises §4.5's headline scenario: the
// co-sender's propagation delay to the receiver drifts as the node moves.
// No re-probing happens; only the per-frame ACK misalignment feedback
// adjusts the wait offset. The true misalignment must stay bounded by the
// CP budget throughout the walk.
func TestDelayTrackingUnderMobility(t *testing.T) {
	cfg := modem.Profile80211()
	rng := rand.New(rand.NewSource(1))
	rate, _ := modem.RateByMbps(12)
	p := JointFrameParams{
		Cfg: cfg, Rate: rate, DataCP: cfg.CPLen,
		PayloadLen: 80, Seed: 0x5d, NumCo: 1, LeadID: 1, PacketID: 3,
	}
	mk := func() *channel.Multipath { return channel.NewIndoor(rng, cfg.SampleRateHz, 40, 6) }
	sim := &JointSimConfig{
		P:        p,
		LeadToCo: []Link{{Gain: 1, Delay: 3, Path: mk()}},
		LeadToRx: Link{Gain: 1, Delay: 5, Path: mk()},
		CoToRx:   []Link{{Gain: 1, Delay: 2, Path: mk()}},
		Co: []CoSenderSim{{
			Turnaround:       120,
			EstDelayFromLead: 3,
			TxOffset:         3, // correct at frame 0
			NoisePower:       1e-4,
			FFTBackoff:       3,
		}},
		NoiseRx: 1e-4,
		Rng:     rng,
	}
	payload := make([]byte, p.PayloadLen)
	rng.Read(payload)
	rx := &JointReceiver{Cfg: cfg, FFTBackoff: 3}

	// Walk: the co-sender recedes from the receiver at ~0.7 samples/frame
	// (at 20 Msps and one frame per ~10 ms that is implausibly fast motion;
	// it stress-tests the loop), with fresh fading every frame.
	worstAfterWarmup := 0.0
	for frame := 0; frame < 14; frame++ {
		sim.CoToRx[0].Delay = 2 + 0.7*float64(frame)
		sim.CoToRx[0].Path = mk()
		run, err := sim.Run(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !run.CoJoined[0] {
			t.Fatalf("frame %d: co-sender missing", frame)
		}
		res, err := rx.Receive(run.RxWave, 0)
		if err != nil || !res.ActiveCo[0] {
			t.Fatalf("frame %d: receive failed: %v", frame, err)
		}
		if frame >= 4 {
			if m := math.Abs(run.TrueMisalign[0]); m > worstAfterWarmup {
				worstAfterWarmup = m
			}
			if !res.OK {
				t.Fatalf("frame %d: decode failed mid-walk", frame)
			}
		}
		sim.Co[0].TxOffset = sls.TrackWait(sim.Co[0].TxOffset, res.MisalignEst[0], 0.6)
	}
	// Per-frame drift is 0.7 samples; the damped loop should keep the
	// misalignment within a few samples — well inside the CP.
	if worstAfterWarmup > 4 {
		t.Fatalf("tracking lost under mobility: worst misalignment %.2f samples", worstAfterWarmup)
	}
}
