package phy

import (
	"maps"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/modem"
)

func TestJointReceiverRejectsCorruptHeader(t *testing.T) {
	// Heavy noise injected over just the header symbols makes the header
	// CRC fail; the receiver must report ErrHeaderFailed, not decode junk.
	rng := rand.New(rand.NewSource(1))
	sim := idealSim(t, rng, 1e-6)
	payload := make([]byte, 120)
	rng.Read(payload)
	run, err := sim.Run(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Smash the header region (after the preamble, before SIFS).
	hdrStart := sim.Margin + sim.P.Cfg.PreambleLen() + int(sim.LeadToRx.Delay)
	hdrEnd := sim.Margin + sim.P.HeaderEnd() + int(sim.LeadToRx.Delay)
	for i := hdrStart; i < hdrEnd; i++ {
		run.RxWave[i] += complex(rng.NormFloat64(), rng.NormFloat64())
	}
	rx := &JointReceiver{Cfg: sim.P.Cfg, FFTBackoff: 3}
	if _, err := rx.Receive(run.RxWave, 0); err != ErrHeaderFailed {
		t.Fatalf("err = %v, want ErrHeaderFailed", err)
	}
}

func TestJointReceiverTruncatedFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sim := idealSim(t, rng, 1e-6)
	payload := make([]byte, 120)
	rng.Read(payload)
	run, err := sim.Run(payload)
	if err != nil {
		t.Fatal(err)
	}
	cut := run.RxWave[:sim.Margin+sim.P.DataStart()]
	rx := &JointReceiver{Cfg: sim.P.Cfg, FFTBackoff: 3}
	if _, err := rx.Receive(cut, 0); err == nil {
		t.Fatal("truncated joint frame must error")
	}
}

func TestJointFourSenders(t *testing.T) {
	// Full quasi-orthogonal deployment: lead + 3 co-senders.
	rng := rand.New(rand.NewSource(3))
	cfg := modem.Profile80211()
	rate, _ := modem.RateByMbps(6)
	p := JointFrameParams{
		Cfg: cfg, Rate: rate, DataCP: cfg.CPLen,
		PayloadLen: 60, Seed: 0x22, NumCo: 3, LeadID: 9, PacketID: 4,
	}
	sim := &JointSimConfig{
		P:        p,
		LeadToCo: []Link{{Gain: 1, Delay: 2}, {Gain: 1, Delay: 3}, {Gain: 1, Delay: 4}},
		LeadToRx: Link{Gain: 1, Delay: 5},
		CoToRx:   []Link{{Gain: 1, Delay: 3}, {Gain: 1, Delay: 6}, {Gain: 1, Delay: 2}},
		Co: []CoSenderSim{
			{Turnaround: 120, EstDelayFromLead: 2, TxOffset: 5 - 3, NoisePower: 1e-6, FFTBackoff: 3},
			{Turnaround: 120, EstDelayFromLead: 3, TxOffset: 5 - 6, NoisePower: 1e-6, FFTBackoff: 3},
			{Turnaround: 120, EstDelayFromLead: 4, TxOffset: 5 - 2, NoisePower: 1e-6, FFTBackoff: 3},
		},
		NoiseRx: 1e-5,
		Rng:     rng,
	}
	payload := make([]byte, 60)
	rng.Read(payload)
	run, err := sim.Run(payload)
	if err != nil {
		t.Fatal(err)
	}
	rx := &JointReceiver{Cfg: cfg, FFTBackoff: 3}
	res, err := rx.Receive(run.RxWave, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || string(res.Payload) != string(payload) {
		t.Fatal("4-sender decode failed")
	}
	for i, a := range res.ActiveCo {
		if !a {
			t.Fatalf("co %d not active", i)
		}
	}
	// Composite power should approach 4x a single sender (~6 dB).
	lead := res.SenderSNR(0)
	comp := res.CompositeSNR()
	var l, c float64
	for _, k := range slices.Sorted(maps.Keys(lead)) {
		l += lead[k]
		c += comp[k]
	}
	if ratio := c / l; ratio < 2.5 || ratio > 6 {
		t.Fatalf("composite/lead power ratio %.2f, want ~4", ratio)
	}
}

func TestOverheadMonotonicInSenders(t *testing.T) {
	cfg := modem.Profile80211()
	rate, _ := modem.RateByMbps(12)
	prev := -1.0
	for co := 0; co <= 6; co++ {
		p := JointFrameParams{Cfg: cfg, Rate: rate, DataCP: cfg.CPLen, PayloadLen: 1460, Seed: 1, NumCo: co}
		f := p.OverheadFraction()
		if f <= prev {
			t.Fatalf("overhead not increasing at %d co-senders", co)
		}
		prev = f
	}
}

func TestSimRejectsMismatchedCoSenderCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sim := idealSim(t, rng, 1e-6)
	sim.P.NumCo = 2 // declared two, wired one
	if _, err := sim.Run(make([]byte, 120)); err == nil {
		t.Fatal("mismatched co-sender count must error")
	}
}

func TestSlotMissAbstainsAndLeadStillDecodes(t *testing.T) {
	// A co-sender whose turnaround exceeds the sync gap cannot make its TX
	// slot. Per §4.3 it abstains — the run must not abort, the miss is
	// counted, and the receiver still decodes the lead-only frame.
	rng := rand.New(rand.NewSource(5))
	payload := make([]byte, 120)
	rng.Read(payload)

	// Shrink the headroom: grow Turnaround until the slot is missed.
	var missRun *SimRun
	for turnaround := 120.0; turnaround <= 10*200*4; turnaround *= 2 {
		rng := rand.New(rand.NewSource(5))
		sim := idealSim(t, rng, 1e-6)
		sim.Co[0].Turnaround = turnaround
		run, err := sim.Run(payload)
		if err != nil {
			t.Fatalf("turnaround %.0f: %v", turnaround, err)
		}
		if run.SlotMisses > 0 {
			missRun = run
			break
		}
	}
	if missRun == nil {
		t.Fatal("never provoked a slot miss")
	}
	if missRun.CoJoined[0] {
		t.Fatal("a co-sender that missed its slot must not count as joined")
	}
	if missRun.SlotMisses != 1 {
		t.Fatalf("SlotMisses = %d, want 1", missRun.SlotMisses)
	}
	rx := &JointReceiver{Cfg: modem.Profile80211(), FFTBackoff: 3}
	res, err := rx.Receive(missRun.RxWave, 0)
	if err != nil {
		t.Fatalf("lead-only frame must stay decodable: %v", err)
	}
	if !res.OK || string(res.Payload) != string(payload) {
		t.Fatal("lead-only decode failed")
	}
}

func TestCalibrationSlotMissYieldsLeadOnlyFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sim := idealSim(t, rng, 1e-6)
	sim.Co[0].Turnaround = 10 * 200 * 4 // far beyond the sync gap
	run, err := sim.RunCalibration(10)
	if err != nil {
		t.Fatalf("calibration slot miss must not abort: %v", err)
	}
	if run.CoJoined[0] || run.SlotMisses != 1 {
		t.Fatalf("joined=%v misses=%d, want abstain", run.CoJoined[0], run.SlotMisses)
	}
	if len(run.RxWave) == 0 {
		t.Fatal("lead-only calibration frame missing")
	}
}
