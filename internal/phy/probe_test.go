package phy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/modem"
	"repro/internal/sls"
)

func TestProbeExchangeFlatChannel(t *testing.T) {
	cfg := modem.Profile80211()
	rng := rand.New(rand.NewSource(1))
	for _, d := range []float64{0.8, 2.5, 6.0} {
		sim := &ProbeSimConfig{
			Cfg:                 cfg,
			Forward:             Link{Gain: 1, Delay: d},
			Reverse:             Link{Gain: 1, Delay: d},
			ResponderTurnaround: 150,
			ResponderWait:       60,
			NoiseProber:         1e-5,
			NoiseResponder:      1e-5,
			Rng:                 rng,
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("d=%g: %v", d, err)
		}
		if math.Abs(res.EstimatedOneWay-d) > 0.3 {
			t.Fatalf("d=%g: estimated %.3f", d, res.EstimatedOneWay)
		}
	}
}

func TestProbeExchangeMultipathAndCFO(t *testing.T) {
	cfg := modem.Profile80211()
	rng := rand.New(rand.NewSource(2))
	var errs []float64
	for trial := 0; trial < 12; trial++ {
		d := 1 + rng.Float64()*6
		sim := &ProbeSimConfig{
			Cfg:                 cfg,
			Forward:             Link{Gain: 1, Delay: d, Path: channel.NewIndoor(rng, cfg.SampleRateHz, 40, 6)},
			Reverse:             Link{Gain: 1, Delay: d, Path: channel.NewIndoor(rng, cfg.SampleRateHz, 40, 6)},
			ResponderTurnaround: 150,
			ResponderWait:       60,
			ProberCFO:           channel.PPMToCFO(8, 5.8e9, cfg.SampleRateHz),
			ResponderCFO:        channel.PPMToCFO(-5, 5.8e9, cfg.SampleRateHz),
			NoiseProber:         3e-4,
			NoiseResponder:      3e-4,
			Rng:                 rng,
		}
		res, err := sim.Run()
		if err != nil {
			continue
		}
		errs = append(errs, math.Abs(res.EstimatedOneWay-res.TrueOneWay))
	}
	if len(errs) < 9 {
		t.Fatalf("only %d/12 exchanges completed", len(errs))
	}
	// Multipath centroids bias the estimate by up to a sample or two; that
	// bias is physical (and partially cancels in the wait-time algebra).
	for _, e := range errs {
		if e > 2.5 {
			t.Fatalf("one-way estimate error %.2f samples", e)
		}
	}
}

func TestProbeFailsOnDeadLink(t *testing.T) {
	cfg := modem.Profile80211()
	rng := rand.New(rand.NewSource(3))
	sim := &ProbeSimConfig{
		Cfg:                 cfg,
		Forward:             Link{Gain: 1e-6, Delay: 2},
		Reverse:             Link{Gain: 1, Delay: 2},
		ResponderTurnaround: 150,
		NoiseProber:         1e-3,
		NoiseResponder:      1e-3,
		Rng:                 rng,
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("probe over a dead link should fail")
	}
}

// TestClosedLoopTracking drives §4.5 end to end on waveforms: the co-sender
// starts with a wrong wait offset; after each joint frame the receiver's
// misalignment estimate is fed back (the ACK) and the co-sender updates its
// offset via sls.TrackWait. The true misalignment must converge to within a
// couple samples.
func TestClosedLoopTracking(t *testing.T) {
	cfg := modem.Profile80211()
	rng := rand.New(rand.NewSource(4))
	rate, _ := modem.RateByMbps(12)
	p := JointFrameParams{
		Cfg: cfg, Rate: rate, DataCP: cfg.CPLen + 8, // slack so early frames still decode
		PayloadLen: 80, Seed: 0x5d, NumCo: 1, LeadID: 1, PacketID: 77,
	}
	mk := func() *channel.Multipath { return channel.NewIndoor(rng, cfg.SampleRateHz, 40, 6) }
	sim := &JointSimConfig{
		P:        p,
		LeadToCo: []Link{{Gain: 1, Delay: 3, Path: mk()}},
		LeadToRx: Link{Gain: 1, Delay: 5, Path: mk()},
		CoToRx:   []Link{{Gain: 1, Delay: 2, Path: mk()}},
		Co: []CoSenderSim{{
			Turnaround:       120,
			EstDelayFromLead: 3,
			TxOffset:         9, // wrong: should be 5-2=3 -> starts 6 samples late
			NoisePower:       1e-4,
			FFTBackoff:       3,
		}},
		NoiseRx: 1e-4,
		Rng:     rng,
	}
	payload := make([]byte, p.PayloadLen)
	rng.Read(payload)
	rx := &JointReceiver{Cfg: cfg, FFTBackoff: 3}

	var lastTrue float64
	for frame := 0; frame < 10; frame++ {
		run, err := sim.Run(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !run.CoJoined[0] {
			t.Fatalf("frame %d: co-sender missing", frame)
		}
		lastTrue = run.TrueMisalign[0]
		res, err := rx.Receive(run.RxWave, 0)
		if err != nil || !res.ActiveCo[0] {
			t.Fatalf("frame %d: receive failed (%v)", frame, err)
		}
		// ACK feedback: the co-sender damps toward zero misalignment.
		sim.Co[0].TxOffset = sls.TrackWait(sim.Co[0].TxOffset, res.MisalignEst[0], 0.5)
	}
	if math.Abs(lastTrue) > 2 {
		t.Fatalf("closed loop did not converge: residual %.2f samples", lastTrue)
	}
}
