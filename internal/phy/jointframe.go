package phy

import (
	"fmt"

	"repro/internal/modem"
	"repro/internal/sls"
	"repro/internal/stbc"
)

// Combining selects how concurrent senders code their data symbols.
type Combining int

// Combining modes.
const (
	// CombineSTBC uses the Smart Combiner's space-time block codes
	// (Alamouti / quasi-orthogonal), the SourceSync design.
	CombineSTBC Combining = iota
	// CombineNaive has every sender transmit identical symbols; signals can
	// combine destructively. Used as an ablation baseline (paper §6's
	// motivating failure case).
	CombineNaive
)

// JointFrameParams describes one joint transmission.
type JointFrameParams struct {
	Cfg        *modem.Config
	Rate       modem.Rate
	DataCP     int // cyclic prefix for data symbols (>= Cfg.CPLen typically)
	PayloadLen int
	Seed       byte
	NumCo      int // number of co-sender slots (total senders = NumCo + 1)
	Combining  Combining
	LeadID     uint16
	PacketID   uint16
}

// Senders returns the total number of concurrent senders.
func (p JointFrameParams) Senders() int { return p.NumCo + 1 }

// code returns the space-time code for this frame.
func (p JointFrameParams) code() stbc.Code {
	if p.Combining == CombineNaive {
		return nil
	}
	c, err := stbc.ForSenders(p.Senders())
	if err != nil {
		panic(err)
	}
	return c
}

// dataParams returns the modem parameters for the data portion.
func (p JointFrameParams) dataParams() modem.FrameParams {
	mult := 1
	if c := p.code(); c != nil {
		mult = c.BlockLen()
	}
	return modem.FrameParams{
		Cfg:            p.Cfg,
		Rate:           p.Rate,
		CP:             p.DataCP,
		PayloadLen:     p.PayloadLen,
		ScramblerSeed:  p.Seed,
		SymbolMultiple: mult,
	}
}

// Header returns the sync header advertising this frame.
func (p JointFrameParams) Header() SyncHeader {
	rateIdx := -1
	for i, r := range modem.StandardRates() {
		if r == p.Rate {
			rateIdx = i
		}
	}
	if rateIdx < 0 {
		panic(fmt.Sprintf("phy: rate %v is not a standard rate", p.Rate))
	}
	return SyncHeader{
		LeadID:     p.LeadID,
		Joint:      p.NumCo > 0,
		PacketID:   p.PacketID,
		RateIdx:    uint8(rateIdx),
		DataCP:     uint8(p.DataCP),
		NumCo:      uint8(p.NumCo),
		PayloadLen: uint16(p.PayloadLen),
		Seed:       p.Seed,
	}
}

// Frame layout offsets, all in samples from the start of the lead preamble.

// HeaderEnd returns the offset where the sync header (preamble + header
// symbols) ends.
func (p JointFrameParams) HeaderEnd() int {
	hp := headerFrameParams(p.Cfg)
	return hp.AirtimeSamples()
}

// GlobalRef returns the offset of the global time reference: SIFS after the
// header (paper §4.3).
func (p JointFrameParams) GlobalRef() int {
	return p.HeaderEnd() + int(sls.SIFSSamples(p.Cfg))
}

// ceSymbolLen returns the length of one channel-estimation symbol. CE
// symbols share the data symbols' cyclic prefix so a CP increase protects
// the channel estimates from the same residual misalignment it protects the
// data from.
func (p JointFrameParams) ceSymbolLen() int { return p.DataCP + p.Cfg.NFFT }

// CESlot returns the offset of co-sender i's first channel-estimation
// symbol (two symbols per slot).
func (p JointFrameParams) CESlot(i int) int {
	return p.GlobalRef() + i*2*p.ceSymbolLen()
}

// DataStart returns the offset of the first data symbol.
func (p JointFrameParams) DataStart() int {
	return p.GlobalRef() + p.NumCo*2*p.ceSymbolLen()
}

// NumDataSymbols returns the number of data OFDM symbols.
func (p JointFrameParams) NumDataSymbols() int { return p.dataParams().NumDataSymbols() }

// TotalLen returns the total frame length in samples.
func (p JointFrameParams) TotalLen() int {
	return p.DataStart() + p.NumDataSymbols()*(p.DataCP+p.Cfg.NFFT)
}

// AirtimeSeconds returns the total frame duration.
func (p JointFrameParams) AirtimeSeconds() float64 {
	return float64(p.TotalLen()) / p.Cfg.SampleRateHz
}

// OverheadFraction returns the fraction of the joint frame's airtime spent
// on synchronization: the SIFS switching gap plus two channel-estimation
// symbols per co-sender (paper §4.4's overhead accounting; the sync header
// replaces the preamble/PLCP any frame carries).
func (p JointFrameParams) OverheadFraction() float64 {
	extra := (p.GlobalRef() - p.HeaderEnd()) + p.NumCo*2*p.ceSymbolLen()
	return float64(extra) / float64(p.TotalLen())
}

// ceSymbolWave builds one channel-estimation OFDM symbol: the LTS pattern
// with the given cyclic prefix.
func ceSymbolWave(cfg *modem.Config, cp int) []complex128 {
	lts := cfg.LTSTime()
	out := make([]complex128, cp+cfg.NFFT)
	copy(out, lts[cfg.NFFT-cp:])
	copy(out[cp:], lts)
	return out
}

// encodeDataSymbols produces, for each sender role, the time-domain data
// portion (concatenated OFDM symbols). Role 0 is the lead.
func (p JointFrameParams) encodeDataSymbols(payload []byte) [][]complex128 {
	dp := p.dataParams()
	syms := dp.EncodePayloadSymbols(payload)
	senders := p.Senders()
	out := make([][]complex128, senders)

	if p.Combining == CombineNaive {
		for role := 0; role < senders; role++ {
			var wave []complex128
			for s, pts := range syms {
				owner := s%senders == role
				wave = append(wave, p.Cfg.AssembleSymbolPilots(pts, s, p.DataCP, owner)...)
			}
			out[role] = wave
		}
		return out
	}

	code := p.code()
	bl := code.BlockLen()
	nd := p.Cfg.NumData()
	for role := 0; role < senders; role++ {
		var wave []complex128
		txPts := make([]complex128, nd)
		for b0 := 0; b0 < len(syms); b0 += bl {
			// Encode each subcarrier's block for this role.
			encoded := make([][]complex128, bl) // [t][subcarrier]
			for t := range encoded {
				encoded[t] = make([]complex128, nd)
			}
			block := make([]complex128, bl)
			for j := 0; j < nd; j++ {
				for t := 0; t < bl; t++ {
					block[t] = syms[b0+t][j]
				}
				enc := code.Encode(role, block)
				for t := 0; t < bl; t++ {
					encoded[t][j] = enc[t]
				}
			}
			for t := 0; t < bl; t++ {
				s := b0 + t
				owner := s%senders == role
				copy(txPts, encoded[t])
				wave = append(wave, p.Cfg.AssembleSymbolPilots(txPts, s, p.DataCP, owner)...)
			}
		}
		out[role] = wave
	}
	return out
}

// BuildLeadWaveform renders the lead sender's complete transmission:
// preamble + sync header symbols, silence through SIFS and the co-sender CE
// slots, then its share of the data symbols. Sample 0 of the returned
// waveform is the start of the preamble.
func (p JointFrameParams) BuildLeadWaveform(payload []byte) []complex128 {
	hp := headerFrameParams(p.Cfg)
	wave := modem.BuildFrame(hp, p.Header().Bytes())
	silence := p.DataStart() - len(wave)
	if silence < 0 {
		panic("phy: header longer than data start")
	}
	wave = append(wave, make([]complex128, silence)...)
	data := p.encodeDataSymbols(payload)[0]
	return append(wave, data...)
}

// BuildCoWaveform renders co-sender i's transmission (role i+1 in the
// space-time code). Sample 0 of the returned waveform corresponds to the
// frame's global time reference, so a perfectly synchronized co-sender
// starts emitting it exactly at its (compensated) global reference time.
// Leading zeros cover the CE slots of earlier co-senders.
func (p JointFrameParams) BuildCoWaveform(i int, payload []byte) []complex128 {
	if i < 0 || i >= p.NumCo {
		panic("phy: co-sender index out of range")
	}
	wave := make([]complex128, i*2*p.ceSymbolLen())
	ce := ceSymbolWave(p.Cfg, p.DataCP)
	wave = append(wave, ce...)
	wave = append(wave, ce...)
	gap := p.DataStart() - p.GlobalRef() - len(wave)
	wave = append(wave, make([]complex128, gap)...)
	data := p.encodeDataSymbols(payload)[i+1]
	return append(wave, data...)
}
