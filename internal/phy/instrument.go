package phy

import (
	"errors"
	"math"

	"repro/internal/modem"
	"repro/internal/sls"
)

// Calibration frames (paper §8.1.1): to measure SourceSync's
// synchronization error one needs an estimator more accurate than
// SourceSync itself. The paper replaces the data in a joint frame with many
// repetitions of the initial header pattern — alternating lead/co-sender
// training symbols — and averages the per-repetition misalignment
// measurements into a near-noiseless ground truth. The single-shot estimate
// from the header + CE slots (the one SourceSync actually uses, §4.5) is
// then scored against that ground truth.

// CalibrationReps is the number of [lead LTS, co LTS] symbol pairs in the
// calibration tail. The paper uses 200 repetitions; 100 keeps runs fast
// while still averaging measurement noise well below the effect size.
const CalibrationReps = 100

// calSymbolLen returns the length of one calibration symbol.
func (p JointFrameParams) calSymbolLen() int { return p.DataCP + p.Cfg.NFFT }

// CalibrationLen returns the total frame length when the data region is
// replaced by the calibration tail.
func (p JointFrameParams) CalibrationLen(reps int) int {
	return p.DataStart() + 2*reps*p.calSymbolLen()
}

// BuildLeadCalibration renders the lead's waveform for a calibration frame:
// sync header, silence, then an LTS symbol in every even tail slot.
func (p JointFrameParams) BuildLeadCalibration(reps int) []complex128 {
	hp := headerFrameParams(p.Cfg)
	wave := modem.BuildFrame(hp, p.Header().Bytes())
	wave = append(wave, make([]complex128, p.DataStart()-len(wave))...)
	ce := ceSymbolWave(p.Cfg, p.DataCP)
	sl := p.calSymbolLen()
	for r := 0; r < reps; r++ {
		wave = append(wave, ce...)
		wave = append(wave, make([]complex128, sl)...)
	}
	return wave
}

// BuildCoCalibration renders co-sender i's calibration waveform (sample 0 =
// global reference): CE slot, silence, then an LTS symbol in every odd tail
// slot.
func (p JointFrameParams) BuildCoCalibration(i, reps int) []complex128 {
	if i != 0 || p.NumCo != 1 {
		panic("phy: calibration frames support exactly one co-sender")
	}
	ce := ceSymbolWave(p.Cfg, p.DataCP)
	wave := append([]complex128{}, ce...)
	wave = append(wave, ce...)
	wave = append(wave, make([]complex128, p.DataStart()-p.GlobalRef()-len(wave))...)
	sl := p.calSymbolLen()
	for r := 0; r < reps; r++ {
		wave = append(wave, make([]complex128, sl)...)
		wave = append(wave, ce...)
	}
	return wave
}

// CalibrationResult reports the two estimators' views of one frame.
type CalibrationResult struct {
	// SingleShot is the misalignment estimate from the header + CE slots —
	// what SourceSync feeds back in ACKs.
	SingleShot float64
	// GroundTruth is the mean of the per-repetition misalignment
	// measurements over the calibration tail.
	GroundTruth float64
	// Series contains each repetition's measurement.
	Series []float64
	// MeasuredSNRdB is the average per-bin SNR across both senders' CE
	// fields (the experiment's x-axis).
	MeasuredSNRdB float64
}

// errNoCalibration is returned when the calibration frame cannot be found
// or decoded.
var errNoCalibration = errors.New("phy: calibration frame not decodable")

// ReceiveCalibration processes a calibration frame: it decodes the header,
// forms the single-shot misalignment estimate exactly as Receive does, then
// measures the per-repetition series over the tail.
func (r *JointReceiver) ReceiveCalibration(p JointFrameParams, x []complex128, from, reps int) (*CalibrationResult, error) {
	cfg := r.Cfg
	det := modem.DetectPacket(cfg, x, from, r.Det)
	if !det.Detected {
		return nil, errNoCalibration
	}
	start := det.FineIdx
	if start < 0 || start+p.CalibrationLen(reps)+cfg.NFFT > len(x) {
		return nil, errNoCalibration
	}
	buf := append([]complex128(nil), x[start:]...)
	modem.CorrectCFO(buf, det.CoarseCFO, 0)
	residual := modem.EstimateCFO(cfg, buf, 0)
	modem.CorrectCFO(buf, residual, 0)

	// Single-shot path: lead channel from header LTS, co channel from CE.
	lts1 := cfg.LTSOffset() - r.FFTBackoff
	hLead := cfg.EstimateChannelLTS(buf[lts1:lts1+cfg.NFFT], buf[lts1+cfg.NFFT:lts1+2*cfg.NFFT])
	slot := p.CESlot(0)
	ceLen := p.ceSymbolLen()
	w1 := slot + p.DataCP - r.FFTBackoff
	w2 := slot + ceLen + p.DataCP - r.FFTBackoff
	hCo := cfg.EstimateChannelLTS(buf[w1:w1+cfg.NFFT], buf[w2:w2+cfg.NFFT])
	res := &CalibrationResult{SingleShot: sls.Misalignment(cfg, hLead, hCo)}

	// Noise and SNR diagnostics.
	noise := r.noiseFromGap(p, buf)
	var sig float64
	used := cfg.UsedBins()
	for _, k := range used {
		b := cfg.Bin(k)
		sig += sqAbs(hLead[b]) + sqAbs(hCo[b])
	}
	sig /= float64(2 * len(used))
	if noise > 0 {
		res.MeasuredSNRdB = 10 * math.Log10(sig/noise)
	}

	// Repetition series: single-symbol channel estimates per slot.
	sl := p.calSymbolLen()
	for rep := 0; rep < reps; rep++ {
		leadSym := p.DataStart() + (2*rep)*sl + p.DataCP - r.FFTBackoff
		coSym := p.DataStart() + (2*rep+1)*sl + p.DataCP - r.FFTBackoff
		hL := r.singleSymbolChannel(buf[leadSym:])
		hC := r.singleSymbolChannel(buf[coSym:])
		res.Series = append(res.Series, sls.Misalignment(cfg, hL, hC))
	}
	var mean float64
	for _, v := range res.Series {
		mean += v
	}
	res.GroundTruth = mean / float64(len(res.Series))
	return res, nil
}

// singleSymbolChannel estimates the channel from one LTS-patterned symbol.
func (r *JointReceiver) singleSymbolChannel(win []complex128) []complex128 {
	cfg := r.Cfg
	bins := cfg.SymbolBins(win)
	ref := cfg.LTSReference()
	h := make([]complex128, cfg.NFFT)
	for _, k := range cfg.UsedBins() {
		b := cfg.Bin(k)
		if ref[b] != 0 {
			h[b] = bins[b] / ref[b]
		}
	}
	return h
}

func sqAbs(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }
