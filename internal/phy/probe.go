package phy

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/modem"
	"repro/internal/sls"
)

// Probe protocol (paper §4.2c, Eq. 2): a prober transmits a probe frame; the
// responder detects it, measures its own detection delay with the
// phase-slope method, waits out its (known) turnaround plus a fixed
// deliberate wait, and answers with a response frame carrying its measured
// detection delay. The prober counts the samples from its transmission to
// the (slope-refined) arrival of the response and solves Eq. 2 for the
// one-way propagation delay. Nodes run this during association and
// periodically afterwards to maintain their delay tables.

// probePayload carries the responder's measurements, in units of samples
// scaled by 1000 for fixed-point transport.
type probePayload struct {
	DetectRx float64 // responder's detection-delay estimate for the probe
	TurnWait float64 // responder's turnaround + deliberate wait actually used
}

func (p probePayload) bytes() []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[0:], uint64(int64(p.DetectRx*1000)))
	binary.LittleEndian.PutUint64(b[8:], uint64(int64(p.TurnWait*1000)))
	return b
}

func parseProbePayload(b []byte) (probePayload, error) {
	if len(b) != 16 {
		return probePayload{}, errors.New("phy: bad probe payload")
	}
	return probePayload{
		DetectRx: float64(int64(binary.LittleEndian.Uint64(b[0:]))) / 1000,
		TurnWait: float64(int64(binary.LittleEndian.Uint64(b[8:]))) / 1000,
	}, nil
}

// ProbeSimConfig wires one probe/response exchange between two nodes.
type ProbeSimConfig struct {
	Cfg *modem.Config
	// Forward and Reverse are the prober->responder and responder->prober
	// links. Physical channels are reciprocal in delay; the multipath
	// realizations may differ.
	Forward, Reverse Link
	// ResponderTurnaround is the responder's constant rx->tx switch time in
	// samples (locally measured in clock ticks, paper §4.2b).
	ResponderTurnaround float64
	// ResponderWait is the deliberate extra wait at the responder, known to
	// the prober (it guarantees Eq. 2's ordering assumption).
	ResponderWait float64
	// Oscillator offsets relative to an arbitrary common reference.
	ProberCFO, ResponderCFO float64
	NoiseProber             float64 // noise power at the prober's receiver
	NoiseResponder          float64
	Rng                     *rand.Rand
	Backoff                 int // FFT backoff both nodes use
}

// ProbeResult is the outcome of one exchange.
type ProbeResult struct {
	// EstimatedOneWay is the prober's propagation-delay estimate (samples).
	EstimatedOneWay float64
	// TrueOneWay is the simulator's ground truth (the forward link delay).
	TrueOneWay float64
	// ResponderDetect is the detection-delay figure the responder reported.
	ResponderDetect float64
}

// Run simulates the full exchange on waveforms.
func (c *ProbeSimConfig) Run() (*ProbeResult, error) {
	cfg := c.Cfg
	if c.Backoff == 0 {
		c.Backoff = 3
	}
	probeFP := modem.FrameParams{
		Cfg: cfg, Rate: modem.Rate{Mod: modem.BPSK, Code: modem.Rate12},
		CP: cfg.CPLen, PayloadLen: 16, ScramblerSeed: 0x2a,
	}

	// --- Prober transmits the probe at local time txStart. ---
	const margin = 500
	txStart := float64(margin)
	probeWave := modem.BuildFrame(probeFP, probePayload{}.bytes())

	// --- Responder receives it. ---
	respWindow := margin + len(probeWave) + int(c.Forward.Delay) + 6*cfg.NFFT
	atResponder := channel.Mix(c.Rng, respWindow, 0, c.NoiseResponder, channel.Emission{
		Wave:  probeWave,
		Start: txStart + c.Forward.Delay,
		Gain:  c.Forward.Gain,
		CFO:   c.ProberCFO - c.ResponderCFO,
		Phase: c.Rng.Float64() * 2 * math.Pi,
		Path:  c.Forward.Path,
	})
	rxB := &modem.Receiver{Cfg: cfg, FFTBackoff: c.Backoff}
	_, okB, diagB, err := rxB.Receive(probeFP, atResponder, 0)
	if err != nil || !okB {
		return nil, errors.New("phy: responder missed the probe")
	}
	// Responder's arrival estimate and detection-delay report. Its
	// "detection instant" is when the probe's frame is fully processed; the
	// useful quantity for Eq. 2 is the offset between true arrival and its
	// local time base, which the slope method supplies.
	arrivalAtB := arrivalFromDiag(cfg, atResponder, diagB, c.Backoff)
	detB := arrivalAtB - float64(diagB.Detect.FineIdx-c.Backoff) // slope refinement vs raw fine index

	// --- Responder replies after its turnaround + deliberate wait. ---
	turnWait := c.ResponderTurnaround + c.ResponderWait
	replyTx := arrivalAtB + float64(probeFP.AirtimeSamples()) + turnWait
	respFP := probeFP
	respFP.ScramblerSeed = 0x33
	respWave := modem.BuildFrame(respFP, probePayload{DetectRx: detB, TurnWait: turnWait}.bytes())

	// --- Prober receives the response. ---
	probWindow := int(replyTx+c.Reverse.Delay) + len(respWave) + 6*cfg.NFFT
	atProber := channel.Mix(c.Rng, probWindow, 0, c.NoiseProber, channel.Emission{
		Wave:  respWave,
		Start: replyTx + c.Reverse.Delay,
		Gain:  c.Reverse.Gain,
		CFO:   c.ResponderCFO - c.ProberCFO,
		Phase: c.Rng.Float64() * 2 * math.Pi,
		Path:  c.Reverse.Path,
	})
	rxA := &modem.Receiver{Cfg: cfg, FFTBackoff: c.Backoff}
	payload, okA, diagA, err := rxA.Receive(respFP, atProber, int(txStart)+probeFP.AirtimeSamples())
	if err != nil || !okA {
		return nil, errors.New("phy: prober missed the response")
	}
	report, err := parseProbePayload(payload)
	if err != nil {
		return nil, err
	}
	arrivalAtA := arrivalFromDiag(cfg, atProber, diagA, c.Backoff)

	// --- Eq. 2. The prober measures the interval from the END of its probe
	// transmission to the (slope-refined) arrival of the response; that
	// interval is d_fwd + turnWait + d_rev. ---
	interval := arrivalAtA - (txStart + float64(probeFP.AirtimeSamples()))
	ex := sls.ProbeExchange{
		RoundTrip:   interval,
		DetectRx:    0, // the responder's detection delay is already folded
		TurnRx:      0, // into its slope-based arrival estimate and its
		DetectTx:    0, // reported turnWait; see below
		ExtraWaitRx: report.TurnWait,
	}
	return &ProbeResult{
		EstimatedOneWay: ex.OneWayDelay(),
		TrueOneWay:      c.Forward.Delay,
		ResponderDetect: report.DetectRx,
	}, nil
}

// arrivalFromDiag refines a receiver diagnostic into a fractional arrival
// time: the detector's fine index plus the phase-slope offset of the
// channel estimate (the SLS measurement, §4.2a).
func arrivalFromDiag(cfg *modem.Config, x []complex128, diag modem.RxDiag, backoff int) float64 {
	delta := sls.EstimateDelay(cfg, diag.H)
	return float64(diag.Detect.FineIdx-backoff) + delta
}
