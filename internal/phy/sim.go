package phy

import (
	"fmt"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/modem"
	"repro/internal/sls"
)

// Link describes one directed radio link in a simulation.
type Link struct {
	Gain  float64            // amplitude gain (sqrt of power gain)
	Delay float64            // propagation delay in samples (fractional)
	Path  *channel.Multipath // multipath; nil = flat
}

// CoSenderSim describes one co-sender's radio and its measurement state
// going into a joint transmission.
type CoSenderSim struct {
	Turnaround float64 // receive-to-transmit switch time, samples
	OscCFO     float64 // raw oscillator offset vs the receiver, cycles/sample
	ResidCFO   float64 // residual offset after CFO pre-correction toward the receiver
	Phase      float64 // oscillator phase at absolute sample 0

	EstDelayFromLead float64 // d_i estimate from the probe phase, samples
	TxOffset         float64 // w_i from sls (T0 - t_i, or the LP solution)
	NoisePower       float64 // noise at the co-sender's own receiver
	FFTBackoff       int     // co-sender's own FFT backoff for header processing

	// BaselineSync disables SourceSync's delay compensation (the Fig. 13
	// baseline): the co-sender times its transmission off its raw
	// energy-detection instant, with no phase-slope refinement, no
	// propagation-delay subtraction and no wait offset.
	BaselineSync bool
	// DetectJitter is the hardware detection-pipeline latency variability
	// in samples (uniform [0, DetectJitter]); real receivers report
	// hundreds of ns (paper §1, citing Williams et al.). It delays the
	// detection *event*, not the buffered samples, so SourceSync's
	// phase-slope timing is immune but the baseline is not.
	DetectJitter float64
}

// LeadSim describes the lead sender's radio.
type LeadSim struct {
	ResidCFO float64 // residual offset after pre-correction toward the receiver
	Phase    float64
}

// JointSimConfig wires a complete joint transmission: the lead, its links to
// every co-sender (over which the sync header is actually detected), and
// everyone's links to the receiver.
type JointSimConfig struct {
	P        JointFrameParams
	Lead     LeadSim
	LeadToCo []Link // lead -> co-sender i (header reception)
	LeadToRx Link
	CoToRx   []Link
	Co       []CoSenderSim
	NoiseRx  float64 // noise power at the receiver
	Margin   int     // noise-only samples before the lead frame (default 600)
	Rng      *rand.Rand
}

// SimRun is the outcome of one simulated joint transmission.
type SimRun struct {
	// RxWave is the receiver's baseband stream (frame starts Margin samples
	// in, plus the lead->rx propagation delay).
	RxWave []complex128
	// CoJoined[i] reports whether co-sender i detected and decoded the sync
	// header and therefore transmitted.
	CoJoined []bool
	// TrueMisalign[i] is the actual arrival-time misalignment of co-sender
	// i's symbols relative to the lead's at the receiver antenna, in
	// samples (ground truth; the estimate is in the receiver's result).
	TrueMisalign []float64
	// CoArrivalEstErr[i] is the error of co-sender i's header arrival
	// estimate (diagnostic).
	CoArrivalEstErr []float64
	// SlotMisses counts co-senders that decoded the sync header but could
	// not turn around in time for their TX slot and therefore abstained
	// (paper §4.3: a late-detecting node simply stays silent; the frame
	// remains decodable from the lead alone).
	SlotMisses int
}

// Run simulates the full distributed exchange for one payload.
func (c *JointSimConfig) Run(payload []byte) (*SimRun, error) {
	if len(c.Co) != c.P.NumCo || len(c.LeadToCo) != c.P.NumCo || len(c.CoToRx) != c.P.NumCo {
		return nil, fmt.Errorf("phy: sim has %d co-senders but frame declares %d", len(c.Co), c.P.NumCo)
	}
	if c.Margin == 0 {
		c.Margin = 600
	}
	cfg := c.P.Cfg
	leadStart := float64(c.Margin)
	leadWave := c.P.BuildLeadWaveform(payload)

	run := &SimRun{
		CoJoined:        make([]bool, c.P.NumCo),
		TrueMisalign:    make([]float64, c.P.NumCo),
		CoArrivalEstErr: make([]float64, c.P.NumCo),
	}

	// The lead's implied global-reference emission instant.
	leadGlobalRef := leadStart + float64(c.P.GlobalRef())

	emissions := []channel.Emission{{
		Wave:  leadWave,
		Start: leadStart + c.LeadToRx.Delay,
		Gain:  c.LeadToRx.Gain,
		CFO:   c.Lead.ResidCFO,
		Phase: c.Lead.Phase,
		Path:  c.LeadToRx.Path,
	}}

	headerSamples := c.P.HeaderEnd()
	for i := range c.Co {
		co := &c.Co[i]
		link := c.LeadToCo[i]

		// --- Co-sender i receives and processes the sync header. ---
		// Its local stream contains only the header portion of the lead's
		// waveform (everything it needs before turning around).
		hdrWave := leadWave[:headerSamples]
		coWindow := c.Margin + headerSamples + int(link.Delay) + 4*cfg.NFFT
		coRx := channel.Mix(c.Rng, coWindow, 0, co.NoisePower, channel.Emission{
			Wave:  hdrWave,
			Start: leadStart + link.Delay,
			Gain:  link.Gain,
			// What the co-sender sees: the lead's (pre-corrected) carrier
			// against its own raw oscillator.
			CFO:   c.Lead.ResidCFO - co.OscCFO,
			Phase: c.Rng.Float64() * 6.28318530717958647692,
			Path:  link.Path,
		})

		arrivalEst, det, hdr, err := receiveHeader(cfg, coRx, 0, co.FFTBackoff)
		if err != nil || !hdr.Joint {
			continue // co-sender never joins; receiver must still decode.
		}
		run.CoJoined[i] = true
		trueArrival := leadStart + link.Delay
		run.CoArrivalEstErr[i] = arrivalEst - trueArrival

		// --- Schedule its transmission (paper §4.3). ---
		var txStart float64
		if co.BaselineSync {
			// Baseline: the raw detection event (with hardware pipeline
			// jitter) is the only time reference; no compensation at all.
			detEvent := float64(det.CoarseIdx) + co.DetectJitter*c.Rng.Float64()
			txStart = detEvent + float64(headerSamples) + sls.SIFSSamples(cfg)
		} else {
			// Estimated global reference:
			// header arrival - d_i + headerLen + SIFS, then the wait offset.
			gEst := arrivalEst - co.EstDelayFromLead + float64(headerSamples) + sls.SIFSSamples(cfg)
			txStart = gEst + co.TxOffset
		}
		ready := arrivalEst + float64(headerSamples) + co.Turnaround
		if txStart < ready {
			// The co-sender cannot make its slot: it abstains rather than
			// transmit late and corrupt the joint frame (§4.3).
			run.CoJoined[i] = false
			run.SlotMisses++
			continue
		}

		coWave := c.P.BuildCoWaveform(i, payload)
		emissions = append(emissions, channel.Emission{
			Wave:  coWave,
			Start: txStart + c.CoToRx[i].Delay,
			Gain:  c.CoToRx[i].Gain,
			CFO:   co.ResidCFO,
			Phase: co.Phase,
			Path:  c.CoToRx[i].Path,
		})

		run.TrueMisalign[i] = (txStart + c.CoToRx[i].Delay) - (leadGlobalRef + c.LeadToRx.Delay)
	}

	total := c.Margin + c.P.TotalLen() + int(c.LeadToRx.Delay) + 8*cfg.NFFT
	run.RxWave = channel.Mix(c.Rng, total, 0, c.NoiseRx, emissions...)
	return run, nil
}

// receiveHeader detects a sync header in stream x, refines the arrival
// estimate with the SLS phase-slope method, and decodes the header bytes.
// The returned arrival estimate is the (fractional) sample index of the
// first preamble sample as seen on this node's clock.
func receiveHeader(cfg *modem.Config, x []complex128, from, backoff int) (float64, modem.DetectResult, SyncHeader, error) {
	det := modem.DetectPacket(cfg, x, from, modem.DetectorOptions{})
	if !det.Detected {
		return 0, det, SyncHeader{}, modem.ErrNoPacket
	}
	start := det.FineIdx
	hp := headerFrameParams(cfg)
	if start < 0 || start+hp.AirtimeSamples()+cfg.NFFT > len(x) {
		return 0, det, SyncHeader{}, modem.ErrNoPacket
	}
	buf := append([]complex128(nil), x[start:]...)
	modem.CorrectCFO(buf, det.CoarseCFO, 0)
	resid := modem.EstimateCFO(cfg, buf, 0)
	modem.CorrectCFO(buf, resid, 0)

	lts1 := cfg.LTSOffset() - backoff
	if lts1 < 0 {
		return 0, det, SyncHeader{}, modem.ErrNoPacket
	}
	h := cfg.EstimateChannelLTS(buf[lts1:lts1+cfg.NFFT], buf[lts1+cfg.NFFT:lts1+2*cfg.NFFT])
	delta := sls.EstimateDelay(cfg, h)
	arrival := float64(start-backoff) + delta

	jr := &JointReceiver{Cfg: cfg, FFTBackoff: backoff}
	hdrBytes, ok := jr.decodeHeaderSymbols(hp, buf)
	if !ok {
		return arrival, det, SyncHeader{}, ErrHeaderFailed
	}
	hdr, err := ParseSyncHeader(hdrBytes)
	if err != nil {
		return arrival, det, SyncHeader{}, err
	}
	return arrival, det, hdr, nil
}

// RunCalibration simulates one calibration frame (paper §8.1.1) through the
// same distributed machinery as Run: the co-sender really detects the
// header and schedules itself; the frame's data region carries alternating
// lead/co training symbols for the ground-truth estimator. Exactly one
// co-sender is supported.
func (c *JointSimConfig) RunCalibration(reps int) (*SimRun, error) {
	if c.P.NumCo != 1 || len(c.Co) != 1 {
		return nil, fmt.Errorf("phy: calibration needs exactly one co-sender")
	}
	if c.Margin == 0 {
		c.Margin = 600
	}
	cfg := c.P.Cfg
	leadStart := float64(c.Margin)
	leadWave := c.P.BuildLeadCalibration(reps)

	run := &SimRun{
		CoJoined:        make([]bool, 1),
		TrueMisalign:    make([]float64, 1),
		CoArrivalEstErr: make([]float64, 1),
	}
	leadGlobalRef := leadStart + float64(c.P.GlobalRef())
	emissions := []channel.Emission{{
		Wave:  leadWave,
		Start: leadStart + c.LeadToRx.Delay,
		Gain:  c.LeadToRx.Gain,
		CFO:   c.Lead.ResidCFO,
		Phase: c.Lead.Phase,
		Path:  c.LeadToRx.Path,
	}}

	// finish mixes whatever emissions made it into the calibration window —
	// the single exit for the lead-only (header miss, slot miss) and joint
	// paths, so the window length stays identical everywhere.
	finish := func() (*SimRun, error) {
		total := c.Margin + c.P.CalibrationLen(reps) + int(c.LeadToRx.Delay) + 8*cfg.NFFT
		run.RxWave = channel.Mix(c.Rng, total, 0, c.NoiseRx, emissions...)
		return run, nil
	}

	headerSamples := c.P.HeaderEnd()
	co := &c.Co[0]
	link := c.LeadToCo[0]
	hdrWave := leadWave[:headerSamples]
	coWindow := c.Margin + headerSamples + int(link.Delay) + 4*cfg.NFFT
	coRx := channel.Mix(c.Rng, coWindow, 0, co.NoisePower, channel.Emission{
		Wave:  hdrWave,
		Start: leadStart + link.Delay,
		Gain:  link.Gain,
		CFO:   c.Lead.ResidCFO - co.OscCFO,
		Phase: c.Rng.Float64() * 6.28318530717958647692,
		Path:  link.Path,
	})
	arrivalEst, det, hdr, err := receiveHeader(cfg, coRx, 0, co.FFTBackoff)
	if err != nil || !hdr.Joint {
		// Co-sender missed the header: lead-only calibration frame.
		return finish()
	}
	run.CoJoined[0] = true
	run.CoArrivalEstErr[0] = arrivalEst - (leadStart + link.Delay)

	var txStart float64
	if co.BaselineSync {
		detEvent := float64(det.CoarseIdx) + co.DetectJitter*c.Rng.Float64()
		txStart = detEvent + float64(headerSamples) + sls.SIFSSamples(cfg)
	} else {
		gEst := arrivalEst - co.EstDelayFromLead + float64(headerSamples) + sls.SIFSSamples(cfg)
		txStart = gEst + co.TxOffset
	}
	ready := arrivalEst + float64(headerSamples) + co.Turnaround
	if txStart < ready {
		// Slot missed: abstain and emit a lead-only calibration frame.
		run.CoJoined[0] = false
		run.SlotMisses++
		return finish()
	}
	emissions = append(emissions, channel.Emission{
		Wave:  c.P.BuildCoCalibration(0, reps),
		Start: txStart + c.CoToRx[0].Delay,
		Gain:  c.CoToRx[0].Gain,
		CFO:   co.ResidCFO,
		Phase: co.Phase,
		Path:  c.CoToRx[0].Path,
	})
	run.TrueMisalign[0] = (txStart + c.CoToRx[0].Delay) - (leadGlobalRef + c.LeadToRx.Delay)
	return finish()
}
