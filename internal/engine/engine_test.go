package engine

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestTrialSeedStableAndDistinct(t *testing.T) {
	if TrialSeed(1, 0, 0) != TrialSeed(1, 0, 0) {
		t.Fatal("TrialSeed not deterministic")
	}
	seen := map[int64]bool{}
	for seed := int64(0); seed < 3; seed++ {
		for p := 0; p < 20; p++ {
			for tr := -1; tr < 20; tr++ {
				s := TrialSeed(seed, p, tr)
				if seen[s] {
					t.Fatalf("collision at seed=%d point=%d trial=%d", seed, p, tr)
				}
				seen[s] = true
			}
		}
	}
}

func TestPointRNGIndependentOfTrial(t *testing.T) {
	if PointRNG(7, 3).Int63() != PointRNG(7, 3).Int63() {
		t.Fatal("PointRNG not reproducible")
	}
	if PointRNG(7, 3).Int63() == TrialRNG(7, 3, 0).Int63() {
		t.Fatal("PointRNG collides with trial 0's stream")
	}
}

func TestMapOrderAndWorkerIndependence(t *testing.T) {
	fn := func(trial int, rng *rand.Rand) float64 {
		return float64(trial) + rng.Float64()
	}
	want := Map(Config{Seed: 42, Workers: 1}, 5, 100, fn)
	for _, workers := range []int{2, 4, 7, runtime.GOMAXPROCS(0)} {
		got := Map(Config{Seed: 42, Workers: workers}, 5, 100, fn)
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestGridShapeAndDeterminism(t *testing.T) {
	fn := func(p, tr int, rng *rand.Rand) int64 {
		return int64(p*1000+tr) ^ rng.Int63()
	}
	mk := func(workers int) [][]int64 {
		return Grid(Config{Seed: 9, Workers: workers}, 7, 13, fn)
	}
	serial := mk(1)
	if len(serial) != 7 || len(serial[0]) != 13 {
		t.Fatalf("grid shape %dx%d", len(serial), len(serial[0]))
	}
	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0)} {
		got := mk(workers)
		for p := range serial {
			for tr := range serial[p] {
				if got[p][tr] != serial[p][tr] {
					t.Fatalf("workers=%d: [%d][%d] differs", workers, p, tr)
				}
			}
		}
	}
}

func TestMonitorProgressAndIdenticalResults(t *testing.T) {
	fn := func(trial int, rng *rand.Rand) float64 { return float64(trial) + rng.Float64() }
	want := Map(Config{Seed: 5, Workers: 1}, 2, 40, fn)
	for _, workers := range []int{1, 4} {
		m := &Monitor{}
		got := Map(Config{Seed: 5, Workers: workers, Monitor: m}, 2, 40, fn)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: monitored result %d differs from unmonitored", workers, i)
			}
		}
		done, total := m.Progress()
		if done != 40 || total != 40 {
			t.Fatalf("workers=%d: progress %d/%d, want 40/40", workers, done, total)
		}
	}
	// Totals accumulate across successive stages sharing one Monitor.
	m := &Monitor{}
	Map(Config{Seed: 5, Monitor: m}, 0, 10, fn)
	Map(Config{Seed: 5, Monitor: m}, 1, 15, fn)
	if done, total := m.Progress(); done != 25 || total != 25 {
		t.Fatalf("two-stage progress %d/%d, want 25/25", done, total)
	}
}

func TestMonitorCancelStopsScheduling(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := &Monitor{}
		ran := make([]atomic.Bool, 200)
		Map(Config{Seed: 5, Workers: workers, Monitor: m}, 0, len(ran), func(trial int, rng *rand.Rand) int {
			ran[trial].Store(true)
			if trial == 3 {
				m.Cancel()
			}
			return trial
		})
		if !m.Canceled() {
			t.Fatalf("workers=%d: monitor should report canceled", workers)
		}
		count := 0
		for i := range ran {
			if ran[i].Load() {
				count++
			}
		}
		// In-flight trials may finish after Cancel, but the bulk of the
		// 200 must never have been scheduled.
		if count > 20+workers {
			t.Fatalf("workers=%d: %d trials ran after an early cancel", workers, count)
		}
		if done, total := m.Progress(); total != 200 || done < 1 || done > int64(count) {
			t.Fatalf("workers=%d: progress %d/%d after cancel (%d ran)", workers, done, total, count)
		}
	}
}

func TestRunHandlesEmptyAndSmall(t *testing.T) {
	if got := Map(Config{}, 0, 0, func(int, *rand.Rand) int { return 1 }); len(got) != 0 {
		t.Fatal("n=0 should return empty")
	}
	// More workers than tasks must not deadlock or drop tasks.
	got := Map(Config{Workers: 64}, 0, 3, func(trial int, _ *rand.Rand) int { return trial })
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("small map: %v", got)
	}
}
