// Package engine is a deterministic parallel trial scheduler for the
// experiment runners in the root package.
//
// Every §8 experiment is a grid of independent trials: an outer sweep over
// operating points (an SNR, a cyclic-prefix value, a random placement) and
// an inner loop of trials per point. The engine fans those trials out
// across a worker pool while keeping the output bit-identical to a serial
// run:
//
//   - Each trial receives its own *rand.Rand seeded by a splitmix64-style
//     hash of (base seed, point index, trial index) — see TrialSeed. No RNG
//     state is shared between trials, so the random stream a trial consumes
//     does not depend on which worker ran it, on scheduling order, or on
//     the worker count.
//   - Results land in a slice indexed by (point, trial), so reductions see
//     trial order, never completion order. Floating-point accumulation in
//     the callers therefore sums in a fixed order too.
//
// The zero Config runs with seed 0 and a full-width pool: Workers <= 0
// selects one worker per logical CPU (GOMAXPROCS). Workers == 1 forces the
// serial path, which runs the trial function inline on the calling
// goroutine.
//
// Map schedules the trials of a single operating point; Grid schedules the
// full points x trials cross product on one shared pool. The repository's
// determinism contract — every experiment's stdout byte-identical at every
// worker count, enforced by CI — is documented in docs/ARCHITECTURE.md.
package engine

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config selects the base seed and the degree of parallelism for a run.
type Config struct {
	Seed    int64
	Workers int // <= 0: GOMAXPROCS, 1: serial, n: exactly n workers
	// Monitor, when non-nil, observes the run: it accumulates trial
	// progress across every Map/Grid call that carries it and lets an
	// external owner (e.g. a ssserve job) request cooperative
	// cancellation. A nil Monitor costs nothing.
	Monitor *Monitor
}

// Monitor is a shared observation/cancellation handle for one experiment
// run. The engine adds every scheduled trial to Total and ticks Done as
// trials complete; Cancel makes workers stop picking up new trials. A
// canceled run returns partial results (unrun trials stay zero values), so
// the caller that canceled must discard the run's output — partial output
// is outside the determinism contract. A completed, never-canceled run is
// unaffected by the Monitor: progress counters are observability only and
// never feed back into trial scheduling or RNG derivation.
type Monitor struct {
	total atomic.Int64
	done  atomic.Int64
	stop  atomic.Bool
}

// Cancel asks every engine run carrying this Monitor to stop scheduling
// new trials. In-flight trials run to completion; Cancel never blocks.
func (m *Monitor) Cancel() { m.stop.Store(true) }

// Canceled reports whether Cancel has been called.
func (m *Monitor) Canceled() bool { return m.stop.Load() }

// Progress returns trials completed and trials scheduled so far. Total
// grows as an experiment's successive Map/Grid stages start, so done/total
// is a monotone underestimate of overall completion until the last stage.
func (m *Monitor) Progress() (done, total int64) {
	// Read done first: total only grows, so a racing stage start can make
	// the ratio conservative but never above 1.
	return m.done.Load(), m.total.Load()
}

// WorkerCount resolves a Workers setting to the actual pool size: values
// above zero are taken literally, anything else means one worker per CPU.
// Exported so callers reporting parallelism (e.g. ssbench's wall-clock
// summary) stay in sync with what the engine really uses.
func WorkerCount(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) workerCount() int { return WorkerCount(c.Workers) }

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et al.,
// "Fast splittable pseudorandom number generators"): an invertible
// avalanche mix, so distinct inputs give statistically independent outputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TrialSeed derives the RNG seed for one trial from the experiment's base
// seed, the operating-point index, and the trial index within that point.
// The three values are chained through splitmix64 so that neighboring
// (point, trial) pairs produce unrelated streams.
func TrialSeed(seed int64, point, trial int) int64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ uint64(int64(point)))
	h = splitmix64(h ^ uint64(int64(trial)))
	return int64(h)
}

// TrialRNG returns a fresh rand.Rand for one trial, seeded by TrialSeed.
func TrialRNG(seed int64, point, trial int) *rand.Rand {
	return rand.New(rand.NewSource(TrialSeed(seed, point, trial))) //sslint:allow detrand TrialSeed is the sanctioned derivation: a pure splitmix64 function of (seed, point, trial)
}

// PointRNG returns a rand.Rand scoped to a whole operating point (trial
// index -1), for values every trial of the point must agree on — e.g. a
// placement's SNR draw shared by all its frames.
func PointRNG(seed int64, point int) *rand.Rand {
	return TrialRNG(seed, point, -1)
}

// run executes fn(0..n-1) across the given number of workers. Tasks are
// handed out through an atomic counter, so long trials do not serialize
// behind a fixed pre-partition. A non-nil Monitor sees every scheduled
// trial in Total and every completed one in Done, and its Cancel stops
// further pickups (already-started trials finish).
func run(workers, n int, m *Monitor, fn func(i int)) {
	if n <= 0 {
		return
	}
	if m != nil {
		m.total.Add(int64(n))
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if m != nil && m.Canceled() {
				return
			}
			fn(i)
			if m != nil {
				m.done.Add(1)
			}
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if m != nil && m.Canceled() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
				if m != nil {
					m.done.Add(1)
				}
			}
		}()
	}
	wg.Wait()
}

// Map runs n trials of one operating point and returns their results in
// trial order. Each trial gets an independent RNG from TrialRNG(c.Seed,
// point, trial), so the output is identical for every worker count.
func Map[T any](c Config, point, n int, fn func(trial int, rng *rand.Rand) T) []T {
	out := make([]T, n)
	run(c.workerCount(), n, c.Monitor, func(i int) {
		out[i] = fn(i, TrialRNG(c.Seed, point, i))
	})
	return out
}

// Grid runs the full points x trials cross product and returns results as
// out[point][trial]. All points' trials share one worker pool, so a sweep
// with few trials per point still saturates the machine.
func Grid[T any](c Config, points, trials int, fn func(point, trial int, rng *rand.Rand) T) [][]T {
	out := make([][]T, points)
	for p := range out {
		out[p] = make([]T, trials)
	}
	run(c.workerCount(), points*trials, c.Monitor, func(i int) {
		p, t := i/trials, i%trials
		out[p][t] = fn(p, t, TrialRNG(c.Seed, p, t))
	})
	return out
}
