package serve

import (
	"fmt"
	"io"
	"maps"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/netsim"
)

// metrics aggregates the service counters behind GET /metrics. Rendering
// is Prometheus-style text: one `name{labels} value` line per series, so
// any scraper (or a human with curl) can read the job mix, the
// per-experiment latency profile, and the cache hit rates.
type metrics struct {
	mu          sync.Mutex
	submitted   uint64
	rejected    uint64
	cacheHits   uint64
	cacheMisses uint64
	running     int64
	finishedBy  map[State]uint64
	perExp      map[string]*expLatency
}

// expLatency is one experiment's completed-run latency aggregate.
type expLatency struct {
	runs     uint64
	totalSec float64
	maxSec   float64
}

func (m *metrics) init() {
	m.finishedBy = map[State]uint64{}
	m.perExp = map[string]*expLatency{}
}

// submit records one accepted submission and its cache-lookup outcome.
func (m *metrics) submit(cacheHit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submitted++
	if cacheHit {
		m.cacheHits++
	} else {
		m.cacheMisses++
	}
}

// reject records a submit bounced off the full queue.
func (m *metrics) reject() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

// runningDelta tracks the live running-job gauge.
func (m *metrics) runningDelta(delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running += delta
}

// finished records a terminal transition; completed runs also feed the
// per-experiment latency aggregate.
func (m *metrics) finished(experiment string, state State, ranFor time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finishedBy[state]++
	if state != StateDone {
		return
	}
	e := m.perExp[experiment]
	if e == nil {
		e = &expLatency{}
		m.perExp[experiment] = e
	}
	sec := ranFor.Seconds()
	e.runs++
	e.totalSec += sec
	if sec > e.maxSec {
		e.maxSec = sec
	}
}

// render writes the metrics page. queued is the current queue depth (the
// server reads its channel length at render time).
func (m *metrics) render(w io.Writer, queued int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintf(w, "ssserve_jobs_submitted_total %d\n", m.submitted)
	fmt.Fprintf(w, "ssserve_jobs_rejected_total %d\n", m.rejected)
	fmt.Fprintf(w, "ssserve_jobs_queued %d\n", queued)
	fmt.Fprintf(w, "ssserve_jobs_running %d\n", m.running)
	for _, st := range []State{StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "ssserve_jobs_finished_total{state=%q} %d\n", string(st), m.finishedBy[st])
	}
	fmt.Fprintf(w, "ssserve_output_cache_hits_total %d\n", m.cacheHits)
	fmt.Fprintf(w, "ssserve_output_cache_misses_total %d\n", m.cacheMisses)
	thrHits, thrMisses := netsim.ThresholdCacheStats()
	fmt.Fprintf(w, "ssserve_threshold_cache_hits_total %d\n", thrHits)
	fmt.Fprintf(w, "ssserve_threshold_cache_misses_total %d\n", thrMisses)
	for _, exp := range slices.Sorted(maps.Keys(m.perExp)) {
		e := m.perExp[exp]
		fmt.Fprintf(w, "ssserve_experiment_runs_total{experiment=%q} %d\n", exp, e.runs)
		fmt.Fprintf(w, "ssserve_experiment_run_seconds_sum{experiment=%q} %.6f\n", exp, e.totalSec)
		fmt.Fprintf(w, "ssserve_experiment_run_seconds_max{experiment=%q} %.6f\n", exp, e.maxSec)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "ssserve_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "ssserve_heap_alloc_bytes %d\n", ms.HeapAlloc)
}
