package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
)

// waitState blocks until the job reaches a terminal state.
func waitState(t *testing.T, j *Job) State {
	t.Helper()
	select {
	case <-j.Done():
	case <-newTimer(10 * time.Second).C:
		t.Fatalf("job %s did not settle (state %s)", j.ID, j.StateNow())
	}
	return j.StateNow()
}

// fakeRun returns a runFn that writes fixed output after release is
// closed (nil release means immediately), honoring cooperative
// cancellation while it waits.
func fakeRun(release <-chan struct{}, calls *int32) func(*bytes.Buffer, string, experiments.Params) error {
	return func(buf *bytes.Buffer, name string, p experiments.Params) error {
		if calls != nil {
			*calls++ // runners may race on this; tests using calls run MaxRunning=1
		}
		if release != nil {
			for {
				select {
				case <-release:
				case <-newTimer(time.Millisecond).C:
					if !p.Monitor.Canceled() {
						continue
					}
					return experiments.ErrCanceled
				}
				break
			}
		}
		fmt.Fprintf(buf, "output of %s seed=%d\n", name, p.Seed)
		return nil
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	s := New(Config{MaxRunning: 1})
	defer s.Close()
	for _, spec := range []Spec{
		{},
		{Experiment: "nope"},
		{Experiment: "fig12", Workers: -1},
		{Experiment: "fig12", TimeoutSec: -2},
		{Experiment: "cellsweep", Cells: []int{0}},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted a bad spec", spec)
		}
	}
}

func TestSubmitNormalizesSpec(t *testing.T) {
	s := New(Config{MaxRunning: 1, runFn: fakeRun(nil, nil)})
	defer s.Close()
	j, err := s.Submit(Spec{Experiment: "  FIG12 "})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if j.Spec.Experiment != "fig12" {
		t.Errorf("experiment not normalized: %q", j.Spec.Experiment)
	}
	if j.Spec.Seed == nil || *j.Spec.Seed != 1 {
		t.Errorf("seed default not applied: %v", j.Spec.Seed)
	}
	if waitState(t, j) != StateDone {
		t.Fatalf("state = %s, want done", j.StateNow())
	}
	out, ok := j.Output()
	if !ok || !strings.Contains(string(out), "output of fig12 seed=1") {
		t.Errorf("Output() = %q, %t", out, ok)
	}
}

func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{MaxRunning: 1, MaxQueue: 1, CacheEntries: -1, runFn: fakeRun(release, nil)})
	defer s.Close()
	defer close(release)

	// First job occupies the single runner; distinct seeds dodge any cache.
	j1, err := s.Submit(Spec{Experiment: "fig12", Seed: ptr(int64(1))})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// Wait until it is actually running so the queue slot is free again.
	for j1.StateNow() != StateRunning {
		<-newTimer(time.Millisecond).C
	}
	if _, err := s.Submit(Spec{Experiment: "fig12", Seed: ptr(int64(2))}); err != nil {
		t.Fatalf("submit 2 (should queue): %v", err)
	}
	_, err = s.Submit(Spec{Experiment: "fig12", Seed: ptr(int64(3))})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit 3: err = %v, want ErrQueueFull", err)
	}
	// The rejected job must not linger in the job table.
	if got := len(s.Jobs()); got != 2 {
		t.Errorf("Jobs() has %d entries, want 2", got)
	}
}

func TestConcurrentSubmitsAgainstFullQueue(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{MaxRunning: 1, MaxQueue: 1, CacheEntries: -1, runFn: fakeRun(release, nil)})
	defer s.Close()
	defer close(release)

	j1, err := s.Submit(Spec{Experiment: "fig12", Seed: ptr(int64(1))})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	for j1.StateNow() != StateRunning {
		<-newTimer(time.Millisecond).C
	}

	// The single queue slot is open and the runner is pinned; of these
	// concurrent submits exactly one can win the slot and the rest must be
	// rejected without corrupting the job table (a rollback that truncated
	// s.order used to drop a concurrent winner's ID while leaving the
	// loser's, making Jobs() yield a nil job).
	var wg sync.WaitGroup
	var accepted atomic.Int32
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			_, err := s.Submit(Spec{Experiment: "fig12", Seed: ptr(seed)})
			switch {
			case err == nil:
				accepted.Add(1)
			case !errors.Is(err, ErrQueueFull):
				t.Errorf("submit seed=%d: %v, want nil or ErrQueueFull", seed, err)
			}
		}(int64(i + 2))
	}
	wg.Wait()
	if got := accepted.Load(); got != 1 {
		t.Errorf("%d submits won the single queue slot, want 1", got)
	}
	jobs := s.Jobs()
	if len(jobs) != 2 {
		t.Errorf("Jobs() has %d entries, want 2 (running + queued)", len(jobs))
	}
	for i, j := range jobs {
		if j == nil {
			t.Fatalf("Jobs()[%d] is nil: a rejected submit left a stale ID in s.order", i)
		}
		j.Status() // what handleList does; must not panic
	}
}

func TestSubmitDuringCloseDoesNotPanic(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := New(Config{MaxRunning: 2, MaxQueue: 2, CacheEntries: -1, runFn: fakeRun(release, nil)})

	// Hammer Submit from several goroutines while Close runs. The queue
	// send used to happen outside s.mu, so a submit could race Close's
	// close(s.queue) and crash the daemon with "send on closed channel".
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for n := int64(0); ; n++ {
				_, err := s.Submit(Spec{Experiment: "fig12", Seed: ptr(base*1_000_000 + n)})
				if errors.Is(err, ErrClosed) {
					return
				}
			}
		}(int64(i))
	}
	<-newTimer(5 * time.Millisecond).C
	s.Close()
	wg.Wait()
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{MaxRunning: 1, MaxQueue: 4, CacheEntries: -1, runFn: fakeRun(release, nil)})
	defer s.Close()
	defer close(release)

	j1, _ := s.Submit(Spec{Experiment: "fig12", Seed: ptr(int64(1))})
	for j1.StateNow() != StateRunning {
		<-newTimer(time.Millisecond).C
	}
	j2, err := s.Submit(Spec{Experiment: "fig12", Seed: ptr(int64(2))})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	jc, ok := s.Cancel(j2.ID)
	if !ok || jc != j2 {
		t.Fatalf("Cancel(%s) = %v, %t", j2.ID, jc, ok)
	}
	// A queued cancel settles immediately, without waiting for a runner.
	if st := j2.StateNow(); st != StateCanceled {
		t.Fatalf("canceled queued job state = %s, want canceled", st)
	}
	if _, ok := j2.Output(); ok {
		t.Error("canceled job leaked output")
	}
}

func TestCancelRunningJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := New(Config{MaxRunning: 1, CacheEntries: -1, runFn: fakeRun(release, nil)})
	defer s.Close()

	j, _ := s.Submit(Spec{Experiment: "fig12"})
	for j.StateNow() != StateRunning {
		<-newTimer(time.Millisecond).C
	}
	if _, ok := s.Cancel(j.ID); !ok {
		t.Fatal("Cancel returned !ok")
	}
	if st := waitState(t, j); st != StateCanceled {
		t.Fatalf("state = %s, want canceled", st)
	}
	if _, ok := j.Output(); ok {
		t.Error("canceled job leaked output")
	}
}

func TestCancelUnknownOrTerminal(t *testing.T) {
	s := New(Config{MaxRunning: 1, runFn: fakeRun(nil, nil)})
	defer s.Close()
	if _, ok := s.Cancel("j999"); ok {
		t.Error("Cancel of unknown job returned ok")
	}
	j, _ := s.Submit(Spec{Experiment: "fig12"})
	waitState(t, j)
	s.Cancel(j.ID) // must not disturb a terminal job
	if st := j.StateNow(); st != StateDone {
		t.Errorf("done job state after Cancel = %s", st)
	}
	if _, ok := j.Output(); !ok {
		t.Error("done job lost its output after a late Cancel")
	}
}

func TestJobTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := New(Config{MaxRunning: 1, CacheEntries: -1, runFn: fakeRun(release, nil)})
	defer s.Close()

	j, err := s.Submit(Spec{Experiment: "fig12", TimeoutSec: 0.02})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st := waitState(t, j); st != StateFailed {
		t.Fatalf("state = %s, want failed", st)
	}
	if st := j.Status(); !strings.Contains(st.Error, "timed out") {
		t.Errorf("error = %q, want a timeout message", st.Error)
	}
	if _, ok := j.Output(); ok {
		t.Error("timed-out job leaked output")
	}
}

func TestRunPanicBecomesFailed(t *testing.T) {
	s := New(Config{MaxRunning: 1, runFn: func(buf *bytes.Buffer, name string, p experiments.Params) error {
		panic("boom")
	}})
	defer s.Close()
	j, _ := s.Submit(Spec{Experiment: "fig12"})
	if st := waitState(t, j); st != StateFailed {
		t.Fatalf("state = %s, want failed", st)
	}
	if st := j.Status(); !strings.Contains(st.Error, "boom") {
		t.Errorf("error = %q, want the panic value", st.Error)
	}
}

func TestOutputCacheIgnoresWorkersAndTimeout(t *testing.T) {
	var calls int32
	s := New(Config{MaxRunning: 1, runFn: fakeRun(nil, &calls)})
	defer s.Close()

	j1, _ := s.Submit(Spec{Experiment: "fig12", Workers: 1})
	waitState(t, j1)
	out1, _ := j1.Output()

	// Same spec at a different worker count and timeout: cache hit, because
	// the determinism contract makes workers unobservable in the output.
	j2, err := s.Submit(Spec{Experiment: "fig12", Workers: 4, TimeoutSec: 99})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if st := waitState(t, j2); st != StateDone {
		t.Fatalf("cached job state = %s", st)
	}
	if st := j2.Status(); !st.CacheHit {
		t.Error("second submit was not a cache hit")
	}
	out2, _ := j2.Output()
	if !bytes.Equal(out1, out2) {
		t.Error("cache returned different bytes")
	}
	if calls != 1 {
		t.Errorf("runFn ran %d times, want 1", calls)
	}

	// A different seed is a different key.
	j3, _ := s.Submit(Spec{Experiment: "fig12", Seed: ptr(int64(7))})
	waitState(t, j3)
	if st := j3.Status(); st.CacheHit {
		t.Error("different seed wrongly hit the cache")
	}
	if calls != 2 {
		t.Errorf("runFn ran %d times, want 2", calls)
	}
}

func TestOutputCacheDisabledAndBounded(t *testing.T) {
	var calls int32
	s := New(Config{MaxRunning: 1, CacheEntries: -1, runFn: fakeRun(nil, &calls)})
	j, _ := s.Submit(Spec{Experiment: "fig12"})
	waitState(t, j)
	j2, _ := s.Submit(Spec{Experiment: "fig12"})
	waitState(t, j2)
	s.Close()
	if calls != 2 {
		t.Errorf("disabled cache: runFn ran %d times, want 2", calls)
	}

	// CacheEntries 1 evicts FIFO: fig12 is pushed out by fig13.
	calls = 0
	s = New(Config{MaxRunning: 1, CacheEntries: 1, runFn: fakeRun(nil, &calls)})
	defer s.Close()
	for _, exp := range []string{"fig12", "fig13", "fig12"} {
		j, _ := s.Submit(Spec{Experiment: exp})
		waitState(t, j)
	}
	if calls != 3 {
		t.Errorf("bounded cache: runFn ran %d times, want 3 (FIFO eviction)", calls)
	}
}

func TestJobTableRetention(t *testing.T) {
	s := New(Config{MaxRunning: 1, MaxJobs: 2, CacheEntries: -1, runFn: fakeRun(nil, nil)})
	defer s.Close()
	for seed := int64(1); seed <= 4; seed++ {
		j, err := s.Submit(Spec{Experiment: "fig12", Seed: ptr(seed)})
		if err != nil {
			t.Fatalf("submit seed=%d: %v", seed, err)
		}
		waitState(t, j)
	}
	// Eviction trails the terminal transition (the done channel closes
	// under the job lock, the table prunes under the server lock just
	// after), so poll briefly.
	deadline := newTimer(10 * time.Second)
	for len(s.Jobs()) != 2 {
		select {
		case <-deadline.C:
			t.Fatalf("Jobs() still has %d entries, want 2 after eviction", len(s.Jobs()))
		case <-newTimer(time.Millisecond).C:
		}
	}
	jobs := s.Jobs()
	if jobs[0].ID != "j3" || jobs[1].ID != "j4" {
		t.Errorf("retained jobs = %s,%s, want j3,j4 (oldest terminal evicted first)", jobs[0].ID, jobs[1].ID)
	}
	if _, ok := s.Get("j1"); ok {
		t.Error("evicted job j1 is still reachable by ID")
	}

	// Negative MaxJobs retains everything.
	s2 := New(Config{MaxRunning: 1, MaxJobs: -1, CacheEntries: -1, runFn: fakeRun(nil, nil)})
	defer s2.Close()
	for seed := int64(1); seed <= 4; seed++ {
		j, _ := s2.Submit(Spec{Experiment: "fig12", Seed: ptr(seed)})
		waitState(t, j)
	}
	if got := len(s2.Jobs()); got != 4 {
		t.Errorf("MaxJobs=-1 retained %d jobs, want all 4", got)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	s := New(Config{MaxRunning: 1, runFn: fakeRun(nil, nil)})
	s.Close()
	if _, err := s.Submit(Spec{Experiment: "fig12"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
}

func ptr[T any](v T) *T { return &v }

// --- HTTP layer ---

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
	}
	return resp, st
}

func TestHTTPSubmitStatusOutput(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxRunning: 1, runFn: fakeRun(nil, nil)})

	resp, st := postJob(t, ts, `{"experiment":"fig12","quick":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	j, ok := s.Get(st.ID)
	if !ok {
		t.Fatalf("job %s not in table", st.ID)
	}
	waitState(t, j)

	gr, err := http.Get(ts.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	var got Status
	json.NewDecoder(gr.Body).Decode(&got)
	gr.Body.Close()
	if got.State != StateDone {
		t.Fatalf("status state = %s, want done", got.State)
	}

	or, err := http.Get(ts.URL + "/jobs/" + st.ID + "/output")
	if err != nil {
		t.Fatalf("GET output: %v", err)
	}
	body, _ := io.ReadAll(or.Body)
	or.Body.Close()
	if or.StatusCode != http.StatusOK || !strings.Contains(string(body), "output of fig12") {
		t.Fatalf("GET output = %d %q", or.StatusCode, body)
	}
	if ct := or.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("output Content-Type = %q", ct)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, Config{MaxRunning: 1, MaxQueue: 1, CacheEntries: -1, runFn: fakeRun(release, nil)})

	// Bad JSON and bad specs are 400s.
	for _, body := range []string{`{`, `{"experiment":"nope"}`, `{"experiment":"fig12","bogus":1}`} {
		resp, _ := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, resp.StatusCode)
		}
	}

	// Unknown job IDs are 404s on every job route.
	for _, url := range []string{"/jobs/j999", "/jobs/j999/output", "/jobs/j999/stream"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", url, resp.StatusCode)
		}
	}
	cr, _ := http.Post(ts.URL+"/jobs/j999/cancel", "", nil)
	cr.Body.Close()
	if cr.StatusCode != http.StatusNotFound {
		t.Errorf("POST cancel unknown = %d, want 404", cr.StatusCode)
	}

	// Output of a non-done job is a 409.
	resp, st := postJob(t, ts, `{"experiment":"fig12"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
	or, _ := http.Get(ts.URL + "/jobs/" + st.ID + "/output")
	or.Body.Close()
	if or.StatusCode != http.StatusConflict {
		t.Errorf("GET output of unfinished job = %d, want 409", or.StatusCode)
	}

	// Fill queue: one running (above), one queued, then 503.
	postJob(t, ts, `{"experiment":"fig12","seed":2}`)
	fr, _ := postJob(t, ts, `{"experiment":"fig12","seed":3}`)
	if fr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST to full queue = %d, want 503", fr.StatusCode)
	}
}

func TestHTTPCancelAndStream(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, Config{MaxRunning: 1, CacheEntries: -1, runFn: fakeRun(release, nil)})

	_, st := postJob(t, ts, `{"experiment":"fig12"}`)

	// Open the stream, then cancel; the stream must end on a terminal line.
	sr, err := http.Get(ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer sr.Body.Close()
	if ct := sr.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}

	cr, err := http.Post(ts.URL+"/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("POST cancel: %v", err)
	}
	cr.Body.Close()
	if cr.StatusCode != http.StatusOK {
		t.Fatalf("POST cancel = %d", cr.StatusCode)
	}

	dec := json.NewDecoder(sr.Body)
	var last Status
	for {
		var line Status
		if err := dec.Decode(&line); err != nil {
			break
		}
		last = line
	}
	if last.State != StateCanceled {
		t.Fatalf("final stream state = %s, want canceled", last.State)
	}
}

func TestHTTPListJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRunning: 1, runFn: fakeRun(nil, nil)})
	postJob(t, ts, `{"experiment":"fig12"}`)
	postJob(t, ts, `{"experiment":"fig13"}`)
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	defer resp.Body.Close()
	var list []Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(list) != 2 || list[0].ID != "j1" || list[1].ID != "j2" {
		t.Fatalf("GET /jobs = %+v, want j1,j2 in submission order", list)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxRunning: 1, runFn: fakeRun(nil, nil)})

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || strings.TrimSpace(string(hb)) != "ok" {
		t.Fatalf("GET /healthz = %d %q", hr.StatusCode, hb)
	}

	// Run one real-ish job (fake run) and one cache hit, then read metrics.
	j, _ := s.Submit(Spec{Experiment: "fig12"})
	waitState(t, j)
	j2, _ := s.Submit(Spec{Experiment: "fig12"})
	waitState(t, j2)

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	m := string(mb)
	for _, want := range []string{
		"ssserve_jobs_submitted_total 2",
		"ssserve_jobs_rejected_total 0",
		"ssserve_jobs_queued ",
		"ssserve_jobs_running ",
		`ssserve_jobs_finished_total{state="done"} 1`,
		"ssserve_output_cache_hits_total 1",
		"ssserve_output_cache_misses_total 1",
		"ssserve_threshold_cache_hits_total",
		"ssserve_threshold_cache_misses_total",
		`ssserve_experiment_runs_total{experiment="fig12"} 1`,
		`ssserve_experiment_run_seconds_sum{experiment="fig12"}`,
		`ssserve_experiment_run_seconds_max{experiment="fig12"}`,
		"ssserve_goroutines ",
		"ssserve_heap_alloc_bytes ",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics page is missing %q\n%s", want, m)
		}
	}
}

func TestStatusProgressFromMonitor(t *testing.T) {
	// A runFn that drives the real engine with the job's monitor, so trial
	// progress surfaces in the job Status exactly as a real experiment's
	// would.
	s := New(Config{MaxRunning: 1, runFn: func(buf *bytes.Buffer, name string, p experiments.Params) error {
		engine.Map(engine.Config{Seed: p.Seed, Workers: 1, Monitor: p.Monitor}, 0, 5,
			func(trial int, rng *rand.Rand) int { return trial })
		buf.WriteString("done\n")
		return nil
	}})
	defer s.Close()
	j, _ := s.Submit(Spec{Experiment: "fig12"})
	waitState(t, j)
	st := j.Status()
	if st.Done != 5 || st.Total != 5 {
		t.Fatalf("progress = %d/%d, want 5/5", st.Done, st.Total)
	}
}

func TestPprofEndpointsServeProfiles(t *testing.T) {
	// The profiling routes are part of the service surface (operators
	// profile the netsim hot path in situ through them), so smoke-test that
	// the index and a cheap profile actually answer. The CPU profile
	// endpoint is skipped: it blocks for its sampling window.
	_, ts := newTestServer(t, Config{runFn: fakeRun(nil, nil)})
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/heap?debug=1",
		"/debug/pprof/goroutine?debug=1",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, body %q", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
	}
}
