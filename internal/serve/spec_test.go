package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"maps"
	"net/http"
	"net/http/httptest"
	"reflect"
	"slices"
	"strings"
	"testing"
)

// validScenarioJSON is examples/arrivals.json shrunk to one rate, small
// enough for unit tests that never run it.
const validScenarioJSON = `{
	"version": 1, "name": "t", "seed_offset": 18,
	"topology": {"family": "cell", "placements": 2, "aps": 2, "clients": 4},
	"traffic": {"model": "poisson", "payload_bytes": 1460, "rate_pps": 100, "window_sec": 0.5}
}`

// TestNormalizeRejectionTable drives every normalize() rejection path and
// pins that each error names what is wrong — these surface to clients as
// the body of a 400.
func TestNormalizeRejectionTable(t *testing.T) {
	cases := []struct {
		name    string
		spec    Spec
		wantSub string
	}{
		{"future version", Spec{Version: "v2", Experiment: "fig12"}, "v2"},
		{"garbage version", Spec{Version: "latest", Experiment: "fig12"}, "version"},
		{"missing experiment", Spec{}, "missing an experiment"},
		{"unknown experiment", Spec{Experiment: "nope"}, `"nope"`},
		{"negative workers", Spec{Experiment: "fig12", Workers: -1}, "workers"},
		{"negative timeout", Spec{Experiment: "fig12", TimeoutSec: -2}, "timeout_sec"},
		{"options and flat alias", Spec{Experiment: "cellsweep",
			Options: &Options{Cells: []int{2}}, Cells: []int{3}}, "both"},
		{"bad option value", Spec{Experiment: "cellsweep",
			Options: &Options{Cells: []int{0}}}, "cell count"},
		{"bad flat alias value", Spec{Experiment: "cellsweep",
			CSRanges: []float64{-1}}, "carrier-sense"},
		{"scenario without spec", Spec{Experiment: "scenario"}, "requires an inline"},
		{"scenario on other experiment", Spec{Experiment: "fig12",
			Scenario: json.RawMessage(validScenarioJSON)}, `only accepted with experiment "scenario"`},
		{"scenario with typo field", Spec{Experiment: "scenario",
			Scenario: json.RawMessage(`{"version":1,"name":"t",
				"topology":{"family":"cell","placements":2,"aps":2,"clients":4,"cs_rangs":20},
				"traffic":{"model":"poisson","payload_bytes":1460,"rate_pps":100,"window_sec":0.5}}`)},
			"cs_rangs"},
		{"scenario failing validation", Spec{Experiment: "scenario",
			Scenario: json.RawMessage(`{"version":1,"name":"t",
				"topology":{"family":"cell","placements":2,"aps":2,"clients":4},
				"traffic":{"model":"poisson","payload_bytes":1460,"window_sec":0.5}}`)},
			"rate_pps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.normalize()
			if err == nil {
				t.Fatal("bad spec accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestNormalizeFoldsFlatAliases pins the backward-compatible wire format:
// a pre-versioning client's flat fields land in the canonical Options
// sub-object, and both spellings produce the same cache key.
func TestNormalizeFoldsFlatAliases(t *testing.T) {
	flat, err := Spec{Experiment: "cellsweep", Cells: []int{2, 4},
		CSRanges: []float64{25}, WindowSec: 1.5}.normalize()
	if err != nil {
		t.Fatalf("flat spelling rejected: %v", err)
	}
	structured, err := Spec{Version: "v1", Experiment: "cellsweep",
		Options: &Options{Cells: []int{2, 4}, CSRanges: []float64{25}, WindowSec: 1.5}}.normalize()
	if err != nil {
		t.Fatalf("structured spelling rejected: %v", err)
	}
	if flat.Options == nil || !reflect.DeepEqual(flat.Options, structured.Options) {
		t.Fatalf("flat aliases not folded: %+v vs %+v", flat.Options, structured.Options)
	}
	if flat.flatOptionsSet() {
		t.Fatalf("flat fields survive normalization: %+v", flat)
	}
	if flat.Key() != structured.Key() {
		t.Fatalf("same job, different cache keys:\n %s\n %s", flat.Key(), structured.Key())
	}
}

// TestScenarioKeyIsWhitespaceBlind pins that re-submitting the same
// scenario with different formatting hits the same cache entry, while a
// semantically different scenario does not.
func TestScenarioKeyIsWhitespaceBlind(t *testing.T) {
	a, err := Spec{Experiment: "scenario", Scenario: json.RawMessage(validScenarioJSON)}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, []byte(validScenarioJSON)); err != nil {
		t.Fatal(err)
	}
	b, err := Spec{Experiment: "scenario", Scenario: compact.Bytes()}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("formatting reached the cache key:\n %s\n %s", a.Key(), b.Key())
	}
	other := strings.Replace(validScenarioJSON, `"rate_pps": 100`, `"rate_pps": 200`, 1)
	c, err := Spec{Experiment: "scenario", Scenario: json.RawMessage(other)}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() == c.Key() {
		t.Fatal("different scenarios share a cache key")
	}
}

// TestSubmitHTTPRejectionsAre400 exercises the rejection paths through
// the real handler: each bad body must produce a 400 whose JSON error
// names the offending field.
func TestSubmitHTTPRejectionsAre400(t *testing.T) {
	s := New(Config{MaxRunning: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	cases := []struct {
		name    string
		body    string
		wantSub string
	}{
		{"unknown spec field", `{"experiment":"fig12","cs_rangs":[20]}`, "cs_rangs"},
		{"future version", `{"version":"v2","experiment":"fig12"}`, "v2"},
		{"options/flat conflict", `{"experiment":"cellsweep","options":{"cells":[2]},"cells":[3]}`, "both"},
		{"scenario typo", `{"experiment":"scenario","scenario":{"version":1,"name":"t",
			"topology":{"family":"cell","placements":2,"aps":2,"clients":4,"cs_rangs":20},
			"traffic":{"model":"poisson","payload_bytes":1460,"rate_pps":100,"window_sec":0.5}}}`, "cs_rangs"},
		{"scenario missing", `{"experiment":"scenario"}`, "requires an inline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e errorBody
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e.Error, tc.wantSub) {
				t.Fatalf("400 body %q does not mention %q", e.Error, tc.wantSub)
			}
		})
	}
}

// TestSpecEndpointMatchesSpecStruct holds GET /spec to the Spec struct:
// every JSON tag the struct accepts must be documented, and nothing else.
func TestSpecEndpointMatchesSpecStruct(t *testing.T) {
	s := New(Config{MaxRunning: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/spec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc SpecDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != "v1" {
		t.Errorf("doc version %q", doc.Version)
	}

	check := func(section string, got map[string]string, typ reflect.Type) {
		want := map[string]bool{}
		for i := 0; i < typ.NumField(); i++ {
			tag := strings.Split(typ.Field(i).Tag.Get("json"), ",")[0]
			if tag != "" && tag != "-" {
				want[tag] = true
			}
		}
		for _, tag := range slices.Sorted(maps.Keys(want)) {
			if got[tag] == "" {
				t.Errorf("GET /spec %s omits field %q", section, tag)
			}
		}
		for _, tag := range slices.Sorted(maps.Keys(got)) {
			if !want[tag] {
				t.Errorf("GET /spec %s documents %q, which Spec does not accept", section, tag)
			}
		}
	}
	check("fields", doc.Fields, reflect.TypeOf(Spec{}))
	check("options", doc.Options, reflect.TypeOf(Options{}))

	found := false
	for _, name := range doc.Experiments {
		if name == "scenario" {
			found = true
		}
	}
	if !found {
		t.Errorf("GET /spec experiments omit \"scenario\": %v", doc.Experiments)
	}
}
