package serve

import "time"

// Wall-clock access for the whole package is confined to this file. The
// daemon legitimately needs real time — job timeouts, queue/run latency
// metrics, stream pacing — but none of it may reach simulation state: a
// job's output bytes stay a pure function of its spec (see
// docs/ARCHITECTURE.md, "determinism contract"). Keeping every clock read
// behind these three helpers keeps the sslint detwallclock sanctions
// auditable in one place; everything else in the package is clock-free by
// construction.

// now returns the current wall-clock time for job timestamps.
func now() time.Time { return time.Now() } //sslint:allow detwallclock service-layer timestamps; job output stays a pure function of the spec

// since measures elapsed wall-clock time for latency metrics.
func since(t time.Time) time.Duration { return time.Since(t) } //sslint:allow detwallclock service-layer latency metrics; job output stays a pure function of the spec

// newTimer backs job timeouts and stream pacing.
func newTimer(d time.Duration) *time.Timer { return time.NewTimer(d) } //sslint:allow detwallclock service-layer timeout/pacing timer; job output stays a pure function of the spec
