package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/experiments"
)

// Endpoints lists every route the daemon serves, in the notation
// Handler registers them with. docs_test.go holds docs/ARCHITECTURE.md to
// this list (the endpoints analogue of the experiments docs-freshness
// gate), so adding a route without documenting it fails CI.
func Endpoints() []string {
	return []string{
		"POST /jobs",
		"GET /jobs",
		"GET /jobs/{id}",
		"GET /jobs/{id}/output",
		"GET /jobs/{id}/stream",
		"POST /jobs/{id}/cancel",
		"GET /spec",
		"GET /healthz",
		"GET /metrics",
		"GET /debug/pprof/",
	}
}

// Handler returns the daemon's HTTP API:
//
//	POST /jobs                submit a Spec, get its Status (202)
//	GET  /jobs                all jobs, submission order
//	GET  /jobs/{id}           one job's Status
//	GET  /jobs/{id}/output    the exact ssbench stdout bytes (200 when done)
//	GET  /jobs/{id}/stream    chunked JSON status lines until terminal
//	POST /jobs/{id}/cancel    cooperative cancellation
//	GET  /spec                the accepted job-spec wire format
//	GET  /healthz             liveness
//	GET  /metrics             Prometheus-style text counters
//	GET  /debug/pprof/        live runtime profiles (CPU, heap, goroutine, ...)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/output", s.handleOutput)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /spec", s.handleSpec)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Profiling is read-only introspection of the service process: it can
	// never touch job output (profiles observe the scheduler, they don't
	// perturb RNG draws or event order), so exposing it unconditionally is
	// safe under the determinism contract. This is how the netsim hot path
	// gets profiled in situ — submit a big job, then fetch
	// /debug/pprof/profile while it runs.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "%v: retry later", err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// jobFor resolves the {id} path segment, writing a 404 when unknown.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleOutput(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	out, done := j.Output()
	if !done {
		st := j.Status()
		writeError(w, http.StatusConflict, "job %s is %s, not done%s", j.ID, st.State, errSuffix(st.Error))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(out) //nolint:errcheck // client gone; nothing to do
}

// errSuffix formats a job error for embedding in a message.
func errSuffix(errMsg string) string {
	if errMsg == "" {
		return ""
	}
	return ": " + errMsg
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// streamInterval paces the progress stream: one status line per tick (or
// sooner, on the terminal transition).
const streamInterval = 100 * time.Millisecond

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		st := j.Status()
		if err := enc.Encode(st); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.State.terminal() {
			return
		}
		tm := newTimer(streamInterval)
		select {
		case <-j.Done():
			tm.Stop()
		case <-tm.C:
		case <-r.Context().Done():
			tm.Stop()
			return
		}
	}
}

// SpecDoc is the machine-readable description of the job wire format
// served at GET /spec, so clients can discover the accepted fields (and
// the experiment names this build registers) without reading the source.
type SpecDoc struct {
	// Version is the wire-format version this server speaks.
	Version string `json:"version"`
	// Experiments lists every name POST /jobs accepts, plus "all".
	Experiments []string `json:"experiments"`
	// Fields maps each accepted top-level spec field to its meaning.
	Fields map[string]string `json:"fields"`
	// Options maps each field of the "options" sub-object to its meaning.
	Options map[string]string `json:"options"`
}

// specDoc builds the GET /spec response. The field lists are maintained
// by hand next to the Spec struct's tags; the serve unit tests hold them
// in sync by diffing against the struct's actual JSON keys.
func specDoc() SpecDoc {
	return SpecDoc{
		Version:     "v1",
		Experiments: append(experiments.Names(), "all", "scenario"),
		Fields: map[string]string{
			"version":     `wire-format version: omit or "v1"`,
			"experiment":  "registered experiment name, or \"all\" (required)",
			"seed":        "base random seed (default 1)",
			"quick":       "run the shrunken ~10x-faster workloads",
			"workers":     "engine worker bound; 0 = one per CPU (never changes output bytes)",
			"options":     "experiment-shaping knobs; see \"options\" below",
			"scenario":    `inline declarative scenario spec; required by and exclusive to experiment "scenario"`,
			"timeout_sec": "cap on run time; 0 = server default",
			"cells":       "deprecated flat alias for options.cells",
			"cs_ranges":   "deprecated flat alias for options.cs_ranges",
			"window_sec":  "deprecated flat alias for options.window_sec",
			"legacy":      "deprecated flat alias for options.legacy",
		},
		Options: map[string]string{
			"cells":      "cellsweep's capacity-vs-cell-count sweep",
			"cs_ranges":  "cellsweep's carrier-sense sweep (meters)",
			"window_sec": "fixed-time-window saturation mode",
			"legacy":     "pre-model interference behavior",
		},
	}
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, specDoc())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.render(w, len(s.queue))
}
