package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

// Options groups the experiment-shaping knobs (ssbench's -cells, -cs,
// -window, -legacy) into one typed sub-object of the job spec. It mirrors
// experiments.Options field for field, so a spec's options translate into
// Params without interpretation.
type Options struct {
	// Cells is cellsweep's capacity-vs-cell-count sweep (ssbench -cells).
	Cells []int `json:"cells,omitempty"`
	// CSRanges is cellsweep's carrier-sense sweep in meters (ssbench -cs).
	CSRanges []float64 `json:"cs_ranges,omitempty"`
	// WindowSec selects fixed-time-window saturation mode (ssbench -window).
	WindowSec float64 `json:"window_sec,omitempty"`
	// Legacy selects the pre-model interference behavior (ssbench -legacy).
	Legacy bool `json:"legacy,omitempty"`
}

// Spec is the client-facing description of one experiment job, as posted
// to POST /jobs. The zero value of every optional field means "ssbench's
// default": seed nil is seed 1, empty sweep lists are the standard sweep
// points, workers 0 is one engine worker per CPU.
//
// The wire format is versioned: "version" empty or "v1" selects this
// format; anything else is rejected so a future v2 can change semantics
// without silently misreading old clients. The experiment-shaping knobs
// live in the "options" sub-object; the original flat spellings (cells,
// cs_ranges, window_sec, legacy) remain accepted as aliases for
// backward compatibility, but mixing the two forms in one spec is
// rejected rather than guessed at.
type Spec struct {
	// Version selects the wire format: "" or "v1". Anything else is a 400.
	Version string `json:"version,omitempty"`
	// Experiment is a registered experiment name or "all" (ssbench's
	// argument). Case-insensitive.
	Experiment string `json:"experiment"`
	// Seed is the base random seed; nil means ssbench's default of 1.
	Seed *int64 `json:"seed,omitempty"`
	// Quick runs the shrunken ~10x-faster workloads (ssbench -quick).
	Quick bool `json:"quick,omitempty"`
	// Workers bounds the engine's parallelism for this job (ssbench
	// -workers): 0 is one worker per CPU, 1 is serial. By the determinism
	// contract it cannot change the output bytes, so it is excluded from
	// the job's cache key.
	Workers int `json:"workers,omitempty"`
	// Options groups the experiment-shaping knobs. After normalize it is
	// always non-nil with the default sweeps filled in; on the wire it may
	// be omitted in favor of the flat aliases below.
	Options *Options `json:"options,omitempty"`
	// Scenario is an inline declarative scenario spec (the same JSON
	// ssbench -scenario reads from a file), required by — and only
	// accepted with — the generic "scenario" experiment. It is parsed
	// strictly: unknown fields are rejected by name.
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// TimeoutSec caps this job's run time; 0 uses the server's default.
	// A timed-out job is cooperatively canceled and reported failed.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`

	// Flat aliases for Options, the pre-versioning wire spelling. Folded
	// into Options by normalize; setting both forms at once is an error.
	Cells     []int     `json:"cells,omitempty"`
	CSRanges  []float64 `json:"cs_ranges,omitempty"`
	WindowSec float64   `json:"window_sec,omitempty"`
	Legacy    bool      `json:"legacy,omitempty"`
}

// flatOptionsSet reports whether any of the flat alias fields is set.
func (sp Spec) flatOptionsSet() bool {
	return len(sp.Cells) > 0 || len(sp.CSRanges) > 0 || sp.WindowSec != 0 || sp.Legacy
}

// normalize lower-cases the experiment, folds the flat option aliases
// into the Options sub-object, fills defaults, and validates, returning
// the canonical Spec every later stage (cache key, params) uses.
func (sp Spec) normalize() (Spec, error) {
	if sp.Version != "" && sp.Version != "v1" {
		return sp, fmt.Errorf("unsupported spec version %q (this server speaks \"v1\"; omit the field or send \"v1\")", sp.Version)
	}
	sp.Experiment = strings.ToLower(strings.TrimSpace(sp.Experiment))
	if sp.Experiment == "" {
		return sp, fmt.Errorf("spec is missing an experiment name (one of %s, or \"all\")",
			strings.Join(experiments.Names(), ", "))
	}
	if !experiments.IsName(sp.Experiment) {
		return sp, fmt.Errorf("unknown experiment %q (known: %s, or \"all\")",
			sp.Experiment, strings.Join(experiments.Names(), ", "))
	}
	if sp.Seed == nil {
		one := int64(1)
		sp.Seed = &one
	}
	if sp.Workers < 0 {
		return sp, fmt.Errorf("workers %d < 0", sp.Workers)
	}
	if sp.TimeoutSec < 0 {
		return sp, fmt.Errorf("timeout_sec %g < 0", sp.TimeoutSec)
	}
	switch {
	case sp.Options != nil && sp.flatOptionsSet():
		return sp, fmt.Errorf(`spec sets both the "options" object and a flat option field (cells, cs_ranges, window_sec, or legacy); use one form`)
	case sp.Options == nil:
		sp.Options = &Options{Cells: sp.Cells, CSRanges: sp.CSRanges,
			WindowSec: sp.WindowSec, Legacy: sp.Legacy}
	}
	sp.Cells, sp.CSRanges, sp.WindowSec, sp.Legacy = nil, nil, 0, false
	d := experiments.DefaultParams()
	if len(sp.Options.Cells) == 0 {
		sp.Options.Cells = d.Options.Cells
	}
	if len(sp.Options.CSRanges) == 0 {
		sp.Options.CSRanges = d.Options.CSRanges
	}
	switch {
	case sp.Experiment == "scenario" && len(sp.Scenario) == 0:
		return sp, fmt.Errorf(`experiment "scenario" requires an inline "scenario" spec object`)
	case sp.Experiment != "scenario" && len(sp.Scenario) > 0:
		return sp, fmt.Errorf(`"scenario" is only accepted with experiment "scenario", not %q`, sp.Experiment)
	case len(sp.Scenario) > 0:
		if _, err := scenario.Parse(sp.Scenario); err != nil {
			return sp, fmt.Errorf("bad scenario spec: %w", err)
		}
		// Canonicalize the raw bytes so the cache key is whitespace-blind.
		var compact bytes.Buffer
		if err := json.Compact(&compact, sp.Scenario); err != nil {
			return sp, fmt.Errorf("bad scenario spec: %w", err)
		}
		sp.Scenario = json.RawMessage(compact.Bytes())
	}
	if err := sp.params(nil).Validate(); err != nil {
		return sp, err
	}
	return sp, nil
}

// params translates the (normalized) Spec into experiments.Params, wiring
// in the job's monitor for progress and cooperative cancellation.
func (sp Spec) params(m *engine.Monitor) experiments.Params {
	seed := int64(1)
	if sp.Seed != nil {
		seed = *sp.Seed
	}
	opts := experiments.Options{}
	if sp.Options != nil {
		opts = experiments.Options(*sp.Options)
	}
	p := experiments.Params{
		Seed:    seed,
		Quick:   sp.Quick,
		Workers: sp.Workers,
		Options: opts,
		Monitor: m,
	}
	if len(sp.Scenario) > 0 {
		// Already validated by normalize; a parse failure here would mean
		// the spec was mutated after normalization.
		scen, err := scenario.Parse(sp.Scenario)
		if err != nil {
			panic(fmt.Sprintf("normalized spec no longer parses: %v", err))
		}
		p.Scenario = scen
	}
	return p
}

// Key is the output-cache key of a normalized Spec: every field that can
// reach the output bytes, and nothing else. Workers is deliberately
// absent — the determinism contract pins output byte-identical at any
// worker count, so a seed-1 quick fig12 at 1 worker and at 8 workers are
// the same cache entry (the e2e suite proves the contract holds).
// TimeoutSec is absent too: it changes whether a job finishes, never what
// a finished job printed — and Version likewise, since "" and "v1" name
// the same format. The scenario bytes are included compacted, so
// re-submitting the same spec with different whitespace still hits.
func (sp Spec) Key() string {
	seed := int64(1)
	if sp.Seed != nil {
		seed = *sp.Seed
	}
	o := Options{}
	if sp.Options != nil {
		o = *sp.Options
	}
	return fmt.Sprintf("%s|seed=%d|quick=%t|cells=%v|cs=%v|window=%g|legacy=%t|scenario=%s",
		sp.Experiment, seed, sp.Quick, o.Cells, o.CSRanges, o.WindowSec, o.Legacy, sp.Scenario)
}

// State is a job's lifecycle position. Terminal states are done, failed,
// and canceled.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether a job in this state will never change again.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one submitted experiment run and its lifecycle.
type Job struct {
	// ID is the server-assigned identifier ("j1", "j2", ...).
	ID string
	// Spec is the normalized spec the job runs.
	Spec Spec

	monitor *engine.Monitor

	mu        sync.Mutex
	state     State
	output    []byte
	errMsg    string
	cacheHit  bool
	cancelReq bool
	timedOut  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	queuedFor time.Duration
	ranFor    time.Duration
	done      chan struct{} // closed when the job reaches a terminal state
}

// Status is the JSON view of a job returned by the status endpoints.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Spec  Spec   `json:"spec"`
	// CacheHit marks a job served from the output cache: it was born done
	// without consuming a worker.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Error explains failed and canceled states.
	Error string `json:"error,omitempty"`
	// Done/Total are engine trial progress. Total grows as an
	// experiment's successive stages start, so Done/Total underestimates
	// completion until the final stage is scheduled.
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// QueuedMs and RunMs are wall-clock milliseconds spent waiting and
	// running (RunMs is present once the job finished).
	QueuedMs float64 `json:"queued_ms"`
	RunMs    float64 `json:"run_ms,omitempty"`
}

// Status snapshots the job for JSON rendering.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	done, total := j.monitor.Progress()
	st := Status{
		ID:       j.ID,
		State:    j.state,
		Spec:     j.Spec,
		CacheHit: j.cacheHit,
		Error:    j.errMsg,
		Done:     done,
		Total:    total,
	}
	switch {
	case j.state == StateQueued:
		st.QueuedMs = float64(since(j.submitted)) / float64(time.Millisecond)
	default:
		st.QueuedMs = float64(j.queuedFor) / float64(time.Millisecond)
	}
	if j.state.terminal() && !j.started.IsZero() {
		st.RunMs = float64(j.ranFor) / float64(time.Millisecond)
	} else if j.state == StateRunning {
		st.RunMs = float64(since(j.started)) / float64(time.Millisecond)
	}
	return st
}

// StateNow returns the job's current state.
func (j *Job) StateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Output returns the job's output bytes if it completed successfully.
func (j *Job) Output() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.output, true
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }
