package serve

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
)

// Spec is the client-facing description of one experiment job, as posted
// to POST /jobs. The zero value of every optional field means "ssbench's
// default": seed nil is seed 1, empty sweep lists are the standard sweep
// points, workers 0 is one engine worker per CPU.
type Spec struct {
	// Experiment is a registered experiment name or "all" (ssbench's
	// argument). Case-insensitive.
	Experiment string `json:"experiment"`
	// Seed is the base random seed; nil means ssbench's default of 1.
	Seed *int64 `json:"seed,omitempty"`
	// Quick runs the shrunken ~10x-faster workloads (ssbench -quick).
	Quick bool `json:"quick,omitempty"`
	// Workers bounds the engine's parallelism for this job (ssbench
	// -workers): 0 is one worker per CPU, 1 is serial. By the determinism
	// contract it cannot change the output bytes, so it is excluded from
	// the job's cache key.
	Workers int `json:"workers,omitempty"`
	// Cells is cellsweep's capacity-vs-cell-count sweep (ssbench -cells).
	Cells []int `json:"cells,omitempty"`
	// CSRanges is cellsweep's carrier-sense sweep in meters (ssbench -cs).
	CSRanges []float64 `json:"cs_ranges,omitempty"`
	// WindowSec selects fixed-time-window saturation mode (ssbench -window).
	WindowSec float64 `json:"window_sec,omitempty"`
	// Legacy selects the pre-model interference behavior (ssbench -legacy).
	Legacy bool `json:"legacy,omitempty"`
	// TimeoutSec caps this job's run time; 0 uses the server's default.
	// A timed-out job is cooperatively canceled and reported failed.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// normalize lower-cases the experiment, fills defaults, and validates,
// returning the canonical Spec every later stage (cache key, params) uses.
func (sp Spec) normalize() (Spec, error) {
	sp.Experiment = strings.ToLower(strings.TrimSpace(sp.Experiment))
	if sp.Experiment == "" {
		return sp, fmt.Errorf("spec is missing an experiment name (one of %s, or \"all\")",
			strings.Join(experiments.Names(), ", "))
	}
	if !experiments.IsName(sp.Experiment) {
		return sp, fmt.Errorf("unknown experiment %q (known: %s, or \"all\")",
			sp.Experiment, strings.Join(experiments.Names(), ", "))
	}
	if sp.Seed == nil {
		one := int64(1)
		sp.Seed = &one
	}
	if sp.Workers < 0 {
		return sp, fmt.Errorf("workers %d < 0", sp.Workers)
	}
	if sp.TimeoutSec < 0 {
		return sp, fmt.Errorf("timeout_sec %g < 0", sp.TimeoutSec)
	}
	d := experiments.DefaultParams()
	if len(sp.Cells) == 0 {
		sp.Cells = d.Cells
	}
	if len(sp.CSRanges) == 0 {
		sp.CSRanges = d.CSRanges
	}
	if err := sp.params(nil).Validate(); err != nil {
		return sp, err
	}
	return sp, nil
}

// params translates the (normalized) Spec into experiments.Params, wiring
// in the job's monitor for progress and cooperative cancellation.
func (sp Spec) params(m *engine.Monitor) experiments.Params {
	seed := int64(1)
	if sp.Seed != nil {
		seed = *sp.Seed
	}
	return experiments.Params{
		Seed:      seed,
		Quick:     sp.Quick,
		Workers:   sp.Workers,
		Cells:     sp.Cells,
		CSRanges:  sp.CSRanges,
		WindowSec: sp.WindowSec,
		Legacy:    sp.Legacy,
		Monitor:   m,
	}
}

// Key is the output-cache key of a normalized Spec: every field that can
// reach the output bytes, and nothing else. Workers is deliberately
// absent — the determinism contract pins output byte-identical at any
// worker count, so a seed-1 quick fig12 at 1 worker and at 8 workers are
// the same cache entry (the e2e suite proves the contract holds).
// TimeoutSec is absent too: it changes whether a job finishes, never what
// a finished job printed.
func (sp Spec) Key() string {
	seed := int64(1)
	if sp.Seed != nil {
		seed = *sp.Seed
	}
	return fmt.Sprintf("%s|seed=%d|quick=%t|cells=%v|cs=%v|window=%g|legacy=%t",
		sp.Experiment, seed, sp.Quick, sp.Cells, sp.CSRanges, sp.WindowSec, sp.Legacy)
}

// State is a job's lifecycle position. Terminal states are done, failed,
// and canceled.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether a job in this state will never change again.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one submitted experiment run and its lifecycle.
type Job struct {
	// ID is the server-assigned identifier ("j1", "j2", ...).
	ID string
	// Spec is the normalized spec the job runs.
	Spec Spec

	monitor *engine.Monitor

	mu        sync.Mutex
	state     State
	output    []byte
	errMsg    string
	cacheHit  bool
	cancelReq bool
	timedOut  bool
	submitted time.Time
	started   time.Time
	finished  time.Time
	queuedFor time.Duration
	ranFor    time.Duration
	done      chan struct{} // closed when the job reaches a terminal state
}

// Status is the JSON view of a job returned by the status endpoints.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Spec  Spec   `json:"spec"`
	// CacheHit marks a job served from the output cache: it was born done
	// without consuming a worker.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Error explains failed and canceled states.
	Error string `json:"error,omitempty"`
	// Done/Total are engine trial progress. Total grows as an
	// experiment's successive stages start, so Done/Total underestimates
	// completion until the final stage is scheduled.
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// QueuedMs and RunMs are wall-clock milliseconds spent waiting and
	// running (RunMs is present once the job finished).
	QueuedMs float64 `json:"queued_ms"`
	RunMs    float64 `json:"run_ms,omitempty"`
}

// Status snapshots the job for JSON rendering.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	done, total := j.monitor.Progress()
	st := Status{
		ID:       j.ID,
		State:    j.state,
		Spec:     j.Spec,
		CacheHit: j.cacheHit,
		Error:    j.errMsg,
		Done:     done,
		Total:    total,
	}
	switch {
	case j.state == StateQueued:
		st.QueuedMs = float64(since(j.submitted)) / float64(time.Millisecond)
	default:
		st.QueuedMs = float64(j.queuedFor) / float64(time.Millisecond)
	}
	if j.state.terminal() && !j.started.IsZero() {
		st.RunMs = float64(j.ranFor) / float64(time.Millisecond)
	} else if j.state == StateRunning {
		st.RunMs = float64(since(j.started)) / float64(time.Millisecond)
	}
	return st
}

// StateNow returns the job's current state.
func (j *Job) StateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Output returns the job's output bytes if it completed successfully.
func (j *Job) Output() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.output, true
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }
