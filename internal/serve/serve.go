// Package serve is the long-running simulation job service behind
// cmd/ssserve: experiment jobs arrive over an HTTP/JSON API, run on the
// deterministic internal/engine worker pool, and produce output
// byte-identical to a batch `ssbench` run of the same spec — at any
// worker count and under arbitrary job interleaving. That byte-identity
// is the repo's determinism contract lifted to service scale, and it is
// what makes the output cache sound: a completed job's bytes are a pure
// function of its spec (minus workers/timeout), so identical re-submits
// are served from memory.
//
// Concurrency discipline: this package is, alongside internal/engine, the
// only code sanctioned to use goroutines, channels, select, and sync
// primitives (enforced by sslint's detgoroutine). Nothing here may leak
// scheduling order into job output — jobs render through
// internal/experiments into private buffers, and every shared structure
// (job table, cache, metrics) is observability or transport, never
// simulation state. Wall-clock reads are confined to clock.go.
package serve

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
)

// Config sizes the service.
type Config struct {
	// MaxRunning is the number of jobs executing concurrently (the job
	// queue's consumer pool). 0 means GOMAXPROCS. Each running job
	// additionally fans its trials across Spec.Workers engine workers.
	MaxRunning int
	// MaxQueue bounds jobs accepted but not yet running; a submit beyond
	// it is rejected with ErrQueueFull (HTTP 503). 0 means 64.
	MaxQueue int
	// JobTimeout caps a job's run time when its spec does not set one.
	// 0 means 15 minutes; negative means no default timeout.
	JobTimeout time.Duration
	// CacheEntries bounds the completed-output cache (FIFO eviction).
	// 0 means 256; negative disables caching entirely.
	CacheEntries int
	// MaxJobs bounds the job table: once more than MaxJobs jobs have
	// reached a terminal state, the oldest terminal jobs — and the output
	// bytes they pin — are evicted, so a long-lived daemon's memory does
	// not grow with every job ever submitted. Queued and running jobs are
	// never evicted; an evicted ID turns into 404 on the job routes.
	// 0 means 4096; negative retains every job forever.
	MaxJobs int

	// runFn renders one experiment; tests substitute a controllable fake.
	// nil means experiments.Run.
	runFn func(buf *bytes.Buffer, name string, p experiments.Params) error
}

// withDefaults resolves the zero values documented on Config.
func (c Config) withDefaults() Config {
	if c.MaxRunning <= 0 {
		c.MaxRunning = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 4096
	}
	if c.runFn == nil {
		c.runFn = func(buf *bytes.Buffer, name string, p experiments.Params) error {
			return experiments.Run(buf, name, p)
		}
	}
	return c
}

// ErrQueueFull rejects a submit when the bounded job queue is at capacity.
var ErrQueueFull = errors.New("job queue is full")

// ErrClosed rejects submits after Close.
var ErrClosed = errors.New("server is shut down")

// Server owns the job table, the bounded queue, the runner pool, and the
// output cache. Create with New, expose with Handler, stop with Close.
type Server struct {
	cfg   Config
	queue chan *Job
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool
	nextID int
	jobs   map[string]*Job
	order  []string // submission order, for GET /jobs
	doneQ  []string // terminal jobs in settlement order, for MaxJobs eviction
	cache  map[string][]byte
	cacheQ []string // FIFO eviction order

	metrics metrics
}

// New starts a Server: cfg.MaxRunning runner goroutines consuming a
// cfg.MaxQueue-deep job queue.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *Job, cfg.MaxQueue),
		jobs:  map[string]*Job{},
		cache: map[string][]byte{},
	}
	s.metrics.init()
	s.wg.Add(cfg.MaxRunning)
	for i := 0; i < cfg.MaxRunning; i++ {
		go s.runner()
	}
	return s
}

// Close stops accepting jobs, cancels everything queued or running, and
// waits for the runner pool to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	for _, id := range ids {
		s.Cancel(id)
	}
	close(s.queue)
	s.wg.Wait()
}

// Submit validates and enqueues one job. A spec whose output is already
// cached completes instantly without consuming a queue slot or worker.
func (s *Server) Submit(spec Spec) (*Job, error) {
	norm, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	job := &Job{
		Spec:      norm,
		monitor:   &engine.Monitor{},
		state:     StateQueued,
		submitted: now(),
		done:      make(chan struct{}),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	cached, hit := s.cache[norm.Key()]
	if !hit {
		// Reserve the queue slot before the job enters the table, while
		// still holding s.mu. A rejected submit then needs no rollback (a
		// rollback after re-acquiring the lock could race a concurrent
		// submit and drop the wrong entry from s.order), and the
		// non-blocking send is ordered against Close — which sets closed
		// under this same lock before closing the channel — so it can
		// never hit a closed queue.
		select {
		case s.queue <- job:
		default:
			s.mu.Unlock()
			s.metrics.reject()
			return nil, ErrQueueFull
		}
	}
	s.nextID++
	job.ID = fmt.Sprintf("j%d", s.nextID)
	if hit {
		job.state = StateDone
		job.output = cached
		job.cacheHit = true
		job.finished = job.submitted
		close(job.done)
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if hit {
		s.retireLocked(job.ID)
	}
	s.mu.Unlock()

	s.metrics.submit(hit)
	return job, nil
}

// retireLocked records that a job reached a terminal state and evicts
// the oldest terminal jobs beyond cfg.MaxJobs, bounding the job table
// (and the output bytes it pins) the same way cacheQ bounds the output
// cache. Queued and running jobs never enter doneQ, so they are never
// evicted. The caller holds s.mu.
func (s *Server) retireLocked(id string) {
	if s.cfg.MaxJobs <= 0 {
		return
	}
	s.doneQ = append(s.doneQ, id)
	for len(s.doneQ) > s.cfg.MaxJobs {
		old := s.doneQ[0]
		s.doneQ = s.doneQ[1:]
		delete(s.jobs, old)
		if i := slices.Index(s.order, old); i >= 0 {
			s.order = slices.Delete(s.order, i, i+1)
		}
	}
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every known job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel requests cooperative cancellation of a job. A queued job is
// canceled immediately; a running one stops at the engine's next trial
// boundary (or the experiment's next stage boundary) and its partial
// output is discarded. Terminal jobs are left untouched.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Get(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	j.cancelReq = true
	j.monitor.Cancel()
	settled := false
	if j.state == StateQueued {
		// The runner will skip it when it pops; settle it now so clients
		// see the terminal state immediately.
		j.state = StateCanceled
		j.errMsg = "canceled while queued"
		j.finished = now()
		j.queuedFor = j.finished.Sub(j.submitted)
		close(j.done)
		settled = true
	}
	j.mu.Unlock()
	if settled {
		s.mu.Lock()
		s.retireLocked(j.ID)
		s.mu.Unlock()
		s.metrics.finished(j.Spec.Experiment, StateCanceled, 0)
	}
	return j, true
}

// runner consumes the job queue until Close.
func (s *Server) runner() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runResult is what a job's render goroutine hands back to its runner.
type runResult struct {
	out []byte
	err error
}

// runJob executes one dequeued job: spawn the render, enforce the
// timeout, settle the terminal state, and feed the cache and metrics.
func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued {
		// Canceled while queued; already settled.
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = now()
	job.queuedFor = job.started.Sub(job.submitted)
	job.mu.Unlock()
	s.metrics.runningDelta(+1)
	defer s.metrics.runningDelta(-1)

	timeout := s.cfg.JobTimeout
	if job.Spec.TimeoutSec > 0 {
		timeout = time.Duration(job.Spec.TimeoutSec * float64(time.Second))
	}

	resCh := make(chan runResult, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				resCh <- runResult{err: fmt.Errorf("experiment panicked: %v", p)}
			}
		}()
		var buf bytes.Buffer
		err := s.cfg.runFn(&buf, job.Spec.Experiment, job.Spec.params(job.monitor))
		resCh <- runResult{out: buf.Bytes(), err: err}
	}()

	var res runResult
	if timeout > 0 {
		tm := newTimer(timeout)
		select {
		case res = <-resCh:
			tm.Stop()
		case <-tm.C:
			// Cooperative cancellation: the engine stops scheduling new
			// trials; we still wait for in-flight trials to finish so the
			// render goroutine never outlives its job.
			job.mu.Lock()
			job.timedOut = true
			job.mu.Unlock()
			job.monitor.Cancel()
			res = <-resCh
		}
	} else {
		res = <-resCh
	}
	s.settle(job, res, timeout)
}

// settle moves a finished run into its terminal state and updates cache
// and metrics.
func (s *Server) settle(job *Job, res runResult, timeout time.Duration) {
	job.mu.Lock()
	job.finished = now()
	job.ranFor = job.finished.Sub(job.started)
	ranFor := job.ranFor
	switch {
	case job.timedOut:
		job.state = StateFailed
		job.errMsg = fmt.Sprintf("timed out after %s (partial output discarded)", timeout)
	case job.cancelReq:
		// Whether the render noticed (ErrCanceled) or finished first, the
		// client asked for cancellation: discard the output either way so
		// the observable behavior does not depend on that race.
		job.state = StateCanceled
		job.errMsg = "canceled (partial output discarded)"
	case errors.Is(res.err, experiments.ErrCanceled):
		job.state = StateCanceled
		job.errMsg = "canceled (partial output discarded)"
	case res.err != nil:
		job.state = StateFailed
		job.errMsg = res.err.Error()
	default:
		job.state = StateDone
		job.output = res.out
	}
	state := job.state
	close(job.done)
	job.mu.Unlock()

	s.mu.Lock()
	if state == StateDone && s.cfg.CacheEntries > 0 {
		key := job.Spec.Key()
		if _, exists := s.cache[key]; !exists {
			for len(s.cacheQ) >= s.cfg.CacheEntries {
				delete(s.cache, s.cacheQ[0])
				s.cacheQ = s.cacheQ[1:]
			}
			s.cache[key] = res.out
			s.cacheQ = append(s.cacheQ, key)
		}
	}
	s.retireLocked(job.ID)
	s.mu.Unlock()
	s.metrics.finished(job.Spec.Experiment, state, ranFor)
}
