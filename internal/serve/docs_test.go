package serve

import (
	"os"
	"strings"
	"testing"
)

// TestArchitectureDocCoversEveryEndpoint is the service analogue of the
// experiments docs-freshness gate: every route Handler registers must
// appear verbatim (backtick-quoted) in docs/ARCHITECTURE.md, so adding an
// endpoint without documenting it fails CI.
func TestArchitectureDocCoversEveryEndpoint(t *testing.T) {
	doc, err := os.ReadFile("../../docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("read docs/ARCHITECTURE.md: %v", err)
	}
	text := string(doc)
	for _, ep := range Endpoints() {
		if !strings.Contains(text, "`"+ep+"`") {
			t.Errorf("docs/ARCHITECTURE.md does not document endpoint `%s`", ep)
		}
	}
}

// TestEndpointsMatchHandler walks every declared endpoint against the
// mux: a request matching the pattern must not fall through to the mux's
// 404 handler (404s from our own handlers carry a JSON body instead).
func TestEndpointsMatchHandler(t *testing.T) {
	if len(Endpoints()) != 10 {
		t.Fatalf("Endpoints() has %d entries; update this test and the docs", len(Endpoints()))
	}
	seen := map[string]bool{}
	for _, ep := range Endpoints() {
		if seen[ep] {
			t.Errorf("duplicate endpoint %q", ep)
		}
		seen[ep] = true
		parts := strings.SplitN(ep, " ", 2)
		if len(parts) != 2 || (parts[0] != "GET" && parts[0] != "POST") {
			t.Errorf("endpoint %q is not in \"METHOD /path\" form", ep)
		}
	}
}
