package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// TestE2EServiceMatchesGolden is the end-to-end proof of the service's
// determinism contract: three concurrent clients submit the full quick
// experiment list over real HTTP at three different worker counts, with
// the output cache disabled so every job truly executes, while a fourth
// goroutine hammers /healthz and /metrics. Every job's output must be
// byte-identical to the committed golden file for its experiment — the
// same files ssbench's own golden test diffs against — regardless of
// worker count, job interleaving, or which runner picked the job up.
func TestE2EServiceMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e service test runs every quick experiment three times; skipped with -short")
	}

	golden := map[string][]byte{}
	for _, name := range experiments.Names() {
		b, err := os.ReadFile(filepath.Join("..", "experiments", "testdata", "golden", name+".txt"))
		if err != nil {
			t.Fatalf("missing golden file (run `go test ./internal/experiments -run TestGoldenOutputs -update`): %v", err)
		}
		golden[name] = b
	}

	_, ts := newTestServer(t, Config{MaxRunning: 4, MaxQueue: 256, CacheEntries: -1})

	// Liveness prober: /healthz and /metrics must answer throughout the run.
	stopProbe := make(chan struct{})
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		for {
			select {
			case <-stopProbe:
				return
			case <-newTimer(50 * time.Millisecond).C:
			}
			for _, path := range []string{"/healthz", "/metrics"} {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Errorf("GET %s during load: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s during load = %d", path, resp.StatusCode)
					return
				}
			}
		}
	}()

	// Three clients, three worker counts: serial, two workers, one per CPU.
	// Client 1 watches its jobs through the progress stream; the others
	// poll the status endpoint. All must see golden bytes.
	var wg sync.WaitGroup
	for ci, workers := range []int{1, 2, 0} {
		wg.Add(1)
		go func(ci, workers int) {
			defer wg.Done()
			useStream := ci == 1
			for _, name := range experiments.Names() {
				body := fmt.Sprintf(`{"experiment":%q,"quick":true,"workers":%d}`, name, workers)
				resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("client %d: POST %s: %v", ci, name, err)
					return
				}
				var st Status
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusAccepted {
					t.Errorf("client %d: POST %s = %d (%v)", ci, name, resp.StatusCode, err)
					return
				}
				final := awaitJob(t, ts, st.ID, useStream)
				if final.State != StateDone {
					t.Errorf("client %d: job %s (%s) finished %s: %s", ci, st.ID, name, final.State, final.Error)
					return
				}
				out := fetchOutput(t, ts, st.ID)
				if !bytes.Equal(out, golden[name]) {
					t.Errorf("client %d: %s at workers=%d differs from golden (%d vs %d bytes)",
						ci, name, workers, len(out), len(golden[name]))
				}
			}
		}(ci, workers)
	}
	wg.Wait()
	close(stopProbe)
	<-probeDone
	if t.Failed() {
		return
	}

	// An "all" job must be the exact concatenation of the per-experiment
	// goldens — and byte-identical to a direct in-process render, closing
	// the loop between the service path and the batch path.
	var want bytes.Buffer
	for _, name := range experiments.Names() {
		want.Write(golden[name])
	}
	p := experiments.DefaultParams()
	p.Quick = true
	var direct bytes.Buffer
	if err := experiments.Run(&direct, "all", p); err != nil {
		t.Fatalf("direct Run(all): %v", err)
	}
	if !bytes.Equal(direct.Bytes(), want.Bytes()) {
		t.Fatal("direct Run(all) differs from concatenated goldens")
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"experiment":"all","quick":true}`))
	if err != nil {
		t.Fatalf("POST all: %v", err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	final := awaitJob(t, ts, st.ID, false)
	if final.State != StateDone {
		t.Fatalf("all job finished %s: %s", final.State, final.Error)
	}
	if out := fetchOutput(t, ts, st.ID); !bytes.Equal(out, want.Bytes()) {
		t.Fatal("service output for \"all\" differs from concatenated goldens")
	}

	// The metrics page must account for every job: 46 submissions, zero
	// cache hits (cache disabled), all finished done.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	nJobs := 3*len(experiments.Names()) + 1
	for _, wantLine := range []string{
		fmt.Sprintf("ssserve_jobs_submitted_total %d", nJobs),
		fmt.Sprintf("ssserve_jobs_finished_total{state=%q} %d", "done", nJobs),
		"ssserve_output_cache_hits_total 0",
	} {
		if !strings.Contains(string(mb), wantLine) {
			t.Errorf("metrics page is missing %q", wantLine)
		}
	}
}

// awaitJob waits for a job to settle, either by consuming its progress
// stream (each line a Status, terminal line last) or by polling the
// status endpoint.
func awaitJob(t *testing.T, ts *httptest.Server, id string, useStream bool) Status {
	t.Helper()
	deadline := newTimer(120 * time.Second)
	defer deadline.Stop()
	if useStream {
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
		if err != nil {
			t.Fatalf("GET stream %s: %v", id, err)
		}
		defer resp.Body.Close()
		dec := json.NewDecoder(resp.Body)
		var last Status
		for {
			var line Status
			if err := dec.Decode(&line); err != nil {
				if last.State.terminal() {
					return last
				}
				t.Fatalf("stream %s ended without a terminal state: %v", id, err)
			}
			if line.Total < line.Done {
				t.Fatalf("stream %s reported done %d > total %d", id, line.Done, line.Total)
			}
			last = line
			if last.State.terminal() {
				return last
			}
		}
	}
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatalf("GET %s: %v", id, err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode %s: %v", id, err)
		}
		if st.State.terminal() {
			return st
		}
		select {
		case <-deadline.C:
			t.Fatalf("job %s stuck in state %s", id, st.State)
		case <-newTimer(20 * time.Millisecond).C:
		}
	}
}

// TestE2EInlineScenarioMatchesGolden closes the loop on the declarative
// path at service scale: a job carrying the arrivals builtin as an
// *inline* spec must produce exactly the bytes the registered "arrivals"
// experiment is pinned to — the service treats a spec-by-value and a
// spec-by-name identically.
func TestE2EInlineScenarioMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick arrivals sweep; skipped with -short")
	}
	golden, err := os.ReadFile(filepath.Join("..", "experiments", "testdata", "golden", "arrivals.txt"))
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/experiments -run TestGoldenOutputs -update`): %v", err)
	}
	_, ts := newTestServer(t, Config{MaxRunning: 2, CacheEntries: -1})

	_, raw := scenario.Builtin("arrivals")
	body, err := json.Marshal(Spec{Version: "v1", Experiment: "scenario",
		Quick: true, Scenario: json.RawMessage(raw)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST scenario job = %d (%v)", resp.StatusCode, err)
	}
	final := awaitJob(t, ts, st.ID, true)
	if final.State != StateDone {
		t.Fatalf("scenario job finished %s: %s", final.State, final.Error)
	}
	if out := fetchOutput(t, ts, st.ID); !bytes.Equal(out, golden) {
		t.Errorf("inline scenario output differs from the arrivals golden (%d vs %d bytes)",
			len(out), len(golden))
	}
}

// fetchOutput retrieves a done job's exact output bytes.
func fetchOutput(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/output")
	if err != nil {
		t.Fatalf("GET output %s: %v", id, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET output %s = %d (%v)", id, resp.StatusCode, err)
	}
	return body
}
