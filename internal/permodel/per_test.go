package permodel

import (
	"maps"
	"math"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/modem"
)

func TestUncodedBERKnownValues(t *testing.T) {
	// BPSK at 9.6 dB -> ~1e-5 (classic waterfall point ~9.6 dB for 1e-5).
	ber := UncodedBER(modem.BPSK, dsp.FromDB(9.6))
	if ber < 1e-6 || ber > 1e-4 {
		t.Fatalf("BPSK@9.6dB BER = %g", ber)
	}
	// At 0 SNR everything is a coin flip.
	if UncodedBER(modem.QAM64, 0) != 0.5 {
		t.Fatal("zero SNR must give 0.5")
	}
}

func TestUncodedBEROrdering(t *testing.T) {
	// At any fixed SNR, denser constellations have higher BER.
	for _, snrDB := range []float64{5, 10, 15, 20} {
		s := dsp.FromDB(snrDB)
		b := UncodedBER(modem.BPSK, s)
		q := UncodedBER(modem.QPSK, s)
		q16 := UncodedBER(modem.QAM16, s)
		q64 := UncodedBER(modem.QAM64, s)
		if !(b <= q && q <= q16 && q16 <= q64) {
			t.Fatalf("snr %v: ordering violated %g %g %g %g", snrDB, b, q, q16, q64)
		}
	}
}

func TestCodedBERImprovesOnUncoded(t *testing.T) {
	// Within each code's operating region the coded BER must be far below
	// the raw crossover probability. (The union bound legitimately diverges
	// at high p — rate 3/4 is simply broken at raw BER 1e-2 — so each rate
	// is tested where it is meant to operate.)
	cases := map[modem.CodeRate]float64{
		modem.Rate12: 1e-2,
		modem.Rate23: 3e-3,
		modem.Rate34: 1e-3,
	}
	for _, code := range slices.Sorted(maps.Keys(cases)) {
		p := cases[code]
		c := CodedBitErrorBound(p, code)
		if c >= p/5 {
			t.Fatalf("code %v at p=%g: coded %g, want clear improvement", code, p, c)
		}
	}
	// And stronger codes do better at the same crossover probability.
	c12 := CodedBitErrorBound(5e-3, modem.Rate12)
	c34 := CodedBitErrorBound(5e-3, modem.Rate34)
	if c12 >= c34 {
		t.Fatalf("rate 1/2 (%g) should beat rate 3/4 (%g)", c12, c34)
	}
}

func TestPERMonotoneInSNRProperty(t *testing.T) {
	cfg := modem.Profile80211()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rate := modem.StandardRates()[r.Intn(8)]
		s1 := r.Float64() * 30
		s2 := s1 + r.Float64()*10
		return FlatPER(cfg, rate, 500, s2) <= FlatPER(cfg, rate, 500, s1)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPERLimits(t *testing.T) {
	cfg := modem.Profile80211()
	r6, _ := modem.RateByMbps(6)
	if per := FlatPER(cfg, r6, 1460, 30); per > 1e-6 {
		t.Fatalf("6 Mbps at 30 dB PER = %g", per)
	}
	if per := FlatPER(cfg, r6, 1460, -5); per < 0.99 {
		t.Fatalf("6 Mbps at -5 dB PER = %g", per)
	}
	r54, _ := modem.RateByMbps(54)
	if per := FlatPER(cfg, r54, 1460, 10); per < 0.99 {
		t.Fatalf("54 Mbps at 10 dB PER = %g", per)
	}
}

func TestRateThresholdsOrdered(t *testing.T) {
	// The SNR needed for 10% PER must increase with the rate.
	cfg := modem.Profile80211()
	prev := -100.0
	for _, mbps := range []int{6, 9, 12, 18, 24, 36, 48, 54} {
		rate, _ := modem.RateByMbps(mbps)
		thr := SNRForPER(cfg, rate, 1460, 0.1)
		if thr < prev {
			t.Fatalf("%d Mbps threshold %.2f below previous %.2f", mbps, thr, prev)
		}
		prev = thr
	}
}

func TestJointSNRSumsPower(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	got := JointSNR([][]float64{a, b})
	want := []float64{5, 7, 9}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("joint[%d] = %g", i, got[i])
		}
	}
}

func TestJointPERBeatsSinglePER(t *testing.T) {
	// Two senders over independent fading: the joint PER must be lower
	// than either alone at the same per-sender SNR.
	cfg := modem.Profile80211()
	rng := rand.New(rand.NewSource(1))
	rate, _ := modem.RateByMbps(12)
	var single, joint float64
	const draws = 200
	for i := 0; i < draws; i++ {
		h1 := channel.NewIndoor(rng, cfg.SampleRateHz, 60, 0).FreqResponse(cfg.NFFT)
		h2 := channel.NewIndoor(rng, cfg.SampleRateHz, 60, 0).FreqResponse(cfg.NFFT)
		s1 := SubcarrierSNRs(cfg, h1, 8)
		s2 := SubcarrierSNRs(cfg, h2, 8)
		single += PER(rate, 1000, s1) / draws
		joint += PER(rate, 1000, JointSNR([][]float64{s1, s2})) / draws
	}
	if joint >= single {
		t.Fatalf("joint PER %g not better than single %g", joint, single)
	}
}

func TestSubcarrierSNRsShapedByChannel(t *testing.T) {
	cfg := modem.Profile80211()
	flat := channel.Flat().FreqResponse(cfg.NFFT)
	s := SubcarrierSNRs(cfg, flat, 10)
	for _, v := range s {
		if math.Abs(v-10) > 1e-9 {
			t.Fatalf("flat channel SNR %g, want 10 linear", v)
		}
	}
}

func TestAnalyticMatchesEmpiricalWaterfall(t *testing.T) {
	// The analytic model and the real waveform PHY must agree on where the
	// waterfall is: for each tested rate, find the analytic 50%-PER SNR and
	// verify the empirical PER is high a few dB below it and low a few dB
	// above it.
	if testing.Short() {
		t.Skip("waveform calibration is slow")
	}
	cfg := modem.Profile80211()
	rng := rand.New(rand.NewSource(2))
	for _, mbps := range []int{6, 24} {
		rate, _ := modem.RateByMbps(mbps)
		mid := SNRForPER(cfg, rate, 200, 0.5)
		below := EmpiricalPER(cfg, rate, 200, mid-4, 25, rng)
		above := EmpiricalPER(cfg, rate, 200, mid+4, 25, rng)
		if below < 0.5 {
			t.Fatalf("%d Mbps: empirical PER %.2f at analytic-mid-4dB, want high", mbps, below)
		}
		if above > 0.2 {
			t.Fatalf("%d Mbps: empirical PER %.2f at analytic-mid+4dB, want low", mbps, above)
		}
	}
}
