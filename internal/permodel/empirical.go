package permodel

import (
	"math"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/modem"
)

// EmpiricalPER measures packet error rate by running the actual waveform
// PHY end to end over an AWGN channel at the given SNR: encode, add noise,
// detect, equalize, Viterbi-decode, CRC-check. It is the calibration
// reference for the analytic model.
func EmpiricalPER(cfg *modem.Config, rate modem.Rate, payloadBytes int, snrDB float64, trials int, rng *rand.Rand) float64 {
	return EmpiricalPEROpts(cfg, rate, payloadBytes, snrDB, trials, rng, false)
}

// EmpiricalPEROpts is EmpiricalPER with soft-decision decoding selectable.
func EmpiricalPEROpts(cfg *modem.Config, rate modem.Rate, payloadBytes int, snrDB float64, trials int, rng *rand.Rand, soft bool) float64 {
	p := modem.FrameParams{
		Cfg: cfg, Rate: rate, CP: cfg.CPLen,
		PayloadLen: payloadBytes, ScramblerSeed: 0x5d,
	}
	payload := make([]byte, payloadBytes)
	rng.Read(payload)
	wave := modem.BuildFrame(p, payload)
	sigPower := dsp.MeanPower(wave)
	noisePower := channel.NoisePowerForSNR(sigPower, snrDB)

	errors := 0
	rx := &modem.Receiver{Cfg: cfg, FFTBackoff: 3, SoftDecision: soft}
	for t := 0; t < trials; t++ {
		// Surround the frame with noise so detection is realistic.
		buf := make([]complex128, 300+len(wave)+300)
		copy(buf[300:], wave)
		channel.AddAWGN(rng, buf, noisePower)
		got, ok, _, err := rx.Receive(p, buf, 0)
		if err != nil || !ok || string(got) != string(payload) {
			errors++
		}
	}
	return float64(errors) / float64(trials)
}

// SNRForPER inverts FlatPER: the minimum SNR (dB) at which the analytic
// model predicts a PER at or below target. Used to sanity-check rate
// thresholds and to initialize rate adaptation.
func SNRForPER(cfg *modem.Config, rate modem.Rate, payloadBytes int, target float64) float64 {
	lo, hi := -5.0, 45.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if FlatPER(cfg, rate, payloadBytes, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Round(hi*100) / 100
}
