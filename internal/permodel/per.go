// Package permodel predicts packet error rate (PER) versus SNR for the
// modem's rates. The throughput experiments (paper Figs. 17-18) simulate
// thousands of packet transmissions; running the full waveform PHY for each
// would be prohibitive, so the MAC-level simulators consume this model: a
// standard union-bound analysis of the 802.11 convolutional code over
// hard-decision demapping, driven by per-subcarrier SNRs. The model is
// validated against the in-repo waveform PHY (see tests and the calibration
// bench), which is the honest link back to first principles.
package permodel

import (
	"math"

	"repro/internal/dsp"
	"repro/internal/modem"
)

// UncodedBER returns the raw bit error rate of hard-decision demapping for
// one subcarrier at the given linear SNR, using the standard Gray-coded
// M-QAM approximations.
func UncodedBER(m modem.Modulation, snr float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	switch m {
	case modem.BPSK:
		return qfunc(math.Sqrt(2 * snr))
	case modem.QPSK:
		return qfunc(math.Sqrt(snr))
	case modem.QAM16:
		return 0.75 * qfunc(math.Sqrt(snr/5))
	case modem.QAM64:
		return 7.0 / 12 * qfunc(math.Sqrt(snr/21))
	}
	panic("permodel: unknown modulation")
}

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// Distance spectra of the 802.11 convolutional code (K=7, 133/171) and its
// punctured variants: c_d is the total information-bit weight of all paths
// at Hamming distance d from the all-zero path, starting at dFree. These are
// the standard published values used in 802.11 performance analyses.
var spectra = map[modem.CodeRate]struct {
	dFree int
	cd    []float64
}{
	modem.Rate12: {10, []float64{36, 0, 211, 0, 1404, 0, 11633, 0, 77433, 0, 502690}},
	modem.Rate23: {6, []float64{3, 70, 285, 1276, 6160, 27128, 117019}},
	modem.Rate34: {5, []float64{42, 201, 1492, 10469, 62935, 379644}},
}

// pairwiseError returns the probability that the Viterbi decoder prefers a
// path at Hamming distance d when the hard-decision channel has crossover
// probability p.
func pairwiseError(d int, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 0.5 {
		return 0.5
	}
	var sum float64
	if d%2 == 1 {
		for k := (d + 1) / 2; k <= d; k++ {
			sum += binom(d, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(d-k))
		}
		return sum
	}
	for k := d/2 + 1; k <= d; k++ {
		sum += binom(d, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(d-k))
	}
	sum += 0.5 * binom(d, d/2) * math.Pow(p, float64(d/2)) * math.Pow(1-p, float64(d/2))
	return sum
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// CodedBitErrorBound returns the union-bound post-Viterbi bit error
// probability for crossover probability p at the given code rate.
func CodedBitErrorBound(p float64, code modem.CodeRate) float64 {
	s, ok := spectra[code]
	if !ok {
		panic("permodel: unknown code rate")
	}
	var pb float64
	for i, c := range s.cd {
		if c == 0 {
			continue
		}
		pb += c * pairwiseError(s.dFree+i, p)
	}
	if pb > 0.5 {
		pb = 0.5
	}
	return pb
}

// PER returns the packet error rate of a payload of payloadBytes bytes
// (plus CRC) at the given rate, where perBinSNR lists the linear SNR of
// each data subcarrier. The interleaver spreads coded bits uniformly over
// subcarriers, so the channel's crossover probability is the mean raw BER
// across bins.
func PER(rate modem.Rate, payloadBytes int, perBinSNR []float64) float64 {
	if len(perBinSNR) == 0 {
		return 1
	}
	var p float64
	for _, s := range perBinSNR {
		p += UncodedBER(rate.Mod, s)
	}
	p /= float64(len(perBinSNR))
	pb := CodedBitErrorBound(p, rate.Code)
	bits := float64((payloadBytes + 4) * 8)
	per := 1 - math.Pow(1-pb, bits)
	if per < 0 {
		per = 0
	}
	if per > 1 {
		per = 1
	}
	return per
}

// FlatPER is PER over a flat channel at the given SNR in dB.
func FlatPER(cfg *modem.Config, rate modem.Rate, payloadBytes int, snrDB float64) float64 {
	bins := make([]float64, cfg.NumData())
	lin := dsp.FromDB(snrDB)
	for i := range bins {
		bins[i] = lin
	}
	return PER(rate, payloadBytes, bins)
}

// JointSNR combines per-subcarrier SNRs of concurrent synchronized senders:
// with orthogonal space-time combining the post-combiner SNR per bin is the
// sum of the senders' individual SNRs (power gain + diversity; paper §8.2).
func JointSNR(perSender [][]float64) []float64 {
	if len(perSender) == 0 {
		return nil
	}
	n := len(perSender[0])
	out := make([]float64, n)
	for _, s := range perSender {
		for i, v := range s {
			out[i] += v
		}
	}
	return out
}

// SubcarrierSNRs draws the per-data-bin linear SNRs of one link realization:
// the link's average SNR shaped by a multipath frequency response.
func SubcarrierSNRs(cfg *modem.Config, freqResp []complex128, avgSNRdB float64) []float64 {
	lin := dsp.FromDB(avgSNRdB)
	bins := cfg.DataBins()
	out := make([]float64, len(bins))
	for i, k := range bins {
		h := freqResp[cfg.Bin(k)]
		out[i] = lin * (real(h)*real(h) + imag(h)*imag(h))
	}
	return out
}
