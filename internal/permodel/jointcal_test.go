package permodel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/phy"
)

// TestJointModelMatchesWaveformPHY cross-validates the packet-level joint
// model (per-subcarrier SNR sum -> PER) against the actual waveform path:
// real joint frames with two synchronized senders, Alamouti coding, joint
// channel estimation and Viterbi decoding. The model and the waveform must
// agree on which side of the waterfall each operating point sits.
func TestJointModelMatchesWaveformPHY(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform calibration is slow")
	}
	cfg := modem.Profile80211()
	rate, _ := modem.RateByMbps(12)
	const payload = 200

	// Analytic joint waterfall midpoint: per-sender SNR at which the joint
	// (2x power) transmission crosses PER 0.5 on flat channels.
	perSender := func(snrDB float64) float64 {
		bins := make([]float64, cfg.NumData())
		lin := dsp.FromDB(snrDB)
		for i := range bins {
			bins[i] = lin
		}
		return PER(rate, payload, JointSNR([][]float64{bins, bins}))
	}
	lo, hi := -5.0, 30.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if perSender(mid) > 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	mid := (lo + hi) / 2

	measure := func(snrDB float64, trials int) float64 {
		rng := rand.New(rand.NewSource(7))
		fails := 0
		for i := 0; i < trials; i++ {
			sim := jointCalSim(rng, cfg, rate, payload, snrDB)
			pay := make([]byte, payload)
			rng.Read(pay)
			run, err := sim.Run(pay)
			if err != nil || !run.CoJoined[0] {
				fails++
				continue
			}
			rx := &phy.JointReceiver{Cfg: cfg, FFTBackoff: 3}
			res, err := rx.Receive(run.RxWave, 0)
			if err != nil || !res.OK {
				fails++
			}
		}
		return float64(fails) / float64(trials)
	}

	below := measure(mid-4, 12)
	above := measure(mid+5, 12)
	if below < 0.5 {
		t.Fatalf("waveform joint PER %.2f at model-mid-4dB (%.1f dB), want high", below, mid-4)
	}
	if above > 0.25 {
		t.Fatalf("waveform joint PER %.2f at model-mid+5dB (%.1f dB), want low", above, mid+5)
	}
}

// jointCalSim builds a two-sender joint transmission with equal per-sender
// SNR at the receiver over flat channels (matching the analytic setup).
func jointCalSim(rng *rand.Rand, cfg *modem.Config, rate modem.Rate, payload int, snrDB float64) *phy.JointSimConfig {
	p := phy.JointFrameParams{
		Cfg: cfg, Rate: rate, DataCP: cfg.CPLen,
		PayloadLen: payload, Seed: 0x5d, NumCo: 1, LeadID: 1, PacketID: 8,
	}
	sig := dsp.MeanPower(cfg.LTSTime())
	noise := channel.NoisePowerForSNR(sig, snrDB)
	// The header must survive for the exchange to happen at all; give the
	// inter-sender link and the co-sender's receiver comfortable margins so
	// the measurement isolates the data path.
	return &phy.JointSimConfig{
		P:        p,
		LeadToCo: []phy.Link{{Gain: 1, Delay: 2}},
		LeadToRx: phy.Link{Gain: 1, Delay: 4},
		CoToRx:   []phy.Link{{Gain: 1, Delay: 3}},
		Co: []phy.CoSenderSim{{
			Turnaround:       120,
			EstDelayFromLead: 2,
			TxOffset:         1,
			NoisePower:       noise / 100,
			FFTBackoff:       3,
		}},
		NoiseRx: noise,
		Rng:     rng,
	}
}

// TestJointModelPowerGainConsistent verifies the model's 3 dB two-sender
// shift: the joint waterfall midpoint sits ~3 dB below the single-sender
// midpoint in per-sender SNR terms.
func TestJointModelPowerGainConsistent(t *testing.T) {
	cfg := modem.Profile80211()
	rate, _ := modem.RateByMbps(12)
	single := SNRForPER(cfg, rate, 200, 0.5)
	joint := func() float64 {
		lo, hi := -5.0, 30.0
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			bins := make([]float64, cfg.NumData())
			lin := dsp.FromDB(mid)
			for j := range bins {
				bins[j] = lin
			}
			if PER(rate, 200, JointSNR([][]float64{bins, bins})) > 0.5 {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}()
	if d := single - joint; math.Abs(d-3.01) > 0.1 {
		t.Fatalf("joint midpoint %.2f dB below single, want ~3.01", d)
	}
}
