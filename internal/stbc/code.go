package stbc

import (
	"fmt"
	"math/cmplx"
)

// Code is a space-time block code applied per subcarrier. A block of
// DataLen() data symbols is expanded into BlockLen() symbol times; sender
// role r transmits Encode(r, block)[t] during symbol time t of the block.
type Code interface {
	// Senders is the number of codewords (concurrent transmitters).
	Senders() int
	// BlockLen is the number of OFDM symbol times per code block.
	BlockLen() int
	// DataLen is the number of data symbols carried per block.
	DataLen() int
	// Encode returns what sender `role` transmits over one block.
	Encode(role int, data []complex128) []complex128
	// Decode recovers the data symbols from the received block y given the
	// per-sender channel coefficients h (len Senders; zero for senders that
	// did not participate).
	Decode(y, h []complex128) []complex128
	// Gain returns the effective diversity-combining power gain achieved
	// with channels h, relative to a unit flat channel: for orthogonal
	// codes this is sum |h_i|^2.
	Gain(h []complex128) float64
}

// ForSenders returns the code SourceSync assigns to k concurrent senders:
// trivial pass-through for 1, Alamouti for 2, quasi-orthogonal for 3-4, and
// the replicated codebook (codewords reused round-robin) beyond that
// (paper §6).
func ForSenders(k int) (Code, error) {
	switch {
	case k == 1:
		return Single{}, nil
	case k == 2:
		return Alamouti{}, nil
	case k == 3 || k == 4:
		return QuasiOrthogonal{}, nil
	case k > 4 && k <= 8:
		return Replicated{Base: QuasiOrthogonal{}, NumSenders: k}, nil
	}
	return nil, fmt.Errorf("stbc: no code for %d senders", k)
}

// Replicated extends a base code to more senders than it has codewords by
// assigning codewords round-robin (paper §6's replicated Alamouti
// codebook): sender role r uses base codeword r mod Base.Senders(). Senders
// sharing a codeword act as one distributed antenna whose effective channel
// is the sum of their individual channels.
type Replicated struct {
	Base       Code
	NumSenders int
}

// Senders implements Code.
func (r Replicated) Senders() int { return r.NumSenders }

// BlockLen implements Code.
func (r Replicated) BlockLen() int { return r.Base.BlockLen() }

// DataLen implements Code.
func (r Replicated) DataLen() int { return r.Base.DataLen() }

// Encode implements Code.
func (r Replicated) Encode(role int, data []complex128) []complex128 {
	if role < 0 || role >= r.NumSenders {
		panic("stbc: Replicated role out of range")
	}
	return r.Base.Encode(role%r.Base.Senders(), data)
}

// fold sums per-sender channels into per-codeword effective channels.
func (r Replicated) fold(h []complex128) []complex128 {
	base := r.Base.Senders()
	out := make([]complex128, base)
	for j, v := range h {
		out[j%base] += v
	}
	return out
}

// Decode implements Code.
func (r Replicated) Decode(y, h []complex128) []complex128 {
	return r.Base.Decode(y, r.fold(h))
}

// Gain implements Code.
func (r Replicated) Gain(h []complex128) float64 {
	return r.Base.Gain(r.fold(h))
}

// Single is the degenerate one-sender "code".
type Single struct{}

// Senders implements Code.
func (Single) Senders() int { return 1 }

// BlockLen implements Code.
func (Single) BlockLen() int { return 1 }

// DataLen implements Code.
func (Single) DataLen() int { return 1 }

// Encode implements Code.
func (Single) Encode(role int, data []complex128) []complex128 {
	if role != 0 {
		panic("stbc: Single has only role 0")
	}
	return []complex128{data[0]}
}

// Decode implements Code.
func (Single) Decode(y, h []complex128) []complex128 {
	if h[0] == 0 {
		return []complex128{0}
	}
	return []complex128{y[0] / h[0]}
}

// Gain implements Code.
func (Single) Gain(h []complex128) float64 {
	return sq(h[0])
}

func sq(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }

// Alamouti is the rate-1 orthogonal code for two senders:
//
//	time 1: sender0 sends x1,    sender1 sends x2
//	time 2: sender0 sends -x2*,  sender1 sends x1*
type Alamouti struct{}

// Senders implements Code.
func (Alamouti) Senders() int { return 2 }

// BlockLen implements Code.
func (Alamouti) BlockLen() int { return 2 }

// DataLen implements Code.
func (Alamouti) DataLen() int { return 2 }

// Encode implements Code.
func (Alamouti) Encode(role int, data []complex128) []complex128 {
	x1, x2 := data[0], data[1]
	switch role {
	case 0:
		return []complex128{x1, -cmplx.Conj(x2)}
	case 1:
		return []complex128{x2, cmplx.Conj(x1)}
	}
	panic("stbc: Alamouti role out of range")
}

// Decode implements Code. It uses the standard linear combiner, which is ML
// for this orthogonal code:
//
//	x1 = h0* y1 + h1 y2*,  x2 = h1* y1 - h0 y2*
//
// normalized by the combined channel gain.
func (Alamouti) Decode(y, h []complex128) []complex128 {
	g := sq(h[0]) + sq(h[1])
	if g == 0 {
		return []complex128{0, 0}
	}
	gn := complex(g, 0)
	x1 := (cmplx.Conj(h[0])*y[0] + h[1]*cmplx.Conj(y[1])) / gn
	x2 := (cmplx.Conj(h[1])*y[0] - h[0]*cmplx.Conj(y[1])) / gn
	return []complex128{x1, x2}
}

// Gain implements Code.
func (Alamouti) Gain(h []complex128) float64 { return sq(h[0]) + sq(h[1]) }

// QuasiOrthogonal is the Jafarkhani rate-1 quasi-orthogonal code for four
// senders built from Alamouti sub-blocks. With fewer than four participants
// the missing senders' channels are zero and the decoder still recovers the
// data (the property SourceSync relies on when not all co-forwarders hear a
// packet).
//
// Transmission matrix (rows = symbol times, columns = sender roles):
//
//	 x1    x2    x3    x4
//	-x2*   x1*  -x4*   x3*
//	-x3*  -x4*   x1*   x2*
//	 x4   -x3   -x2    x1
type QuasiOrthogonal struct{}

// Senders implements Code.
func (QuasiOrthogonal) Senders() int { return 4 }

// BlockLen implements Code.
func (QuasiOrthogonal) BlockLen() int { return 4 }

// DataLen implements Code.
func (QuasiOrthogonal) DataLen() int { return 4 }

// Encode implements Code.
func (QuasiOrthogonal) Encode(role int, data []complex128) []complex128 {
	x1, x2, x3, x4 := data[0], data[1], data[2], data[3]
	c := cmplx.Conj
	switch role {
	case 0:
		return []complex128{x1, -c(x2), -c(x3), x4}
	case 1:
		return []complex128{x2, c(x1), -c(x4), -x3}
	case 2:
		return []complex128{x3, -c(x4), c(x1), -x2}
	case 3:
		return []complex128{x4, c(x3), c(x2), x1}
	}
	panic("stbc: QuasiOrthogonal role out of range")
}

// Decode implements Code via regularized least squares on the equivalent
// linear system in [x1 x2 x3 x4]. Conjugating the middle two receptions
// makes every equation linear in the data symbols:
//
//	y1  =  h1 x1 + h2 x2 + h3 x3 + h4 x4
//	y2* = h2* x1 - h1* x2 + h4* x3 - h3* x4
//	y3* = h3* x1 + h4* x2 - h1* x3 - h2* x4
//	y4  =  h4 x1 - h3 x2 - h2 x3 + h1 x4
func (QuasiOrthogonal) Decode(y, h []complex128) []complex128 {
	h = pad4(h)
	c := cmplx.Conj
	h1, h2, h3, h4 := h[0], h[1], h[2], h[3]
	a := [][]complex128{
		{h1, h2, h3, h4},
		{c(h2), -c(h1), c(h4), -c(h3)},
		{c(h3), c(h4), -c(h1), -c(h2)},
		{h4, -h3, -h2, h1},
	}
	yy := []complex128{y[0], c(y[1]), c(y[2]), y[3]}
	return solveLeastSquares(a, yy, 1e-9)
}

// Gain implements Code.
func (QuasiOrthogonal) Gain(h []complex128) float64 {
	h = pad4(h)
	return sq(h[0]) + sq(h[1]) + sq(h[2]) + sq(h[3])
}

// pad4 extends a channel vector to four entries with zeros, so the
// quasi-orthogonal code accepts 3-sender deployments directly.
func pad4(h []complex128) []complex128 {
	if len(h) >= 4 {
		return h
	}
	out := make([]complex128, 4)
	copy(out, h)
	return out
}
