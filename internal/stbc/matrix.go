// Package stbc implements the space-time block codes SourceSync's Smart
// Combiner distributes across senders (paper §6): the Alamouti code for two
// concurrent senders and the Jafarkhani quasi-orthogonal code for up to
// four. Codes are applied independently per OFDM subcarrier, coding data
// symbols across consecutive OFDM symbol times so that signals from senders
// with arbitrary relative channel phases never combine destructively for a
// whole packet.
package stbc

import "math/cmplx"

// solveLeastSquares solves (A^H A + eps I) x = A^H y for the small dense
// complex systems produced by STBC decoding. Regularization keeps the solve
// stable when some senders are absent (zero channel columns).
func solveLeastSquares(a [][]complex128, y []complex128, eps float64) []complex128 {
	m := len(a)
	if m == 0 {
		return nil
	}
	n := len(a[0])
	// g = A^H A + eps I  (n x n), rhs = A^H y.
	g := make([][]complex128, n)
	rhs := make([]complex128, n)
	for i := 0; i < n; i++ {
		g[i] = make([]complex128, n)
		for j := 0; j < n; j++ {
			var s complex128
			for k := 0; k < m; k++ {
				s += cmplx.Conj(a[k][i]) * a[k][j]
			}
			g[i][j] = s
		}
		g[i][i] += complex(eps, 0)
		var s complex128
		for k := 0; k < m; k++ {
			s += cmplx.Conj(a[k][i]) * y[k]
		}
		rhs[i] = s
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		piv := col
		best := cmplx.Abs(g[col][col])
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(g[r][col]); v > best {
				best, piv = v, r
			}
		}
		g[col], g[piv] = g[piv], g[col]
		rhs[col], rhs[piv] = rhs[piv], rhs[col]
		inv := 1 / g[col][col]
		for j := col; j < n; j++ {
			g[col][j] *= inv
		}
		rhs[col] *= inv
		for r := 0; r < n; r++ {
			if r == col || g[r][col] == 0 {
				continue
			}
			f := g[r][col]
			for j := col; j < n; j++ {
				g[r][j] -= f * g[col][j]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	return rhs
}
