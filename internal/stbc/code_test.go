package stbc

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSym(r *rand.Rand) complex128 {
	return complex(r.NormFloat64(), r.NormFloat64())
}

func randChan(r *rand.Rand) complex128 {
	return complex(r.NormFloat64(), r.NormFloat64())
}

// transmit renders the received block for a code: y[t] = sum_j h[j] *
// Encode(j, data)[t] + noise.
func transmit(c Code, data, h []complex128, noise []complex128) []complex128 {
	y := make([]complex128, c.BlockLen())
	for j := 0; j < c.Senders(); j++ {
		if h[j] == 0 {
			continue
		}
		tx := c.Encode(j, data)
		for t := range y {
			y[t] += h[j] * tx[t]
		}
	}
	for t := range y {
		if noise != nil {
			y[t] += noise[t]
		}
	}
	return y
}

func TestAlamoutiRoundTripNoiseless(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	code := Alamouti{}
	for trial := 0; trial < 200; trial++ {
		data := []complex128{randSym(r), randSym(r)}
		h := []complex128{randChan(r), randChan(r)}
		y := transmit(code, data, h, nil)
		got := code.Decode(y, h)
		for i := range data {
			if cmplx.Abs(got[i]-data[i]) > 1e-9 {
				t.Fatalf("trial %d: sym %d: got %v want %v", trial, i, got[i], data[i])
			}
		}
	}
}

func TestAlamoutiDestructiveChannelsStillDecode(t *testing.T) {
	// The motivating case from paper §6: channels that exactly cancel
	// (h2 = -h1) zero out naive identical transmission, but Alamouti
	// decoding still recovers the data perfectly.
	code := Alamouti{}
	h := []complex128{complex(0.7, 0.3), complex(-0.7, -0.3)}
	data := []complex128{complex(1, 0), complex(0, -1)}

	// Naive identical transmission: received power is exactly zero.
	naive := h[0]*data[0] + h[1]*data[0]
	if cmplx.Abs(naive) > 1e-12 {
		t.Fatalf("test setup: channels do not cancel")
	}

	y := transmit(code, data, h, nil)
	got := code.Decode(y, h)
	for i := range data {
		if cmplx.Abs(got[i]-data[i]) > 1e-9 {
			t.Fatalf("sym %d: got %v want %v", i, got[i], data[i])
		}
	}
	if g := code.Gain(h); math.Abs(g-2*sq(h[0])) > 1e-12 {
		t.Fatalf("gain %g", g)
	}
}

func TestAlamoutiSingleSenderSubset(t *testing.T) {
	// If the co-sender never joins (h1 = 0) the receiver still decodes.
	code := Alamouti{}
	r := rand.New(rand.NewSource(2))
	data := []complex128{randSym(r), randSym(r)}
	h := []complex128{randChan(r), 0}
	y := transmit(code, data, h, nil)
	got := code.Decode(y, h)
	for i := range data {
		if cmplx.Abs(got[i]-data[i]) > 1e-9 {
			t.Fatalf("sym %d: got %v want %v", i, got[i], data[i])
		}
	}
}

func TestAlamoutiNoiseAveraging(t *testing.T) {
	// With equal-power channels the combiner should deliver ~2x the
	// single-sender SNR (3 dB power gain): verify the error variance of the
	// decoded symbols is half that of a single sender with the same total
	// noise.
	r := rand.New(rand.NewSource(3))
	code := Alamouti{}
	const trials = 20000
	sigma := 0.1
	var errAlam, errSingle float64
	for i := 0; i < trials; i++ {
		data := []complex128{randSym(r), randSym(r)}
		h := []complex128{1, complex(0, 1)} // equal power, arbitrary phase
		noise := []complex128{
			complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma),
			complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma),
		}
		y := transmit(code, data, h, noise)
		got := code.Decode(y, h)
		errAlam += sq(got[0]-data[0]) / trials

		ys := data[0] + noise[0] // single sender, h=1
		errSingle += sq(ys-data[0]) / trials
	}
	ratio := errSingle / errAlam
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("SNR gain ratio %.2f, want ~2 (3 dB)", ratio)
	}
}

func TestQuasiOrthogonalRoundTripAllSenders(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	code := QuasiOrthogonal{}
	for trial := 0; trial < 200; trial++ {
		data := []complex128{randSym(r), randSym(r), randSym(r), randSym(r)}
		h := []complex128{randChan(r), randChan(r), randChan(r), randChan(r)}
		y := transmit(code, data, h, nil)
		got := code.Decode(y, h)
		for i := range data {
			if cmplx.Abs(got[i]-data[i]) > 1e-6 {
				t.Fatalf("trial %d sym %d: got %v want %v", trial, i, got[i], data[i])
			}
		}
	}
}

func TestQuasiOrthogonalSubsets(t *testing.T) {
	// Any nonempty subset of senders must still be decodable (paper §6:
	// receivers cope with co-forwarders that missed the packet).
	r := rand.New(rand.NewSource(5))
	code := QuasiOrthogonal{}
	for mask := 1; mask < 16; mask++ {
		data := []complex128{randSym(r), randSym(r), randSym(r), randSym(r)}
		h := make([]complex128, 4)
		for j := 0; j < 4; j++ {
			if mask>>j&1 == 1 {
				h[j] = randChan(r)
			}
		}
		y := transmit(code, data, h, nil)
		got := code.Decode(y, h)
		for i := range data {
			if cmplx.Abs(got[i]-data[i]) > 1e-5 {
				t.Fatalf("mask %04b sym %d: got %v want %v", mask, i, got[i], data[i])
			}
		}
	}
}

func TestForSenders(t *testing.T) {
	for k := 1; k <= 8; k++ {
		c, err := ForSenders(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if c.Senders() < k {
			t.Fatalf("k=%d: code supports %d senders", k, c.Senders())
		}
		if c.DataLen() != c.BlockLen() {
			t.Fatalf("k=%d: rate != 1", k)
		}
	}
	if _, err := ForSenders(9); err == nil {
		t.Fatal("k=9 should fail")
	}
	if _, err := ForSenders(0); err == nil {
		t.Fatal("k=0 should fail")
	}
}

func TestReplicatedRoundTrip(t *testing.T) {
	// Six senders share the four quasi-orthogonal codewords; decoding uses
	// the folded per-codeword channels.
	r := rand.New(rand.NewSource(9))
	code, err := ForSenders(6)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		data := make([]complex128, code.DataLen())
		for i := range data {
			data[i] = randSym(r)
		}
		h := make([]complex128, 6)
		for j := range h {
			h[j] = randChan(r)
		}
		y := transmit(code, data, h, nil)
		got := code.Decode(y, h)
		for i := range data {
			if cmplx.Abs(got[i]-data[i]) > 1e-5 {
				t.Fatalf("trial %d sym %d: got %v want %v", trial, i, got[i], data[i])
			}
		}
	}
}

func TestEncodePowerPreservedProperty(t *testing.T) {
	// Every role transmits the same total power as the raw data block:
	// STBC must not change the power budget.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, code := range []Code{Alamouti{}, QuasiOrthogonal{}} {
			data := make([]complex128, code.DataLen())
			var pIn float64
			for i := range data {
				data[i] = randSym(r)
				pIn += sq(data[i])
			}
			for role := 0; role < code.Senders(); role++ {
				tx := code.Encode(role, data)
				var pOut float64
				for _, v := range tx {
					pOut += sq(v)
				}
				if math.Abs(pOut-pIn) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleCode(t *testing.T) {
	c := Single{}
	data := []complex128{complex(2, -1)}
	h := []complex128{complex(0, 0.5)}
	y := transmit(c, data, h, nil)
	got := c.Decode(y, h)
	if cmplx.Abs(got[0]-data[0]) > 1e-12 {
		t.Fatalf("got %v", got[0])
	}
	if c.Gain(h) != 0.25 {
		t.Fatalf("gain %g", c.Gain(h))
	}
	if got := c.Decode([]complex128{1}, []complex128{0}); got[0] != 0 {
		t.Fatal("zero channel should yield zero")
	}
}
