package testbed

import (
	"math"
	"slices"
)

// Grid is a spatial hash index over static Points: positions are bucketed
// into square cells of a fixed size, and Near answers "which ids lie within
// r meters of p" by scanning only the buckets the query disk overlaps —
// O(nearby) instead of O(all points).
//
// The index is built for the simulator's determinism contract:
//
//   - Near visits candidate buckets in a fixed row-major order computed
//     from the query box, never by ranging over the bucket map, and returns
//     ids sorted ascending — so callers iterate neighbors in exactly the
//     order a linear scan over an id-ordered slice would, independent of
//     map iteration order and of insertion order.
//   - Points are static once added (the simulator's flows never move), so
//     there is no remove/update path to reorder buckets.
//
// The cell size should match the dominant query radius (e.g. the
// carrier-sense range): a radius-r query then touches at most 3x3 buckets.
// Larger radii still work — the query box just spans more buckets.
type Grid struct {
	cellM   float64
	buckets map[gridKey][]gridEntry
	// dense is the compacted bucket table, built lazily on the first query
	// after an Add: row-major over the occupied extent, so the query loop
	// indexes buckets arithmetically instead of hashing a map key per cell.
	// Left nil (map path) when the extent is too sparse to densify.
	dense  [][]gridEntry
	denseW int
	dirty  bool
	minX   int32
	maxX   int32
	minY   int32
	maxY   int32
	n      int
}

// gridKey addresses one bucket by its integer cell coordinates.
type gridKey struct{ x, y int32 }

// gridEntry carries the point inline with its id so the Near hot loop
// filters candidates without a second map lookup per candidate.
type gridEntry struct {
	id int32
	p  Point
}

// NewGrid returns an empty index with the given bucket size in meters.
// cellM must be positive.
func NewGrid(cellM float64) *Grid {
	if cellM <= 0 {
		panic("testbed: grid cell size must be positive")
	}
	return &Grid{
		cellM:   cellM,
		buckets: make(map[gridKey][]gridEntry),
		minX:    math.MaxInt32, maxX: math.MinInt32,
		minY: math.MaxInt32, maxY: math.MinInt32,
	}
}

// cellOf maps a coordinate to its integer cell index.
func (g *Grid) cellOf(v float64) int32 {
	return int32(math.Floor(v / g.cellM))
}

// Add indexes one point under the given id. Ids must be unique; points are
// immutable once added.
func (g *Grid) Add(id int, p Point) {
	key := gridKey{g.cellOf(p.X), g.cellOf(p.Y)}
	g.buckets[key] = append(g.buckets[key], gridEntry{id: int32(id), p: p})
	g.dense, g.dirty = nil, true
	if key.x < g.minX {
		g.minX = key.x
	}
	if key.x > g.maxX {
		g.maxX = key.x
	}
	if key.y < g.minY {
		g.minY = key.y
	}
	if key.y > g.maxY {
		g.maxY = key.y
	}
	g.n++
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return g.n }

// compact flattens the bucket map into the dense row-major table when the
// occupied bounding box is small enough to afford one slice header per
// cell. Pathologically sparse layouts (a few points flung across a huge
// extent) stay on the map path.
func (g *Grid) compact() {
	g.dirty = false
	if g.n == 0 {
		return
	}
	w := int64(g.maxX) - int64(g.minX) + 1
	h := int64(g.maxY) - int64(g.minY) + 1
	if w*h > 16*int64(g.n)+1024 {
		return
	}
	dense := make([][]gridEntry, w*h)
	for k, b := range g.buckets {
		dense[(int64(k.y)-int64(g.minY))*w+(int64(k.x)-int64(g.minX))] = b
	}
	g.dense, g.denseW = dense, int(w)
}

// Near appends to out the ids of every indexed point within radius r of p
// (inclusive, matching Dist(p, q) <= r) and returns the extended slice
// sorted ascending. Pass a reused out[:0] to keep the query
// allocation-free. The result order depends only on the id set, never on
// insertion or bucket order.
func (g *Grid) Near(p Point, r float64, out []int32) []int32 {
	if r < 0 || g.n == 0 {
		return out
	}
	x0, x1 := g.cellOf(p.X-r), g.cellOf(p.X+r)
	y0, y1 := g.cellOf(p.Y-r), g.cellOf(p.Y+r)
	// Clip the query box to the occupied extent so a far-away query point
	// does not walk empty cells.
	x0, x1 = max(x0, g.minX), min(x1, g.maxX)
	y0, y1 = max(y0, g.minY), min(y1, g.maxY)
	if g.dirty {
		g.compact()
	}
	start := len(out)
	if g.dense != nil {
		for y := y0; y <= y1; y++ {
			row := (int(y)-int(g.minY))*g.denseW - int(g.minX)
			for x := x0; x <= x1; x++ {
				for _, e := range g.dense[row+int(x)] {
					if Dist(p, e.p) <= r {
						out = append(out, e.id)
					}
				}
			}
		}
	} else {
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				for _, e := range g.buckets[gridKey{x, y}] {
					if Dist(p, e.p) <= r {
						out = append(out, e.id)
					}
				}
			}
		}
	}
	slices.Sort(out[start:])
	return out
}
