package testbed

import (
	"math/rand"
	"slices"
	"testing"
)

// bruteNear is the reference query: a linear scan over every indexed point
// in id order.
func bruteNear(pos []Point, p Point, r float64) []int32 {
	var out []int32
	for id, q := range pos {
		if Dist(p, q) <= r {
			out = append(out, int32(id))
		}
	}
	return out
}

// TestGridMatchesBruteForce checks Near against the pairwise scan on
// randomized topologies: same ids, same (sorted) order, across cell sizes
// smaller than, equal to, and larger than the query radius — and radii of
// zero and beyond the whole floor.
func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(200)
		w := 50 + rng.Float64()*500
		pos := make([]Point, n)
		for i := range pos {
			pos[i] = Point{X: rng.Float64() * w, Y: rng.Float64() * w}
		}
		// Cluster some points into shared cells (equal positions included).
		for i := range pos {
			if i > 0 && rng.Intn(4) == 0 {
				pos[i] = pos[i-1]
			}
		}
		cell := []float64{5, 30, w}[trial%3]
		g := NewGrid(cell)
		for i, p := range pos {
			g.Add(i, p)
		}
		if g.Len() != n {
			t.Fatalf("trial %d: Len=%d want %d", trial, g.Len(), n)
		}
		for q := 0; q < 20; q++ {
			// Mix on-floor queries with far-outside ones (extent clipping).
			p := Point{X: rng.Float64()*3*w - w, Y: rng.Float64()*3*w - w}
			r := []float64{0, 5, 30, w * 3}[q%4] * (0.5 + rng.Float64())
			got := g.Near(p, r, nil)
			want := bruteNear(pos, p, r)
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d cell=%.0f query (%.1f,%.1f) r=%.1f:\ngrid  %v\nbrute %v",
					trial, cell, p.X, p.Y, r, got, want)
			}
		}
	}
}

// TestGridOrderIndependentOfInsertion checks the determinism contract: the
// neighbor order Near returns depends only on the id set, never on the
// order points were added (bucket append order) or on map iteration.
func TestGridOrderIndependentOfInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n := 120
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	queries := make([]Point, 30)
	for i := range queries {
		queries[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}

	build := func(order []int) *Grid {
		g := NewGrid(25)
		for _, id := range order {
			g.Add(id, pos[id])
		}
		return g
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ref := build(order)
	for shuffle := 0; shuffle < 5; shuffle++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		g := build(order)
		for _, p := range queries {
			want := ref.Near(p, 40, nil)
			got := g.Near(p, 40, nil)
			if !slices.Equal(got, want) {
				t.Fatalf("query (%.1f,%.1f): insertion order changed the result:\n%v\nvs\n%v", p.X, p.Y, got, want)
			}
			if !slices.IsSorted(got) {
				t.Fatalf("query (%.1f,%.1f): result not sorted: %v", p.X, p.Y, got)
			}
		}
	}
}

// TestGridReusesOutBuffer checks the allocation-free query contract: Near
// appends to the passed slice and leaves earlier contents alone.
func TestGridReusesOutBuffer(t *testing.T) {
	g := NewGrid(10)
	g.Add(0, Point{X: 1, Y: 1})
	g.Add(1, Point{X: 2, Y: 2})
	buf := []int32{99}
	out := g.Near(Point{X: 0, Y: 0}, 50, buf)
	if len(out) != 3 || out[0] != 99 || out[1] != 0 || out[2] != 1 {
		t.Fatalf("append contract broken: %v", out)
	}
}

func TestGridRejectsBadCellSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(0) did not panic")
		}
	}()
	NewGrid(0)
}
