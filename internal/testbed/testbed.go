// Package testbed models the indoor deployment the paper evaluates on
// (Fig. 11): node placements on an office floor, link budgets from a
// log-distance path loss model with shadowing, LOS/NLOS multipath draws,
// and the SNR-regime classification of §8.2.
package testbed

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/modem"
)

// Point is a node position in meters.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Testbed carries the radio environment parameters.
type Testbed struct {
	Cfg           *modem.Config
	PL            channel.PathLossModel
	TxPowerDBm    float64
	NoiseFigureDB float64
	Width, Height float64 // floor dimensions in meters
	DelaySpreadNs float64 // RMS multipath delay spread
	LOSThresholdM float64 // links shorter than this get a Rician component
	KFactorDB     float64 // Rician K for LOS links
	CarrierHz     float64
	MaxPPM        float64 // oscillator offset magnitude bound
}

// Default returns an environment modeled on the paper's office floor:
// a 30 x 15 m floor, 5.8 GHz carrier, indoor path loss with shadowing.
func Default(cfg *modem.Config) *Testbed {
	return &Testbed{
		Cfg:           cfg,
		PL:            channel.DefaultIndoor(),
		TxPowerDBm:    15,
		NoiseFigureDB: 7,
		Width:         30,
		Height:        15,
		DelaySpreadNs: 50,
		LOSThresholdM: 6,
		KFactorDB:     6,
		CarrierHz:     5.8e9,
		MaxPPM:        20,
	}
}

// Mesh returns an environment tuned for the multi-hop experiments (§8.4):
// lower transmit power and heavier obstruction (as across many office
// walls), so links at mesh spans sit near the 6-12 Mbps waterfall and
// exhibit the intermediate loss rates opportunistic routing exploits.
func Mesh(cfg *modem.Config) *Testbed {
	t := Default(cfg)
	t.TxPowerDBm = 10
	t.PL.Exponent = 3.5
	t.PL.ShadowSigma = 5
	t.Width = 50
	t.Height = 15
	return t
}

// NoiseFloorDBm returns the receiver noise floor for this environment.
func (t *Testbed) NoiseFloorDBm() float64 {
	return channel.NoiseFloorDBm(t.Cfg.SampleRateHz, t.NoiseFigureDB)
}

// MeanSNRdB returns the median-shadowing SNR a transmission would have at
// distance d — the deterministic link budget (no RNG drawn) netsim's
// capture model uses to price interference from a concurrent transmitter.
func (t *Testbed) MeanSNRdB(d float64) float64 {
	return channel.SNRFromBudget(t.TxPowerDBm, t.PL.LossDB(d, nil), t.NoiseFloorDBm())
}

// RandomPoint draws a uniform position on the floor.
func (t *Testbed) RandomPoint(rng *rand.Rand) Point {
	return Point{X: rng.Float64() * t.Width, Y: rng.Float64() * t.Height}
}

// RandomPointWhere draws uniform positions until pred accepts one.
// Rejection sampling must fail loudly rather than spin forever when the
// constraint is geometrically unsatisfiable, so after maxTries draws
// (<= 0 selects a generous default) it panics with the acceptance count.
func (t *Testbed) RandomPointWhere(rng *rand.Rand, maxTries int, pred func(Point) bool) Point {
	if maxTries <= 0 {
		maxTries = 100000
	}
	for i := 0; i < maxTries; i++ {
		if p := t.RandomPoint(rng); pred(p) {
			return p
		}
	}
	panic(fmt.Sprintf("testbed: no point on the %gx%g m floor satisfied the constraint in %d draws",
		t.Width, t.Height, maxTries))
}

// Link is a static directed link snapshot: its average SNR (path loss +
// shadowing, drawn once per topology) and geometry. Per-packet multipath is
// drawn fresh from it.
type Link struct {
	SNRdB  float64
	DistM  float64
	LOS    bool
	parent *Testbed
}

// NewLink draws a link between two placed nodes: the shadowing term is
// sampled once, making the link's average SNR static for the topology's
// lifetime (as in a static testbed).
func (t *Testbed) NewLink(rng *rand.Rand, a, b Point) Link {
	d := Dist(a, b)
	loss := t.PL.LossDB(d, rng)
	snr := channel.SNRFromBudget(t.TxPowerDBm, loss, t.NoiseFloorDBm())
	return Link{SNRdB: snr, DistM: d, LOS: d <= t.LOSThresholdM, parent: t}
}

// LinkAtSNR fabricates a link with a prescribed average SNR (used by
// experiments that sweep SNR directly).
func (t *Testbed) LinkAtSNR(snrDB, distM float64) Link {
	return Link{SNRdB: snrDB, DistM: distM, LOS: distM <= t.LOSThresholdM, parent: t}
}

// DrawChannel samples a fresh multipath realization for this link.
func (l Link) DrawChannel(rng *rand.Rand) *channel.Multipath {
	k := 0.0
	if l.LOS {
		k = l.parent.KFactorDB
	}
	return channel.NewIndoor(rng, l.parent.Cfg.SampleRateHz, l.parent.DelaySpreadNs, k)
}

// DrawSubcarrierSNRs samples per-data-subcarrier linear SNRs for one packet
// on this link (block fading: fresh multipath per packet).
func (l Link) DrawSubcarrierSNRs(rng *rand.Rand) []float64 {
	cfg := l.parent.Cfg
	h := l.DrawChannel(rng).FreqResponse(cfg.NFFT)
	lin := math.Pow(10, l.SNRdB/10)
	bins := cfg.DataBins()
	out := make([]float64, len(bins))
	for i, k := range bins {
		v := h[cfg.Bin(k)]
		out[i] = lin * (real(v)*real(v) + imag(v)*imag(v))
	}
	return out
}

// PropDelaySamples returns the line-of-flight delay of this link in samples.
func (l Link) PropDelaySamples() float64 {
	return channel.PropagationDelaySamples(l.DistM, l.parent.Cfg.SampleRateHz)
}

// DrawCFO samples an oscillator offset for a node, in cycles/sample.
func (t *Testbed) DrawCFO(rng *rand.Rand) float64 {
	ppm := (rng.Float64()*2 - 1) * t.MaxPPM
	return channel.PPMToCFO(ppm, t.CarrierHz, t.Cfg.SampleRateHz)
}

// Regime buckets link quality as in the paper's §8.2 grouping.
type Regime int

// SNR regimes.
const (
	LowSNR    Regime = iota // < 6 dB
	MediumSNR               // 6-12 dB
	HighSNR                 // > 12 dB
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case LowSNR:
		return "low"
	case MediumSNR:
		return "medium"
	case HighSNR:
		return "high"
	}
	return "unknown"
}

// ClassifyRegime maps an average SNR in dB to its regime.
func ClassifyRegime(snrDB float64) Regime {
	switch {
	case snrDB < 6:
		return LowSNR
	case snrDB <= 12:
		return MediumSNR
	default:
		return HighSNR
	}
}
