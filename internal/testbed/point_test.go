package testbed

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/modem"
)

func TestRandomPointWhereSatisfiable(t *testing.T) {
	tb := Default(modem.Profile80211())
	rng := rand.New(rand.NewSource(1))
	ref := Point{X: 15, Y: 7}
	p := tb.RandomPointWhere(rng, 0, func(p Point) bool {
		d := Dist(p, ref)
		return d >= 3 && d <= 10
	})
	if d := Dist(p, ref); d < 3 || d > 10 {
		t.Fatalf("accepted point at %.2f m", d)
	}
}

func TestRandomPointWhereFailsLoudly(t *testing.T) {
	tb := Default(modem.Profile80211())
	rng := rand.New(rand.NewSource(2))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unsatisfiable constraint must panic, not spin")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "draws") {
			t.Fatalf("panic %v should name the draw budget", r)
		}
	}()
	// No point on a 30x15 floor is 1000 m from the origin.
	tb.RandomPointWhere(rng, 500, func(p Point) bool {
		return Dist(p, Point{}) > 1000
	})
}
