package testbed

import (
	"maps"
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/dsp"
	"repro/internal/modem"
)

func TestDist(t *testing.T) {
	if d := Dist(Point{0, 0}, Point{3, 4}); d != 5 {
		t.Fatalf("dist %g", d)
	}
}

func TestRandomPointInBounds(t *testing.T) {
	tb := Default(modem.Profile80211())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := tb.RandomPoint(rng)
		if p.X < 0 || p.X > tb.Width || p.Y < 0 || p.Y > tb.Height {
			t.Fatalf("point %v out of bounds", p)
		}
	}
}

func TestLinkSNRDecreasesWithDistance(t *testing.T) {
	tb := Default(modem.Profile80211())
	near := tb.NewLink(nil, Point{0, 0}, Point{2, 0})
	far := tb.NewLink(nil, Point{0, 0}, Point{28, 0})
	if near.SNRdB <= far.SNRdB {
		t.Fatalf("near %.1f dB <= far %.1f dB", near.SNRdB, far.SNRdB)
	}
	// A short indoor link should be comfortably decodable, a cross-floor
	// link marginal: this is what creates the paper's lossy topologies.
	if near.SNRdB < 15 {
		t.Fatalf("2 m link only %.1f dB", near.SNRdB)
	}
	if far.SNRdB > 25 {
		t.Fatalf("28 m link unrealistically strong: %.1f dB", far.SNRdB)
	}
}

func TestLinkLOSFlag(t *testing.T) {
	tb := Default(modem.Profile80211())
	if l := tb.NewLink(nil, Point{0, 0}, Point{3, 0}); !l.LOS {
		t.Fatal("3 m link should be LOS")
	}
	if l := tb.NewLink(nil, Point{0, 0}, Point{20, 0}); l.LOS {
		t.Fatal("20 m link should be NLOS")
	}
}

func TestDrawSubcarrierSNRsStatistics(t *testing.T) {
	tb := Default(modem.Profile80211())
	rng := rand.New(rand.NewSource(2))
	link := tb.LinkAtSNR(10, 10)
	var mean float64
	const draws = 300
	for i := 0; i < draws; i++ {
		bins := link.DrawSubcarrierSNRs(rng)
		mean += dsp.Mean(bins) / draws
	}
	// Average linear SNR across fading should match the link budget (10 dB
	// = 10 linear).
	if mean < 8 || mean > 12 {
		t.Fatalf("mean per-bin SNR %.2f, want ~10", mean)
	}
	// And individual draws must be frequency selective (not all equal).
	bins := link.DrawSubcarrierSNRs(rng)
	if dsp.StdDev(bins) < 0.5 {
		t.Fatalf("no frequency selectivity: std %.3f", dsp.StdDev(bins))
	}
}

func TestPropDelaySamples(t *testing.T) {
	tb := Default(modem.Profile80211())
	l := tb.LinkAtSNR(10, 15) // 15 m -> 50 ns -> 1 sample at 20 MHz
	if d := l.PropDelaySamples(); math.Abs(d-1.0) > 0.01 {
		t.Fatalf("prop delay %.3f samples", d)
	}
}

func TestDrawCFOBounded(t *testing.T) {
	tb := Default(modem.Profile80211())
	rng := rand.New(rand.NewSource(3))
	max := tb.MaxPPM * 1e-6 * tb.CarrierHz / tb.Cfg.SampleRateHz
	for i := 0; i < 200; i++ {
		cfo := tb.DrawCFO(rng)
		if math.Abs(cfo) > max {
			t.Fatalf("cfo %g exceeds bound %g", cfo, max)
		}
	}
}

func TestClassifyRegime(t *testing.T) {
	cases := map[float64]Regime{3: LowSNR, 5.9: LowSNR, 6: MediumSNR, 12: MediumSNR, 12.1: HighSNR, 30: HighSNR}
	for _, snr := range slices.Sorted(maps.Keys(cases)) {
		if got, want := ClassifyRegime(snr), cases[snr]; got != want {
			t.Fatalf("%g dB -> %v, want %v", snr, got, want)
		}
	}
	if LowSNR.String() != "low" || HighSNR.String() != "high" {
		t.Fatal("regime names")
	}
}
