package channel

import (
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/dsp"
)

// Emission is one transmitter's contribution to a receiver's baseband
// stream: a waveform launched at an absolute (fractional) sample time,
// passed through a multipath channel, scaled by the link's amplitude gain
// and rotated by the transmitter oscillator's frequency and phase offsets.
type Emission struct {
	Wave  []complex128
	Start float64    // absolute start time in receiver samples; may be fractional
	Gain  float64    // amplitude gain (sqrt of power gain); 0 means 1.0
	CFO   float64    // transmitter-vs-receiver frequency offset, cycles/sample
	Phase float64    // oscillator phase offset at absolute sample 0, radians
	Path  *Multipath // nil means flat
}

// Mix renders the receiver's baseband stream over the absolute sample window
// [origin, origin+n): the superposition of all emissions plus complex AWGN
// of the given per-sample power. Emissions that begin before origin are
// rejected (panic) since their energy would be truncated silently.
func Mix(rng *rand.Rand, n, origin int, noisePower float64, emissions ...Emission) []complex128 {
	out := make([]complex128, n)
	for _, e := range emissions {
		renderInto(out, origin, e)
	}
	if noisePower > 0 {
		sigma := math.Sqrt(noisePower / 2)
		for i := range out {
			out[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
	}
	return out
}

func renderInto(out []complex128, origin int, e Emission) {
	rel := e.Start - float64(origin)
	if rel < 0 {
		panic("channel: emission starts before mixing window")
	}
	wave := e.Wave
	if e.Path != nil {
		wave = e.Path.Apply(wave)
	}
	// Fractional+integer delay to the emission's absolute position.
	delayed := dsp.DelaySamples(wave, rel, 12)
	gain := e.Gain
	if gain == 0 {
		gain = 1
	}
	// Oscillator rotation is a function of absolute time so that concurrent
	// emissions from different senders rotate relative to each other exactly
	// as in the paper (§5).
	rot := cmplx.Rect(gain, e.Phase)
	step := cmplx.Exp(complex(0, 2*math.Pi*e.CFO))
	cur := rot * cmplx.Exp(complex(0, 2*math.Pi*e.CFO*float64(origin)))
	for i, v := range delayed {
		if i >= len(out) {
			break
		}
		out[i] += v * cur
		cur *= step
		if i&1023 == 1023 {
			// Keep |cur| from drifting over long frames.
			cur = cur / complex(cmplx.Abs(cur)/gain, 0)
		}
	}
}

// NoisePowerForSNR returns the per-sample noise power that yields the given
// SNR (dB) against a signal of per-sample power sigPower.
func NoisePowerForSNR(sigPower, snrDB float64) float64 {
	return sigPower / dsp.FromDB(snrDB)
}

// AddAWGN adds complex white Gaussian noise of the given per-sample power to
// x in place.
func AddAWGN(rng *rand.Rand, x []complex128, noisePower float64) {
	if noisePower <= 0 {
		return
	}
	sigma := math.Sqrt(noisePower / 2)
	for i := range x {
		x[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
}
