package channel

import (
	"math"
	"math/rand"

	"repro/internal/dsp"
)

// SpeedOfLight in meters/second, used to convert distance to propagation
// delay.
const SpeedOfLight = 299792458.0

// PathLossModel is a log-distance path loss model with log-normal shadowing:
// PL(d) = PL0 + 10*n*log10(d/d0) + X_sigma (all dB).
type PathLossModel struct {
	RefLossDB   float64 // PL0: loss at the reference distance
	RefDistM    float64 // d0, meters (default 1)
	Exponent    float64 // n: 2 free space, 3-4 indoor NLOS
	ShadowSigma float64 // sigma of the shadowing term, dB (0 disables)
}

// DefaultIndoor returns parameters typical of an indoor office at 5 GHz.
func DefaultIndoor() PathLossModel {
	return PathLossModel{RefLossDB: 47, RefDistM: 1, Exponent: 3.0, ShadowSigma: 4}
}

// LossDB returns the path loss in dB at distance d (meters), drawing the
// shadowing term from rng (pass nil for the median loss).
func (p PathLossModel) LossDB(d float64, rng *rand.Rand) float64 {
	if d < p.RefDistM {
		d = p.RefDistM
	}
	loss := p.RefLossDB + 10*p.Exponent*math.Log10(d/p.RefDistM)
	if rng != nil && p.ShadowSigma > 0 {
		loss += rng.NormFloat64() * p.ShadowSigma
	}
	return loss
}

// AmplitudeGain converts a path loss in dB to an amplitude scaling factor.
func AmplitudeGain(lossDB float64) float64 {
	return math.Sqrt(dsp.FromDB(-lossDB))
}

// PropagationDelaySamples returns the propagation delay over d meters in
// units of samples at the given sample rate.
func PropagationDelaySamples(d, sampleRateHz float64) float64 {
	return d / SpeedOfLight * sampleRateHz
}

// SNRFromBudget computes the receiver SNR (dB) given transmit power (dBm),
// path loss (dB) and noise floor (dBm).
func SNRFromBudget(txPowerDBm, lossDB, noiseFloorDBm float64) float64 {
	return txPowerDBm - lossDB - noiseFloorDBm
}

// NoiseFloorDBm returns the thermal noise floor for the given bandwidth and
// receiver noise figure: -174 dBm/Hz + 10*log10(BW) + NF.
func NoiseFloorDBm(bandwidthHz, noiseFigureDB float64) float64 {
	return -174 + 10*math.Log10(bandwidthHz) + noiseFigureDB
}

// PPMToCFO converts an oscillator offset in parts-per-million at the given
// carrier frequency into cycles-per-sample at the given sample rate.
func PPMToCFO(ppm, carrierHz, sampleRateHz float64) float64 {
	return ppm * 1e-6 * carrierHz / sampleRateHz
}
