package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

func TestRayleighUnitPower(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		m := NewRayleigh(rng, 8, 2.5)
		if p := m.Power(); math.Abs(p-1) > 1e-9 {
			t.Fatalf("power = %g, want 1", p)
		}
	}
}

func TestRayleighExponentialProfile(t *testing.T) {
	// Averaged over many draws, tap powers must decay exponentially.
	rng := rand.New(rand.NewSource(2))
	const draws = 4000
	nTaps, decay := 6, 2.0
	avg := make([]float64, nTaps)
	for i := 0; i < draws; i++ {
		m := NewRayleigh(rng, nTaps, decay)
		for j, p := range m.PowerDelayProfile() {
			avg[j] += p / draws
		}
	}
	// Realized-power normalization slightly couples the taps, so allow a
	// loose band around the nominal exponential decay ratio.
	for j := 1; j < nTaps; j++ {
		ratio := avg[j] / avg[j-1]
		want := math.Exp(-1 / decay)
		if math.Abs(ratio-want) > 0.12 {
			t.Fatalf("tap %d/%d power ratio %.3f, want %.3f", j, j-1, ratio, want)
		}
	}
}

func TestRicianKFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const draws = 3000
	k := 6.0 // dB
	var losPower, totalPower float64
	for i := 0; i < draws; i++ {
		m := NewRician(rng, 4, 1.5, k)
		pdp := m.PowerDelayProfile()
		totalPower += m.Power()
		losPower += pdp[0]
	}
	if math.Abs(totalPower/draws-1) > 0.05 {
		t.Fatalf("mean power %g, want 1", totalPower/draws)
	}
	// First tap carries LOS + strongest scatter; with K=6dB the LOS alone
	// is ~0.8 of total power.
	frac := losPower / totalPower
	if frac < 0.7 || frac > 0.95 {
		t.Fatalf("first-tap power fraction %.2f outside Rician expectation", frac)
	}
}

func TestApplyMatchesDirectConvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewRayleigh(rng, 5, 2)
	x := make([]complex128, 40)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	got := m.Apply(x)
	if len(got) != len(x)+len(m.Taps)-1 {
		t.Fatalf("conv length %d", len(got))
	}
	for n := 0; n < len(got); n++ {
		var want complex128
		for k, tap := range m.Taps {
			if j := n - k; j >= 0 && j < len(x) {
				want += tap * x[j]
			}
		}
		if cmplx.Abs(got[n]-want) > 1e-10 {
			t.Fatalf("conv sample %d: got %v want %v", n, got[n], want)
		}
	}
}

func TestFreqResponseMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewRayleigh(rng, 7, 2)
	h := m.FreqResponse(64)
	padded := make([]complex128, 64)
	copy(padded, m.Taps)
	want := dsp.FFT(padded)
	for i := range h {
		if cmplx.Abs(h[i]-want[i]) > 1e-10 {
			t.Fatalf("bin %d mismatch", i)
		}
	}
}

func TestRMSDelaySpread(t *testing.T) {
	// Single tap: zero spread. Two equal taps at 0 and 2: spread 1.
	if s := Flat().RMSDelaySpread(); s != 0 {
		t.Fatalf("flat spread %g", s)
	}
	m := &Multipath{Taps: []complex128{1, 0, 1}}
	if s := m.RMSDelaySpread(); math.Abs(s-1) > 1e-12 {
		t.Fatalf("spread %g, want 1", s)
	}
}

func TestNewIndoorSpreadScalesWithRate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var spread128, spread20 float64
	const draws = 300
	for i := 0; i < draws; i++ {
		spread128 += NewIndoor(rng, 128e6, 40, 0).RMSDelaySpread() / draws
		spread20 += NewIndoor(rng, 20e6, 40, 0).RMSDelaySpread() / draws
	}
	// 40ns at 128 MHz is ~5.1 samples, at 20 MHz ~0.8 samples.
	if spread128 < 3 || spread128 > 8 {
		t.Fatalf("128 MHz spread %.2f taps", spread128)
	}
	if spread20 > 2 {
		t.Fatalf("20 MHz spread %.2f taps", spread20)
	}
}

func TestMixSuperposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w1 := []complex128{1, 2, 3}
	w2 := []complex128{5, 6}
	e1 := Emission{Wave: w1, Start: 2}
	e2 := Emission{Wave: w2, Start: 4}
	got := Mix(rng, 8, 0, 0, e1, e2)
	want := []complex128{0, 0, 1, 2, 3 + 5, 6, 0, 0}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("sample %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestMixGainAndPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := []complex128{1}
	e := Emission{Wave: w, Start: 0, Gain: 0.5, Phase: math.Pi / 2}
	got := Mix(rng, 1, 0, 0, e)
	want := complex(0, 0.5)
	if cmplx.Abs(got[0]-want) > 1e-12 {
		t.Fatalf("got %v want %v", got[0], want)
	}
}

func TestMixCFORotatesOverAbsoluteTime(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := []complex128{1, 1, 1, 1}
	cfo := 0.01
	// Render the same emission in two windows with different origins; the
	// rotation must depend on absolute sample index, not buffer index.
	e := Emission{Wave: w, Start: 100, CFO: cfo}
	a := Mix(rng, 110, 0, 0, e)
	b := Mix(rng, 10, 100, 0, e)
	for i := 0; i < 4; i++ {
		if cmplx.Abs(a[100+i]-b[i]) > 1e-9 {
			t.Fatalf("origin dependence at %d: %v vs %v", i, a[100+i], b[i])
		}
		wantPhase := 2 * math.Pi * cfo * float64(100+i)
		if math.Abs(dsp.WrapPhase(cmplx.Phase(b[i])-wantPhase)) > 1e-9 {
			t.Fatalf("phase at %d wrong", i)
		}
	}
}

func TestMixFractionalStartShiftsSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// A smooth pulse delayed by 0.5 samples should land "between" samples:
	// equal energy split around the peak.
	w := make([]complex128, 33)
	for i := range w {
		x := float64(i-16) / 4
		w[i] = complex(math.Exp(-x*x), 0)
	}
	whole := Mix(rng, 64, 0, 0, Emission{Wave: w, Start: 10})
	half := Mix(rng, 64, 0, 0, Emission{Wave: w, Start: 10.5})
	pw, _ := dsp.PeakIndex(absVec(whole))
	ph, _ := dsp.PeakIndex(absVec(half))
	if pw != 26 {
		t.Fatalf("whole-delay peak at %d, want 26", pw)
	}
	if ph != 26 && ph != 27 {
		t.Fatalf("half-delay peak at %d, want 26 or 27", ph)
	}
	// The two samples around the true peak must be nearly equal for the
	// half-sample shift.
	va, vb := cmplx.Abs(half[26]), cmplx.Abs(half[27])
	if math.Abs(va-vb)/va > 0.05 {
		t.Fatalf("half-sample shift not centered: %g vs %g", va, vb)
	}
}

func TestMixRejectsEarlyEmission(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for emission before window")
		}
	}()
	rng := rand.New(rand.NewSource(11))
	Mix(rng, 10, 100, 0, Emission{Wave: []complex128{1}, Start: 50})
}

func TestMixNoisePower(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	got := Mix(rng, 20000, 0, 0.25)
	if p := dsp.MeanPower(got); math.Abs(p-0.25) > 0.01 {
		t.Fatalf("noise power %g, want 0.25", p)
	}
}

func TestPathLossMonotoneProperty(t *testing.T) {
	p := DefaultIndoor()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d1 := 1 + r.Float64()*30
		d2 := d1 + r.Float64()*30
		return p.LossDB(d2, nil) >= p.LossDB(d1, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPathLossShadowingStatistics(t *testing.T) {
	p := DefaultIndoor()
	rng := rand.New(rand.NewSource(13))
	var vals []float64
	for i := 0; i < 2000; i++ {
		vals = append(vals, p.LossDB(10, rng))
	}
	med := p.LossDB(10, nil)
	if math.Abs(dsp.Mean(vals)-med) > 0.5 {
		t.Fatalf("shadowing mean %.2f, want ~%.2f", dsp.Mean(vals), med)
	}
	if s := dsp.StdDev(vals); math.Abs(s-p.ShadowSigma) > 0.5 {
		t.Fatalf("shadowing sigma %.2f, want %.2f", s, p.ShadowSigma)
	}
}

func TestLinkBudgetHelpers(t *testing.T) {
	if g := AmplitudeGain(20); math.Abs(g-0.1) > 1e-12 {
		t.Fatalf("gain %g", g)
	}
	// 3 m at 20 Msps is ~0.2 samples.
	d := PropagationDelaySamples(3, 20e6)
	if math.Abs(d-0.2) > 0.01 {
		t.Fatalf("delay %g samples", d)
	}
	nf := NoiseFloorDBm(20e6, 7)
	if math.Abs(nf-(-94)) > 1 {
		t.Fatalf("noise floor %.1f dBm", nf)
	}
	snr := SNRFromBudget(15, 80, -94)
	if math.Abs(snr-29) > 1e-9 {
		t.Fatalf("snr %.1f", snr)
	}
	cfo := PPMToCFO(20, 5.8e9, 20e6)
	if math.Abs(cfo-5.8e-3) > 1e-6 {
		t.Fatalf("cfo %g", cfo)
	}
}

func absVec(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}
