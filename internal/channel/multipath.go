// Package channel emulates the indoor wireless channel the SourceSync
// testbed ran over: sample-spaced multipath with Rayleigh or Rician taps and
// an exponential power-delay profile, AWGN, log-distance path loss with
// shadowing, per-oscillator carrier frequency offsets, and a Medium that
// mixes the emissions of several concurrent transmitters at each receiver
// with fractional-sample propagation delays.
package channel

import (
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/dsp"
)

// Multipath is a sample-spaced tap-delay-line channel.
type Multipath struct {
	Taps []complex128
}

// NewRayleigh draws a Rayleigh-fading multipath channel with nTaps taps and
// an exponential power-delay profile with the given decay constant (in
// taps). The realized tap power is normalized to exactly 1: small-scale
// fading shows up per subcarrier (frequency selectivity) while large-scale
// power variation is modeled separately by shadowing in the path loss model,
// keeping link budgets controlled in experiments.
func NewRayleigh(rng *rand.Rand, nTaps int, decayTaps float64) *Multipath {
	if nTaps < 1 {
		nTaps = 1
	}
	taps := make([]complex128, nTaps)
	for i := range taps {
		p := math.Exp(-float64(i) / math.Max(decayTaps, 1e-9))
		g := math.Sqrt(p / 2)
		taps[i] = complex(rng.NormFloat64()*g, rng.NormFloat64()*g)
	}
	m := &Multipath{Taps: taps}
	norm := 1 / math.Sqrt(m.Power())
	for i := range taps {
		taps[i] *= complex(norm, 0)
	}
	return m
}

// NewRician is like NewRayleigh but adds a deterministic line-of-sight
// component on the first tap with the given K-factor (dB): the ratio of LOS
// power to total scattered power.
func NewRician(rng *rand.Rand, nTaps int, decayTaps, kFactorDB float64) *Multipath {
	m := NewRayleigh(rng, nTaps, decayTaps)
	k := dsp.FromDB(kFactorDB)
	// Scattered power is currently 1; scale so scattered + LOS = 1.
	scatter := 1 / (1 + k)
	los := k / (1 + k)
	s := math.Sqrt(scatter)
	for i := range m.Taps {
		m.Taps[i] *= complex(s, 0)
	}
	phase := rng.Float64() * 2 * math.Pi
	m.Taps[0] += cmplx.Rect(math.Sqrt(los), phase)
	// Renormalize the realized power (LOS and scatter add incoherently only
	// in expectation).
	norm := complex(1/math.Sqrt(m.Power()), 0)
	for i := range m.Taps {
		m.Taps[i] *= norm
	}
	return m
}

// Flat returns a single-tap unit channel (no multipath).
func Flat() *Multipath {
	return &Multipath{Taps: []complex128{1}}
}

// NewIndoor draws a channel whose RMS delay spread is roughly spreadNs at
// sample rate fs. Line-of-sight placements should pass a positive K-factor.
func NewIndoor(rng *rand.Rand, fs, spreadNs, kFactorDB float64) *Multipath {
	decayTaps := spreadNs * 1e-9 * fs
	nTaps := int(math.Ceil(4*decayTaps)) + 1
	if kFactorDB > 0 {
		return NewRician(rng, nTaps, decayTaps, kFactorDB)
	}
	return NewRayleigh(rng, nTaps, decayTaps)
}

// Apply convolves x with the channel, returning len(x)+len(Taps)-1 samples.
func (m *Multipath) Apply(x []complex128) []complex128 {
	out := make([]complex128, len(x)+len(m.Taps)-1)
	for i, t := range m.Taps {
		if t == 0 {
			continue
		}
		for j, v := range x {
			out[i+j] += t * v
		}
	}
	return out
}

// FreqResponse returns the channel's frequency response on an nfft-point
// grid (FFT bin order).
func (m *Multipath) FreqResponse(nfft int) []complex128 {
	t := make([]complex128, nfft)
	copy(t, m.Taps)
	return dsp.FFT(t)
}

// PowerDelayProfile returns |tap|^2 per tap index.
func (m *Multipath) PowerDelayProfile() []float64 {
	out := make([]float64, len(m.Taps))
	for i, t := range m.Taps {
		out[i] = real(t)*real(t) + imag(t)*imag(t)
	}
	return out
}

// Power returns the total tap power (1.0 for freshly drawn channels).
func (m *Multipath) Power() float64 {
	var p float64
	for _, v := range m.PowerDelayProfile() {
		p += v
	}
	return p
}

// RMSDelaySpread returns the root-mean-square delay spread in taps.
func (m *Multipath) RMSDelaySpread() float64 {
	pdp := m.PowerDelayProfile()
	var p, mean float64
	for i, v := range pdp {
		p += v
		mean += float64(i) * v
	}
	if p == 0 {
		return 0
	}
	mean /= p
	var sq float64
	for i, v := range pdp {
		d := float64(i) - mean
		sq += d * d * v
	}
	return math.Sqrt(sq / p)
}
