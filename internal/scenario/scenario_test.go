package scenario

import (
	"encoding/json"
	"maps"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"strings"
	"testing"
)

// validArrivals returns a minimal valid poisson spec tests mutate.
func validArrivals() *Spec {
	return &Spec{
		Version:  1,
		Name:     "t",
		Topology: Topology{Family: FamilyCell, Placements: 2, APs: 2, Clients: 4},
		Traffic:  Traffic{Model: ModelPoisson, PayloadBytes: 1460, RatePps: 100, WindowSec: 1},
	}
}

func TestParseRoundTrip(t *testing.T) {
	// A spec survives marshal -> Parse unchanged: the JSON form is the
	// complete wire representation.
	want := &Spec{
		Version:    1,
		Name:       "roundtrip",
		Title:      "Round trip",
		SeedOffset: 7,
		Topology: Topology{Family: FamilyMulticell, Placements: 3, Cells: 2,
			APs: 2, Clients: 4, CSRangeM: 30, InterferenceRangeM: 100},
		Traffic: Traffic{Model: ModelOnOff, PayloadBytes: 1000, RatePps: 500,
			BurstOnSec: 0.02, BurstOffSec: 0.08, DeadlineSec: 0.05, WindowSec: 2},
		Mobility: &Mobility{EpochSec: 0.25, SpeedMps: 10},
		Churn:    &Churn{JoinStaggerSec: 0.05, LeaveAfterSec: 1},
		Schemes:  []string{"joint"},
	}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mutated the spec:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseRejectsUnknownFieldByName(t *testing.T) {
	// The classic typo: the error must name the offending field so the
	// submitter knows exactly what to fix.
	_, err := Parse([]byte(`{"version":1,"name":"t",
		"topology":{"family":"cell","placements":2,"aps":2,"clients":4,"cs_rangs":20},
		"traffic":{"model":"backlogged","packets":10,"payload_bytes":1460}}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !strings.Contains(err.Error(), "cs_rangs") {
		t.Fatalf("error does not name the offending field: %v", err)
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	_, err := Parse([]byte(`{"version":1,"name":"t",
		"topology":{"family":"cell","placements":2,"aps":2,"clients":4},
		"traffic":{"model":"backlogged","packets":10,"payload_bytes":1460}} {"extra":1}`))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing data not rejected: %v", err)
	}
}

func TestValidateErrorTable(t *testing.T) {
	// Every rejection names the offending field (or value); the table is
	// the contract for actionable errors.
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"missing version", func(s *Spec) { s.Version = 0 }, `"version"`},
		{"future version", func(s *Spec) { s.Version = 2 }, "unsupported"},
		{"missing name", func(s *Spec) { s.Name = "" }, `"name"`},
		{"uppercase name", func(s *Spec) { s.Name = "Bad Name" }, "lowercase"},
		{"unknown family", func(s *Spec) { s.Topology.Family = "mesh" }, `"topology.family"`},
		{"missing family", func(s *Spec) { s.Topology.Family = "" }, `"topology.family"`},
		{"no placements", func(s *Spec) { s.Topology.Placements = 0 }, `"topology.placements"`},
		{"no aps", func(s *Spec) { s.Topology.APs = 0 }, `"topology.aps"`},
		{"no clients", func(s *Spec) { s.Topology.Clients = 0 }, `"topology.clients"`},
		{"cells without multicell", func(s *Spec) { s.Topology.Cells = 3 }, `"topology.cells"`},
		{"multicell without cells", func(s *Spec) {
			s.Topology.Family = FamilyMulticell
			s.Topology.CSRangeM = 30
		}, `"topology.cells"`},
		{"multicell without cs range", func(s *Spec) {
			s.Topology.Family = FamilyMulticell
			s.Topology.Cells = 2
		}, `"topology.cs_range_m"`},
		{"unknown model", func(s *Spec) { s.Traffic.Model = "cbr" }, `"traffic.model"`},
		{"missing model", func(s *Spec) { s.Traffic.Model = "" }, `"traffic.model"`},
		{"no payload", func(s *Spec) { s.Traffic.PayloadBytes = 0 }, `"traffic.payload_bytes"`},
		{"poisson without rate", func(s *Spec) { s.Traffic.RatePps = 0 }, `"traffic.rate_pps"`},
		{"poisson with rate and sweep", func(s *Spec) {
			s.Traffic.RateSweepPps = []float64{10}
		}, "exactly one"},
		{"poisson without window", func(s *Spec) { s.Traffic.WindowSec = 0 }, `"traffic.window_sec"`},
		{"poisson with packets", func(s *Spec) { s.Traffic.Packets = 5 }, `"traffic.packets"`},
		{"poisson with burst fields", func(s *Spec) { s.Traffic.BurstOnSec = 0.1 }, "burst"},
		{"negative sweep entry", func(s *Spec) {
			s.Traffic.RatePps = 0
			s.Traffic.RateSweepPps = []float64{10, -1}
		}, `"traffic.rate_sweep_pps"`},
		{"backlogged without size", func(s *Spec) {
			s.Traffic = Traffic{Model: ModelBacklogged, PayloadBytes: 1460}
		}, `"traffic.packets"`},
		{"backlogged with rate", func(s *Spec) {
			s.Traffic = Traffic{Model: ModelBacklogged, PayloadBytes: 1460, Packets: 10, RatePps: 5}
		}, "takes no"},
		{"backlogged multicell", func(s *Spec) {
			s.Topology.Family = FamilyMulticell
			s.Topology.Cells = 2
			s.Topology.CSRangeM = 30
			s.Traffic = Traffic{Model: ModelBacklogged, PayloadBytes: 1460, Packets: 10}
		}, "cellsweep"},
		{"onoff without burst", func(s *Spec) {
			s.Traffic = Traffic{Model: ModelOnOff, PayloadBytes: 1460, RatePps: 100, WindowSec: 1}
		}, `"traffic.burst_on_sec"`},
		{"onoff with sweep", func(s *Spec) {
			s.Traffic = Traffic{Model: ModelOnOff, PayloadBytes: 1460, RatePps: 100,
				BurstOnSec: 0.1, WindowSec: 1, RateSweepPps: []float64{10}}
		}, `"traffic.rate_sweep_pps"`},
		{"mobility without multicell", func(s *Spec) {
			s.Mobility = &Mobility{EpochSec: 0.25, SpeedMps: 10}
		}, `"mobility"`},
		{"mobility zero epoch", func(s *Spec) {
			s.Mobility = &Mobility{SpeedMps: 10}
		}, `"mobility.epoch_sec"`},
		{"mobility zero speed", func(s *Spec) {
			s.Mobility = &Mobility{EpochSec: 0.25}
		}, `"mobility.speed_mps"`},
		{"churn with backlogged", func(s *Spec) {
			s.Traffic = Traffic{Model: ModelBacklogged, PayloadBytes: 1460, Packets: 10}
			s.Churn = &Churn{JoinStaggerSec: 0.1}
		}, `"churn"`},
		{"empty churn", func(s *Spec) { s.Churn = &Churn{} }, `"churn"`},
		{"churn past window", func(s *Spec) {
			s.Churn = &Churn{JoinStaggerSec: 0.5} // 4 clients: last join at 1.5s of a 1s window
		}, "beyond"},
		{"unknown scheme", func(s *Spec) { s.Schemes = []string{"triple"} }, `"schemes"`},
		{"duplicate scheme", func(s *Spec) { s.Schemes = []string{"joint", "joint"} }, "twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := validArrivals()
			tc.mutate(sp)
			err := sp.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestValidAcceptsEveryModel(t *testing.T) {
	specs := map[string]*Spec{
		"backlogged": {
			Version:  1,
			Name:     "b",
			Topology: Topology{Family: FamilyCell, Placements: 1, APs: 1, Clients: 1},
			Traffic:  Traffic{Model: ModelBacklogged, Packets: 10, PayloadBytes: 1000},
		},
		"poisson": validArrivals(),
		"onoff": {
			Version:  1,
			Name:     "o",
			Topology: Topology{Family: FamilyCell, Placements: 1, APs: 1, Clients: 1},
			Traffic: Traffic{Model: ModelOnOff, PayloadBytes: 1000, RatePps: 100,
				BurstOnSec: 0.1, BurstOffSec: 0.2, WindowSec: 1},
		},
	}
	for _, name := range slices.Sorted(maps.Keys(specs)) {
		if err := specs[name].Validate(); err != nil {
			t.Errorf("%s: valid spec rejected: %v", name, err)
		}
	}
}

func TestBuiltinsParseAndMirrorExamples(t *testing.T) {
	// The registered data-driven scenarios must parse, and the copies
	// under examples/ (what users start from, what CI runs) must be
	// byte-identical to the embedded ones.
	for _, name := range BuiltinNames() {
		sp, raw := Builtin(name)
		if sp.Name != name {
			t.Errorf("builtin %q declares name %q", name, sp.Name)
		}
		example, err := os.ReadFile(filepath.Join("..", "..", "examples", name+".json"))
		if err != nil {
			t.Fatalf("builtin %q has no examples/ mirror: %v", name, err)
		}
		if string(example) != string(raw) {
			t.Errorf("examples/%s.json differs from the embedded builtin; copy one over the other", name)
		}
	}
}

func TestSchemeListDefaultsAndOrders(t *testing.T) {
	sp := validArrivals()
	if got := sp.SchemeList(); !reflect.DeepEqual(got, []string{SchemeSingle, SchemeJoint}) {
		t.Fatalf("default scheme list %v", got)
	}
	sp.Schemes = []string{SchemeJoint, SchemeSingle}
	if got := sp.SchemeList(); !reflect.DeepEqual(got, []string{SchemeSingle, SchemeJoint}) {
		t.Fatalf("scheme list not canonicalized: %v", got)
	}
	sp.Schemes = []string{SchemeJoint}
	if got := sp.SchemeList(); !reflect.DeepEqual(got, []string{SchemeJoint}) {
		t.Fatalf("single-scheme list mangled: %v", got)
	}
}
