package scenario

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

// TestArchitectureDocCoversEverySpecField is the scenario arm of the
// docs-freshness contract: every top-level JSON field of Spec must be
// mentioned (backtick-quoted) in docs/ARCHITECTURE.md's "scenarios as
// data" section, so growing the spec without documenting the new field
// fails CI — the same way internal/experiments gates experiment names and
// internal/serve gates HTTP endpoints.
func TestArchitectureDocCoversEverySpecField(t *testing.T) {
	data, err := os.ReadFile("../../docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("docs/ARCHITECTURE.md must exist: %v", err)
	}
	doc := string(data)
	typ := reflect.TypeOf(Spec{})
	for i := 0; i < typ.NumField(); i++ {
		tag := strings.Split(typ.Field(i).Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			continue
		}
		if !strings.Contains(doc, "`"+tag+"`") {
			t.Errorf("docs/ARCHITECTURE.md does not mention scenario spec field %q (expected a `%s` reference)", tag, tag)
		}
	}
}
