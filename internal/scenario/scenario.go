// Package scenario defines the declarative scenario spec: a versioned
// JSON document describing a topology family, a traffic model, optional
// mobility and churn, and the scheme set to compare — everything a
// simulation run needs, as data instead of per-experiment Go code
// (ROADMAP item 4).
//
// Specs are strict: decoding rejects unknown fields (so a typo like
// "cs_rangs" fails loudly, naming the field), requires an explicit
// "version", and validation errors name the offending field with the
// accepted values. The executor for a parsed spec lives in the root
// package (RunScenario); the renderer in internal/experiments. This
// package stays pure data so ssserve can validate an inline spec at
// submit time without pulling in the simulator.
package scenario

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Version is the spec schema version this package decodes.
const Version = 1

// Spec is one declarative scenario. The JSON form is the wire format
// accepted by `ssbench -scenario` and ssserve's inline "scenario" jobs;
// see examples/*.json for complete documents.
type Spec struct {
	// Version is the spec schema version; must be exactly 1.
	Version int `json:"version"`
	// Name identifies the scenario (lowercase, no spaces). Registered
	// builtin scenarios use their experiment name here.
	Name string `json:"name"`
	// Title overrides the rendered header; empty derives one from Name.
	Title string `json:"title,omitempty"`
	// SeedOffset is added to Params.Seed, mirroring how every registered
	// experiment derives its own seed stream from the base seed.
	SeedOffset int64 `json:"seed_offset,omitempty"`
	// Topology picks the floor layout family and its dimensions.
	Topology Topology `json:"topology"`
	// Traffic picks the per-client arrival model.
	Traffic Traffic `json:"traffic"`
	// Mobility, when present, drifts every client between waypoint epochs.
	Mobility *Mobility `json:"mobility,omitempty"`
	// Churn, when present, staggers client joins and schedules leaves.
	Churn *Churn `json:"churn,omitempty"`
	// Schemes lists the serving schemes to run ("single", "joint");
	// empty runs both.
	Schemes []string `json:"schemes,omitempty"`
}

// Topology describes the floor layout.
type Topology struct {
	// Family is "cell" (one collision domain, APs spread over one floor)
	// or "multicell" (Cells cells in a row, carrier sense splitting them
	// into neighborhoods).
	Family string `json:"family"`
	// Placements is the number of random placements averaged over.
	Placements int `json:"placements"`
	// Cells is the number of cells for the multicell family.
	Cells int `json:"cells,omitempty"`
	// APs is the number of APs per cell.
	APs int `json:"aps"`
	// Clients is the number of clients per cell.
	Clients int `json:"clients"`
	// CSRangeM is the carrier-sense range in meters; required for
	// multicell (it is what makes cells distinct neighborhoods).
	CSRangeM float64 `json:"cs_range_m,omitempty"`
	// InterferenceRangeM bounds the per-frame interference scan; 0 scans
	// every concurrent transmission (exact, fine at these sizes).
	InterferenceRangeM float64 `json:"interference_range_m,omitempty"`
}

// Traffic describes the per-client arrival model.
type Traffic struct {
	// Model is "backlogged" (classic saturation), "poisson" (memoryless
	// arrivals), or "onoff" (bursty arrivals).
	Model string `json:"model"`
	// Packets is the per-client backlog for the backlogged model.
	Packets int `json:"packets,omitempty"`
	// PayloadBytes is the downlink payload size.
	PayloadBytes int `json:"payload_bytes"`
	// RatePps is the per-client arrival rate (poisson: mean rate; onoff:
	// rate while a burst is on).
	RatePps float64 `json:"rate_pps,omitempty"`
	// RateSweepPps sweeps the per-client poisson rate over these values,
	// one table row each (poisson only, exclusive with RatePps).
	RateSweepPps []float64 `json:"rate_sweep_pps,omitempty"`
	// BurstOnSec / BurstOffSec are the onoff model's mean burst and
	// silence durations.
	BurstOnSec  float64 `json:"burst_on_sec,omitempty"`
	BurstOffSec float64 `json:"burst_off_sec,omitempty"`
	// DeadlineSec expires a queued packet whose wait exceeds it before
	// service starts; 0 means no deadline.
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
	// WindowSec is the run's virtual-time window; required for arrival
	// models, optional for backlogged (fixed-window saturation mode).
	WindowSec float64 `json:"window_sec,omitempty"`
}

// Mobility drifts every client along +X by SpeedMps·EpochSec at each
// epoch boundary, re-deriving its serving cell, links, and the spatial
// index deterministically.
type Mobility struct {
	EpochSec float64 `json:"epoch_sec"`
	SpeedMps float64 `json:"speed_mps"`
}

// Churn staggers client lifetimes inside the run window.
type Churn struct {
	// JoinStaggerSec delays client i's join to i·JoinStaggerSec.
	JoinStaggerSec float64 `json:"join_stagger_sec,omitempty"`
	// LeaveAfterSec makes each client leave that long after joining,
	// abandoning its queue; 0 stays to the end.
	LeaveAfterSec float64 `json:"leave_after_sec,omitempty"`
}

// Topology families and traffic models accepted by Validate.
const (
	FamilyCell      = "cell"
	FamilyMulticell = "multicell"

	ModelBacklogged = "backlogged"
	ModelPoisson    = "poisson"
	ModelOnOff      = "onoff"

	SchemeSingle = "single"
	SchemeJoint  = "joint"
)

// Parse strictly decodes one spec document: unknown fields, trailing
// data, a missing or unsupported version, and invalid field values are
// all errors that name what is wrong.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario spec: trailing data after the JSON document")
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Validate reports the first invalid field, naming it and the accepted
// values, so a rejected submit tells the caller exactly what to fix.
func (sp *Spec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario spec: "+format, args...)
	}
	if sp.Version == 0 {
		return bad(`missing "version" (this decoder accepts version %d)`, Version)
	}
	if sp.Version != Version {
		return bad(`"version" %d unsupported (this decoder accepts version %d)`, sp.Version, Version)
	}
	if sp.Name == "" {
		return bad(`missing "name"`)
	}
	if strings.ToLower(sp.Name) != sp.Name || strings.ContainsAny(sp.Name, " \t\n") {
		return bad(`"name" %q must be lowercase with no spaces`, sp.Name)
	}
	if err := sp.Topology.validate(); err != nil {
		return err
	}
	if err := sp.Traffic.validate(); err != nil {
		return err
	}
	if sp.Traffic.Model == ModelBacklogged && sp.Topology.Family != FamilyCell {
		return bad(`"traffic.model" %q requires the %q topology family (multicell saturation is the cellsweep experiment)`,
			ModelBacklogged, FamilyCell)
	}
	if sp.Mobility != nil {
		if sp.Mobility.EpochSec <= 0 {
			return bad(`"mobility.epoch_sec" must be > 0`)
		}
		if sp.Mobility.SpeedMps <= 0 {
			return bad(`"mobility.speed_mps" must be > 0 (clients drift along +X)`)
		}
		if sp.Topology.Family != FamilyMulticell {
			return bad(`"mobility" requires the %q topology family (cells to drift between)`, FamilyMulticell)
		}
		if sp.Traffic.WindowSec <= 0 {
			return bad(`"mobility" requires "traffic.window_sec" > 0 (epochs need a run window)`)
		}
		if len(sp.Traffic.RateSweepPps) > 0 {
			return bad(`"mobility" cannot be combined with "traffic.rate_sweep_pps" (one table at a time)`)
		}
	}
	if sp.Churn != nil {
		if sp.Traffic.Model == ModelBacklogged {
			return bad(`"churn" requires an arrival traffic model (%q or %q), not %q`,
				ModelPoisson, ModelOnOff, ModelBacklogged)
		}
		if sp.Churn.JoinStaggerSec < 0 || sp.Churn.LeaveAfterSec < 0 {
			return bad(`"churn" times must be >= 0`)
		}
		if sp.Churn.JoinStaggerSec == 0 && sp.Churn.LeaveAfterSec == 0 {
			return bad(`"churn" present but empty: set "join_stagger_sec" and/or "leave_after_sec"`)
		}
		n := sp.Topology.totalClients()
		if last := sp.Churn.JoinStaggerSec * float64(n-1); last >= sp.Traffic.WindowSec {
			return bad(`"churn.join_stagger_sec" %g puts the last of %d clients' join at %gs, beyond the %gs window`,
				sp.Churn.JoinStaggerSec, n, last, sp.Traffic.WindowSec)
		}
	}
	seen := map[string]bool{}
	for _, s := range sp.Schemes {
		if s != SchemeSingle && s != SchemeJoint {
			return bad(`"schemes" entry %q unknown (valid: %q, %q)`, s, SchemeSingle, SchemeJoint)
		}
		if seen[s] {
			return bad(`"schemes" lists %q twice`, s)
		}
		seen[s] = true
	}
	if sp.Traffic.Model == ModelBacklogged && len(sp.Schemes) == 1 {
		return bad(`backlogged scenarios always compare both schemes; drop "schemes" or list both`)
	}
	return nil
}

func (t *Topology) validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario spec: "+format, args...)
	}
	switch t.Family {
	case FamilyCell:
		if t.Cells > 1 {
			return bad(`"topology.cells" %d needs the %q family`, t.Cells, FamilyMulticell)
		}
	case FamilyMulticell:
		if t.Cells < 2 {
			return bad(`"topology.family" %q requires "topology.cells" >= 2`, FamilyMulticell)
		}
		if t.CSRangeM <= 0 {
			return bad(`"topology.family" %q requires "topology.cs_range_m" > 0 (carrier sense is what separates the cells)`, FamilyMulticell)
		}
	case "":
		return bad(`missing "topology.family" (valid: %q, %q)`, FamilyCell, FamilyMulticell)
	default:
		return bad(`"topology.family" %q unknown (valid: %q, %q)`, t.Family, FamilyCell, FamilyMulticell)
	}
	if t.Placements < 1 {
		return bad(`"topology.placements" must be >= 1`)
	}
	if t.APs < 1 {
		return bad(`"topology.aps" must be >= 1`)
	}
	if t.Clients < 1 {
		return bad(`"topology.clients" must be >= 1`)
	}
	if t.CSRangeM < 0 {
		return bad(`"topology.cs_range_m" must be >= 0`)
	}
	if t.InterferenceRangeM < 0 {
		return bad(`"topology.interference_range_m" must be >= 0`)
	}
	return nil
}

func (tr *Traffic) validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario spec: "+format, args...)
	}
	if tr.PayloadBytes < 1 {
		return bad(`"traffic.payload_bytes" must be >= 1`)
	}
	if tr.WindowSec < 0 || tr.DeadlineSec < 0 || tr.RatePps < 0 ||
		tr.BurstOnSec < 0 || tr.BurstOffSec < 0 {
		return bad(`"traffic" durations and rates must be >= 0`)
	}
	for _, v := range tr.RateSweepPps {
		if v <= 0 {
			return bad(`"traffic.rate_sweep_pps" entries must be > 0`)
		}
	}
	switch tr.Model {
	case ModelBacklogged:
		if tr.Packets < 1 && tr.WindowSec == 0 {
			return bad(`"traffic.model" %q requires "traffic.packets" >= 1 or "traffic.window_sec" > 0`, ModelBacklogged)
		}
		if tr.RatePps != 0 || len(tr.RateSweepPps) != 0 || tr.BurstOnSec != 0 ||
			tr.BurstOffSec != 0 || tr.DeadlineSec != 0 {
			return bad(`"traffic.model" %q takes no arrival-rate, burst, or deadline fields`, ModelBacklogged)
		}
	case ModelPoisson:
		if (tr.RatePps > 0) == (len(tr.RateSweepPps) > 0) {
			return bad(`"traffic.model" %q requires exactly one of "traffic.rate_pps" or "traffic.rate_sweep_pps"`, ModelPoisson)
		}
		if tr.BurstOnSec != 0 || tr.BurstOffSec != 0 {
			return bad(`"traffic" burst fields need the %q model`, ModelOnOff)
		}
		if tr.WindowSec <= 0 {
			return bad(`"traffic.model" %q requires "traffic.window_sec" > 0`, ModelPoisson)
		}
		if tr.Packets != 0 {
			return bad(`"traffic.packets" is a %q-model field`, ModelBacklogged)
		}
	case ModelOnOff:
		if tr.RatePps <= 0 {
			return bad(`"traffic.model" %q requires "traffic.rate_pps" > 0 (the in-burst rate)`, ModelOnOff)
		}
		if len(tr.RateSweepPps) != 0 {
			return bad(`"traffic.rate_sweep_pps" is only supported for the %q model`, ModelPoisson)
		}
		if tr.BurstOnSec <= 0 {
			return bad(`"traffic.model" %q requires "traffic.burst_on_sec" > 0`, ModelOnOff)
		}
		if tr.WindowSec <= 0 {
			return bad(`"traffic.model" %q requires "traffic.window_sec" > 0`, ModelOnOff)
		}
		if tr.Packets != 0 {
			return bad(`"traffic.packets" is a %q-model field`, ModelBacklogged)
		}
	case "":
		return bad(`missing "traffic.model" (valid: %q, %q, %q)`, ModelBacklogged, ModelPoisson, ModelOnOff)
	default:
		return bad(`"traffic.model" %q unknown (valid: %q, %q, %q)`, tr.Model, ModelBacklogged, ModelPoisson, ModelOnOff)
	}
	return nil
}

// totalClients is the number of client flows the spec instantiates.
func (t *Topology) totalClients() int {
	cells := t.Cells
	if cells < 1 {
		cells = 1
	}
	return cells * t.Clients
}

// TotalClients is the number of client flows the spec instantiates.
func (sp *Spec) TotalClients() int { return sp.Topology.totalClients() }

// SchemeList returns the schemes to run in canonical order (single before
// joint), defaulting to both when the spec names none.
func (sp *Spec) SchemeList() []string {
	if len(sp.Schemes) == 0 {
		return []string{SchemeSingle, SchemeJoint}
	}
	out := append([]string(nil), sp.Schemes...)
	sort.Slice(out, func(i, j int) bool { return out[i] == SchemeSingle && out[j] == SchemeJoint })
	return out
}

// DisplayTitle is the rendered header: Title, or one derived from Name.
func (sp *Spec) DisplayTitle() string {
	if sp.Title != "" {
		return sp.Title
	}
	return fmt.Sprintf("Scenario %s", sp.Name)
}

//go:embed builtin/arrivals.json builtin/mobility.json
var builtinFS embed.FS

// BuiltinNames lists the registered data-driven scenarios, in experiment
// registration order.
func BuiltinNames() []string { return []string{"arrivals", "mobility"} }

// Builtin returns the named registered scenario, parsed and validated,
// plus its raw JSON document (the bytes mirrored under examples/). It
// panics on an unknown name or an invalid embedded spec — both are
// programming errors caught by the package tests.
func Builtin(name string) (*Spec, []byte) {
	raw, err := builtinFS.ReadFile("builtin/" + name + ".json")
	if err != nil {
		panic(fmt.Sprintf("scenario: no builtin %q: %v", name, err))
	}
	sp, err := Parse(raw)
	if err != nil {
		panic(fmt.Sprintf("scenario: builtin %q: %v", name, err))
	}
	return sp, raw
}
