package lasthop

import (
	"math/rand"
	"testing"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/testbed"
)

func testConfig(snrs []float64, packets int) Config {
	cfg := modem.Profile80211()
	tb := testbed.Default(cfg)
	links := make([]testbed.Link, len(snrs))
	for i, s := range snrs {
		links[i] = tb.LinkAtSNR(s, 10)
	}
	return Config{
		Mac:          mac.Default(cfg),
		PayloadBytes: 1460,
		APLinks:      links,
		Packets:      packets,
	}
}

func TestSingleAPThroughputScalesWithSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	weak := testConfig([]float64{6}, 300).RunSingleAP(rng, 0)
	strong := testConfig([]float64{25}, 300).RunSingleAP(rng, 0)
	if weak.ThroughputBps <= 0 || strong.ThroughputBps <= 0 {
		t.Fatalf("throughputs %v %v", weak.ThroughputBps, strong.ThroughputBps)
	}
	if strong.ThroughputBps < 2*weak.ThroughputBps {
		t.Fatalf("25 dB (%.1f Mbps) should be much faster than 6 dB (%.1f Mbps)",
			strong.ThroughputBps/1e6, weak.ThroughputBps/1e6)
	}
	// At 25 dB the achieved rate should approach (but not exceed) the top
	// PHY rates.
	if strong.ThroughputBps > 54e6 {
		t.Fatalf("throughput %.1f Mbps exceeds PHY limit", strong.ThroughputBps/1e6)
	}
}

func TestJointBeatsSingleAtModerateSNR(t *testing.T) {
	// Two comparable mediocre APs: joint transmission should deliver
	// noticeably more than the best single AP (paper Fig. 17: median 1.57x).
	rng := rand.New(rand.NewSource(2))
	c := testConfig([]float64{9, 8}, 400)
	single := c.RunBestSingleAP(rng)
	joint := c.RunJoint(rng)
	if joint.ThroughputBps <= single.ThroughputBps {
		t.Fatalf("joint %.2f Mbps not better than single %.2f Mbps",
			joint.ThroughputBps/1e6, single.ThroughputBps/1e6)
	}
}

func TestJointOverheadVisibleAtHighSNR(t *testing.T) {
	// When one AP already runs at the top rate, the joint mode's extra
	// airtime (sync gap + CE) means it cannot be dramatically better; it
	// must at least stay within a sane band, not collapse.
	rng := rand.New(rand.NewSource(3))
	c := testConfig([]float64{30, 30}, 400)
	single := c.RunBestSingleAP(rng)
	joint := c.RunJoint(rng)
	ratio := joint.ThroughputBps / single.ThroughputBps
	if ratio < 0.85 || ratio > 1.3 {
		t.Fatalf("high-SNR joint/single ratio %.2f out of band", ratio)
	}
}

func TestRateHistogramPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := testConfig([]float64{18}, 200)
	res := c.RunSingleAP(rng, 0)
	total := 0
	for _, n := range res.RateHistogram {
		total += n
	}
	if total != 200 {
		t.Fatalf("histogram covers %d packets", total)
	}
	if res.Delivered < 150 {
		t.Fatalf("only %d/200 delivered at 18 dB", res.Delivered)
	}
}

func TestDeadLinkDeliversNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := testConfig([]float64{-10}, 50)
	res := c.RunSingleAP(rng, 0)
	if res.Delivered != 0 {
		t.Fatalf("delivered %d packets over a dead link", res.Delivered)
	}
}
