package lasthop

import (
	"math/rand"

	"repro/internal/mac"
	"repro/internal/netsim"
	"repro/internal/samplerate"
	"repro/internal/testbed"
)

// Cell describes a multi-client WLAN cell (§8.3 scaled up): N clients with
// backlogged downlink traffic from M APs, all sharing one collision domain.
// Every client's downlink is its own netsim flow with its own SampleRate
// controller at the lead AP, so the clients contend for the medium exactly
// as DCF stations do — the scenario the single-client Config cannot
// express.
type Cell struct {
	Mac          mac.Params
	PayloadBytes int
	// Links[c][a] is the AP a -> client c link.
	Links [][]testbed.Link
	// DataCPIncrease is the extra cyclic prefix (samples) joint frames
	// spend on residual misalignment.
	DataCPIncrease int
	// PacketsPerClient is each client's downlink backlog.
	PacketsPerClient int
}

// ClientResult is one client's share of a cell run.
type ClientResult struct {
	ThroughputBps float64 // delivered bits over the whole run's virtual time
	Delivered     int
	Dropped       int
	Collisions    int
}

// CellResult summarizes a cell run.
type CellResult struct {
	PerClient    []ClientResult
	AggregateBps float64 // all delivered bits over the run's virtual time
	Delivered    int
	Elapsed      float64 // virtual seconds to drain every backlog
	Acquisitions int
	Collisions   int // collision rounds on the medium
	Utilization  float64
}

// RunBestSingleAP runs the cell with selective diversity: each client is
// served by its best AP (highest average SNR), one frame in the air at a
// time, per-client SampleRate.
func (c Cell) RunBestSingleAP(rng *rand.Rand) CellResult {
	ft := frameTimes(c.Mac, c.PayloadBytes, false, 0, 0)
	return c.run(rng, ft, func(client int) func(*rand.Rand, int, *samplerate.SampleRate) bool {
		best := 0
		for a := range c.Links[client] {
			if c.Links[client][a].SNRdB > c.Links[client][best].SNRdB {
				best = a
			}
		}
		link := c.Links[client][best]
		return func(rng *rand.Rand, idx int, sr *samplerate.SampleRate) bool {
			return netsim.LinkDeliver(rng, link, sr.Rate(idx), c.PayloadBytes)
		}
	})
}

// RunJoint runs the cell with SourceSync: every downlink frame is sent
// jointly by all of the client's APs (summed per-subcarrier SNR), paying
// the joint frame overhead.
func (c Cell) RunJoint(rng *rand.Rand) CellResult {
	numCo := 0
	for _, links := range c.Links {
		if len(links)-1 > numCo {
			numCo = len(links) - 1
		}
	}
	dataCP := c.Mac.Cfg.CPLen + c.DataCPIncrease
	ft := frameTimes(c.Mac, c.PayloadBytes, true, numCo, dataCP)
	return c.run(rng, ft, func(client int) func(*rand.Rand, int, *samplerate.SampleRate) bool {
		links := c.Links[client]
		return func(rng *rand.Rand, idx int, sr *samplerate.SampleRate) bool {
			return netsim.JointLinkDeliver(rng, links, sr.Rate(idx), c.PayloadBytes)
		}
	})
}

// run wires one flow per client into a shared netsim and drains the
// backlogs. deliver(client) returns the client's per-attempt reception
// draw.
func (c Cell) run(rng *rand.Rand, ft []float64, deliver func(client int) func(*rand.Rand, int, *samplerate.SampleRate) bool) CellResult {
	sim := netsim.New(c.Mac, rng)
	n := len(c.Links)
	flows := make([]*netsim.Flow, n)
	for client := 0; client < n; client++ {
		sr := samplerate.New(ft)
		remaining := c.PacketsPerClient
		attempt := deliver(client)
		flows[client] = sim.AddFlow(&netsim.Flow{
			Acked:      true,
			HasTraffic: func() bool { return remaining > 0 },
			Prepare: func(rng *rand.Rand) int {
				idx, _ := sr.Pick(rng)
				return idx
			},
			FrameTime: func(i int) float64 { return ft[i] },
			Deliver: func(rng *rand.Rand, i int) bool {
				return attempt(rng, i, sr)
			},
			Done: func(i int, delivered bool, air float64) {
				remaining--
				sr.Update(i, delivered, air)
			},
		})
	}
	sim.Run()

	res := CellResult{
		PerClient:    make([]ClientResult, n),
		Elapsed:      sim.Now(),
		Acquisitions: sim.Acquisitions,
		Collisions:   sim.CollisionRounds,
	}
	for i, f := range flows {
		res.PerClient[i] = ClientResult{
			Delivered:  f.Delivered,
			Dropped:    f.Dropped,
			Collisions: f.Collisions,
		}
		if res.Elapsed > 0 {
			res.PerClient[i].ThroughputBps = float64(f.Delivered*c.PayloadBytes*8) / res.Elapsed
		}
		res.Delivered += f.Delivered
	}
	if res.Elapsed > 0 {
		res.AggregateBps = float64(res.Delivered*c.PayloadBytes*8) / res.Elapsed
		res.Utilization = sim.BusyTime() / res.Elapsed
	}
	return res
}
