package lasthop

import (
	"math/rand"

	"repro/internal/mac"
	"repro/internal/netsim"
	"repro/internal/samplerate"
	"repro/internal/testbed"
)

// Cell describes a multi-client WLAN deployment (§8.3 scaled up): N clients
// with backlogged downlink traffic, each served by its own set of APs, all
// driven as contending netsim flows with per-client SampleRate controllers.
// With only Links set the cell is one collision domain; with the spatial
// fields set (positions, Env, CSRangeM) the clients may span several
// carrier-sense neighborhoods — e.g. multiple cells of a building — whose
// downlinks reuse the medium concurrently, each neighborhood advancing at
// its own pace on netsim's event clock. With an interference model
// configured (Model, or the legacy CaptureDB gate), concurrent
// out-of-range downlinks can also corrupt each other at the receivers
// (hidden terminals) — those losses surface as HiddenLosses — and, under
// the rate-aware model, degrade each other's delivery draws (surfaced as
// Degraded and the per-rate RateCorruption stats).
type Cell struct {
	Mac          mac.Params
	PayloadBytes int
	// Links[c][a] is the a-th serving AP -> client c link. Rows may have
	// different lengths (clients in different cells see different APs).
	Links [][]testbed.Link
	// DataCPIncrease is the extra cyclic prefix (samples) joint frames
	// spend on residual misalignment.
	DataCPIncrease int
	// PacketsPerClient is each client's downlink backlog.
	PacketsPerClient int

	// Spatial reuse (optional; leave zero for one collision domain).
	// APPos[c][a] is the position of client c's a-th serving AP, parallel
	// to Links; ClientPos[c] is the client's own position.
	APPos     [][]testbed.Point
	ClientPos []testbed.Point
	// CSRangeM is the carrier-sense range between transmitters (meters);
	// <= 0 keeps every flow in one collision domain.
	CSRangeM float64
	// CaptureDB is the SINR threshold of the legacy binary interference
	// model; 0 disables capture. Ignored when Model is set.
	CaptureDB float64
	// Model selects the netsim interference model settling interfered
	// downlinks (e.g. netsim.NewRateAware over the SampleRate rate table);
	// nil falls back to the binary CaptureDB gate.
	Model netsim.InterferenceModel
	// Env prices interference for the capture model.
	Env *testbed.Testbed
	// InterferenceRangeM bounds each settled frame's interference scan to
	// transmitters near the receiver (netsim.Sim.InterferenceRangeM).
	// <= 0 scans every transmission on the air — exact, but O(all flows)
	// per settle; city-scale deployments set it to the radius beyond which
	// interference is below noise.
	InterferenceRangeM float64

	// WindowSec switches the run to fixed-time-window saturation mode:
	// when positive, every client offers an unbounded backlog and the run
	// stops once the virtual clock reaches the window, so one starved
	// boundary client no longer gates the elapsed time. PacketsPerClient
	// is ignored in this mode.
	WindowSec float64

	// Traffic, when set, replaces client c's backlog with an arrival
	// process: the cell attaches Traffic(c) to the flow (netsim's traffic
	// layer), so the client contends exactly while packets are queued and
	// is free — no airtime, no RNG draws — while idle. Requires WindowSec
	// > 0 (an arrival-driven run ends on the clock, not on a drained
	// backlog); PacketsPerClient is ignored. Each call must return a fresh
	// TrafficConfig (arrival processes carry per-flow state).
	Traffic func(client int) netsim.TrafficConfig
	// MobilityEpochSec, with MoveClients, drifts the deployment: every
	// epoch the cell calls MoveClients (which mutates ClientPos, Links,
	// and APPos rows in place), rebuilds each client's serving plan and
	// flow geometry from the mutated rows, re-indexes carrier-sense
	// neighborhoods (netsim.Sim.Reindex), and wakes every flow. Epoch
	// callbacks run inside the event drain in deterministic order, so
	// mobility is as reproducible as the rest of the run. Requires
	// WindowSec > 0.
	MobilityEpochSec float64
	MoveClients      func(now float64)
}

// ClientResult is one client's share of a cell run.
type ClientResult struct {
	ThroughputBps float64 // delivered bits over the whole run's virtual time
	Delivered     int
	Dropped       int
	Collisions    int
	// HiddenLosses counts downlink attempts corrupted by transmitters
	// beyond carrier-sense range (hidden terminals); always 0 unless the
	// cell configures an interference model and spans several
	// neighborhoods.
	HiddenLosses int
	// Degraded counts attempts whose delivery draw ran at an
	// interference-degraded effective SNR (rate-aware model only).
	Degraded int
}

// CellResult summarizes a cell run.
type CellResult struct {
	PerClient    []ClientResult
	AggregateBps float64 // all delivered bits over the run's virtual time
	Delivered    int
	Elapsed      float64 // virtual seconds to drain every backlog
	Acquisitions int
	Collisions   int // collision rounds on the medium
	// Captures sums the clients' colliding attempts that survived by
	// physical-layer capture (the interference model cleared them).
	Captures int
	// HiddenLosses sums the clients' attempts corrupted by hidden-terminal
	// interference (out-of-range concurrent transmitters).
	HiddenLosses int
	// Utilization is busy time over elapsed time; under spatial reuse it
	// may exceed 1 (several neighborhoods carrying frames at once).
	Utilization float64
	// RateCorruption[r] aggregates the interference model's outcomes for
	// rate index r across every client — the per-rate corruption-margin
	// stats (interfered / corrupted / degraded counts and summed decode
	// margins). Empty when no attempt was interfered with a model engaged.
	RateCorruption []netsim.RateCorruption
	// Arrived / Expired / Abandoned sum the traffic layer's offered-load
	// accounting over every client; all zero unless Cell.Traffic is set.
	Arrived   int
	Expired   int
	Abandoned int
}

// clientPlan is one client's serving decision: its per-attempt reception
// draw, its per-rate frame airtimes (joint service prices each client's
// own co-sender count, so tables differ when Links rows are ragged), and,
// when the cell is spatial, the geometry of its downlink flow.
type clientPlan struct {
	attempt func(*rand.Rand, int, *samplerate.SampleRate, netsim.Interference) bool
	ft      []float64
	radio   *netsim.Radio
}

// spatial reports whether the cell carries per-flow geometry.
func (c Cell) spatial() bool {
	return len(c.APPos) == len(c.Links) && len(c.ClientPos) == len(c.Links) && len(c.Links) > 0
}

// bestAP returns the index of client's highest-SNR serving AP.
func (c Cell) bestAP(client int) int {
	best := 0
	for a := range c.Links[client] {
		if c.Links[client][a].SNRdB > c.Links[client][best].SNRdB {
			best = a
		}
	}
	return best
}

// radioFor builds the netsim geometry of client's downlink when the cell is
// spatial: the transmitter is the serving AP (ap), the receiver the client,
// and the capture-signal SNR the serving link's average.
func (c Cell) radioFor(client, ap int) *netsim.Radio {
	if !c.spatial() {
		return nil
	}
	return &netsim.Radio{
		TxPos: c.APPos[client][ap],
		RxPos: c.ClientPos[client],
		SNRdB: c.Links[client][ap].SNRdB,
	}
}

// RunBestSingleAP runs the cell with selective diversity: each client is
// served by its best AP (highest average SNR), one frame in the air at a
// time per neighborhood, per-client SampleRate.
func (c Cell) RunBestSingleAP(rng *rand.Rand) CellResult {
	ft := frameTimes(c.Mac, c.PayloadBytes, false, 0, 0)
	return c.run(rng, func(client int) clientPlan {
		best := c.bestAP(client)
		link := c.Links[client][best]
		return clientPlan{
			attempt: func(rng *rand.Rand, idx int, sr *samplerate.SampleRate, ix netsim.Interference) bool {
				return netsim.LinkDeliverScaled(rng, link, sr.Rate(idx), c.PayloadBytes, ix.SNRScale)
			},
			ft:    ft,
			radio: c.radioFor(client, best),
		}
	})
}

// RunJoint runs the cell with SourceSync: every downlink frame is sent
// jointly by all of the client's serving APs (summed per-subcarrier SNR),
// paying the joint frame overhead. For carrier sense and capture the flow
// is anchored at the lead (best) AP.
func (c Cell) RunJoint(rng *rand.Rand) CellResult {
	// Each client pays the joint overhead of its own co-sender count, so
	// ragged Links rows (clients served by different AP sets) are priced
	// correctly. Frame-time tables are shared between clients with equal
	// counts — SampleRate is per client regardless.
	dataCP := c.Mac.Cfg.CPLen + c.DataCPIncrease
	ftByCo := map[int][]float64{}
	return c.run(rng, func(client int) clientPlan {
		links := c.Links[client]
		numCo := len(links) - 1
		ft, ok := ftByCo[numCo]
		if !ok {
			ft = frameTimes(c.Mac, c.PayloadBytes, true, numCo, dataCP)
			ftByCo[numCo] = ft
		}
		return clientPlan{
			attempt: func(rng *rand.Rand, idx int, sr *samplerate.SampleRate, ix netsim.Interference) bool {
				return netsim.JointLinkDeliverScaled(rng, links, sr.Rate(idx), c.PayloadBytes, ix.SNRScale)
			},
			ft:    ft,
			radio: c.radioFor(client, c.bestAP(client)),
		}
	})
}

// run wires one flow per client into a shared netsim and drains the
// backlogs. plan(client) returns the client's per-attempt reception draw,
// frame-time table, and flow geometry.
func (c Cell) run(rng *rand.Rand, plan func(client int) clientPlan) CellResult {
	sim := netsim.New(c.Mac, rng)
	sim.CSRangeM = c.CSRangeM
	sim.CaptureDB = c.CaptureDB
	sim.Model = c.Model
	sim.Env = c.Env
	sim.InterferenceRangeM = c.InterferenceRangeM
	n := len(c.Links)
	flows := make([]*netsim.Flow, n)
	queues := make([]*netsim.Traffic, n)
	// Flow hooks read through plans so a mobility epoch can swap a
	// client's serving plan mid-run; without mobility the entry is written
	// once and the indirection changes nothing.
	plans := make([]clientPlan, n)
	for client := 0; client < n; client++ {
		client := client
		plans[client] = plan(client)
		sr := samplerate.New(plans[client].ft)
		remaining := c.PacketsPerClient
		hasTraffic := func() bool { return remaining > 0 }
		if c.WindowSec > 0 {
			// Fixed-window saturation: backlogs never drain; the clock,
			// not the slowest client, ends the run.
			hasTraffic = func() bool { return true }
		}
		flows[client] = sim.AddFlow(&netsim.Flow{
			Acked:      true,
			Radio:      plans[client].radio,
			HasTraffic: hasTraffic,
			Prepare: func(rng *rand.Rand) int {
				idx, _ := sr.Pick(rng)
				return idx
			},
			FrameTime: func(i int) float64 { return plans[client].ft[i] },
			Deliver: func(rng *rand.Rand, i int, ix netsim.Interference) bool {
				return plans[client].attempt(rng, i, sr, ix)
			},
			Done: func(i int, delivered bool, air float64) {
				remaining--
				sr.Update(i, delivered, air)
			},
		})
		if c.Traffic != nil {
			if c.WindowSec <= 0 {
				panic("lasthop: Cell.Traffic requires WindowSec > 0")
			}
			queues[client] = sim.AttachTraffic(flows[client], c.Traffic(client))
		}
	}
	if c.MobilityEpochSec > 0 && c.MoveClients != nil {
		if c.WindowSec <= 0 {
			panic("lasthop: Cell.MoveClients requires WindowSec > 0")
		}
		var epoch func()
		epoch = func() {
			c.MoveClients(sim.Now())
			for client := range flows {
				plans[client] = plan(client)
				flows[client].Radio = plans[client].radio
				sim.Wake(flows[client])
			}
			sim.Reindex()
			sim.ScheduleAt(sim.Now()+c.MobilityEpochSec, epoch)
		}
		sim.ScheduleAt(c.MobilityEpochSec, epoch)
	}
	if c.WindowSec > 0 {
		sim.RunUntil(c.WindowSec)
	} else {
		sim.Run()
	}

	res := CellResult{
		PerClient:    make([]ClientResult, n),
		Elapsed:      sim.Now(),
		Acquisitions: sim.Acquisitions,
		Collisions:   sim.CollisionRounds,
	}
	for i, f := range flows {
		res.PerClient[i] = ClientResult{
			Delivered:    f.Delivered,
			Dropped:      f.Dropped,
			Collisions:   f.Collisions,
			HiddenLosses: f.HiddenLosses,
		}
		for _, rc := range f.RateCorruption {
			res.PerClient[i].Degraded += rc.Degraded
		}
		if res.Elapsed > 0 {
			res.PerClient[i].ThroughputBps = float64(f.Delivered*c.PayloadBytes*8) / res.Elapsed
		}
		res.Delivered += f.Delivered
		res.HiddenLosses += f.HiddenLosses
		res.Captures += f.Captures
		res.RateCorruption = netsim.MergeRateCorruption(res.RateCorruption, f.RateCorruption)
		if q := queues[i]; q != nil {
			res.Arrived += q.Arrived
			res.Expired += q.Expired
			res.Abandoned += q.Abandoned
		}
	}
	if res.Elapsed > 0 {
		res.AggregateBps = float64(res.Delivered*c.PayloadBytes*8) / res.Elapsed
		res.Utilization = sim.BusyTime() / res.Elapsed
	}
	return res
}
