package lasthop

import (
	"math/rand"
	"testing"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/testbed"
)

// testCell builds an N-client, M-AP cell; snrs[c][a] gives the AP a ->
// client c average SNR.
func testCell(snrs [][]float64, packets int) Cell {
	cfg := modem.Profile80211()
	tb := testbed.Default(cfg)
	links := make([][]testbed.Link, len(snrs))
	for c, row := range snrs {
		links[c] = make([]testbed.Link, len(row))
		for a, s := range row {
			links[c][a] = tb.LinkAtSNR(s, 10)
		}
	}
	return Cell{
		Mac:              mac.Default(cfg),
		PayloadBytes:     1460,
		Links:            links,
		PacketsPerClient: packets,
	}
}

func uniformCell(clients int, snr float64, packets int) Cell {
	snrs := make([][]float64, clients)
	for c := range snrs {
		snrs[c] = []float64{snr, snr - 1}
	}
	return testCell(snrs, packets)
}

func TestCellDrainsEveryBacklog(t *testing.T) {
	c := uniformCell(4, 18, 100)
	res := c.RunBestSingleAP(rand.New(rand.NewSource(1)))
	var total int
	for _, pc := range res.PerClient {
		total += pc.Delivered + pc.Dropped
	}
	if total != 4*100 {
		t.Fatalf("cell retired %d of %d packets", total, 4*100)
	}
	if res.Delivered < 350 {
		t.Fatalf("only %d/400 delivered at 18 dB", res.Delivered)
	}
	if res.Elapsed <= 0 || res.Utilization <= 0 || res.Utilization >= 1 {
		t.Fatalf("accounting: elapsed %.4f utilization %.3f", res.Elapsed, res.Utilization)
	}
}

func TestCellContentionSplitsThroughput(t *testing.T) {
	// Doubling the client count on one medium must not double aggregate
	// throughput, and symmetric clients must see similar shares.
	four := uniformCell(4, 18, 150).RunBestSingleAP(rand.New(rand.NewSource(2)))
	eight := uniformCell(8, 18, 150).RunBestSingleAP(rand.New(rand.NewSource(3)))
	if eight.AggregateBps > four.AggregateBps*1.25 {
		t.Fatalf("8 clients (%.1f Mbps) should not out-scale 4 (%.1f Mbps) on one medium",
			eight.AggregateBps/1e6, four.AggregateBps/1e6)
	}
	var min, max float64
	for i, pc := range eight.PerClient {
		if i == 0 || pc.ThroughputBps < min {
			min = pc.ThroughputBps
		}
		if pc.ThroughputBps > max {
			max = pc.ThroughputBps
		}
	}
	if min <= 0 || max > 3*min {
		t.Fatalf("unfair shares: %.2f .. %.2f Mbps", min/1e6, max/1e6)
	}
	if eight.Collisions == 0 {
		t.Fatal("8 contending clients must produce collisions")
	}
}

func TestCellJointBeatsBestSingleAtModerateSNR(t *testing.T) {
	// The paper's Fig. 17 effect must survive contention: mediocre links to
	// two APs, joint transmission wins on aggregate.
	snrs := make([][]float64, 8)
	for c := range snrs {
		snrs[c] = []float64{9, 8}
	}
	cell := testCell(snrs, 120)
	single := cell.RunBestSingleAP(rand.New(rand.NewSource(4)))
	joint := cell.RunJoint(rand.New(rand.NewSource(5)))
	if joint.AggregateBps <= single.AggregateBps {
		t.Fatalf("joint %.2f Mbps not better than best-single %.2f Mbps under contention",
			joint.AggregateBps/1e6, single.AggregateBps/1e6)
	}
}

func TestCellDeterministicGivenSeed(t *testing.T) {
	c := uniformCell(6, 12, 80)
	a := c.RunJoint(rand.New(rand.NewSource(6)))
	b := c.RunJoint(rand.New(rand.NewSource(6)))
	if a.AggregateBps != b.AggregateBps || a.Delivered != b.Delivered || a.Collisions != b.Collisions {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
