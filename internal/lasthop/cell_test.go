package lasthop

import (
	"math/rand"
	"testing"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/testbed"
)

// testCell builds an N-client, M-AP cell; snrs[c][a] gives the AP a ->
// client c average SNR.
func testCell(snrs [][]float64, packets int) Cell {
	cfg := modem.Profile80211()
	tb := testbed.Default(cfg)
	links := make([][]testbed.Link, len(snrs))
	for c, row := range snrs {
		links[c] = make([]testbed.Link, len(row))
		for a, s := range row {
			links[c][a] = tb.LinkAtSNR(s, 10)
		}
	}
	return Cell{
		Mac:              mac.Default(cfg),
		PayloadBytes:     1460,
		Links:            links,
		PacketsPerClient: packets,
	}
}

func uniformCell(clients int, snr float64, packets int) Cell {
	snrs := make([][]float64, clients)
	for c := range snrs {
		snrs[c] = []float64{snr, snr - 1}
	}
	return testCell(snrs, packets)
}

func TestCellDrainsEveryBacklog(t *testing.T) {
	c := uniformCell(4, 18, 100)
	res := c.RunBestSingleAP(rand.New(rand.NewSource(1)))
	var total int
	for _, pc := range res.PerClient {
		total += pc.Delivered + pc.Dropped
	}
	if total != 4*100 {
		t.Fatalf("cell retired %d of %d packets", total, 4*100)
	}
	if res.Delivered < 350 {
		t.Fatalf("only %d/400 delivered at 18 dB", res.Delivered)
	}
	if res.Elapsed <= 0 || res.Utilization <= 0 || res.Utilization >= 1 {
		t.Fatalf("accounting: elapsed %.4f utilization %.3f", res.Elapsed, res.Utilization)
	}
}

func TestCellContentionSplitsThroughput(t *testing.T) {
	// Doubling the client count on one medium must not double aggregate
	// throughput, and symmetric clients must see similar shares.
	four := uniformCell(4, 18, 150).RunBestSingleAP(rand.New(rand.NewSource(2)))
	eight := uniformCell(8, 18, 150).RunBestSingleAP(rand.New(rand.NewSource(3)))
	if eight.AggregateBps > four.AggregateBps*1.25 {
		t.Fatalf("8 clients (%.1f Mbps) should not out-scale 4 (%.1f Mbps) on one medium",
			eight.AggregateBps/1e6, four.AggregateBps/1e6)
	}
	var min, max float64
	for i, pc := range eight.PerClient {
		if i == 0 || pc.ThroughputBps < min {
			min = pc.ThroughputBps
		}
		if pc.ThroughputBps > max {
			max = pc.ThroughputBps
		}
	}
	if min <= 0 || max > 3*min {
		t.Fatalf("unfair shares: %.2f .. %.2f Mbps", min/1e6, max/1e6)
	}
	if eight.Collisions == 0 {
		t.Fatal("8 contending clients must produce collisions")
	}
}

func TestCellJointBeatsBestSingleAtModerateSNR(t *testing.T) {
	// The paper's Fig. 17 effect must survive contention: mediocre links to
	// two APs, joint transmission wins on aggregate.
	snrs := make([][]float64, 8)
	for c := range snrs {
		snrs[c] = []float64{9, 8}
	}
	cell := testCell(snrs, 120)
	single := cell.RunBestSingleAP(rand.New(rand.NewSource(4)))
	joint := cell.RunJoint(rand.New(rand.NewSource(5)))
	if joint.AggregateBps <= single.AggregateBps {
		t.Fatalf("joint %.2f Mbps not better than best-single %.2f Mbps under contention",
			joint.AggregateBps/1e6, single.AggregateBps/1e6)
	}
}

// spatialCells builds `cells` single-client cells whose APs sit `spacing`
// meters apart, each client 10 m from its AP, as one spatial Cell.
func spatialCells(cells int, spacing, csRange float64, packets int) Cell {
	cfg := modem.Profile80211()
	tb := testbed.Default(cfg)
	links := make([][]testbed.Link, cells)
	apPos := make([][]testbed.Point, cells)
	clientPos := make([]testbed.Point, cells)
	for c := 0; c < cells; c++ {
		ap := testbed.Point{X: float64(c) * spacing, Y: 0}
		links[c] = []testbed.Link{tb.LinkAtSNR(26, 10)}
		apPos[c] = []testbed.Point{ap}
		clientPos[c] = testbed.Point{X: ap.X + 10, Y: 0}
	}
	return Cell{
		Mac:              mac.Default(cfg),
		PayloadBytes:     1460,
		Links:            links,
		PacketsPerClient: packets,
		APPos:            apPos,
		ClientPos:        clientPos,
		CSRangeM:         csRange,
		Env:              tb,
	}
}

func TestCellSpatialReuseScalesAggregate(t *testing.T) {
	// Two cells beyond carrier-sense range must drain their backlogs nearly
	// concurrently: aggregate throughput ~2x a single cell's, with the
	// medium busy more than one neighborhood at a time. SampleRate
	// trajectories are chaotic (a run that demotes early stays slow for a
	// while), so the ratio is averaged over a few seeds rather than pinned
	// to one lone/pair pairing.
	var oneSum, twoSum, utilSum float64
	const runs = 3
	for seed := int64(7); seed < 7+runs; seed++ {
		one := spatialCells(1, 0, 30, 200).RunBestSingleAP(rand.New(rand.NewSource(seed)))
		two := spatialCells(2, 100, 30, 200).RunBestSingleAP(rand.New(rand.NewSource(seed)))
		oneSum += one.AggregateBps
		twoSum += two.AggregateBps
		utilSum += two.Utilization
		if two.Collisions != 0 {
			t.Fatalf("out-of-range cells collided %d times (seed %d)", two.Collisions, seed)
		}
	}
	ratio := twoSum / oneSum
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("two out-of-range cells gave %.2fx one cell's aggregate, want ~2x", ratio)
	}
	if utilSum/runs <= 1 {
		t.Fatalf("mean utilization %.2f should exceed 1 under spatial reuse", utilSum/runs)
	}
	// The same two cells inside one carrier-sense range must split the
	// medium instead — averaged over the same seeds as the reuse check.
	var sharedSum float64
	for seed := int64(7); seed < 7+runs; seed++ {
		sharedSum += spatialCells(2, 10, 30, 200).RunBestSingleAP(rand.New(rand.NewSource(seed))).AggregateBps
	}
	if sharedSum > 1.25*oneSum {
		t.Fatalf("in-range cells should share, not scale: %.1f vs %.1f Mbps mean",
			sharedSum/runs/1e6, oneSum/runs/1e6)
	}
}

func TestCellDeterministicGivenSeed(t *testing.T) {
	c := uniformCell(6, 12, 80)
	a := c.RunJoint(rand.New(rand.NewSource(6)))
	b := c.RunJoint(rand.New(rand.NewSource(6)))
	if a.AggregateBps != b.AggregateBps || a.Delivered != b.Delivered || a.Collisions != b.Collisions {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
