// Package lasthop implements the paper's WLAN downlink experiments (§7.1,
// §8.3): clients associated with multiple APs, downlink data forwarded to
// all of them by a wired-side controller, per-client SampleRate at the lead
// AP, and either a single AP transmitting (selective diversity baseline) or
// all APs transmitting jointly with SourceSync.
//
// Two scenario shapes are provided, both thin layers over internal/netsim
// (which owns the clock, DCF contention, and delivery draws):
//
//   - Config — the paper's single client: one downlink, no contention,
//     RunSingleAP / RunBestSingleAP / RunJoint per serving mode.
//   - Cell — N clients with backlogged downlinks contending as DCF
//     stations. With its spatial fields set (AP and client positions, a
//     carrier-sense range, an optional capture threshold) the clients may
//     span several cells of a building, and downlinks out of carrier-sense
//     range of each other reuse the medium concurrently — the geometry the
//     cellsweep experiment sweeps.
package lasthop

import (
	"math/rand"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/netsim"
	"repro/internal/samplerate"
	"repro/internal/testbed"
)

// Config describes one client's downlink scenario.
type Config struct {
	Mac          mac.Params
	PayloadBytes int
	// APLinks are the AP->client links; index 0 need not be the best.
	APLinks []testbed.Link
	// DataCPIncrease is the extra cyclic prefix (samples) the joint mode
	// spends to absorb residual misalignment (from the SLS LP; typically
	// 0-2 samples indoors).
	DataCPIncrease int
	// Packets is how many downlink packets to simulate.
	Packets int
}

// Result summarizes one simulated run.
type Result struct {
	ThroughputBps float64
	Delivered     int
	RateHistogram map[int]int // packets per rate index
}

// frameTimes computes per-rate lossless airtimes for SampleRate.
func frameTimes(m mac.Params, payload int, joint bool, numCo, dataCP int) []float64 {
	out := make([]float64, 0, 8)
	for _, r := range modem.StandardRates() {
		if joint {
			out = append(out, m.JointFrameDuration(r, payload, numCo, dataCP))
		} else {
			out = append(out, m.FrameDuration(r, payload))
		}
	}
	return out
}

// RunSingleAP simulates the downlink using only the AP at index ap.
func (c Config) RunSingleAP(rng *rand.Rand, ap int) Result {
	link := c.APLinks[ap]
	ft := frameTimes(c.Mac, c.PayloadBytes, false, 0, 0)
	sr := samplerate.New(ft)
	return c.run(rng, sr, ft, func(rng *rand.Rand, rate modem.Rate) bool {
		return netsim.LinkDeliver(rng, link, rate, c.PayloadBytes)
	})
}

// RunBestSingleAP simulates every AP alone and returns the best result —
// the paper's "selective diversity / single best AP" baseline.
func (c Config) RunBestSingleAP(rng *rand.Rand) Result {
	var best Result
	for ap := range c.APLinks {
		r := c.RunSingleAP(rand.New(rand.NewSource(rng.Int63())), ap) //sslint:allow detrand per-AP child RNG bridged from the caller's stream; one parent draw per AP is part of the contracted draw order
		if r.ThroughputBps > best.ThroughputBps {
			best = r
		}
	}
	return best
}

// RunJoint simulates all APs transmitting simultaneously with SourceSync:
// the per-packet delivery probability comes from the sum of the APs'
// per-subcarrier SNRs (power + diversity gain), and every frame pays the
// joint overhead (sync gap, CE slots, CP increase).
func (c Config) RunJoint(rng *rand.Rand) Result {
	numCo := len(c.APLinks) - 1
	dataCP := c.Mac.Cfg.CPLen + c.DataCPIncrease
	ft := frameTimes(c.Mac, c.PayloadBytes, true, numCo, dataCP)
	sr := samplerate.New(ft)
	return c.run(rng, sr, ft, func(rng *rand.Rand, rate modem.Rate) bool {
		return netsim.JointLinkDeliver(rng, c.APLinks, rate, c.PayloadBytes)
	})
}

// run drives c.Packets downlink packets as one netsim flow (no contention:
// a single station owns the cell). SampleRate picks each packet's rate and
// is fed back the medium time the packet really consumed.
func (c Config) run(rng *rand.Rand, sr *samplerate.SampleRate, ft []float64, succeeds func(rng *rand.Rand, rate modem.Rate) bool) Result {
	res := Result{RateHistogram: map[int]int{}}
	sim := netsim.New(c.Mac, rng)
	remaining := c.Packets
	flow := sim.AddFlow(&netsim.Flow{
		Acked:      true,
		HasTraffic: func() bool { return remaining > 0 },
		Prepare: func(rng *rand.Rand) int {
			idx, _ := sr.Pick(rng)
			res.RateHistogram[idx]++
			return idx
		},
		FrameTime: func(i int) float64 { return ft[i] },
		Deliver: func(rng *rand.Rand, i int, _ netsim.Interference) bool {
			// A lone downlink is never interfered; the context stays clean.
			return succeeds(rng, sr.Rate(i))
		},
		Done: func(i int, delivered bool, air float64) {
			remaining--
			sr.Update(i, delivered, air)
		},
	})
	sim.Run()
	res.Delivered = flow.Delivered
	if t := sim.Now(); t > 0 {
		res.ThroughputBps = float64(res.Delivered*c.PayloadBytes*8) / t
	}
	return res
}
