// Package lasthop implements the paper's WLAN downlink experiment (§7.1,
// §8.3): a client associated with multiple APs, downlink data forwarded to
// all of them by a wired-side controller, the lead AP running SampleRate,
// and either a single AP transmitting (selective diversity baseline) or all
// APs transmitting jointly with SourceSync.
package lasthop

import (
	"math/rand"

	"repro/internal/mac"
	"repro/internal/modem"
	"repro/internal/permodel"
	"repro/internal/samplerate"
	"repro/internal/testbed"
)

// Config describes one client's downlink scenario.
type Config struct {
	Mac          mac.Params
	PayloadBytes int
	// APLinks are the AP->client links; index 0 need not be the best.
	APLinks []testbed.Link
	// DataCPIncrease is the extra cyclic prefix (samples) the joint mode
	// spends to absorb residual misalignment (from the SLS LP; typically
	// 0-2 samples indoors).
	DataCPIncrease int
	// Packets is how many downlink packets to simulate.
	Packets int
}

// Result summarizes one simulated run.
type Result struct {
	ThroughputBps float64
	Delivered     int
	RateHistogram map[int]int // packets per rate index
}

// frameTimes computes per-rate lossless airtimes for SampleRate.
func frameTimes(m mac.Params, payload int, joint bool, numCo, dataCP int) []float64 {
	out := make([]float64, 0, 8)
	for _, r := range modem.StandardRates() {
		if joint {
			out = append(out, m.JointFrameDuration(r, payload, numCo, dataCP))
		} else {
			out = append(out, m.FrameDuration(r, payload))
		}
	}
	return out
}

// RunSingleAP simulates the downlink using only the AP at index ap.
func (c Config) RunSingleAP(rng *rand.Rand, ap int) Result {
	link := c.APLinks[ap]
	ft := frameTimes(c.Mac, c.PayloadBytes, false, 0, 0)
	sr := samplerate.New(ft)
	return c.run(rng, sr, ft, func(rate modem.Rate) bool {
		bins := link.DrawSubcarrierSNRs(rng)
		per := permodel.PER(rate, c.PayloadBytes, bins)
		return rng.Float64() >= per
	})
}

// RunBestSingleAP simulates every AP alone and returns the best result —
// the paper's "selective diversity / single best AP" baseline.
func (c Config) RunBestSingleAP(rng *rand.Rand) Result {
	var best Result
	for ap := range c.APLinks {
		r := c.RunSingleAP(rand.New(rand.NewSource(rng.Int63())), ap)
		if r.ThroughputBps > best.ThroughputBps {
			best = r
		}
	}
	return best
}

// RunJoint simulates all APs transmitting simultaneously with SourceSync:
// the per-packet delivery probability comes from the sum of the APs'
// per-subcarrier SNRs (power + diversity gain), and every frame pays the
// joint overhead (sync gap, CE slots, CP increase).
func (c Config) RunJoint(rng *rand.Rand) Result {
	numCo := len(c.APLinks) - 1
	dataCP := c.Mac.Cfg.CPLen + c.DataCPIncrease
	ft := frameTimes(c.Mac, c.PayloadBytes, true, numCo, dataCP)
	sr := samplerate.New(ft)
	return c.run(rng, sr, ft, func(rate modem.Rate) bool {
		per := make([][]float64, len(c.APLinks))
		for i, l := range c.APLinks {
			per[i] = l.DrawSubcarrierSNRs(rng)
		}
		joint := permodel.JointSNR(per)
		return rng.Float64() >= permodel.PER(rate, c.PayloadBytes, joint)
	})
}

// run drives the SampleRate + retry loop for c.Packets packets; attempt
// success is decided by succeeds for the chosen rate.
func (c Config) run(rng *rand.Rand, sr *samplerate.SampleRate, ft []float64, succeeds func(modem.Rate) bool) Result {
	res := Result{RateHistogram: map[int]int{}}
	var elapsed float64
	for pkt := 0; pkt < c.Packets; pkt++ {
		idx, _ := sr.Pick(rng)
		rate := sr.Rate(idx)
		res.RateHistogram[idx]++
		out := c.Mac.RetryLoop(rng, ft[idx], true, func(int) bool {
			return succeeds(rate)
		})
		elapsed += out.AirTime
		sr.Update(idx, out.Success, out.AirTime)
		if out.Success {
			res.Delivered++
		}
	}
	if elapsed > 0 {
		res.ThroughputBps = float64(res.Delivered*c.PayloadBytes*8) / elapsed
	}
	return res
}
