package lasthop

import (
	"math/rand"
	"testing"
)

func TestJointCPIncreaseCostsThroughput(t *testing.T) {
	// The CP increase the SLS advertises for residual misalignment is pure
	// overhead; a larger increase must not raise throughput.
	base := testConfig([]float64{12, 12}, 300)
	more := base
	more.DataCPIncrease = 8
	j0 := base.RunJoint(rand.New(rand.NewSource(1)))
	j8 := more.RunJoint(rand.New(rand.NewSource(1)))
	if j8.ThroughputBps > j0.ThroughputBps*1.02 {
		t.Fatalf("CP increase improved throughput: %.2f vs %.2f Mbps",
			j8.ThroughputBps/1e6, j0.ThroughputBps/1e6)
	}
}

func TestThreeAPJointUsesQuasiOrthogonalOverhead(t *testing.T) {
	// Three APs: more CE slots, more power. At low per-AP SNR the extra
	// power should still win over two APs.
	two := testConfig([]float64{7, 7}, 300)
	three := testConfig([]float64{7, 7, 7}, 300)
	j2 := two.RunJoint(rand.New(rand.NewSource(2)))
	j3 := three.RunJoint(rand.New(rand.NewSource(3)))
	if j3.ThroughputBps <= j2.ThroughputBps {
		t.Fatalf("3 APs (%.2f Mbps) should beat 2 APs (%.2f Mbps) at 7 dB",
			j3.ThroughputBps/1e6, j2.ThroughputBps/1e6)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	c := testConfig([]float64{10, 9}, 200)
	a := c.RunJoint(rand.New(rand.NewSource(4)))
	b := c.RunJoint(rand.New(rand.NewSource(4)))
	if a.ThroughputBps != b.ThroughputBps || a.Delivered != b.Delivered {
		t.Fatalf("nondeterministic: %v vs %v", a.ThroughputBps, b.ThroughputBps)
	}
}
