package sourcesync

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§8). Each benchmark runs a shrunken-but-representative version
// of the experiment per iteration and reports the headline metric through
// b.ReportMetric, so `go test -bench=. -benchmem` yields a machine-readable
// summary of the reproduction. cmd/ssbench runs the full-size versions and
// prints the complete series.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/permodel"
	"repro/internal/phy"
)

// --------------------------------------------------------------- figures

func BenchmarkFig12SyncError(b *testing.B) {
	o := Fig12Options{Seed: 1, SNRsdB: []float64{6, 12, 25}, Trials: 6, Reps: 30}
	var last []Fig12Point
	for i := 0; i < b.N; i++ {
		o.Seed = int64(1 + i)
		last = RunFig12(o)
	}
	var worstP95 float64
	for _, p := range last {
		if p.P95Ns > worstP95 {
			worstP95 = p.P95Ns
		}
	}
	b.ReportMetric(worstP95, "p95-sync-error-ns")
}

var engineFig12SerialOnce sync.Once //sslint:allow detgoroutine one-shot serial-baseline memoization in benchmark scaffolding, not simulation state
var engineFig12SerialSec float64

func BenchmarkEngineFig12Parallel(b *testing.B) {
	// Speedup of the engine's worker pool over its serial path on the same
	// workload. Output is identical in both modes; only wall clock differs.
	// The serial baseline is measured once per process (the harness calls
	// this function repeatedly while ramping b.N).
	o := Fig12Options{Seed: 1, SNRsdB: []float64{6, 12, 25}, Trials: 8, Reps: 30}
	engineFig12SerialOnce.Do(func() {
		serial := o
		serial.Workers = 1
		RunFig12(serial) // warm process-wide caches before timing anything
		const serialRuns = 3
		start := time.Now() //sslint:allow detwallclock measures benchmark wall clock; experiment output is unaffected
		for i := 0; i < serialRuns; i++ {
			RunFig12(serial)
		}
		engineFig12SerialSec = time.Since(start).Seconds() / serialRuns //sslint:allow detwallclock measures benchmark wall clock; experiment output is unaffected
		// Warm the parallel path too: at -benchtime 1x the timed loop below
		// runs exactly once, and without this the worker pool's spin-up and
		// first-use scheduling costs land inside that single timed run —
		// the recorded "speedup" dipped below 1.0 on an 8-way box purely
		// from startup overhead the serial baseline never paid.
		par := o
		par.Workers = 0
		RunFig12(par)
	})

	o.Workers = 0 // GOMAXPROCS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunFig12(o)
	}
	parallelSec := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(engineFig12SerialSec/parallelSec, "speedup-x")
}

func BenchmarkFig13CPSweep(b *testing.B) {
	o := Fig13Options{Seed: 2, CPsNs: []float64{117, 469}, FramesPerCP: 3, SNRdB: 25}
	var pts []Fig13Point
	for i := 0; i < b.N; i++ {
		o.Seed = int64(2 + i)
		pts = RunFig13(o)
	}
	// SourceSync at 117 ns vs baseline at 117 ns: the gap is the paper's
	// headline (baseline needs ~469 ns to catch up).
	b.ReportMetric(pts[0].SourceSyncSNR, "ss-snr-at-117ns-dB")
	b.ReportMetric(pts[0].BaselineSNR, "baseline-snr-at-117ns-dB")
	b.ReportMetric(pts[1].BaselineSNR, "baseline-snr-at-469ns-dB")
}

func BenchmarkFig14DelaySpread(b *testing.B) {
	var pts []Fig14Point
	for i := 0; i < b.N; i++ {
		pts = RunFig14(Fig14Options{Seed: int64(3 + i), Draws: 150, Taps: 70})
	}
	b.ReportMetric(float64(SignificantTaps(pts, 0.01)), "significant-taps")
}

func BenchmarkFig15PowerGain(b *testing.B) {
	var rows []Fig15Row
	for i := 0; i < b.N; i++ {
		rows = RunFig15(Fig15Options{Seed: int64(4 + i), Placements: 12, Frames: 1})
	}
	for _, r := range rows {
		b.ReportMetric(r.GainDB, "gain-dB-"+r.Regime)
	}
}

func BenchmarkFig16SubcarrierSNR(b *testing.B) {
	var series []Fig16Series
	for i := 0; i < b.N; i++ {
		series = RunFig16(Fig15Options{Seed: int64(5 + i), Placements: 12, Frames: 1})
	}
	for _, s := range series {
		flattening := (s.Flatness.Sender1+s.Flatness.Sender2)/2 - s.Flatness.Joint
		b.ReportMetric(flattening, "flattening-dB-"+s.Regime)
	}
}

func BenchmarkFig17LastHop(b *testing.B) {
	var res Fig17Result
	for i := 0; i < b.N; i++ {
		res = RunFig17(Fig17Options{Seed: int64(6 + i), Placements: 16, Packets: 250, Payload: 1460})
	}
	b.ReportMetric(res.MedianGain, "median-gain-x")
}

func BenchmarkFig18OppRouting6(b *testing.B) {
	benchFig18(b, 6)
}

func BenchmarkFig18OppRouting12(b *testing.B) {
	benchFig18(b, 12)
}

func benchFig18(b *testing.B, mbps int) {
	b.Helper()
	var res Fig18Result
	for i := 0; i < b.N; i++ {
		res = RunFig18(Fig18Options{
			Seed: int64(7 + i), Topologies: 10, Packets: 100,
			Payload: 1000, RateMbps: mbps, Probes: 40,
		})
	}
	b.ReportMetric(res.GainExOROverSP, "exor-over-sp-x")
	b.ReportMetric(res.GainSSOverExOR, "ss-over-exor-x")
	b.ReportMetric(res.GainSSOverSP, "ss-over-sp-x")
}

func BenchmarkTabOverhead(b *testing.B) {
	var rows []OverheadRow
	for i := 0; i < b.N; i++ {
		rows = RunOverheadTable()
	}
	b.ReportMetric(rows[0].OverheadFraction*100, "overhead-2senders-pct")
	b.ReportMetric(rows[3].OverheadFraction*100, "overhead-5senders-pct")
}

func BenchmarkDetDelayPremise(b *testing.B) {
	var pts []DetDelayPoint
	for i := 0; i < b.N; i++ {
		pts = RunDetDelay(int64(8+i), []float64{4, 25}, 20, 0)
	}
	b.ReportMetric(pts[0].StdNs, "det-delay-std-ns-4dB")
	b.ReportMetric(pts[1].StdNs, "det-delay-std-ns-25dB")
}

// -------------------------------------------------------------- ablations

func BenchmarkAblationSlopeWindow(b *testing.B) {
	var res SlopeWindowResult
	for i := 0; i < b.N; i++ {
		res = RunAblationSlopeWindow(int64(9+i), 100, 0)
	}
	b.ReportMetric(res.WindowedRMS, "windowed-rms-samples")
	b.ReportMetric(res.WholeBandRMS, "wholeband-rms-samples")
}

func BenchmarkAblationNaiveCombining(b *testing.B) {
	var res NaiveCombiningResult
	for i := 0; i < b.N; i++ {
		res = RunAblationNaiveCombining(int64(10+i), 8, 0)
	}
	b.ReportMetric(res.STBCWorstSNRdB, "stbc-worst-dB")
	b.ReportMetric(res.NaiveWorstSNRdB, "naive-worst-dB")
	b.ReportMetric(float64(res.NaiveFailures), "naive-failures")
}

func BenchmarkAblationPilotSharing(b *testing.B) {
	var res PilotSharingResult
	for i := 0; i < b.N; i++ {
		res = RunAblationPilotSharing(int64(11+i), 3, 0)
	}
	b.ReportMetric(res.SharedPilotsEVM, "shared-evm")
	b.ReportMetric(res.NaiveTrackEVM, "naive-evm")
}

func BenchmarkAblationSoftDecision(b *testing.B) {
	// Coding gain of soft-decision demapping near the 12 Mbps waterfall
	// (an extension beyond the paper's hard-decision FPGA pipeline).
	cfg := modem.Profile80211()
	rate, _ := modem.RateByMbps(12)
	var hard, soft float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(20 + i)))
		hard = permodel.EmpiricalPEROpts(cfg, rate, 300, 7, 30, rng, false)
		rng = rand.New(rand.NewSource(int64(20 + i)))
		soft = permodel.EmpiricalPEROpts(cfg, rate, 300, 7, 30, rng, true)
	}
	b.ReportMetric(hard, "hard-per")
	b.ReportMetric(soft, "soft-per")
}

func BenchmarkAblationMultiRxLP(b *testing.B) {
	var res MultiRxLPResult
	for i := 0; i < b.N; i++ {
		res = RunAblationMultiRxLP(int64(12+i), 50, 3, 0)
	}
	b.ReportMetric(res.LPMaxMisalign, "lp-maxmis-samples")
	b.ReportMetric(res.FirstRxMisalign, "firstrx-maxmis-samples")
}

// ---------------------------------------------------- hot-path benchmarks

func BenchmarkFFT64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	dst := make([]complex128, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.FFTInto(dst, x)
	}
}

func BenchmarkViterbiDecode1500B(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	bits := make([]byte, 1500*8)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	data := modem.AppendTail(bits)
	coded := modem.ConvEncode(data, modem.Rate12)
	soft := modem.HardToSoft(coded)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		modem.ViterbiDecode(soft, len(data), modem.Rate12)
	}
}

var benchFrameOnce sync.Once //sslint:allow detgoroutine one-shot fixture memoization in benchmark scaffolding, not simulation state
var benchFrameWave []complex128
var benchFrameParams modem.FrameParams

func benchFrameSetup() {
	cfg := modem.Profile80211()
	rate, _ := modem.RateByMbps(54)
	benchFrameParams = modem.FrameParams{
		Cfg: cfg, Rate: rate, CP: cfg.CPLen, PayloadLen: 1460, ScramblerSeed: 0x5d,
	}
	payload := make([]byte, 1460)
	rand.New(rand.NewSource(3)).Read(payload)
	benchFrameWave = modem.BuildFrame(benchFrameParams, payload)
}

func BenchmarkModemEncode1460B54M(b *testing.B) {
	benchFrameOnce.Do(benchFrameSetup)
	payload := make([]byte, 1460)
	rand.New(rand.NewSource(4)).Read(payload)
	b.SetBytes(1460)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		modem.BuildFrame(benchFrameParams, payload)
	}
}

func BenchmarkModemDecode1460B54M(b *testing.B) {
	benchFrameOnce.Do(benchFrameSetup)
	cfg := benchFrameParams.Cfg
	buf := make([]complex128, 300+len(benchFrameWave)+300)
	copy(buf[300:], benchFrameWave)
	rng := rand.New(rand.NewSource(5))
	for i := range buf {
		buf[i] += complex(rng.NormFloat64()*1e-4, rng.NormFloat64()*1e-4)
	}
	rx := &modem.Receiver{Cfg: cfg, FFTBackoff: 3}
	b.SetBytes(1460)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _, err := rx.Receive(benchFrameParams, buf, 0); err != nil || !ok {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkJointFrameRoundTrip(b *testing.B) {
	cfg := modem.Profile80211()
	rate, _ := modem.RateByMbps(12)
	p := phy.JointFrameParams{
		Cfg: cfg, Rate: rate, DataCP: cfg.CPLen,
		PayloadLen: 256, Seed: 0x5d, NumCo: 1, LeadID: 1, PacketID: 2,
	}
	rng := rand.New(rand.NewSource(6))
	sim := &phy.JointSimConfig{
		P:        p,
		LeadToCo: []phy.Link{{Gain: 1, Delay: 3}},
		LeadToRx: phy.Link{Gain: 1, Delay: 5},
		CoToRx:   []phy.Link{{Gain: 1, Delay: 2}},
		Co: []phy.CoSenderSim{{
			Turnaround: 120, EstDelayFromLead: 3, TxOffset: 3,
			NoisePower: 1e-5, FFTBackoff: 3,
		}},
		NoiseRx: 1e-5,
		Rng:     rng,
	}
	payload := make([]byte, 256)
	rng.Read(payload)
	rx := &phy.JointReceiver{Cfg: cfg, FFTBackoff: 3}
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := sim.Run(payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rx.Receive(run.RxWave, 0); err != nil {
			b.Fatal(err)
		}
	}
}
