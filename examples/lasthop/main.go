// Last-hop sender diversity (paper §7.1): a client with mediocre links to
// two APs. A wired-side controller gives both APs the downlink data; the
// lead AP runs SampleRate and both transmit each packet jointly with
// SourceSync. Compare against using the best single AP.
//
// Run: go run ./examples/lasthop
package main

import (
	"fmt"
	"maps"
	"math/rand"
	"slices"

	sourcesync "repro"
	"repro/internal/lasthop"
	"repro/internal/testbed"
)

func main() {
	cfg := sourcesync.Profile80211()
	env := sourcesync.MeshTestbed(cfg)
	rng := rand.New(rand.NewSource(7))

	// A client between two APs, both ~15 m away: usable but lossy links.
	client := testbed.Point{X: 25, Y: 7}
	ap1 := testbed.Point{X: 11, Y: 4}
	ap2 := testbed.Point{X: 38, Y: 11}

	c := lasthop.Config{
		Mac:          sourcesync.DCFParams(cfg),
		PayloadBytes: 1460,
		APLinks: []testbed.Link{
			env.NewLink(rng, ap1, client),
			env.NewLink(rng, ap2, client),
		},
		Packets: 600,
	}
	fmt.Printf("AP1->client %.1f dB, AP2->client %.1f dB\n",
		c.APLinks[0].SNRdB, c.APLinks[1].SNRdB)

	for ap := range c.APLinks {
		r := c.RunSingleAP(rand.New(rand.NewSource(100+int64(ap))), ap)
		fmt.Printf("AP%d alone:  %6.2f Mbps (%d/%d delivered)\n",
			ap+1, r.ThroughputBps/1e6, r.Delivered, c.Packets)
	}
	best := c.RunBestSingleAP(rand.New(rand.NewSource(200)))
	joint := c.RunJoint(rand.New(rand.NewSource(300)))
	fmt.Printf("best single AP: %6.2f Mbps\n", best.ThroughputBps/1e6)
	fmt.Printf("SourceSync (both APs): %6.2f Mbps  -> gain %.2fx\n",
		joint.ThroughputBps/1e6, joint.ThroughputBps/best.ThroughputBps)

	fmt.Println("\nrates used by the joint transmission (SampleRate at the lead AP):")
	for _, idx := range slices.Sorted(maps.Keys(joint.RateHistogram)) {
		if n := joint.RateHistogram[idx]; n > 0 {
			fmt.Printf("  rate %d: %d packets\n", idx, n)
		}
	}
}
