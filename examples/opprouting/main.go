// Opportunistic routing with sender diversity (paper §7.2): a 5-node mesh
// (source, three relays, destination) with lossy links. Compare single-path
// routing, ExOR, and ExOR+SourceSync — where relays that overheard the same
// packet jointly forward it toward the destination.
//
// Run: go run ./examples/opprouting
package main

import (
	"fmt"
	"math/rand"

	sourcesync "repro"
	"repro/internal/exor"
	"repro/internal/modem"
	"repro/internal/testbed"
)

func main() {
	cfg := sourcesync.Profile80211()
	env := sourcesync.MeshTestbed(cfg)
	rng := rand.New(rand.NewSource(11))

	pts := []testbed.Point{
		{X: 1, Y: 7},    // src
		{X: 21, Y: 3},   // relay 1
		{X: 25, Y: 8},   // relay 2
		{X: 23, Y: 12},  // relay 3
		{X: 48, Y: 7.5}, // dst
	}
	topo := exor.NewTopology(rng, env, pts)
	rate, _ := modem.RateByMbps(6)

	meas := topo.Measure(rng, rate, 1000, 100, 0.1)
	fmt.Println("delivery probabilities at 6 Mbps:")
	names := []string{"src", "r1", "r2", "r3", "dst"}
	for i := 0; i < topo.N(); i++ {
		for j := 0; j < topo.N(); j++ {
			if i != j && meas.Delivery[i][j] > 0.02 {
				fmt.Printf("  %-3s -> %-3s : %.2f (%.1f dB)\n",
					names[i], names[j], meas.Delivery[i][j], topo.Links[i][j].SNRdB)
			}
		}
	}
	path, metric := meas.Graph.ShortestPath(0, topo.N()-1)
	fmt.Printf("\nmin-ETX path: %v (metric %.2f)\n\n", path, metric)

	sim := &exor.Sim{
		Topo: topo, Meas: meas,
		Mac:  sourcesync.DCFParams(cfg),
		Rate: rate, Payload: 1000,
	}
	const packets = 300
	for _, scheme := range []exor.Scheme{exor.SinglePath, exor.ExOR, exor.ExORSourceSync} {
		r := sim.Run(rand.New(rand.NewSource(50)), scheme, packets)
		fmt.Printf("%-16s %6.3f Mbps  (%3d/%d delivered, %4d transmissions)\n",
			scheme, r.ThroughputBps/1e6, r.Delivered, packets, r.Transmissions)
	}
}
