// Quickstart: two senders jointly transmit one packet to a receiver through
// multipath channels, and the receiver decodes the combined signal.
//
// This walks the whole SourceSync pipeline end to end on waveforms: the
// lead sender's synchronization header, the co-sender detecting it over its
// own radio channel and scheduling itself with the Symbol Level
// Synchronizer's compensation, Alamouti coding across the two senders, and
// joint channel estimation + decoding at the receiver.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"maps"
	"math/rand"
	"slices"

	sourcesync "repro"
	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/modem"
	"repro/internal/phy"
)

func main() {
	cfg := sourcesync.Profile80211()
	rng := rand.New(rand.NewSource(42))

	// The joint frame: 12 Mbps, one co-sender, 256-byte payload.
	rate, _ := modem.RateByMbps(12)
	params := phy.JointFrameParams{
		Cfg: cfg, Rate: rate, DataCP: cfg.CPLen,
		PayloadLen: 256, Seed: 0x5d, NumCo: 1,
		LeadID: 1, PacketID: phy.HashPacketID(0x0a000001, 0x0a000002, 7),
	}

	// Radio geometry: the co-sender is nearer the receiver than the lead,
	// so it must delay its transmission (w = T0 - t1 > 0) to align.
	const (
		dLeadToCo = 4.0 // samples of propagation, lead -> co-sender
		dLeadToRx = 6.0
		dCoToRx   = 2.0
	)
	mp := func() *channel.Multipath { return channel.NewIndoor(rng, cfg.SampleRateHz, 50, 3) }
	noise := 2e-4 // per-sample noise power at every radio

	sim := &sourcesync.JointSimConfig{
		P:        params,
		LeadToCo: []sourcesync.Link{{Gain: 1, Delay: dLeadToCo, Path: mp()}},
		LeadToRx: sourcesync.Link{Gain: 1, Delay: dLeadToRx, Path: mp()},
		CoToRx:   []sourcesync.Link{{Gain: 1, Delay: dCoToRx, Path: mp()}},
		Co: []sourcesync.CoSenderSim{{
			Turnaround:       120,                 // hardware switch time, samples
			EstDelayFromLead: dLeadToCo,           // measured in the probe phase
			TxOffset:         dLeadToRx - dCoToRx, // w1 = T0 - t1
			NoisePower:       noise,
			FFTBackoff:       3,
			DetectJitter:     38,
		}},
		NoiseRx: noise,
		Rng:     rng,
	}

	payload := make([]byte, params.PayloadLen)
	rng.Read(payload)

	run, err := sim.Run(payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-sender joined: %v\n", run.CoJoined[0])
	fmt.Printf("true misalignment at receiver: %+.3f samples (%.1f ns)\n",
		run.TrueMisalign[0], run.TrueMisalign[0]/cfg.SampleRateHz*1e9)

	rx := &sourcesync.JointReceiver{Cfg: cfg, FFTBackoff: 3}
	res, err := rx.Receive(run.RxWave, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("header decoded: lead=%d joint=%v packet=0x%04x rate=%v\n",
		res.Header.LeadID, res.Header.Joint, res.Header.PacketID,
		modem.StandardRates()[res.Header.RateIdx])
	fmt.Printf("misalignment estimate (fed back in ACK): %+.3f samples\n", res.MisalignEst[0])

	lead := res.SenderSNR(0)
	joint := res.CompositeSNR()
	var leadLin, jointLin float64
	// Sorted-key sums keep the printed gain byte-identical run to run.
	for _, k := range slices.Sorted(maps.Keys(lead)) {
		leadLin += lead[k]
		jointLin += joint[k]
	}
	leadLin /= float64(len(lead))
	jointLin /= float64(len(joint))
	fmt.Printf("lead-alone SNR %.1f dB -> joint SNR %.1f dB (gain %.1f dB)\n",
		dsp.DB(leadLin), dsp.DB(jointLin), dsp.DB(jointLin)-dsp.DB(leadLin))

	fmt.Printf("decode: crc-ok=%v payload-match=%v\n",
		res.OK, res.OK && string(res.Payload) == string(payload))
}
