// Synchronization measurement walkthrough (paper §4.2): the building blocks
// the Symbol Level Synchronizer is made of.
//
//  1. Fig. 5: a detection delay shifts every OFDM subcarrier's channel phase
//     by an amount proportional to the subcarrier index — the slope recovers
//     the delay to sub-sample accuracy.
//  2. Eq. 2: a probe/response round trip with measured detection delays and
//     turnaround times yields the one-way propagation delay.
//  3. §4.5: the ACK misalignment feedback loop converges even with noisy
//     measurements.
//
// Run: go run ./examples/syncprobe
package main

import (
	"fmt"
	"math/cmplx"
	"math/rand"

	sourcesync "repro"
	"repro/internal/channel"
	"repro/internal/dsp"
	"repro/internal/sls"
)

func main() {
	cfg := sourcesync.ProfileWiGLAN()
	rng := rand.New(rand.NewSource(5))

	// --- 1. Fig. 5: channel phase slope vs detection delay -------------
	fmt.Println("Fig. 5 — unwrapped channel phase per subcarrier, flat channel:")
	for _, delta := range []float64{0, 2, 5} {
		h := channel.Flat().FreqResponse(cfg.NFFT)
		dsp.PhaseRampDelay(h, delta)
		// Print phases of a few subcarriers; the slope grows with delta.
		fmt.Printf("  detection offset %3.0f samples: phase(k=-10..10 by 5) =", delta)
		for _, k := range []int{-10, -5, 5, 10} {
			fmt.Printf(" %+6.2f", cmplx.Phase(h[cfg.Bin(k)]))
		}
		est := sls.EstimateDelay(cfg, zeroUnused(cfg, h))
		fmt.Printf("  -> slope-estimated delay %5.2f\n", est)
	}

	// With multipath the estimator still tracks induced delay differences.
	m := channel.NewIndoor(rng, cfg.SampleRateHz, 40, 3)
	h1 := m.FreqResponse(cfg.NFFT)
	h2 := m.FreqResponse(cfg.NFFT)
	dsp.PhaseRampDelay(h2, 3.5)
	d := sls.EstimateDelay(cfg, zeroUnused(cfg, h2)) - sls.EstimateDelay(cfg, zeroUnused(cfg, h1))
	fmt.Printf("multipath channel, induced 3.50-sample shift: measured %.2f\n\n", d)

	// --- 2. Eq. 2: probe/response propagation delay --------------------
	fmt.Println("Eq. 2 — probe/response round trip:")
	prop := 7.3 // samples one way (17 m at 128 MHz)
	ex := sls.ProbeExchange{
		DetectRx:    4.2, // responder's detection-delay estimate
		TurnRx:      900, // responder's turnaround (measured in clock ticks)
		DetectTx:    3.9, // prober's detection delay for the response
		ExtraWaitRx: 0,
	}
	ex.RoundTrip = 2*prop + ex.DetectRx + ex.TurnRx + ex.DetectTx
	fmt.Printf("  round trip %.1f samples -> one-way propagation %.2f samples (truth %.2f)\n\n",
		ex.RoundTrip, ex.OneWayDelay(), prop)

	// --- 3. §4.5: delay tracking from data frames ----------------------
	fmt.Println("§4.5 — ACK feedback converges on a drifting co-sender:")
	trueOffset := 4.0 // co-sender initially 4 samples late
	w := 0.0
	for i := 0; i < 12; i++ {
		measured := trueOffset + w + rng.NormFloat64()*0.3 // noisy estimate
		w = sls.TrackWait(w, measured, 0.5)
		if i%3 == 2 {
			fmt.Printf("  after %2d frames: wait adjustment %+5.2f, residual %+5.2f samples\n",
				i+1, w, trueOffset+w)
		}
	}

	// --- 4. §4.6: several receivers cannot all be aligned --------------
	fmt.Println("\n§4.6 — two receivers, conflicting alignments (paper Fig. 8):")
	wls, maxMis, err := sls.MultiReceiverWaits([]float64{5, 1}, [][]float64{{1, 5}})
	if err != nil {
		panic(err)
	}
	fmt.Printf("  LP wait %.2f samples, residual worst-case misalignment %.2f samples\n", wls[0], maxMis)
	fmt.Printf("  -> lead advertises a CP increase of %d samples in its sync header\n",
		sls.CPIncreaseSamples(maxMis))
}

// zeroUnused blanks the unused FFT bins like a real channel estimator.
func zeroUnused(cfg *sourcesync.Config, h []complex128) []complex128 {
	used := map[int]bool{}
	for _, k := range cfg.UsedBins() {
		used[cfg.Bin(k)] = true
	}
	for b := range h {
		if !used[b] {
			h[b] = 0
		}
	}
	return h
}
